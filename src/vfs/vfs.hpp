#pragma once

/// \file vfs.hpp
/// Virtual shared filesystem — the stand-in for the paper's s3fs (a
/// FUSE filesystem backed by Amazon S3) that all SciCumulus VMs mount.
/// Files live in memory; a latency model prices each operation so the
/// cloud simulator can charge realistic staging time, and a catalogue of
/// file metadata feeds the provenance hfile table (Query 2).

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace scidock::vfs {

/// Thrown when a torn-write fault fires: the first `applied` bytes of the
/// operation reached the file, the rest did not — the shape of a crash
/// mid-write on a real filesystem. Recovery code (the provenance WAL
/// replay) must tolerate the resulting partial record.
class TornWriteError : public Error {
 public:
  TornWriteError(std::string_view path, std::size_t applied, std::size_t total)
      : Error("torn write on '" + std::string(path) + "': " +
              std::to_string(applied) + " of " + std::to_string(total) +
              " bytes applied"),
        applied_(applied),
        total_(total) {}

  std::size_t applied() const { return applied_; }
  std::size_t total() const { return total_; }

 private:
  std::size_t applied_ = 0;
  std::size_t total_ = 0;
};

struct FileInfo {
  std::string path;      ///< absolute path, '/'-separated
  std::size_t size = 0;  ///< bytes
  double mtime = 0.0;    ///< simulation seconds at last write
  std::string producer;  ///< activity tag that wrote it ("" for staged input)
};

/// Latency model for pricing operations in simulation seconds. Defaults
/// approximate s3fs over EC2-internal networking: high per-op latency,
/// modest throughput.
struct LatencyModel {
  double op_latency_s = 0.02;          ///< per metadata/IO operation
  double throughput_bytes_per_s = 50.0e6;

  double read_cost(std::size_t bytes) const {
    return op_latency_s + static_cast<double>(bytes) / throughput_bytes_per_s;
  }
  double write_cost(std::size_t bytes) const {
    return op_latency_s + static_cast<double>(bytes) / throughput_bytes_per_s;
  }
};

/// Operation kind passed to a FaultHook / TornWriteHook.
enum class FileOp { Read, Write, Append, Rename, Sync };

/// Thread-safe in-memory filesystem.
class SharedFileSystem {
 public:
  /// Invoked at the start of read()/write()/append()/rename()/sync() with
  /// the normalised path, outside the filesystem lock. A throwing hook
  /// makes the operation fail with that exception (nothing is applied); a
  /// sleeping hook models a latency spike. Installed by the chaos
  /// harness; must be thread-safe.
  using FaultHook = std::function<void(FileOp, const std::string& path)>;

  /// Byte-granular torn-write injection (chaos). Consulted by write() and
  /// append() after the FaultHook, outside the lock, with the operation's
  /// total byte count. Returning a value k < bytes applies exactly the
  /// first k bytes and throws TornWriteError — a partial record smaller
  /// than one WAL frame, which a plain throwing FaultHook cannot express.
  /// Returning nullopt (or k >= bytes) leaves the operation untouched.
  using TornWriteHook = std::function<std::optional<std::size_t>(
      FileOp, const std::string& path, std::size_t bytes)>;

  explicit SharedFileSystem(LatencyModel latency = {}) : latency_(latency) {}

  /// Install (or clear, with an empty function) the fault hook.
  void set_fault_hook(FaultHook hook);
  /// Install (or clear, with an empty function) the torn-write hook.
  void set_torn_write_hook(TornWriteHook hook);

  /// Create or replace. `now` stamps mtime (simulation seconds).
  void write(std::string_view path, std::string content, double now = 0.0,
             std::string_view producer = "");

  /// Append to an existing file (create if absent). `now` stamps mtime.
  void append(std::string_view path, std::string_view data, double now = 0.0,
              std::string_view producer = "");

  /// Atomically move `from` onto `to` (replacing any existing file, POSIX
  /// rename semantics). Throws NotFoundError if `from` is absent. The
  /// fault hook sees FileOp::Rename with the *source* path, so a chaos
  /// kill point can fire between a WAL segment's final write and the
  /// rename that seals it.
  void rename(std::string_view from, std::string_view to);

  /// Durability barrier (fsync stand-in). Contents are always in memory
  /// here, so this only feeds the fault hook — a throwing hook models a
  /// failed fsync — and the sync-count accounting benches report.
  void sync(std::string_view path);

  /// Content or throws NotFoundError.
  std::string read(std::string_view path) const;
  bool exists(std::string_view path) const;
  /// Metadata or nullopt.
  std::optional<FileInfo> stat(std::string_view path) const;
  /// Delete; throws NotFoundError if absent.
  void remove(std::string_view path);

  /// All files whose path starts with `dir_prefix`, sorted by path.
  std::vector<FileInfo> list(std::string_view dir_prefix = "/") const;

  std::size_t file_count() const;
  std::size_t total_bytes() const;

  const LatencyModel& latency() const { return latency_; }
  /// Simulated cost of reading/writing a file of the given size.
  double read_cost(std::size_t bytes) const { return latency_.read_cost(bytes); }
  double write_cost(std::size_t bytes) const { return latency_.write_cost(bytes); }

  // ---- I/O accounting (for the benches' data-volume reports) ----
  std::size_t bytes_written() const;
  std::size_t bytes_read() const;
  std::size_t sync_count() const;

 private:
  struct Entry {
    std::string content;
    FileInfo info;
  };
  /// Normalise: ensure a single leading '/', collapse duplicate slashes.
  static std::string normalize(std::string_view path);

  /// Copy the hooks out under the lock so a concurrent set_*_hook cannot
  /// race the invocation.
  FaultHook fault_hook_snapshot() const;
  TornWriteHook torn_write_hook_snapshot() const;

  LatencyModel latency_;  ///< immutable after construction
  mutable Mutex mutex_{"vfs.fs"};
  FaultHook fault_hook_ SCIDOCK_GUARDED_BY(mutex_);
  TornWriteHook torn_write_hook_ SCIDOCK_GUARDED_BY(mutex_);
  /// Sorted by path for cheap prefix listing.
  std::vector<Entry> entries_ SCIDOCK_GUARDED_BY(mutex_);
  std::size_t bytes_written_ SCIDOCK_GUARDED_BY(mutex_) = 0;
  mutable std::size_t bytes_read_ SCIDOCK_GUARDED_BY(mutex_) = 0;
  std::size_t sync_count_ SCIDOCK_GUARDED_BY(mutex_) = 0;
};

/// Split "/a/b/c.dlg" into directory "/a/b/" and name "c.dlg".
std::pair<std::string, std::string> split_path(std::string_view path);

}  // namespace scidock::vfs
