file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_docking.dir/bench_table3_docking.cpp.o"
  "CMakeFiles/bench_table3_docking.dir/bench_table3_docking.cpp.o.d"
  "bench_table3_docking"
  "bench_table3_docking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_docking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
