// Property-based sweeps (parameterised gtest): invariants that must hold
// across the whole dataset and across random seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "data/generator.hpp"
#include "data/table2.hpp"
#include "dock/conformation.hpp"
#include "dock/scoring.hpp"
#include "mol/charges.hpp"
#include "mol/io_pdb.hpp"
#include "mol/io_pdbqt.hpp"
#include "mol/io_sdf.hpp"
#include "mol/prepare.hpp"
#include "prov/prov.hpp"
#include "sql/engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "wf/sim_executor.hpp"

namespace scidock {
namespace {

// --------------------------------------------------- every ligand code

class LigandProperty : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllTable2Ligands, LigandProperty,
                         ::testing::ValuesIn(data::table2_ligands()),
                         [](const auto& param_info) { return "lig_" + param_info.param; });

TEST_P(LigandProperty, GeneratesPreparesAndRoundTrips) {
  mol::Molecule lig = data::make_ligand(GetParam());
  ASSERT_GT(lig.atom_count(), 6);

  // SDF round trip preserves the molecule.
  const mol::Molecule back = mol::read_sdf(mol::write_sdf(lig), GetParam());
  ASSERT_EQ(back.atom_count(), lig.atom_count());
  ASSERT_EQ(back.bond_count(), lig.bond_count());

  // Preparation succeeds: charges neutral, all atoms parameterised.
  const mol::PreparedLigand prep = mol::prepare_ligand(std::move(lig));
  EXPECT_NEAR(mol::total_charge(prep.molecule), 0.0, 1e-6);
  EXPECT_TRUE(prep.molecule.fully_parameterised());

  // PDBQT round trip preserves the torsion count.
  const mol::PdbqtModel model = mol::read_pdbqt(prep.pdbqt);
  EXPECT_EQ(model.torsions.torsion_count(), prep.torsions.torsion_count());
}

TEST_P(LigandProperty, TorsionApplyPreservesBondLengths) {
  const mol::PreparedLigand prep =
      mol::prepare_ligand(data::make_ligand(GetParam()));
  Rng rng(fnv1a64(GetParam()));
  const auto ref = prep.molecule.coordinates();
  for (int trial = 0; trial < 5; ++trial) {
    dock::DockPose pose = dock::DockPose::random(
        dock::GridBox::around({0, 0, 0}, 10.0, 1.0), {0, 0, 0},
        prep.torsions.torsion_count(), rng);
    const auto out = prep.torsions.apply(ref, pose.rigid, pose.torsions);
    for (const mol::Bond& b : prep.molecule.bonds()) {
      const double before =
          mol::distance(ref[static_cast<std::size_t>(b.a)],
                        ref[static_cast<std::size_t>(b.b)]);
      const double after =
          mol::distance(out[static_cast<std::size_t>(b.a)],
                        out[static_cast<std::size_t>(b.b)]);
      EXPECT_NEAR(before, after, 1e-6);
    }
  }
}

// ------------------------------------------------- receptor code sample

class ReceptorProperty : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    SampledTable2Receptors, ReceptorProperty,
    ::testing::Values("1AEC", "1HUC", "1S4V", "2HHN", "2ACT", "3BC3", "4AXL",
                      "9PAP", "1CS8", "2PAD", "3IOQ", "7PCK"),
    [](const auto& param_info) { return "rec_" + param_info.param; });

TEST_P(ReceptorProperty, GeneratesParsesAndPrepares) {
  data::GeneratorOptions opts;
  opts.min_residues = 12;
  opts.max_residues = 36;
  const mol::Molecule rec = data::make_receptor(GetParam(), opts);
  ASSERT_GT(rec.atom_count(), 40);

  // PDB round trip.
  const mol::Molecule back = mol::read_pdb(mol::write_pdb(rec), GetParam());
  ASSERT_EQ(back.atom_count(), rec.atom_count());

  // Preparation: Hg receptors throw, the rest produce a rigid PDBQT.
  if (data::receptor_has_hg(GetParam(), opts)) {
    EXPECT_THROW(mol::prepare_receptor(back), ActivityError);
  } else {
    const mol::PreparedReceptor prep = mol::prepare_receptor(back);
    EXPECT_TRUE(prep.molecule.fully_parameterised());
    EXPECT_FALSE(prep.pdbqt.empty());
    // Waters never survive preparation.
    for (const mol::Atom& a : prep.molecule.atoms()) {
      EXPECT_NE(a.residue_name, "HOH");
    }
  }
}

// ------------------------------------------------ scoring function sweep

struct PairParam {
  mol::AdType a;
  mol::AdType b;
};

class ScoringProperty : public ::testing::TestWithParam<PairParam> {};

INSTANTIATE_TEST_SUITE_P(
    TypePairs, ScoringProperty,
    ::testing::Values(PairParam{mol::AdType::C, mol::AdType::C},
                      PairParam{mol::AdType::C, mol::AdType::OA},
                      PairParam{mol::AdType::A, mol::AdType::N},
                      PairParam{mol::AdType::OA, mol::AdType::HD},
                      PairParam{mol::AdType::SA, mol::AdType::HD},
                      PairParam{mol::AdType::Cl, mol::AdType::C},
                      PairParam{mol::AdType::Zn, mol::AdType::OA},
                      PairParam{mol::AdType::Br, mol::AdType::A}),
    [](const auto& param_info) {
      return std::string(mol::ad_type_name(param_info.param.a)) + "_" +
             std::string(mol::ad_type_name(param_info.param.b));
    });

TEST_P(ScoringProperty, Ad4PairEnergyIsFiniteSymmetricAndDecays) {
  const auto [ta, tb] = GetParam();
  for (double r = 0.2; r < 12.0; r += 0.1) {
    const double e_ab = dock::ad4_pair_energy(ta, 0.1, tb, -0.2, r);
    const double e_ba = dock::ad4_pair_energy(tb, -0.2, ta, 0.1, r);
    EXPECT_TRUE(std::isfinite(e_ab)) << r;
    EXPECT_NEAR(e_ab, e_ba, 1e-9) << r;  // symmetry
  }
  // Interaction decays to ~nothing at long range.
  EXPECT_NEAR(dock::ad4_pair_energy(ta, 0.1, tb, -0.2, 50.0), 0.0, 0.05);
}

TEST_P(ScoringProperty, VinaPairEnergyIsFiniteSymmetricAndCutoff) {
  const auto [ta, tb] = GetParam();
  for (double r = 0.2; r < 9.0; r += 0.1) {
    const double e_ab = dock::vina_pair_energy(ta, tb, r);
    const double e_ba = dock::vina_pair_energy(tb, ta, r);
    EXPECT_TRUE(std::isfinite(e_ab)) << r;
    EXPECT_DOUBLE_EQ(e_ab, e_ba) << r;
  }
  EXPECT_DOUBLE_EQ(dock::vina_pair_energy(ta, tb, 8.0), 0.0);
}

// -------------------------------------------- simulated executor sweep

struct SimParam {
  int cores;
  std::uint64_t seed;
};

class SimExecutorProperty : public ::testing::TestWithParam<SimParam> {};

INSTANTIATE_TEST_SUITE_P(
    CoresAndSeeds, SimExecutorProperty,
    ::testing::Values(SimParam{2, 1}, SimParam{4, 1}, SimParam{8, 2},
                      SimParam{16, 3}, SimParam{32, 4}),
    [](const auto& param_info) {
      return "c" + std::to_string(param_info.param.cores) + "_s" +
             std::to_string(param_info.param.seed);
    });

TEST_P(SimExecutorProperty, ConservationAndBounds) {
  const auto [cores, seed] = GetParam();
  wf::Pipeline p;
  p.add_stage(wf::Stage{"a", wf::AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr});
  p.add_stage(wf::Stage{"b", wf::AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr});
  cloud::CostModel model;
  model.set_cost({"a", 20.0, 0.4, 1.0});
  model.set_cost({"b", 10.0, 0.4, 1.0});

  wf::Relation rel{{"id"}};
  for (int i = 0; i < 60; ++i) {
    wf::Tuple t;
    t.set("id", std::to_string(i));
    rel.add(std::move(t));
  }

  wf::SimExecutorOptions opts;
  opts.fleet = wf::m3_fleet_for_cores(cores);
  opts.failure.failure_probability = 0.1;
  opts.failure.hang_probability = 0.0;
  opts.seed = seed;
  const wf::SimReport report =
      wf::SimulatedExecutor(p, model, opts).run(rel);

  // Conservation: every tuple is either completed or lost.
  EXPECT_EQ(report.tuples_completed, 60);
  // Completed tuples each finish both stages exactly once.
  EXPECT_EQ(report.activations_finished, 2 * (60 - report.tuples_lost));
  // TET is bounded below by total successful work / cores (no free lunch).
  double total_work = 0.0;
  for (const auto& [tag, stats] : report.per_activity_seconds) {
    total_work += stats.sum();
  }
  EXPECT_GE(report.total_execution_time_s * cores, total_work * 0.99);
  // Per-activity stats cover exactly the finished activations.
  std::size_t counted = 0;
  for (const auto& [tag, stats] : report.per_activity_seconds) {
    counted += stats.count();
  }
  EXPECT_EQ(static_cast<long long>(counted), report.activations_finished);
}

// --------------------------------------------------------- SQL property

class SqlAggregateProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SqlAggregateProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST_P(SqlAggregateProperty, GroupedAggregatesMatchManualComputation) {
  Rng rng(GetParam());
  sql::Database db;
  sql::Engine engine(db);
  engine.execute("CREATE TABLE x (grp int, v float)");
  std::map<int, std::vector<double>> expected;
  for (int i = 0; i < 200; ++i) {
    const int grp = static_cast<int>(rng.below(5));
    const double v = rng.normal(10.0, 4.0);
    expected[grp].push_back(v);
    engine.execute(strformat("INSERT INTO x VALUES (%d, %.17g)", grp, v));
  }
  const sql::ResultSet rs = engine.execute(
      "SELECT grp, count(*), sum(v), min(v), max(v), avg(v) FROM x "
      "GROUP BY grp ORDER BY grp");
  ASSERT_EQ(rs.rows.size(), expected.size());
  std::size_t row = 0;
  for (const auto& [grp, values] : expected) {
    const sql::Row& r = rs.rows[row++];
    EXPECT_EQ(r[0].as_int(), grp);
    EXPECT_EQ(r[1].as_int(), static_cast<std::int64_t>(values.size()));
    double sum = 0.0;
    double lo = values[0], hi = values[0];
    for (double v : values) {
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_NEAR(r[2].as_double(), sum, 1e-6);
    EXPECT_NEAR(r[3].as_double(), lo, 1e-9);
    EXPECT_NEAR(r[4].as_double(), hi, 1e-9);
    EXPECT_NEAR(r[5].as_double(), sum / values.size(), 1e-9);
  }
}

TEST_P(SqlAggregateProperty, WherePartitionIsExhaustive) {
  Rng rng(GetParam() + 100);
  sql::Database db;
  sql::Engine engine(db);
  engine.execute("CREATE TABLE y (v float)");
  for (int i = 0; i < 100; ++i) {
    engine.execute(strformat("INSERT INTO y VALUES (%.17g)", rng.uniform(-1, 1)));
  }
  const auto lt = engine.execute("SELECT count(*) FROM y WHERE v < 0");
  const auto ge = engine.execute("SELECT count(*) FROM y WHERE v >= 0");
  EXPECT_EQ(lt.rows[0][0].as_int() + ge.rows[0][0].as_int(), 100);
}

// ---------------------------- sharded provenance query equivalence

/// Record one pseudo-random PROV-Wf workload. Driven purely by `seed`,
/// so recording the same seed into two stores yields identical logical
/// content regardless of their shard counts.
void record_random_prov(std::uint64_t seed, prov::ProvenanceStore& store) {
  Rng rng(seed);
  const int machines = 2 + static_cast<int>(rng.below(3));
  for (int m = 1; m <= machines; ++m) {
    store.record_machine(m, "vm-" + std::to_string(m), 4 * m,
                         1.0 + 0.25 * m);
  }
  const int workflows = 1 + static_cast<int>(rng.below(2));
  double t = 0.0;
  for (int w = 0; w < workflows; ++w) {
    const long long wkf = store.begin_workflow(
        "wf-" + std::to_string(w), "sharded-query property", "/exp", t);
    std::vector<long long> acts;
    const int nact = 2 + static_cast<int>(rng.below(3));
    for (int a = 0; a < nact; ++a) {
      acts.push_back(store.register_activity(wkf, "act-" + std::to_string(a),
                                             "cmd --stage " + std::to_string(a),
                                             a % 2 == 0 ? "MAP" : "FILTER"));
    }
    const int n = 80 + static_cast<int>(rng.below(60));
    for (int i = 0; i < n; ++i) {
      const long long act = acts[rng.below(acts.size())];
      const long long vm = 1 + static_cast<long long>(rng.below(machines));
      const std::string id = std::to_string(i);
      const long long task =
          store.begin_activation(act, wkf, t, vm, "pair-" + id);
      if (rng.chance(0.5)) {
        store.record_file(wkf, act, task,
                          "out-" + id + (rng.chance(0.5) ? ".dlg" : ".log"),
                          100 + static_cast<std::size_t>(i), "/out");
      }
      if (rng.chance(0.4)) {
        store.record_value(task, "energy", rng.uniform(-12.0, -2.0),
                           "kcal/mol");
      }
      if (rng.chance(0.05)) {  // leave RUNNING: NULL endtime in scans
        t += 0.125;
        continue;
      }
      const double u = rng.uniform();
      const std::string_view status = u < 0.7   ? prov::kStatusFinished
                                      : u < 0.9 ? prov::kStatusFailed
                                                : prov::kStatusAborted;
      store.end_activation(task, t + rng.uniform(0.1, 3.0), status,
                           status == prov::kStatusFinished ? 0 : 1,
                           1 + static_cast<int>(rng.below(3)));
      t += 0.125;
    }
    store.end_workflow(wkf, t);
  }
}

/// Shipped-query-shaped workload: scans, the paper's Query 1/2 joins,
/// grouped aggregates, and an ORDER BY ... LIMIT steering query (duration
/// keys are continuous draws, so ties have measure zero).
std::vector<std::string> sharded_equivalence_queries() {
  return {
      "SELECT taskid, actid, wkfid, status, attempts, vmid "
      "FROM hactivation",
      "SELECT status, count(*) FROM hactivation GROUP BY status "
      "ORDER BY status",
      "SELECT count(*) FROM hactivation WHERE attempts > 1",
      "SELECT a.tag, "
      "min(extract ('epoch' from (t.endtime-t.starttime))), "
      "max(extract ('epoch' from (t.endtime-t.starttime))), "
      "sum(extract ('epoch' from (t.endtime-t.starttime))), "
      "avg(extract ('epoch' from (t.endtime-t.starttime))) "
      "FROM hworkflow w, hactivity a, hactivation t "
      "WHERE w.wkfid = a.wkfid AND a.actid = t.actid AND w.wkfid = 1 "
      "GROUP BY a.tag",
      "SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir "
      "FROM hworkflow w, hactivity a, hfile f "
      "WHERE w.wkfid = a.wkfid AND a.actid = f.actid "
      "AND f.fname LIKE '%.dlg' ORDER BY f.fileid",
      "SELECT t.vmid, count(*), "
      "avg(extract('epoch' from (t.endtime - t.starttime))) "
      "FROM hactivation t WHERE t.status = 'FINISHED' "
      "GROUP BY t.vmid ORDER BY t.vmid",
      "SELECT a.tag, t.workload, "
      "extract('epoch' from (t.endtime - t.starttime)) dur "
      "FROM hactivity a, hactivation t "
      "WHERE a.actid = t.actid AND t.status = 'FINISHED' "
      "ORDER BY dur DESC LIMIT 12",
      "SELECT avg(value_num), min(value_num), max(value_num), count(*) "
      "FROM hvalue",
  };
}

/// Order-independent row-set canonicalisation. Doubles are printed at 9
/// significant digits: partial aggregation sums shards in a different
/// order than a single-shard fold, so the last bits may legally differ.
std::vector<std::string> canonical_rows(const sql::ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const sql::Row& row : rs.rows) {
    std::string s;
    for (const sql::Value& v : row) {
      if (v.is_null()) {
        s += "|null";
      } else if (v.is_double()) {
        s += strformat("|d:%.9g", v.as_double());
      } else if (v.is_int()) {
        s += strformat("|i:%lld", static_cast<long long>(v.as_int()));
      } else {
        s += "|s:" + v.as_string();
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class ShardedProvQueryProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedProvQueryProperty,
                         ::testing::Values(7u, 8u, 9u));

TEST_P(ShardedProvQueryProperty, ShardedSelectsMatchSingleShard) {
  const std::uint64_t seed = GetParam();
  prov::ProvenanceStore single;  // the reference: one shard, one engine
  record_random_prov(seed, single);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    prov::ProvenanceStoreOptions options;
    options.shard_count = shards;  // volatile: a pure planner test
    prov::ProvenanceStore sharded(options);
    record_random_prov(seed, sharded);
    for (const std::string& q : sharded_equivalence_queries()) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " sql=" + q);
      const sql::ResultSet expect = single.query(q);
      const sql::ResultSet got = sharded.query(q);
      EXPECT_EQ(expect.columns, got.columns);
      EXPECT_EQ(canonical_rows(expect), canonical_rows(got));
    }
  }
}

// ------------------------------------------ charge neutrality everywhere

class ChargeProperty : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Ligands, ChargeProperty,
                         ::testing::ValuesIn(data::table3_ligands()),
                         [](const auto& param_info) { return "chg_" + param_info.param; });

TEST_P(ChargeProperty, GasteigerConvergesAndIsNeutral) {
  mol::Molecule lig = data::make_ligand(GetParam());
  mol::GasteigerOptions opts;
  opts.iterations = 12;  // double the default: charges must stay stable
  mol::assign_gasteiger_charges(lig, opts);
  EXPECT_NEAR(mol::total_charge(lig), 0.0, 1e-9);
  for (const mol::Atom& a : lig.atoms()) {
    EXPECT_LT(std::abs(a.partial_charge), 1.0) << a.name;  // physical range
  }
}

}  // namespace
}  // namespace scidock
