file(REMOVE_RECURSE
  "CMakeFiles/scidock_wf.dir/native_executor.cpp.o"
  "CMakeFiles/scidock_wf.dir/native_executor.cpp.o.d"
  "CMakeFiles/scidock_wf.dir/pipeline.cpp.o"
  "CMakeFiles/scidock_wf.dir/pipeline.cpp.o.d"
  "CMakeFiles/scidock_wf.dir/relation.cpp.o"
  "CMakeFiles/scidock_wf.dir/relation.cpp.o.d"
  "CMakeFiles/scidock_wf.dir/relational.cpp.o"
  "CMakeFiles/scidock_wf.dir/relational.cpp.o.d"
  "CMakeFiles/scidock_wf.dir/scheduler.cpp.o"
  "CMakeFiles/scidock_wf.dir/scheduler.cpp.o.d"
  "CMakeFiles/scidock_wf.dir/sim_executor.cpp.o"
  "CMakeFiles/scidock_wf.dir/sim_executor.cpp.o.d"
  "CMakeFiles/scidock_wf.dir/spec.cpp.o"
  "CMakeFiles/scidock_wf.dir/spec.cpp.o.d"
  "CMakeFiles/scidock_wf.dir/template.cpp.o"
  "CMakeFiles/scidock_wf.dir/template.cpp.o.d"
  "CMakeFiles/scidock_wf.dir/workflow.cpp.o"
  "CMakeFiles/scidock_wf.dir/workflow.cpp.o.d"
  "libscidock_wf.a"
  "libscidock_wf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_wf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
