#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::obs {

int current_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ----------------------------------------------------------------- recorder

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::record(TraceEvent event) {
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard =
      shards_[static_cast<std::size_t>(current_thread_id()) % kShards];
  MutexLock lock(shard.mutex);
  shard.events.push_back(std::move(event));
}

std::uint64_t TraceRecorder::begin_span(std::string_view name,
                                        std::string_view category,
                                        TraceArgs args) {
  const std::uint64_t id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent e;
  e.name = std::string(name);
  e.category = std::string(category);
  e.phase = TraceEvent::Phase::Begin;
  e.ts_us = now_us();
  e.tid = current_thread_id();
  e.span_id = id;
  e.args = std::move(args);
  record(std::move(e));
  return id;
}

void TraceRecorder::end_span(std::uint64_t span_id, TraceArgs args) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::End;
  e.ts_us = now_us();
  e.tid = current_thread_id();
  e.span_id = span_id;
  e.args = std::move(args);
  record(std::move(e));
}

void TraceRecorder::complete_span(std::string_view name,
                                  std::string_view category, double ts_us,
                                  double dur_us, long long tid,
                                  TraceArgs args) {
  TraceEvent e;
  e.name = std::string(name);
  e.category = std::string(category);
  e.phase = TraceEvent::Phase::Complete;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = tid;
  e.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  e.args = std::move(args);
  record(std::move(e));
}

void TraceRecorder::instant(std::string_view name, std::string_view category,
                            double ts_us, long long tid, TraceArgs args) {
  TraceEvent e;
  e.name = std::string(name);
  e.category = std::string(category);
  e.phase = TraceEvent::Phase::Instant;
  e.ts_us = ts_us < 0.0 ? now_us() : ts_us;
  e.tid = tid < 0 ? current_thread_id() : tid;
  e.args = std::move(args);
  record(std::move(e));
}

std::size_t TraceRecorder::event_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    n += shard.events.size();
  }
  return n;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> all;
  all.reserve(event_count());
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    all.insert(all.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.seq < b.seq;
            });
  return all;
}

// ---------------------------------------------------------------- span tree

std::size_t SpanTree::span_count() const {
  std::size_t n = 0;
  // Iterative DFS over every row's forest.
  std::vector<const SpanNode*> stack;
  for (const auto& [tid, roots] : roots_by_tid) {
    for (const SpanNode& r : roots) stack.push_back(&r);
  }
  while (!stack.empty()) {
    const SpanNode* node = stack.back();
    stack.pop_back();
    ++n;
    for (const SpanNode& c : node->children) stack.push_back(&c);
  }
  return n;
}

const std::vector<SpanNode>* SpanTree::roots_for(long long tid) const {
  for (const auto& [row_tid, roots] : roots_by_tid) {
    if (row_tid == tid) return &roots;
  }
  return nullptr;
}

SpanTree build_span_tree(const std::vector<TraceEvent>& events) {
  SpanTree tree;
  struct Row {
    std::vector<SpanNode> roots;
    /// Path of open spans, as child indices from the root vector: the
    /// nodes themselves live inside `roots` so only indices are stable.
    std::vector<std::size_t> open;
  };
  std::vector<std::pair<long long, Row>> rows;
  auto row_for = [&rows](long long tid) -> Row& {
    for (auto& [row_tid, row] : rows) {
      if (row_tid == tid) return row;
    }
    rows.emplace_back(tid, Row{});
    return rows.back().second;
  };
  auto open_top = [](Row& row) -> SpanNode* {
    if (row.open.empty()) return nullptr;
    SpanNode* node = &row.roots[row.open.front()];
    for (std::size_t i = 1; i < row.open.size(); ++i) {
      node = &node->children[row.open[i]];
    }
    return node;
  };

  for (const TraceEvent& e : events) {
    Row& row = row_for(e.tid);
    switch (e.phase) {
      case TraceEvent::Phase::Begin: {
        SpanNode node;
        node.name = e.name;
        node.category = e.category;
        node.start_us = e.ts_us;
        node.tid = e.tid;
        node.span_id = e.span_id;
        node.args = e.args;
        SpanNode* parent = open_top(row);
        if (parent == nullptr) {
          row.roots.push_back(std::move(node));
          row.open.push_back(row.roots.size() - 1);
        } else {
          parent->children.push_back(std::move(node));
          row.open.push_back(parent->children.size() - 1);
        }
        break;
      }
      case TraceEvent::Phase::End: {
        SpanNode* top = open_top(row);
        if (top == nullptr) {
          tree.errors.push_back(strformat(
              "orphan End (span id %llu) on tid %lld at %.3f us with no "
              "open span",
              static_cast<unsigned long long>(e.span_id), e.tid, e.ts_us));
          break;
        }
        if (top->span_id != e.span_id) {
          tree.errors.push_back(strformat(
              "End for span id %llu on tid %lld does not match open span "
              "id %llu ('%s') — spans are not well-nested",
              static_cast<unsigned long long>(e.span_id), e.tid,
              static_cast<unsigned long long>(top->span_id),
              top->name.c_str()));
          break;
        }
        top->end_us = e.ts_us;
        for (const auto& kv : e.args) top->args.push_back(kv);
        row.open.pop_back();
        break;
      }
      case TraceEvent::Phase::Complete: {
        SpanNode node;
        node.name = e.name;
        node.category = e.category;
        node.start_us = e.ts_us;
        node.end_us = e.ts_us + e.dur_us;
        node.tid = e.tid;
        node.span_id = e.span_id;
        node.args = e.args;
        SpanNode* parent = open_top(row);
        if (parent == nullptr) {
          row.roots.push_back(std::move(node));
        } else {
          parent->children.push_back(std::move(node));
        }
        break;
      }
      case TraceEvent::Phase::Instant:
        break;  // points, not spans
    }
  }

  for (auto& [tid, row] : rows) {
    if (!row.open.empty()) {
      const SpanNode* top = open_top(row);
      tree.errors.push_back(strformat(
          "span '%s' (id %llu) on tid %lld was never closed", top->name.c_str(),
          static_cast<unsigned long long>(top->span_id), tid));
    }
    tree.roots_by_tid.emplace_back(tid, std::move(row.roots));
  }
  std::sort(tree.roots_by_tid.begin(), tree.roots_by_tid.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return tree;
}

// ------------------------------------------------------------- JSON export

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* phase_code(TraceEvent::Phase phase) {
  switch (phase) {
    case TraceEvent::Phase::Begin: return "B";
    case TraceEvent::Phase::End: return "E";
    case TraceEvent::Phase::Complete: return "X";
    case TraceEvent::Phase::Instant: return "i";
  }
  return "i";
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<TraceEvent> all = events();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : all) {
    if (!first) out += ",\n";
    first = false;
    out += strformat("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                     "\"ts\":%.3f,",
                     json_escape(e.name).c_str(),
                     json_escape(e.category).c_str(), phase_code(e.phase),
                     e.ts_us);
    if (e.phase == TraceEvent::Phase::Complete) {
      out += strformat("\"dur\":%.3f,", e.dur_us);
    }
    if (e.phase == TraceEvent::Phase::Instant) {
      out += "\"s\":\"t\",";  // instant scope: thread
    }
    out += strformat("\"pid\":1,\"tid\":%lld,\"id\":%llu", e.tid,
                     static_cast<unsigned long long>(e.span_id));
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += strformat("\"%s\":\"%s\"", json_escape(k).c_str(),
                         json_escape(v).c_str());
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

// ------------------------------------------------------------- JSON parser

namespace {

/// Cursor over the emitted Chrome-JSON subset: an object holding a
/// "traceEvents" array of flat objects whose values are strings, numbers
/// or one level of {"string": "string"} args.
class MiniJsonCursor {
 public:
  explicit MiniJsonCursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      throw ParseError("chrome-trace",
                       strformat("expected '%c' at offset %zu", c, pos_));
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      throw ParseError("chrome-trace", "unexpected end of input");
    }
    return text_[pos_];
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw ParseError("chrome-trace", "truncated \\u escape");
            }
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            c = static_cast<char>(std::stoi(hex, nullptr, 16));
            break;
          }
          default: c = esc;
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) {
      throw ParseError("chrome-trace",
                       strformat("expected number at offset %zu", start));
    }
    return parse_double(text_.substr(start, pos_ - start), "trace number");
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

TraceEvent::Phase phase_from_code(std::string_view code) {
  if (code == "B") return TraceEvent::Phase::Begin;
  if (code == "E") return TraceEvent::Phase::End;
  if (code == "X") return TraceEvent::Phase::Complete;
  if (code == "i") return TraceEvent::Phase::Instant;
  throw ParseError("chrome-trace", "unknown phase '" + std::string(code) + "'");
}

TraceEvent parse_event_object(MiniJsonCursor& cur) {
  TraceEvent e;
  cur.expect('{');
  bool first = true;
  while (cur.peek() != '}') {
    if (!first) cur.expect(',');
    first = false;
    const std::string key = cur.parse_string();
    cur.expect(':');
    if (key == "args") {
      cur.expect('{');
      bool first_arg = true;
      while (cur.peek() != '}') {
        if (!first_arg) cur.expect(',');
        first_arg = false;
        std::string k = cur.parse_string();
        cur.expect(':');
        std::string v = cur.parse_string();
        e.args.emplace_back(std::move(k), std::move(v));
      }
      cur.expect('}');
      continue;
    }
    if (cur.peek() == '"') {
      const std::string value = cur.parse_string();
      if (key == "name") e.name = value;
      else if (key == "cat") e.category = value;
      else if (key == "ph") e.phase = phase_from_code(value);
      // "s" (instant scope) and unknown string fields are tolerated.
      continue;
    }
    const double value = cur.parse_number();
    if (key == "ts") e.ts_us = value;
    else if (key == "dur") e.dur_us = value;
    else if (key == "tid") e.tid = static_cast<long long>(value);
    else if (key == "id") e.span_id = static_cast<std::uint64_t>(value);
    // "pid" and unknown numeric fields are tolerated.
  }
  cur.expect('}');
  return e;
}

}  // namespace

std::vector<TraceEvent> parse_chrome_trace(std::string_view json) {
  MiniJsonCursor cur(json);
  cur.expect('{');
  const std::string key = cur.parse_string();
  if (key != "traceEvents") {
    throw ParseError("chrome-trace", "expected traceEvents, got " + key);
  }
  cur.expect(':');
  cur.expect('[');
  std::vector<TraceEvent> events;
  if (cur.peek() != ']') {
    for (;;) {
      events.push_back(parse_event_object(cur));
      if (!cur.consume(',')) break;
    }
  }
  cur.expect(']');
  cur.expect('}');
  if (!cur.at_end()) {
    throw ParseError("chrome-trace", "trailing content after trace object");
  }
  // Re-assign record order so downstream tree building keeps file order
  // for identical timestamps.
  for (std::size_t i = 0; i < events.size(); ++i) events[i].seq = i;
  return events;
}

}  // namespace scidock::obs
