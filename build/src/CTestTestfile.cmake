# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("mol")
subdirs("dock")
subdirs("xml")
subdirs("sql")
subdirs("vfs")
subdirs("prov")
subdirs("cloud")
subdirs("wf")
subdirs("chaos")
subdirs("data")
subdirs("scidock")
subdirs("tools")
