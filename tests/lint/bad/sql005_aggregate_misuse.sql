SELECT tag FROM hworkflow WHERE count(*) > 1
