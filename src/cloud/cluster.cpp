#include "cloud/cluster.hpp"

#include <cmath>

#include "util/error.hpp"

namespace scidock::cloud {

VirtualCluster::VirtualCluster(Simulation& sim, Rng rng, ClusterOptions opts)
    : sim_(sim), rng_(std::move(rng)), opts_(opts) {}

long long VirtualCluster::acquire(const VmType& type) {
  VmInstance vm;
  vm.id = next_id_++;
  vm.type = type;
  vm.performance_jitter = rng_.lognormal(0.0, opts_.performance_jitter_sigma);
  const double boot = std::max(
      1.0, rng_.normal(opts_.boot_latency_mean_s, opts_.boot_latency_jitter_s));
  vm.boot_completed_at = sim_.now() + boot;
  instances_.push_back(vm);
  acquired_at_.push_back(sim_.now());
  return vm.id;
}

void VirtualCluster::release(long long vm_id) {
  VmInstance& vm = instance_mut(vm_id);
  SCIDOCK_REQUIRE(vm.alive(), "VM already released");
  vm.released_at = sim_.now();
}

const VmInstance& VirtualCluster::instance(long long vm_id) const {
  for (const VmInstance& vm : instances_) {
    if (vm.id == vm_id) return vm;
  }
  throw NotFoundError("VM instance", std::to_string(vm_id));
}

VmInstance& VirtualCluster::instance_mut(long long vm_id) {
  for (VmInstance& vm : instances_) {
    if (vm.id == vm_id) return vm;
  }
  throw NotFoundError("VM instance", std::to_string(vm_id));
}

std::vector<const VmInstance*> VirtualCluster::alive() const {
  std::vector<const VmInstance*> out;
  for (const VmInstance& vm : instances_) {
    if (vm.alive()) out.push_back(&vm);
  }
  return out;
}

int VirtualCluster::alive_count() const {
  int n = 0;
  for (const VmInstance& vm : instances_) {
    if (vm.alive()) ++n;
  }
  return n;
}

int VirtualCluster::total_cores() const {
  int n = 0;
  for (const VmInstance& vm : instances_) {
    if (vm.alive()) n += vm.type.cores;
  }
  return n;
}

double VirtualCluster::accumulated_cost_usd() const {
  double cost = 0.0;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const VmInstance& vm = instances_[i];
    const double end = vm.alive() ? sim_.now() : vm.released_at;
    const double hours = std::max(0.0, end - acquired_at_[i]) / 3600.0;
    cost += std::ceil(std::max(hours, 1e-9)) * vm.type.hourly_cost_usd;
  }
  return cost;
}

}  // namespace scidock::cloud
