
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wf/native_executor.cpp" "src/wf/CMakeFiles/scidock_wf.dir/native_executor.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/native_executor.cpp.o.d"
  "/root/repo/src/wf/pipeline.cpp" "src/wf/CMakeFiles/scidock_wf.dir/pipeline.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/pipeline.cpp.o.d"
  "/root/repo/src/wf/relation.cpp" "src/wf/CMakeFiles/scidock_wf.dir/relation.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/relation.cpp.o.d"
  "/root/repo/src/wf/relational.cpp" "src/wf/CMakeFiles/scidock_wf.dir/relational.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/relational.cpp.o.d"
  "/root/repo/src/wf/scheduler.cpp" "src/wf/CMakeFiles/scidock_wf.dir/scheduler.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/scheduler.cpp.o.d"
  "/root/repo/src/wf/sim_executor.cpp" "src/wf/CMakeFiles/scidock_wf.dir/sim_executor.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/sim_executor.cpp.o.d"
  "/root/repo/src/wf/spec.cpp" "src/wf/CMakeFiles/scidock_wf.dir/spec.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/spec.cpp.o.d"
  "/root/repo/src/wf/template.cpp" "src/wf/CMakeFiles/scidock_wf.dir/template.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/template.cpp.o.d"
  "/root/repo/src/wf/workflow.cpp" "src/wf/CMakeFiles/scidock_wf.dir/workflow.cpp.o" "gcc" "src/wf/CMakeFiles/scidock_wf.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/scidock_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/prov/CMakeFiles/scidock_prov.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/scidock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/scidock_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/scidock_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scidock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
