#include "mol/io_mol2.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::mol {

namespace {

/// Sybyl atom types are "El" or "El.hyb" (e.g. "C.ar", "N.3", "O.co2").
Element element_from_sybyl(std::string_view type) {
  const std::size_t dot = type.find('.');
  const std::string_view sym = dot == std::string_view::npos ? type : type.substr(0, dot);
  if (auto e = element_from_symbol(sym)) return *e;
  return Element::Unknown;
}

std::string sybyl_type(const Atom& a, bool aromatic) {
  const std::string sym{element_info(a.element).symbol};
  switch (a.element) {
    case Element::C: return aromatic ? "C.ar" : "C.3";
    case Element::N: return aromatic ? "N.ar" : "N.3";
    case Element::O: return "O.3";
    case Element::S: return "S.3";
    default: return sym;
  }
}

}  // namespace

Molecule read_mol2(std::string_view text, std::string_view name) {
  std::istringstream in{std::string(text)};
  std::string line;
  enum class Section { None, Molecule, Atom, Bond } section = Section::None;
  Molecule m{std::string(name)};
  int molecule_line = 0;
  bool any_atoms = false;

  while (std::getline(in, line)) {
    const std::string_view lv = trim(line);
    if (starts_with(lv, "@<TRIPOS>")) {
      const std::string_view tag = lv.substr(9);
      if (iequals(tag, "MOLECULE")) { section = Section::Molecule; molecule_line = 0; }
      else if (iequals(tag, "ATOM")) section = Section::Atom;
      else if (iequals(tag, "BOND")) section = Section::Bond;
      else section = Section::None;
      continue;
    }
    if (lv.empty() || lv[0] == '#') continue;
    switch (section) {
      case Section::Molecule:
        if (molecule_line == 0 && name.empty() && !lv.empty()) {
          m.set_name(std::string(lv));
        }
        ++molecule_line;
        break;
      case Section::Atom: {
        const auto fields = split_ws(lv);
        if (fields.size() < 6) throw ParseError("MOL2", "short atom line: " + line);
        Atom atom;
        atom.serial = static_cast<int>(parse_int(fields[0], "MOL2 atom id"));
        atom.name = fields[1];
        atom.pos.x = parse_double(fields[2], "MOL2 x");
        atom.pos.y = parse_double(fields[3], "MOL2 y");
        atom.pos.z = parse_double(fields[4], "MOL2 z");
        atom.element = element_from_sybyl(fields[5]);
        if (fields.size() >= 8) atom.residue_name = fields[7];
        if (fields.size() >= 9) atom.partial_charge = parse_double(fields[8], "MOL2 charge");
        m.add_atom(std::move(atom));
        any_atoms = true;
        break;
      }
      case Section::Bond: {
        const auto fields = split_ws(lv);
        if (fields.size() < 4) throw ParseError("MOL2", "short bond line: " + line);
        const int a = static_cast<int>(parse_int(fields[1], "MOL2 bond a"));
        const int b = static_cast<int>(parse_int(fields[2], "MOL2 bond b"));
        BondOrder order = BondOrder::Single;
        if (fields[3] == "2") order = BondOrder::Double;
        else if (fields[3] == "3") order = BondOrder::Triple;
        else if (iequals(fields[3], "ar") || iequals(fields[3], "am")) order = BondOrder::Aromatic;
        if (a < 1 || a > m.atom_count() || b < 1 || b > m.atom_count()) {
          throw ParseError("MOL2", "bond index out of range: " + line);
        }
        m.add_bond(a - 1, b - 1, order);
        break;
      }
      default:
        break;
    }
  }
  if (!any_atoms) throw ParseError("MOL2", "no @<TRIPOS>ATOM section");
  return m;
}

std::string write_mol2(const Molecule& mol) {
  Molecule m = mol;  // perceive() for aromaticity without mutating input
  m.perceive();
  std::string out;
  out += "@<TRIPOS>MOLECULE\n";
  out += m.name() + "\n";
  out += strformat("%5d %5d 1 0 0\n", m.atom_count(), m.bond_count());
  out += "SMALL\nGASTEIGER\n\n@<TRIPOS>ATOM\n";
  for (int i = 0; i < m.atom_count(); ++i) {
    const Atom& a = m.atom(i);
    const bool aromatic = a.ad_type == AdType::A;
    out += strformat("%7d %-8s %9.4f %9.4f %9.4f %-8s %3d %-8s %9.4f\n",
                     i + 1, a.name.c_str(), a.pos.x, a.pos.y, a.pos.z,
                     sybyl_type(a, aromatic).c_str(),
                     a.residue_seq > 0 ? a.residue_seq : 1,
                     a.residue_name.empty() ? "LIG" : a.residue_name.c_str(),
                     a.partial_charge);
  }
  out += "@<TRIPOS>BOND\n";
  for (int i = 0; i < m.bond_count(); ++i) {
    const Bond& b = m.bonds()[static_cast<std::size_t>(i)];
    const char* t = "1";
    if (b.order == BondOrder::Double) t = "2";
    else if (b.order == BondOrder::Triple) t = "3";
    else if (b.order == BondOrder::Aromatic) t = "ar";
    out += strformat("%6d %5d %5d %s\n", i + 1, b.a + 1, b.b + 1, t);
  }
  return out;
}

}  // namespace scidock::mol
