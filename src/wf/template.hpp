#pragma once

/// \file template.hpp
/// Template instrumentation (paper §IV.B): activity command templates
/// carry %TAG% placeholders that SciCumulus replaces with tuple field
/// values at activation time; the substituted command plus its parameters
/// land in the provenance repository.

#include <string>
#include <string_view>
#include <vector>

#include "wf/relation.hpp"

namespace scidock::wf {

/// Placeholder names appearing in the template, in order of appearance
/// (duplicates included once).
std::vector<std::string> template_tags(std::string_view template_text);

/// Replace each %TAG% with the tuple field of the same (case-sensitive)
/// name. Throws NotFoundError if the tuple lacks a referenced field.
/// "%%" escapes a literal percent sign.
std::string instantiate_template(std::string_view template_text,
                                 const Tuple& tuple);

}  // namespace scidock::wf
