#pragma once

/// \file autogrid.hpp
/// Grid-map generation — SciDock activity 5 (AutoGrid 4 analog).
///
/// For every ligand atom type present, the calculator samples the summed
/// receptor interaction on each grid point: a type-specific vdW/H-bond
/// affinity map, a unit-charge electrostatic map and a desolvation map.
/// AutoDock 4 then scores poses by trilinear interpolation into these maps.
///
/// The per-point kernel reads the radial LUTs (energy_lut.hpp) indexed by
/// squared distance, and the z-slab loop optionally fans out over a
/// ThreadPool. Each slab writes a disjoint range of every map, so the
/// result is bit-identical for any thread count.

#include <functional>

#include "dock/energy_lut.hpp"
#include "dock/grid.hpp"
#include "dock/scoring.hpp"
#include "mol/molecule.hpp"

namespace scidock {

class ThreadPool;

namespace dock {

struct AutogridOptions {
  double cutoff = 8.0;  ///< Å interaction cutoff (AutoGrid's NBC)
  Ad4Weights weights{};
  /// Called after each z-slab finishes with (slab index, wall seconds).
  /// Invoked from pool workers when calculate() runs parallel, so it must
  /// be thread-safe; the scidock AutoGrid stage installs one that feeds
  /// the obs metrics/trace layer.
  std::function<void(int iz, double seconds)> slab_observer;
};

class GridMapCalculator {
 public:
  /// `receptor` must be prepared (typed + charged).
  GridMapCalculator(const mol::Molecule& receptor, AutogridOptions opts = {});

  /// Compute maps over `box` for the given ligand atom types. With a
  /// `pool`, z-slabs are chunked across its workers; per-slab writes are
  /// disjoint, so output is bit-identical to the serial path.
  GridMapSet calculate(const GridBox& box,
                       const std::vector<mol::AdType>& ligand_types,
                       ThreadPool* pool = nullptr) const;

 private:
  const mol::Molecule& receptor_;
  AutogridOptions opts_;
  std::shared_ptr<const Ad4PairTables> tables_;
  NeighborList neighbors_;
  /// Receptor-side factors hoisted out of the per-point kernel, indexed
  /// by atom: partial charge (electrostatic map) and the type's volume
  /// (desolvation map).
  std::vector<double> charge_;
  std::vector<double> volume_;
  std::vector<mol::AdType> type_;
};

/// The Grid Parameter File (activity 4 output): the text AutoGrid consumes.
/// Mirrors the real GPF keywords the paper's workflow templates carry.
struct GridParameterFile {
  GridBox box;
  std::vector<mol::AdType> ligand_types;
  std::string receptor_file;
  std::string ligand_file;

  std::string to_text() const;
  static GridParameterFile parse(std::string_view text);
};

/// Activity 4: derive the GPF from a prepared receptor + ligand pair.
/// The box is centred on the receptor's binding pocket (approximated by
/// the receptor centroid) and sized to the ligand's gyration radius.
GridParameterFile make_gpf(const mol::Molecule& receptor,
                           const mol::Molecule& ligand,
                           double box_padding = 6.0, double spacing = 0.375);

/// Screening-campaign variant of make_gpf: the box half-extent is raised
/// to at least `min_half_extent` and rounded up to a multiple of
/// `quantum`, and the type set covers every supported AutoDock type. Any
/// drug-like ligand of the campaign then maps to the *same* GPF for a
/// given receptor, which is what makes receptor-level grid-map reuse
/// (ArtifactCache::get_or_compute_maps) hit across ligands.
GridParameterFile make_screening_gpf(const mol::Molecule& receptor,
                                     const mol::Molecule& ligand,
                                     double box_padding = 6.0,
                                     double spacing = 0.375,
                                     double min_half_extent = 12.0,
                                     double quantum = 4.0);

/// All supported AutoDock types (the screening GPF's ligand_types).
const std::vector<mol::AdType>& screening_ligand_types();

}  // namespace dock
}  // namespace scidock
