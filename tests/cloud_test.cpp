// Tests for the cloud simulator: DES core, VM catalogue, virtual cluster,
// cost model, failure injection.

#include <gtest/gtest.h>

#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/failure.hpp"
#include "cloud/sim.hpp"
#include "cloud/vm.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace scidock::cloud {
namespace {

// ----------------------------------------------------------------- DES

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(9.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(sim.run(), 9.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, TiesBreakFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, HandlersCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  EXPECT_DOUBLE_EQ(sim.run(), 9.0);
  EXPECT_EQ(fired, 10);
}

TEST(Simulation, RunUntilLeavesLaterEventsQueued) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, PastSchedulingRejected) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), InvalidStateError);
}

// ------------------------------------------------------------ catalogue

TEST(VmCatalogue, Table1Characteristics) {
  // The paper's Table 1: m3.xlarge has 4 cores, m3.2xlarge 8, both on the
  // Intel Xeon E5-2670.
  EXPECT_EQ(vm_type_m3_xlarge().cores, 4);
  EXPECT_EQ(vm_type_m3_2xlarge().cores, 8);
  EXPECT_EQ(vm_type_m3_xlarge().physical_processor, "Intel Xeon E5-2670");
  EXPECT_EQ(vm_type_m3_2xlarge().physical_processor, "Intel Xeon E5-2670");
  EXPECT_GT(vm_type_m3_2xlarge().hourly_cost_usd,
            vm_type_m3_xlarge().hourly_cost_usd);
}

TEST(VmCatalogue, LookupByName) {
  EXPECT_EQ(vm_type_by_name("M3.XLARGE").cores, 4);
  EXPECT_THROW(vm_type_by_name("z9.mega"), NotFoundError);
  EXPECT_GE(vm_catalogue().size(), 3u);
}

// -------------------------------------------------------------- cluster

TEST(Cluster, AcquireBootsAfterLatency) {
  Simulation sim;
  VirtualCluster cluster(sim, Rng(1));
  const long long id = cluster.acquire(vm_type_m3_xlarge());
  const VmInstance& vm = cluster.instance(id);
  EXPECT_GT(vm.boot_completed_at, 0.0);
  EXPECT_TRUE(vm.alive());
  EXPECT_EQ(cluster.alive_count(), 1);
  EXPECT_EQ(cluster.total_cores(), 4);
}

TEST(Cluster, ReleaseStopsBilling) {
  Simulation sim;
  VirtualCluster cluster(sim, Rng(1));
  const long long id = cluster.acquire(vm_type_m3_xlarge());
  sim.schedule_at(7200.0, [&] { cluster.release(id); });
  sim.run();
  EXPECT_EQ(cluster.alive_count(), 0);
  EXPECT_EQ(cluster.total_cores(), 0);
  // 2 started hours at $0.45.
  EXPECT_NEAR(cluster.accumulated_cost_usd(), 0.9, 1e-9);
  EXPECT_THROW(cluster.release(id), InvalidStateError);  // double release
}

TEST(Cluster, PerformanceJitterIsNearOne) {
  Simulation sim;
  VirtualCluster cluster(sim, Rng(5));
  RunningStats jitter;
  for (int i = 0; i < 64; ++i) {
    const long long id = cluster.acquire(vm_type_m3_2xlarge());
    jitter.add(cluster.instance(id).performance_jitter);
  }
  EXPECT_NEAR(jitter.mean(), 1.0, 0.05);
  EXPECT_GT(jitter.stddev(), 0.01);  // heterogeneity exists
  EXPECT_LT(jitter.stddev(), 0.25);
}

TEST(Cluster, UnknownInstanceThrows) {
  Simulation sim;
  VirtualCluster cluster(sim, Rng(1));
  EXPECT_THROW(cluster.instance(42), NotFoundError);
}

// ------------------------------------------------------------ cost model

TEST(CostModel, ScidockDefaultCoversAllStages) {
  const CostModel model = CostModel::scidock_default();
  for (const char* tag : {"babel", "prepligand", "prepreceptor", "gpfprep",
                          "autogrid", "dockfilter", "dpfprep", "confprep",
                          "autodock4", "autodockvina"}) {
    EXPECT_TRUE(model.has(tag)) << tag;
  }
  EXPECT_FALSE(model.has("nope"));
  EXPECT_THROW(model.cost("nope"), NotFoundError);
}

TEST(CostModel, DockingDominatesTheChain) {
  // Figure 6: the docking activity is the most computing-intensive.
  const CostModel model = CostModel::scidock_default();
  const double dock = model.cost("autodock4").mean_s;
  for (const char* tag : {"babel", "prepligand", "prepreceptor", "gpfprep",
                          "autogrid", "dockfilter", "dpfprep"}) {
    EXPECT_GT(dock, model.cost(tag).mean_s) << tag;
  }
}

TEST(CostModel, ChainsMatchPaperHeadlines) {
  // AD4 chain ~ 12.5 days on 2 cores over 10,000 pairs => ~216 s/pair;
  // Vina chain ~ 9 days => ~155 s/pair. Allow a generous band: the
  // simulation adds failures and staging on top.
  const CostModel model = CostModel::scidock_default();
  const double ad4 = model.chain_mean({"babel", "prepligand", "prepreceptor",
                                       "gpfprep", "autogrid", "dockfilter",
                                       "dpfprep", "autodock4"});
  const double vina = model.chain_mean({"babel", "prepligand", "prepreceptor",
                                        "gpfprep", "autogrid", "dockfilter",
                                        "confprep", "autodockvina"});
  EXPECT_NEAR(ad4, 216.0, 50.0);
  EXPECT_NEAR(vina, 155.0, 40.0);
  EXPECT_LT(vina, ad4);  // the Vina workflow is faster end to end
}

TEST(CostModel, SampleRespectsScalesAndFloor) {
  const CostModel model = CostModel::scidock_default();
  Rng rng(3);
  RunningStats base, scaled, slow;
  for (int i = 0; i < 4000; ++i) {
    base.add(model.sample("autogrid", 1.0, 1.0, rng));
    scaled.add(model.sample("autogrid", 2.0, 1.0, rng));
    slow.add(model.sample("autogrid", 1.0, 3.0, rng));
  }
  EXPECT_NEAR(base.mean(), model.cost("autogrid").mean_s, 2.0);
  EXPECT_NEAR(scaled.mean() / base.mean(), 2.0, 0.2);
  EXPECT_NEAR(slow.mean() / base.mean(), 3.0, 0.3);
  EXPECT_GE(base.min(), model.cost("autogrid").min_s);
}

TEST(CostModel, ExpectedIsDeterministic) {
  const CostModel model = CostModel::scidock_default();
  EXPECT_DOUBLE_EQ(model.expected("babel", 2.0, 0.5),
                   model.cost("babel").mean_s);
}

TEST(CostModel, SchedulingOverheadGrowsWithScale) {
  const CostModel model = CostModel::scidock_default();
  const double small = model.scheduling_overhead(10, 1);
  const double large = model.scheduling_overhead(10000, 16);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);
}

TEST(CostModel, SetCostOverrides) {
  CostModel model = CostModel::scidock_default();
  model.set_cost({"babel", 99.0, 0.1, 1.0});
  EXPECT_DOUBLE_EQ(model.cost("babel").mean_s, 99.0);
  model.set_cost({"newstage", 5.0, 0.1, 1.0});
  EXPECT_TRUE(model.has("newstage"));
}

// --------------------------------------------------------------- failure

TEST(FailureModel, RatesApproximatelyMatchConfiguration) {
  FailureModelOptions opts;
  opts.failure_probability = 0.10;
  opts.hang_probability = 0.01;
  const FailureModel model(opts);
  Rng rng(11);
  int failures = 0, hangs = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    switch (model.sample(rng)) {
      case ActivationOutcome::Failure: ++failures; break;
      case ActivationOutcome::Hang: ++hangs; break;
      default: break;
    }
  }
  EXPECT_NEAR(failures / double(n), 0.10, 0.005);  // the paper's ~10 %
  EXPECT_NEAR(hangs / double(n), 0.01, 0.002);
}

TEST(FailureModel, DeterministicHangAlwaysHangs) {
  const FailureModel model{FailureModelOptions{}};
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.sample(rng, /*deterministic_hang=*/true),
              ActivationOutcome::Hang);
  }
}

TEST(FailureModel, ZeroRatesAlwaysSucceed) {
  FailureModelOptions opts;
  opts.failure_probability = 0.0;
  opts.hang_probability = 0.0;
  const FailureModel model(opts);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(model.sample(rng), ActivationOutcome::Success);
  }
}

}  // namespace
}  // namespace scidock::cloud
