#include "wf/workflow.hpp"

#include <deque>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::wf {

std::string_view to_string(AlgebraicOp op) {
  switch (op) {
    case AlgebraicOp::Map: return "MAP";
    case AlgebraicOp::SplitMap: return "SPLIT_MAP";
    case AlgebraicOp::Filter: return "FILTER";
    case AlgebraicOp::Reduce: return "REDUCE";
    case AlgebraicOp::SRQuery: return "SR_QUERY";
  }
  return "?";
}

AlgebraicOp algebraic_op_from(std::string_view name) {
  if (iequals(name, "MAP")) return AlgebraicOp::Map;
  if (iequals(name, "SPLIT_MAP")) return AlgebraicOp::SplitMap;
  if (iequals(name, "FILTER")) return AlgebraicOp::Filter;
  if (iequals(name, "REDUCE")) return AlgebraicOp::Reduce;
  if (iequals(name, "SR_QUERY")) return AlgebraicOp::SRQuery;
  throw NotFoundError("algebraic operator", name);
}

const RelationDef* ActivityDef::input_relation() const {
  for (const RelationDef& r : relations) {
    if (r.is_input) return &r;
  }
  return nullptr;
}

const RelationDef* ActivityDef::output_relation() const {
  for (const RelationDef& r : relations) {
    if (!r.is_input) return &r;
  }
  return nullptr;
}

const ActivityDef& WorkflowDef::activity(std::string_view activity_tag) const {
  for (const ActivityDef& a : activities) {
    if (a.tag == activity_tag) return a;
  }
  throw NotFoundError("activity", activity_tag);
}

bool WorkflowDef::has_activity(std::string_view activity_tag) const {
  for (const ActivityDef& a : activities) {
    if (a.tag == activity_tag) return true;
  }
  return false;
}

int WorkflowDef::producer_of(std::string_view relation_name) const {
  for (std::size_t i = 0; i < activities.size(); ++i) {
    for (const RelationDef& r : activities[i].relations) {
      if (!r.is_input && r.name == relation_name) return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int> WorkflowDef::topological_order() const {
  const int n = static_cast<int>(activities.size());
  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(n));
  std::vector<int> in_degree(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (const RelationDef& r : activities[static_cast<std::size_t>(i)].relations) {
      if (!r.is_input) continue;
      const int producer = producer_of(r.name);
      if (producer >= 0 && producer != i) {
        consumers[static_cast<std::size_t>(producer)].push_back(i);
        ++in_degree[static_cast<std::size_t>(i)];
      }
    }
  }
  std::deque<int> ready;
  for (int i = 0; i < n; ++i) {
    if (in_degree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  std::vector<int> order;
  while (!ready.empty()) {
    const int u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (int v : consumers[static_cast<std::size_t>(u)]) {
      if (--in_degree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  SCIDOCK_REQUIRE(static_cast<int>(order.size()) == n,
                  "workflow relation wiring contains a cycle");
  return order;
}

}  // namespace scidock::wf
