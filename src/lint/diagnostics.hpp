#pragma once

/// \file diagnostics.hpp
/// Diagnostic plumbing for scidock-lint: every finding carries a stable
/// rule ID (WF001, SQL003, ...), a severity, and a source location, so CI
/// gates and the fixture tests can assert on exact rules rather than
/// message text.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace scidock::lint {

enum class Severity { Error, Warning };

std::string_view to_string(Severity severity);

struct Diagnostic {
  std::string rule;  ///< stable ID, e.g. "WF003"
  Severity severity = Severity::Error;
  std::string file;  ///< "" for in-memory sources
  int line = 0;      ///< 1-based; 0 = unknown
  std::string message;

  /// "file:line: error: [WF003] message" (file/line parts elided when
  /// unknown) — the grep-able single-line form compilers use.
  std::string format() const;
};

/// An ordered collection of findings from one lint run.
class Report {
 public:
  void add(std::string rule, Severity severity, std::string file, int line,
           std::string message);
  void add_error(std::string rule, std::string file, int line,
                 std::string message) {
    add(std::move(rule), Severity::Error, std::move(file), line,
        std::move(message));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool clean() const { return diagnostics_.empty(); }
  std::size_t error_count() const;

  /// Any diagnostic with the given rule ID?
  bool has(std::string_view rule) const;
  /// Number of diagnostics with the given rule ID.
  std::size_t count(std::string_view rule) const;

  /// Merge another report's findings (keeps relative order).
  void merge(Report other);

  /// One formatted diagnostic per line; "" when clean.
  std::string format() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// One row of the rule catalog (`scidock-lint rules`).
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// All rule IDs scidock-lint can emit, in catalog order. The fixture suite
/// checks each entry has a negative fixture that triggers exactly it.
const std::vector<RuleInfo>& rule_catalog();

}  // namespace scidock::lint
