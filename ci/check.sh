#!/usr/bin/env bash
# ci/check.sh — the full local verification matrix.
#
# Stages (each one configure + build + ctest in its own build tree):
#   default   plain build, full suite minus bench-smoke — the tier-1 gate
#   scalar    SCIDOCK_SIMD_SCALAR=ON: the forced-scalar reference backend
#             of util/simd.hpp, full suite minus bench-smoke — proves the
#             batched docking path is equivalent without any vector ISA
#   native    -march=native + undefined sanitizer, kernel suite: exercises
#             the widest backend the host offers (AVX2 where available)
#             with FMA contraction on, under UBSan
#   lockdep   SCIDOCK_LOCKDEP=ON: full suite (the analyzer rides along
#             under every test), the lockdep negative controls, and the
#             bench_lockdep overhead gate at the real 10x42 workload
#   asan      address sanitizer  + lockdep, concurrency-heavy labels
#   ubsan     undefined sanitizer + lockdep, concurrency-heavy labels
#   tsan      thread sanitizer   + lockdep, concurrency-heavy labels
#
# The sanitizer stages run the concurrency-heavy labels only
# (chaos/kernels/lockdep/prov-recovery): those are the suites that stress
# the executors, the docking kernels, the lock discipline and the WAL
# group-commit/recovery path, where sanitizers earn their ~10x slowdown.
#
# Usage: ci/check.sh [stage ...]     (default: all stages, in order)
#   e.g. ci/check.sh scalar tsan

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
SANITIZER_LABELS='chaos|kernels|lockdep|prov-recovery'

run_ctest() { # dir, extra ctest args...
  local dir="$1"
  shift
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "$@")
}

configure_and_build() { # dir, cmake args...
  local dir="$1"
  shift
  cmake -B "$dir" -S "$REPO_ROOT" "$@"
  cmake --build "$dir" -j "$JOBS"
}

stage_default() {
  local dir="$REPO_ROOT/build-ci-default"
  configure_and_build "$dir"
  run_ctest "$dir" -LE bench-smoke
  # Acceptance gate: the crash-recovery matrix runs (and is reported) as
  # its own leg, so a recovery regression is unmissable in the CI log.
  run_ctest "$dir" -L prov-recovery
}

stage_scalar() {
  local dir="$REPO_ROOT/build-ci-scalar"
  configure_and_build "$dir" -DSCIDOCK_SIMD_SCALAR=ON
  run_ctest "$dir" -LE bench-smoke
  # The kernel bench still runs under the scalar backend (its SIMD
  # speedup gates auto-relax to >= 1x there) so the JSON records the
  # reference-backend numbers alongside the vector ones.
  (cd "$dir" && ./bench/bench_micro_kernels)
}

stage_native() {
  local dir="$REPO_ROOT/build-ci-native"
  configure_and_build "$dir" \
    -DSCIDOCK_NATIVE_ARCH=ON -DSCIDOCK_SANITIZE=undefined \
    -DSCIDOCK_BUILD_BENCH=OFF -DSCIDOCK_BUILD_EXAMPLES=OFF
  # Kernels only: this leg exists to run the widest SIMD backend (and the
  # FMA-contracted scalar reference) under UBSan, not to re-run the
  # whole matrix with non-portable codegen.
  run_ctest "$dir" -L kernels
}

stage_lockdep() {
  local dir="$REPO_ROOT/build-ci-lockdep"
  configure_and_build "$dir" -DSCIDOCK_LOCKDEP=ON
  run_ctest "$dir" -LE bench-smoke
  # Acceptance gate: the enabled analyzer stays within 5% of baseline on
  # the full screen; writes BENCH_lockdep.json into the build tree.
  (cd "$dir" && ./bench/bench_lockdep)
}

stage_sanitizer() { # name, cmake SCIDOCK_SANITIZE value
  local name="$1" sanitize="$2"
  local dir="$REPO_ROOT/build-ci-$name"
  configure_and_build "$dir" \
    -DSCIDOCK_SANITIZE="$sanitize" -DSCIDOCK_LOCKDEP=ON \
    -DSCIDOCK_BUILD_BENCH=OFF -DSCIDOCK_BUILD_EXAMPLES=OFF
  run_ctest "$dir" -L "$SANITIZER_LABELS"
}

stage_asan() { stage_sanitizer asan address; }
stage_ubsan() { stage_sanitizer ubsan undefined; }
stage_tsan() { stage_sanitizer tsan thread; }

STAGES=("$@")
if [ "${#STAGES[@]}" -eq 0 ]; then
  STAGES=(default scalar native lockdep asan ubsan tsan)
fi

for stage in "${STAGES[@]}"; do
  case "$stage" in
    default | scalar | native | lockdep | asan | ubsan | tsan) ;;
    *)
      echo "ci/check.sh: unknown stage '$stage'" >&2
      echo "stages: default scalar native lockdep asan ubsan tsan" >&2
      exit 2
      ;;
  esac
done

for stage in "${STAGES[@]}"; do
  echo
  echo "==== ci/check.sh stage: $stage ===="
  "stage_$stage"
done

echo
echo "ci/check.sh: all stages passed (${STAGES[*]})"
