#pragma once

/// \file charges.hpp
/// Gasteiger-style partial-charge assignment (PEOE — partial equalisation
/// of orbital electronegativities), the method MGLTools' prepare_ligand4 /
/// prepare_receptor4 scripts apply before docking.

#include "mol/molecule.hpp"

namespace scidock::mol {

struct GasteigerOptions {
  int iterations = 6;       ///< PEOE converges geometrically; 6 is standard
  double damping = 0.5;     ///< per-iteration transfer attenuation
};

/// Assign partial charges in-place. Requires perceive() to have run (it is
/// invoked if necessary). Total charge is re-normalised to zero at the end
/// so the molecule stays neutral overall.
void assign_gasteiger_charges(Molecule& m, const GasteigerOptions& opts = {});

/// Sum of all partial charges (diagnostic; ~0 after assignment).
double total_charge(const Molecule& m);

}  // namespace scidock::mol
