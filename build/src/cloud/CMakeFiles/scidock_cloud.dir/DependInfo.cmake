
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cluster.cpp" "src/cloud/CMakeFiles/scidock_cloud.dir/cluster.cpp.o" "gcc" "src/cloud/CMakeFiles/scidock_cloud.dir/cluster.cpp.o.d"
  "/root/repo/src/cloud/cost_model.cpp" "src/cloud/CMakeFiles/scidock_cloud.dir/cost_model.cpp.o" "gcc" "src/cloud/CMakeFiles/scidock_cloud.dir/cost_model.cpp.o.d"
  "/root/repo/src/cloud/failure.cpp" "src/cloud/CMakeFiles/scidock_cloud.dir/failure.cpp.o" "gcc" "src/cloud/CMakeFiles/scidock_cloud.dir/failure.cpp.o.d"
  "/root/repo/src/cloud/sim.cpp" "src/cloud/CMakeFiles/scidock_cloud.dir/sim.cpp.o" "gcc" "src/cloud/CMakeFiles/scidock_cloud.dir/sim.cpp.o.d"
  "/root/repo/src/cloud/vm.cpp" "src/cloud/CMakeFiles/scidock_cloud.dir/vm.cpp.o" "gcc" "src/cloud/CMakeFiles/scidock_cloud.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scidock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
