#pragma once

/// \file scoring.hpp
/// The two empirical scoring functions: AutoDock 4's free-energy model
/// (Huey et al. 2007 weights) and Vina's (Trott & Olson 2010), plus the
/// receptor neighbour list both engines use for direct evaluation.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mol/atom_typing.hpp"
#include "mol/geometry.hpp"
#include "mol/molecule.hpp"

namespace scidock::dock {

/// Distance-dependent dielectric of Mehler & Solmajer (AD4's electrostatic
/// screening model).
double mehler_solmajer_dielectric(double r);

// ---------------------------------------------------------------------
// AutoDock 4 terms
// ---------------------------------------------------------------------

/// AD4.1 free-energy weights.
struct Ad4Weights {
  double vdw = 0.1662;
  double hbond = 0.1209;
  double estat = 0.1406;
  double desolv = 0.1322;
  double tors = 0.2983;  ///< kcal/mol per torsional degree of freedom
};

/// Pairwise AD4 interaction between two typed atoms at distance r (Å):
/// LJ 12-6 (or 12-10 hydrogen bond), screened Coulomb and Gaussian-weighted
/// desolvation. Charges in e units. Energies kcal/mol, pre-weighting
/// applied (i.e. this returns the weighted sum the engine adds up).
double ad4_pair_energy(mol::AdType ti, double qi, mol::AdType tj, double qj,
                       double r, const Ad4Weights& w = {});

/// Smoothed/clamped LJ-like well used for both the pairwise and grid paths;
/// exposed for tests.
double ad4_vdw_hbond(mol::AdType ti, mol::AdType tj, double r,
                     const Ad4Weights& w);

// ---------------------------------------------------------------------
// Vina terms
// ---------------------------------------------------------------------

struct VinaWeights {
  double gauss1 = -0.035579;
  double gauss2 = -0.005156;
  double repulsion = 0.840245;
  double hydrophobic = -0.035069;
  double hbond = -0.587439;
  double rot = 0.05846;  ///< torsion-count penalty in the FEB conversion
};

/// Vina pairwise term on the *surface distance*
/// d = r - (radius_i + radius_j); atoms with `skip` (hydrogens) contribute 0.
double vina_pair_energy(mol::AdType ti, mol::AdType tj, double r,
                        const VinaWeights& w = {});

/// Vina's conversion from raw intermolecular energy to reported affinity:
/// E / (1 + w_rot * N_rot).
double vina_affinity(double intermolecular_energy, int n_rot,
                     const VinaWeights& w = {});

// ---------------------------------------------------------------------
// Receptor neighbour list
// ---------------------------------------------------------------------

/// Immutable cell list over receptor atoms supporting fixed-radius
/// neighbour queries; shared by AutoGrid map generation and Vina's direct
/// evaluation. Cell edge equals the query cutoff so a 27-cell scan is
/// sufficient.
class NeighborList {
 public:
  NeighborList(const mol::Molecule& receptor, double cutoff);

  double cutoff() const { return cutoff_; }

  /// Invoke `fn(atom_index, distance_sq)` for every receptor atom within
  /// the cutoff of `p`.
  template <typename F>
  void for_each_within(const mol::Vec3& p, F&& fn) const {
    const CellKey c = key_of(p);
    for (long long dx = -1; dx <= 1; ++dx)
      for (long long dy = -1; dy <= 1; ++dy)
        for (long long dz = -1; dz <= 1; ++dz) {
          const auto it = cells_.find(pack(c.x + dx, c.y + dy, c.z + dz));
          if (it == cells_.end()) continue;
          for (int idx : it->second) {
            const double d2 = mol::distance_sq(positions_[static_cast<std::size_t>(idx)], p);
            if (d2 <= cutoff_sq_) fn(idx, d2);
          }
        }
  }

  int atom_count() const { return static_cast<int>(positions_.size()); }

 private:
  struct CellKey {
    long long x, y, z;
  };
  CellKey key_of(const mol::Vec3& p) const;
  static std::uint64_t pack(long long x, long long y, long long z);

  double cutoff_;
  double cutoff_sq_;
  std::vector<mol::Vec3> positions_;
  std::unordered_map<std::uint64_t, std::vector<int>> cells_;
};

/// Ligand intramolecular pair list: atom pairs separated by >= 3 bonds,
/// whose internal energy changes with torsion angles.
std::vector<std::pair<int, int>> intramolecular_pairs(const mol::Molecule& ligand);

}  // namespace scidock::dock
