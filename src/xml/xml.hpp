#pragma once

/// \file xml.hpp
/// Minimal DOM XML parser/serializer — enough for SciCumulus workflow
/// specifications (Figure 2 of the paper): elements, attributes, text,
/// comments, CDATA and the XML declaration. No namespaces or DTDs.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scidock::xml {

class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- attributes ----
  std::optional<std::string> attribute(std::string_view key) const;
  /// Attribute value or throws NotFoundError.
  const std::string& require_attribute(std::string_view key) const;
  void set_attribute(std::string key, std::string value);
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  // ---- children ----
  Element& add_child(std::string name);
  /// Append an already-built subtree.
  void adopt_child(std::unique_ptr<Element> child);
  const std::vector<std::unique_ptr<Element>>& children() const { return children_; }
  /// First child with the given element name, or nullptr.
  const Element* child(std::string_view name) const;
  /// All children with the given element name.
  std::vector<const Element*> children_named(std::string_view name) const;

  // ---- text content ----
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  /// 1-based line of the opening tag in the parsed source, or 0 for
  /// programmatically-built elements. Used by diagnostics (scidock-lint).
  int source_line() const { return source_line_; }
  void set_source_line(int line) { source_line_ = line; }

  /// Serialise this element (and subtree) as indented XML.
  std::string to_string(int indent = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<Element>> children_;
  std::string text_;
  int source_line_ = 0;
};

struct Document {
  std::unique_ptr<Element> root;

  std::string to_string() const;
};

/// Parse an XML document; throws ParseError with line context on error.
Document parse(std::string_view text);

/// Escape &<>"' for attribute/text emission.
std::string escape(std::string_view raw);
/// Expand the five predefined entities plus decimal/hex character refs.
std::string unescape(std::string_view escaped);

}  // namespace scidock::xml
