#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "util/error.hpp"

namespace scidock {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

double parse_double(std::string_view s, std::string_view context) {
  s = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError(context, "bad floating-point value '" + std::string(s) + "'");
  }
  return value;
}

long long parse_int(std::string_view s, std::string_view context) {
  s = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError(context, "bad integer value '" + std::string(s) + "'");
  }
  return value;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  SCIDOCK_ASSERT(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string_view fixed_columns(std::string_view line, std::size_t start,
                               std::size_t len) {
  if (start >= line.size()) return {};
  return trim(line.substr(start, len));
}

std::string human_duration(double seconds) {
  if (seconds >= 86400.0) return strformat("%.1f d", seconds / 86400.0);
  if (seconds >= 3600.0) return strformat("%.1f h", seconds / 3600.0);
  if (seconds >= 60.0) return strformat("%.1f min", seconds / 60.0);
  return strformat("%.1f s", seconds);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace scidock
