#pragma once

/// \file lockdep.hpp
/// Runtime lock-order and blocking-hazard analyzer over the annotated
/// concurrency primitives (util/thread_annotations.hpp), in the lineage
/// of the Linux kernel's lockdep: every named Mutex belongs to a *lock
/// class* (all instances constructed with the same name share one), each
/// thread keeps a stack of the locks it currently holds, and every
/// "acquired B while holding A" observation records a directed edge
/// A -> B into a global lock-order graph. A new edge that closes a cycle
/// is a potential deadlock — reported with the complete cycle, the
/// acquisition call sites (file:line captured at the lock statement) and
/// the witnessing threads for both directions, even though the two runs
/// that created the inversion never actually collided.
///
/// On top of the same held-stack bookkeeping, lockdep detects the
/// blocking hazards Clang's per-function Thread Safety Analysis is
/// structurally blind to:
///   - a ThreadPool worker blocking on work scheduled into its own pool
///     (nested parallel_for; single-flight waits annotated by callers),
///   - CondVar::wait or an annotated blocking wait entered while holding
///     an unrelated lock,
///   - locks held longer than a configurable threshold (warning).
///
/// Compile-time gated: with the SCIDOCK_LOCKDEP CMake option OFF (the
/// default) every hook in this header is an empty inline and the
/// primitives carry no extra state — zero bookkeeping on the hot path.
/// With it ON the checks run on every acquisition, cheap enough to leave
/// on for the whole test suite (bench_lockdep gates the overhead <= 5%
/// on the full screen).
///
/// Findings carry stable rule IDs through the lint::Diagnostics
/// machinery (LD001..LD004, see lint::rule_catalog() and
/// lint/lockdep_lint.hpp); chaos::InvariantChecker::check_lockdep
/// asserts a clean report after every sweep.

#include <string>
#include <string_view>
#include <vector>

#if defined(SCIDOCK_LOCKDEP)
#define SCIDOCK_LOCKDEP_ENABLED 1
#include <source_location>
#else
#define SCIDOCK_LOCKDEP_ENABLED 0
#endif

namespace scidock::lockdep {

/// Hazard classes, in rule-ID order (LD001..LD005).
enum class HazardKind {
  kLockInversion,     ///< LD001: cycle in the lock-order graph
  kPoolSelfWait,      ///< LD002: worker blocks on work in its own pool
  kWaitWhileHolding,  ///< LD003: blocking wait entered with locks held
  kLongHold,          ///< LD004: lock held past the threshold (warning)
  kDuplicateClass,    ///< LD005: one class name registered from two sites
};

std::string_view to_string(HazardKind kind);
/// Stable diagnostic rule ID ("LD001".."LD005").
std::string_view rule_id(HazardKind kind);

/// One edge of a reported inversion cycle: `acquired` was locked at
/// `acquire_site` by thread `thread_id` while `held` (locked at
/// `held_site`) was still held.
struct CycleStep {
  std::string held;
  std::string acquired;
  std::string held_site;     ///< file:line
  std::string acquire_site;  ///< file:line
  unsigned long long thread_id = 0;
};

struct Finding {
  HazardKind kind = HazardKind::kLockInversion;
  bool is_error = true;   ///< long-holds and advisory notes are warnings
  std::string message;    ///< one-line summary
  std::string file;       ///< primary site ("" when unknown)
  int line = 0;
  std::vector<CycleStep> cycle;  ///< inversions only; closing edge first
  std::string details;    ///< formatted multi-line evidence
};

/// Monotone bookkeeping counters, exported through obs::MetricsRegistry
/// by obs::publish_lockdep_metrics (scidock_lockdep_* series).
struct CounterSnapshot {
  long long lock_classes = 0;
  long long acquisitions = 0;
  long long order_edges = 0;
  long long cond_waits = 0;
  long long pool_wait_checks = 0;
  long long blocking_waits = 0;
  long long findings_error = 0;
  long long findings_warning = 0;
};

/// True when the analyzer was compiled in (SCIDOCK_LOCKDEP=ON).
constexpr bool compiled_in() { return SCIDOCK_LOCKDEP_ENABLED != 0; }

#if SCIDOCK_LOCKDEP_ENABLED

/// Class id shared by every Mutex constructed without a name. Anonymous
/// instances participate in held-stack hazards (wait-while-holding,
/// long-hold) but are excluded from the order graph: one class over many
/// unrelated instances would invent cycles that no execution can hit.
inline constexpr int kAnonymousClass = 0;

/// Find-or-create the lock class for `name`; instances sharing a name
/// share ordering state (the kernel-lockdep "class, not instance" rule).
/// A class is keyed by (name, registration site): every instance born
/// from one `Mutex m{"x"}` declaration shares a class, but a *second*
/// declaration reusing the name is rejected with an LD005 error and gets
/// its own class — silently merging two unrelated locks' order graphs
/// would corrupt LD001 cycle attribution. The site defaults to the
/// declaration that invoked the Mutex constructor.
int register_class(const char* name,
                   std::source_location site = std::source_location::current());

/// Runtime kill-switch (compiled-in builds only): bench_lockdep measures
/// its baseline with checks off. Enabled by default.
void set_enabled(bool enabled);
bool enabled();

/// Hold-duration threshold for LD004 warnings, seconds. <= 0 disables.
void set_long_hold_threshold(double seconds);
double long_hold_threshold();

// ---- hooks wired into the primitives (not for direct use) ----

/// Before the underlying lock: records the order edge from the top of
/// this thread's held stack, runs cycle detection, pushes the new lock.
void on_acquire(int class_id, const void* instance,
                std::source_location site);
/// After a successful try_lock: push without an edge (a failed try_lock
/// cannot deadlock, and a successful one imposes no wait-for ordering).
void on_try_acquired(int class_id, const void* instance,
                     std::source_location site);
/// Pop `instance` from the held stack; emits LD004 on a long hold.
void on_release(const void* instance);
/// CondVar::wait entry: LD003 if any *other* lock is held. The release/
/// re-acquire bookkeeping itself flows through the instrumented
/// unlock()/lock() that condition_variable_any::wait performs.
void on_cond_wait(const void* mutex_instance, std::source_location site);

// ---- pool / blocking-wait integration ----

/// Marks the current thread as a worker of `pool` for its lifetime
/// (installed at the top of ThreadPool::worker_loop).
class PoolWorkerScope {
 public:
  explicit PoolWorkerScope(const void* pool);
  ~PoolWorkerScope();
  PoolWorkerScope(const PoolWorkerScope&) = delete;
  PoolWorkerScope& operator=(const PoolWorkerScope&) = delete;

 private:
  const void* previous_;
};

/// The pool this thread is a worker of, or nullptr.
const void* current_pool();

/// Called by ThreadPool::parallel_for before blocking on its futures:
/// LD002 when the calling thread is a worker of the same pool (the
/// chunks it is about to wait for sit behind it in its own queue).
void on_pool_wait(const void* pool, std::source_location site);

/// Annotates a blocking wait on an out-of-band result (the single-flight
/// grid-map future, a channel, ...). Emits LD003 if any lock is held;
/// emits an LD002 *warning* when the waiting thread and the thread that
/// owns the awaited work (`owner_pool`, as captured at publish time) are
/// workers of the same pool — safe today only because the owner never
/// schedules into that pool, so the report keeps the pattern visible.
void on_blocking_wait(const char* what, const void* owner_pool,
                      std::source_location site);

// ---- reporting ----

std::vector<Finding> findings();
std::size_t finding_count(HazardKind kind);
CounterSnapshot counters();
/// No error-severity findings (warnings tolerated).
bool clean();
/// Human-readable report: counters, then every finding with its cycle
/// and call sites. Ends with "lockdep: clean" when nothing was found.
std::string format_report();
/// Clear findings, the order graph and counters (lock classes survive:
/// they are baked into live Mutex instances). Per-thread held stacks are
/// untouched — call between runs, not mid-critical-section.
void reset();

#else  // ---- SCIDOCK_LOCKDEP off: every hook is a no-op ----

inline constexpr int kAnonymousClass = 0;
inline int register_class(const char*) { return 0; }
inline void set_enabled(bool) {}
inline bool enabled() { return false; }
inline void set_long_hold_threshold(double) {}
inline double long_hold_threshold() { return 0.0; }

class PoolWorkerScope {
 public:
  explicit PoolWorkerScope(const void*) {}
};
inline const void* current_pool() { return nullptr; }

inline std::vector<Finding> findings() { return {}; }
inline std::size_t finding_count(HazardKind) { return 0; }
inline CounterSnapshot counters() { return {}; }
inline bool clean() { return true; }
inline std::string format_report() {
  return "lockdep: disabled at build time (configure with "
         "-DSCIDOCK_LOCKDEP=ON)\n";
}
inline void reset() {}

#endif  // SCIDOCK_LOCKDEP_ENABLED

}  // namespace scidock::lockdep
