file(REMOVE_RECURSE
  "libscidock_cloud.a"
)
