#include "dock/cluster.hpp"

#include <algorithm>

#include "mol/molecule.hpp"
#include "util/error.hpp"

namespace scidock::dock {

int cluster_conformations(std::vector<Conformation>& conformations,
                          double rmsd_tolerance) {
  SCIDOCK_ASSERT(rmsd_tolerance > 0);
  std::sort(conformations.begin(), conformations.end(),
            [](const Conformation& a, const Conformation& b) {
              return a.feb < b.feb;
            });
  std::vector<const Conformation*> leaders;
  for (Conformation& c : conformations) {
    bool placed = false;
    for (std::size_t k = 0; k < leaders.size(); ++k) {
      if (mol::rmsd(c.coords, leaders[k]->coords) <= rmsd_tolerance) {
        c.cluster = static_cast<int>(k);
        placed = true;
        break;
      }
    }
    if (!placed) {
      c.cluster = static_cast<int>(leaders.size());
      leaders.push_back(&c);
    }
  }
  return static_cast<int>(leaders.size());
}

}  // namespace scidock::dock
