#include "sql/table.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::sql {

Table::Table(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  SCIDOCK_REQUIRE(!columns_.empty(), "table must have at least one column");
}

int Table::column_index(std::string_view column) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (iequals(columns_[i], column)) return static_cast<int>(i);
  }
  return -1;
}

void Table::insert(Row row) {
  SCIDOCK_REQUIRE(row.size() == columns_.size(),
                  "row width does not match table '" + name_ + "'");
  rows_.push_back(std::move(row));
}

Table& Database::create_table(std::string name, std::vector<std::string> columns) {
  if (has_table(name)) {
    throw InvalidStateError("table '" + name + "' already exists");
  }
  tables_.emplace_back(std::move(name), std::move(columns));
  return tables_.back();
}

bool Database::has_table(std::string_view name) const {
  return std::any_of(tables_.begin(), tables_.end(),
                     [name](const Table& t) { return iequals(t.name(), name); });
}

Table& Database::table(std::string_view name) {
  for (Table& t : tables_) {
    if (iequals(t.name(), name)) return t;
  }
  throw NotFoundError("table", name);
}

const Table& Database::table(std::string_view name) const {
  for (const Table& t : tables_) {
    if (iequals(t.name(), name)) return t;
  }
  throw NotFoundError("table", name);
}

void Database::drop_table(std::string_view name) {
  const auto it = std::find_if(tables_.begin(), tables_.end(), [name](const Table& t) {
    return iequals(t.name(), name);
  });
  if (it == tables_.end()) throw NotFoundError("table", name);
  tables_.erase(it);
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const Table& t : tables_) out.push_back(t.name());
  return out;
}

}  // namespace scidock::sql
