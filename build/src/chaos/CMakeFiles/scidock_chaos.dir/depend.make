# Empty dependencies file for scidock_chaos.
# This may be replaced when dependencies are built.
