#include "lint/lockdep_lint.hpp"

#include <string>

#include "util/lockdep.hpp"

namespace scidock::lint {

Report lockdep_report() {
  Report report;
  for (const lockdep::Finding& f : lockdep::findings()) {
    std::string message = f.message;
    if (!f.details.empty()) {
      message += "\n";
      message += f.details;
    }
    report.add(std::string(lockdep::rule_id(f.kind)),
               f.is_error ? Severity::Error : Severity::Warning, f.file,
               f.line, std::move(message));
  }
  return report;
}

}  // namespace scidock::lint
