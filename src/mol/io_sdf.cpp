#include "mol/io_sdf.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::mol {

namespace {

Molecule parse_record(const std::vector<std::string>& lines,
                      std::string_view fallback_name) {
  if (lines.size() < 4) throw ParseError("SDF", "record shorter than header");
  Molecule m{std::string(trim(lines[0]).empty() ? fallback_name : trim(lines[0]))};

  const std::string& counts = lines[3];
  if (counts.size() < 6) throw ParseError("SDF", "bad counts line: " + counts);
  const int natoms = static_cast<int>(parse_int(fixed_columns(counts, 0, 3), "SDF atom count"));
  const int nbonds = static_cast<int>(parse_int(fixed_columns(counts, 3, 3), "SDF bond count"));
  if (static_cast<int>(lines.size()) < 4 + natoms + nbonds) {
    throw ParseError("SDF", "record truncated (counts exceed data)");
  }

  for (int i = 0; i < natoms; ++i) {
    const std::string& line = lines[static_cast<std::size_t>(4 + i)];
    if (line.size() < 34) throw ParseError("SDF", "short atom line: " + line);
    Atom atom;
    atom.serial = i + 1;
    atom.pos.x = parse_double(fixed_columns(line, 0, 10), "SDF x");
    atom.pos.y = parse_double(fixed_columns(line, 10, 10), "SDF y");
    atom.pos.z = parse_double(fixed_columns(line, 20, 10), "SDF z");
    const std::string_view symbol = fixed_columns(line, 31, 3);
    const auto e = element_from_symbol(symbol);
    if (!e) throw ParseError("SDF", "unknown element '" + std::string(symbol) + "'");
    atom.element = *e;
    atom.name = std::string(symbol) + std::to_string(i + 1);
    m.add_atom(std::move(atom));
  }
  for (int i = 0; i < nbonds; ++i) {
    const std::string& line = lines[static_cast<std::size_t>(4 + natoms + i)];
    if (line.size() < 9) throw ParseError("SDF", "short bond line: " + line);
    const int a = static_cast<int>(parse_int(fixed_columns(line, 0, 3), "SDF bond a"));
    const int b = static_cast<int>(parse_int(fixed_columns(line, 3, 3), "SDF bond b"));
    const int t = static_cast<int>(parse_int(fixed_columns(line, 6, 3), "SDF bond type"));
    if (a < 1 || a > natoms || b < 1 || b > natoms) {
      throw ParseError("SDF", "bond atom index out of range: " + line);
    }
    BondOrder order = BondOrder::Single;
    if (t == 2) order = BondOrder::Double;
    else if (t == 3) order = BondOrder::Triple;
    else if (t == 4) order = BondOrder::Aromatic;
    m.add_bond(a - 1, b - 1, order);
  }
  return m;
}

}  // namespace

Molecule read_sdf(std::string_view text, std::string_view name) {
  std::vector<Molecule> all = read_sdf_multi(text);
  if (all.empty()) throw ParseError("SDF", "empty document");
  if (!name.empty()) all.front().set_name(std::string(name));
  return std::move(all.front());
}

std::vector<Molecule> read_sdf_multi(std::string_view text) {
  std::vector<Molecule> out;
  std::istringstream in{std::string(text)};
  std::string line;
  std::vector<std::string> record;
  int index = 0;
  auto flush = [&] {
    // Drop data items / blank tails; a valid record has content.
    if (!record.empty() && record.size() >= 4) {
      out.push_back(parse_record(record, "ligand" + std::to_string(index++)));
    }
    record.clear();
  };
  while (std::getline(in, line)) {
    if (trim(line) == "$$$$") {
      flush();
    } else if (trim(line) == "M  END" || starts_with(trim(line), "M END")) {
      record.push_back(line);  // keep; parser stops at counts anyway
    } else {
      record.push_back(line);
    }
  }
  flush();
  return out;
}

std::string write_sdf(const Molecule& m) {
  std::string out;
  out += m.name() + "\n  scidock\n\n";
  out += strformat("%3d%3d  0  0  0  0  0  0  0  0999 V2000\n", m.atom_count(),
                   m.bond_count());
  for (const Atom& a : m.atoms()) {
    out += strformat("%10.4f%10.4f%10.4f %-3s 0  0  0  0  0  0  0  0  0  0  0  0\n",
                     a.pos.x, a.pos.y, a.pos.z,
                     std::string(element_info(a.element).symbol).c_str());
  }
  for (const Bond& b : m.bonds()) {
    int t = 1;
    if (b.order == BondOrder::Double) t = 2;
    else if (b.order == BondOrder::Triple) t = 3;
    else if (b.order == BondOrder::Aromatic) t = 4;
    out += strformat("%3d%3d%3d  0\n", b.a + 1, b.b + 1, t);
  }
  out += "M  END\n$$$$\n";
  return out;
}

}  // namespace scidock::mol
