# Empty compiler generated dependencies file for bench_fig6_per_activity.
# This may be replaced when dependencies are built.
