#pragma once

/// \file obs.hpp
/// Observability context handed to executors and services: a (possibly
/// null) TraceRecorder plus a (possibly null) MetricsRegistry. Both null
/// — the default — means zero instrumentation overhead beyond a pointer
/// test per site.
///
/// Canonical metric names live here so the executors, the CLI and the
/// provenance-reconciliation checker agree on them; reconciliation
/// depends on the executor counters matching SQL over the PROV-Wf store
/// row for row (DESIGN.md §9).

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace scidock::obs {

struct Observability {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  explicit operator bool() const {
    return trace != nullptr || metrics != nullptr;
  }
};

// ---- executor counters (reconciled against PROV-Wf SQL) ----
// started  == count(*)                     over hactivation rows of the run
// finished == count(*) WHERE status = 'FINISHED'
// failed   == count(*) WHERE status = 'FAILED'
// aborted  == count(*) WHERE status = 'ABORTED'
// retried  == count(*) WHERE attempts > 1
inline constexpr const char* kActivationsStarted =
    "scidock_executor_activations_started_total";
inline constexpr const char* kActivationsFinished =
    "scidock_executor_activations_finished_total";
inline constexpr const char* kActivationsFailed =
    "scidock_executor_activations_failed_total";
inline constexpr const char* kActivationsAborted =
    "scidock_executor_activations_aborted_total";
inline constexpr const char* kActivationsRetried =
    "scidock_executor_activations_retried_total";
inline constexpr const char* kTuplesCompleted =
    "scidock_executor_tuples_completed_total";
inline constexpr const char* kTuplesLost =
    "scidock_executor_tuples_lost_total";
inline constexpr const char* kActivationSeconds =
    "scidock_executor_activation_seconds";

// ---- grid-map cache + kernel series (DESIGN.md §10) ----
// The single-flight grid-map cache counts each AutoGrid activation as
// exactly one of hit / miss / inflight-wait once it finishes, so
// hits + misses + waits == count(FINISHED autogrid activations) and the
// InvariantChecker reconciles the three against PROV-Wf SQL.
inline constexpr const char* kCacheGridmapsHits =
    "scidock_cache_gridmaps_hits_total";
inline constexpr const char* kCacheGridmapsMisses =
    "scidock_cache_gridmaps_misses_total";
inline constexpr const char* kCacheGridmapsInflightWaits =
    "scidock_cache_gridmaps_inflight_waits_total";
// Kernel-side series: map-set computations (one per cache miss at most),
// z-slabs executed, and per-slab wall time (the AutoGrid fan-out shape).
inline constexpr const char* kKernelAutogridMapsets =
    "scidock_kernel_autogrid_mapsets_total";
inline constexpr const char* kKernelAutogridSlabs =
    "scidock_kernel_autogrid_slabs_total";
inline constexpr const char* kKernelAutogridSlabSeconds =
    "scidock_kernel_autogrid_slab_seconds";

// ---- lockdep analyzer series (DESIGN.md §11) ----
// Published from the util/lockdep counter snapshot by
// publish_lockdep_metrics(); all zero (and absent) when the analyzer is
// compiled out (SCIDOCK_LOCKDEP=OFF).
inline constexpr const char* kLockdepLockClasses =
    "scidock_lockdep_lock_classes";
inline constexpr const char* kLockdepAcquisitions =
    "scidock_lockdep_acquisitions_total";
inline constexpr const char* kLockdepOrderEdges =
    "scidock_lockdep_order_edges_total";
inline constexpr const char* kLockdepCondWaits =
    "scidock_lockdep_cond_waits_total";
inline constexpr const char* kLockdepPoolWaitChecks =
    "scidock_lockdep_pool_wait_checks_total";
inline constexpr const char* kLockdepBlockingWaits =
    "scidock_lockdep_blocking_waits_total";
inline constexpr const char* kLockdepFindingsError =
    "scidock_lockdep_findings_error_total";
inline constexpr const char* kLockdepFindingsWarning =
    "scidock_lockdep_findings_warning_total";

/// Mirror the lockdep analyzer's internal counters into `registry` (the
/// classes series is a gauge, the rest are counters bumped by the delta
/// since the last publish, so repeated calls stay monotone). No-op when
/// the analyzer is compiled out.
void publish_lockdep_metrics(MetricsRegistry& registry);

// ---- racer analyzer series (DESIGN.md §14) ----
// Published from the util/racer counter snapshot by
// publish_racer_metrics(); all zero (and absent) when the analyzer is
// compiled out (SCIDOCK_RACER=OFF).
inline constexpr const char* kRacerThreads = "scidock_racer_threads";
inline constexpr const char* kRacerSyncObjects = "scidock_racer_sync_objects";
inline constexpr const char* kRacerTrackedCells =
    "scidock_racer_tracked_cells";
inline constexpr const char* kRacerReads = "scidock_racer_reads_total";
inline constexpr const char* kRacerWrites = "scidock_racer_writes_total";
inline constexpr const char* kRacerMutexEdges =
    "scidock_racer_mutex_edges_total";
inline constexpr const char* kRacerTaskEdges =
    "scidock_racer_task_edges_total";
inline constexpr const char* kRacerHbEdges = "scidock_racer_hb_edges_total";
inline constexpr const char* kRacerReductionRecords =
    "scidock_racer_reduction_records_total";
inline constexpr const char* kRacerFindingsError =
    "scidock_racer_findings_error_total";
inline constexpr const char* kRacerFindingsWarning =
    "scidock_racer_findings_warning_total";

/// Mirror the racer's internal counters into `registry` (threads /
/// sync-objects / cells are gauges, the rest delta-published counters,
/// same contract as publish_lockdep_metrics). No-op when compiled out.
void publish_racer_metrics(MetricsRegistry& registry);

/// Every canonical scidock_* series name the codebase registers, sorted.
/// The lint SQL008 rule validates `-- reconciles: <metric>` annotations in
/// shipped queries against this list, so keep it in sync when adding a
/// series (the obs test cross-checks registration sites).
const std::vector<std::string_view>& known_metric_names();

/// Pre-resolved executor counter handles: both executors increment the
/// same series; resolving once keeps the hot path at one atomic add.
struct ExecutorCounters {
  Counter* started = nullptr;
  Counter* finished = nullptr;
  Counter* failed = nullptr;
  Counter* aborted = nullptr;
  Counter* retried = nullptr;
  Counter* tuples_completed = nullptr;
  Counter* tuples_lost = nullptr;
  HistogramMetric* activation_seconds = nullptr;
};

/// Registers (or finds) the executor series in `registry`. A null
/// registry yields all-null handles; increment sites guard on that.
ExecutorCounters executor_counters(MetricsRegistry* registry);

/// Install queue-depth / task-latency instrumentation on a thread pool:
///   scidock_pool_queue_depth            gauge   (depth after each enqueue)
///   scidock_pool_tasks_total            counter
///   scidock_pool_queue_wait_seconds     histogram (submit -> start)
///   scidock_pool_task_seconds           histogram (start -> finish)
/// Replaces any previously installed stats hook.
void instrument_thread_pool(ThreadPool& pool, MetricsRegistry& registry);

}  // namespace scidock::obs
