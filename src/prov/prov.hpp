#pragma once

/// \file prov.hpp
/// The provenance repository: a PROV-Wf relational schema (Missier et al.;
/// Oliveira et al.) hosted on the scidock SQL engine — the PostgreSQL
/// stand-in the paper's Queries 1 and 2 run against.
///
/// Schema (column names match the paper's queries exactly):
///   hmachine    (vmid, type, cores, speed_factor)
///   hworkflow   (wkfid, tag, description, expdir, starttime, endtime)
///   hactivity   (actid, wkfid, tag, activation, op)
///   hactivation (taskid, actid, wkfid, starttime, endtime, status,
///                vmid, exitcode, attempts, workload)
///   hfile       (fileid, wkfid, actid, taskid, fname, fsize, fdir)
///   hvalue      (valueid, taskid, key, value_num, value_text)
///
/// Timestamps are doubles: seconds since the experiment epoch, so the
/// paper's `extract('epoch' from (t.endtime - t.starttime))` evaluates to
/// the activation duration in seconds.

#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"
#include "sql/engine.hpp"
#include "sql/table.hpp"
#include "util/thread_annotations.hpp"

namespace scidock::prov {

/// Activation lifecycle status values stored in hactivation.status.
inline constexpr std::string_view kStatusRunning = "RUNNING";
inline constexpr std::string_view kStatusFinished = "FINISHED";
inline constexpr std::string_view kStatusFailed = "FAILED";
inline constexpr std::string_view kStatusAborted = "ABORTED";  ///< hang killed

/// SQL builders for metrics <-> provenance reconciliation (DESIGN.md §9).
/// The counts these return must equal the scidock_executor_* counters of
/// the run — chaos::InvariantChecker::check_metrics automates the
/// comparison.
/// Latest wkfid recorded under `tag` (tags must not contain quotes).
std::string workflow_id_sql(std::string_view tag);
/// count(*) over the run's hactivation rows (== activations started).
std::string activation_count_sql(long long wkfid);
/// (status, count(*)) per status for the run.
std::string activations_by_status_sql(long long wkfid);
/// count(*) of the run's rows with attempts > 1 (== activations retried).
std::string retried_activation_count_sql(long long wkfid);
/// count(*) of the run's FINISHED activations of one activity tag — a
/// two-table equi-join (hactivation x hactivity), which the SQL engine
/// executes through its hash-join fast path. Reconciles the grid-map
/// cache counters: hits + misses + inflight_waits over the AutoGrid
/// stage must equal this count.
std::string finished_activation_count_sql(long long wkfid,
                                          std::string_view activity_tag);

class ProvenanceStore {
 public:
  ProvenanceStore();

  /// Attach (or detach, with nullptr) a metrics registry; the store then
  /// counts every recorded row and query under scidock_prov_*. Call
  /// before the run starts — installation is not retroactive.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Run any SQL against the repository (the user-facing query interface;
  /// safe to call *during* workflow execution — the paper's runtime
  /// steering feature).
  sql::ResultSet query(std::string_view sql_text);

  // ---- recording API (thread-safe) ----
  long long begin_workflow(std::string_view tag, std::string_view description,
                           std::string_view expdir, double now);
  void end_workflow(long long wkfid, double now);

  long long register_activity(long long wkfid, std::string_view tag,
                              std::string_view activation_command,
                              std::string_view op);

  long long begin_activation(long long actid, long long wkfid, double now,
                             long long vmid, std::string_view workload);
  void end_activation(long long taskid, double now, std::string_view status,
                      int exitcode, int attempts);

  void record_machine(long long vmid, std::string_view type, int cores,
                      double speed_factor);
  void record_file(long long wkfid, long long actid, long long taskid,
                   std::string_view fname, std::size_t fsize,
                   std::string_view fdir);
  void record_value(long long taskid, std::string_view key, double value_num,
                    std::string_view value_text);

  /// Serialise the repository in W3C PROV-N notation (the standard the
  /// paper's PROV-Wf schema instantiates): workflows and activations as
  /// prov:Activity, files as prov:Entity with wasGeneratedBy, VMs as
  /// prov:Agent with wasAssociatedWith.
  std::string export_prov_n();

  /// Direct repository access for tests and custom analytics: runs `fn`
  /// against the underlying database while holding the store lock, so it
  /// is safe even while activations are still being recorded. (Replaces a
  /// `database()` accessor that leaked an unsynchronised reference — the
  /// unguarded read -Wthread-safety flagged when the store was annotated.)
  template <typename Fn>
  auto with_database(Fn&& fn) SCIDOCK_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return std::forward<Fn>(fn)(db_);
  }

 private:
  /// Row/query-rate counters resolved by set_metrics; null when metrics
  /// are off. Bumped under mutex_ (the recording API always holds it).
  struct RateCounters {
    obs::Counter* workflow_rows = nullptr;
    obs::Counter* activity_rows = nullptr;
    obs::Counter* activation_rows = nullptr;
    obs::Counter* machine_rows = nullptr;
    obs::Counter* file_rows = nullptr;
    obs::Counter* value_rows = nullptr;
    obs::Counter* queries = nullptr;
  };

  Mutex mutex_{"prov.store"};
  sql::Database db_ SCIDOCK_GUARDED_BY(mutex_);
  RateCounters rates_ SCIDOCK_GUARDED_BY(mutex_);
  long long next_wkfid_ SCIDOCK_GUARDED_BY(mutex_) = 1;
  long long next_actid_ SCIDOCK_GUARDED_BY(mutex_) = 1;
  long long next_taskid_ SCIDOCK_GUARDED_BY(mutex_) = 1;
  long long next_fileid_ SCIDOCK_GUARDED_BY(mutex_) = 1;
  long long next_valueid_ SCIDOCK_GUARDED_BY(mutex_) = 1;
};

}  // namespace scidock::prov
