#include "sql/lexer.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::sql {

bool Token::is_keyword(std::string_view kw) const {
  return kind == TokenKind::Identifier && iequals(text, kw);
}

std::vector<Token> tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;

  auto push = [&](TokenKind kind, std::string text) {
    tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < sql.size()) {
    const char c = sql[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }

    // -- line comment
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    // /* block comment */
    if (c == '/' && i + 1 < sql.size() && sql[i + 1] == '*') {
      const std::size_t end = sql.find("*/", i + 2);
      if (end == std::string_view::npos) throw ParseError("SQL", "unterminated comment");
      for (std::size_t k = i; k < end; ++k) {
        if (sql[k] == '\n') ++line;
      }
      i = end + 2;
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = i;
      while (i < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_')) ++i;
      push(TokenKind::Identifier, std::string(sql.substr(start, i - start)));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      const std::size_t start = i;
      bool is_float = false;
      while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < sql.size() && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < sql.size() && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < sql.size() && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      push(is_float ? TokenKind::Float : TokenKind::Integer,
           std::string(sql.substr(start, i - start)));
      continue;
    }

    if (c == '\'') {
      ++i;
      std::string text;
      for (;;) {
        if (i >= sql.size()) throw ParseError("SQL", "unterminated string literal");
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {  // '' escape
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        if (sql[i] == '\n') ++line;
        text += sql[i++];
      }
      push(TokenKind::String, std::move(text));
      continue;
    }

    // multi-char symbols first
    const std::string_view two = sql.substr(i, 2);
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=" || two == "||") {
      push(TokenKind::Symbol, std::string(two));
      i += 2;
      continue;
    }
    if (std::string_view("(),.*+-/=<>%;").find(c) != std::string_view::npos) {
      push(TokenKind::Symbol, std::string(1, c));
      ++i;
      continue;
    }
    throw ParseError("SQL", strformat("unexpected character '%c' at line %d", c, line));
  }
  push(TokenKind::End, "");
  return tokens;
}

}  // namespace scidock::sql
