SELECT (tag FROM hworkflow
