// scidock_cli — command-line front end for the library.
//
//   scidock_cli dock <RECEPTOR> <LIGAND> [--engine ad4|vina]
//   scidock_cli screen [--receptors N] [--threads N] [--engine auto|ad4|vina]
//   scidock_cli sweep [--pairs N] [--engine ad4|vina] [--cores 2,4,...]
//   scidock_cli query "<SQL>" [--pairs N] [--prov-shards N] [--prov-dir DIR]
//   scidock_cli spec
//   scidock_cli prov-export [--pairs N] [--prov-shards N] [--prov-dir DIR]
//
// `dock` and `screen` run the real docking engines natively; `sweep`,
// `query` and `prov-export` replay on the cloud simulator with full
// provenance capture.
//
// `screen` and `sweep` accept --trace-out FILE (Chrome chrome://tracing
// JSON) and --metrics-out FILE (Prometheus text). Both outputs are
// self-checked before writing: the trace must round-trip through the
// bundled parser with a well-nested span tree, and screen's activation
// counters must reconcile exactly with SQL over the PROV-Wf store.
//
// `query` and `prov-export` accept --prov-shards N (sharded store with
// distributed SELECT execution) and --prov-dir DIR (write-ahead-logged
// store; the run is then replayed from the WAL into a second store and
// the two content digests must match before the command's output is
// served — a crash-recovery self-check on every invocation).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chaos/invariants.hpp"
#include "data/table2.hpp"
#include "lint/lockdep_lint.hpp"
#include "lint/racer_lint.hpp"
#include "dock/autodock4.hpp"
#include "dock/dlg.hpp"
#include "dock/vina.hpp"
#include "mol/prepare.hpp"
#include "obs/obs.hpp"
#include "scidock/analysis.hpp"
#include "scidock/experiment.hpp"
#include "util/lockdep.hpp"
#include "util/racer.hpp"
#include "util/strings.hpp"
#include "vfs/vfs.hpp"
#include "wf/relational.hpp"
#include "wf/spec.hpp"

namespace {

using namespace scidock;

int usage() {
  std::fprintf(stderr,
               "usage: scidock_cli <command> [options]\n"
               "  dock <RECEPTOR> <LIGAND> [--engine ad4|vina]\n"
               "  screen [--receptors N] [--threads N] [--engine auto|ad4|vina]\n"
               "  sweep [--pairs N] [--engine ad4|vina] [--cores 2,4,8,...]\n"
               "  query \"<SQL>\" [--pairs N] [--prov-shards N] [--prov-dir DIR]\n"
               "  spec\n"
               "  prov-export [--pairs N] [--prov-shards N] [--prov-dir DIR]\n"
               "screen/sweep also take:\n"
               "  --trace-out FILE    Chrome chrome://tracing JSON\n"
               "  --metrics-out FILE  Prometheus text metrics\n"
               "  --lockdep-report    print the lock-discipline report after\n"
               "                      the run (needs -DSCIDOCK_LOCKDEP=ON;\n"
               "                      exit 1 on any error-severity hazard)\n"
               "  --racer-report      print the happens-before race report\n"
               "                      after the run (needs -DSCIDOCK_RACER=ON;\n"
               "                      exit 1 on any report)\n");
  return 2;
}

/// Value of `--name` in argv, or fallback.
std::string flag(const std::vector<std::string>& args, const std::string& name,
                 const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--" + name) return args[i + 1];
  }
  return fallback;
}

/// Presence of a valueless `--name` switch.
bool has_switch(const std::vector<std::string>& args, const std::string& name) {
  for (const std::string& a : args) {
    if (a == "--" + name) return true;
  }
  return false;
}

/// Print the lockdep report when --lockdep-report was passed; mirrors the
/// analyzer counters into the metrics sink (if any) first so the
/// scidock_lockdep_* series land in --metrics-out. Returns non-zero when
/// the analyzer found an error-severity hazard — hazards fail the
/// command just like a broken trace self-check does.
int maybe_lockdep_report(const std::vector<std::string>& args,
                         obs::MetricsRegistry* metrics) {
  if (!has_switch(args, "lockdep-report")) return 0;
  if (metrics != nullptr) obs::publish_lockdep_metrics(*metrics);
  std::printf("%s", lockdep::format_report().c_str());
  const lint::Report report = lint::lockdep_report();
  if (!report.clean()) std::printf("%s", report.format().c_str());
  return report.error_count() > 0 ? 1 : 0;
}

/// Print the racer report when --racer-report was passed; mirrors the
/// analyzer counters into the metrics sink (if any) first so the
/// scidock_racer_* series land in --metrics-out. Returns non-zero when
/// the analyzer reported anything at all — a warning-severity report
/// (order-digest divergence) still means the run was not proven
/// deterministic, so the gate is stricter than the lockdep one.
int maybe_racer_report(const std::vector<std::string>& args,
                       obs::MetricsRegistry* metrics) {
  if (!has_switch(args, "racer-report")) return 0;
  if (metrics != nullptr) obs::publish_racer_metrics(*metrics);
  std::printf("%s", racer::format_report().c_str());
  const lint::Report report = lint::racer_report();
  if (!report.clean()) std::printf("%s", report.format().c_str());
  return report.clean() ? 0 : 1;
}

/// Observability sinks requested on the command line. Null members mean
/// the corresponding flag was absent (zero instrumentation cost).
struct ObsSinks {
  std::string trace_path;
  std::string metrics_path;
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<obs::MetricsRegistry> metrics;

  obs::Observability view() { return {trace.get(), metrics.get()}; }
};

ObsSinks obs_sinks(const std::vector<std::string>& args) {
  ObsSinks s;
  s.trace_path = flag(args, "trace-out", "");
  s.metrics_path = flag(args, "metrics-out", "");
  if (!s.trace_path.empty()) s.trace = std::make_unique<obs::TraceRecorder>();
  if (!s.metrics_path.empty()) {
    s.metrics = std::make_unique<obs::MetricsRegistry>();
  }
  return s;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "scidock_cli: cannot open %s\n", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

/// Validate and write the requested observability outputs. The trace is
/// proven Chrome-loadable by parsing it back and checking the span tree
/// is well-nested before it touches disk.
int flush_obs(ObsSinks& s) {
  if (s.trace != nullptr) {
    const obs::SpanTree tree = obs::build_span_tree(s.trace->events());
    if (!tree.errors.empty()) {
      for (const std::string& e : tree.errors) {
        std::fprintf(stderr, "scidock_cli: trace self-check: %s\n", e.c_str());
      }
      return 1;
    }
    const std::string json = s.trace->to_chrome_json();
    if (obs::parse_chrome_trace(json).size() != s.trace->event_count()) {
      std::fprintf(stderr,
                   "scidock_cli: trace self-check: round-trip lost events\n");
      return 1;
    }
    if (!write_file(s.trace_path, json)) return 1;
    std::printf("trace: %zu events (%zu spans) -> %s\n",
                s.trace->event_count(), tree.span_count(),
                s.trace_path.c_str());
  }
  if (s.metrics != nullptr) {
    if (!write_file(s.metrics_path, s.metrics->to_prometheus_text())) return 1;
    std::printf("metrics: %zu series -> %s\n", s.metrics->series_count(),
                s.metrics_path.c_str());
  }
  return 0;
}

core::EngineMode engine_mode(const std::string& name) {
  if (name == "ad4") return core::EngineMode::ForceAd4;
  if (name == "vina") return core::EngineMode::ForceVina;
  return core::EngineMode::Adaptive;
}

int cmd_dock(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string engine = flag(args, "engine", "vina");
  std::printf("docking %s x %s with %s\n", args[0].c_str(), args[1].c_str(),
              engine.c_str());
  const mol::PreparedReceptor receptor =
      mol::prepare_receptor(data::make_receptor(args[0]));
  const mol::PreparedLigand ligand =
      mol::prepare_ligand(data::make_ligand(args[1]));
  const dock::GridBox box =
      dock::GridBox::around(receptor.molecule.center(), 10.0, 0.55);
  Rng rng(fnv1a64(args[0] + args[1]));
  dock::DockingResult result;
  if (engine == "ad4") {
    dock::Autodock4Engine ad4{dock::DockingParameterFile{}};
    result = ad4.dock(receptor, ligand, box, rng);
    std::printf("%s", dock::write_dlg(result).c_str());
  } else {
    dock::VinaEngine vina{dock::VinaConfig{}};
    result = vina.dock(receptor, ligand, box, rng);
    std::printf("%s", dock::write_vina_log(result).c_str());
  }
  return result.favorable() ? 0 : 1;
}

int cmd_screen(const std::vector<std::string>& args) {
  const int n = std::atoi(flag(args, "receptors", "24").c_str());
  const int threads = std::atoi(flag(args, "threads", "2").c_str());
  core::ScidockOptions options;
  options.engine_mode = engine_mode(flag(args, "engine", "auto"));
  const std::vector<std::string> receptors(
      data::table2_receptors().begin(),
      data::table2_receptors().begin() +
          std::min<std::size_t>(static_cast<std::size_t>(n),
                                data::table2_receptors().size()));
  core::Experiment exp =
      core::make_experiment(receptors, data::table3_ligands(), 0, options);
  ObsSinks sinks = obs_sinks(args);
  const wf::NativeReport report =
      core::run_native(exp, threads, "SciDock", sinks.view());
  std::printf("%zu pairs docked in %.1f s (%lld lost)\n",
              report.output.size(), report.wall_seconds, report.tuples_lost);

  // With metrics on, prove the counters against the provenance store
  // before reporting success (the paper's provenance is the ground truth).
  if (sinks.metrics != nullptr) {
    chaos::InvariantChecker checker;
    wf::NativeExecutorOptions defaults;  // run_native used these defaults
    const chaos::RunSummary summary =
        chaos::summarize(report, defaults, exp.pairs.size());
    if (!checker.check_metrics(summary, *sinks.metrics, *exp.prov,
                               "SciDock")) {
      std::fprintf(stderr, "scidock_cli: metrics reconciliation failed:\n%s",
                   checker.to_string().c_str());
      return 1;
    }
    std::printf("metrics reconcile with provenance (%lld activations)\n",
                sinks.metrics->counter_value(obs::kActivationsStarted));
  }
  if (const int rc = maybe_lockdep_report(args, sinks.metrics.get()); rc != 0) {
    return rc;
  }
  if (const int rc = maybe_racer_report(args, sinks.metrics.get()); rc != 0) {
    return rc;
  }
  if (const int rc = flush_obs(sinks); rc != 0) return rc;

  // Summarise with an SRQuery over the output relation.
  const wf::Relation summary =
      wf::query_relation(report.output, core::screen_summary_query());
  std::printf("\n%-8s %6s %10s %10s\n", "ligand", "pairs", "favorable",
              "best FEB");
  for (const wf::Tuple& t : summary.tuples()) {
    std::printf("%-8s %6s %10s %10s\n", t.require("ligand").c_str(),
                t.require("pairs").c_str(), t.require("favorable").c_str(),
                t.require("best_feb").c_str());
  }
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  const int pairs = std::atoi(flag(args, "pairs", "9996").c_str());
  core::ScidockOptions options;
  options.engine_mode = engine_mode(flag(args, "engine", "ad4"));
  core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(),
      static_cast<std::size_t>(pairs), options);
  std::vector<int> core_counts;
  for (const std::string& spec :
       split(flag(args, "cores", "2,4,8,16,32,64,128"), ',')) {
    const int cores = std::atoi(spec.c_str());
    if (cores > 0) core_counts.push_back(cores);
  }
  ObsSinks sinks = obs_sinks(args);
  std::printf("%6s %14s %10s\n", "cores", "TET", "cost");
  double tet2 = 0.0;
  for (std::size_t i = 0; i < core_counts.size(); ++i) {
    const int cores = core_counts[i];
    wf::SimExecutorOptions sim_options;
    // Metrics accumulate over the whole sweep; the trace holds only the
    // final point (each sim run restarts simulated time at zero, so
    // stacking several runs on one timeline would interleave them).
    sim_options.obs.metrics = sinks.metrics.get();
    if (i + 1 == core_counts.size()) sim_options.obs.trace = sinks.trace.get();
    const wf::SimReport r =
        core::run_simulated(exp, cores, nullptr, std::move(sim_options));
    if (tet2 == 0.0) tet2 = r.total_execution_time_s * cores / 2.0;
    std::printf("%6d %14s %9.0f$\n", cores,
                human_duration(r.total_execution_time_s).c_str(),
                r.cloud_cost_usd);
  }
  if (const int rc = maybe_lockdep_report(args, sinks.metrics.get()); rc != 0) {
    return rc;
  }
  if (const int rc = maybe_racer_report(args, sinks.metrics.get()); rc != 0) {
    return rc;
  }
  return flush_obs(sinks);
}

/// Run a small simulated screening with provenance, then apply `fn`.
/// --prov-shards selects a sharded store; --prov-dir additionally logs
/// every record to a WAL and proves the run recoverable (replay into a
/// second store, digests must match) before `fn` sees the data.
template <typename F>
int with_provenance(const std::vector<std::string>& args, F&& fn) {
  const int pairs = std::atoi(flag(args, "pairs", "200").c_str());
  const int shards = std::atoi(flag(args, "prov-shards", "1").c_str());
  const std::string prov_dir = flag(args, "prov-dir", "");
  core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(),
      static_cast<std::size_t>(pairs), {});
  if (shards <= 1 && prov_dir.empty()) {
    prov::ProvenanceStore store;
    core::run_simulated(exp, 16, &store);
    return fn(store);
  }

  vfs::SharedFileSystem fs;
  prov::ProvenanceStoreOptions options;
  options.shard_count = static_cast<std::size_t>(std::max(shards, 1));
  options.wal_dir = prov_dir.empty() ? "/prov" : prov_dir;
  if (!prov_dir.empty()) options.vfs = &fs;
  std::string digest;
  {
    prov::ProvenanceStore store(options);
    core::run_simulated(exp, 16, &store);
    if (!store.durable()) return fn(store);
    store.flush();
    digest = store.content_digest();
    // Destruction drains the group-commit flusher; the WAL now holds the
    // complete run.
  }
  prov::ProvenanceStore reopened(options);
  if (reopened.content_digest() != digest) {
    std::fprintf(stderr,
                 "scidock_cli: provenance recovery self-check failed: "
                 "replayed store differs from the live one\n");
    return 1;
  }
  const prov::RecoveryReport& rec = reopened.last_recovery();
  std::fprintf(stderr,
               "prov: %zu shard(s), WAL %s: replayed %zu record(s) from %zu "
               "segment(s); recovery self-check passed\n",
               reopened.shard_count(), options.wal_dir.c_str(), rec.records,
               rec.segments);
  return fn(reopened);
}

int cmd_query(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  return with_provenance(args, [&](prov::ProvenanceStore& store) {
    std::printf("%s", store.query(args[0]).to_text().c_str());
    return 0;
  });
}

int cmd_prov_export(const std::vector<std::string>& args) {
  return with_provenance(args, [](prov::ProvenanceStore& store) {
    std::printf("%s", store.export_prov_n().c_str());
    return 0;
  });
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "dock") return cmd_dock(args);
    if (command == "screen") return cmd_screen(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "query") return cmd_query(args);
    if (command == "prov-export") return cmd_prov_export(args);
    if (command == "spec") {
      std::printf("%s", wf::save_spec(core::scidock_workflow_def()).c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scidock_cli: %s\n", e.what());
    return 1;
  }
  return usage();
}
