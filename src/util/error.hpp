#pragma once

/// \file error.hpp
/// Error-handling primitives shared by every scidock library.
///
/// The library follows the C++ Core Guidelines convention: programming
/// errors (violated preconditions) terminate via SCIDOCK_ASSERT, while
/// recoverable environment/input errors throw a typed exception derived
/// from scidock::Error so callers can catch per category.

#include <stdexcept>
#include <string>
#include <string_view>

namespace scidock {

/// Root of the scidock exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input file / unparsable text (PDB, SDF, XML, SQL, ...).
class ParseError : public Error {
 public:
  ParseError(std::string_view kind, std::string_view detail)
      : Error(std::string(kind) + " parse error: " + std::string(detail)) {}
};

/// A lookup that the caller expected to succeed did not (unknown atom type,
/// missing table, missing file in the VFS, unknown activity tag, ...).
class NotFoundError : public Error {
 public:
  NotFoundError(std::string_view kind, std::string_view key)
      : Error("not found: " + std::string(kind) + " '" + std::string(key) + "'") {}
};

/// Request that is syntactically fine but semantically invalid for the
/// current state (docking an unprepared ligand, scheduling on a released
/// VM, querying a dropped table, ...).
class InvalidStateError : public Error {
 public:
  explicit InvalidStateError(const std::string& what) : Error(what) {}
};

/// An activity execution failed at runtime (the workflow engine catches
/// these and drives its re-execution machinery).
class ActivityError : public Error {
 public:
  explicit ActivityError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace scidock

/// Precondition / invariant check. Violations are programming errors and
/// abort with a diagnostic (never throw) so they are loud in tests.
#define SCIDOCK_ASSERT(expr)                                                \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::scidock::detail::assert_fail(#expr, __FILE__, __LINE__, "");        \
    }                                                                       \
  } while (false)

#define SCIDOCK_ASSERT_MSG(expr, msg)                                       \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::scidock::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                       \
  } while (false)

/// Recoverable-error check: throws InvalidStateError when violated.
#define SCIDOCK_REQUIRE(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      throw ::scidock::InvalidStateError(msg);                              \
    }                                                                       \
  } while (false)
