// Provenance WAL ingest + recovery perf gates (DESIGN.md §12).
//
// Three acceptance gates, each a hard exit-1 failure:
//   - sustained ingest with group commit on must reach
//     SCIDOCK_PROV_MIN_INGEST_PER_S activations/s (default 100k/s);
//   - crash-recovery replay, projected to a 1M-activation log, must
//     finish within SCIDOCK_PROV_REPLAY_1M_LIMIT_S seconds (default 5);
//   - peak RSS (VmHWM) must stay under SCIDOCK_PROV_MAX_RSS_MB (default
//     4096 MB) — the WAL path must not buffer the log in memory.
//
// Knobs: SCIDOCK_PROV_ACTIVATIONS (workload), SCIDOCK_PROV_SHARDS.
// Writes BENCH_prov.json for the perf trajectory.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "prov/prov.hpp"
#include "util/strings.hpp"
#include "vfs/vfs.hpp"

namespace {

using namespace scidock;

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Peak resident set (VmHWM) in MiB, or -1 where /proc is unavailable.
double peak_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1.0;
  char line[256];
  long long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lld", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb < 0 ? -1.0 : static_cast<double>(kb) / 1024.0;
}

}  // namespace

int main() {
  bench::print_header("SciDock bench: provenance WAL ingest + recovery",
                      "DESIGN.md SS12 durability gates");

  const int activations = bench::env_int("SCIDOCK_PROV_ACTIVATIONS", 200000);
  const int shards = bench::env_int("SCIDOCK_PROV_SHARDS", 4);
  const int min_ingest =
      bench::env_int("SCIDOCK_PROV_MIN_INGEST_PER_S", 100000);
  const int replay_limit_s =
      bench::env_int("SCIDOCK_PROV_REPLAY_1M_LIMIT_S", 5);
  const int max_rss_mb = bench::env_int("SCIDOCK_PROV_MAX_RSS_MB", 4096);
  std::printf("workload: %d activations, %d shards, group commit on\n\n",
              activations, shards);

  vfs::SharedFileSystem fs;
  prov::ProvenanceStoreOptions options;
  options.shard_count = static_cast<std::size_t>(shards);
  options.vfs = &fs;
  options.wal_dir = "/prov";
  options.group_commit = true;

  // ---- ingest: a full campaign recorded through the WAL ----
  prov::DurabilityStats stats;
  double ingest_wall = 0.0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    prov::ProvenanceStore store(options);
    store.record_machine(1, "std-large", 8, 1.0);
    store.record_machine(2, "std-xlarge", 16, 1.25);
    const long long wkf =
        store.begin_workflow("bench-ingest", "WAL ingest gate", "/exp", 0.0);
    const long long act =
        store.register_activity(wkf, "dock", "vina", "MAP");
    double t = 1.0;
    for (int i = 0; i < activations; ++i) {
      const long long task = store.begin_activation(
          act, wkf, t, 1 + (i & 1), "pair-" + std::to_string(i));
      store.end_activation(task, t + 0.5, prov::kStatusFinished, 0, 1);
      t += 0.001;
    }
    store.end_workflow(wkf, t);
    store.flush();
    ingest_wall = wall_seconds_since(t0);
    stats = store.durability_stats();
  }
  const double ingest_rate = static_cast<double>(activations) / ingest_wall;
  std::printf("ingest:  %d activations in %.3f s -> %.0f act/s "
              "(%lld records, %lld group commits, %lld rotations)\n",
              activations, ingest_wall, ingest_rate, stats.records_durable,
              stats.group_commits, stats.segment_rotations);

  // ---- recovery: reopen the directory, replay everything ----
  const auto t0 = std::chrono::steady_clock::now();
  prov::ProvenanceStore replayed(options);
  const double replay_wall = wall_seconds_since(t0);
  const prov::RecoveryReport& rec = replayed.last_recovery();
  const double projected_1m =
      replay_wall * (1000000.0 / static_cast<double>(activations));
  std::printf("replay:  %zu records / %zu segments in %.3f s "
              "-> %.2f s per 1M activations\n",
              rec.records, rec.segments, replay_wall, projected_1m);

  const double rss = peak_rss_mb();
  std::printf("memory:  peak RSS %.1f MB\n\n", rss);

  // ---- correctness sanity before the perf gates mean anything ----
  bool ok = true;
  if (rec.records != static_cast<std::size_t>(stats.records_durable) ||
      rec.truncated_bytes != 0 || rec.orphan_rows != 0) {
    std::printf("FAIL: replay mismatch (%zu records vs %lld durable, "
                "%zu truncated bytes, %zu orphans)\n",
                rec.records, stats.records_durable, rec.truncated_bytes,
                rec.orphan_rows);
    ok = false;
  }

  bench::print_compare("ingest rate",
                       strformat(">= %d act/s", min_ingest),
                       strformat("%.0f act/s", ingest_rate));
  if (ingest_rate < min_ingest) {
    std::printf("FAIL: ingest gate\n");
    ok = false;
  }
  bench::print_compare("1M-activation replay",
                       strformat("<= %d s", replay_limit_s),
                       strformat("%.2f s", projected_1m));
  if (projected_1m > replay_limit_s) {
    std::printf("FAIL: replay gate\n");
    ok = false;
  }
  bench::print_compare("peak RSS",
                       strformat("<= %d MB", max_rss_mb),
                       rss < 0 ? "n/a" : strformat("%.1f MB", rss));
  if (rss > max_rss_mb) {
    std::printf("FAIL: RSS gate\n");
    ok = false;
  }

  bench::write_bench_json(
      "prov",
      {{"activations", std::to_string(activations)},
       {"shards", std::to_string(shards)},
       {"ingest_rate_per_s", strformat("%.0f", ingest_rate)},
       {"ingest_wall_s", strformat("%.4f", ingest_wall)},
       {"records_durable", std::to_string(stats.records_durable)},
       {"bytes_durable", std::to_string(stats.bytes_durable)},
       {"group_commits", std::to_string(stats.group_commits)},
       {"segment_rotations", std::to_string(stats.segment_rotations)},
       {"replay_wall_s", strformat("%.4f", replay_wall)},
       {"replay_projected_1m_s", strformat("%.3f", projected_1m)},
       {"peak_rss_mb", strformat("%.1f", rss)},
       {"gates_passed", ok ? "true" : "false"}});
  std::printf("%s\n", ok ? "all gates passed" : "GATES FAILED");
  return ok ? 0 : 1;
}
