# Empty compiler generated dependencies file for scidock_vfs.
# This may be replaced when dependencies are built.
