#include "mol/charges.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace scidock::mol {

namespace {

/// PEOE electronegativity polynomial chi(q) = a + b q + c q^2 per element.
/// Coefficients follow Gasteiger & Marsili 1980 for H/C/N/O; other elements
/// use Pauling-electronegativity-scaled approximations, which is the same
/// fallback MGLTools effectively applies for exotic atoms.
struct Peoe {
  double a, b, c;
};

Peoe peoe_params(Element e) {
  switch (e) {
    case Element::H: return {7.17, 6.24, -0.56};
    case Element::C: return {7.98, 9.18, 1.88};
    case Element::N: return {11.54, 10.82, 1.36};
    case Element::O: return {14.18, 12.92, 1.39};
    case Element::F: return {14.66, 13.85, 2.31};
    case Element::Cl: return {11.00, 9.69, 1.35};
    case Element::Br: return {10.08, 8.47, 1.16};
    case Element::I: return {9.90, 7.96, 0.96};
    case Element::S: return {10.14, 9.13, 1.38};
    case Element::P: return {8.90, 8.24, 0.96};
    default: {
      // Scale a carbon-like polynomial by the element's Pauling EN.
      const double scale = element_info(e).electronegativity / 2.55;
      return {7.98 * scale, 9.18 * scale, 1.88};
    }
  }
}

}  // namespace

void assign_gasteiger_charges(Molecule& m, const GasteigerOptions& opts) {
  m.perceive();
  const int n = m.atom_count();
  std::vector<double> q(static_cast<std::size_t>(n), 0.0);

  double damp = opts.damping;
  for (int iter = 0; iter < opts.iterations; ++iter) {
    std::vector<double> chi(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const Peoe p = peoe_params(m.atom(i).element);
      const double qi = q[static_cast<std::size_t>(i)];
      chi[static_cast<std::size_t>(i)] = p.a + p.b * qi + p.c * qi * qi;
    }
    std::vector<double> dq(static_cast<std::size_t>(n), 0.0);
    for (const Bond& b : m.bonds()) {
      const auto ia = static_cast<std::size_t>(b.a);
      const auto ib = static_cast<std::size_t>(b.b);
      const double diff = chi[ib] - chi[ia];
      // Electrons flow towards the more electronegative partner; the
      // normaliser is the cation electronegativity chi(+1) of the donor.
      const Element donor = diff > 0 ? m.atom(b.a).element : m.atom(b.b).element;
      const Peoe dp = peoe_params(donor);
      const double chi_plus = dp.a + dp.b + dp.c;
      if (chi_plus <= 1e-9) continue;
      const double transfer = damp * diff / chi_plus;
      dq[ia] += transfer;
      dq[ib] -= transfer;
    }
    for (int i = 0; i < n; ++i) q[static_cast<std::size_t>(i)] += dq[static_cast<std::size_t>(i)];
    damp *= opts.damping;
  }

  // Re-centre so the net molecular charge is exactly zero.
  double net = 0.0;
  for (double v : q) net += v;
  const double shift = net / static_cast<double>(n);
  for (int i = 0; i < n; ++i) {
    m.mutable_atom(i).partial_charge = q[static_cast<std::size_t>(i)] - shift;
  }
  m.perceive();  // mutable_atom() invalidated the cache; typing is unchanged
}

double total_charge(const Molecule& m) {
  double net = 0.0;
  for (const Atom& a : m.atoms()) net += a.partial_charge;
  return net;
}

}  // namespace scidock::mol
