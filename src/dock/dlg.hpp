#pragma once

/// \file dlg.hpp
/// Docking-log writers. AD4 writes `.dlg` files with FEB, the RMSD table
/// and the clustering histogram; Vina writes its mode table. These are the
/// files Query 2 locates in the provenance database and whose contents the
/// workflow extractors parse back into provenance records.

#include <string>
#include <string_view>

#include "dock/engine.hpp"
#include "mol/prepare.hpp"

namespace scidock::dock {

/// AD4-style .dlg content for a docking result.
std::string write_dlg(const DockingResult& result);

/// Vina-style terminal log (mode table).
std::string write_vina_log(const DockingResult& result);

/// The summary values the workflow's extractor component pulls out of a
/// docking log for provenance (binding energy, RMSD, counts).
struct DlgSummary {
  std::string receptor;
  std::string ligand;
  std::string engine;
  double best_feb = 0.0;
  double best_rmsd = 0.0;
  double mean_feb = 0.0;
  double mean_rmsd = 0.0;
  int conformations = 0;
  int clusters = 0;
};

/// Parse either log flavour back into a summary (the extractor path).
DlgSummary parse_docking_log(std::string_view text);

/// Multi-MODEL output PDBQT, as Vina writes its `_out.pdbqt`: one MODEL
/// block per reported conformation with a "REMARK VINA RESULT" line, the
/// ligand's torsion-tree records and the docked coordinates.
std::string write_poses_pdbqt(const mol::PreparedLigand& ligand,
                              const DockingResult& result);

}  // namespace scidock::dock
