# Empty dependencies file for scidock_util.
# This may be replaced when dependencies are built.
