#pragma once

/// \file strings.hpp
/// Small string utilities used across parsers and report writers.

#include <string>
#include <string_view>
#include <vector>

namespace scidock {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Case-insensitive equality for ASCII.
bool iequals(std::string_view a, std::string_view b);

std::string to_upper(std::string_view s);
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parse helpers that throw ParseError with context on failure.
double parse_double(std::string_view s, std::string_view context = "number");
long long parse_int(std::string_view s, std::string_view context = "integer");

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-width substring of a line (PDB-style column extraction); returns a
/// trimmed view, tolerating lines shorter than `start + len`.
std::string_view fixed_columns(std::string_view line, std::size_t start,
                               std::size_t len);

/// Render seconds as a compact human string, e.g. "12.5 d", "11.9 h", "42 s".
std::string human_duration(double seconds);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace scidock
