#include "wf/native_executor.hpp"

#include <chrono>

#include "util/error.hpp"
#include "util/thread_annotations.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace scidock::wf {

namespace {
double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

NativeExecutor::NativeExecutor(const Pipeline& pipeline,
                               vfs::SharedFileSystem& fs,
                               prov::ProvenanceStore& prov,
                               NativeExecutorOptions options)
    : pipeline_(pipeline), fs_(fs), prov_(prov), options_(std::move(options)) {
  for (const Stage& st : pipeline.stages()) {
    SCIDOCK_REQUIRE(static_cast<bool>(st.impl),
                    "stage '" + st.tag + "' has no native implementation");
  }
}

NativeReport NativeExecutor::run(const Relation& input,
                                 const std::string& workflow_tag) {
  const double t0 = wall_now();
  const obs::ExecutorCounters counters =
      obs::executor_counters(options_.obs.metrics);
  obs::ScopedSpan run_span(options_.obs.trace, "native-run", "executor",
                           {{"workflow", workflow_tag}});
  const long long wkfid =
      prov_.begin_workflow(workflow_tag, "native execution", options_.expdir, 0.0);
  std::map<std::string, long long> actids;
  for (const Stage& st : pipeline_.stages()) {
    actids[st.tag] = prov_.register_activity(wkfid, st.tag, "./experiment.cmd",
                                             std::string(to_string(st.op)));
  }

  // SciCumulus relations are file-backed (Figure 2: input_1.txt); stage
  // the input relation on the shared FS and record it in provenance so
  // Query-2-style lookups can find it.
  {
    const std::string rel_path = options_.expdir + "/relations/input_1.txt";
    const std::string text = input.to_file_text();
    const std::size_t size = text.size();
    fs_.write(rel_path, text, 0.0, workflow_tag);
    const auto [dir, name] = vfs::split_path(rel_path);
    prov_.record_file(wkfid, 0, 0, name, size, dir);
  }

  NativeReport report;
  Mutex report_mutex{"wf.native.report"};
  std::vector<std::vector<Tuple>> final_tuples(input.size());
  // Shadow-track the aggregation state: `report` must only be touched
  // under report_mutex while tasks run; each final_tuples bucket is
  // written by exactly one task and read after the parallel_for join.
  SCIDOCK_RACER_TRACK(report, "wf.native.report");
  for (auto& bucket : final_tuples) {
    SCIDOCK_RACER_TRACK(bucket, "wf.native.final_tuples");
  }

  Rng root_rng(options_.seed);

  auto process_tuple = [&](std::size_t tuple_idx) {
    // Each tuple owns a deterministic stream regardless of scheduling.
    Rng tuple_rng = root_rng.fork("tuple-" + std::to_string(tuple_idx));
    std::vector<Tuple> frontier{input.tuples()[tuple_idx]};
    std::string stage_tag = pipeline_.stages().front().tag;

    while (stage_tag != kEndOfPipeline && !frontier.empty()) {
      const Stage& st = pipeline_.stage(stage_tag);
      std::vector<Tuple> produced;
      for (const Tuple& in_tuple : frontier) {
        bool done = false;
        std::string last_error;
        for (int attempt = 1; attempt <= options_.max_attempts && !done; ++attempt) {
          ActivationContext ctx;
          ctx.fs = &fs_;
          ctx.prov = &prov_;
          ctx.obs = options_.obs;
          ctx.wkfid = wkfid;
          ctx.actid = actids[st.tag];
          ctx.expdir = options_.expdir;
          ctx.rng = tuple_rng.fork(st.tag + "#" + std::to_string(attempt));
          const double start = wall_now() - t0;
          ctx.now = start;
          ctx.taskid = prov_.begin_activation(
              ctx.actid, wkfid, start, /*vmid=*/0,
              in_tuple.get("pair").value_or(""));
          obs::ScopedSpan span(
              options_.obs.trace, st.tag, "activation",
              {{"pair", in_tuple.get("pair").value_or("")},
               {"attempt", std::to_string(attempt)}});
          if (counters.started != nullptr) {
            counters.started->inc();
            if (attempt > 1) counters.retried->inc();
          }
          auto notify = [&](bool success) {
            if (!options_.monitor) return;
            try {
              options_.monitor(ActivationEvent{
                  st.tag, in_tuple.get("pair").value_or(""), success, attempt,
                  wall_now() - t0 - start});
            } catch (...) {
              // A broken monitor must not take the workflow down.
            }
          };
          if (options_.fault_injector) {
            const InjectedFault fault =
                options_.fault_injector(st.tag, in_tuple, attempt);
            if (fault == InjectedFault::Hang) {
              // Looping state: the watchdog aborts the activation. The
              // attempt is burned and the abort is visible in provenance
              // (the record the paper's authors used to diagnose Hg hangs).
              prov_.end_activation(ctx.taskid, wall_now() - t0,
                                   prov::kStatusAborted, 1, attempt);
              last_error = "injected hang at " + st.tag + " (watchdog abort)";
              {
                MutexLock lock(report_mutex);
                SCIDOCK_RACER_WRITE(report);
                ++report.activations_hung;
              }
              if (counters.aborted != nullptr) counters.aborted->inc();
              span.set_arg("status", std::string(prov::kStatusAborted));
              notify(false);
              continue;
            }
            if (fault == InjectedFault::Failure) {
              prov_.end_activation(ctx.taskid, wall_now() - t0,
                                   prov::kStatusFailed, 1, attempt);
              last_error = "injected failure at " + st.tag;
              {
                MutexLock lock(report_mutex);
                SCIDOCK_RACER_WRITE(report);
                ++report.activations_failed;
              }
              if (counters.failed != nullptr) counters.failed->inc();
              span.set_arg("status", std::string(prov::kStatusFailed));
              notify(false);
              continue;
            }
          }
          try {
            std::vector<Tuple> out = st.impl(in_tuple, ctx);
            prov_.end_activation(ctx.taskid, wall_now() - t0,
                                 prov::kStatusFinished, 0, attempt);
            const double elapsed = wall_now() - t0 - start;
            {
              MutexLock lock(report_mutex);
              SCIDOCK_RACER_WRITE(report);
              ++report.activations_finished;
              report.per_activity_seconds[st.tag].add(elapsed);
            }
            if (counters.finished != nullptr) {
              counters.finished->inc();
              counters.activation_seconds->observe(elapsed);
            }
            span.set_arg("status", std::string(prov::kStatusFinished));
            notify(true);
            for (Tuple& o : out) produced.push_back(std::move(o));
            done = true;
          } catch (const Error& e) {
            prov_.end_activation(ctx.taskid, wall_now() - t0,
                                 prov::kStatusFailed, 1, attempt);
            last_error = e.what();
            {
              MutexLock lock(report_mutex);
              SCIDOCK_RACER_WRITE(report);
              ++report.activations_failed;
            }
            if (counters.failed != nullptr) counters.failed->inc();
            span.set_arg("status", std::string(prov::kStatusFailed));
            notify(false);
          }
        }
        if (!done) {
          if (counters.tuples_lost != nullptr) counters.tuples_lost->inc();
          MutexLock lock(report_mutex);
          SCIDOCK_RACER_WRITE(report);
          ++report.tuples_lost;
          report.failure_messages.push_back(last_error);
          SCIDOCK_LOG_WARN("tuple %zu lost at stage %s: %s", tuple_idx,
                           st.tag.c_str(), last_error.c_str());
        }
      }
      if (produced.empty()) {
        frontier.clear();  // filtered out or lost: nothing reaches the output
        break;
      }
      // Route on the first produced tuple (SciDock routing is per-pair).
      stage_tag = pipeline_.next_stage(st.tag, produced.front());
      frontier = std::move(produced);
    }
    // Only tuples that traversed the whole chain appear in the output.
    if (stage_tag == kEndOfPipeline) {
      if (counters.tuples_completed != nullptr) {
        counters.tuples_completed->inc();
      }
      SCIDOCK_RACER_WRITE(final_tuples[tuple_idx]);
      final_tuples[tuple_idx] = std::move(frontier);
    }
  };

  if (options_.threads > 1) {
    ThreadPool pool(static_cast<std::size_t>(options_.threads));
    if (options_.pool_task_hook) pool.set_task_hook(options_.pool_task_hook);
    if (options_.obs.metrics != nullptr) {
      obs::instrument_thread_pool(pool, *options_.obs.metrics);
    }
    pool.parallel_for(input.size(), process_tuple);
  } else {
    for (std::size_t i = 0; i < input.size(); ++i) process_tuple(i);
  }

  // Assemble the output relation from the first completed tuple's schema.
  std::vector<std::string> fields;
  for (const auto& bucket : final_tuples) {
    if (!bucket.empty()) {
      for (const auto& [k, v] : bucket.front().fields()) fields.push_back(k);
      break;
    }
  }
  report.output = Relation(fields);
  for (auto& bucket : final_tuples) {
    SCIDOCK_RACER_READ(bucket);
    for (Tuple& t : bucket) {
      Tuple projected;
      bool complete = true;
      for (const std::string& f : fields) {
        const auto v = t.get(f);
        if (!v) {
          complete = false;
          break;
        }
        projected.set(f, *v);
      }
      if (complete) report.output.add(std::move(projected));
    }
  }

  // The final output relation also lands on the shared FS.
  {
    const std::string rel_path = options_.expdir + "/relations/output_1.txt";
    const std::string text = report.output.to_file_text();
    const std::size_t size = text.size();
    fs_.write(rel_path, text, wall_now() - t0, workflow_tag);
    const auto [dir, name] = vfs::split_path(rel_path);
    prov_.record_file(wkfid, 0, 0, name, size, dir);
  }

  report.wall_seconds = wall_now() - t0;
  prov_.end_workflow(wkfid, report.wall_seconds);
  for (auto& bucket : final_tuples) SCIDOCK_RACER_UNTRACK(bucket);
  SCIDOCK_RACER_UNTRACK(report);
  return report;
}

}  // namespace scidock::wf
