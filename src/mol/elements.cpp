#include "mol/elements.hpp"

#include <array>
#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::mol {

namespace {

// Covalent radii: Cordero et al. 2008; vdW radii: Bondi 1964 (metals:
// common force-field values). Electronegativities: Pauling.
constexpr std::array<ElementInfo, 19> kElements{{
    {Element::Unknown, "X", 0, 12.011, 0.76, 1.70, 2.55, false},
    {Element::H, "H", 1, 1.008, 0.31, 1.20, 2.20, false},
    {Element::C, "C", 6, 12.011, 0.76, 1.70, 2.55, false},
    {Element::N, "N", 7, 14.007, 0.71, 1.55, 3.04, false},
    {Element::O, "O", 8, 15.999, 0.66, 1.52, 3.44, false},
    {Element::F, "F", 9, 18.998, 0.57, 1.47, 3.98, false},
    {Element::Na, "Na", 11, 22.990, 1.66, 2.27, 0.93, true},
    {Element::Mg, "Mg", 12, 24.305, 1.41, 1.73, 1.31, true},
    {Element::P, "P", 15, 30.974, 1.07, 1.80, 2.19, false},
    {Element::S, "S", 16, 32.06, 1.05, 1.80, 2.58, false},
    {Element::Cl, "Cl", 17, 35.45, 1.02, 1.75, 3.16, false},
    {Element::K, "K", 19, 39.098, 2.03, 2.75, 0.82, true},
    {Element::Ca, "Ca", 20, 40.078, 1.76, 2.31, 1.00, true},
    {Element::Mn, "Mn", 25, 54.938, 1.39, 2.05, 1.55, true},
    {Element::Fe, "Fe", 26, 55.845, 1.32, 2.05, 1.83, true},
    {Element::Zn, "Zn", 30, 65.38, 1.22, 1.39, 1.65, true},
    {Element::Br, "Br", 35, 79.904, 1.20, 1.85, 2.96, false},
    {Element::I, "I", 53, 126.904, 1.39, 1.98, 2.66, false},
    {Element::Hg, "Hg", 80, 200.592, 1.32, 1.55, 2.00, true},
}};

}  // namespace

const ElementInfo& element_info(Element e) {
  for (const ElementInfo& info : kElements) {
    if (info.element == e) return info;
  }
  return kElements[0];
}

std::optional<Element> element_from_symbol(std::string_view symbol) {
  const std::string_view s = trim(symbol);
  for (const ElementInfo& info : kElements) {
    if (info.element != Element::Unknown && iequals(info.symbol, s)) {
      return info.element;
    }
  }
  return std::nullopt;
}

Element element_from_pdb_atom_name(std::string_view atom_name,
                                   bool is_standard_residue) {
  const std::string name = to_upper(trim(atom_name));
  if (name.empty()) return Element::Unknown;

  if (!is_standard_residue) {
    // HETATM ions/metals: the full name is typically the element symbol.
    if (auto e = element_from_symbol(name)) return *e;
  }
  // Two-letter halogens/metals inside residue or ligand names.
  if (name.size() >= 2) {
    const std::string two = name.substr(0, 2);
    if (two == "CL") return Element::Cl;
    if (two == "BR") return Element::Br;
    if (two == "HG" && !is_standard_residue) return Element::Hg;
    if (two == "ZN") return Element::Zn;
    if (two == "FE") return Element::Fe;
    if (two == "MG") return Element::Mg;
    if (two == "MN") return Element::Mn;
    if (two == "NA" && !is_standard_residue) return Element::Na;
  }
  // PDB convention: remote-indicator names like "1HB " start with a digit.
  std::size_t i = 0;
  while (i < name.size() && std::isdigit(static_cast<unsigned char>(name[i]))) ++i;
  if (i >= name.size()) return Element::Unknown;
  if (auto e = element_from_symbol(name.substr(i, 1))) return *e;
  return Element::Unknown;
}

int element_count() { return static_cast<int>(kElements.size()); }

const ElementInfo& element_info_at(int index) {
  SCIDOCK_ASSERT(index >= 0 && index < element_count());
  return kElements[static_cast<std::size_t>(index)];
}

}  // namespace scidock::mol
