#include "dock/energy.hpp"

#include <cmath>

#include "util/error.hpp"

namespace scidock::dock {

namespace {

mol::Vec3 root_center(const mol::PreparedLigand& ligand) {
  std::vector<mol::Vec3> pts;
  for (int i : ligand.torsions.root_atoms()) {
    pts.push_back(ligand.molecule.atom(i).pos);
  }
  if (pts.empty()) return ligand.molecule.center();
  return mol::centroid(pts);
}

}  // namespace

Ad4EnergyModel::Ad4EnergyModel(const GridMapSet& maps,
                               const mol::PreparedLigand& ligand,
                               Ad4Weights weights)
    : maps_(maps), ligand_(ligand), weights_(weights),
      reference_coords_(ligand.molecule.coordinates()),
      reference_center_(root_center(ligand)),
      intra_pairs_(intramolecular_pairs(ligand.molecule)) {
  // Every ligand type must have a map, otherwise the GPF was wrong.
  for (mol::AdType t : ligand.molecule.ad_types_present()) {
    SCIDOCK_REQUIRE(maps_.affinity_for(t) != nullptr,
                    "missing AutoGrid map for ligand atom type " +
                        std::string(mol::ad_type_name(t)));
  }
}

double Ad4EnergyModel::intermolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  for (int i = 0; i < ligand_.molecule.atom_count(); ++i) {
    const mol::Atom& a = ligand_.molecule.atom(i);
    const mol::Vec3& p = coords[static_cast<std::size_t>(i)];
    const GridMap* aff = maps_.affinity_for(a.ad_type);
    e += aff->sample(p);
    e += a.partial_charge * maps_.electrostatic.sample(p);
    const auto& pa = mol::ad_type_params(a.ad_type);
    constexpr double kQasp = 0.01097;
    e += (pa.solpar + kQasp * std::abs(a.partial_charge)) *
         maps_.desolvation.sample(p);
  }
  return e;
}

double Ad4EnergyModel::intramolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  for (const auto& [i, j] : intra_pairs_) {
    const mol::Atom& ai = ligand_.molecule.atom(i);
    const mol::Atom& aj = ligand_.molecule.atom(j);
    const double r = mol::distance(coords[static_cast<std::size_t>(i)],
                                   coords[static_cast<std::size_t>(j)]);
    e += ad4_pair_energy(ai.ad_type, ai.partial_charge, aj.ad_type,
                         aj.partial_charge, r, weights_);
  }
  return e;
}

double Ad4EnergyModel::operator()(const DockPose& pose) const {
  ++evaluations_;
  const std::vector<mol::Vec3> coords = coords_for(pose);
  return intermolecular(coords) + intramolecular(coords);
}

double Ad4EnergyModel::feb(double inter) const {
  return inter + weights_.tors * static_cast<double>(ligand_.torsions.torsion_count());
}

std::vector<mol::Vec3> Ad4EnergyModel::coords_for(const DockPose& pose) const {
  return ligand_.torsions.apply(reference_coords_, pose.rigid, pose.torsions);
}

VinaEnergyModel::VinaEnergyModel(const mol::PreparedReceptor& receptor,
                                 const mol::PreparedLigand& ligand,
                                 const GridBox& box, VinaWeights weights)
    : receptor_(receptor), ligand_(ligand), box_(box), weights_(weights),
      neighbors_(receptor.molecule, 8.0),
      reference_coords_(ligand.molecule.coordinates()),
      reference_center_(root_center(ligand)),
      intra_pairs_(intramolecular_pairs(ligand.molecule)) {}

double VinaEnergyModel::intermolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  for (int i = 0; i < ligand_.molecule.atom_count(); ++i) {
    const mol::Atom& a = ligand_.molecule.atom(i);
    const mol::Vec3& p = coords[static_cast<std::size_t>(i)];
    // Vina confines the search to the box: out-of-box atoms incur a steep
    // harmonic pull-back, mirroring its boundary handling.
    if (!box_.contains(p)) {
      const mol::Vec3 c = box_.center;
      e += 10.0 * mol::distance_sq(p, c);
      continue;
    }
    neighbors_.for_each_within(p, [&](int ri, double d2) {
      const mol::Atom& r = receptor_.molecule.atom(ri);
      e += vina_pair_energy(a.ad_type, r.ad_type, std::sqrt(d2), weights_);
    });
  }
  return e;
}

double VinaEnergyModel::intramolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  for (const auto& [i, j] : intra_pairs_) {
    const double r = mol::distance(coords[static_cast<std::size_t>(i)],
                                   coords[static_cast<std::size_t>(j)]);
    e += vina_pair_energy(ligand_.molecule.atom(i).ad_type,
                          ligand_.molecule.atom(j).ad_type, r, weights_);
  }
  return e;
}

double VinaEnergyModel::operator()(const DockPose& pose) const {
  ++evaluations_;
  const std::vector<mol::Vec3> coords = coords_for(pose);
  return intermolecular(coords) + intramolecular(coords);
}

double VinaEnergyModel::feb(double inter) const {
  return vina_affinity(inter, ligand_.torsions.torsion_count(), weights_);
}

std::vector<mol::Vec3> VinaEnergyModel::coords_for(const DockPose& pose) const {
  return ligand_.torsions.apply(reference_coords_, pose.rigid, pose.torsions);
}

}  // namespace scidock::dock
