#include "lint/diagnostics.hpp"

#include <utility>

namespace scidock::lint {

std::string_view to_string(Severity severity) {
  return severity == Severity::Error ? "error" : "warning";
}

std::string Diagnostic::format() const {
  std::string out;
  if (!file.empty()) {
    out += file;
    if (line > 0) out += ":" + std::to_string(line);
    out += ": ";
  } else if (line > 0) {
    out += "line " + std::to_string(line) + ": ";
  }
  out += std::string(to_string(severity)) + ": [" + rule + "] " + message;
  return out;
}

void Report::add(std::string rule, Severity severity, std::string file,
                 int line, std::string message) {
  diagnostics_.push_back(Diagnostic{std::move(rule), severity, std::move(file),
                                    line, std::move(message)});
}

std::size_t Report::error_count() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

bool Report::has(std::string_view rule) const { return count(rule) > 0; }

std::size_t Report::count(std::string_view rule) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.rule == rule) ++n;
  }
  return n;
}

void Report::merge(Report other) {
  for (Diagnostic& d : other.diagnostics_) {
    diagnostics_.push_back(std::move(d));
  }
}

std::string Report::format() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.format() + "\n";
  }
  return out;
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      // ---- workflow algebra (XML specification) ----
      {"WF001", "malformed specification (XML syntax, missing required "
                "elements/attributes, bad database port)"},
      {"WF002", "unknown algebraic operator (not MAP, SPLIT_MAP, FILTER, "
                "REDUCE or SR_QUERY)"},
      {"WF003", "operator arity violation (input/output relation counts do "
                "not match the operator's signature)"},
      {"WF004", "duplicate definition (activity tag, relation within an "
                "activity, or two producers of one relation)"},
      {"WF005", "relation schema mismatch (consumer declares a field its "
                "producer's declared schema does not provide)"},
      {"WF006", "dataflow cycle (relation wiring is not a DAG)"},
      {"WF007", "dangling input relation (no producing activity and no "
                "filename to stage it from)"},
      {"WF008", "malformed activation template (unterminated or empty "
                "%TAG% placeholder)"},
      {"WF009", "unresolvable template tag (%TAG% names no field of the "
                "activity's declared input schema)"},
      {"WF010", "undeclared template tag (%TAG% used where the activity "
                "declares no input schema, and no activity in the workflow "
                "declares such a field)"},
      // ---- provenance SQL ----
      {"SQL001", "syntax error (statement does not parse)"},
      {"SQL002", "unknown table (not in the PROV-Wf or workflow-relation "
                 "catalog)"},
      {"SQL003", "unknown or ambiguous column reference"},
      {"SQL004", "unknown function, wrong argument count, or bad EXTRACT "
                 "field"},
      {"SQL005", "aggregate misuse (in WHERE or GROUP BY, nested, star on "
                 "a non-count aggregate, or wrong argument count)"},
      {"SQL006", "column not grouped (selected outside an aggregate while "
                 "GROUP BY is in effect)"},
      {"SQL007", "type mismatch (text where a number is required, or "
                 "comparing text with a number)"},
      {"SQL008", "unknown reconciled metric (a '-- reconciles: <name>' "
                 "annotation names a counter no scidock_* series "
                 "registers)"},
      // ---- runtime lock-discipline findings (util/lockdep bridge) ----
      {"LD001", "lock-order inversion (a new acquisition edge closes a "
                "cycle in the global lock-order graph)"},
      {"LD002", "pool self-wait (a worker thread blocks on work scheduled "
                "into its own pool)"},
      {"LD003", "blocking wait while holding a lock (CondVar::wait or an "
                "annotated wait entered with unrelated locks held)"},
      {"LD004", "long hold (a lock held past the configured threshold)"},
      {"LD005", "duplicate lock-class name (the same Mutex name registered "
                "from two declaration sites, which would merge unrelated "
                "order graphs)"},
      // ---- runtime happens-before findings (util/racer bridge) ----
      {"RC001", "write-write race (two writes to a tracked cell with no "
                "happens-before edge between them)"},
      {"RC002", "read-write race (a read and a write to a tracked cell "
                "with no happens-before edge between them)"},
      {"RC003", "unsynchronized publish (first cross-thread access to a "
                "tracked cell arrives with no ordering edge from its "
                "construction)"},
      {"RC004", "order-nondeterminism (a named reduction produced "
                "different per-key digests across runs or thread counts)"},
  };
  return catalog;
}

}  // namespace scidock::lint
