#pragma once

/// \file thread_annotations.hpp
/// Clang Thread Safety Analysis support: attribute macros plus annotated
/// synchronisation primitives (Mutex, MutexLock, CondVar) that make lock
/// discipline checkable at compile time.
///
/// Under Clang the build adds -Wthread-safety -Werror=thread-safety (see
/// the top-level CMakeLists.txt), so an unguarded access to a
/// SCIDOCK_GUARDED_BY member, a missing SCIDOCK_REQUIRES caller lock or a
/// double release fails the build. Under GCC (and any compiler without
/// the capability attributes) every macro expands to nothing and Mutex /
/// MutexLock behave exactly like std::mutex / std::lock_guard.
///
/// With the SCIDOCK_LOCKDEP CMake option ON the same primitives also
/// feed the runtime lock-order analyzer (util/lockdep.hpp): construct a
/// Mutex with a name — `Mutex mutex_{"prov.store"}` — to give it a lock
/// class; acquisitions then record order edges with the call site
/// (std::source_location) and inversions/hazards are reported with full
/// cycles. With the option OFF (default) the name is discarded and the
/// primitives compile down to exactly the std equivalents.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lockdep.hpp"
#include "util/racer.hpp"

#if defined(__clang__)
#define SCIDOCK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCIDOCK_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define SCIDOCK_CAPABILITY(x) SCIDOCK_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCIDOCK_SCOPED_CAPABILITY SCIDOCK_THREAD_ANNOTATION(scoped_lockable)

/// Data member that may only be touched while holding the given capability.
#define SCIDOCK_GUARDED_BY(x) SCIDOCK_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define SCIDOCK_PT_GUARDED_BY(x) SCIDOCK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held / not held.
#define SCIDOCK_REQUIRES(...) \
  SCIDOCK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SCIDOCK_EXCLUDES(...) \
  SCIDOCK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases the capability itself.
#define SCIDOCK_ACQUIRE(...) \
  SCIDOCK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SCIDOCK_RELEASE(...) \
  SCIDOCK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SCIDOCK_TRY_ACQUIRE(...) \
  SCIDOCK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Escape hatch for intentionally unchecked code (document why at use).
#define SCIDOCK_NO_THREAD_SAFETY_ANALYSIS \
  SCIDOCK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace scidock {

/// std::mutex wrapper the analysis understands. Lock it through MutexLock
/// (or CondVar::wait) so acquire/release pairing is compiler-checked.
/// Name it at construction so lockdep reports read `prov.store`, not
/// `mutex@0x7f...`; same name = same lock class (ordering is validated
/// per class, as in kernel lockdep).
class SCIDOCK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// The defaulted source_location lands on the declaration that invokes
  /// this constructor (the member initializer / variable definition) —
  /// lockdep keys lock classes on (name, site) so a second declaration
  /// reusing a name is an LD005 error, and racer names its
  /// release→acquire edges after the same string.
#if SCIDOCK_LOCKDEP_ENABLED
  explicit Mutex(const char* name,
                 std::source_location site = std::source_location::current())
      : class_id_(lockdep::register_class(name, site)) {
    racer::register_sync(this, name);
  }
#else
  explicit Mutex([[maybe_unused]] const char* name) {
    racer::register_sync(this, name);
  }
#endif
  ~Mutex() { racer::unregister_sync(this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Racer hooks sit *inside* the critical section (acquire: after the
  // lock lands; release: before it drops) so the vector-clock transfer
  // through the lock's release clock is itself race-free.
#if SCIDOCK_LOCKDEP_ENABLED
  void lock(std::source_location site = std::source_location::current())
      SCIDOCK_ACQUIRE() {
    lockdep::on_acquire(class_id_, this, site);  // before: edge + cycle check
    m_.lock();
    racer::on_mutex_acquire(this);
  }
  void unlock() SCIDOCK_RELEASE() {
    lockdep::on_release(this);
    racer::on_mutex_release(this);
    m_.unlock();
  }
  bool try_lock(std::source_location site = std::source_location::current())
      SCIDOCK_TRY_ACQUIRE(true) {
    const bool acquired = m_.try_lock();
    if (acquired) {
      lockdep::on_try_acquired(class_id_, this, site);
      racer::on_mutex_acquire(this);
    }
    return acquired;
  }
  int lockdep_class_id() const { return class_id_; }
#else
  void lock() SCIDOCK_ACQUIRE() {
    m_.lock();
    racer::on_mutex_acquire(this);
  }
  void unlock() SCIDOCK_RELEASE() {
    racer::on_mutex_release(this);
    m_.unlock();
  }
  bool try_lock() SCIDOCK_TRY_ACQUIRE(true) {
    const bool acquired = m_.try_lock();
    if (acquired) racer::on_mutex_acquire(this);
    return acquired;
  }
#endif

 private:
  std::mutex m_;
#if SCIDOCK_LOCKDEP_ENABLED
  int class_id_ = lockdep::kAnonymousClass;
#endif
};

/// RAII lock for Mutex — the annotated counterpart of std::lock_guard.
class SCIDOCK_SCOPED_CAPABILITY MutexLock {
 public:
#if SCIDOCK_LOCKDEP_ENABLED
  /// The defaulted source_location captures the MutexLock statement
  /// itself — that is the site lockdep prints in cycle reports.
  explicit MutexLock(Mutex& mutex,
                     std::source_location site = std::source_location::current())
      SCIDOCK_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(site);
  }
#else
  explicit MutexLock(Mutex& mutex) SCIDOCK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
#endif
  ~MutexLock() SCIDOCK_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable for Mutex. wait() requires the capability: callers
/// hold the lock (via MutexLock), and the analysis verifies it. The
/// predicate loop lives at the call site so guarded reads stay checkable:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);   // ready_ GUARDED_BY(mutex_)
class CondVar {
 public:
  /// Atomically release `mutex`, sleep, and re-acquire before returning.
  /// Under lockdep, entering a wait while holding any *other* tracked
  /// lock is reported (LD003); the release/re-acquire bookkeeping flows
  /// through the instrumented unlock()/lock() the wait performs.
#if SCIDOCK_LOCKDEP_ENABLED
  void wait(Mutex& mutex,
            std::source_location site = std::source_location::current())
      SCIDOCK_REQUIRES(mutex) {
    lockdep::on_cond_wait(&mutex, site);
    cv_.wait(mutex);
  }
#else
  void wait(Mutex& mutex) SCIDOCK_REQUIRES(mutex) { cv_.wait(mutex); }
#endif

  /// Timed wait (group-commit flusher heartbeats). Same hazard checks as
  /// wait(); returns std::cv_status::timeout when the duration elapsed.
#if SCIDOCK_LOCKDEP_ENABLED
  template <class Rep, class Period>
  std::cv_status wait_for(
      Mutex& mutex, const std::chrono::duration<Rep, Period>& rel_time,
      std::source_location site = std::source_location::current())
      SCIDOCK_REQUIRES(mutex) {
    lockdep::on_cond_wait(&mutex, site);
    return cv_.wait_for(mutex, rel_time);
  }
#else
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& rel_time)
      SCIDOCK_REQUIRES(mutex) {
    return cv_.wait_for(mutex, rel_time);
  }
#endif

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace scidock
