#pragma once

/// \file io_sdf.hpp
/// MDL SDF (V2000 connection table) reader/writer. Ligands in the Table 2
/// dataset enter the workflow in this format; activity 1 (Babel) converts
/// them to MOL2.

#include <string>
#include <string_view>
#include <vector>

#include "mol/molecule.hpp"

namespace scidock::mol {

/// Parse the first molecule of an SDF document.
Molecule read_sdf(std::string_view text, std::string_view name = "");

/// Parse every record ($$$$-separated) of an SDF document.
std::vector<Molecule> read_sdf_multi(std::string_view text);

/// Serialise one molecule as a single-record SDF document.
std::string write_sdf(const Molecule& m);

}  // namespace scidock::mol
