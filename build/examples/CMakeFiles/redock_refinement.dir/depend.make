# Empty dependencies file for redock_refinement.
# This may be replaced when dependencies are built.
