// Planted-race fixtures for the racer × ThreadSanitizer cross-check leg
// (ci/check.sh stage racer_tsan). Unlike racer_test.cpp — whose planted
// shapes are sequenced with real synchronisation so gtest stays
// TSan-clean — each fixture here contains a REAL data race on a tracked
// object. Built with -DSCIDOCK_RACER=ON and -fsanitize=thread, one
// process runs both detectors: the racer must name the RC code on
// stdout and TSan must print its own data-race warning on stderr; the
// CI stage diffs the two and fails if either detector misses.
//
//   racer_planted ww       write-write race        -> RC001
//   racer_planted rw       read racing a write     -> RC002
//   racer_planted publish  relaxed-flag publication -> RC003
//
// The races are benign in practice (torn int stores at worst), so the
// process always reaches its report and exits 0 when the expected RC
// code was found.

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>

#include "util/racer.hpp"

namespace {

using scidock::racer::ReportKind;

volatile int g_sink = 0;  // defeats dead-access elimination

int finish(ReportKind expected) {
  std::fputs(scidock::racer::format_report().c_str(), stdout);
  if (!scidock::racer::compiled_in()) {
    std::fputs("racer_planted: analyzer compiled out -- rebuild with "
               "-DSCIDOCK_RACER=ON\n",
               stdout);
    return 2;
  }
  if (scidock::racer::finding_count(expected) == 0) {
    // Deliberately does not echo the rule ID: the CI grep must only
    // match when the analyzer itself reported it.
    std::fputs("racer_planted: expected report missing\n", stdout);
    return 1;
  }
  std::printf("racer_planted: flagged %s\n",
              std::string(scidock::racer::rule_id(expected)).c_str());
  return 0;
}

/// RC001: two unsynchronized writer loops. The fork edge orders the
/// worker's *first* write (so it is a known accessor, not an RC003
/// publish); the loops then race for real. The post-join write is the
/// determinism backstop: even a schedule that never interleaved the
/// loops leaves it unordered for the racer (std::thread::join is not an
/// instrumented edge), while TSan is guaranteed its race by the loops.
int fixture_ww() {
  static int victim = 0;
  SCIDOCK_RACER_TRACK(victim, "planted.ww.victim");
  SCIDOCK_RACER_WRITE(victim);
  victim = 1;
  scidock::racer::TaskEdge edge = scidock::racer::on_task_spawn();
  std::atomic<bool> entered{false};
  std::thread t([&] {
    scidock::racer::TaskRun run(edge);
    SCIDOCK_RACER_WRITE(victim);
    victim = 2;  // ordered via the fork snapshot: no report here
    entered.store(true);
    for (int i = 0; i < 200000; ++i) {
      SCIDOCK_RACER_WRITE(victim);
      victim = i;  // REAL race with the loop below
    }
  });
  while (!entered.load()) std::this_thread::yield();
  for (int i = 0; i < 200000; ++i) {
    SCIDOCK_RACER_WRITE(victim);
    victim = -i;
  }
  t.join();
  SCIDOCK_RACER_WRITE(victim);  // backstop: unordered without a join edge
  victim = 0;
  g_sink = victim;
  return finish(ReportKind::kWriteWrite);
}

/// RC002: a reader loop racing a writer loop, same construction.
int fixture_rw() {
  static int victim = 0;
  SCIDOCK_RACER_TRACK(victim, "planted.rw.victim");
  SCIDOCK_RACER_WRITE(victim);
  victim = 1;
  scidock::racer::TaskEdge edge = scidock::racer::on_task_spawn();
  std::atomic<bool> entered{false};
  std::thread t([&] {
    scidock::racer::TaskRun run(edge);
    SCIDOCK_RACER_READ(victim);
    g_sink = victim;  // ordered: known accessor
    entered.store(true);
    int local = 0;
    for (int i = 0; i < 200000; ++i) {
      SCIDOCK_RACER_READ(victim);
      local += victim;  // REAL read racing the writes below
    }
    g_sink = local;
  });
  while (!entered.load()) std::this_thread::yield();
  for (int i = 0; i < 200000; ++i) {
    SCIDOCK_RACER_WRITE(victim);
    victim = i;
  }
  t.join();
  SCIDOCK_RACER_WRITE(victim);  // backstop vs the worker's last read
  victim = 0;
  g_sink = victim;
  return finish(ReportKind::kReadWrite);
}

/// RC003: the classic broken publication — payload handed to a waiting
/// thread through a *relaxed* atomic flag, which orders nothing. The
/// racer sees a first cross-thread access with no edge; TSan sees the
/// genuine race (relaxed operations establish no happens-before).
int fixture_publish() {
  static int payload = 0;
  std::atomic<bool> ready{false};
  int seen = 0;
  std::thread t([&] {
    while (!ready.load(std::memory_order_relaxed)) std::this_thread::yield();
    SCIDOCK_RACER_READ(payload);
    seen = payload;  // REAL race: the relaxed flag publishes nothing
  });
  SCIDOCK_RACER_TRACK(payload, "planted.publish.payload");
  SCIDOCK_RACER_WRITE(payload);
  payload = 42;
  ready.store(true, std::memory_order_relaxed);
  t.join();
  g_sink = seen;
  return finish(ReportKind::kUnsyncPublish);
}

int usage() {
  std::fputs("usage: racer_planted <ww|rw|publish>\n", stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) return usage();
  const std::string_view fixture = argv[1];
  if (fixture == "ww") return fixture_ww();
  if (fixture == "rw") return fixture_rw();
  if (fixture == "publish") return fixture_publish();
  return usage();
}
