// scidock-lint — static analyzer for SciCumulus workflow specifications
// and provenance SQL. Validates without executing: the workflow algebra
// checker (rules WF001..WF010) walks the XML spec's dataflow, the SQL
// semantic checker (SQL001..SQL008) resolves queries against the PROV-Wf
// or relation catalog and validates `-- reconciles:` metric annotations.
// The LD rules in the catalog are emitted by the *runtime* lockdep
// analyzer (scidock_cli --lockdep-report), not by this tool. Exit codes:
// 0 = clean, 1 = diagnostics found, 2 = usage / I/O error.
//
//   scidock-lint workflow <spec.xml> [more.xml ...]
//   scidock-lint workflow --builtin       # the builtin SciDock workflow
//   scidock-lint query <file.sql> [--catalog prov|rel]
//   scidock-lint queries                  # every shipped query
//   scidock-lint all                      # builtin workflow + all queries
//   scidock-lint rules                    # print the rule catalog

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/sql_lint.hpp"
#include "lint/wf_lint.hpp"
#include "scidock/analysis.hpp"
#include "scidock/scidock.hpp"
#include "util/strings.hpp"

namespace {

using namespace scidock;

int usage() {
  std::fprintf(stderr,
               "usage: scidock-lint workflow (<spec.xml> ... | --builtin)\n"
               "       scidock-lint query <file.sql> [--catalog prov|rel]\n"
               "       scidock-lint queries\n"
               "       scidock-lint all\n"
               "       scidock-lint rules\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Print a report; returns the number of diagnostics.
std::size_t emit(const lint::Report& report) {
  for (const lint::Diagnostic& d : report.diagnostics()) {
    std::fprintf(stderr, "%s\n", d.format().c_str());
  }
  return report.diagnostics().size();
}

lint::Catalog relation_catalog_from_schema() {
  std::vector<lint::CatalogColumn> columns;
  for (const core::RelationField& f : core::output_relation_schema()) {
    lint::ColType type = lint::ColType::Text;
    if (f.kind == core::FieldKind::Int) type = lint::ColType::Int;
    if (f.kind == core::FieldKind::Real) type = lint::ColType::Real;
    columns.push_back(lint::CatalogColumn{f.name, type});
  }
  return lint::relation_catalog(std::move(columns));
}

std::size_t lint_shipped_queries() {
  const lint::Catalog rel_catalog = relation_catalog_from_schema();
  std::size_t findings = 0;
  for (const core::ShippedQuery& q : core::shipped_queries()) {
    const lint::Catalog& catalog =
        q.catalog == "rel" ? rel_catalog : lint::prov_wf_catalog();
    findings += emit(lint::lint_query(q.sql, catalog, "query:" + q.name));
  }
  return findings;
}

std::size_t lint_builtin_workflow() {
  const wf::WorkflowDef def = core::scidock_workflow_def(core::ScidockOptions{});
  return emit(lint::lint_workflow(def, "workflow:builtin"));
}

int cmd_workflow(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::size_t findings = 0;
  for (const std::string& arg : args) {
    if (arg == "--builtin") {
      findings += lint_builtin_workflow();
      continue;
    }
    std::string text;
    if (!read_file(arg, text)) {
      std::fprintf(stderr, "scidock-lint: cannot read %s\n", arg.c_str());
      return 2;
    }
    findings += emit(lint::lint_workflow_xml(text, arg));
  }
  return findings == 0 ? 0 : 1;
}

int cmd_query(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::string catalog_name = "prov";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--catalog" && i + 1 < args.size()) {
      catalog_name = args[++i];
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.empty() || (catalog_name != "prov" && catalog_name != "rel")) {
    return usage();
  }
  const lint::Catalog rel_catalog = relation_catalog_from_schema();
  const lint::Catalog& catalog =
      catalog_name == "rel" ? rel_catalog : lint::prov_wf_catalog();
  std::size_t findings = 0;
  for (const std::string& file : files) {
    std::string text;
    if (!read_file(file, text)) {
      std::fprintf(stderr, "scidock-lint: cannot read %s\n", file.c_str());
      return 2;
    }
    // One statement per file; surrounding whitespace tolerated.
    findings += emit(lint::lint_query(trim(text), catalog, file));
  }
  return findings == 0 ? 0 : 1;
}

int cmd_rules() {
  for (const lint::RuleInfo& rule : lint::rule_catalog()) {
    std::printf("%-7s %s\n", std::string(rule.id).c_str(),
                std::string(rule.summary).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args.front();
  args.erase(args.begin());

  if (cmd == "workflow") return cmd_workflow(args);
  if (cmd == "query") return cmd_query(args);
  if (cmd == "queries") return lint_shipped_queries() == 0 ? 0 : 1;
  if (cmd == "rules") return cmd_rules();
  if (cmd == "all") {
    std::size_t findings = lint_builtin_workflow();
    findings += lint_shipped_queries();
    if (findings == 0) {
      std::printf("scidock-lint: builtin workflow and %zu shipped queries "
                  "are clean\n",
                  core::shipped_queries().size());
      return 0;
    }
    return 1;
  }
  return usage();
}
