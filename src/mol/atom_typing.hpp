#pragma once

/// \file atom_typing.hpp
/// AutoDock 4 atom types and their pairwise force-field parameters.
///
/// AD4 and Vina both classify atoms into a small vocabulary that selects
/// van-der-Waals radii/well depths and hydrogen-bond behaviour; AutoGrid
/// produces one affinity map per *ligand* atom type present. The values in
/// the parameter table follow the AD4.1 bound-parameters file
/// (AD4.1_bound.dat) for the supported subset.

#include <cstdint>
#include <optional>
#include <string_view>

#include "mol/elements.hpp"

namespace scidock::mol {

/// AutoDock atom-type vocabulary (subset covering protein + common ligand
/// chemistry + the metals found in the Table 2 dataset).
enum class AdType : std::uint8_t {
  H,    ///< non-polar hydrogen (bonded to carbon)
  HD,   ///< polar hydrogen, H-bond donor
  C,    ///< aliphatic carbon
  A,    ///< aromatic carbon
  N,    ///< nitrogen, no H-bond
  NA,   ///< nitrogen H-bond acceptor
  OA,   ///< oxygen H-bond acceptor
  F,    ///< fluorine
  Mg,
  P,
  SA,   ///< sulphur H-bond acceptor
  S,    ///< sulphur, no H-bond
  Cl,
  Ca,
  Mn,
  Fe,
  Zn,
  Br,
  I,
  Hg,   ///< mercury — *unparameterised* in the real AD4 tables; the paper
        ///< reports receptors containing Hg hang the docking programs.
  Count
};

constexpr int kAdTypeCount = static_cast<int>(AdType::Count);

/// Per-type Lennard-Jones and desolvation parameters (AD4.1 units:
/// Rii in Å, epsii in kcal/mol, volume in Å³, solpar in kcal/mol/Å³).
struct AdTypeParams {
  AdType type;
  std::string_view name;     ///< token used in PDBQT / map files
  double rii;                ///< sum of vdW radii for a homonuclear pair
  double epsii;              ///< well depth
  double volume;             ///< atomic solvation volume
  double solpar;             ///< atomic solvation parameter
  bool hbond_donor;
  bool hbond_acceptor;
  bool hydrophobic;          ///< Vina's hydrophobic flag
  bool supported;            ///< false => docking engines must reject (Hg)
};

const AdTypeParams& ad_type_params(AdType t);

/// Parse a PDBQT/GPF atom-type token; unknown tokens return nullopt.
std::optional<AdType> ad_type_from_name(std::string_view name);

std::string_view ad_type_name(AdType t);

/// Assign the AutoDock type for an atom given its element and bonding
/// context (as computed by Molecule::perceive()).
struct AtomContext {
  Element element = Element::Unknown;
  bool aromatic = false;        ///< member of an aromatic ring
  bool bonded_to_hetero = false;///< bonded to N/O/S (polar-H rule)
  int heavy_degree = 0;         ///< number of heavy-atom neighbours
  bool has_hydrogen = false;    ///< at least one bonded H (acceptor N rule)
};

AdType assign_ad_type(const AtomContext& ctx);

/// Vina's coarser "atom kind" used by its scoring function.
struct VinaKind {
  double radius = 1.9;     ///< xs radius, Å
  bool hydrophobic = false;
  bool donor = false;
  bool acceptor = false;
  bool skip = false;       ///< hydrogens contribute no Vina terms
};

VinaKind vina_kind(AdType t);

}  // namespace scidock::mol
