// Tests for the analysis layer (Table 3 aggregation, query builders) and
// the experiment drivers (engine-mode overrides, sim option defaults,
// runtime steering monitor).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "data/table2.hpp"
#include "scidock/analysis.hpp"
#include "scidock/experiment.hpp"
#include "util/strings.hpp"

namespace scidock::core {
namespace {

wf::Relation fake_output() {
  wf::Relation rel{{"pair", "ligand", "feb", "rmsd"}};
  struct RowSpec {
    const char* ligand;
    double feb;
    double rmsd;
  };
  const RowSpec rows[] = {
      {"042", -7.0, 55.0}, {"042", -3.0, 52.0}, {"042", 1.0, 60.0},
      {"0E6", -5.0, 9.0},  {"0E6", 0.5, 10.0},
  };
  int i = 0;
  for (const RowSpec& r : rows) {
    wf::Tuple t;
    t.set("pair", "p" + std::to_string(i++));
    t.set("ligand", r.ligand);
    t.set("feb", strformat("%.4f", r.feb));
    t.set("rmsd", strformat("%.4f", r.rmsd));
    rel.add(std::move(t));
  }
  return rel;
}

TEST(Table3Analysis, AggregatesPerLigand) {
  const auto rows = table3_from_relation(fake_output());
  ASSERT_EQ(rows.size(), 2u);
  const Table3Row& r042 = rows[0];
  EXPECT_EQ(r042.ligand, "042");
  EXPECT_EQ(r042.total_pairs, 3);
  EXPECT_EQ(r042.favorable, 2);
  EXPECT_NEAR(r042.avg_feb_neg, -5.0, 1e-9);         // mean of -7 and -3
  EXPECT_NEAR(r042.avg_rmsd, (55 + 52 + 60) / 3.0, 1e-9);
  const Table3Row& r0e6 = rows[1];
  EXPECT_EQ(r0e6.favorable, 1);
  EXPECT_NEAR(r0e6.avg_feb_neg, -5.0, 1e-9);
}

TEST(Table3Analysis, HandlesNoFavourables) {
  wf::Relation rel{{"pair", "ligand", "feb", "rmsd"}};
  wf::Tuple t;
  t.set("pair", "p");
  t.set("ligand", "X");
  t.set("feb", "2.0");
  t.set("rmsd", "50.0");
  rel.add(std::move(t));
  const auto rows = table3_from_relation(rel);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].favorable, 0);
  EXPECT_DOUBLE_EQ(rows[0].avg_feb_neg, 0.0);
}

TEST(Table3Analysis, RenderListsEveryLigandAndTotals) {
  const auto rows = table3_from_relation(fake_output());
  const std::string text = render_table3(rows, rows);
  EXPECT_NE(text.find("042"), std::string::npos);
  EXPECT_NE(text.find("0E6"), std::string::npos);
  EXPECT_NE(text.find("TOTAL favourable interactions: AD4 3, Vina 3"),
            std::string::npos);
}

TEST(Queries, ContainPaperShapes) {
  const std::string q1 = query1(432);
  EXPECT_NE(q1.find("extract ('epoch' from (t.endtime-t.starttime))"),
            std::string::npos);
  EXPECT_NE(q1.find("w.wkfid = 432"), std::string::npos);
  EXPECT_NE(q1.find("GROUP BY a.tag"), std::string::npos);
  const std::string q2 = query2();
  EXPECT_NE(q2.find("LIKE '%.dlg'"), std::string::npos);
  const std::string q5 = figure5_query(7);
  EXPECT_NE(q5.find("ORDER BY t.endtime"), std::string::npos);
}

TEST(Experiment, ForcedEngineOverridesRouting) {
  ScidockOptions opts;
  opts.engine_mode = EngineMode::ForceVina;
  const auto exp = make_experiment({"2HHN", "1HUC"}, {"042"}, 0, opts);
  for (const wf::Tuple& t : exp.pairs.tuples()) {
    EXPECT_EQ(t.require("engine"), "vina");
  }
}

TEST(Experiment, AdaptiveKeepsMixedRouting) {
  const auto exp = make_experiment(data::table2_receptors(), {"042"}, 0, {});
  int ad4 = 0, vina = 0;
  for (const wf::Tuple& t : exp.pairs.tuples()) {
    (t.require("engine") == "vina" ? vina : ad4)++;
  }
  EXPECT_GT(ad4, 0);
  EXPECT_GT(vina, 0);
}

TEST(Experiment, DefaultSimOptionsCoverEveryStage) {
  const wf::SimExecutorOptions opts = default_sim_options(32);
  int cores = 0;
  for (const auto& t : opts.fleet) cores += t.cores;
  EXPECT_EQ(cores, 32);
  for (const char* tag : {kBabel, kAutogrid, kAutodock4, kAutodockVina}) {
    EXPECT_TRUE(opts.io_bytes.contains(tag)) << tag;
  }
  EXPECT_NEAR(opts.failure.failure_probability, 0.10, 1e-9);
}

TEST(Steering, MonitorSeesEveryActivation) {
  ScidockOptions fast;
  fast.dataset.min_residues = 12;
  fast.dataset.max_residues = 20;
  fast.dataset.hg_fraction = 0.0;
  fast.grid_spacing = 0.9;
  fast.ad4_params.ga_runs = 1;
  fast.ad4_params.ga_num_evals = 200;
  fast.ad4_params.sw_max_its = 10;
  fast.vina_exhaustiveness = 1;
  fast.vina_steps_per_chain = 5;
  auto exp = make_experiment({"2HHN", "1HUC"}, {"042"}, 0, fast);

  std::atomic<int> events{0};
  std::mutex mutex;
  std::map<std::string, int> per_tag;
  wf::NativeExecutorOptions nat;
  nat.threads = 2;
  nat.expdir = fast.expdir;
  nat.monitor = [&](const wf::ActivationEvent& e) {
    ++events;
    std::lock_guard lock(mutex);
    ++per_tag[e.activity_tag];
    EXPECT_FALSE(e.pair.empty());
    EXPECT_GE(e.seconds, 0.0);
  };
  wf::NativeExecutor executor(exp.pipeline, *exp.fs, *exp.prov, nat);
  const wf::NativeReport report = executor.run(exp.pairs, "steered");
  EXPECT_EQ(events.load(),
            report.activations_finished + report.activations_failed);
  EXPECT_EQ(per_tag[kBabel], 2);  // both pairs passed activity 1
}

TEST(Steering, ThrowingMonitorIsIsolated) {
  ScidockOptions fast;
  fast.dataset.min_residues = 12;
  fast.dataset.max_residues = 16;
  fast.dataset.hg_fraction = 0.0;
  fast.grid_spacing = 1.0;
  fast.ad4_params.ga_runs = 1;
  fast.ad4_params.ga_num_evals = 100;
  fast.vina_exhaustiveness = 1;
  fast.vina_steps_per_chain = 3;
  auto exp = make_experiment({"2HHN"}, {"042"}, 0, fast);
  wf::NativeExecutorOptions nat;
  nat.expdir = fast.expdir;
  nat.monitor = [](const wf::ActivationEvent&) {
    throw std::runtime_error("bad monitor");
  };
  wf::NativeExecutor executor(exp.pipeline, *exp.fs, *exp.prov, nat);
  const wf::NativeReport report = executor.run(exp.pairs, "hostile-monitor");
  EXPECT_EQ(report.output.size(), 1u);  // workflow unharmed
}

}  // namespace
}  // namespace scidock::core
