// Micro-kernel benchmarks (google-benchmark): the hot paths underneath
// the workflow — grid generation, energy evaluation, neighbour queries,
// torsion application, parsers and the SQL engine.

#include <benchmark/benchmark.h>

#include "data/generator.hpp"
#include "dock/autogrid.hpp"
#include "mol/charges.hpp"
#include "dock/energy.hpp"
#include "dock/vina.hpp"
#include "mol/io_pdb.hpp"
#include "mol/io_pdbqt.hpp"
#include "mol/prepare.hpp"
#include "scidock/analysis.hpp"
#include "scidock/scidock.hpp"
#include "sql/engine.hpp"
#include "util/rng.hpp"
#include "wf/spec.hpp"
#include "xml/xml.hpp"

namespace {

using namespace scidock;

data::GeneratorOptions bench_opts() {
  data::GeneratorOptions o;
  o.min_residues = 24;
  o.max_residues = 48;
  o.hg_fraction = 0.0;
  return o;
}

struct DockFixture {
  mol::PreparedReceptor receptor;
  mol::PreparedLigand ligand;
  dock::GridBox box;

  static const DockFixture& get() {
    static const DockFixture fixture = [] {
      const auto opts = bench_opts();
      mol::PreparedReceptor rec =
          mol::prepare_receptor(data::make_receptor("2HHN", opts));
      mol::PreparedLigand lig = mol::prepare_ligand(data::make_ligand("0E6"));
      dock::GridBox box =
          dock::GridBox::around(rec.molecule.center(), 10.0, 0.55);
      return DockFixture{std::move(rec), std::move(lig), box};
    }();
    return fixture;
  }
};

void BM_AutogridMapGeneration(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::GridMapCalculator calc(fx.receptor.molecule);
  mol::Molecule lig = fx.ligand.molecule;
  lig.perceive();
  const auto types = lig.ad_types_present();
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.calculate(fx.box, types));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.box.total_points()));
}
BENCHMARK(BM_AutogridMapGeneration)->Unit(benchmark::kMillisecond);

void BM_Ad4GridEnergyEvaluation(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::GridMapCalculator calc(fx.receptor.molecule);
  mol::Molecule lig = fx.ligand.molecule;
  lig.perceive();
  const dock::GridMapSet maps = calc.calculate(fx.box, lig.ad_types_present());
  const dock::Ad4EnergyModel model(maps, fx.ligand);
  Rng rng(1);
  dock::DockPose pose = dock::DockPose::random(
      fx.box, model.reference_center(), fx.ligand.torsions.torsion_count(), rng);
  for (auto _ : state) {
    pose.mutate(0.1, 0.05, 0.1, rng);
    benchmark::DoNotOptimize(model(pose));
  }
}
BENCHMARK(BM_Ad4GridEnergyEvaluation)->Unit(benchmark::kMicrosecond);

void BM_VinaDirectEnergyEvaluation(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::VinaEnergyModel model(fx.receptor, fx.ligand, fx.box);
  Rng rng(1);
  dock::DockPose pose = dock::DockPose::random(
      fx.box, model.reference_center(), fx.ligand.torsions.torsion_count(), rng);
  for (auto _ : state) {
    pose.mutate(0.1, 0.05, 0.1, rng);
    benchmark::DoNotOptimize(model(pose));
  }
}
BENCHMARK(BM_VinaDirectEnergyEvaluation)->Unit(benchmark::kMicrosecond);

void BM_NeighborListQuery(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::NeighborList nl(fx.receptor.molecule, 8.0);
  Rng rng(2);
  double acc = 0.0;
  for (auto _ : state) {
    const mol::Vec3 q{rng.uniform(-10, 10), rng.uniform(-10, 10),
                      rng.uniform(-10, 10)};
    nl.for_each_within(q, [&acc](int, double d2) { acc += d2; });
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NeighborListQuery);

void BM_TorsionTreeApply(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const auto ref = fx.ligand.molecule.coordinates();
  Rng rng(3);
  dock::DockPose pose = dock::DockPose::random(
      fx.box, {0, 0, 0}, fx.ligand.torsions.torsion_count(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.ligand.torsions.apply(ref, pose.rigid, pose.torsions));
  }
}
BENCHMARK(BM_TorsionTreeApply);

void BM_PdbParse(benchmark::State& state) {
  const std::string text = mol::write_pdb(data::make_receptor("1HUC", bench_opts()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mol::read_pdb(text, "1HUC"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_PdbParse)->Unit(benchmark::kMicrosecond);

void BM_PdbqtLigandRoundTrip(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mol::read_pdbqt(fx.ligand.pdbqt));
  }
}
BENCHMARK(BM_PdbqtLigandRoundTrip);

void BM_GasteigerCharges(benchmark::State& state) {
  const mol::Molecule lig = data::make_ligand("042");
  for (auto _ : state) {
    mol::Molecule copy = lig;
    mol::assign_gasteiger_charges(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_GasteigerCharges);

void BM_XmlSpecParse(benchmark::State& state) {
  const std::string xml = wf::save_spec(core::scidock_workflow_def());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wf::load_spec(xml));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_XmlSpecParse);

void BM_SqlQuery1OverProvenance(benchmark::State& state) {
  // A provenance store with ~7k activation rows, as after a 1k-pair run.
  prov::ProvenanceStore store;
  const long long wkfid = store.begin_workflow("SciDock", "", "/x/", 0.0);
  Rng rng(7);
  std::vector<long long> actids;
  for (const char* tag : {"babel", "prepligand", "prepreceptor", "gpfprep",
                          "autogrid", "dockfilter", "autodock4"}) {
    actids.push_back(store.register_activity(wkfid, tag, "./cmd", "MAP"));
  }
  double t = 0.0;
  for (int i = 0; i < 7000; ++i) {
    const long long id = store.begin_activation(
        actids[static_cast<std::size_t>(i) % actids.size()], wkfid, t, 1, "p");
    t += rng.uniform(0.5, 3.0);
    store.end_activation(id, t, prov::kStatusFinished, 0, 1);
  }
  const std::string query = core::query1(wkfid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(query));
  }
}
BENCHMARK(BM_SqlQuery1OverProvenance)->Unit(benchmark::kMillisecond);

void BM_SolisWetsLocalSearch(benchmark::State& state) {
  const DockFixture& fx = DockFixture::get();
  const dock::VinaEnergyModel model(fx.receptor, fx.ligand, fx.box);
  Rng rng(5);
  for (auto _ : state) {
    dock::DockPose pose = dock::DockPose::random(
        fx.box, model.reference_center(), fx.ligand.torsions.torsion_count(),
        rng);
    double energy = 0.0;
    benchmark::DoNotOptimize(dock::solis_wets(pose, model, rng, 30, energy));
  }
}
BENCHMARK(BM_SolisWetsLocalSearch)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
