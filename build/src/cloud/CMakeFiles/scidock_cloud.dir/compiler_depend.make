# Empty compiler generated dependencies file for scidock_cloud.
# This may be replaced when dependencies are built.
