#pragma once

/// \file energy.hpp
/// Energy models binding a (receptor, ligand) pair to a scalar objective
/// over DockPose. AD4 scores through precomputed grid maps; Vina scores
/// by direct pairwise evaluation through a neighbour list.

#include <memory>
#include <vector>

#include "dock/autogrid.hpp"
#include "dock/conformation.hpp"
#include "dock/energy_lut.hpp"
#include "dock/grid.hpp"
#include "dock/scoring.hpp"
#include "mol/prepare.hpp"

namespace scidock::dock {

/// AD4 grid-based objective. Holds references: the maps and ligand must
/// outlive the model.
class Ad4EnergyModel {
 public:
  Ad4EnergyModel(const GridMapSet& maps, const mol::PreparedLigand& ligand,
                 Ad4Weights weights = {});

  /// Receptor-ligand energy of explicit coordinates (map interpolation).
  double intermolecular(const std::vector<mol::Vec3>& coords) const;
  /// Ligand internal energy (pairwise, torsion-dependent).
  double intramolecular(const std::vector<mol::Vec3>& coords) const;

  /// Objective on a pose; also counts one energy evaluation.
  double operator()(const DockPose& pose) const;

  /// Reported FEB: best intermolecular + torsional entropy penalty
  /// (AD4's DeltaG = inter + tors * N_tors; intra cancels in the bound/
  /// unbound difference under the rigid-receptor approximation).
  double feb(double inter) const;

  std::vector<mol::Vec3> coords_for(const DockPose& pose) const;
  long long evaluations() const { return evaluations_; }
  const mol::Vec3& reference_center() const { return reference_center_; }

 private:
  /// Per-atom channel pointers and charge/solvation factors, precomputed
  /// once so the fused inner loop reads three maps through one
  /// TrilinearSampler without per-evaluation type lookups.
  struct AtomChannels {
    const GridMap* affinity;
    double charge;  ///< partial charge (electrostatic map factor)
    double solv;    ///< solpar + kQasp * |q| (desolvation map factor)
  };
  /// Intramolecular pair with everything distance-independent hoisted.
  struct IntraPair {
    int i, j;
    mol::AdType ti, tj;
    double qi, qj;
    double qq;    ///< qi * qj (Coulomb factor)
    double solv;  ///< symmetric solvation cross term
  };

  const GridMapSet& maps_;
  const mol::PreparedLigand& ligand_;
  Ad4Weights weights_;
  std::shared_ptr<const Ad4PairTables> tables_;
  std::vector<mol::Vec3> reference_coords_;
  mol::Vec3 reference_center_{};
  std::vector<AtomChannels> channels_;
  std::vector<IntraPair> intra_pairs_;
  mutable long long evaluations_ = 0;
};

/// Vina direct-evaluation objective.
class VinaEnergyModel {
 public:
  VinaEnergyModel(const mol::PreparedReceptor& receptor,
                  const mol::PreparedLigand& ligand, const GridBox& box,
                  VinaWeights weights = {});

  double intermolecular(const std::vector<mol::Vec3>& coords) const;
  double intramolecular(const std::vector<mol::Vec3>& coords) const;
  double operator()(const DockPose& pose) const;

  /// Vina's reported affinity from the best intermolecular energy.
  double feb(double inter) const;

  std::vector<mol::Vec3> coords_for(const DockPose& pose) const;
  long long evaluations() const { return evaluations_; }
  const mol::Vec3& reference_center() const { return reference_center_; }

 private:
  const mol::PreparedReceptor& receptor_;
  const mol::PreparedLigand& ligand_;
  GridBox box_;
  VinaWeights weights_;
  std::shared_ptr<const VinaPairTables> tables_;
  NeighborList neighbors_;
  std::vector<mol::Vec3> reference_coords_;
  mol::Vec3 reference_center_{};
  /// Skip-type pairs (hydrogens) contribute zero at every distance, so
  /// they are pruned at construction rather than tested per evaluation.
  std::vector<std::pair<int, int>> intra_pairs_;
  mutable long long evaluations_ = 0;
};

}  // namespace scidock::dock
