# Empty dependencies file for bench_fig11_query2.
# This may be replaced when dependencies are built.
