# Empty compiler generated dependencies file for scidock_core.
# This may be replaced when dependencies are built.
