// Table 3: docking-quality statistics for the first 1,000 receptor-ligand
// pairs (238 receptors x ligands 042/074/0D6/0E6) — favourable-interaction
// counts, average FEB and average RMSD for SciDock with AD4 and with Vina.
//
// This bench runs the *real* docking engines natively; the default
// receptor subset keeps the run to a few minutes on one core. Set
// SCIDOCK_T3_RECEPTORS=238 for the paper's full first-1,000-pairs set.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "data/table2.hpp"
#include "scidock/analysis.hpp"
#include "util/strings.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: docking results for the first pairs",
                      "Table 3");

  const int n_receptors =
      std::min(bench::env_int("SCIDOCK_T3_RECEPTORS", 60),
               static_cast<int>(data::table2_receptors().size()));
  const std::vector<std::string> receptors(
      data::table2_receptors().begin(),
      data::table2_receptors().begin() + n_receptors);
  const auto& ligands = data::table3_ligands();
  std::printf("workload: %d receptors x %zu ligands = %zu pairs per engine "
              "(SCIDOCK_T3_RECEPTORS=238 for the paper's full set)\n\n",
              n_receptors, ligands.size(), receptors.size() * ligands.size());

  std::vector<core::Table3Row> ad4_rows, vina_rows;
  for (const auto mode : {core::EngineMode::ForceAd4, core::EngineMode::ForceVina}) {
    core::ScidockOptions options;
    options.engine_mode = mode;
    core::Experiment exp = core::make_experiment(receptors, ligands, 0, options);
    const auto t0 = std::chrono::steady_clock::now();
    const wf::NativeReport report = core::run_native(exp, 1);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("SciDock with %s: %zu pairs docked (%lld lost to Hg), %.0f s\n",
                mode == core::EngineMode::ForceAd4 ? "AD4" : "Vina",
                report.output.size(), report.tuples_lost, wall);
    auto& rows = mode == core::EngineMode::ForceAd4 ? ad4_rows : vina_rows;
    rows = core::table3_from_relation(report.output);
  }

  std::printf("\n%s\n", core::render_table3(ad4_rows, vina_rows).c_str());

  int fav_ad4 = 0, fav_vina = 0, total = 0;
  double rmsd_ad4 = 0, rmsd_vina = 0, feb_ad4 = 0, feb_vina = 0;
  for (const auto& r : ad4_rows) {
    fav_ad4 += r.favorable;
    total += r.total_pairs;
    rmsd_ad4 += r.avg_rmsd / ad4_rows.size();
    feb_ad4 += r.avg_feb_neg / ad4_rows.size();
  }
  for (const auto& r : vina_rows) {
    fav_vina += r.favorable;
    rmsd_vina += r.avg_rmsd / vina_rows.size();
    feb_vina += r.avg_feb_neg / vina_rows.size();
  }
  const double scale = total > 0 ? 1000.0 / total : 0.0;

  std::printf("paper-vs-measured (shape targets, scaled to 1,000 pairs):\n");
  bench::print_compare("favourable FEB(-) with AD4", "287 / 1000",
                       strformat("%.0f / 1000", fav_ad4 * scale));
  bench::print_compare("favourable FEB(-) with Vina", "355 / 1000",
                       strformat("%.0f / 1000", fav_vina * scale));
  bench::print_compare("Vina finds more FEB(-) than AD4", "yes",
                       fav_vina >= fav_ad4 ? "yes" : "NO");
  bench::print_compare("avg FEB(-) AD4", "-4.9 .. -8.4 kcal/mol",
                       strformat("%.1f kcal/mol", feb_ad4));
  bench::print_compare("avg FEB(-) Vina", "-4.5 .. -5.7 kcal/mol",
                       strformat("%.1f kcal/mol", feb_vina));
  bench::print_compare("avg RMSD AD4 (vs reference frame)", "53 .. 57 A",
                       strformat("%.1f A", rmsd_ad4));
  bench::print_compare("avg RMSD Vina (between modes)", "9 .. 10 A",
                       strformat("%.1f A", rmsd_vina));
  bench::print_compare("AD4 RMSD >> Vina RMSD", "yes",
                       rmsd_ad4 > 3.0 * rmsd_vina ? "yes" : "NO");
  std::printf(
      "\nknown deviation (see EXPERIMENTS.md): our AD4 runs the LGA at\n"
      "~1000x fewer energy evaluations than the real tool, so its mean\n"
      "FEB is shallower than Vina's here, while the paper reports the\n"
      "opposite ordering; bench_ablation_scheduler shows FEB deepening\n"
      "with ga_num_evals.\n");
  return 0;
}
