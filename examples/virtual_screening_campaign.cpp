// virtual_screening_campaign — the paper's core use case: screen a
// ligand set against the whole Peptidase_CA receptor panel through the
// full eight-activity SciDock workflow (native execution, real docking),
// then rank the hits, exactly the analysis behind Table 3 and Figure 12.
//
//   $ ./virtual_screening_campaign [N_RECEPTORS] [THREADS]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "data/table2.hpp"
#include "scidock/analysis.hpp"
#include "scidock/experiment.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace scidock;
  const int n_receptors = argc > 1 ? std::atoi(argv[1]) : 24;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 2;

  const std::vector<std::string> receptors(
      data::table2_receptors().begin(),
      data::table2_receptors().begin() +
          std::min<std::size_t>(static_cast<std::size_t>(n_receptors),
                                data::table2_receptors().size()));
  const std::vector<std::string> ligands = data::table3_ligands();

  std::printf("screening %zu receptors x %zu ligands (%zu pairs) on %d "
              "worker threads, adaptive AD4/Vina routing\n\n",
              receptors.size(), ligands.size(),
              receptors.size() * ligands.size(), threads);

  core::ScidockOptions options;  // adaptive: activity 6 picks the engine
  core::Experiment exp = core::make_experiment(receptors, ligands, 0, options);
  const wf::NativeReport report = core::run_native(exp, threads);

  std::printf("done in %.1f s: %lld activations finished, %lld failed "
              "attempts re-executed, %lld pairs lost (Hg receptors)\n\n",
              report.wall_seconds, report.activations_finished,
              report.activations_failed, report.tuples_lost);

  // Rank the favourable interactions (FEB < 0), best first.
  struct Hit {
    std::string pair;
    std::string engine;
    double feb;
  };
  std::vector<Hit> hits;
  for (const wf::Tuple& t : report.output.tuples()) {
    const double feb = t.get_double("feb", 0.0);
    if (feb < 0.0) hits.push_back({t.require("pair"), t.require("engine"), feb});
  }
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.feb < b.feb; });

  std::printf("favourable interactions: %zu of %zu docked pairs\n",
              hits.size(), report.output.size());
  std::printf("top 10 candidate interactions (cf. 2HHN-0E6 in the paper):\n");
  std::printf("  %-12s %-6s %10s\n", "pair", "engine", "FEB");
  for (std::size_t i = 0; i < std::min<std::size_t>(hits.size(), 10); ++i) {
    std::printf("  %-12s %-6s %10.2f\n", hits[i].pair.c_str(),
                hits[i].engine.c_str(), hits[i].feb);
  }

  // Per-ligand Table 3 style summary.
  const auto rows = core::table3_from_relation(report.output);
  std::printf("\nper-ligand summary:\n");
  std::printf("  %-6s %8s %12s %12s\n", "ligand", "FEB(-)", "avg FEB(-)",
              "avg RMSD");
  for (const core::Table3Row& r : rows) {
    std::printf("  %-6s %5d/%-3d %12.2f %12.1f\n", r.ligand.c_str(),
                r.favorable, r.total_pairs, r.avg_feb_neg, r.avg_rmsd);
  }
  return 0;
}
