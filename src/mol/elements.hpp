#pragma once

/// \file elements.hpp
/// Periodic-table data for the elements that occur in protein/ligand
/// structures, including the metals the paper calls out (Hg receptors hang
/// the docking programs; Zn/Fe/Mg/Ca/Mn appear in AutoDock's force field).

#include <cstdint>
#include <optional>
#include <string_view>

namespace scidock::mol {

enum class Element : std::uint8_t {
  Unknown = 0,
  H, C, N, O, F, Na, Mg, P, S, Cl, K, Ca, Mn, Fe, Zn, Br, I, Hg,
};

struct ElementInfo {
  Element element = Element::Unknown;
  std::string_view symbol;      ///< IUPAC symbol, e.g. "Cl"
  int atomic_number = 0;
  double atomic_mass = 0.0;     ///< unified amu
  double covalent_radius = 0.0; ///< Å, for bond perception
  double vdw_radius = 0.0;      ///< Å
  double electronegativity = 0.0; ///< Pauling scale, for Gasteiger charges
  bool is_metal = false;
};

/// Static properties of an element; Unknown yields a carbon-like fallback
/// so parsers never crash on exotic atoms.
const ElementInfo& element_info(Element e);

/// Case-insensitive symbol lookup ("CL" and "Cl" both match chlorine).
std::optional<Element> element_from_symbol(std::string_view symbol);

/// Best-effort element deduction from a PDB atom name (e.g. " CA " is a
/// calcium in a HETATM ion but an alpha-carbon in a residue; the residue
/// flag disambiguates).
Element element_from_pdb_atom_name(std::string_view atom_name,
                                   bool is_standard_residue);

/// Number of elements with data (for parameter-table sweeps in tests).
int element_count();

/// Iterate the full table; index in [0, element_count()).
const ElementInfo& element_info_at(int index);

}  // namespace scidock::mol
