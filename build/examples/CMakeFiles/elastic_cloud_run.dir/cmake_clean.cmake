file(REMOVE_RECURSE
  "CMakeFiles/elastic_cloud_run.dir/elastic_cloud_run.cpp.o"
  "CMakeFiles/elastic_cloud_run.dir/elastic_cloud_run.cpp.o.d"
  "elastic_cloud_run"
  "elastic_cloud_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_cloud_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
