# Empty dependencies file for scidock_wf.
# This may be replaced when dependencies are built.
