#include "prov/wal.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scidock::prov::wal {

namespace {

constexpr std::size_t kFrameHeader = 8;  ///< u32 len + u32 checksum
/// op + 5 x i64 + 2 x f64 + 3 x u32 string lengths.
constexpr std::size_t kFixedPayload = 1 + 5 * 8 + 2 * 8 + 3 * 4;
/// Defensive ceiling: no provenance record carries megabytes of text, so
/// a larger length field can only be corruption.
constexpr std::size_t kMaxPayload = 1u << 24;

std::uint32_t payload_checksum(std::string_view payload) {
  const std::uint64_t h = fnv1a64(payload);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T get(std::string_view data, std::size_t at) {
  T v;
  std::memcpy(&v, data.data() + at, sizeof(T));
  return v;
}

}  // namespace

std::string segment_path(const std::string& dir, std::size_t index,
                         bool sealed) {
  return strformat("%s/seg-%06zu.wal%s", dir.c_str(), index,
                   sealed ? "" : ".open");
}

std::string encode_record(const WalRecord& r) {
  std::string payload;
  payload.reserve(kFixedPayload + r.s0.size() + r.s1.size() + r.s2.size());
  payload.push_back(static_cast<char>(r.op));
  put<std::int64_t>(payload, r.i0);
  put<std::int64_t>(payload, r.i1);
  put<std::int64_t>(payload, r.i2);
  put<std::int64_t>(payload, r.i3);
  put<std::int64_t>(payload, r.i4);
  put<std::uint64_t>(payload, std::bit_cast<std::uint64_t>(r.d0));
  put<std::uint64_t>(payload, std::bit_cast<std::uint64_t>(r.d1));
  for (const std::string* s : {&r.s0, &r.s1, &r.s2}) {
    put<std::uint32_t>(payload, static_cast<std::uint32_t>(s->size()));
    payload.append(*s);
  }

  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  put<std::uint32_t>(frame, payload_checksum(payload));
  frame.append(payload);
  return frame;
}

bool decode_frame(std::string_view data, std::size_t& offset, WalRecord& out) {
  if (offset + kFrameHeader > data.size()) return false;
  const auto len = get<std::uint32_t>(data, offset);
  if (len < kFixedPayload || len > kMaxPayload) return false;
  if (offset + kFrameHeader + len > data.size()) return false;
  const auto checksum = get<std::uint32_t>(data, offset + 4);
  const std::string_view payload = data.substr(offset + kFrameHeader, len);
  if (payload_checksum(payload) != checksum) return false;

  std::size_t at = 0;
  const auto op = static_cast<std::uint8_t>(payload[at]);
  if (op < static_cast<std::uint8_t>(WalOp::BeginWorkflow) ||
      op > static_cast<std::uint8_t>(WalOp::RecordValue)) {
    return false;
  }
  out.op = static_cast<WalOp>(op);
  at += 1;
  out.i0 = get<std::int64_t>(payload, at); at += 8;
  out.i1 = get<std::int64_t>(payload, at); at += 8;
  out.i2 = get<std::int64_t>(payload, at); at += 8;
  out.i3 = get<std::int64_t>(payload, at); at += 8;
  out.i4 = get<std::int64_t>(payload, at); at += 8;
  out.d0 = std::bit_cast<double>(get<std::uint64_t>(payload, at)); at += 8;
  out.d1 = std::bit_cast<double>(get<std::uint64_t>(payload, at)); at += 8;
  for (std::string* s : {&out.s0, &out.s1, &out.s2}) {
    if (at + 4 > payload.size()) return false;
    const auto n = get<std::uint32_t>(payload, at);
    at += 4;
    if (at + n > payload.size()) return false;
    s->assign(payload.data() + at, n);
    at += n;
  }
  if (at != payload.size()) return false;
  offset += kFrameHeader + len;
  return true;
}

ShardReplay replay_shard(vfs::SharedFileSystem& fs, const std::string& dir,
                         bool repair) {
  ShardReplay out;

  // Collect seg-NNNNNN.wal[.open] files under dir, keyed by index. A
  // sealed and an open file with the same index cannot both exist (rename
  // is atomic), but if tampering produced that, the sealed one wins.
  std::vector<SegmentStatus> segments;
  for (const vfs::FileInfo& f : fs.list(dir + "/")) {
    const auto slash = f.path.rfind('/');
    const std::string name = f.path.substr(slash + 1);
    if (!name.starts_with("seg-")) continue;
    bool sealed = false;
    if (name.ends_with(".wal")) {
      sealed = true;
    } else if (!name.ends_with(".wal.open")) {
      continue;
    }
    const std::string digits = name.substr(4, name.find('.') - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    SegmentStatus seg;
    seg.path = f.path;
    seg.index = static_cast<std::size_t>(std::stoull(digits));
    seg.sealed = sealed;
    seg.bytes = f.size;
    segments.push_back(std::move(seg));
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentStatus& a, const SegmentStatus& b) {
              if (a.index != b.index) return a.index < b.index;
              return a.sealed && !b.sealed;
            });
  segments.erase(std::unique(segments.begin(), segments.end(),
                             [](const SegmentStatus& a,
                                const SegmentStatus& b) {
                               return a.index == b.index;
                             }),
                 segments.end());

  bool torn = false;
  for (SegmentStatus& seg : segments) {
    if (torn) {
      // Nothing may legally follow a torn segment; whatever does is
      // unreachable from the commit protocol and gets discarded whole.
      out.truncated_bytes += seg.bytes;
      seg.valid_bytes = 0;
      continue;
    }
    const std::string content = fs.read(seg.path);
    std::size_t offset = 0;
    WalRecord record;
    while (decode_frame(content, offset, record)) {
      out.records.push_back(std::move(record));
      record = WalRecord{};
    }
    seg.valid_bytes = offset;
    if (offset < content.size()) {
      torn = true;
      out.truncated_bytes += content.size() - offset;
    }
  }

  out.next_index = segments.empty() ? 0 : segments.back().index + 1;

  if (repair) {
    for (const SegmentStatus& seg : segments) {
      if (seg.valid_bytes == seg.bytes) {
        // Intact. Seal a leftover .open segment so the directory reads
        // the same on the next open (recovery never appends to it).
        if (!seg.sealed && seg.bytes > 0) {
          fs.rename(seg.path, segment_path(dir, seg.index, true));
        }
        continue;
      }
      if (seg.valid_bytes == 0) {
        fs.remove(seg.path);
        continue;
      }
      const std::string content = fs.read(seg.path);
      fs.write(segment_path(dir, seg.index, true),
               content.substr(0, seg.valid_bytes), 0.0, "prov-wal-repair");
      if (!seg.sealed) fs.remove(seg.path);
    }
  }

  out.segments = std::move(segments);
  return out;
}

SegmentWriter::SegmentWriter(vfs::SharedFileSystem& fs, std::string dir,
                             std::size_t segment_max_bytes,
                             std::size_t next_index)
    : fs_(fs),
      dir_(std::move(dir)),
      segment_max_bytes_(std::max<std::size_t>(segment_max_bytes, 1)),
      index_(next_index),
      active_path_(segment_path(dir_, index_, false)) {}

void SegmentWriter::seal_active(double now) {
  if (active_bytes_ == 0) return;  // nothing written: no file to seal
  fs_.sync(active_path_);
  fs_.rename(active_path_, segment_path(dir_, index_, true));
  ++index_;
  ++rotations_;
  active_path_ = segment_path(dir_, index_, false);
  active_bytes_ = 0;
  (void)now;
}

void SegmentWriter::append(std::string_view frames, double now) {
  if (frames.empty()) return;
  if (active_bytes_ > 0 && active_bytes_ + frames.size() > segment_max_bytes_) {
    seal_active(now);
  }
  try {
    fs_.append(active_path_, frames, now, "prov-wal");
  } catch (const vfs::TornWriteError& e) {
    active_bytes_ += e.applied();
    throw;
  }
  active_bytes_ += frames.size();
}

void SegmentWriter::sync() {
  if (active_bytes_ > 0) fs_.sync(active_path_);
}

}  // namespace scidock::prov::wal
