file(REMOVE_RECURSE
  "libscidock_mol.a"
)
