#pragma once

/// \file workflow.hpp
/// Workflow definition: the static description SciCumulus reads from its
/// XML specification (paper Figure 2) — activities, their algebraic
/// operators, template directories and relation wiring.

#include <string>
#include <string_view>
#include <vector>

namespace scidock::wf {

/// SciCumulus algebraic operators (Ogasawara et al. 2011).
enum class AlgebraicOp {
  Map,       ///< 1 tuple in -> 1 tuple out
  SplitMap,  ///< 1 tuple in -> N tuples out
  Filter,    ///< 1 tuple in -> 0 or 1 tuples out
  Reduce,    ///< N tuples in -> 1 tuple out
  SRQuery,   ///< relational query over the input relation
};

std::string_view to_string(AlgebraicOp op);
AlgebraicOp algebraic_op_from(std::string_view name);

struct RelationDef {
  std::string name;
  std::string filename;
  bool is_input = true;
  /// Declared schema (ordered field names), empty when the spec omits the
  /// optional `fields` attribute. scidock-lint uses it to check that a
  /// consumer's declared input schema is satisfied by its producer's
  /// output schema (rule WF005) and that activation-command %TAG%
  /// placeholders resolve (rule WF009).
  std::vector<std::string> fields;
};

struct ActivityDef {
  std::string tag;
  AlgebraicOp op = AlgebraicOp::Map;
  std::string template_dir;
  std::string activation_command;  ///< template text with %TAGS%
  std::vector<RelationDef> relations;

  const RelationDef* input_relation() const;
  const RelationDef* output_relation() const;
};

struct DatabaseInfo {
  std::string name = "scicumulus";
  std::string server = "localhost";
  int port = 5432;
};

struct WorkflowDef {
  std::string tag;
  std::string description;
  std::string exec_tag;
  std::string expdir;
  DatabaseInfo database;
  std::vector<ActivityDef> activities;

  const ActivityDef& activity(std::string_view tag) const;  ///< throws
  bool has_activity(std::string_view tag) const;

  /// Index of the activity that produces `relation_name`, or -1. Used to
  /// derive the dataflow DAG from relation wiring.
  int producer_of(std::string_view relation_name) const;

  /// Activity indices in a valid execution order (topological by relation
  /// dependencies; throws InvalidStateError on a cycle).
  std::vector<int> topological_order() const;
};

}  // namespace scidock::wf
