#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  sum_ += other.sum_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  SCIDOCK_ASSERT(hi > lo);
  SCIDOCK_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  SCIDOCK_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t width =
        peak == 0 ? 0 : counts_[b] * max_bar_width / peak;
    out += strformat("[%10.1f, %10.1f) %8zu ", bin_lo(b), bin_hi(b),
                     counts_[b]);
    out.append(width, '#');
    out += '\n';
  }
  return out;
}

double percentile(std::vector<double> values, double p) {
  SCIDOCK_ASSERT(!values.empty());
  SCIDOCK_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace scidock
