SELECT w.wkfid, w.tagg FROM hworkflow w
