#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the per-figure/table benchmark binaries: the
/// standard 10,000-pair experiment, the core-count sweep behind Figures
/// 7-9, and paper-vs-measured report formatting.

#include <string>
#include <vector>

#include "scidock/experiment.hpp"
#include "wf/sim_executor.hpp"

namespace scidock::bench {

/// The paper's core counts (2..128 on mixed m3 instances).
const std::vector<int>& paper_core_counts();

struct SweepPoint {
  int cores = 0;
  double tet_s = 0.0;
  double speedup_vs_serial = 0.0;  ///< TET(1-core-equivalent) / TET
  double efficiency = 0.0;         ///< speedup / cores
  double improvement_pct = 0.0;    ///< 100 * (1 - TET / TET(serial))
  long long failures = 0;
  long long hangs = 0;
  double sched_overhead_s = 0.0;
};

struct Sweep {
  std::string engine;              ///< "AD4" or "Vina"
  double serial_tet_s = 0.0;       ///< 1-core-equivalent baseline
  std::vector<SweepPoint> points;
};

/// Run the Figure 7-9 sweep: the full 10,000-pair workload replayed on
/// the cloud simulator at each core count. `pairs` can be reduced for
/// quick runs. The serial baseline is 2 x TET(2 cores), the paper's
/// effective normalisation.
Sweep run_scaling_sweep(core::EngineMode mode, std::size_t pairs,
                        const std::vector<int>& cores, std::uint64_t seed = 42);

/// Read an integer configuration knob from the environment (for scaling
/// bench workloads up/down), with a default.
int env_int(const char* name, int fallback);

/// One field of a BENCH_*.json record. `value` is emitted verbatim, so it
/// must already be valid JSON (a number, a quoted string, an array, ...).
struct JsonField {
  std::string key;
  std::string value;
};

/// Emit the machine-readable perf-trajectory record for a bench run:
/// writes `BENCH_<name>.json` in the current directory with a "bench"
/// field plus `fields` in order, and returns the path written (empty on
/// I/O failure). CI diffs these files across commits to track the perf
/// trajectory.
std::string write_bench_json(const std::string& name,
                             const std::vector<JsonField>& fields);

/// Section header in the bench output.
void print_header(const std::string& title, const std::string& paper_ref);

/// One "paper vs measured" line.
void print_compare(const std::string& what, const std::string& paper,
                   const std::string& measured);

}  // namespace scidock::bench
