#include "sql/engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>

#include "sql/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::sql {

namespace {

// ---------------------------------------------------------------------
// Evaluation scope: one (possibly partial) joined row.
// ---------------------------------------------------------------------

struct Binding {
  std::string alias;
  const Table* table = nullptr;
};

struct Scope {
  const std::vector<Binding>* bindings = nullptr;
  /// One row pointer per binding; nullptr = not yet bound (join pushdown).
  const std::vector<const Row*>* rows = nullptr;
};

struct ColumnRefResolved {
  int table = -1;
  int column = -1;
};

ColumnRefResolved resolve_column(const std::vector<Binding>& bindings,
                                 const std::string& qualifier,
                                 const std::string& column) {
  ColumnRefResolved out;
  for (std::size_t t = 0; t < bindings.size(); ++t) {
    if (!qualifier.empty() && !iequals(bindings[t].alias, qualifier)) continue;
    const int ci = bindings[t].table->column_index(column);
    if (ci >= 0) {
      if (out.table >= 0) {
        throw InvalidStateError("ambiguous column reference '" + column + "'");
      }
      out.table = static_cast<int>(t);
      out.column = ci;
    }
  }
  if (out.table < 0) {
    throw NotFoundError("column", (qualifier.empty() ? "" : qualifier + ".") + column);
  }
  return out;
}

bool truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int()) return v.as_int() != 0;
  if (v.is_double()) return v.as_double() != 0.0;
  return !v.as_string().empty();
}

bool like_match(std::string_view text, std::string_view pattern) {
  // Classic two-pointer wildcard matching; '%' = any run, '_' = any char.
  std::size_t ti = 0, pi = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  while (ti < text.size()) {
    if (pi < pattern.size() && (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string_view::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

Value eval(const Expr& e, const Scope& scope);

Value eval_binary(const Expr& e, const Scope& scope) {
  // AND/OR get short-circuit + SQL null handling first.
  if (e.binary_op == BinaryOp::And) {
    const Value l = eval(*e.lhs, scope);
    if (!truthy(l)) return Value(static_cast<std::int64_t>(0));
    return Value(static_cast<std::int64_t>(truthy(eval(*e.rhs, scope)) ? 1 : 0));
  }
  if (e.binary_op == BinaryOp::Or) {
    const Value l = eval(*e.lhs, scope);
    if (truthy(l)) return Value(static_cast<std::int64_t>(1));
    return Value(static_cast<std::int64_t>(truthy(eval(*e.rhs, scope)) ? 1 : 0));
  }

  const Value l = eval(*e.lhs, scope);
  const Value r = eval(*e.rhs, scope);

  switch (e.binary_op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod: {
      if (l.is_null() || r.is_null()) return Value();
      if (l.is_int() && r.is_int() && e.binary_op != BinaryOp::Div) {
        const std::int64_t a = l.as_int();
        const std::int64_t b = r.as_int();
        switch (e.binary_op) {
          case BinaryOp::Add: return Value(a + b);
          case BinaryOp::Sub: return Value(a - b);
          case BinaryOp::Mul: return Value(a * b);
          case BinaryOp::Mod:
            SCIDOCK_REQUIRE(b != 0, "modulo by zero");
            return Value(a % b);
          default: break;
        }
      }
      const double a = l.as_double();
      const double b = r.as_double();
      switch (e.binary_op) {
        case BinaryOp::Add: return Value(a + b);
        case BinaryOp::Sub: return Value(a - b);
        case BinaryOp::Mul: return Value(a * b);
        case BinaryOp::Div:
          SCIDOCK_REQUIRE(b != 0.0, "division by zero");
          return Value(a / b);
        case BinaryOp::Mod: return Value(std::fmod(a, b));
        default: break;
      }
      return Value();
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      if (l.is_null() || r.is_null()) return Value(static_cast<std::int64_t>(0));
      const auto c = l.compare(r);
      bool result = false;
      switch (e.binary_op) {
        case BinaryOp::Eq: result = c == std::strong_ordering::equal; break;
        case BinaryOp::Ne: result = c != std::strong_ordering::equal; break;
        case BinaryOp::Lt: result = c == std::strong_ordering::less; break;
        case BinaryOp::Le: result = c != std::strong_ordering::greater; break;
        case BinaryOp::Gt: result = c == std::strong_ordering::greater; break;
        case BinaryOp::Ge: result = c != std::strong_ordering::less; break;
        default: break;
      }
      return Value(static_cast<std::int64_t>(result ? 1 : 0));
    }
    case BinaryOp::Like: {
      if (l.is_null() || r.is_null()) return Value(static_cast<std::int64_t>(0));
      return Value(static_cast<std::int64_t>(
          like_match(l.to_string(), r.as_string()) ? 1 : 0));
    }
    case BinaryOp::Concat:
      if (l.is_null() || r.is_null()) return Value();
      return Value(l.to_string() + r.to_string());
    default:
      return Value();
  }
}

Value eval_call(const Expr& e, const Scope& scope) {
  const std::string& fn = e.call_name;
  auto arg = [&](std::size_t i) { return eval(*e.args[i], scope); };
  auto require_args = [&](std::size_t lo, std::size_t hi) {
    SCIDOCK_REQUIRE(e.args.size() >= lo && e.args.size() <= hi,
                    fn + "() takes " + std::to_string(lo) +
                        (lo == hi ? "" : ".." + std::to_string(hi)) +
                        " argument(s), got " + std::to_string(e.args.size()));
  };

  if (fn == "extract") {
    SCIDOCK_REQUIRE(e.args.size() == 2, "extract() needs a field and a value");
    const Value field = arg(0);
    const Value v = arg(1);
    if (v.is_null()) return Value();
    const std::string f = to_lower(field.to_string());
    // Timestamps are stored as seconds since the experiment epoch, so
    // EXTRACT('epoch' ...) is numeric identity; other fields derive from it.
    const double secs = v.as_double();
    if (f == "epoch") return Value(secs);
    if (f == "minute") return Value(std::floor(std::fmod(secs / 60.0, 60.0)));
    if (f == "hour") return Value(std::floor(std::fmod(secs / 3600.0, 24.0)));
    if (f == "day") return Value(std::floor(secs / 86400.0));
    throw InvalidStateError("unsupported EXTRACT field '" + f + "'");
  }
  if (fn == "abs") {
    require_args(1, 1);
    const Value v = arg(0);
    if (v.is_null()) return Value();
    return v.is_int() ? Value(std::abs(v.as_int())) : Value(std::abs(v.as_double()));
  }
  if (fn == "round") {
    require_args(1, 2);
    const Value v = arg(0);
    if (v.is_null()) return Value();
    if (e.args.size() >= 2) {
      const double scale = std::pow(10.0, arg(1).as_double());
      return Value(std::round(v.as_double() * scale) / scale);
    }
    return Value(std::round(v.as_double()));
  }
  if (fn == "floor" || fn == "ceil" || fn == "ceiling") {
    require_args(1, 1);
    const Value v = arg(0);
    if (v.is_null()) return Value();
    return Value(fn == "floor" ? std::floor(v.as_double())
                               : std::ceil(v.as_double()));
  }
  if (fn == "length") {
    require_args(1, 1);
    const Value v = arg(0);
    if (v.is_null()) return Value();
    return Value(static_cast<std::int64_t>(v.to_string().size()));
  }
  if (fn == "upper") {
    require_args(1, 1);
    const Value v = arg(0);
    return v.is_null() ? Value() : Value(to_upper(v.to_string()));
  }
  if (fn == "lower") {
    require_args(1, 1);
    const Value v = arg(0);
    return v.is_null() ? Value() : Value(to_lower(v.to_string()));
  }
  if (fn == "coalesce") {
    require_args(1, static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      Value v = arg(i);
      if (!v.is_null()) return v;
    }
    return Value();
  }
  if (fn == "substr" || fn == "substring") {
    require_args(2, 3);
    const Value v = arg(0);
    if (v.is_null()) return Value();
    const std::string s = v.to_string();
    const auto start = static_cast<std::size_t>(std::max<std::int64_t>(arg(1).as_int() - 1, 0));
    std::size_t len = std::string::npos;
    if (e.args.size() >= 3) len = static_cast<std::size_t>(std::max<std::int64_t>(arg(2).as_int(), 0));
    if (start >= s.size()) return Value(std::string());
    return Value(s.substr(start, len));
  }
  if (fn == "min" || fn == "max" || fn == "sum" || fn == "avg" || fn == "count") {
    throw InvalidStateError("aggregate " + fn + "() used outside GROUP BY context");
  }
  throw NotFoundError("SQL function", fn);
}

Value eval(const Expr& e, const Scope& scope) {
  switch (e.kind) {
    case Expr::Kind::Literal:
      return e.literal;
    case Expr::Kind::Column: {
      const auto ref = resolve_column(*scope.bindings, e.qualifier, e.column);
      const Row* row = (*scope.rows)[static_cast<std::size_t>(ref.table)];
      SCIDOCK_REQUIRE(row != nullptr, "column '" + e.column + "' referenced before its table is bound");
      return (*row)[static_cast<std::size_t>(ref.column)];
    }
    case Expr::Kind::Binary:
      return eval_binary(e, scope);
    case Expr::Kind::Unary: {
      const Value v = eval(*e.lhs, scope);
      switch (e.unary_op) {
        case UnaryOp::Neg:
          if (v.is_null()) return Value();
          return v.is_int() ? Value(-v.as_int()) : Value(-v.as_double());
        case UnaryOp::Not:
          return Value(static_cast<std::int64_t>(truthy(v) ? 0 : 1));
        case UnaryOp::IsNull:
          return Value(static_cast<std::int64_t>(v.is_null() ? 1 : 0));
        case UnaryOp::IsNotNull:
          return Value(static_cast<std::int64_t>(v.is_null() ? 0 : 1));
      }
      return Value();
    }
    case Expr::Kind::Call:
      return eval_call(e, scope);
    case Expr::Kind::In: {
      const Value probe = eval(*e.lhs, scope);
      if (probe.is_null()) return Value(static_cast<std::int64_t>(0));
      bool found = false;
      for (const ExprPtr& item : e.args) {
        const Value v = eval(*item, scope);
        if (!v.is_null() && probe.compare(v) == std::strong_ordering::equal) {
          found = true;
          break;
        }
      }
      return Value(static_cast<std::int64_t>(found != e.negated ? 1 : 0));
    }
    case Expr::Kind::Between: {
      const Value v = eval(*e.lhs, scope);
      const Value lo = eval(*e.args[0], scope);
      const Value hi = eval(*e.args[1], scope);
      if (v.is_null() || lo.is_null() || hi.is_null()) {
        return Value(static_cast<std::int64_t>(0));
      }
      const bool inside = v.compare(lo) != std::strong_ordering::less &&
                          v.compare(hi) != std::strong_ordering::greater;
      return Value(static_cast<std::int64_t>(inside != e.negated ? 1 : 0));
    }
    case Expr::Kind::Star:
      throw InvalidStateError("'*' is only valid in SELECT lists and count(*)");
  }
  return Value();
}

/// Table aliases an expression references (for join push-down ordering).
void referenced_tables(const Expr& e, const std::vector<Binding>& bindings,
                       std::vector<bool>& out) {
  if (e.kind == Expr::Kind::Column) {
    const auto ref = resolve_column(bindings, e.qualifier, e.column);
    out[static_cast<std::size_t>(ref.table)] = true;
  }
  if (e.lhs) referenced_tables(*e.lhs, bindings, out);
  if (e.rhs) referenced_tables(*e.rhs, bindings, out);
  for (const ExprPtr& a : e.args) referenced_tables(*a, bindings, out);
}

/// Split a WHERE tree into AND-ed conjuncts.
void collect_conjuncts(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == Expr::Kind::Binary && e.binary_op == BinaryOp::And) {
    collect_conjuncts(*e.lhs, out);
    collect_conjuncts(*e.rhs, out);
  } else {
    out.push_back(&e);
  }
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

struct Aggregator {
  std::string fn;
  bool star = false;
  std::size_t count = 0;
  double sum = 0.0;
  Value min_v;
  Value max_v;

  void add(const Value& v) {
    if (!star && v.is_null()) return;
    ++count;
    if (fn == "sum" || fn == "avg") sum += star ? 0.0 : v.as_double();
    if (fn == "min" && (min_v.is_null() || v.compare(min_v) == std::strong_ordering::less)) min_v = v;
    if (fn == "max" && (max_v.is_null() || v.compare(max_v) == std::strong_ordering::greater)) max_v = v;
  }

  Value result() const {
    if (fn == "count") return Value(static_cast<std::int64_t>(count));
    if (count == 0) return Value();
    if (fn == "sum") return Value(sum);
    if (fn == "avg") return Value(sum / static_cast<double>(count));
    if (fn == "min") return min_v;
    if (fn == "max") return max_v;
    throw NotFoundError("aggregate", fn);
  }
};

/// Evaluate an expression that may contain aggregate calls over a group of
/// rows. Aggregates are computed over the group; everything else is
/// evaluated on the group's first row (the paper's queries always group by
/// those columns, matching PostgreSQL semantics for valid queries).
Value eval_grouped(const Expr& e, const std::vector<Binding>& bindings,
                   const std::vector<std::vector<const Row*>>& group) {
  SCIDOCK_ASSERT(!group.empty());
  if (e.kind == Expr::Kind::Call &&
      (e.call_name == "min" || e.call_name == "max" || e.call_name == "sum" ||
       e.call_name == "avg" || e.call_name == "count")) {
    Aggregator agg;
    agg.fn = e.call_name;
    agg.star = e.star_arg;
    for (const auto& row_ptrs : group) {
      Scope scope{&bindings, &row_ptrs};
      if (agg.star) {
        agg.add(Value(static_cast<std::int64_t>(1)));
      } else {
        SCIDOCK_REQUIRE(e.args.size() == 1, "aggregate takes one argument");
        agg.add(eval(*e.args[0], scope));
      }
    }
    return agg.result();
  }
  if (e.kind == Expr::Kind::Binary || e.kind == Expr::Kind::Unary ||
      e.kind == Expr::Kind::Call) {
    if (contains_aggregate(e)) {
      // Rebuild with aggregate sub-results replaced by literals.
      Expr shallow = {};
      shallow.kind = e.kind;
      shallow.binary_op = e.binary_op;
      shallow.unary_op = e.unary_op;
      shallow.call_name = e.call_name;
      shallow.star_arg = e.star_arg;
      if (e.lhs) shallow.lhs = Expr::make_literal(eval_grouped(*e.lhs, bindings, group));
      if (e.rhs) shallow.rhs = Expr::make_literal(eval_grouped(*e.rhs, bindings, group));
      for (const ExprPtr& a : e.args) {
        shallow.args.push_back(Expr::make_literal(eval_grouped(*a, bindings, group)));
      }
      Scope scope{&bindings, &group.front()};
      return eval(shallow, scope);
    }
  }
  Scope scope{&bindings, &group.front()};
  return eval(e, scope);
}

std::string derive_column_name(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == Expr::Kind::Column) return item.expr->column;
  if (item.expr->kind == Expr::Kind::Call) return item.expr->call_name;
  return item.expr->to_string();
}

}  // namespace

std::string derive_select_column_name(const SelectItem& item) {
  return derive_column_name(item);
}

std::string ResultSet::to_text() const {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      line.push_back(row[c].to_string());
      if (c < widths.size()) widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& line) {
    for (std::size_t c = 0; c < line.size(); ++c) {
      out += strformat(" %-*s ", static_cast<int>(widths[c]), line[c].c_str());
      if (c + 1 < line.size()) out += '|';
    }
    out += '\n';
  };
  emit_row(columns);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    out.append(widths[c] + 2, '-');
    if (c + 1 < columns.size()) out += '+';
  }
  out += '\n';
  for (const auto& line : cells) emit_row(line);
  out += strformat("(%zu rows)\n", rows.size());
  return out;
}

ResultSet Engine::execute(std::string_view sql) {
  const Statement stmt = parse_statement(sql);
  switch (stmt.kind) {
    case Statement::Kind::Select:
      return execute_select(stmt.select);
    case Statement::Kind::CreateTable: {
      db_.create_table(stmt.create.table, stmt.create.columns);
      return {};
    }
    case Statement::Kind::Insert: {
      Table& table = db_.table(stmt.insert.table);
      const std::vector<Binding> no_bindings;
      const std::vector<const Row*> no_rows;
      Scope scope{&no_bindings, &no_rows};
      for (const auto& row_exprs : stmt.insert.rows) {
        Row row(table.columns().size());
        if (stmt.insert.columns.empty()) {
          SCIDOCK_REQUIRE(row_exprs.size() == table.columns().size(),
                          "INSERT width mismatch");
          for (std::size_t i = 0; i < row_exprs.size(); ++i) {
            row[i] = eval(*row_exprs[i], scope);
          }
        } else {
          SCIDOCK_REQUIRE(row_exprs.size() == stmt.insert.columns.size(),
                          "INSERT width mismatch");
          for (std::size_t i = 0; i < row_exprs.size(); ++i) {
            const int ci = table.column_index(stmt.insert.columns[i]);
            SCIDOCK_REQUIRE(ci >= 0, "unknown column " + stmt.insert.columns[i]);
            row[static_cast<std::size_t>(ci)] = eval(*row_exprs[i], scope);
          }
        }
        table.insert(std::move(row));
      }
      return {};
    }
    case Statement::Kind::Update: {
      Table& table = db_.table(stmt.update.table);
      std::vector<Binding> bindings{{table.name(), &table}};
      // Resolve assignment targets once.
      std::vector<std::size_t> targets;
      for (const auto& [column, expr] : stmt.update.assignments) {
        const int ci = table.column_index(column);
        SCIDOCK_REQUIRE(ci >= 0, "unknown column " + column);
        targets.push_back(static_cast<std::size_t>(ci));
        (void)expr;
      }
      std::size_t updated = 0;
      for (Row& row : table.mutable_rows()) {
        std::vector<const Row*> rows{&row};
        Scope scope{&bindings, &rows};
        if (stmt.update.where && !truthy(eval(*stmt.update.where, scope))) {
          continue;
        }
        // Evaluate every assignment against the *pre-update* row, then
        // apply (standard SQL semantics for multi-assignment UPDATE).
        std::vector<Value> new_values;
        new_values.reserve(targets.size());
        for (const auto& [column, expr] : stmt.update.assignments) {
          new_values.push_back(eval(*expr, scope));
        }
        for (std::size_t k = 0; k < targets.size(); ++k) {
          row[targets[k]] = std::move(new_values[k]);
        }
        ++updated;
      }
      ResultSet rs;
      rs.columns = {"updated"};
      rs.rows.push_back({Value(static_cast<std::int64_t>(updated))});
      return rs;
    }
    case Statement::Kind::Delete: {
      Table& table = db_.table(stmt.del.table);
      std::vector<Binding> bindings{{table.name(), &table}};
      std::size_t removed = 0;
      if (!stmt.del.where) {
        removed = table.erase_if([](const Row&) { return true; });
      } else {
        removed = table.erase_if([&](const Row& row) {
          std::vector<const Row*> rows{&row};
          Scope scope{&bindings, &rows};
          return truthy(eval(*stmt.del.where, scope));
        });
      }
      ResultSet rs;
      rs.columns = {"deleted"};
      rs.rows.push_back({Value(static_cast<std::int64_t>(removed))});
      return rs;
    }
  }
  return {};
}

ResultSet Engine::execute_select(const SelectStmt& stmt) {
  SCIDOCK_REQUIRE(!stmt.from.empty(), "SELECT requires a FROM clause");

  // --- bind tables ---
  std::vector<Binding> bindings;
  bindings.reserve(stmt.from.size());
  for (const TableRef& ref : stmt.from) {
    bindings.push_back(Binding{ref.alias, &db_.table(ref.table)});
  }
  const std::size_t n_tables = bindings.size();

  // --- classify WHERE conjuncts by the last table they need ---
  std::vector<const Expr*> conjuncts;
  if (stmt.where) collect_conjuncts(*stmt.where, conjuncts);
  std::vector<std::vector<const Expr*>> conjuncts_at(n_tables);
  for (const Expr* c : conjuncts) {
    std::vector<bool> refs(n_tables, false);
    referenced_tables(*c, bindings, refs);
    std::size_t last = 0;
    for (std::size_t t = 0; t < n_tables; ++t) {
      if (refs[t]) last = t;
    }
    conjuncts_at[last].push_back(c);
  }

  // --- hash-join upgrade for equality conjuncts ---
  // A depth whose pushed-down conjuncts include `inner.col = outer.col`
  // (both plain column refs, the other side bound at an earlier depth)
  // gets a hash table over the inner rows, turning the ubiquitous
  // provenance pattern "FROM hactivation t, hactivity a WHERE
  // t.actid = a.actid" from O(n*m) probes into O(n+m). The buckets only
  // narrow the candidate rows — every conjunct is still evaluated per
  // candidate (guarding against key collisions, e.g. int64s beyond
  // double precision) and bucket order preserves table row order, so
  // results match the pure nested loop row for row.
  struct EquiKey {
    int local_col = -1;  ///< column on this depth's (inner) table
    int outer_table = -1;
    int outer_col = -1;
  };
  struct HashStage {
    std::vector<EquiKey> keys;
    std::unordered_map<std::string, std::vector<const Row*>> buckets;
    bool active = false;
  };

  // Key encoding mirrors Value::compare under Eq: NULL matches nothing
  // (caller skips the row), numerics compare through as_double (so int 2
  // and double 2.0 share a key, with -0.0 collapsed onto 0.0), strings
  // compare bytewise and never equal numerics (distinct prefixes).
  const auto append_key_part = [](const Value& v, std::string& out) {
    if (v.is_null()) return false;
    if (v.is_string()) {
      out += "s:";
      out += v.as_string();
    } else {
      double d = v.as_double();
      if (d == 0.0) d = 0.0;
      out += strformat("n:%.17g", d);
    }
    out += '\x1f';  // separator so multi-key parts cannot run together
    return true;
  };

  std::vector<HashStage> hash_stages(n_tables);
  for (std::size_t t = 1; t < n_tables; ++t) {
    HashStage& hs = hash_stages[t];
    for (const Expr* c : conjuncts_at[t]) {
      if (c->kind != Expr::Kind::Binary || c->binary_op != BinaryOp::Eq) continue;
      const Expr* l = c->lhs.get();
      const Expr* r = c->rhs.get();
      if (l->kind != Expr::Kind::Column || r->kind != Expr::Kind::Column) continue;
      ColumnRefResolved lr;
      ColumnRefResolved rr;
      try {
        lr = resolve_column(bindings, l->qualifier, l->column);
        rr = resolve_column(bindings, r->qualifier, r->column);
      } catch (...) {
        continue;  // fall back; eval reports the bad reference naturally
      }
      const int ti = static_cast<int>(t);
      if (lr.table == ti && rr.table < ti) {
        hs.keys.push_back({lr.column, rr.table, rr.column});
      } else if (rr.table == ti && lr.table < ti) {
        hs.keys.push_back({rr.column, lr.table, lr.column});
      }
    }
    if (hs.keys.empty()) continue;
    hs.active = true;
    for (const Row& row : bindings[t].table->rows()) {
      std::string key;
      bool keyable = true;
      for (const EquiKey& k : hs.keys) {
        if (!append_key_part(row[static_cast<std::size_t>(k.local_col)], key)) {
          keyable = false;  // NULL key: Eq can never pass for this row
          break;
        }
      }
      if (keyable) hs.buckets[std::move(key)].push_back(&row);
    }
  }

  // --- nested-loop join with push-down (hash probe where upgraded) ---
  std::vector<std::vector<const Row*>> joined;
  joined.reserve(bindings[0].table->rows().size());
  std::vector<const Row*> current(n_tables, nullptr);
  auto descend = [&](auto&& self, std::size_t depth) -> void {
    if (depth == n_tables) {
      joined.push_back(current);
      return;
    }
    const auto try_row = [&](const Row& row) {
      current[depth] = &row;
      Scope scope{&bindings, &current};
      for (const Expr* c : conjuncts_at[depth]) {
        if (!truthy(eval(*c, scope))) return;
      }
      self(self, depth + 1);
    };
    const HashStage& hs = hash_stages[depth];
    if (hs.active) {
      std::string key;
      bool keyable = true;
      for (const EquiKey& k : hs.keys) {
        const Row& outer = *current[static_cast<std::size_t>(k.outer_table)];
        if (!append_key_part(outer[static_cast<std::size_t>(k.outer_col)], key)) {
          keyable = false;
          break;
        }
      }
      if (keyable) {
        const auto it = hs.buckets.find(key);
        if (it != hs.buckets.end()) {
          for (const Row* row : it->second) try_row(*row);
        }
      }
    } else {
      for (const Row& row : bindings[depth].table->rows()) try_row(row);
    }
    current[depth] = nullptr;
  };
  descend(descend, 0);

  // --- detect aggregation ---
  bool has_aggregate = false;
  for (const SelectItem& item : stmt.items) {
    if (contains_aggregate(*item.expr)) has_aggregate = true;
  }
  const bool grouped = has_aggregate || !stmt.group_by.empty();

  ResultSet rs;
  if (stmt.star_all) {
    SCIDOCK_REQUIRE(!grouped, "SELECT * cannot be combined with GROUP BY");
    for (const Binding& b : bindings) {
      for (const std::string& col : b.table->columns()) rs.columns.push_back(col);
    }
  } else {
    for (const SelectItem& item : stmt.items) {
      rs.columns.push_back(derive_column_name(item));
    }
  }

  // ORDER BY may reference a select-list alias (PostgreSQL semantics):
  // substitute such bare column references with the aliased expression.
  std::vector<ExprPtr> order_exprs;
  for (const OrderItem& o : stmt.order_by) {
    const Expr* resolved = o.expr.get();
    if (resolved->kind == Expr::Kind::Column && resolved->qualifier.empty()) {
      for (const SelectItem& item : stmt.items) {
        if (!item.alias.empty() && iequals(item.alias, resolved->column)) {
          resolved = item.expr.get();
          break;
        }
      }
    }
    order_exprs.push_back(resolved->clone());
  }

  struct OrderKeyed {
    Row row;
    std::vector<Value> keys;
  };
  std::vector<OrderKeyed> produced;

  if (grouped) {
    // Group the joined rows by the GROUP BY key values.
    std::map<std::vector<std::string>, std::vector<std::vector<const Row*>>> groups;
    for (const auto& row_ptrs : joined) {
      Scope scope{&bindings, &row_ptrs};
      std::vector<std::string> key;
      key.reserve(stmt.group_by.size());
      for (const ExprPtr& g : stmt.group_by) {
        key.push_back(eval(*g, scope).to_string());
      }
      groups[std::move(key)].push_back(row_ptrs);
    }
    if (groups.empty() && stmt.group_by.empty() && !joined.empty()) {
      groups[{}].push_back(joined.front());
    }
    if (groups.empty() && stmt.group_by.empty()) {
      // Aggregates over an empty input still yield one row (count = 0).
      if (has_aggregate) {
        Row row;
        for (const SelectItem& item : stmt.items) {
          if (item.expr->kind == Expr::Kind::Call && item.expr->call_name == "count") {
            row.push_back(Value(static_cast<std::int64_t>(0)));
          } else {
            row.push_back(Value());
          }
        }
        produced.push_back({std::move(row), {}});
      }
    } else {
      for (auto& [key, group_rows] : groups) {
        if (group_rows.empty()) continue;
        if (stmt.having) {
          if (!truthy(Value(eval_grouped(*stmt.having, bindings, group_rows)))) {
            continue;
          }
        }
        OrderKeyed out;
        for (const SelectItem& item : stmt.items) {
          out.row.push_back(eval_grouped(*item.expr, bindings, group_rows));
        }
        for (const ExprPtr& o : order_exprs) {
          out.keys.push_back(eval_grouped(*o, bindings, group_rows));
        }
        produced.push_back(std::move(out));
      }
    }
  } else {
    for (const auto& row_ptrs : joined) {
      Scope scope{&bindings, &row_ptrs};
      OrderKeyed out;
      if (stmt.star_all) {
        for (std::size_t t = 0; t < n_tables; ++t) {
          for (const Value& v : *row_ptrs[t]) out.row.push_back(v);
        }
      } else {
        for (const SelectItem& item : stmt.items) {
          out.row.push_back(eval(*item.expr, scope));
        }
      }
      for (const ExprPtr& o : order_exprs) {
        out.keys.push_back(eval(*o, scope));
      }
      produced.push_back(std::move(out));
    }
  }

  // --- ORDER BY ---
  if (!stmt.order_by.empty()) {
    std::stable_sort(produced.begin(), produced.end(),
                     [&stmt](const OrderKeyed& a, const OrderKeyed& b) {
                       for (std::size_t k = 0; k < stmt.order_by.size(); ++k) {
                         const auto c = a.keys[k].compare(b.keys[k]);
                         if (c == std::strong_ordering::equal) continue;
                         const bool less = c == std::strong_ordering::less;
                         return stmt.order_by[k].descending ? !less : less;
                       }
                       return false;
                     });
  }

  // --- DISTINCT ---
  for (OrderKeyed& p : produced) rs.rows.push_back(std::move(p.row));
  if (stmt.distinct) {
    std::vector<Row> unique_rows;
    for (Row& row : rs.rows) {
      bool seen = false;
      for (const Row& u : unique_rows) {
        if (u.size() == row.size() &&
            std::equal(u.begin(), u.end(), row.begin())) {
          seen = true;
          break;
        }
      }
      if (!seen) unique_rows.push_back(std::move(row));
    }
    rs.rows = std::move(unique_rows);
  }

  // --- LIMIT ---
  if (stmt.limit && rs.rows.size() > *stmt.limit) rs.rows.resize(*stmt.limit);
  return rs;
}

}  // namespace scidock::sql
