// Kernel-equivalence suite (ctest -L kernels): the docking hot-path
// rewrite of DESIGN.md §10 must not change results.
//   - radial LUTs track the analytic scoring terms within a documented
//     tolerance (and exactly reproduce clamp/cutoff behaviour);
//   - fused trilinear sampling is bit-identical to per-map sampling;
//   - the lane-parallel SIMD kernels (lane_bins/interpolate, batched
//     pair terms, TrilinearSamplerLanes) match their scalar references
//     per lane, and the batched pose evaluation (PoseBatch +
//     evaluate_batch/score_batch) matches pose-at-a-time evaluation;
//   - AutoGrid maps are bit-identical across thread counts;
//   - the single-flight grid-map cache computes once per key, propagates
//     exceptions, and leaves pipeline outputs (FEB/RMSD, map files)
//     bit-identical to cache-off runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/generator.hpp"
#include "data/table2.hpp"
#include "dock/autogrid.hpp"
#include "dock/conformation.hpp"
#include "dock/energy.hpp"
#include "dock/energy_lut.hpp"
#include "dock/grid.hpp"
#include "dock/scoring.hpp"
#include "mol/prepare.hpp"
#include "obs/obs.hpp"
#include "scidock/experiment.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace scidock::dock {
namespace {

using mol::AdType;

// Documented LUT accuracy bound (energy_lut.hpp): interpolation against
// the analytic path stays within 2e-3 kcal/mol absolute or 0.5% relative,
// whichever is looser. The GA/MC search acts on energy differences an
// order of magnitude above this.
bool within_tolerance(double lut, double analytic) {
  const double err = std::abs(lut - analytic);
  return err <= 2e-3 || err <= 5e-3 * std::abs(analytic);
}

TEST(EnergyLut, Ad4PairEnergyMatchesAnalytic) {
  const Ad4Weights w;
  const auto tables = Ad4PairTables::shared(w);
  const struct {
    AdType ti, tj;
    double qi, qj;
  } pairs[] = {
      {AdType::C, AdType::C, 0.1, -0.2},    // plain vdW
      {AdType::C, AdType::OA, 0.2, -0.35},  // polar contact
      {AdType::HD, AdType::OA, 0.16, -0.4}, // H-bond 12-10 well
      {AdType::N, AdType::HD, -0.3, 0.16},
      {AdType::SA, AdType::S, -0.1, 0.05},
      {AdType::A, AdType::NA, 0.0, -0.25},
  };
  double max_err = 0.0;
  for (const auto& p : pairs) {
    for (double r = 0.1; r <= 8.0; r += 0.0103) {
      const double analytic = ad4_pair_energy(p.ti, p.qi, p.tj, p.qj, r, w);
      const double lut = tables->pair_energy(p.ti, p.qi, p.tj, p.qj, r * r);
      EXPECT_TRUE(within_tolerance(lut, analytic))
          << mol::ad_type_name(p.ti) << "-" << mol::ad_type_name(p.tj)
          << " at r=" << r << ": lut=" << lut << " analytic=" << analytic;
      max_err = std::max(max_err, std::abs(lut - analytic));
    }
  }
  EXPECT_GT(max_err, 0.0);  // the table really is an approximation
}

TEST(EnergyLut, Ad4AnalyticTailBeyondCutoff) {
  const Ad4Weights w;
  const auto tables = Ad4PairTables::shared(w);
  // Intramolecular pairs in extended ligands exceed 8 Å; past the table
  // domain the LUT object falls back to the exact analytic path. Radii
  // chosen so sqrt(r * r) == r exactly.
  for (double r : {8.0, 10.0, 16.0, 40.0}) {
    EXPECT_DOUBLE_EQ(tables->pair_energy(AdType::C, 0.2, AdType::OA, -0.3, r * r),
                     ad4_pair_energy(AdType::C, 0.2, AdType::OA, -0.3, r, w));
  }
}

TEST(EnergyLut, Ad4SubClampRegionConstant) {
  const Ad4Weights w;
  const auto tables = Ad4PairTables::shared(w);
  // The analytic path clamps r at 0.5 Å; the table reproduces the
  // constant plateau exactly (all samples below 0.25 Å² share r = 0.5).
  const double at_clamp = ad4_pair_energy(AdType::C, 0.3, AdType::C, 0.3, 0.5, w);
  for (double r2 : {0.0, 0.04, 0.12, 0.2}) {
    EXPECT_NEAR(tables->pair_energy(AdType::C, 0.3, AdType::C, 0.3, r2),
                at_clamp, 1e-12);
  }
}

TEST(EnergyLut, VinaPairEnergyMatchesAnalytic) {
  const VinaWeights w;
  const auto tables = VinaPairTables::shared(w);
  const std::pair<AdType, AdType> pairs[] = {
      {AdType::C, AdType::C},   {AdType::C, AdType::A},
      {AdType::OA, AdType::NA}, {AdType::OA, AdType::Mg},
      {AdType::Cl, AdType::Br}, {AdType::H, AdType::C},  // skip pair: 0
  };
  for (const auto& [ti, tj] : pairs) {
    for (double r = 0.3; r <= 8.5; r += 0.0107) {
      const double analytic = vina_pair_energy(ti, tj, r, w);
      const double lut = tables->pair_energy(ti, tj, r * r);
      // The last bin blends the truncation step at the 8 Å cutoff, so
      // allow the step magnitude there; elsewhere the standard bound
      // (the relative term covers the steep sub-overlap repulsion).
      const double err = std::abs(lut - analytic);
      EXPECT_TRUE(err <= (r > 7.9 ? 6e-3 : 2e-3) ||
                  err <= 5e-3 * std::abs(analytic))
          << mol::ad_type_name(ti) << "-" << mol::ad_type_name(tj)
          << " at r=" << r << ": lut=" << lut << " analytic=" << analytic;
    }
  }
  EXPECT_DOUBLE_EQ(tables->pair_energy(AdType::C, AdType::C, 64.0), 0.0);
  EXPECT_DOUBLE_EQ(tables->pair_energy(AdType::C, AdType::C, 100.0), 0.0);
}

TEST(EnergyLut, SharedRegistryReturnsSameTables) {
  const Ad4Weights w;
  EXPECT_EQ(Ad4PairTables::shared(w).get(), Ad4PairTables::shared(w).get());
  Ad4Weights other = w;
  other.vdw *= 2.0;
  EXPECT_NE(Ad4PairTables::shared(w).get(), Ad4PairTables::shared(other).get());
  const VinaWeights vw;
  EXPECT_EQ(VinaPairTables::shared(vw).get(), VinaPairTables::shared(vw).get());
}

// ------------------------------------------------------- fused sampling

TEST(TrilinearSampler, BitIdenticalToPerMapSample) {
  const GridBox box = GridBox::around({1.0, -2.0, 3.0}, 6.0, 0.5);
  Rng rng(11);
  GridMap a(box, "A"), b(box, "e"), c(box, "d");
  for (auto* m : {&a, &b, &c}) {
    for (double& v : m->values()) v = rng.uniform(-10.0, 10.0);
  }
  for (int i = 0; i < 500; ++i) {
    const mol::Vec3 p{rng.uniform(-3.0, 5.0), rng.uniform(-6.0, 2.0),
                      rng.uniform(-1.0, 7.0)};
    const TrilinearSampler s(box, p);
    ASSERT_TRUE(s.in_box());
    // One cell/weight computation, applied to three maps, must equal the
    // unfused per-map path bit for bit.
    EXPECT_DOUBLE_EQ(s.apply(a), a.sample(p));
    EXPECT_DOUBLE_EQ(s.apply(b), b.sample(p));
    EXPECT_DOUBLE_EQ(s.apply(c), c.sample(p));
  }
  const TrilinearSampler outside(box, {100, 100, 100});
  EXPECT_FALSE(outside.in_box());
}

// ---------------------------------------------------- lane-parallel kernels
//
// The SIMD kernels use the same interpolation association as the scalar
// path (a + (b - a) * t, no FMA), so on the portable build every lane is
// bit-equal to the scalar reference. The bounds below leave headroom for
// FMA contraction under -march=native builds only.

constexpr int kLanes = simd::f64x::kWidth;

void expect_lane_near(double lane, double scalar, const char* what, int l) {
  EXPECT_NEAR(lane, scalar, 1e-10 * (1.0 + std::abs(scalar)))
      << what << " lane " << l;
}

TEST(SimdKernels, LaneBinsInterpolateMatchesScalar) {
  // A synthetic channel with curvature so interpolation actually blends.
  std::vector<double> samples(lut::kEntries + 1);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double x = static_cast<double>(i) / lut::kEntries;
    samples[i] = std::sin(7.0 * x) / (0.05 + x);
  }
  Rng rng(23);
  for (int rep = 0; rep < 200; ++rep) {
    double r2[kLanes];
    for (double& v : r2) v = rng.uniform(0.0, lut::kCutoffSq);
    if (rep == 0) {
      r2[0] = 0.0;                  // first bin
      r2[kLanes - 1] = lut::kCutoffSq;  // top-bin clamp lane
    }
    const lut::LaneBins bins = lut::lane_bins(simd::f64x::load(r2));
    const simd::f64x shared = lut::interpolate(samples.data(), bins);
    const double* rows[kLanes];
    for (const double*& row : rows) row = samples.data();
    const simd::f64x per_row = lut::interpolate_rows(rows, bins);
    for (int l = 0; l < kLanes; ++l) {
      const double scalar = lut::interpolate(samples.data(), r2[l]);
      expect_lane_near(shared.lane(l), scalar, "shared-channel", l);
      expect_lane_near(per_row.lane(l), scalar, "per-row", l);
    }
  }
}

TEST(SimdKernels, Ad4PairEnergyLanesMatchesScalarComposition) {
  const Ad4Weights w;
  const auto tables = Ad4PairTables::shared(w);
  const AdType types[] = {AdType::C, AdType::OA, AdType::HD, AdType::N};
  Rng rng(29);
  for (int rep = 0; rep < 200; ++rep) {
    const double* rows[kLanes];
    double qq[kLanes], solv[kLanes], r2[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      const AdType ti = types[rng.below(4)];
      const AdType tj = types[rng.below(4)];
      rows[l] = tables->vdw_row(ti, tj);
      qq[l] = rng.uniform(-0.2, 0.2);
      solv[l] = rng.uniform(-0.05, 0.05);
      r2[l] = rng.uniform(0.0, lut::kCutoffSq);
    }
    const simd::f64x e = tables->pair_energy_lanes(
        rows, simd::f64x::load(qq), simd::f64x::load(solv),
        simd::f64x::load(r2));
    for (int l = 0; l < kLanes; ++l) {
      // Same hoisted factors fed through the scalar LUT kernels.
      const double scalar = lut::interpolate(rows[l], r2[l]) +
                            qq[l] * tables->coulomb_factor(r2[l]) +
                            solv[l] * tables->desolv_gauss(r2[l]);
      expect_lane_near(e.lane(l), scalar, "ad4 pair", l);
    }
  }
}

TEST(SimdKernels, VinaPairEnergyLanesMatchesScalarAndMasksCutoff) {
  const VinaWeights w;
  const auto tables = VinaPairTables::shared(w);
  const AdType types[] = {AdType::C, AdType::A, AdType::OA, AdType::NA};
  Rng rng(31);
  for (int rep = 0; rep < 200; ++rep) {
    const double* rows[kLanes];
    AdType ti[kLanes], tj[kLanes];
    double r2[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      ti[l] = types[rng.below(4)];
      tj[l] = types[rng.below(4)];
      rows[l] = tables->row(ti[l], tj[l]);
      // Past-cutoff lanes (the neighbour-block tail padding) mixed in
      // with in-domain ones: the kernel must mask them to exactly zero.
      r2[l] = rng.uniform(0.0, 1.5 * lut::kCutoffSq);
    }
    if (rep == 0) r2[0] = lut::kCutoffSq;  // boundary is already outside
    const simd::f64x e = tables->pair_energy_lanes(rows, simd::f64x::load(r2));
    for (int l = 0; l < kLanes; ++l) {
      const double scalar = tables->pair_energy(ti[l], tj[l], r2[l]);
      if (r2[l] >= lut::kCutoffSq) {
        EXPECT_EQ(e.lane(l), 0.0) << "lane " << l;
      } else {
        expect_lane_near(e.lane(l), scalar, "vina pair", l);
      }
    }
  }
}

TEST(SimdKernels, TrilinearSamplerLanesMatchesScalarSampler) {
  const GridBox box = GridBox::around({1.0, -2.0, 3.0}, 6.0, 0.5);
  Rng rng(37);
  GridMap a(box, "A"), b(box, "e");
  for (auto* m : {&a, &b}) {
    for (double& v : m->values()) v = rng.uniform(-10.0, 10.0);
  }
  for (int rep = 0; rep < 200; ++rep) {
    double xs[kLanes], ys[kLanes], zs[kLanes];
    for (int l = 0; l < kLanes; ++l) {
      xs[l] = rng.uniform(-3.0, 5.0);
      ys[l] = rng.uniform(-6.0, 2.0);
      zs[l] = rng.uniform(-1.0, 7.0);
    }
    if (rep % 3 == 0) xs[kLanes - 1] = 100.0;  // out-of-box penalty lane
    const TrilinearSamplerLanes lanes(box, xs, ys, zs);
    const simd::f64x va = lanes.apply(a);
    const simd::f64x vb = lanes.apply(b);
    for (int l = 0; l < kLanes; ++l) {
      const TrilinearSampler scalar(box, {xs[l], ys[l], zs[l]});
      if (!scalar.in_box()) {
        EXPECT_EQ(va.lane(l), GridMap::kOutOfBoxPenalty) << "lane " << l;
        EXPECT_EQ(vb.lane(l), GridMap::kOutOfBoxPenalty) << "lane " << l;
        continue;
      }
      // The lane ctor reproduces the scalar boundary decisions and weight
      // computation exactly, so in-box lanes are bit-equal per map.
      EXPECT_DOUBLE_EQ(va.lane(l), scalar.apply(a)) << "lane " << l;
      EXPECT_DOUBLE_EQ(vb.lane(l), scalar.apply(b)) << "lane " << l;
    }
  }
}

// ------------------------------------------------------ parallel AutoGrid

data::GeneratorOptions tiny() {
  data::GeneratorOptions o;
  o.min_residues = 10;
  o.max_residues = 14;
  o.min_ligand_atoms = 8;
  o.max_ligand_atoms = 12;
  o.hg_fraction = 0.0;
  return o;
}

TEST(ParallelAutogrid, BitIdenticalAcrossThreadCounts) {
  const mol::PreparedReceptor rec =
      mol::prepare_receptor(data::make_receptor("1KER", tiny()));
  const GridMapCalculator calc(rec.molecule);
  const GridBox box = GridBox::around(rec.molecule.center(), 7.0, 0.6);
  const std::vector<AdType> types = {AdType::C, AdType::OA, AdType::HD,
                                     AdType::N};
  const GridMapSet serial = calc.calculate(box, types);
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const GridMapSet parallel = calc.calculate(box, types, &pool);
    EXPECT_EQ(parallel.electrostatic.values(), serial.electrostatic.values())
        << threads << " threads";
    EXPECT_EQ(parallel.desolvation.values(), serial.desolvation.values());
    ASSERT_EQ(parallel.affinity.size(), serial.affinity.size());
    for (std::size_t t = 0; t < serial.affinity.size(); ++t) {
      EXPECT_EQ(parallel.affinity[t].second.values(),
                serial.affinity[t].second.values())
          << "type " << mol::ad_type_name(serial.affinity[t].first) << ", "
          << threads << " threads";
    }
  }
}

TEST(ParallelAutogrid, SlabObserverFiresOncePerSlab) {
  const mol::PreparedReceptor rec =
      mol::prepare_receptor(data::make_receptor("1OBS", tiny()));
  AutogridOptions opts;
  std::atomic<int> slabs{0};
  std::atomic<bool> negative{false};
  opts.slab_observer = [&](int iz, double seconds) {
    (void)iz;
    slabs.fetch_add(1);
    if (seconds < 0.0) negative.store(true);
  };
  const GridMapCalculator calc(rec.molecule, opts);
  const GridBox box = GridBox::around(rec.molecule.center(), 6.0, 0.75);
  ThreadPool pool(4);
  calc.calculate(box, {AdType::C}, &pool);
  EXPECT_EQ(slabs.load(), box.npts[2]);
  EXPECT_FALSE(negative.load());
}

// --------------------------------------------------- batched pose scoring

/// Random poses over the model box, with a couple translated far outside
/// so the out-of-box penalty lanes are exercised, and an odd count so the
/// PoseBatch tail padding is exercised.
template <typename Model>
std::vector<DockPose> make_poses(const GridBox& box, const Model& model,
                                 int torsion_count, int n, Rng& rng) {
  std::vector<DockPose> poses;
  for (int i = 0; i < n; ++i) {
    poses.push_back(
        DockPose::random(box, model.reference_center(), torsion_count, rng));
  }
  poses[static_cast<std::size_t>(n) - 1].rigid.translation +=
      mol::Vec3{300.0, 0.0, 0.0};
  return poses;
}

TEST(BatchedScoring, Ad4EvaluateBatchMatchesPoseAtATime) {
  const auto opts = tiny();
  const mol::PreparedReceptor rec =
      mol::prepare_receptor(data::make_receptor("1AIM", opts));
  const mol::PreparedLigand lig =
      mol::prepare_ligand(data::make_ligand("042", opts));
  const GridBox box = GridBox::around(rec.molecule.center(), 9.0, 0.75);
  GridMapCalculator calc(rec.molecule);
  mol::Molecule typed = lig.molecule;
  typed.perceive();
  const GridMapSet maps = calc.calculate(box, typed.ad_types_present());
  const Ad4EnergyModel model(maps, lig);
  Rng rng(41);
  // Odd, non-lane-multiple counts: 1 (all-padding block), 7 and W+1.
  for (int n : {1, 7, simd::f64x::kWidth + 1}) {
    const auto poses =
        make_poses(box, model, lig.torsions.torsion_count(), n, rng);
    const auto batched = model.evaluate_batch(poses);
    ASSERT_EQ(batched.size(), poses.size());
    std::vector<double> inter, intra;
    model.score_batch(poses, &inter, &intra);
    for (std::size_t p = 0; p < poses.size(); ++p) {
      const auto coords = model.coords_for(poses[p]);
      const double scalar_inter = model.intermolecular(coords);
      const double scalar_intra = model.intramolecular(coords);
      EXPECT_TRUE(within_tolerance(batched[p], scalar_inter + scalar_intra))
          << "pose " << p << " of " << n << ": batched=" << batched[p]
          << " scalar=" << scalar_inter + scalar_intra;
      EXPECT_TRUE(within_tolerance(inter[p], scalar_inter)) << "pose " << p;
      EXPECT_TRUE(within_tolerance(intra[p], scalar_intra)) << "pose " << p;
      // operator() must agree with its batched counterpart too.
      EXPECT_TRUE(within_tolerance(batched[p], model(poses[p])));
    }
  }
}

TEST(BatchedScoring, VinaEvaluateBatchMatchesPoseAtATime) {
  const auto opts = tiny();
  const mol::PreparedReceptor rec =
      mol::prepare_receptor(data::make_receptor("1AIM", opts));
  const mol::PreparedLigand lig =
      mol::prepare_ligand(data::make_ligand("074", opts));
  const GridBox box = GridBox::around(rec.molecule.center(), 9.0, 0.75);
  const VinaEnergyModel model(rec, lig, box);
  Rng rng(43);
  for (int n : {1, 7, simd::f64x::kWidth + 1}) {
    const auto poses =
        make_poses(box, model, lig.torsions.torsion_count(), n, rng);
    const auto batched = model.evaluate_batch(poses);
    ASSERT_EQ(batched.size(), poses.size());
    std::vector<double> inter, intra;
    model.score_batch(poses, &inter, &intra);
    for (std::size_t p = 0; p < poses.size(); ++p) {
      const auto coords = model.coords_for(poses[p]);
      EXPECT_TRUE(within_tolerance(inter[p], model.intermolecular(coords)))
          << "pose " << p;
      EXPECT_TRUE(within_tolerance(intra[p], model.intramolecular(coords)))
          << "pose " << p;
      EXPECT_TRUE(within_tolerance(batched[p], model(poses[p])))
          << "pose " << p << " of " << n;
    }
  }
}

TEST(BatchedScoring, EvaluationCountingMatchesScalarDiscipline) {
  const auto opts = tiny();
  const mol::PreparedReceptor rec =
      mol::prepare_receptor(data::make_receptor("1AIM", opts));
  const mol::PreparedLigand lig =
      mol::prepare_ligand(data::make_ligand("0E6", opts));
  const GridBox box = GridBox::around(rec.molecule.center(), 9.0, 0.75);
  const VinaEnergyModel model(rec, lig, box);
  Rng rng(47);
  const auto poses =
      make_poses(box, model, lig.torsions.torsion_count(), 5, rng);
  EXPECT_EQ(model.evaluations(), 0);
  model.evaluate_batch(poses);  // search path: one count per pose
  EXPECT_EQ(model.evaluations(), 5);
  std::vector<double> inter, intra;
  model.score_batch(poses, &inter, &intra);  // reporting path: no counts
  EXPECT_EQ(model.evaluations(), 5);
}

// ----------------------------------------------------- screening GPF

TEST(ScreeningGpf, CanonicalAcrossLigands) {
  const auto opts = tiny();
  const mol::Molecule rec = data::make_receptor("1CAN", opts);
  GridParameterFile first;
  bool have_first = false;
  for (const char* code : {"042", "074", "0E6"}) {
    const GridParameterFile gpf =
        make_screening_gpf(rec, data::make_ligand(code, opts), 4.0, 0.55);
    if (!have_first) {
      first = gpf;
      have_first = true;
      continue;
    }
    // Same receptor, any drug-like ligand: identical box and type set —
    // the property the grid-map cache keys on.
    EXPECT_EQ(gpf.box.npts, first.box.npts);
    EXPECT_DOUBLE_EQ(gpf.box.center.x, first.box.center.x);
    EXPECT_EQ(gpf.ligand_types, first.ligand_types);
  }
  EXPECT_EQ(first.ligand_types, screening_ligand_types());
  EXPECT_GE(first.ligand_types.size(), 15u);
}

}  // namespace
}  // namespace scidock::dock

// -------------------------------------------------- single-flight cache

namespace scidock::core {
namespace {

dock::GridMapSet tiny_mapset() {
  dock::GridMapSet set;
  set.box = dock::GridBox::around({0, 0, 0}, 2.0, 1.0);
  set.electrostatic = dock::GridMap(set.box, "e");
  set.desolvation = dock::GridMap(set.box, "d");
  return set;
}

TEST(SingleFlightCache, ComputesOncePerKeyUnderContention) {
  ArtifactCache cache;
  std::atomic<int> computed{0};
  std::atomic<int> hits{0}, misses{0}, waits{0};
  std::vector<std::thread> threads;
  std::vector<ArtifactCache::MapsPtr> results(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      auto [maps, outcome] = cache.get_or_compute_maps("k", [&] {
        computed.fetch_add(1);
        return tiny_mapset();
      });
      results[static_cast<std::size_t>(i)] = maps;
      switch (outcome) {
        case CacheOutcome::kHit: hits.fetch_add(1); break;
        case CacheOutcome::kMiss: misses.fetch_add(1); break;
        case CacheOutcome::kInflightWait: waits.fetch_add(1); break;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computed.load(), 1);
  EXPECT_EQ(misses.load(), 1);
  EXPECT_EQ(hits.load() + waits.load(), 7);
  for (const auto& r : results) EXPECT_EQ(r.get(), results[0].get());
}

TEST(SingleFlightCache, DistinctKeysComputeIndependently) {
  ArtifactCache cache;
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return tiny_mapset();
  };
  const auto [a, oa] = cache.get_or_compute_maps("a", compute);
  const auto [b, ob] = cache.get_or_compute_maps("b", compute);
  const auto [a2, oa2] = cache.get_or_compute_maps("a", compute);
  EXPECT_EQ(computed, 2);
  EXPECT_EQ(oa, CacheOutcome::kMiss);
  EXPECT_EQ(ob, CacheOutcome::kMiss);
  EXPECT_EQ(oa2, CacheOutcome::kHit);
  EXPECT_EQ(a.get(), a2.get());
  EXPECT_NE(a.get(), b.get());
}

TEST(SingleFlightCache, ExceptionErasesFlightSoRetryRecomputes) {
  ArtifactCache cache;
  EXPECT_THROW(cache.get_or_compute_maps(
                   "k", []() -> dock::GridMapSet {
                     throw std::runtime_error("vfs fault");
                   }),
               std::runtime_error);
  // The failed flight is gone: a retry computes fresh and succeeds.
  const auto [maps, outcome] = cache.get_or_compute_maps("k", tiny_mapset);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  EXPECT_NE(maps, nullptr);
}

TEST(SingleFlightCache, AliasSharesTheSameSet) {
  ArtifactCache cache;
  const auto [maps, outcome] = cache.get_or_compute_maps("canonical", tiny_mapset);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  cache.alias_maps("/exp/autogrid/p1/receptor", maps);
  cache.alias_maps("/exp/autogrid/p2/receptor", maps);
  EXPECT_EQ(cache.maps("/exp/autogrid/p1/receptor").get(), maps.get());
  EXPECT_EQ(cache.maps("/exp/autogrid/p2/receptor").get(), maps.get());
  EXPECT_EQ(cache.maps("unknown"), nullptr);
}

// ------------------------------------------- pipeline-level equivalence

std::vector<std::string> some_receptors(int n) {
  const auto& all = data::table2_receptors();
  return {all.begin(), all.begin() + n};
}

struct RunArtifacts {
  std::map<std::string, std::pair<std::string, std::string>> feb_rmsd;  ///< by pair
  std::map<std::string, std::string> autogrid_files;  ///< path -> content
};

RunArtifacts collect(Experiment& exp, const wf::NativeReport& report) {
  RunArtifacts out;
  for (const auto& t : report.output.tuples()) {
    out.feb_rmsd[t.require("pair")] = {t.require("feb"), t.require("rmsd")};
  }
  for (const auto& f : exp.fs->list("/")) {
    if (f.path.find("/autogrid/") != std::string::npos) {
      out.autogrid_files[f.path] = exp.fs->read(f.path);
    }
  }
  return out;
}

TEST(GridMapReuse, Table3OutputsIdenticalAcrossCacheAndThreads) {
  ScidockOptions opts;
  opts.dataset = dock::tiny();  // namespace-qualified helper above
  opts.write_map_files = true;

  // Baseline: cache off, single thread.
  opts.reuse_grid_maps = false;
  auto base_exp =
      make_experiment(some_receptors(2), {"042", "074", "0E6"}, 0, opts);
  const wf::NativeReport base_report = run_native(base_exp, 1, "base");
  const RunArtifacts base = collect(base_exp, base_report);
  ASSERT_EQ(base.feb_rmsd.size(), 6u);
  ASSERT_FALSE(base.autogrid_files.empty());

  // Cache on, multiple threads: FEB/RMSD (the Table 3 columns) and every
  // AutoGrid artifact must be byte-identical.
  opts.reuse_grid_maps = true;
  for (int threads : {1, 4}) {
    auto exp =
        make_experiment(some_receptors(2), {"042", "074", "0E6"}, 0, opts);
    const wf::NativeReport report =
        run_native(exp, threads, "reuse" + std::to_string(threads));
    const RunArtifacts got = collect(exp, report);
    EXPECT_EQ(got.feb_rmsd, base.feb_rmsd) << threads << " threads";
    EXPECT_EQ(got.autogrid_files, base.autogrid_files) << threads << " threads";
  }
}

TEST(GridMapReuse, CacheCountersReconcileAndHit) {
  ScidockOptions opts;
  opts.dataset = dock::tiny();
  opts.reuse_grid_maps = true;
  auto exp = make_experiment(some_receptors(2), {"042", "074", "0E6"}, 0, opts);
  obs::MetricsRegistry metrics;
  const wf::NativeReport report =
      run_native(exp, 4, "reuse-metrics", obs::Observability{nullptr, &metrics});
  ASSERT_EQ(report.output.tuples().size(), 6u);
  const long long hits = metrics.counter_value(obs::kCacheGridmapsHits);
  const long long misses = metrics.counter_value(obs::kCacheGridmapsMisses);
  const long long waits =
      metrics.counter_value(obs::kCacheGridmapsInflightWaits);
  // 6 AutoGrid activations over 2 receptors: one compute per receptor,
  // everything else hits (or waited on the in-flight compute).
  EXPECT_EQ(hits + misses + waits, 6);
  EXPECT_EQ(misses, 2);
  EXPECT_EQ(metrics.counter_value(obs::kKernelAutogridMapsets), 2);
  // Slab counter and histogram observe from the same callback.
  EXPECT_EQ(metrics.counter_value(obs::kKernelAutogridSlabs),
            metrics.histogram_count(obs::kKernelAutogridSlabSeconds));
  EXPECT_GT(metrics.counter_value(obs::kKernelAutogridSlabs), 0);
}

}  // namespace
}  // namespace scidock::core
