#pragma once

/// \file analysis.hpp
/// Result analysis: the Table 3 statistics (favourable interactions,
/// average FEB, average RMSD per ligand) computed from workflow outputs,
/// and the paper's provenance queries (Query 1, Query 2, the Figure 5
/// histogram query) as ready-to-run SQL.

#include <string>
#include <vector>

#include "prov/prov.hpp"
#include "wf/relation.hpp"

namespace scidock::core {

/// One Table 3 row for one engine.
struct Table3Row {
  std::string ligand;
  int total_pairs = 0;
  int favorable = 0;      ///< count of FEB < 0 ("Total Number of FEB (-)")
  double avg_feb_neg = 0.0;  ///< mean FEB over the favourable subset
  double avg_rmsd = 0.0;     ///< mean RMSD over all docked pairs
};

/// Aggregate an output relation (fields: ligand, feb, rmsd) per ligand.
std::vector<Table3Row> table3_from_relation(const wf::Relation& output);

/// Render rows as an aligned text table (the bench output format).
std::string render_table3(const std::vector<Table3Row>& ad4,
                          const std::vector<Table3Row>& vina);

// ---------------------------------------------------------------------
// The paper's queries, verbatim modulo schema-documented column names.
// ---------------------------------------------------------------------

/// §V.C histogram query: activation durations of one workflow, in end
/// order (drives Figure 5).
std::string figure5_query(long long wkfid);

/// Query 1 (Figure 10): per-activity min/max/sum/avg durations.
std::string query1(long long wkfid);

/// Query 2 (Figure 11): names, sizes and locations of the '.dlg' files
/// with their producing workflow and activity.
std::string query2();

/// Failure forensics (§V.C): activations that needed re-execution,
/// grouped by activity, most-failing first.
std::string forensics_failed_by_activity();

/// The Hg diagnosis: aborted (looping-state) activations per workload —
/// the query that pinned the paper's failures on Hg-bearing receptors.
std::string forensics_hg_aborts(int limit = 8);

/// Runtime steering: the longest FINISHED activations so far.
std::string steering_longest_activations(int limit = 5);

/// The CLI's per-ligand screening summary, an SRQuery over the final
/// output relation exposed as table `rel`.
std::string screen_summary_query();

// ---------------------------------------------------------------------
// Shipped-query registry: every SQL text the repo ships (examples, bench,
// CLI) with the catalog it runs against, so scidock-lint and the fixture
// tests can validate all of them from one place.
// ---------------------------------------------------------------------

/// Column kinds of a workflow relation as wf::to_sql_table types them
/// (numeric-looking field values become numbers). Mirrored into
/// lint::ColType by the lint tool; core deliberately does not depend on
/// the lint library.
enum class FieldKind { Int, Real, Text };

struct RelationField {
  std::string name;
  FieldKind kind = FieldKind::Text;
};

/// Declared schema of the docking pipeline's final output relation — the
/// union of the generator's pair fields and every field a pipeline stage
/// emits, with the types to_sql_table infers for them.
std::vector<RelationField> output_relation_schema();

struct ShippedQuery {
  std::string name;
  std::string sql;
  std::string catalog;  ///< "prov" (PROV-Wf schema) or "rel" (SRQuery)
};

/// All queries shipped in bench/, examples/ and the CLI (representative
/// ids substituted for the parameterised ones).
std::vector<ShippedQuery> shipped_queries();

}  // namespace scidock::core
