file(REMOVE_RECURSE
  "libscidock_xml.a"
)
