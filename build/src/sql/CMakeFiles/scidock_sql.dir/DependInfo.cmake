
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cpp" "src/sql/CMakeFiles/scidock_sql.dir/ast.cpp.o" "gcc" "src/sql/CMakeFiles/scidock_sql.dir/ast.cpp.o.d"
  "/root/repo/src/sql/engine.cpp" "src/sql/CMakeFiles/scidock_sql.dir/engine.cpp.o" "gcc" "src/sql/CMakeFiles/scidock_sql.dir/engine.cpp.o.d"
  "/root/repo/src/sql/lexer.cpp" "src/sql/CMakeFiles/scidock_sql.dir/lexer.cpp.o" "gcc" "src/sql/CMakeFiles/scidock_sql.dir/lexer.cpp.o.d"
  "/root/repo/src/sql/parser.cpp" "src/sql/CMakeFiles/scidock_sql.dir/parser.cpp.o" "gcc" "src/sql/CMakeFiles/scidock_sql.dir/parser.cpp.o.d"
  "/root/repo/src/sql/table.cpp" "src/sql/CMakeFiles/scidock_sql.dir/table.cpp.o" "gcc" "src/sql/CMakeFiles/scidock_sql.dir/table.cpp.o.d"
  "/root/repo/src/sql/value.cpp" "src/sql/CMakeFiles/scidock_sql.dir/value.cpp.o" "gcc" "src/sql/CMakeFiles/scidock_sql.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/scidock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
