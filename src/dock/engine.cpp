#include "dock/engine.hpp"

#include "util/error.hpp"

namespace scidock::dock {

const Conformation& DockingResult::best() const {
  SCIDOCK_REQUIRE(!conformations.empty(), "docking result has no conformations");
  return conformations.front();
}

double DockingResult::mean_feb() const {
  if (conformations.empty()) return 0.0;
  double acc = 0.0;
  for (const Conformation& c : conformations) acc += c.feb;
  return acc / static_cast<double>(conformations.size());
}

double DockingResult::mean_rmsd() const {
  if (conformations.empty()) return 0.0;
  double acc = 0.0;
  for (const Conformation& c : conformations) acc += c.rmsd_from_input;
  return acc / static_cast<double>(conformations.size());
}

}  // namespace scidock::dock
