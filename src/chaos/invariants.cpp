#include "chaos/invariants.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "obs/obs.hpp"
#include "util/lockdep.hpp"
#include "util/racer.hpp"
#include "util/strings.hpp"

namespace scidock::chaos {

namespace {

/// Timestamps inside one attempt chain may touch exactly (the simulator
/// redispatches at the failure instant); anything earlier is a violation.
constexpr double kTimeEps = 1e-9;

}  // namespace

RunSummary summarize(const wf::SimReport& report,
                     const wf::SimExecutorOptions& options,
                     std::size_t input_tuples) {
  RunSummary s;
  s.executor = "sim";
  s.input_tuples = input_tuples;
  s.activations_finished = report.activations_finished;
  s.activations_failed = report.activations_failed;
  s.activations_hung = report.activations_hung;
  s.tuples_completed = report.tuples_completed;
  s.tuples_lost = report.tuples_lost;
  s.attempt_budget = options.failure.max_attempts;
  for (const wf::SimActivationRecord& r : report.records) {
    s.max_observed_attempt = std::max(s.max_observed_attempt, r.attempt);
  }
  // The simulation is deterministic to the last double, so the digest
  // covers every timing and the complete activation record stream.
  std::string d = strformat(
      "sim tet=%.17g finished=%lld failed=%lld hung=%lld completed=%lld "
      "lost=%lld sched=%.17g staging=%.17g cost=%.17g\n",
      report.total_execution_time_s, report.activations_finished,
      report.activations_failed, report.activations_hung,
      report.tuples_completed, report.tuples_lost,
      report.scheduling_overhead_s, report.data_staging_s,
      report.cloud_cost_usd);
  for (const auto& [tag, stats] : report.per_activity_seconds) {
    d += strformat("act %s n=%zu sum=%.17g\n", tag.c_str(), stats.count(),
                   stats.sum());
  }
  for (const wf::SimActivationRecord& r : report.records) {
    d += strformat("rec %s t=%zu s=%.17g e=%.17g vm=%lld a=%d %s\n",
                   r.tag.c_str(), r.tuple_index, r.start, r.end, r.vm_id,
                   r.attempt, r.status.c_str());
  }
  s.digest = std::move(d);
  return s;
}

RunSummary summarize(const wf::NativeReport& report,
                     const wf::NativeExecutorOptions& options,
                     std::size_t input_tuples) {
  RunSummary s;
  s.executor = "native";
  s.input_tuples = input_tuples;
  s.activations_finished = report.activations_finished;
  s.activations_failed = report.activations_failed;
  s.activations_hung = report.activations_hung;
  s.tuples_completed = static_cast<long long>(report.output.size());
  s.tuples_lost = report.tuples_lost;
  s.attempt_budget = options.max_attempts;
  // The native report has no per-attempt records; 0 marks "unknown" and
  // check_provenance recovers the true maximum from the store. (A lost
  // native tuple always exhausted its budget by construction of the
  // attempt loop, so conservation needs no headroom clause here.)
  s.max_observed_attempt = 0;
  // Wall-clock timings are excluded: only counters and the output
  // relation must be byte-identical across replays.
  std::string d = strformat(
      "native finished=%lld failed=%lld hung=%lld completed=%lld lost=%lld\n",
      report.activations_finished, report.activations_failed,
      report.activations_hung, static_cast<long long>(report.output.size()),
      report.tuples_lost);
  for (const auto& [tag, stats] : report.per_activity_seconds) {
    d += strformat("act %s n=%zu\n", tag.c_str(), stats.count());
  }
  d += report.output.to_file_text();
  s.digest = std::move(d);
  return s;
}

bool InvariantChecker::fail(std::string message) {
  violations_.push_back(std::move(message));
  return false;
}

bool InvariantChecker::check_conservation(const RunSummary& summary) {
  bool ok = true;
  if (summary.tuples_completed + summary.tuples_lost !=
      static_cast<long long>(summary.input_tuples)) {
    ok = fail(strformat(
        "[%s] conservation: completed (%lld) + lost (%lld) != input (%zu)",
        summary.executor.c_str(), summary.tuples_completed,
        summary.tuples_lost, summary.input_tuples));
  }
  const long long unexpected_losses =
      summary.tuples_lost - summary.expected_hazard_losses;
  if (unexpected_losses > 0 && summary.max_observed_attempt > 0 &&
      summary.max_observed_attempt < summary.attempt_budget) {
    ok = fail(strformat(
        "[%s] conservation: %lld tuple(s) lost although the re-execution "
        "budget had headroom (max observed attempt %d < budget %d)",
        summary.executor.c_str(), unexpected_losses,
        summary.max_observed_attempt, summary.attempt_budget));
  }
  return ok;
}

bool InvariantChecker::check_provenance(const RunSummary& summary,
                                        prov::ProvenanceStore& store,
                                        const std::string& workflow_tag,
                                        int chain_length) {
  bool ok = true;
  const std::string who = "[" + summary.executor + "/" + workflow_tag + "]";

  // ---- scan the store under its lock (activations may still be live) ----
  struct Attempt {
    int number;
    std::string status;
    double start;
    double end;
  };
  std::map<std::pair<long long, std::string>, std::vector<Attempt>> sites;
  long long wkfid = -1;
  double workflow_end = 0.0;
  long long finished = 0, failed = 0, aborted = 0;
  int max_attempt = 0;
  store.with_database([&](sql::Database& db) {
    // ---- locate the workflow row ----
    const sql::Table& hworkflow = db.table("hworkflow");
    const auto w_id = static_cast<std::size_t>(hworkflow.column_index("wkfid"));
    const auto w_tag = static_cast<std::size_t>(hworkflow.column_index("tag"));
    const auto w_end =
        static_cast<std::size_t>(hworkflow.column_index("endtime"));
    for (const sql::Row& row : hworkflow.rows()) {
      if (row[w_tag].as_string() == workflow_tag) {
        wkfid = row[w_id].as_int();
        if (row[w_end].is_null()) {
          ok = fail(who + " provenance: workflow row was never closed");
        } else {
          workflow_end = row[w_end].as_double();
        }
      }
    }
    if (wkfid < 0) return;

    // ---- scan activations ----
    const sql::Table& hactivation = db.table("hactivation");
    const auto c_wkf =
        static_cast<std::size_t>(hactivation.column_index("wkfid"));
    const auto c_act =
        static_cast<std::size_t>(hactivation.column_index("actid"));
    const auto c_start =
        static_cast<std::size_t>(hactivation.column_index("starttime"));
    const auto c_end =
        static_cast<std::size_t>(hactivation.column_index("endtime"));
    const auto c_status =
        static_cast<std::size_t>(hactivation.column_index("status"));
    const auto c_attempts =
        static_cast<std::size_t>(hactivation.column_index("attempts"));
    const auto c_workload =
        static_cast<std::size_t>(hactivation.column_index("workload"));

    for (const sql::Row& row : hactivation.rows()) {
      if (row[c_wkf].as_int() != wkfid) continue;
      const std::string& status = row[c_status].as_string();
      if (status == prov::kStatusRunning || row[c_end].is_null()) {
        ok = fail(who + " provenance: activation left open (status " + status +
                  ")");
        continue;
      }
      const double start = row[c_start].as_double();
      const double end = row[c_end].as_double();
      const int attempt = static_cast<int>(row[c_attempts].as_int());
      if (end < start - kTimeEps) {
        ok = fail(strformat("%s provenance: endtime %.6f < starttime %.6f",
                            who.c_str(), end, start));
      }
      if (end > workflow_end + kTimeEps) {
        ok = fail(strformat(
            "%s provenance: activation ends at %.6f after workflow end %.6f",
            who.c_str(), end, workflow_end));
      }
      if (status == prov::kStatusFinished) ++finished;
      else if (status == prov::kStatusFailed) ++failed;
      else if (status == prov::kStatusAborted) ++aborted;
      else ok = fail(who + " provenance: unknown status " + status);
      max_attempt = std::max(max_attempt, attempt);
      sites[{row[c_act].as_int(), row[c_workload].as_string()}].push_back(
          Attempt{attempt, status, start, end});
    }
  });
  if (wkfid < 0) {
    return fail(who + " provenance: no hworkflow row for tag");
  }

  if (finished != summary.activations_finished) {
    ok = fail(strformat("%s provenance: %lld FINISHED rows vs %lld in report",
                        who.c_str(), finished, summary.activations_finished));
  }
  if (failed != summary.activations_failed) {
    ok = fail(strformat("%s provenance: %lld FAILED rows vs %lld in report",
                        who.c_str(), failed, summary.activations_failed));
  }
  if (aborted != summary.activations_hung) {
    ok = fail(strformat("%s provenance: %lld ABORTED rows vs %lld in report",
                        who.c_str(), aborted, summary.activations_hung));
  }
  if (max_attempt > summary.attempt_budget) {
    ok = fail(strformat("%s provenance: attempt %d exceeds budget %d",
                        who.c_str(), max_attempt, summary.attempt_budget));
  }

  // A complete chain contributes chain_length FINISHED rows; a lost tuple
  // contributes between 0 and chain_length - 1.
  const long long lo = summary.tuples_completed * chain_length;
  const long long hi = lo + summary.tuples_lost * (chain_length - 1);
  if (finished < lo || finished > hi) {
    ok = fail(strformat(
        "%s provenance: %lld FINISHED rows outside [%lld, %lld] for %lld "
        "completed / %lld lost tuples over %d stages",
        who.c_str(), finished, lo, hi, summary.tuples_completed,
        summary.tuples_lost, chain_length));
  }

  // ---- per tuple-activity site: one FINISHED, consecutive attempts ----
  for (auto& [site, attempts] : sites) {
    std::sort(attempts.begin(), attempts.end(),
              [](const Attempt& a, const Attempt& b) {
                return a.number < b.number;
              });
    const std::string where =
        strformat("%s provenance: site (actid=%lld, workload='%s')",
                  who.c_str(), site.first, site.second.c_str());
    int finished_here = 0;
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      if (attempts[i].number != static_cast<int>(i) + 1) {
        ok = fail(strformat("%s: attempt numbers not consecutive (got %d at "
                            "position %zu)",
                            where.c_str(), attempts[i].number, i));
        break;
      }
      if (i > 0 && attempts[i].start < attempts[i - 1].end - kTimeEps) {
        ok = fail(strformat(
            "%s: attempt %d starts at %.6f before attempt %d ended at %.6f",
            where.c_str(), attempts[i].number, attempts[i].start,
            attempts[i - 1].number, attempts[i - 1].end));
      }
      if (attempts[i].status == prov::kStatusFinished) {
        ++finished_here;
        if (i + 1 != attempts.size()) {
          ok = fail(where + ": FINISHED attempt is not the last one");
        }
      }
    }
    if (finished_here > 1) {
      ok = fail(strformat("%s: %d FINISHED records (expected at most one)",
                          where.c_str(), finished_here));
    }
  }
  return ok;
}

bool InvariantChecker::check_metrics(const RunSummary& summary,
                                     const obs::MetricsRegistry& metrics,
                                     prov::ProvenanceStore& store,
                                     const std::string& workflow_tag) {
  bool ok = true;
  const std::string who = "[" + summary.executor + "/" + workflow_tag + "]";

  // ---- SQL side, via the shipped reconciliation queries ----
  const sql::ResultSet wkf_rs =
      store.query(prov::workflow_id_sql(workflow_tag));
  if (wkf_rs.rows.empty()) {
    return fail(who + " metrics: no hworkflow row for tag");
  }
  const long long wkfid = wkf_rs.rows.front().front().as_int();

  const long long sql_started =
      store.query(prov::activation_count_sql(wkfid)).rows.front().front().as_int();
  const long long sql_retried =
      store.query(prov::retried_activation_count_sql(wkfid))
          .rows.front()
          .front()
          .as_int();
  long long sql_finished = 0, sql_failed = 0, sql_aborted = 0;
  for (const sql::Row& row :
       store.query(prov::activations_by_status_sql(wkfid)).rows) {
    const std::string& status = row[0].as_string();
    const long long n = row[1].as_int();
    if (status == prov::kStatusFinished) sql_finished = n;
    else if (status == prov::kStatusFailed) sql_failed = n;
    else if (status == prov::kStatusAborted) sql_aborted = n;
    else ok = fail(who + " metrics: unexpected status " + status + " in SQL");
  }

  // ---- counter side ----
  struct Line {
    const char* counter;
    long long sql;
    long long report;
  };
  const Line lines[] = {
      {obs::kActivationsStarted, sql_started,
       summary.activations_finished + summary.activations_failed +
           summary.activations_hung},
      {obs::kActivationsFinished, sql_finished, summary.activations_finished},
      {obs::kActivationsFailed, sql_failed, summary.activations_failed},
      {obs::kActivationsAborted, sql_aborted, summary.activations_hung},
      {obs::kActivationsRetried, sql_retried, -1},  // report has no view
  };
  for (const Line& line : lines) {
    const long long counted = metrics.counter_value(line.counter);
    if (counted != line.sql) {
      ok = fail(strformat("%s metrics: %s = %lld but SQL counts %lld",
                          who.c_str(), line.counter, counted, line.sql));
    }
    if (line.report >= 0 && counted != line.report) {
      ok = fail(strformat("%s metrics: %s = %lld but the report says %lld",
                          who.c_str(), line.counter, counted, line.report));
    }
  }

  // ---- grid-map cache reconciliation (DESIGN.md §10) ----
  // The AutoGrid stage counts each FINISHED activation as exactly one of
  // hit / miss / inflight-wait (counters land only after every output is
  // emitted, so faulted attempts never count). Guarded on the sum: runs
  // whose pipeline has no instrumented AutoGrid stage (toy obs pipelines,
  // sim executor) register none of these series and skip the check.
  const long long cache_hits = metrics.counter_value(obs::kCacheGridmapsHits);
  const long long cache_misses =
      metrics.counter_value(obs::kCacheGridmapsMisses);
  const long long cache_waits =
      metrics.counter_value(obs::kCacheGridmapsInflightWaits);
  const long long cache_sum = cache_hits + cache_misses + cache_waits;
  if (cache_sum > 0) {
    const long long sql_autogrid_finished =
        store.query(prov::finished_activation_count_sql(wkfid, "autogrid"))
            .rows.front()
            .front()
            .as_int();
    if (cache_sum != sql_autogrid_finished) {
      ok = fail(strformat(
          "%s metrics: grid-map cache hits %lld + misses %lld + waits %lld "
          "= %lld but SQL counts %lld FINISHED autogrid activations",
          who.c_str(), cache_hits, cache_misses, cache_waits, cache_sum,
          sql_autogrid_finished));
    }
    // Map-set computations are counted when they happen, so activations
    // that computed and then failed keep mapsets above misses.
    const long long mapsets =
        metrics.counter_value(obs::kKernelAutogridMapsets);
    if (mapsets < cache_misses) {
      ok = fail(strformat(
          "%s metrics: %s = %lld but %lld cache misses each computed one",
          who.c_str(), obs::kKernelAutogridMapsets, mapsets, cache_misses));
    }
    // Every computed slab observes the histogram and bumps the counter
    // from the same callback; the two series must agree.
    const long long slabs = metrics.counter_value(obs::kKernelAutogridSlabs);
    const long long slab_obs =
        metrics.histogram_count(obs::kKernelAutogridSlabSeconds);
    if (slabs != slab_obs) {
      ok = fail(strformat(
          "%s metrics: %s = %lld but %s observed %lld slabs",
          who.c_str(), obs::kKernelAutogridSlabs, slabs,
          obs::kKernelAutogridSlabSeconds, slab_obs));
    }
  }
  return ok;
}

bool InvariantChecker::check_replay(const RunSummary& first,
                                    const RunSummary& second) {
  if (first.digest == second.digest) return true;
  // Find the first differing line for an actionable message.
  std::size_t pos = 0;
  const std::size_t n = std::min(first.digest.size(), second.digest.size());
  while (pos < n && first.digest[pos] == second.digest[pos]) ++pos;
  const std::size_t line =
      1 + static_cast<std::size_t>(
              std::count(first.digest.begin(),
                         first.digest.begin() +
                             static_cast<std::ptrdiff_t>(pos), '\n'));
  return fail(strformat(
      "[%s] replay: same-seed digests diverge at byte %zu (line %zu)",
      first.executor.c_str(), pos, line));
}

bool InvariantChecker::check_recovery(prov::ProvenanceStore& store) {
  bool ok = true;
  const prov::RecoveryReport& rec = store.last_recovery();
  if (rec.orphan_rows != 0) {
    ok = fail(strformat(
        "recovery: replay pruned %zu orphan fact row(s) — the commit "
        "protocol let a fact outlive its dimensions",
        rec.orphan_rows));
  }
  store.with_database([&](sql::Database& db) {
    std::set<long long> wkfids;
    for (const sql::Row& row : db.table("hworkflow").rows()) {
      if (!wkfids.insert(row[0].as_int()).second) {
        ok = fail(strformat("recovery: duplicate wkfid %lld",
                            static_cast<long long>(row[0].as_int())));
      }
    }
    std::set<long long> actids;
    for (const sql::Row& row : db.table("hactivity").rows()) {
      if (!actids.insert(row[0].as_int()).second) {
        ok = fail(strformat("recovery: duplicate actid %lld",
                            static_cast<long long>(row[0].as_int())));
      }
      if (!wkfids.contains(row[1].as_int())) {
        ok = fail(strformat("recovery: hactivity %lld references missing "
                            "workflow %lld",
                            static_cast<long long>(row[0].as_int()),
                            static_cast<long long>(row[1].as_int())));
      }
    }
    const sql::Table& hactivation = db.table("hactivation");
    std::set<long long> taskids;
    for (const sql::Row& row : hactivation.rows()) {
      const long long taskid = row[0].as_int();
      if (!taskids.insert(taskid).second) {
        ok = fail(strformat("recovery: duplicate taskid %lld", taskid));
      }
      if (!actids.contains(row[1].as_int()) ||
          !wkfids.contains(row[2].as_int())) {
        ok = fail(strformat(
            "recovery: activation %lld references missing activity %lld "
            "or workflow %lld",
            taskid, static_cast<long long>(row[1].as_int()),
            static_cast<long long>(row[2].as_int())));
      }
      const std::string& status = row[5].as_string();
      const bool open = status == prov::kStatusRunning;
      const bool closed = status == prov::kStatusFinished ||
                          status == prov::kStatusFailed ||
                          status == prov::kStatusAborted;
      if (!open && !closed) {
        ok = fail(strformat("recovery: activation %lld has illegal status "
                            "'%s'",
                            taskid, status.c_str()));
      }
      if (open != row[4].is_null()) {
        ok = fail(strformat(
            "recovery: activation %lld status '%s' disagrees with its "
            "endtime being %s",
            taskid, status.c_str(), row[4].is_null() ? "NULL" : "set"));
      }
      if (closed && row[4].as_double() < row[3].as_double() - kTimeEps) {
        ok = fail(strformat("recovery: activation %lld ends at %.6f before "
                            "its start %.6f",
                            taskid, row[4].as_double(), row[3].as_double()));
      }
      if (row[8].as_int() < 1) {
        ok = fail(strformat("recovery: activation %lld has attempts %lld < 1",
                            taskid,
                            static_cast<long long>(row[8].as_int())));
      }
    }
    std::set<long long> fileids;
    for (const sql::Row& row : db.table("hfile").rows()) {
      if (!fileids.insert(row[0].as_int()).second) {
        ok = fail(strformat("recovery: duplicate fileid %lld",
                            static_cast<long long>(row[0].as_int())));
      }
      if (!taskids.contains(row[3].as_int())) {
        ok = fail(strformat(
            "recovery: hfile %lld references missing activation %lld",
            static_cast<long long>(row[0].as_int()),
            static_cast<long long>(row[3].as_int())));
      }
    }
    std::set<long long> valueids;
    for (const sql::Row& row : db.table("hvalue").rows()) {
      if (!valueids.insert(row[0].as_int()).second) {
        ok = fail(strformat("recovery: duplicate valueid %lld",
                            static_cast<long long>(row[0].as_int())));
      }
      if (!taskids.contains(row[1].as_int())) {
        ok = fail(strformat(
            "recovery: hvalue %lld references missing activation %lld",
            static_cast<long long>(row[0].as_int()),
            static_cast<long long>(row[1].as_int())));
      }
    }
  });
  return ok;
}

bool InvariantChecker::check_lockdep() {
  if (!lockdep::compiled_in()) return true;
  if (lockdep::clean()) return true;
  // One violation per error finding, each carrying the full cycle /
  // call-site detail the analyzer assembled.
  bool ok = true;
  for (const lockdep::Finding& f : lockdep::findings()) {
    if (!f.is_error) continue;
    // rule_id returns a view of a string literal, so .data() is
    // NUL-terminated.
    ok = fail(strformat("lockdep %s: %s\n%s", lockdep::rule_id(f.kind).data(),
                        f.message.c_str(), f.details.c_str())) &&
         ok;
  }
  return ok;
}

bool InvariantChecker::check_racer() {
  if (!racer::compiled_in()) return true;
  if (racer::clean()) return true;
  // One violation per error report, each carrying both access sites and
  // the missing-edge diagnosis the analyzer assembled.
  bool ok = true;
  for (const racer::Finding& f : racer::findings()) {
    if (!f.is_error) continue;
    ok = fail(strformat("racer %s: %s\n%s", racer::rule_id(f.kind).data(),
                        f.message.c_str(), f.details.c_str())) &&
         ok;
  }
  return ok;
}

std::string InvariantChecker::to_string() const {
  std::string out;
  for (const std::string& v : violations_) {
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace scidock::chaos
