#include "dock/dpf.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::dock {

std::string DockingParameterFile::to_text() const {
  std::string out;
  out += "autodock_parameter_version 4.2\n";
  out += "outlev 1\n";
  out += "ligand " + ligand_file + "\n";
  out += "fld " + receptor_maps_prefix + ".maps.fld\n";
  out += strformat("ga_pop_size %d\n", ga_pop_size);
  out += strformat("ga_num_evals %lld\n", ga_num_evals);
  out += strformat("ga_num_generations %d\n", ga_num_generations);
  out += strformat("ga_mutation_rate %.4f\n", ga_mutation_rate);
  out += strformat("ga_crossover_rate %.4f\n", ga_crossover_rate);
  out += strformat("sw_max_its %d\n", sw_max_its);
  out += strformat("rmstol %.2f\n", rmstol);
  out += strformat("seed %llu\n", seed);
  out += strformat("ga_run %d\n", ga_runs);
  out += "analysis\n";
  return out;
}

DockingParameterFile DockingParameterFile::parse(std::string_view text) {
  DockingParameterFile dpf;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const auto f = split_ws(line);
    if (f.empty() || f[0][0] == '#') continue;
    if (f[0] == "ligand" && f.size() >= 2) dpf.ligand_file = f[1];
    else if (f[0] == "fld" && f.size() >= 2) {
      std::string fld = f[1];
      const std::string suffix = ".maps.fld";
      if (ends_with(fld, suffix)) fld.resize(fld.size() - suffix.size());
      dpf.receptor_maps_prefix = fld;
    } else if (f[0] == "ga_pop_size" && f.size() >= 2) dpf.ga_pop_size = static_cast<int>(parse_int(f[1], "dpf"));
    else if (f[0] == "ga_num_evals" && f.size() >= 2) dpf.ga_num_evals = parse_int(f[1], "dpf");
    else if (f[0] == "ga_num_generations" && f.size() >= 2) dpf.ga_num_generations = static_cast<int>(parse_int(f[1], "dpf"));
    else if (f[0] == "ga_mutation_rate" && f.size() >= 2) dpf.ga_mutation_rate = parse_double(f[1], "dpf");
    else if (f[0] == "ga_crossover_rate" && f.size() >= 2) dpf.ga_crossover_rate = parse_double(f[1], "dpf");
    else if (f[0] == "sw_max_its" && f.size() >= 2) dpf.sw_max_its = static_cast<int>(parse_int(f[1], "dpf"));
    else if (f[0] == "rmstol" && f.size() >= 2) dpf.rmstol = parse_double(f[1], "dpf");
    else if (f[0] == "seed" && f.size() >= 2) dpf.seed = static_cast<unsigned long long>(parse_int(f[1], "dpf"));
    else if (f[0] == "ga_run" && f.size() >= 2) dpf.ga_runs = static_cast<int>(parse_int(f[1], "dpf"));
  }
  SCIDOCK_REQUIRE(dpf.ga_runs > 0 && dpf.ga_pop_size > 1, "invalid DPF GA parameters");
  return dpf;
}

std::string VinaConfig::to_text() const {
  std::string out;
  out += "receptor = " + receptor_file + "\n";
  out += "ligand = " + ligand_file + "\n";
  out += strformat("center_x = %.3f\ncenter_y = %.3f\ncenter_z = %.3f\n",
                   box.center.x, box.center.y, box.center.z);
  const mol::Vec3 size = box.extent();
  out += strformat("size_x = %.3f\nsize_y = %.3f\nsize_z = %.3f\n", size.x,
                   size.y, size.z);
  out += strformat("exhaustiveness = %d\n", exhaustiveness);
  out += strformat("num_modes = %d\n", num_modes);
  out += strformat("energy_range = %.2f\n", energy_range);
  out += strformat("seed = %llu\n", seed);
  return out;
}

VinaConfig VinaConfig::parse(std::string_view text) {
  VinaConfig cfg;
  std::istringstream in{std::string(text)};
  std::string line;
  mol::Vec3 size{20.0, 20.0, 20.0};
  const double spacing = cfg.box.spacing;
  std::string key, eq, value;
  while (std::getline(in, line)) {
    const auto f = split_ws(line);
    if (f.size() < 3 || f[1] != "=") continue;
    key = f[0];
    value = f[2];
    if (key == "receptor") cfg.receptor_file = value;
    else if (key == "ligand") cfg.ligand_file = value;
    else if (key == "center_x") cfg.box.center.x = parse_double(value, "vina cfg");
    else if (key == "center_y") cfg.box.center.y = parse_double(value, "vina cfg");
    else if (key == "center_z") cfg.box.center.z = parse_double(value, "vina cfg");
    else if (key == "size_x") size.x = parse_double(value, "vina cfg");
    else if (key == "size_y") size.y = parse_double(value, "vina cfg");
    else if (key == "size_z") size.z = parse_double(value, "vina cfg");
    else if (key == "exhaustiveness") cfg.exhaustiveness = static_cast<int>(parse_int(value, "vina cfg"));
    else if (key == "num_modes") cfg.num_modes = static_cast<int>(parse_int(value, "vina cfg"));
    else if (key == "energy_range") cfg.energy_range = parse_double(value, "vina cfg");
    else if (key == "seed") cfg.seed = static_cast<unsigned long long>(parse_int(value, "vina cfg"));
  }
  cfg.box.npts = {static_cast<int>(size.x / spacing) + 1,
                  static_cast<int>(size.y / spacing) + 1,
                  static_cast<int>(size.z / spacing) + 1};
  SCIDOCK_REQUIRE(cfg.exhaustiveness > 0, "invalid Vina exhaustiveness");
  return cfg;
}

}  // namespace scidock::dock
