#pragma once

/// \file prepare.hpp
/// Docking preparation — the C++ equivalent of MGLTools'
/// prepare_ligand4.py (SciDock activity 2) and prepare_receptor4.py
/// (activity 3): perceive chemistry, assign Gasteiger charges and AutoDock
/// types, build the torsion tree, and emit PDBQT.

#include <string>

#include "mol/io_pdbqt.hpp"
#include "mol/molecule.hpp"
#include "mol/torsion.hpp"

namespace scidock::mol {

struct PreparedLigand {
  Molecule molecule;
  TorsionTree torsions;
  std::string pdbqt;   ///< serialised flexible-ligand PDBQT
};

struct PreparedReceptor {
  Molecule molecule;
  std::string pdbqt;   ///< serialised rigid-receptor PDBQT
};

/// Prepare a small-molecule ligand for docking. Throws ActivityError when
/// the ligand contains atoms the force field cannot parameterise.
PreparedLigand prepare_ligand(Molecule ligand);

struct ReceptorPrepareOptions {
  /// The paper found receptors containing Hg put the real preparation
  /// tools into an infinite "looping state"; when this flag is set we
  /// reject them up-front instead (the routine the authors added to
  /// SciCumulus after diagnosing the hang via provenance queries).
  bool reject_unparameterised_atoms = true;
};

/// Prepare a receptor: strip waters, assign charges/types, emit rigid
/// PDBQT. Throws ActivityError on unparameterised atoms (e.g. Hg) when
/// rejection is enabled.
PreparedReceptor prepare_receptor(Molecule receptor,
                                  const ReceptorPrepareOptions& opts = {});

}  // namespace scidock::mol
