file(REMOVE_RECURSE
  "CMakeFiles/scidock_util.dir/error.cpp.o"
  "CMakeFiles/scidock_util.dir/error.cpp.o.d"
  "CMakeFiles/scidock_util.dir/logging.cpp.o"
  "CMakeFiles/scidock_util.dir/logging.cpp.o.d"
  "CMakeFiles/scidock_util.dir/rng.cpp.o"
  "CMakeFiles/scidock_util.dir/rng.cpp.o.d"
  "CMakeFiles/scidock_util.dir/stats.cpp.o"
  "CMakeFiles/scidock_util.dir/stats.cpp.o.d"
  "CMakeFiles/scidock_util.dir/strings.cpp.o"
  "CMakeFiles/scidock_util.dir/strings.cpp.o.d"
  "CMakeFiles/scidock_util.dir/thread_pool.cpp.o"
  "CMakeFiles/scidock_util.dir/thread_pool.cpp.o.d"
  "libscidock_util.a"
  "libscidock_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
