#pragma once

/// \file invariants.hpp
/// Cross-executor invariants checked after any (chaotic or quiet) run.
///
/// Both executors' reports normalise into a RunSummary; the checker then
/// validates the paper's fault-tolerance contract:
///   (a) conservation — every input tuple is either completed or lost,
///       and nothing is lost while the re-execution budget still had
///       headroom (PAPER.md SS IV.B: failed activations are re-executed);
///   (b) provenance consistency — exactly one FINISHED hactivation row
///       per completed tuple-activity, attempt numbers 1..k consecutive
///       with the FINISHED attempt after all FAILED/ABORTED ones,
///       monotone timestamps, and status counts matching the report;
///   (c) replay — identical seeds reproduce byte-identical summaries.

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "prov/prov.hpp"
#include "wf/native_executor.hpp"
#include "wf/sim_executor.hpp"

namespace scidock::chaos {

/// Executor-neutral view of one run. `digest` is a canonical
/// serialisation of everything that must be reproducible from the seed
/// (wall-clock timings are excluded for the native executor).
struct RunSummary {
  std::string executor;            ///< "native" | "sim"
  std::size_t input_tuples = 0;
  long long activations_finished = 0;
  long long activations_failed = 0;
  long long activations_hung = 0;
  long long tuples_completed = 0;
  long long tuples_lost = 0;
  int attempt_budget = 0;          ///< max attempts per stage
  int max_observed_attempt = 0;    ///< highest attempt number that ran
  /// Losses that are by design, not re-execution bugs (pre-aborted
  /// hazards such as the Hg receptors); conservation tolerates these.
  long long expected_hazard_losses = 0;
  std::string digest;
};

/// Summaries. The native digest covers counters plus the sorted output
/// relation; the sim digest additionally covers TET and the full
/// activation record list (the sim is deterministic to the last double).
RunSummary summarize(const wf::SimReport& report,
                     const wf::SimExecutorOptions& options,
                     std::size_t input_tuples);
RunSummary summarize(const wf::NativeReport& report,
                     const wf::NativeExecutorOptions& options,
                     std::size_t input_tuples);

/// Accumulates human-readable violations across any number of checks.
class InvariantChecker {
 public:
  /// Invariant (a). Assumes a cardinality-preserving (Map-only) pipeline.
  bool check_conservation(const RunSummary& summary);

  /// Invariant (b), against the store the run recorded into. `chain_length`
  /// is the number of stages every tuple traverses (Map-only pipeline).
  bool check_provenance(const RunSummary& summary,
                        prov::ProvenanceStore& store,
                        const std::string& workflow_tag, int chain_length);

  /// Invariant (c): two same-seed runs must have identical digests.
  bool check_replay(const RunSummary& first, const RunSummary& second);

  /// Invariant (d), metrics <-> provenance reconciliation: the run's
  /// scidock_executor_* counters must equal SQL counts over the PROV-Wf
  /// store (prov::activation_count_sql and friends) *and* the report.
  /// `metrics` must be a registry used for exactly this run — the
  /// counters are cumulative, so sharing one registry across runs breaks
  /// the equality by design.
  bool check_metrics(const RunSummary& summary,
                     const obs::MetricsRegistry& metrics,
                     prov::ProvenanceStore& store,
                     const std::string& workflow_tag);

  /// Invariant (f), crash-recovery integrity: a store just reopened from
  /// its WAL must be a consistent prefix of the pre-crash history —
  /// recovery pruned nothing (the commit protocol orders dimensions
  /// before facts, so orphans mean a protocol bug), ids are unique,
  /// every fact row's references resolve, statuses are legal, attempt
  /// counters are >= 1 and closed activations have endtime >= starttime.
  /// RUNNING rows are legal here (the crash interrupted them); call
  /// ProvenanceStore::abort_open_activations before resuming the run.
  bool check_recovery(prov::ProvenanceStore& store);

  /// Invariant (e), lock discipline: the runtime lock-order analyzer
  /// (util/lockdep, DESIGN.md §11) recorded no error-severity hazard —
  /// no lock-order inversion, pool self-wait or wait-while-holding —
  /// over everything executed so far in this process. Warnings (e.g. a
  /// long hold) are reported in the violation text but tolerated.
  /// Trivially true when the analyzer is compiled out.
  bool check_lockdep();

  /// Invariant (f), race freedom: the happens-before race analyzer
  /// (util/racer, DESIGN.md §14) recorded no error-severity report — no
  /// RC001/RC002 data race, RC003 unsynchronized publish or RC004 keyed
  /// reduction divergence — over everything executed so far in this
  /// process. Warnings (order-digest-only divergence, i.e. floating-
  /// point summation order) are reported in the violation text but
  /// tolerated. Trivially true when the analyzer is compiled out.
  bool check_racer();

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  /// All violations joined for test failure messages.
  std::string to_string() const;

 private:
  bool fail(std::string message);

  std::vector<std::string> violations_;
};

}  // namespace scidock::chaos
