# Empty dependencies file for scidock_prov.
# This may be replaced when dependencies are built.
