file(REMOVE_RECURSE
  "CMakeFiles/scidock_vfs.dir/vfs.cpp.o"
  "CMakeFiles/scidock_vfs.dir/vfs.cpp.o.d"
  "libscidock_vfs.a"
  "libscidock_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
