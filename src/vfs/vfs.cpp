#include "vfs/vfs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace scidock::vfs {

std::string SharedFileSystem::normalize(std::string_view path) {
  std::string out = "/";
  for (char c : path) {
    if (c == '/' && !out.empty() && out.back() == '/') continue;
    out += c;
  }
  SCIDOCK_REQUIRE(out != "/", "empty path");
  return out;
}

void SharedFileSystem::set_fault_hook(FaultHook hook) {
  MutexLock lock(mutex_);
  fault_hook_ = std::move(hook);
}

void SharedFileSystem::set_torn_write_hook(TornWriteHook hook) {
  MutexLock lock(mutex_);
  torn_write_hook_ = std::move(hook);
}

SharedFileSystem::FaultHook SharedFileSystem::fault_hook_snapshot() const {
  MutexLock lock(mutex_);
  return fault_hook_;
}

SharedFileSystem::TornWriteHook SharedFileSystem::torn_write_hook_snapshot()
    const {
  MutexLock lock(mutex_);
  return torn_write_hook_;
}

void SharedFileSystem::write(std::string_view path, std::string content,
                             double now, std::string_view producer) {
  const std::string key = normalize(path);
  if (const FaultHook hook = fault_hook_snapshot()) hook(FileOp::Write, key);
  bool torn = false;
  std::size_t keep = 0;
  if (const TornWriteHook hook = torn_write_hook_snapshot()) {
    if (const auto t = hook(FileOp::Write, key, content.size());
        t && *t < content.size()) {
      torn = true;
      keep = *t;
    }
  }
  const std::size_t total = content.size();
  if (torn) content.resize(keep);
  MutexLock lock(mutex_);
  bytes_written_ += content.size();
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.info.path < k; });
  if (it != entries_.end() && it->info.path == key) {
    it->info.size = content.size();
    it->info.mtime = now;
    it->info.producer = std::string(producer);
    it->content = std::move(content);
  } else {
    Entry entry;
    entry.info = FileInfo{key, content.size(), now, std::string(producer)};
    entry.content = std::move(content);
    entries_.insert(it, std::move(entry));
  }
  if (torn) throw TornWriteError(key, keep, total);
}

void SharedFileSystem::append(std::string_view path, std::string_view data,
                              double now, std::string_view producer) {
  const std::string key = normalize(path);
  if (const FaultHook hook = fault_hook_snapshot()) hook(FileOp::Append, key);
  bool torn = false;
  std::size_t keep = 0;
  if (const TornWriteHook hook = torn_write_hook_snapshot()) {
    if (const auto t = hook(FileOp::Append, key, data.size());
        t && *t < data.size()) {
      torn = true;
      keep = *t;
    }
  }
  const std::size_t total = data.size();
  const std::string_view applied = torn ? data.substr(0, keep) : data;
  MutexLock lock(mutex_);
  bytes_written_ += applied.size();
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.info.path < k; });
  if (it != entries_.end() && it->info.path == key) {
    it->content.append(applied);
    it->info.size = it->content.size();
    it->info.mtime = now;
    if (!producer.empty()) it->info.producer = std::string(producer);
  } else {
    Entry entry;
    entry.info = FileInfo{key, applied.size(), now, std::string(producer)};
    entry.content = std::string(applied);
    entries_.insert(it, std::move(entry));
  }
  if (torn) throw TornWriteError(key, keep, total);
}

void SharedFileSystem::rename(std::string_view from, std::string_view to) {
  const std::string src = normalize(from);
  const std::string dst = normalize(to);
  if (const FaultHook hook = fault_hook_snapshot()) hook(FileOp::Rename, src);
  if (src == dst) return;
  MutexLock lock(mutex_);
  const auto find = [this](const std::string& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, const std::string& k) { return e.info.path < k; });
  };
  auto sit = find(src);
  if (sit == entries_.end() || sit->info.path != src) {
    throw NotFoundError("file", src);
  }
  Entry moved = std::move(*sit);
  entries_.erase(sit);
  moved.info.path = dst;
  auto dit = find(dst);
  if (dit != entries_.end() && dit->info.path == dst) {
    *dit = std::move(moved);
  } else {
    entries_.insert(dit, std::move(moved));
  }
}

void SharedFileSystem::sync(std::string_view path) {
  const std::string key = normalize(path);
  if (const FaultHook hook = fault_hook_snapshot()) hook(FileOp::Sync, key);
  MutexLock lock(mutex_);
  ++sync_count_;
}

std::string SharedFileSystem::read(std::string_view path) const {
  const std::string key = normalize(path);
  if (const FaultHook hook = fault_hook_snapshot()) hook(FileOp::Read, key);
  MutexLock lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.info.path < k; });
  if (it == entries_.end() || it->info.path != key) {
    throw NotFoundError("file", key);
  }
  bytes_read_ += it->content.size();
  return it->content;
}

bool SharedFileSystem::exists(std::string_view path) const {
  const std::string key = normalize(path);
  MutexLock lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.info.path < k; });
  return it != entries_.end() && it->info.path == key;
}

std::optional<FileInfo> SharedFileSystem::stat(std::string_view path) const {
  const std::string key = normalize(path);
  MutexLock lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.info.path < k; });
  if (it == entries_.end() || it->info.path != key) return std::nullopt;
  return it->info;
}

void SharedFileSystem::remove(std::string_view path) {
  const std::string key = normalize(path);
  MutexLock lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.info.path < k; });
  if (it == entries_.end() || it->info.path != key) {
    throw NotFoundError("file", key);
  }
  entries_.erase(it);
}

std::vector<FileInfo> SharedFileSystem::list(std::string_view dir_prefix) const {
  const std::string key =
      (dir_prefix.empty() || dir_prefix == "/") ? "/" : normalize(dir_prefix);
  MutexLock lock(mutex_);
  std::vector<FileInfo> out;
  for (const Entry& e : entries_) {
    if (e.info.path.starts_with(key)) out.push_back(e.info);
  }
  return out;
}

std::size_t SharedFileSystem::file_count() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t SharedFileSystem::total_bytes() const {
  MutexLock lock(mutex_);
  std::size_t total = 0;
  for (const Entry& e : entries_) total += e.info.size;
  return total;
}

std::size_t SharedFileSystem::bytes_written() const {
  MutexLock lock(mutex_);
  return bytes_written_;
}

std::size_t SharedFileSystem::bytes_read() const {
  MutexLock lock(mutex_);
  return bytes_read_;
}

std::size_t SharedFileSystem::sync_count() const {
  MutexLock lock(mutex_);
  return sync_count_;
}

std::pair<std::string, std::string> split_path(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string_view::npos) return {"/", std::string(path)};
  return {std::string(path.substr(0, slash + 1)),
          std::string(path.substr(slash + 1))};
}

}  // namespace scidock::vfs
