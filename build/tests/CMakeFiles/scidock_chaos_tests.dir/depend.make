# Empty dependencies file for scidock_chaos_tests.
# This may be replaced when dependencies are built.
