file(REMOVE_RECURSE
  "libscidock_wf.a"
)
