SELECT ligand, count(*) pairs, sum(feb < 0) favorable,
       min(feb) best_feb
FROM rel
GROUP BY ligand
ORDER BY ligand
