#include "wf/template.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace scidock::wf {

namespace {

/// Scan for %TAG% spans; `fn(tag)` returns the replacement text.
template <typename F>
std::string scan(std::string_view text, F&& fn) {
  std::string out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '%') {
      out += text[i++];
      continue;
    }
    if (i + 1 < text.size() && text[i + 1] == '%') {  // escaped percent
      out += '%';
      i += 2;
      continue;
    }
    const std::size_t end = text.find('%', i + 1);
    if (end == std::string_view::npos) {
      throw ParseError("template", "unterminated %TAG% placeholder");
    }
    const std::string tag(text.substr(i + 1, end - i - 1));
    if (tag.empty()) throw ParseError("template", "empty %% placeholder");
    out += fn(tag);
    i = end + 1;
  }
  return out;
}

}  // namespace

std::vector<std::string> template_tags(std::string_view template_text) {
  std::vector<std::string> tags;
  scan(template_text, [&tags](const std::string& tag) {
    if (std::find(tags.begin(), tags.end(), tag) == tags.end()) {
      tags.push_back(tag);
    }
    return std::string{};
  });
  return tags;
}

std::string instantiate_template(std::string_view template_text,
                                 const Tuple& tuple) {
  return scan(template_text,
              [&tuple](const std::string& tag) { return tuple.require(tag); });
}

}  // namespace scidock::wf
