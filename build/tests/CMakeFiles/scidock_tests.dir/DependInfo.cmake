
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/scidock_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/calibration_test.cpp" "tests/CMakeFiles/scidock_tests.dir/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/calibration_test.cpp.o.d"
  "/root/repo/tests/cloud_test.cpp" "tests/CMakeFiles/scidock_tests.dir/cloud_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/cloud_test.cpp.o.d"
  "/root/repo/tests/data_test.cpp" "tests/CMakeFiles/scidock_tests.dir/data_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/data_test.cpp.o.d"
  "/root/repo/tests/dock_engine_test.cpp" "tests/CMakeFiles/scidock_tests.dir/dock_engine_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/dock_engine_test.cpp.o.d"
  "/root/repo/tests/dock_scoring_test.cpp" "tests/CMakeFiles/scidock_tests.dir/dock_scoring_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/dock_scoring_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/scidock_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/executor_test.cpp" "tests/CMakeFiles/scidock_tests.dir/executor_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/executor_test.cpp.o.d"
  "/root/repo/tests/geometry_test.cpp" "tests/CMakeFiles/scidock_tests.dir/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/geometry_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/scidock_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/mol_test.cpp" "tests/CMakeFiles/scidock_tests.dir/mol_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/mol_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/scidock_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/prov_test.cpp" "tests/CMakeFiles/scidock_tests.dir/prov_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/prov_test.cpp.o.d"
  "/root/repo/tests/scidock_integration_test.cpp" "tests/CMakeFiles/scidock_tests.dir/scidock_integration_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/scidock_integration_test.cpp.o.d"
  "/root/repo/tests/sql_test.cpp" "tests/CMakeFiles/scidock_tests.dir/sql_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/sql_test.cpp.o.d"
  "/root/repo/tests/thread_pool_stress_test.cpp" "tests/CMakeFiles/scidock_tests.dir/thread_pool_stress_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/thread_pool_stress_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/scidock_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/vfs_test.cpp" "tests/CMakeFiles/scidock_tests.dir/vfs_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/vfs_test.cpp.o.d"
  "/root/repo/tests/wf_test.cpp" "tests/CMakeFiles/scidock_tests.dir/wf_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/wf_test.cpp.o.d"
  "/root/repo/tests/xml_test.cpp" "tests/CMakeFiles/scidock_tests.dir/xml_test.cpp.o" "gcc" "tests/CMakeFiles/scidock_tests.dir/xml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scidock/CMakeFiles/scidock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/scidock_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dock/CMakeFiles/scidock_dock.dir/DependInfo.cmake"
  "/root/repo/build/src/mol/CMakeFiles/scidock_mol.dir/DependInfo.cmake"
  "/root/repo/build/src/wf/CMakeFiles/scidock_wf.dir/DependInfo.cmake"
  "/root/repo/build/src/prov/CMakeFiles/scidock_prov.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/scidock_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/scidock_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/scidock_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/scidock_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scidock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
