// Tests for the Table 2 dataset and the synthetic structure generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generator.hpp"
#include "data/table2.hpp"
#include "mol/io_pdb.hpp"
#include "mol/io_sdf.hpp"
#include "mol/prepare.hpp"
#include "mol/torsion.hpp"
#include "vfs/vfs.hpp"

namespace scidock::data {
namespace {

TEST(Table2, DatasetCardinalityMatchesPaper) {
  EXPECT_EQ(table2_receptors().size(), 238u);
  EXPECT_EQ(table2_ligands().size(), 42u);
  EXPECT_EQ(table3_ligands().size(), 4u);
  // 238 x 42 = 9996 ~ the paper's "10,000 receptor-ligand pairs".
  EXPECT_EQ(table2_receptors().size() * table2_ligands().size(), 9996u);
}

TEST(Table2, CodesAreUniqueAndWellFormed) {
  std::set<std::string> unique(table2_receptors().begin(),
                               table2_receptors().end());
  EXPECT_EQ(unique.size(), table2_receptors().size());
  for (const std::string& code : table2_receptors()) {
    EXPECT_EQ(code.size(), 4u) << code;  // PDB ids are four characters
  }
  std::set<std::string> lig(table2_ligands().begin(), table2_ligands().end());
  EXPECT_EQ(lig.size(), table2_ligands().size());
}

TEST(Table2, PaperLandmarksPresent) {
  // The receptors/ligands the paper names explicitly.
  const auto& recs = table2_receptors();
  for (const char* code : {"2HHN", "1S4V", "1HUC", "9PAP", "1AEC"}) {
    EXPECT_NE(std::find(recs.begin(), recs.end(), code), recs.end()) << code;
  }
  const auto& ligs = table2_ligands();
  for (const char* code : {"042", "074", "0D6", "0E6"}) {
    EXPECT_NE(std::find(ligs.begin(), ligs.end(), code), ligs.end()) << code;
  }
}

TEST(Generator, ReceptorsAreDeterministic) {
  const mol::Molecule a = make_receptor("2HHN");
  const mol::Molecule b = make_receptor("2HHN");
  ASSERT_EQ(a.atom_count(), b.atom_count());
  for (int i = 0; i < a.atom_count(); ++i) {
    EXPECT_EQ(a.atom(i).pos, b.atom(i).pos);
    EXPECT_EQ(a.atom(i).element, b.atom(i).element);
  }
  EXPECT_NE(make_receptor("1HUC").atom_count(), 0);
}

TEST(Generator, DifferentCodesGiveDifferentStructures) {
  const mol::Molecule a = make_receptor("2HHN");
  const mol::Molecule b = make_receptor("1S4V");
  EXPECT_TRUE(a.atom_count() != b.atom_count() ||
              a.atom(0).pos != b.atom(0).pos);
}

TEST(Generator, ReceptorSizesSpanTheConfiguredRange) {
  GeneratorOptions opts;
  int lo = 1 << 30, hi = 0;
  for (const std::string& code : table2_receptors()) {
    const int n = receptor_residue_count(code, opts);
    EXPECT_GE(n, opts.min_residues);
    EXPECT_LE(n, opts.max_residues);
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_LT(lo, vina_size_threshold(opts));  // some AD4-sized
  EXPECT_GT(hi, vina_size_threshold(opts));  // some Vina-sized
}

TEST(Generator, ReceptorHasOpenCavity) {
  GeneratorOptions opts;
  const mol::Molecule rec = make_receptor("1AIM", opts);
  // No protein atom intrudes into the cavity except lining jitter.
  int inside = 0;
  for (const mol::Atom& a : rec.atoms()) {
    if (a.pos.norm() < opts.cavity_radius) ++inside;
  }
  EXPECT_LT(inside, rec.atom_count() / 20);
}

TEST(Generator, HgSubsetIsDeterministicAndSmall) {
  GeneratorOptions opts;
  int flagged = 0;
  for (const std::string& code : table2_receptors()) {
    if (receptor_has_hg(code, opts)) {
      ++flagged;
      EXPECT_TRUE(make_receptor(code, opts).contains_element(mol::Element::Hg));
    }
  }
  EXPECT_GT(flagged, 0);
  EXPECT_LT(flagged, 24);  // ~3% nominal of 238, generous upper bound
}

TEST(Generator, LigandsAreDockablePreparable) {
  for (const std::string& code : table3_ligands()) {
    mol::Molecule lig = make_ligand(code);
    EXPECT_GE(lig.heavy_atom_count(), 8);
    // Full preparation must succeed: typing, charges, torsion tree, PDBQT.
    const mol::PreparedLigand prep = mol::prepare_ligand(std::move(lig));
    EXPECT_GE(prep.torsions.torsion_count(), 0);
    EXPECT_FALSE(prep.pdbqt.empty());
  }
}

TEST(Generator, LigandsHaveReasonableBondLengths) {
  mol::Molecule lig = make_ligand("0E6");
  for (const mol::Bond& b : lig.bonds()) {
    const double d = mol::distance(lig.atom(b.a).pos, lig.atom(b.b).pos);
    EXPECT_GT(d, 0.7) << "bond " << b.a << "-" << b.b;
    EXPECT_LT(d, 2.2) << "bond " << b.a << "-" << b.b;
  }
}

TEST(Generator, LigandsSitInTheirOwnFrame) {
  // SDF depositions are tens of Å away from the receptor frame origin
  // (this is what makes AD4's reference RMSD large, as in Table 3).
  const mol::Molecule lig = make_ligand("042");
  EXPECT_GT(lig.center().norm(), 30.0);
}

TEST(Generator, StagedFilesParseBack) {
  vfs::SharedFileSystem fs;
  const int staged = stage_dataset(fs, "/exp", {"2HHN", "1HUC"}, {"042"});
  EXPECT_EQ(staged, 3);
  const mol::Molecule rec = mol::read_pdb(fs.read("/exp/input/2HHN.pdb"), "2HHN");
  EXPECT_GT(rec.atom_count(), 50);
  const mol::Molecule lig = mol::read_sdf(fs.read("/exp/input/042.sdf"), "042");
  EXPECT_GT(lig.atom_count(), 6);
  EXPECT_GT(lig.bond_count(), 6);
}

TEST(Generator, PairsRelationShape) {
  GeneratorOptions opts;
  const wf::Relation rel = build_pairs_relation({"2HHN", "1HUC"}, {"042", "074"},
                                                "/exp", 0, opts);
  ASSERT_EQ(rel.size(), 4u);
  const wf::Tuple& first = rel.tuples()[0];
  // Ligand-major order: all receptors for ligand 042 first.
  EXPECT_EQ(first.require("ligand"), "042");
  EXPECT_EQ(first.require("pair"), "042_2HHN");
  EXPECT_EQ(first.require("receptor_file"), "/exp/input/2HHN.pdb");
  EXPECT_TRUE(first.require("engine") == "ad4" ||
              first.require("engine") == "vina");
  EXPECT_GT(first.get_double("workload", 0.0), 0.0);
}

TEST(Generator, PairsRelationHonoursLimit) {
  const wf::Relation rel = build_pairs_relation(
      table2_receptors(), table2_ligands(), "/exp", 1000);
  EXPECT_EQ(rel.size(), 1000u);
  // First 1000 pairs = 238 receptors x ligands {042, 074, 0D6, 0E6} + 48
  // of the fifth; the Table 3 analysis uses the first four ligands.
  std::set<std::string> ligands;
  for (std::size_t i = 0; i < 952; ++i) {
    ligands.insert(rel.tuples()[i].require("ligand"));
  }
  EXPECT_EQ(ligands, std::set<std::string>({"042", "074", "0D6", "0E6"}));
}

TEST(Generator, EngineRoutingMatchesThreshold) {
  GeneratorOptions opts;
  const wf::Relation rel = build_pairs_relation(table2_receptors(), {"042"},
                                                "/exp", 0, opts);
  for (const wf::Tuple& t : rel.tuples()) {
    const int residues = std::stoi(t.require("residues"));
    const std::string expected =
        residues > vina_size_threshold(opts) ? "vina" : "ad4";
    EXPECT_EQ(t.require("engine"), expected) << t.require("receptor");
  }
}

}  // namespace
}  // namespace scidock::data
