file(REMOVE_RECURSE
  "libscidock_vfs.a"
)
