#include "dock/scoring.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/error.hpp"

namespace scidock::dock {

double mehler_solmajer_dielectric(double r) {
  // eps(r) = A + B / (1 + k e^(-lambda B r)), Mehler & Solmajer 1991.
  constexpr double kA = -8.5525;
  constexpr double kB = 78.4 - kA;
  constexpr double kK = 7.7839;
  constexpr double kLambda = 0.003627;
  return kA + kB / (1.0 + kK * std::exp(-kLambda * kB * r));
}

namespace {

constexpr double kMinDistance = 0.5;  ///< clamp to avoid singularities

bool is_hbond_pair(const mol::AdTypeParams& a, const mol::AdTypeParams& b) {
  return (a.hbond_donor && b.hbond_acceptor) ||
         (a.hbond_acceptor && b.hbond_donor);
}

}  // namespace

double ad4_vdw_hbond(mol::AdType ti, mol::AdType tj, double r,
                     const Ad4Weights& w) {
  const auto& pi = mol::ad_type_params(ti);
  const auto& pj = mol::ad_type_params(tj);
  r = std::max(r, kMinDistance);

  // Lorentz-Berthelot-style combination as AD4 uses on its parameter file.
  const double req = 0.5 * (pi.rii + pj.rii);
  const double eps = std::sqrt(pi.epsii * pj.epsii);

  if (is_hbond_pair(pi, pj)) {
    // 12-10 hydrogen-bond well, depth 5 kcal/mol at 1.9 Å (AD4 convention).
    constexpr double kHbRadius = 1.9;
    constexpr double kHbDepth = 5.0;
    const double ratio = kHbRadius / r;
    const double r10 = std::pow(ratio, 10);
    const double r12 = r10 * ratio * ratio;
    const double e = kHbDepth * (5.0 * r12 - 6.0 * r10);
    return w.hbond * std::min(e, 100.0);
  }
  const double ratio = req / r;
  const double r6 = std::pow(ratio, 6);
  const double r12 = r6 * r6;
  const double e = eps * (r12 - 2.0 * r6);
  // AD4 clamps the repulsive wall (EINTCLAMP) so a single clash cannot
  // produce astronomically large energies that break the GA.
  return w.vdw * std::min(e, 100.0);
}

double ad4_pair_energy(mol::AdType ti, double qi, mol::AdType tj, double qj,
                       double r, const Ad4Weights& w) {
  r = std::max(r, kMinDistance);
  const auto& pi = mol::ad_type_params(ti);
  const auto& pj = mol::ad_type_params(tj);

  double e = ad4_vdw_hbond(ti, tj, r, w);

  // Screened Coulomb: 332.06 converts e^2/Å to kcal/mol.
  constexpr double kCoulomb = 332.06;
  e += w.estat * kCoulomb * qi * qj / (mehler_solmajer_dielectric(r) * r);

  // Gaussian-weighted pairwise desolvation (Stouten-style, sigma 3.6 Å).
  constexpr double kSigma = 3.6;
  constexpr double kQasp = 0.01097;  ///< charge-dependent solvation factor
  const double gauss = std::exp(-(r * r) / (2.0 * kSigma * kSigma));
  const double solv =
      (pi.solpar + kQasp * std::abs(qi)) * pj.volume +
      (pj.solpar + kQasp * std::abs(qj)) * pi.volume;
  e += w.desolv * solv * gauss;
  return e;
}

double vina_pair_energy(mol::AdType ti, mol::AdType tj, double r,
                        const VinaWeights& w) {
  const mol::VinaKind ki = mol::vina_kind(ti);
  const mol::VinaKind kj = mol::vina_kind(tj);
  if (ki.skip || kj.skip) return 0.0;
  constexpr double kCutoff = 8.0;
  if (r >= kCutoff) return 0.0;

  const double d = r - (ki.radius + kj.radius);  // surface distance

  double e = 0.0;
  e += w.gauss1 * std::exp(-std::pow(d / 0.5, 2));
  e += w.gauss2 * std::exp(-std::pow((d - 3.0) / 2.0, 2));
  if (d < 0.0) e += w.repulsion * d * d;

  if (ki.hydrophobic && kj.hydrophobic) {
    // Linear ramp: full weight below 0.5 Å surface distance, zero above 1.5.
    double f = 0.0;
    if (d < 0.5) f = 1.0;
    else if (d < 1.5) f = 1.5 - d;
    e += w.hydrophobic * f;
  }
  if ((ki.donor && kj.acceptor) || (ki.acceptor && kj.donor)) {
    // Linear ramp: full weight below -0.7 Å, zero above 0.
    double f = 0.0;
    if (d < -0.7) f = 1.0;
    else if (d < 0.0) f = -d / 0.7;
    e += w.hbond * f;
  }
  return e;
}

double vina_affinity(double intermolecular_energy, int n_rot,
                     const VinaWeights& w) {
  return intermolecular_energy / (1.0 + w.rot * static_cast<double>(n_rot));
}

NeighborList::NeighborList(const mol::Molecule& receptor, double cutoff)
    : cutoff_(cutoff), cutoff_sq_(cutoff * cutoff) {
  SCIDOCK_ASSERT(cutoff > 0);
  positions_.reserve(static_cast<std::size_t>(receptor.atom_count()));
  for (const mol::Atom& a : receptor.atoms()) positions_.push_back(a.pos);
  for (int i = 0; i < receptor.atom_count(); ++i) {
    const CellKey c = key_of(positions_[static_cast<std::size_t>(i)]);
    cells_[pack(c.x, c.y, c.z)].push_back(i);
  }
}

NeighborList::CellKey NeighborList::key_of(const mol::Vec3& p) const {
  return {static_cast<long long>(std::floor(p.x / cutoff_)),
          static_cast<long long>(std::floor(p.y / cutoff_)),
          static_cast<long long>(std::floor(p.z / cutoff_))};
}

std::uint64_t NeighborList::pack(long long x, long long y, long long z) {
  // 21 bits per signed coordinate: |coord| < 2^20 cells covers +-8000 km at
  // an 8 Å cutoff, far beyond any molecular system.
  const auto fold = [](long long v) {
    return static_cast<std::uint64_t>(v + (1LL << 20)) & ((1ULL << 21) - 1);
  };
  return fold(x) | (fold(y) << 21) | (fold(z) << 42);
}

std::vector<std::pair<int, int>> intramolecular_pairs(const mol::Molecule& ligand) {
  SCIDOCK_ASSERT_MSG(ligand.perceived(), "perceive() ligand before intramolecular_pairs()");
  const int n = ligand.atom_count();
  // Bond-distance BFS per atom; pairs at graph distance >= 3 interact.
  std::vector<std::pair<int, int>> pairs;
  std::vector<int> dist(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::fill(dist.begin(), dist.end(), -1);
    std::deque<int> queue{i};
    dist[static_cast<std::size_t>(i)] = 0;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      if (dist[static_cast<std::size_t>(u)] >= 3) continue;  // only need to prove < 3
      for (int v : ligand.neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] == -1) {
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
    for (int j = i + 1; j < n; ++j) {
      if (dist[static_cast<std::size_t>(j)] == -1 || dist[static_cast<std::size_t>(j)] >= 3) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

}  // namespace scidock::dock
