#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"  // fnv1a64
#include "util/strings.hpp"

namespace scidock::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto ok_first = [](char c) { return (c >= 'a' && c <= 'z') || c == '_'; };
  auto ok_rest = [&ok_first](char c) {
    return ok_first(c) || (c >= '0' && c <= '9');
  };
  if (!ok_first(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), ok_rest);
}

}  // namespace

// ---------------------------------------------------------------- histogram

HistogramMetric::HistogramMetric(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  SCIDOCK_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "histogram bounds must be strictly increasing");
}

void HistogramMetric::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

long long HistogramMetric::bucket_value(std::size_t i) const {
  return counts_[i].load(std::memory_order_relaxed);
}

double HistogramMetric::upper_bound(std::size_t i) const {
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

std::vector<double> HistogramMetric::default_seconds_bounds() {
  // Log-spaced: 1ms activations (sim metadata ops) up to the paper's
  // multi-minute docking runs and 300s hang watchdog.
  return {0.001, 0.004, 0.016, 0.064, 0.25, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0};
}

// ----------------------------------------------------------------- registry

const MetricsRegistry::Shard& MetricsRegistry::shard_for(
    std::string_view name) const {
  return shards_[fnv1a64(name) % kShards];
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(std::string_view name) {
  return shards_[fnv1a64(name) % kShards];
}

void MetricsRegistry::validate_name(const Shard& shard, std::string_view name,
                                    std::string_view kind) {
  SCIDOCK_REQUIRE(valid_metric_name(name),
                  "metric name '" + std::string(name) +
                      "' breaks the [a-z_][a-z0-9_]* convention");
  const bool as_counter = shard.counters.find(name) != shard.counters.end();
  const bool as_gauge = shard.gauges.find(name) != shard.gauges.end();
  const bool as_histogram =
      shard.histograms.find(name) != shard.histograms.end();
  const bool clash = (as_counter && kind != "counter") ||
                     (as_gauge && kind != "gauge") ||
                     (as_histogram && kind != "histogram");
  SCIDOCK_REQUIRE(!clash, "metric '" + std::string(name) +
                              "' already registered as a different kind");
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  Shard& shard = shard_for(name);
  MutexLock lock(shard.mutex);
  validate_name(shard, name, "counter");
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    it = shard.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
    if (!help.empty()) shard.help.emplace(std::string(name), std::string(help));
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  Shard& shard = shard_for(name);
  MutexLock lock(shard.mutex);
  validate_name(shard, name, "gauge");
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    it = shard.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
    if (!help.empty()) shard.help.emplace(std::string(name), std::string(help));
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            std::vector<double> upper_bounds,
                                            std::string_view help) {
  if (upper_bounds.empty()) {
    upper_bounds = HistogramMetric::default_seconds_bounds();
  }
  Shard& shard = shard_for(name);
  MutexLock lock(shard.mutex);
  validate_name(shard, name, "histogram");
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms
             .emplace(std::string(name),
                      std::make_unique<HistogramMetric>(std::move(upper_bounds)))
             .first;
    if (!help.empty()) shard.help.emplace(std::string(name), std::string(help));
  }
  return *it->second;
}

long long MetricsRegistry::counter_value(std::string_view name) const {
  const Shard& shard = shard_for(name);
  MutexLock lock(shard.mutex);
  const auto it = shard.counters.find(name);
  return it == shard.counters.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Shard& shard = shard_for(name);
  MutexLock lock(shard.mutex);
  const auto it = shard.gauges.find(name);
  return it == shard.gauges.end() ? 0.0 : it->second->value();
}

long long MetricsRegistry::histogram_count(std::string_view name) const {
  const Shard& shard = shard_for(name);
  MutexLock lock(shard.mutex);
  const auto it = shard.histograms.find(name);
  return it == shard.histograms.end() ? 0 : it->second->count();
}

std::size_t MetricsRegistry::series_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    n += shard.counters.size() + shard.gauges.size() + shard.histograms.size();
  }
  return n;
}

std::string MetricsRegistry::to_prometheus_text() const {
  // Collect (name, rendered block) across shards, then sort by name so
  // shard hashing never leaks into the output.
  std::vector<std::pair<std::string, std::string>> blocks;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    // Copy of the shard's help map access, valid under the shard lock.
    const auto help_line = [](const auto& help_map,
                              const std::string& name) -> std::string {
      const auto it = help_map.find(name);
      if (it == help_map.end()) return "";
      return "# HELP " + name + " " + it->second + "\n";
    };
    for (const auto& [name, c] : shard.counters) {
      blocks.emplace_back(name, help_line(shard.help, name) + "# TYPE " +
                                    name + " counter\n" +
                                    strformat("%s %lld\n", name.c_str(),
                                              c->value()));
    }
    for (const auto& [name, g] : shard.gauges) {
      blocks.emplace_back(name, help_line(shard.help, name) + "# TYPE " +
                                    name + " gauge\n" +
                                    strformat("%s %.17g\n", name.c_str(),
                                              g->value()));
    }
    for (const auto& [name, h] : shard.histograms) {
      std::string block =
          help_line(shard.help, name) + "# TYPE " + name + " histogram\n";
      long long cumulative = 0;
      for (std::size_t i = 0; i < h->bucket_count(); ++i) {
        cumulative += h->bucket_value(i);
        const double ub = h->upper_bound(i);
        const std::string le =
            std::isinf(ub) ? std::string("+Inf") : strformat("%g", ub);
        block += strformat("%s_bucket{le=\"%s\"} %lld\n", name.c_str(),
                           le.c_str(), cumulative);
      }
      block += strformat("%s_sum %.17g\n", name.c_str(), h->sum());
      block += strformat("%s_count %lld\n", name.c_str(), h->count());
      blocks.emplace_back(name, std::move(block));
    }
  }
  std::sort(blocks.begin(), blocks.end());
  std::string out;
  for (auto& [name, block] : blocks) out += block;
  return out;
}

}  // namespace scidock::obs
