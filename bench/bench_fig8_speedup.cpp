// Figure 8: speedup of SciDock vs virtual cores — near-linear to 32
// cores, ~13x at 16 cores, degradation beyond 32 as the greedy
// scheduler's planning time stops being hidden by per-core work.

#include <cstdio>

#include "bench_common.hpp"
#include "util/strings.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: speedup vs virtual cores", "Figure 8");

  const int pairs = bench::env_int("SCIDOCK_SCALING_PAIRS", 9996);
  std::printf("workload: %d pairs; speedup vs the 1-core-equivalent serial "
              "execution\n\n", pairs);

  std::printf("%6s | %18s | %18s\n", "cores", "speedup (AD4)", "speedup (Vina)");
  std::printf("-------+--------------------+-------------------\n");
  const bench::Sweep ad4 = bench::run_scaling_sweep(
      core::EngineMode::ForceAd4, static_cast<std::size_t>(pairs),
      bench::paper_core_counts());
  const bench::Sweep vina = bench::run_scaling_sweep(
      core::EngineMode::ForceVina, static_cast<std::size_t>(pairs),
      bench::paper_core_counts());
  for (std::size_t i = 0; i < ad4.points.size(); ++i) {
    std::printf("%6d | %18.1f | %18.1f\n", ad4.points[i].cores,
                ad4.points[i].speedup_vs_serial,
                vina.points[i].speedup_vs_serial);
  }

  auto speedup_at = [](const bench::Sweep& s, int cores) {
    for (const bench::SweepPoint& pt : s.points) {
      if (pt.cores == cores) return pt.speedup_vs_serial;
    }
    return 0.0;
  };

  std::printf("\npaper-vs-measured (shape targets):\n");
  bench::print_compare("speedup @ 16 cores", "~13x",
                       strformat("AD4 %.1fx / Vina %.1fx",
                                 speedup_at(ad4, 16), speedup_at(vina, 16)));
  bench::print_compare("near-linear 2 -> 32 cores", "yes",
                       speedup_at(ad4, 32) / 32.0 > 0.7 ? "yes" : "NO");
  bench::print_compare(
      "degradation past 32 cores but still gaining", "yes",
      (speedup_at(ad4, 128) > speedup_at(ad4, 96) &&
       speedup_at(ad4, 128) / 128.0 < speedup_at(ad4, 32) / 32.0)
          ? "yes"
          : "NO");
  return 0;
}
