-- reconciles: scidock_executor_activations_stated_total
SELECT count(*) FROM hactivation WHERE wkfid = 1
