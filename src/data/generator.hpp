#pragma once

/// \file generator.hpp
/// Synthetic structure generation — the substitution for RCSB-PDB.
/// Every structure is a deterministic function of its Table 2 code, so
/// the full 238 × 42 dataset reproduces bit-for-bit across runs and
/// machines. Receptors are compact poly-residue globules with a carved
/// binding cavity; ligands are branched small molecules with rings and
/// rotatable bonds. Both are emitted in the real file formats (PDB / SDF)
/// the workflow's first activities parse.

#include <string>
#include <string_view>

#include "mol/molecule.hpp"
#include "vfs/vfs.hpp"
#include "wf/relation.hpp"

namespace scidock::data {

struct GeneratorOptions {
  /// Residue-count range for receptors (size drawn per code). The paper's
  /// receptors span small to "large and flexible"; the docking filter
  /// splits on this.
  int min_residues = 24;
  int max_residues = 96;
  /// Heavy-atom range for ligands.
  int min_ligand_atoms = 8;
  int max_ligand_atoms = 28;
  /// Fraction of receptors that carry an Hg atom (the paper's pathologic
  /// structures that hang preparation). Applied deterministically by code
  /// hash, so the same receptors are always affected.
  double hg_fraction = 0.03;
  /// Binding-cavity radius carved at the receptor centre, Å.
  double cavity_radius = 6.0;
};

/// Deterministic receptor for a PDB code. The molecule has residues with
/// backbone + side-chain atoms, occasional HETATM waters, and (for the
/// hg-flagged subset) a mercury ion.
mol::Molecule make_receptor(std::string_view code,
                            const GeneratorOptions& opts = {});

/// Deterministic ligand for a het code.
mol::Molecule make_ligand(std::string_view code,
                          const GeneratorOptions& opts = {});

/// Whether this receptor code belongs to the deterministic Hg subset.
bool receptor_has_hg(std::string_view code, const GeneratorOptions& opts = {});

/// Residue count the generator will use for a code (the "size" the
/// docking filter routes on, known without building the structure).
int receptor_residue_count(std::string_view code,
                           const GeneratorOptions& opts = {});

/// Receptors whose residue count exceeds this go to Vina (Scenario II).
int vina_size_threshold(const GeneratorOptions& opts = {});

/// Write `receptors` (PDB) and `ligands` (SDF) into the shared FS under
/// `<expdir>/input/`; returns the number of files staged.
int stage_dataset(vfs::SharedFileSystem& fs, std::string_view expdir,
                  const std::vector<std::string>& receptors,
                  const std::vector<std::string>& ligands,
                  const GeneratorOptions& opts = {});

/// Build the workflow input relation for the cross product of the first
/// `max_pairs` (receptor, ligand) combinations (0 = all). Fields:
///   pair, receptor, ligand, receptor_file, ligand_file, residues,
///   engine (ad4|vina, precomputed routing), workload (duration scale),
///   hg (0|1).
wf::Relation build_pairs_relation(const std::vector<std::string>& receptors,
                                  const std::vector<std::string>& ligands,
                                  std::string_view expdir,
                                  std::size_t max_pairs = 0,
                                  const GeneratorOptions& opts = {});

}  // namespace scidock::data
