#pragma once

/// \file cluster.hpp
/// RMSD-based conformational clustering, as AD4 applies to its GA runs
/// before reporting the clustering histogram in the .dlg file.

#include <vector>

#include "dock/engine.hpp"

namespace scidock::dock {

/// Greedy leader clustering: conformations are visited best-energy-first;
/// each joins the first existing cluster whose leader is within
/// `rmsd_tolerance` Å, else founds a new cluster. Sets `cluster` on every
/// conformation (0 = cluster with the best energy) and returns the number
/// of clusters.
int cluster_conformations(std::vector<Conformation>& conformations,
                          double rmsd_tolerance = 2.0);

}  // namespace scidock::dock
