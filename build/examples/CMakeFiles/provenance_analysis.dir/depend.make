# Empty dependencies file for provenance_analysis.
# This may be replaced when dependencies are built.
