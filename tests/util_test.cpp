// Unit tests for scidock_util: RNG, statistics, strings, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace scidock {
namespace {

// ---------------------------------------------------------------- RNG

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng f1 = parent.fork("stream-a");
  Rng f2 = parent.fork("stream-a");
  Rng f3 = parent.fork("stream-b");
  EXPECT_EQ(f1(), f2());
  EXPECT_NE(Rng(7).fork("stream-a")(), f3());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsInRangeAndCoversAllValues) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(42);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  Rng rng(42);
  const double mu = 1.0, sigma = 0.5;
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.lognormal(mu, sigma));
  EXPECT_NEAR(stats.mean(), std::exp(mu + sigma * sigma / 2), 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(42);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ChanceProbability) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, Fnv1aIsStableAndDistinguishes) {
  EXPECT_EQ(fnv1a64("2HHN"), fnv1a64("2HHN"));
  EXPECT_NE(fnv1a64("2HHN"), fnv1a64("2HHM"));
  EXPECT_NE(fnv1a64(""), fnv1a64("a"));
}

// ------------------------------------------------------------- stats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(9);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("##########"), std::string::npos);  // peak bin
  EXPECT_NE(text.find('\n'), std::string::npos);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

// ------------------------------------------------------------ strings

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpties) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, CaseHelpers) {
  EXPECT_TRUE(iequals("AbC", "aBc"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
  EXPECT_EQ(to_upper("mix3d"), "MIX3D");
  EXPECT_EQ(to_lower("MIX3D"), "mix3d");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("receptor.pdbqt", "receptor"));
  EXPECT_TRUE(ends_with("receptor.pdbqt", ".pdbqt"));
  EXPECT_FALSE(starts_with("x", "xy"));
  EXPECT_FALSE(ends_with("x", "yx"));
}

TEST(Strings, ParseDoubleAcceptsAndRejects) {
  EXPECT_DOUBLE_EQ(parse_double(" 3.25 "), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.5x"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(Strings, ParseIntAcceptsAndRejects) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW(parse_int("4.2"), ParseError);
  EXPECT_THROW(parse_int("x"), ParseError);
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a%T%b%T%", "%T%", "X"), "aXbX");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(Strings, FixedColumnsHandlesShortLines) {
  EXPECT_EQ(fixed_columns("ATOM  12345", 6, 5), "12345");
  EXPECT_EQ(fixed_columns("ATOM", 6, 5), "");
  EXPECT_EQ(fixed_columns("AB  CD", 2, 2), "");
}

TEST(Strings, HumanDuration) {
  EXPECT_EQ(human_duration(30.0), "30.0 s");
  EXPECT_EQ(human_duration(120.0), "2.0 min");
  EXPECT_EQ(human_duration(42840.0), "11.9 h");
  EXPECT_EQ(human_duration(1080000.0), "12.5 d");
}

TEST(Strings, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(strformat("%d-%s-%.1f", 3, "x", 2.5), "3-x-2.5");
}

// --------------------------------------------------------- thread pool

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw InvalidStateError("boom"); });
  EXPECT_THROW(f.get(), InvalidStateError);
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw ActivityError("task 5");
                                 }),
               ActivityError);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManySmallTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

}  // namespace
}  // namespace scidock
