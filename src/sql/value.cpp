#include "sql/value.hpp"

#include <cmath>
#include <compare>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::sql {

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(v_);
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(v_));
  throw InvalidStateError("SQL value is not numeric: " + to_string());
}

double Value::as_double() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  throw InvalidStateError("SQL value is not numeric: " + to_string());
}

const std::string& Value::as_string() const {
  if (!is_string()) throw InvalidStateError("SQL value is not a string: " + to_string());
  return std::get<std::string>(v_);
}

std::strong_ordering Value::compare(const Value& other) const {
  auto rank = [](const Value& v) { return v.is_null() ? 0 : (v.is_numeric() ? 1 : 2); };
  if (rank(*this) != rank(other)) return rank(*this) <=> rank(other);
  if (is_null()) return std::strong_ordering::equal;
  if (is_numeric()) {
    const double a = as_double();
    const double b = other.as_double();
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  const int c = as_string().compare(other.as_string());
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Value::to_string() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<std::int64_t>(v_));
  if (is_double()) return strformat("%.6g", std::get<double>(v_));
  return std::get<std::string>(v_);
}

}  // namespace scidock::sql
