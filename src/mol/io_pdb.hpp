#pragma once

/// \file io_pdb.hpp
/// RCSB PDB reader/writer (ATOM/HETATM/TER/END records). Receptors in the
/// Table 2 dataset enter the workflow in this format.

#include <string>
#include <string_view>

#include "mol/molecule.hpp"

namespace scidock::mol {

/// Parse PDB text. Bonds are inferred from geometry afterwards if
/// `infer_bonds` is set (PDB carries CONECT only for hetero groups).
Molecule read_pdb(std::string_view text, std::string_view name = "",
                  bool infer_bonds = true);

/// Serialise to PDB text (ATOM/HETATM + TER + END).
std::string write_pdb(const Molecule& m);

}  // namespace scidock::mol
