#pragma once

/// \file simd.hpp
/// Portable fixed-width SIMD wrappers for the docking inner loops
/// (DESIGN.md §13).
///
/// One backend is selected at compile time and fixes the lane width for
/// the whole build:
///
///   AVX2   f64x = 4 lanes, f32x = 8 lanes   (needs -mavx2 / -march=native)
///   SSE2   f64x = 2 lanes, f32x = 4 lanes   (x86-64 baseline: the default)
///   NEON   f64x = 2 lanes, f32x = 4 lanes   (aarch64)
///   scalar f64x = 4 lanes, f32x = 4 lanes   (plain arrays + loops)
///
/// Defining SCIDOCK_SIMD_FORCE_SCALAR (cmake -DSCIDOCK_SIMD_SCALAR=ON)
/// overrides detection and builds the scalar backend on any host — the
/// reference implementation the kernel-equivalence suite compares the
/// native backend against, and the build CI runs as its own leg.
///
/// Semantics the kernels rely on:
///   - load/store are unaligned-safe; batch buffers use util::aligned_vector
///     so hot-loop accesses never straddle cache lines, but tails and tests
///     may hand in arbitrary pointers.
///   - fmadd(a, b, c) = a * b + c contracts to a hardware FMA where the
///     backend has one (AVX2+FMA) and is the separately-rounded mul+add
///     everywhere else. Kernels that must stay bit-identical to the scalar
///     path under the default build avoid fmadd in favour of +/*.
///   - blend(mask, a, b) selects a where the mask lane is true; masks come
///     from less_than/greater_equal and are full-width lane masks, so NaN
///     comparisons are false exactly like the scalar operators.
///   - gather(base, idx) is per-lane indexed loads from one base pointer
///     (no hardware gather: on every µarch we target the load ports beat
///     vgatherdpd for the 2-4 lane counts used here).

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(SCIDOCK_SIMD_FORCE_SCALAR)
#define SCIDOCK_SIMD_SCALAR_BACKEND 1
#elif defined(__AVX2__)
#include <immintrin.h>
#define SCIDOCK_SIMD_AVX2_BACKEND 1
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define SCIDOCK_SIMD_SSE2_BACKEND 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define SCIDOCK_SIMD_NEON_BACKEND 1
#else
#define SCIDOCK_SIMD_SCALAR_BACKEND 1
#endif

namespace scidock::simd {

/// Human-readable backend tag, reported by tests and BENCH_kernels.json so
/// a perf number is never read without knowing the lane width behind it.
constexpr const char* backend_name() {
#if defined(SCIDOCK_SIMD_AVX2_BACKEND)
  return "avx2";
#elif defined(SCIDOCK_SIMD_SSE2_BACKEND)
  return "sse2";
#elif defined(SCIDOCK_SIMD_NEON_BACKEND)
  return "neon";
#else
  return "scalar";
#endif
}

constexpr bool forced_scalar() {
#if defined(SCIDOCK_SIMD_FORCE_SCALAR)
  return true;
#else
  return false;
#endif
}

/// True when the backend issues real vector instructions wider than one
/// lane with hardware FMA — the configuration the >=2x bench gates assume.
constexpr bool wide_backend() {
#if defined(SCIDOCK_SIMD_AVX2_BACKEND)
  return true;
#else
  return false;
#endif
}

// =====================================================================
// f64x — native-width packed doubles
// =====================================================================

#if defined(SCIDOCK_SIMD_AVX2_BACKEND)

struct f64x {
  static constexpr int kWidth = 4;
  __m256d v;

  f64x() : v(_mm256_setzero_pd()) {}
  explicit f64x(double broadcast) : v(_mm256_set1_pd(broadcast)) {}
  explicit f64x(__m256d raw) : v(raw) {}

  static f64x load(const double* p) { return f64x(_mm256_loadu_pd(p)); }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  f64x operator+(f64x o) const { return f64x(_mm256_add_pd(v, o.v)); }
  f64x operator-(f64x o) const { return f64x(_mm256_sub_pd(v, o.v)); }
  f64x operator*(f64x o) const { return f64x(_mm256_mul_pd(v, o.v)); }
  f64x operator/(f64x o) const { return f64x(_mm256_div_pd(v, o.v)); }
  f64x& operator+=(f64x o) { v = _mm256_add_pd(v, o.v); return *this; }

  double lane(int i) const {
    alignas(32) double tmp[kWidth];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }
  double hsum() const {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
  }
};

inline f64x min(f64x a, f64x b) { return f64x(_mm256_min_pd(a.v, b.v)); }
inline f64x max(f64x a, f64x b) { return f64x(_mm256_max_pd(a.v, b.v)); }
inline f64x sqrt(f64x a) { return f64x(_mm256_sqrt_pd(a.v)); }
inline f64x fmadd(f64x a, f64x b, f64x c) {
#if defined(__FMA__)
  return f64x(_mm256_fmadd_pd(a.v, b.v, c.v));
#else
  return a * b + c;
#endif
}
inline f64x less_than(f64x a, f64x b) {
  return f64x(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ));
}
inline f64x greater_equal(f64x a, f64x b) {
  return f64x(_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ));
}
inline f64x blend(f64x mask, f64x a, f64x b) {
  return f64x(_mm256_blendv_pd(b.v, a.v, mask.v));
}
inline bool any(f64x mask) { return _mm256_movemask_pd(mask.v) != 0; }
inline bool all(f64x mask) {
  return _mm256_movemask_pd(mask.v) == (1 << f64x::kWidth) - 1;
}

#elif defined(SCIDOCK_SIMD_SSE2_BACKEND)

struct f64x {
  static constexpr int kWidth = 2;
  __m128d v;

  f64x() : v(_mm_setzero_pd()) {}
  explicit f64x(double broadcast) : v(_mm_set1_pd(broadcast)) {}
  explicit f64x(__m128d raw) : v(raw) {}

  static f64x load(const double* p) { return f64x(_mm_loadu_pd(p)); }
  void store(double* p) const { _mm_storeu_pd(p, v); }

  f64x operator+(f64x o) const { return f64x(_mm_add_pd(v, o.v)); }
  f64x operator-(f64x o) const { return f64x(_mm_sub_pd(v, o.v)); }
  f64x operator*(f64x o) const { return f64x(_mm_mul_pd(v, o.v)); }
  f64x operator/(f64x o) const { return f64x(_mm_div_pd(v, o.v)); }
  f64x& operator+=(f64x o) { v = _mm_add_pd(v, o.v); return *this; }

  double lane(int i) const {
    alignas(16) double tmp[kWidth];
    _mm_store_pd(tmp, v);
    return tmp[i];
  }
  double hsum() const {
    return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
  }
};

inline f64x min(f64x a, f64x b) { return f64x(_mm_min_pd(a.v, b.v)); }
inline f64x max(f64x a, f64x b) { return f64x(_mm_max_pd(a.v, b.v)); }
inline f64x sqrt(f64x a) { return f64x(_mm_sqrt_pd(a.v)); }
inline f64x fmadd(f64x a, f64x b, f64x c) { return a * b + c; }
inline f64x less_than(f64x a, f64x b) { return f64x(_mm_cmplt_pd(a.v, b.v)); }
inline f64x greater_equal(f64x a, f64x b) {
  return f64x(_mm_cmpge_pd(a.v, b.v));
}
inline f64x blend(f64x mask, f64x a, f64x b) {
  // SSE2 has no blendv: (mask & a) | (~mask & b).
  return f64x(_mm_or_pd(_mm_and_pd(mask.v, a.v), _mm_andnot_pd(mask.v, b.v)));
}
inline bool any(f64x mask) { return _mm_movemask_pd(mask.v) != 0; }
inline bool all(f64x mask) {
  return _mm_movemask_pd(mask.v) == (1 << f64x::kWidth) - 1;
}

#elif defined(SCIDOCK_SIMD_NEON_BACKEND)

struct f64x {
  static constexpr int kWidth = 2;
  float64x2_t v;

  f64x() : v(vdupq_n_f64(0.0)) {}
  explicit f64x(double broadcast) : v(vdupq_n_f64(broadcast)) {}
  explicit f64x(float64x2_t raw) : v(raw) {}

  static f64x load(const double* p) { return f64x(vld1q_f64(p)); }
  void store(double* p) const { vst1q_f64(p, v); }

  f64x operator+(f64x o) const { return f64x(vaddq_f64(v, o.v)); }
  f64x operator-(f64x o) const { return f64x(vsubq_f64(v, o.v)); }
  f64x operator*(f64x o) const { return f64x(vmulq_f64(v, o.v)); }
  f64x operator/(f64x o) const { return f64x(vdivq_f64(v, o.v)); }
  f64x& operator+=(f64x o) { v = vaddq_f64(v, o.v); return *this; }

  double lane(int i) const {
    double tmp[kWidth];
    vst1q_f64(tmp, v);
    return tmp[i];
  }
  double hsum() const { return vaddvq_f64(v); }
};

inline f64x min(f64x a, f64x b) { return f64x(vminq_f64(a.v, b.v)); }
inline f64x max(f64x a, f64x b) { return f64x(vmaxq_f64(a.v, b.v)); }
inline f64x sqrt(f64x a) { return f64x(vsqrtq_f64(a.v)); }
inline f64x fmadd(f64x a, f64x b, f64x c) {
  return f64x(vfmaq_f64(c.v, a.v, b.v));
}
inline f64x less_than(f64x a, f64x b) {
  return f64x(vreinterpretq_f64_u64(vcltq_f64(a.v, b.v)));
}
inline f64x greater_equal(f64x a, f64x b) {
  return f64x(vreinterpretq_f64_u64(vcgeq_f64(a.v, b.v)));
}
inline f64x blend(f64x mask, f64x a, f64x b) {
  return f64x(vbslq_f64(vreinterpretq_u64_f64(mask.v), a.v, b.v));
}
inline bool any(f64x mask) {
  return (vgetq_lane_u64(vreinterpretq_u64_f64(mask.v), 0) |
          vgetq_lane_u64(vreinterpretq_u64_f64(mask.v), 1)) != 0;
}
inline bool all(f64x mask) {
  return (vgetq_lane_u64(vreinterpretq_u64_f64(mask.v), 0) &
          vgetq_lane_u64(vreinterpretq_u64_f64(mask.v), 1)) ==
         ~std::uint64_t{0};
}

#else  // scalar reference backend

struct f64x {
  // Width 4 on purpose: the batch layouts, tails and reduction trees the
  // wide backends exercise are reproduced exactly, just with plain loops.
  static constexpr int kWidth = 4;
  double v[kWidth];

  f64x() : v{0.0, 0.0, 0.0, 0.0} {}
  explicit f64x(double broadcast) {
    for (double& x : v) x = broadcast;
  }

  static f64x load(const double* p) {
    f64x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = p[i];
    return r;
  }
  void store(double* p) const {
    for (int i = 0; i < kWidth; ++i) p[i] = v[i];
  }

  f64x operator+(f64x o) const {
    f64x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = v[i] + o.v[i];
    return r;
  }
  f64x operator-(f64x o) const {
    f64x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = v[i] - o.v[i];
    return r;
  }
  f64x operator*(f64x o) const {
    f64x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = v[i] * o.v[i];
    return r;
  }
  f64x operator/(f64x o) const {
    f64x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = v[i] / o.v[i];
    return r;
  }
  f64x& operator+=(f64x o) {
    for (int i = 0; i < kWidth; ++i) v[i] += o.v[i];
    return *this;
  }

  double lane(int i) const { return v[i]; }
  double hsum() const {
    // Pairwise like the wide backends: (l0 + l2) + (l1 + l3).
    return (v[0] + v[2]) + (v[1] + v[3]);
  }
};

namespace detail {
inline double mask_bits(bool b) {
  const std::uint64_t bits = b ? ~std::uint64_t{0} : 0;
  double d;
  __builtin_memcpy(&d, &bits, sizeof d);
  return d;
}
inline bool mask_lane(double d) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof bits);
  return bits != 0;
}
}  // namespace detail

inline f64x min(f64x a, f64x b) {
  f64x r;
  for (int i = 0; i < f64x::kWidth; ++i)
    r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline f64x max(f64x a, f64x b) {
  f64x r;
  for (int i = 0; i < f64x::kWidth; ++i)
    r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline f64x sqrt(f64x a) {
  f64x r;
  for (int i = 0; i < f64x::kWidth; ++i) r.v[i] = std::sqrt(a.v[i]);
  return r;
}
inline f64x fmadd(f64x a, f64x b, f64x c) { return a * b + c; }
inline f64x less_than(f64x a, f64x b) {
  f64x r;
  for (int i = 0; i < f64x::kWidth; ++i)
    r.v[i] = detail::mask_bits(a.v[i] < b.v[i]);
  return r;
}
inline f64x greater_equal(f64x a, f64x b) {
  f64x r;
  for (int i = 0; i < f64x::kWidth; ++i)
    r.v[i] = detail::mask_bits(a.v[i] >= b.v[i]);
  return r;
}
inline f64x blend(f64x mask, f64x a, f64x b) {
  f64x r;
  for (int i = 0; i < f64x::kWidth; ++i)
    r.v[i] = detail::mask_lane(mask.v[i]) ? a.v[i] : b.v[i];
  return r;
}
inline bool any(f64x mask) {
  for (int i = 0; i < f64x::kWidth; ++i)
    if (detail::mask_lane(mask.v[i])) return true;
  return false;
}
inline bool all(f64x mask) {
  for (int i = 0; i < f64x::kWidth; ++i)
    if (!detail::mask_lane(mask.v[i])) return false;
  return true;
}

#endif  // backend selection (f64x)

/// All-ones (true) / all-zero (false) lane value for hand-built masks fed
/// to blend(): the scalar counterpart of less_than/greater_equal lanes.
inline double mask_value(bool b) {
  const std::uint64_t bits = b ? ~std::uint64_t{0} : 0;
  double d;
  __builtin_memcpy(&d, &bits, sizeof d);
  return d;
}

/// Per-lane indexed loads from one base pointer (see file comment).
inline f64x gather(const double* base, const std::int32_t* idx) {
  alignas(64) double tmp[f64x::kWidth];
  for (int i = 0; i < f64x::kWidth; ++i) tmp[i] = base[idx[i]];
  return f64x::load(tmp);
}

/// Truncate each lane toward zero into int32 slots (LUT bin indices; the
/// kernels guarantee non-negative in-range inputs).
inline void truncate_to_int(f64x x, std::int32_t* out) {
  alignas(64) double tmp[f64x::kWidth];
  x.store(tmp);
  for (int i = 0; i < f64x::kWidth; ++i)
    out[i] = static_cast<std::int32_t>(tmp[i]);
}

// =====================================================================
// f32x — native-width packed floats (provided for completeness; the
// docking kernels are double-precision throughout)
// =====================================================================

#if defined(SCIDOCK_SIMD_AVX2_BACKEND)

struct f32x {
  static constexpr int kWidth = 8;
  __m256 v;

  f32x() : v(_mm256_setzero_ps()) {}
  explicit f32x(float broadcast) : v(_mm256_set1_ps(broadcast)) {}
  explicit f32x(__m256 raw) : v(raw) {}

  static f32x load(const float* p) { return f32x(_mm256_loadu_ps(p)); }
  void store(float* p) const { _mm256_storeu_ps(p, v); }

  f32x operator+(f32x o) const { return f32x(_mm256_add_ps(v, o.v)); }
  f32x operator-(f32x o) const { return f32x(_mm256_sub_ps(v, o.v)); }
  f32x operator*(f32x o) const { return f32x(_mm256_mul_ps(v, o.v)); }
  f32x operator/(f32x o) const { return f32x(_mm256_div_ps(v, o.v)); }
  f32x& operator+=(f32x o) { v = _mm256_add_ps(v, o.v); return *this; }

  float lane(int i) const {
    alignas(32) float tmp[kWidth];
    _mm256_store_ps(tmp, v);
    return tmp[i];
  }
  float hsum() const {
    alignas(32) float tmp[kWidth];
    _mm256_store_ps(tmp, v);
    return ((tmp[0] + tmp[4]) + (tmp[1] + tmp[5])) +
           ((tmp[2] + tmp[6]) + (tmp[3] + tmp[7]));
  }
};

inline f32x fmadd(f32x a, f32x b, f32x c) {
#if defined(__FMA__)
  return f32x(_mm256_fmadd_ps(a.v, b.v, c.v));
#else
  return a * b + c;
#endif
}

#elif defined(SCIDOCK_SIMD_SSE2_BACKEND)

struct f32x {
  static constexpr int kWidth = 4;
  __m128 v;

  f32x() : v(_mm_setzero_ps()) {}
  explicit f32x(float broadcast) : v(_mm_set1_ps(broadcast)) {}
  explicit f32x(__m128 raw) : v(raw) {}

  static f32x load(const float* p) { return f32x(_mm_loadu_ps(p)); }
  void store(float* p) const { _mm_storeu_ps(p, v); }

  f32x operator+(f32x o) const { return f32x(_mm_add_ps(v, o.v)); }
  f32x operator-(f32x o) const { return f32x(_mm_sub_ps(v, o.v)); }
  f32x operator*(f32x o) const { return f32x(_mm_mul_ps(v, o.v)); }
  f32x operator/(f32x o) const { return f32x(_mm_div_ps(v, o.v)); }
  f32x& operator+=(f32x o) { v = _mm_add_ps(v, o.v); return *this; }

  float lane(int i) const {
    alignas(16) float tmp[kWidth];
    _mm_store_ps(tmp, v);
    return tmp[i];
  }
  float hsum() const {
    alignas(16) float tmp[kWidth];
    _mm_store_ps(tmp, v);
    return (tmp[0] + tmp[2]) + (tmp[1] + tmp[3]);
  }
};

inline f32x fmadd(f32x a, f32x b, f32x c) { return a * b + c; }

#elif defined(SCIDOCK_SIMD_NEON_BACKEND)

struct f32x {
  static constexpr int kWidth = 4;
  float32x4_t v;

  f32x() : v(vdupq_n_f32(0.0f)) {}
  explicit f32x(float broadcast) : v(vdupq_n_f32(broadcast)) {}
  explicit f32x(float32x4_t raw) : v(raw) {}

  static f32x load(const float* p) { return f32x(vld1q_f32(p)); }
  void store(float* p) const { vst1q_f32(p, v); }

  f32x operator+(f32x o) const { return f32x(vaddq_f32(v, o.v)); }
  f32x operator-(f32x o) const { return f32x(vsubq_f32(v, o.v)); }
  f32x operator*(f32x o) const { return f32x(vmulq_f32(v, o.v)); }
  f32x operator/(f32x o) const { return f32x(vdivq_f32(v, o.v)); }
  f32x& operator+=(f32x o) { v = vaddq_f32(v, o.v); return *this; }

  float lane(int i) const {
    float tmp[kWidth];
    vst1q_f32(tmp, v);
    return tmp[i];
  }
  float hsum() const { return vaddvq_f32(v); }
};

inline f32x fmadd(f32x a, f32x b, f32x c) {
  return f32x(vfmaq_f32(c.v, a.v, b.v));
}

#else  // scalar

struct f32x {
  static constexpr int kWidth = 4;
  float v[kWidth];

  f32x() : v{0.0f, 0.0f, 0.0f, 0.0f} {}
  explicit f32x(float broadcast) {
    for (float& x : v) x = broadcast;
  }

  static f32x load(const float* p) {
    f32x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = p[i];
    return r;
  }
  void store(float* p) const {
    for (int i = 0; i < kWidth; ++i) p[i] = v[i];
  }

  f32x operator+(f32x o) const {
    f32x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = v[i] + o.v[i];
    return r;
  }
  f32x operator-(f32x o) const {
    f32x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = v[i] - o.v[i];
    return r;
  }
  f32x operator*(f32x o) const {
    f32x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = v[i] * o.v[i];
    return r;
  }
  f32x operator/(f32x o) const {
    f32x r;
    for (int i = 0; i < kWidth; ++i) r.v[i] = v[i] / o.v[i];
    return r;
  }
  f32x& operator+=(f32x o) {
    for (int i = 0; i < kWidth; ++i) v[i] += o.v[i];
    return *this;
  }

  float lane(int i) const { return v[i]; }
  float hsum() const { return (v[0] + v[2]) + (v[1] + v[3]); }
};

inline f32x fmadd(f32x a, f32x b, f32x c) { return a * b + c; }

#endif  // backend selection (f32x)

}  // namespace scidock::simd
