// ThreadPool stress tests: concurrent producers, exception propagation
// ("first one wins" in iteration order), task-hook injection, and clean
// destruction with a loaded queue. Written to run clean under TSan
// (cmake -DSCIDOCK_SANITIZE=thread): all shared test state is atomic.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace scidock {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmittersAllComplete) {
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kTasksEach = 200;
  std::atomic<int> executed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures[p].push_back(pool.submit([&executed, i] {
          executed.fetch_add(1);
          return i;
        }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kTasksEach; ++i) {
      EXPECT_EQ(futures[p][static_cast<std::size_t>(i)].get(), i);
    }
  }
  EXPECT_EQ(executed.load(), kProducers * kTasksEach);
}

TEST(ThreadPoolStress, ConcurrentParallelForCallers) {
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      pool.parallel_for(100, [&total](std::size_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * 100);
}

TEST(ThreadPoolStress, ParallelForFirstExceptionWins) {
  ThreadPool pool(4);
  // Every odd iteration throws; the exception rethrown must be the one
  // from the lowest iteration index (futures are drained in order), no
  // matter which task physically failed first.
  try {
    pool.parallel_for(64, [](std::size_t i) {
      if (i % 2 == 1) {
        throw ActivityError("iteration " + std::to_string(i));
      }
    });
    FAIL() << "parallel_for should have thrown";
  } catch (const ActivityError& e) {
    EXPECT_STREQ(e.what(), "iteration 1");
  }
}

TEST(ThreadPoolStress, ParallelForGrainCoversEveryIndexOnce) {
  ThreadPool pool(4);
  // Any grain — unit, uneven, larger than n — visits each index exactly
  // once; grain only changes task granularity, never coverage.
  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{1000}}) {
    std::vector<std::atomic<int>> visits(257);
    pool.parallel_for(
        visits.size(),
        [&visits](std::size_t i) { visits[i].fetch_add(1); }, grain);
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ThreadPoolStress, ParallelForGrainZeroBehavesAsUnit) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(10, [&total](std::size_t) { total.fetch_add(1); }, 0);
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPoolStress, ParallelForGrainFirstExceptionStillWins) {
  ThreadPool pool(4);
  // Chunked execution preserves the contract: the rethrown exception is
  // the lowest-index failure (futures drain in chunk order and a chunk
  // stops at its first throwing iteration).
  std::atomic<int> after_throw{0};
  try {
    pool.parallel_for(
        64,
        [&after_throw](std::size_t i) {
          if (i == 9) throw ActivityError("iteration 9");
          if (i > 9 && i < 16) after_throw.fetch_add(1);
        },
        16);
    FAIL() << "parallel_for should have thrown";
  } catch (const ActivityError& e) {
    EXPECT_STREQ(e.what(), "iteration 9");
  }
  // Iterations 10..15 share the throwing chunk and never ran.
  EXPECT_EQ(after_throw.load(), 0);
}

TEST(ThreadPoolStress, SubmitExceptionsIsolatedPerFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw ActivityError("boom"); });
  auto ok2 = pool.submit([] { return 8; });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), ActivityError);
  EXPECT_EQ(ok2.get(), 8);  // the pool survives a throwing task
}

TEST(ThreadPoolStress, TaskHookRunsInsideFutureBoundary) {
  ThreadPool pool(2);
  std::atomic<int> hook_runs{0};
  pool.set_task_hook([&hook_runs] { hook_runs.fetch_add(1); });
  std::atomic<int> executed{0};
  pool.parallel_for(50, [&executed](std::size_t) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 50);
  EXPECT_EQ(hook_runs.load(), 50);
  // A throwing hook fails the task through its future, not the worker.
  pool.set_task_hook([] { throw ActivityError("hook fault"); });
  auto doomed = pool.submit([] { return 1; });
  EXPECT_THROW(doomed.get(), ActivityError);
  // Clearing the hook restores normal service.
  pool.set_task_hook(nullptr);
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPoolStress, DestructionDrainsFullQueue) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1);
      });
    }
    // Destructor runs with most of the queue still pending.
  }
  // Documented contract: outstanding tasks complete before destruction.
  EXPECT_EQ(executed.load(), 100);
}

}  // namespace
}  // namespace scidock
