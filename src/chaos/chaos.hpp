#pragma once

/// \file chaos.hpp
/// Seed-deterministic fault injection ("chaos") for the workflow stack.
///
/// The paper's central robustness claim is that SciCumulus survives ~10 %
/// activation failures and looping-state hangs via provenance-driven
/// re-execution (PAPER.md SS IV.B). The simulated executor already has a
/// FailureModel; this layer extends fault injection to everything the
/// *native* path touches — the shared filesystem, the thread pool and the
/// activation loop — so both executors can be stressed identically and
/// their invariants compared (see invariants.hpp).
///
/// Every decision is a pure hash of (seed, site, key): two runs with the
/// same seed inject exactly the same faults regardless of thread
/// interleaving, so a failing CI seed replays byte-for-byte locally.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cloud/failure.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vfs/vfs.hpp"
#include "wf/native_executor.hpp"

namespace scidock::chaos {

/// Transient shared-filesystem faults. A path drawn as faulty fails its
/// first k accesses (k <= max_transient_failures) and then recovers —
/// the s3fs "eventual consistency hiccup" — so a retrying executor with
/// budget > k always gets through.
struct VfsFaultProfile {
  double read_fault_probability = 0.0;
  double write_fault_probability = 0.0;
  int max_transient_failures = 2;   ///< per-path failures before recovery
  double latency_spike_probability = 0.0;
  double latency_spike_ms = 1.0;    ///< real sleep (shakes thread timing)
  /// Only paths containing this substring are eligible ("" = all). Lets
  /// tests target activity I/O while sparing the executor's own staging
  /// of input_1.txt/output_1.txt, which has no retry loop around it.
  std::string path_substring;
  /// Byte-granular torn writes: with this probability a write/append is
  /// cut at a random byte short of its end and fails with TornWriteError
  /// — a partial record *smaller than one WAL frame*, which the throwing
  /// fault hook above cannot express (it is all-or-nothing). The WAL
  /// replay must truncate at the last intact frame.
  double torn_write_probability = 0.0;
};

/// Thread-pool scheduling chaos: random pre-task delays and task-level
/// exception injection (surfaces through the task's future).
struct PoolFaultProfile {
  double delay_probability = 0.0;
  double delay_ms = 1.0;
  /// Seed-deterministic per-ticket extra delay in [0, delay_jitter_ms):
  /// spreads task start times apart so schedule-dependent bugs (races,
  /// order-nondeterministic reductions) get shaken into different
  /// interleavings per seed while each seed stays exactly replayable.
  double delay_jitter_ms = 0.0;
  double exception_probability = 0.0;
};

/// Per-activation-attempt faults for the native executor, mirroring
/// cloud::FailureModelOptions so the same profile drives both executors.
struct ActivityFaultProfile {
  double failure_probability = 0.0;
  double hang_probability = 0.0;
};

struct ChaosProfile {
  std::string name = "off";
  VfsFaultProfile vfs;
  PoolFaultProfile pool;
  ActivityFaultProfile activity;
};

/// Canned profiles used by the chaos sweep (tests/chaos_test.cpp).
ChaosProfile chaos_profile_off();
ChaosProfile chaos_profile_light();   ///< the paper's ~10 % failure regime
ChaosProfile chaos_profile_heavy();   ///< well past the paper's rates
/// Schedule-perturbation profile for the racer (src/util/racer): no
/// faults, every task delayed by a seeded jitter so happens-before gaps
/// surface under many interleavings. Different seeds explore different
/// schedules; the same seed replays the same one.
ChaosProfile chaos_profile_racer();

/// Exception type injected by the pool hook, so tests can tell injected
/// chaos apart from genuine task failures.
class ChaosInjectedError : public Error {
 public:
  explicit ChaosInjectedError(const std::string& what) : Error(what) {}
};

/// Fault-decision engine. Hands out hooks for the individual subsystems;
/// the hooks share state through a shared_ptr and stay valid after the
/// engine itself is destroyed. All hooks are thread-safe.
class ChaosEngine {
 public:
  ChaosEngine(ChaosProfile profile, std::uint64_t seed);

  const ChaosProfile& profile() const { return profile_; }
  std::uint64_t seed() const { return seed_; }

  /// Hook for vfs::SharedFileSystem::set_fault_hook. Throws ActivityError
  /// on an injected fault so a retrying activation recovers normally.
  vfs::SharedFileSystem::FaultHook vfs_hook() const;

  /// Hook for vfs::SharedFileSystem::set_torn_write_hook: cuts eligible
  /// writes at a seed-deterministic byte offset (see
  /// VfsFaultProfile::torn_write_probability). Returns nullptr when the
  /// profile never tears.
  vfs::SharedFileSystem::TornWriteHook torn_write_hook() const;

  /// Hook for ThreadPool::set_task_hook (delays sleep; exceptions throw
  /// ChaosInjectedError through the task's future).
  ThreadPool::TaskHook pool_hook() const;

  /// Fault injector for NativeExecutorOptions::fault_injector. Pure in
  /// (tag, tuple, attempt): deterministic across thread interleavings.
  wf::FaultInjectorFn activity_fault_injector() const;

  /// Mirror of the activity profile for the simulated executor, so a sim
  /// run and a native run stress the same failure/hang rates.
  cloud::FailureModelOptions failure_options(int max_attempts,
                                             double hang_timeout_s) const;

  // ---- did chaos actually fire? (assertable by tests) ----
  long long vfs_faults_injected() const;
  long long torn_writes_injected() const;
  long long pool_delays_injected() const;
  long long pool_exceptions_injected() const;
  long long activity_faults_injected() const;

 private:
  struct State;
  ChaosProfile profile_;
  std::uint64_t seed_ = 0;
  std::shared_ptr<State> state_;
};

/// Which step of the provenance WAL commit protocol (DESIGN.md §12) a
/// KillSwitch crashes.
enum class KillPhase {
  Append,       ///< tear the ordinal-th WAL append after keep_bytes bytes
  GroupCommit,  ///< hard-fail the ordinal-th WAL append (whole batch lost)
  Rotate,       ///< hard-fail the ordinal-th segment-seal rename
};

struct KillPoint {
  KillPhase phase = KillPhase::Append;
  int ordinal = 0;             ///< which matching WAL operation fires (0-based)
  std::size_t keep_bytes = 0;  ///< Append phase: bytes that land before the tear
};

/// One-shot crash injector for the provenance WAL: install its hooks on
/// the store's VFS and the `ordinal`-th matching operation fails exactly
/// the way a process death at that point would look on disk. Only WAL
/// files (paths containing ".wal") are eligible, so workflow I/O through
/// the same VFS is untouched. Copyable; hooks share state and outlive the
/// switch (same lifetime contract as ChaosEngine's hooks).
class KillSwitch {
 public:
  explicit KillSwitch(KillPoint point);

  /// Install with vfs::SharedFileSystem::set_torn_write_hook. Fires only
  /// in the Append phase.
  vfs::SharedFileSystem::TornWriteHook torn_write_hook() const;
  /// Install with vfs::SharedFileSystem::set_fault_hook. Fires in the
  /// GroupCommit (append) and Rotate (rename) phases, throwing
  /// ChaosInjectedError before anything is applied.
  vfs::SharedFileSystem::FaultHook fault_hook() const;

  bool fired() const;

 private:
  struct State;
  KillPoint point_;
  std::shared_ptr<State> state_;
};

}  // namespace scidock::chaos
