#include "obs/obs.hpp"

namespace scidock::obs {

ExecutorCounters executor_counters(MetricsRegistry* registry) {
  ExecutorCounters c;
  if (registry == nullptr) return c;
  c.started = &registry->counter(
      kActivationsStarted, "activation attempts dispatched (all outcomes)");
  c.finished =
      &registry->counter(kActivationsFinished, "attempts ending FINISHED");
  c.failed = &registry->counter(kActivationsFailed,
                                "attempts ending FAILED (re-executed)");
  c.aborted = &registry->counter(
      kActivationsAborted, "attempts ending ABORTED (hang watchdog)");
  c.retried = &registry->counter(kActivationsRetried,
                                 "attempts with attempt number > 1");
  c.tuples_completed = &registry->counter(
      kTuplesCompleted, "input tuples that traversed their whole chain");
  c.tuples_lost =
      &registry->counter(kTuplesLost, "input tuples that exhausted retries");
  c.activation_seconds = &registry->histogram(
      kActivationSeconds, {}, "duration of FINISHED activation attempts");
  return c;
}

void instrument_thread_pool(ThreadPool& pool, MetricsRegistry& registry) {
  Gauge* depth = &registry.gauge("scidock_pool_queue_depth",
                                 "work-queue depth after latest enqueue");
  Counter* tasks =
      &registry.counter("scidock_pool_tasks_total", "tasks executed");
  HistogramMetric* wait = &registry.histogram(
      "scidock_pool_queue_wait_seconds", {}, "submit-to-start latency");
  HistogramMetric* exec = &registry.histogram("scidock_pool_task_seconds", {},
                                              "task execution time");
  ThreadPool::StatsHook hook;
  hook.enqueued = [depth](std::size_t queue_depth) {
    depth->set(static_cast<double>(queue_depth));
  };
  hook.finished = [tasks, wait, exec](double wait_s, double exec_s) {
    tasks->inc();
    wait->observe(wait_s);
    exec->observe(exec_s);
  };
  pool.set_stats_hook(std::move(hook));
}

}  // namespace scidock::obs
