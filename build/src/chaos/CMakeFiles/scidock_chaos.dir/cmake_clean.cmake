file(REMOVE_RECURSE
  "CMakeFiles/scidock_chaos.dir/chaos.cpp.o"
  "CMakeFiles/scidock_chaos.dir/chaos.cpp.o.d"
  "CMakeFiles/scidock_chaos.dir/invariants.cpp.o"
  "CMakeFiles/scidock_chaos.dir/invariants.cpp.o.d"
  "libscidock_chaos.a"
  "libscidock_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
