file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vms.dir/bench_table1_vms.cpp.o"
  "CMakeFiles/bench_table1_vms.dir/bench_table1_vms.cpp.o.d"
  "bench_table1_vms"
  "bench_table1_vms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
