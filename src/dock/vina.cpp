#include "dock/vina.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "dock/cluster.hpp"
#include "dock/energy.hpp"
#include "mol/molecule.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace scidock::dock {

VinaEngine::VinaEngine(VinaConfig config) : config_(std::move(config)) {}

DockingResult VinaEngine::dock(const mol::PreparedReceptor& receptor,
                               const mol::PreparedLigand& ligand,
                               const GridBox& box, Rng& rng) {
  SCIDOCK_REQUIRE(ligand.molecule.fully_parameterised(),
                  "Vina: ligand has unparameterised atoms");
  SCIDOCK_REQUIRE(receptor.molecule.fully_parameterised(),
                  "Vina: receptor has unparameterised atoms");
  const auto t0 = std::chrono::steady_clock::now();

  VinaEnergyModel model(receptor, ligand, box);
  const std::vector<mol::Vec3> input_coords = ligand.molecule.coordinates();
  const int n_tors = ligand.torsions.torsion_count();

  struct ChainResult {
    DockPose pose;
    double energy = 0.0;
    long long evaluations = 0;
  };
  std::vector<ChainResult> chains(static_cast<std::size_t>(config_.exhaustiveness));

  // Each chain gets a forked RNG so the parallel and serial paths produce
  // the same set of results regardless of scheduling.
  std::vector<Rng> chain_rngs;
  chain_rngs.reserve(chains.size());
  for (std::size_t c = 0; c < chains.size(); ++c) {
    chain_rngs.push_back(rng.fork("vina-chain-" + std::to_string(c)));
  }

  auto run_chain = [&](std::size_t c) {
    Rng& crng = chain_rngs[c];
    // Each chain evaluates through its own model instance: the evaluation
    // counter is not thread-safe and cross-chain sharing would race.
    VinaEnergyModel chain_model(receptor, ligand, box);
    DockPose current =
        DockPose::random(box, chain_model.reference_center(), n_tors, crng);
    double current_e = chain_model(current);
    DockPose best = current;
    double best_e = current_e;

    constexpr double kTemperature = 1.2;  // Vina's Metropolis "temperature"
    for (int step = 0; step < steps_per_chain; ++step) {
      DockPose candidate = current;
      candidate.mutate_one(2.0, 0.5, 1.0, crng);
      double cand_e = 0.0;
      candidate = solis_wets(candidate, chain_model, crng, 40, cand_e, 0.5);
      const double delta = cand_e - current_e;
      if (delta < 0.0 || crng.chance(std::exp(-delta / kTemperature))) {
        current = candidate;
        current_e = cand_e;
        if (current_e < best_e) {
          best = current;
          best_e = current_e;
        }
      }
    }
    // Final refinement of the chain's best.
    double refined_e = 0.0;
    best = solis_wets(best, chain_model, crng, 120, refined_e, 0.3);
    chains[c] = ChainResult{std::move(best), refined_e, chain_model.evaluations()};
  };

  if (threads > 1) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    pool.parallel_for(chains.size(), [&](std::size_t c) { run_chain(c); });
  } else {
    for (std::size_t c = 0; c < chains.size(); ++c) run_chain(c);
  }

  DockingResult result;
  result.receptor_name = receptor.molecule.name();
  result.ligand_name = ligand.molecule.name();
  result.engine_name = name();
  // Rescore every chain's best in one batched pass (run index = chain
  // index, matching the order the chains were launched in).
  std::vector<DockPose> best_poses;
  best_poses.reserve(chains.size());
  for (std::size_t c = 0; c < chains.size(); ++c) {
    best_poses.push_back(chains[c].pose);
    result.energy_evaluations += chains[c].evaluations;
  }
  append_batch_conformations(model, best_poses, input_coords,
                             result.conformations);

  cluster_conformations(result.conformations, 2.0);

  // Vina reports at most num_modes poses within energy_range of the best.
  std::sort(result.conformations.begin(), result.conformations.end(),
            [](const Conformation& a, const Conformation& b) { return a.feb < b.feb; });
  if (!result.conformations.empty()) {
    const double cutoff = result.conformations.front().feb + config_.energy_range;
    std::erase_if(result.conformations, [cutoff](const Conformation& c) {
      return c.feb > cutoff;
    });
    if (static_cast<int>(result.conformations.size()) > config_.num_modes) {
      result.conformations.resize(static_cast<std::size_t>(config_.num_modes));
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

DockingResult redock(const mol::PreparedReceptor& receptor,
                     const mol::PreparedLigand& ligand,
                     const Conformation& pose, Rng& rng,
                     double box_half_extent, int refinement_steps) {
  SCIDOCK_REQUIRE(pose.coords.size() ==
                      static_cast<std::size_t>(ligand.molecule.atom_count()),
                  "redock: pose does not match the ligand");
  const mol::Vec3 center = mol::centroid(pose.coords);
  const GridBox box = GridBox::around(center, box_half_extent, 0.5);
  VinaEnergyModel model(receptor, ligand, box);

  // Recover a pose parameterisation that lands on the docked coordinates:
  // start from the rigid translation that moves the reference root centre
  // onto the pose centroid, then let the local search absorb orientation
  // and torsions. (The exact parameters are unknown once only coordinates
  // remain, e.g. after reading an _out.pdbqt back in.)
  DockPose start;
  start.rigid.translation = center - model.reference_center();
  start.torsions.assign(
      static_cast<std::size_t>(ligand.torsions.torsion_count()), 0.0);
  double energy = 0.0;
  DockPose refined = solis_wets(start, model, rng, refinement_steps, energy, 0.8);

  DockingResult result;
  result.receptor_name = receptor.molecule.name();
  result.ligand_name = ligand.molecule.name();
  result.engine_name = "Vina-redock";
  Conformation out;
  out.coords = model.coords_for(refined);
  out.intermolecular = model.intermolecular(out.coords);
  out.intramolecular = model.intramolecular(out.coords);
  out.feb = model.feb(out.intermolecular);
  out.rmsd_from_input = mol::rmsd(out.coords, pose.coords);
  result.conformations.push_back(std::move(out));
  result.energy_evaluations = model.evaluations();
  return result;
}

}  // namespace scidock::dock
