// Crash-recovery matrix for the sharded, WAL-backed provenance store
// (ctest label: prov-recovery). Every case runs a deterministic synthetic
// campaign into a durable store with a chaos::KillSwitch armed on the
// VFS — tearing an append mid-frame, failing a group-commit append, or
// failing the rename that seals a rotated segment — then reopens the
// directory with a fresh store and proves:
//   - replay accepted a consistent prefix (InvariantChecker::check_recovery:
//     unique ids, resolvable references, legal statuses, zero orphans);
//   - lockdep saw no error-severity hazard across crash + recovery;
//   - abort_open_activations closes every RUNNING row the crash left;
//   - the store accepts new work after recovery, and a further reopen
//     replays the recovered + resumed history byte-identically.
// A negative control corrupts a sealed segment's tail directly and
// asserts replay truncates exactly at the last valid record, and that the
// on-disk repair makes the next reopen a clean no-op.

#include <gtest/gtest.h>

#include <cstddef>
#include <exception>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/invariants.hpp"
#include "prov/prov.hpp"
#include "prov/wal.hpp"
#include "sql/table.hpp"
#include "util/error.hpp"
#include "vfs/vfs.hpp"

namespace scidock::prov {
namespace {

constexpr int kCampaignActivations = 150;

/// Deterministic mixed workload: two activities, two machines, retried
/// attempts, per-task files and values. Small enough to run ~30 times,
/// large enough to span several 4 KiB segments per shard.
void run_campaign(ProvenanceStore& store, int activations) {
  store.record_machine(1, "std-large", 8, 1.0);
  store.record_machine(2, "std-xlarge", 16, 1.25);
  const long long wkf = store.begin_workflow(
      "recovery-matrix", "synthetic crash-recovery campaign", "/exp/recovery",
      0.0);
  const long long dock =
      store.register_activity(wkf, "dock", "vina --receptor r --ligand l",
                              "MAP");
  const long long filter =
      store.register_activity(wkf, "filter", "best-energy", "FILTER");
  double t = 1.0;
  for (int i = 0; i < activations; ++i) {
    const long long act = (i % 4 == 3) ? filter : dock;
    const long long vm = 1 + (i % 2);
    const std::string id = std::to_string(i);
    if (i % 7 == 6) {  // a failed first attempt, then the re-execution
      const long long failed =
          store.begin_activation(act, wkf, t, vm, "pair-" + id);
      store.end_activation(failed, t + 0.05, kStatusFailed, 1, 1);
    }
    const long long task =
        store.begin_activation(act, wkf, t, vm, "pair-" + id);
    store.record_file(wkf, act, task, "out-" + id + ".dlg", 1024 + i,
                      "/exp/out");
    if (i % 3 == 0) {
      store.record_value(task, "energy", -8.0 + 0.01 * i, "kcal/mol");
    }
    store.end_activation(task, t + 0.5, kStatusFinished, 0,
                         i % 7 == 6 ? 2 : 1);
    t += 0.25;
  }
  store.end_workflow(wkf, t);
}

ProvenanceStoreOptions durable_options(vfs::SharedFileSystem& fs,
                                       std::size_t shards, bool group_commit) {
  ProvenanceStoreOptions options;
  options.shard_count = shards;
  options.vfs = &fs;
  options.wal_dir = "/prov";
  options.group_commit = group_commit;
  options.group_commit_interval_ms = 1;
  options.group_commit_max_bytes = 2048;  // frequent commits under chaos
  options.segment_max_bytes = 4096;       // several rotations per shard
  return options;
}

struct KillCase {
  chaos::KillPhase phase = chaos::KillPhase::Append;
  int ordinal = 0;
  std::size_t keep_bytes = 0;
  std::size_t shards = 2;
  bool group_commit = true;
};

std::string case_name(const KillCase& c) {
  const char* phase = c.phase == chaos::KillPhase::Append ? "append"
                      : c.phase == chaos::KillPhase::GroupCommit
                          ? "group-commit"
                          : "rotate";
  return std::string(phase) + " ordinal=" + std::to_string(c.ordinal) +
         " keep=" + std::to_string(c.keep_bytes) +
         " shards=" + std::to_string(c.shards) +
         (c.group_commit ? " gc=on" : " gc=off");
}

/// The ≥30-point seed matrix: every KillPhase, several ordinals and tear
/// offsets, 2 and 4 shards, group-commit and synchronous WAL modes.
std::vector<KillCase> kill_matrix() {
  std::vector<KillCase> cases;
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    for (bool gc : {true, false}) {
      for (int ordinal : {0, 2, 5}) {
        for (std::size_t keep : {std::size_t{0}, std::size_t{17}}) {
          cases.push_back({chaos::KillPhase::Append, ordinal, keep, shards,
                           gc});
        }
      }
    }
  }
  for (bool gc : {true, false}) {
    for (int ordinal : {0, 3}) {
      cases.push_back({chaos::KillPhase::GroupCommit, ordinal, 0, 2, gc});
    }
  }
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    for (int ordinal : {0, 1}) {
      cases.push_back({chaos::KillPhase::Rotate, ordinal, 0, shards, true});
    }
  }
  return cases;
}

void run_kill_case(const KillCase& c) {
  vfs::SharedFileSystem fs;
  chaos::KillSwitch kill({c.phase, c.ordinal, c.keep_bytes});
  fs.set_torn_write_hook(kill.torn_write_hook());
  fs.set_fault_hook(kill.fault_hook());
  const ProvenanceStoreOptions options =
      durable_options(fs, c.shards, c.group_commit);

  // Phase 1: campaign until the kill point fires (or cleanly if the
  // ordinal is never reached — then recovery must reproduce the store
  // exactly).
  bool crashed = false;
  std::string clean_digest;
  {
    ProvenanceStore store(options);
    try {
      run_campaign(store, kCampaignActivations);
      store.flush();
      clean_digest = store.content_digest();
    } catch (const std::exception&) {
      // The injected crash surfaces as TornWriteError, ChaosInjectedError
      // or (once the store is poisoned) InvalidStateError.
    }
    crashed = store.crashed();
    if (crashed) {
      EXPECT_THROW(store.flush(), InvalidStateError);
      EXPECT_THROW(store.record_machine(99, "dead", 1, 1.0),
                   InvalidStateError);
    }
  }
  // A clean run can only happen when the kill point was never reached.
  EXPECT_TRUE(crashed || !kill.fired() || !clean_digest.empty());

  // Phase 2: the "machine" comes back — hooks gone, same directory.
  fs.set_torn_write_hook(nullptr);
  fs.set_fault_hook(nullptr);

  std::string resumed_digest;
  {
    ProvenanceStore recovered(options);
    chaos::InvariantChecker checker;
    EXPECT_TRUE(checker.check_recovery(recovered)) << checker.to_string();
    EXPECT_TRUE(checker.check_lockdep()) << checker.to_string();
    EXPECT_TRUE(checker.check_racer()) << checker.to_string();
    if (!crashed && !clean_digest.empty()) {
      EXPECT_EQ(recovered.content_digest(), clean_digest)
          << "clean shutdown must replay byte-identically";
      EXPECT_EQ(recovered.last_recovery().truncated_bytes, 0u);
    }
    EXPECT_EQ(recovered.last_recovery().orphan_rows, 0u)
        << "commit ordering (dimensions before facts) must hold";

    // Close out whatever the crash interrupted, then resume recording.
    const std::size_t aborted = recovered.abort_open_activations(1000.0);
    if (!crashed) {
      EXPECT_EQ(aborted, 0u);
    }
    recovered.with_database([](sql::Database& db) {
      for (const sql::Row& row : db.table("hactivation").rows()) {
        EXPECT_NE(row[5].as_string(), "RUNNING");
        EXPECT_FALSE(row[4].is_null());  // endtime set on every row
      }
    });

    const long long wkf =
        recovered.begin_workflow("resumed", "post-recovery", "/exp", 2000.0);
    const long long act =
        recovered.register_activity(wkf, "redock", "vina", "MAP");
    for (int i = 0; i < 8; ++i) {
      const long long task = recovered.begin_activation(
          act, wkf, 2000.0 + i, 1, "resume-" + std::to_string(i));
      recovered.end_activation(task, 2000.5 + i, kStatusFinished, 0, 1);
    }
    recovered.end_workflow(wkf, 2010.0);
    recovered.flush();
    resumed_digest = recovered.content_digest();
  }

  // Phase 3: recovery is repeatable — a third open replays the recovered
  // history plus the resumed work byte-identically.
  ProvenanceStore reopened(options);
  chaos::InvariantChecker checker;
  EXPECT_TRUE(checker.check_recovery(reopened)) << checker.to_string();
  EXPECT_EQ(reopened.content_digest(), resumed_digest);
  EXPECT_EQ(reopened.last_recovery().truncated_bytes, 0u)
      << "the first recovery's repair must leave no torn tail behind";
}

TEST(ProvRecovery, KillPointMatrix) {
  const std::vector<KillCase> cases = kill_matrix();
  ASSERT_GE(cases.size(), 30u);
  for (const KillCase& c : cases) {
    SCOPED_TRACE(case_name(c));
    run_kill_case(c);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---- negative controls: direct on-disk corruption ----

/// Highest-index sealed segment of shard 0 and its decoded frame count.
struct Victim {
  std::string path;
  std::string content;
  std::size_t frames = 0;
};

Victim find_victim(vfs::SharedFileSystem& fs) {
  Victim v;
  for (const vfs::FileInfo& f : fs.list("/prov/shard-0/")) {
    if (f.path.ends_with(".wal") && f.path > v.path) v.path = f.path;
  }
  if (v.path.empty()) return v;
  v.content = fs.read(v.path);
  std::size_t offset = 0;
  wal::WalRecord record;
  while (wal::decode_frame(v.content, offset, record)) {
    ++v.frames;
    record = wal::WalRecord{};
  }
  EXPECT_EQ(offset, v.content.size()) << "victim segment must start intact";
  return v;
}

/// Build a clean multi-segment log, reopen once (baseline), and hand the
/// filesystem to the corruption test.
std::size_t build_clean_log(const ProvenanceStoreOptions& options,
                            std::string* digest) {
  {
    ProvenanceStore store(options);
    run_campaign(store, 120);
  }
  ProvenanceStore base(options);
  EXPECT_EQ(base.last_recovery().truncated_bytes, 0u);
  *digest = base.content_digest();
  return base.last_recovery().records;
}

TEST(ProvRecovery, CorruptedTailTruncatesAtLastValidRecord) {
  vfs::SharedFileSystem fs;
  const ProvenanceStoreOptions options = durable_options(fs, 2, false);
  std::string base_digest;
  const std::size_t base_records = build_clean_log(options, &base_digest);

  const Victim victim = find_victim(fs);
  ASSERT_FALSE(victim.path.empty());
  ASSERT_GT(victim.frames, 1u);
  // Chop one byte off the tail: exactly the final record must be lost —
  // replay stops at the last valid frame boundary, not before.
  fs.write(victim.path, victim.content.substr(0, victim.content.size() - 1),
           0.0, "tamper");

  std::string damaged_digest;
  {
    ProvenanceStore recovered(options);
    EXPECT_EQ(recovered.last_recovery().records, base_records - 1);
    EXPECT_GT(recovered.last_recovery().truncated_bytes, 0u);
    chaos::InvariantChecker checker;
    EXPECT_TRUE(checker.check_recovery(recovered)) << checker.to_string();
    EXPECT_NE(recovered.content_digest(), base_digest);
    damaged_digest = recovered.content_digest();
  }
  // The repair truncated the segment on disk: the next open replays the
  // repaired log with nothing left to discard.
  ProvenanceStore again(options);
  EXPECT_EQ(again.last_recovery().records, base_records - 1);
  EXPECT_EQ(again.last_recovery().truncated_bytes, 0u);
  EXPECT_EQ(again.content_digest(), damaged_digest);
}

TEST(ProvRecovery, CorruptedChecksumDropsFrameAndSuffix) {
  vfs::SharedFileSystem fs;
  const ProvenanceStoreOptions options = durable_options(fs, 2, false);
  std::string base_digest;
  const std::size_t base_records = build_clean_log(options, &base_digest);

  const Victim victim = find_victim(fs);
  ASSERT_FALSE(victim.path.empty());
  ASSERT_GT(victim.frames, 1u);
  // Flip a payload byte of the victim's first frame: its checksum fails,
  // so replay keeps earlier segments but discards this one whole.
  std::string tampered = victim.content;
  tampered[10] = static_cast<char>(tampered[10] ^ 0x5a);
  fs.write(victim.path, tampered, 0.0, "tamper");

  ProvenanceStore recovered(options);
  EXPECT_EQ(recovered.last_recovery().records, base_records - victim.frames);
  EXPECT_GT(recovered.last_recovery().truncated_bytes, 0u);
  chaos::InvariantChecker checker;
  EXPECT_TRUE(checker.check_recovery(recovered)) << checker.to_string();
}

}  // namespace
}  // namespace scidock::prov
