#pragma once

/// \file energy.hpp
/// Energy models binding a (receptor, ligand) pair to a scalar objective
/// over DockPose. AD4 scores through precomputed grid maps; Vina scores
/// by direct pairwise evaluation through a neighbour list.

#include <memory>
#include <vector>

#include "dock/autogrid.hpp"
#include "dock/conformation.hpp"
#include "dock/energy_lut.hpp"
#include "dock/grid.hpp"
#include "dock/pose_batch.hpp"
#include "dock/scoring.hpp"
#include "mol/prepare.hpp"
#include "util/aligned.hpp"

namespace scidock::dock {

/// AD4 grid-based objective. Holds references: the maps and ligand must
/// outlive the model.
class Ad4EnergyModel {
 public:
  Ad4EnergyModel(const GridMapSet& maps, const mol::PreparedLigand& ligand,
                 Ad4Weights weights = {});

  /// Receptor-ligand energy of explicit coordinates (map interpolation).
  double intermolecular(const std::vector<mol::Vec3>& coords) const;
  /// Ligand internal energy (pairwise, torsion-dependent).
  double intramolecular(const std::vector<mol::Vec3>& coords) const;

  /// Objective on a pose; also counts one energy evaluation.
  double operator()(const DockPose& pose) const;

  /// Batched objective through the SoA/SIMD path: applies the torsion
  /// tree per pose, packs a PoseBatch (kWidth poses per lane block) and
  /// evaluates the grid-sampling and intra-pair kernels lane-parallel.
  /// Counts one energy evaluation per pose. Lane-for-lane equivalent to
  /// operator() within the documented kernel tolerance (exact on backends
  /// without FMA contraction).
  std::vector<double> evaluate_batch(const std::vector<DockPose>& poses) const;

  /// Batched scoring with the inter/intra split the engines report.
  /// Does not count evaluations (reporting path, not search path).
  void score_batch(const std::vector<DockPose>& poses,
                   std::vector<double>* inter, std::vector<double>* intra) const;

  /// Reported FEB: best intermolecular + torsional entropy penalty
  /// (AD4's DeltaG = inter + tors * N_tors; intra cancels in the bound/
  /// unbound difference under the rigid-receptor approximation).
  double feb(double inter) const;

  std::vector<mol::Vec3> coords_for(const DockPose& pose) const;
  long long evaluations() const { return evaluations_; }
  const mol::Vec3& reference_center() const { return reference_center_; }

 private:
  /// Per-atom channel pointers and charge/solvation factors, precomputed
  /// once so the fused inner loop reads three maps through one
  /// TrilinearSampler without per-evaluation type lookups.
  struct AtomChannels {
    const GridMap* affinity;
    double charge;  ///< partial charge (electrostatic map factor)
    double solv;    ///< solpar + kQasp * |q| (desolvation map factor)
  };
  /// Intramolecular pair with everything distance-independent hoisted.
  struct IntraPair {
    int i, j;
    mol::AdType ti, tj;
    double qi, qj;
    double qq;    ///< qi * qj (Coulomb factor)
    double solv;  ///< symmetric solvation cross term
    const double* row;  ///< the pair's vdW/H-bond LUT channel
  };

  /// Apply the torsion tree per pose and repack into the SoA scratch.
  void pack_batch(const std::vector<DockPose>& poses) const;
  void intermolecular_batch(std::vector<double>& out) const;
  void intramolecular_batch(std::vector<double>& out) const;

  const GridMapSet& maps_;
  const mol::PreparedLigand& ligand_;
  Ad4Weights weights_;
  std::shared_ptr<const Ad4PairTables> tables_;
  std::vector<mol::Vec3> reference_coords_;
  mol::Vec3 reference_center_{};
  std::vector<AtomChannels> channels_;
  std::vector<IntraPair> intra_pairs_;
  mutable PoseBatch batch_;  ///< reused SoA scratch (same discipline as
                             ///< evaluations_: one model per thread)
  mutable long long evaluations_ = 0;
};

/// Vina direct-evaluation objective.
class VinaEnergyModel {
 public:
  VinaEnergyModel(const mol::PreparedReceptor& receptor,
                  const mol::PreparedLigand& ligand, const GridBox& box,
                  VinaWeights weights = {});

  double intermolecular(const std::vector<mol::Vec3>& coords) const;
  double intramolecular(const std::vector<mol::Vec3>& coords) const;
  double operator()(const DockPose& pose) const;

  /// Batched objective (see Ad4EnergyModel::evaluate_batch). The
  /// intermolecular term vectorizes over each atom's neighbour block and
  /// the intramolecular term lane-parallelizes across poses; both are
  /// equivalent to operator() within the documented kernel tolerance.
  /// Counts one energy evaluation per pose.
  std::vector<double> evaluate_batch(const std::vector<DockPose>& poses) const;

  /// Batched inter/intra scoring without touching the evaluation count.
  void score_batch(const std::vector<DockPose>& poses,
                   std::vector<double>* inter, std::vector<double>* intra) const;

  /// Vina's reported affinity from the best intermolecular energy.
  double feb(double inter) const;

  std::vector<mol::Vec3> coords_for(const DockPose& pose) const;
  long long evaluations() const { return evaluations_; }
  const mol::Vec3& reference_center() const { return reference_center_; }

 private:
  /// Intramolecular pair with the LUT channel hoisted: the type pair is
  /// fixed per pair, so the row pointer is resolved once at construction.
  struct VinaIntraPair {
    int i, j;
    const double* row;
  };

  void intramolecular_batch(std::vector<double>& out) const;

  const mol::PreparedReceptor& receptor_;
  const mol::PreparedLigand& ligand_;
  GridBox box_;
  VinaWeights weights_;
  std::shared_ptr<const VinaPairTables> tables_;
  NeighborList neighbors_;
  std::vector<mol::Vec3> reference_coords_;
  mol::Vec3 reference_center_{};
  /// Skip-type pairs (hydrogens) contribute zero at every distance, so
  /// they are pruned at construction rather than tested per evaluation.
  std::vector<VinaIntraPair> intra_pairs_;
  /// Per-ligand-atom LUT channel by receptor type: lig_rows_[a * kAdTypeCount
  /// + t] is the (ligand type of a, t) row, so the neighbour loop resolves
  /// its channel with one indexed load instead of a pair_index() per hit.
  std::vector<const double*> lig_rows_;
  std::vector<int> rec_types_;  ///< receptor atom AdType as int, hoisted
  mutable PoseBatch batch_;     ///< reused SoA scratch (one model per thread)
  /// Neighbour-block scratch for the vectorized intermolecular term: the
  /// (r², channel) pairs of one ligand atom, padded to a lane multiple.
  mutable util::aligned_vector<double> d2_scratch_;
  mutable std::vector<const double*> row_scratch_;
  mutable long long evaluations_ = 0;
};

}  // namespace scidock::dock
