file(REMOVE_RECURSE
  "libscidock_sql.a"
)
