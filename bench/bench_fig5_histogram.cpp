// Figure 5: histogram of SciDock activity execution times, produced the
// paper's way — by running the workflow, then issuing the duration SQL
// query against the provenance repository and binning the result.

#include <cstdio>

#include "bench_common.hpp"
#include "data/table2.hpp"
#include "scidock/analysis.hpp"
#include "util/stats.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: activity execution-time histogram",
                      "Figure 5 (+ the Section V.C duration query)");

  const int pairs = bench::env_int("SCIDOCK_FIG5_PAIRS", 1000);
  core::ScidockOptions options;
  options.engine_mode = core::EngineMode::Adaptive;
  core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(),
      static_cast<std::size_t>(pairs), options);

  prov::ProvenanceStore store;
  const wf::SimReport report = core::run_simulated(exp, 16, &store);
  std::printf("simulated %d pairs on 16 cores: %lld activations finished\n\n",
              pairs, report.activations_finished);

  // The paper's query, verbatim (workflow id 1 in this repository).
  const std::string query = core::figure5_query(1);
  std::printf("SQL> %s\n\n", query.c_str());
  const sql::ResultSet rs = store.query(query);

  RunningStats stats;
  std::vector<double> durations;
  for (const sql::Row& row : rs.rows) {
    if (!row[0].is_null()) {
      stats.add(row[0].as_double());
      durations.push_back(row[0].as_double());
    }
  }
  // Bin to the 99th percentile; the hang-watchdog aborts (1800 s) land in
  // the overflow bin rather than flattening the whole chart.
  Histogram hist(0.0, percentile(durations, 99.0) + 1.0, 24);
  for (double d : durations) hist.add(d);
  std::printf("number of occurrences per duration bin (seconds):\n%s\n",
              hist.render(56).c_str());
  std::printf("activations: %zu   mean %.1f s   stddev %.1f s   max %.1f s\n",
              stats.count(), stats.mean(), stats.stddev(), stats.max());
  std::printf("\nshape check: right-skewed unimodal distribution with a long\n"
              "tail from the docking activity, as in the paper's Figure 5.\n");
  return 0;
}
