#include "wf/scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::wf {

std::size_t GreedyCostScheduler::pick_impl(
    const std::vector<PendingActivation>& queue, const cloud::VmInstance& vm) {
  SCIDOCK_ASSERT(!queue.empty());
  // Re-executions first: the paper's fault tolerance resubmits failed
  // activations promptly rather than appending them to the tail.
  std::size_t best = 0;
  bool best_retry = queue[0].attempts > 0;
  const bool fast_vm = vm.slowdown() <= fast_vm_threshold;
  auto better = [&](std::size_t a, std::size_t b) {
    // true if queue[a] should be preferred over queue[b]
    const bool ra = queue[a].attempts > 0;
    const bool rb = queue[b].attempts > 0;
    if (ra != rb) return ra;
    if (fast_vm) return queue[a].expected_cost_s > queue[b].expected_cost_s;
    return queue[a].expected_cost_s < queue[b].expected_cost_s;
  };
  for (std::size_t i = 1; i < queue.size(); ++i) {
    if (better(i, best)) {
      best = i;
      best_retry = queue[i].attempts > 0;
    }
  }
  (void)best_retry;
  return best;
}

std::size_t FifoScheduler::pick_impl(const std::vector<PendingActivation>& queue,
                                     const cloud::VmInstance& /*vm*/) {
  SCIDOCK_ASSERT(!queue.empty());
  return 0;
}

std::unique_ptr<Scheduler> make_scheduler(std::string_view policy_name) {
  if (iequals(policy_name, "greedy-cost") || iequals(policy_name, "greedy")) {
    return std::make_unique<GreedyCostScheduler>();
  }
  if (iequals(policy_name, "fifo") || iequals(policy_name, "round-robin")) {
    return std::make_unique<FifoScheduler>();
  }
  throw NotFoundError("scheduler policy", policy_name);
}

}  // namespace scidock::wf
