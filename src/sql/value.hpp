#pragma once

/// \file value.hpp
/// The dynamically-typed cell value of the SQL engine. NULL, 64-bit
/// integers, doubles and strings cover everything the PROV-Wf schema
/// stores (timestamps are doubles: seconds since the experiment epoch).

#include <cstdint>
#include <string>
#include <variant>

namespace scidock::sql {

struct Null {
  bool operator==(const Null&) const = default;
};

class Value {
 public:
  Value() : v_(Null{}) {}
  Value(Null) : v_(Null{}) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(std::size_t i) : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}

  bool is_null() const { return std::holds_alternative<Null>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  std::int64_t as_int() const;
  double as_double() const;          ///< numeric coercion (int -> double)
  const std::string& as_string() const;

  /// SQL three-valued comparison is handled by the engine; this is a total
  /// order for ORDER BY / GROUP BY (NULL < numbers < strings).
  std::strong_ordering compare(const Value& other) const;
  bool operator==(const Value& other) const { return compare(other) == std::strong_ordering::equal; }

  /// Render as SQL text (for result printing).
  std::string to_string() const;

 private:
  std::variant<Null, std::int64_t, double, std::string> v_;
};

}  // namespace scidock::sql
