#pragma once

/// \file grid.hpp
/// Affinity-grid primitives: the search box, a trilinearly-interpolated
/// scalar field, and the per-atom-type map set AutoGrid produces
/// (SciDock activity 5).

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "mol/atom_typing.hpp"
#include "mol/geometry.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

namespace scidock::dock {

/// The docking search box: centre + integer point counts + spacing, the
/// same parameterisation as AutoGrid's GPF `npts`/`spacing`/`gridcenter`.
struct GridBox {
  mol::Vec3 center{};
  std::array<int, 3> npts{40, 40, 40};  ///< points per axis (>= 2)
  double spacing = 0.375;               ///< Å between points

  mol::Vec3 origin() const {
    return {center.x - spacing * (npts[0] - 1) / 2.0,
            center.y - spacing * (npts[1] - 1) / 2.0,
            center.z - spacing * (npts[2] - 1) / 2.0};
  }
  mol::Vec3 extent() const {
    return {spacing * (npts[0] - 1), spacing * (npts[1] - 1),
            spacing * (npts[2] - 1)};
  }
  mol::Aabb bounds() const {
    const mol::Vec3 o = origin();
    return {o, o + extent()};
  }
  bool contains(const mol::Vec3& p) const { return bounds().contains(p); }
  std::size_t total_points() const {
    return static_cast<std::size_t>(npts[0]) * static_cast<std::size_t>(npts[1]) *
           static_cast<std::size_t>(npts[2]);
  }

  /// Box sized to enclose a ligand search volume around `center` with
  /// `padding` Å on each side, clamped to the given spacing.
  static GridBox around(const mol::Vec3& center, double half_extent,
                        double spacing = 0.375);
};

/// One scalar field over the box. Storage is x-fastest (AutoGrid order).
class GridMap {
 public:
  GridMap() = default;
  GridMap(GridBox box, std::string label);

  const GridBox& box() const { return box_; }
  const std::string& label() const { return label_; }

  double& at(int ix, int iy, int iz);
  double at(int ix, int iy, int iz) const;

  /// Trilinear interpolation; positions outside the box are clamped to a
  /// large penalty (AutoDock treats out-of-box as forbidden).
  double sample(const mol::Vec3& p) const;

  /// Value returned for out-of-box samples.
  static constexpr double kOutOfBoxPenalty = 1.0e5;

  /// Unchecked linear-index access for the fused sampling hot path. The
  /// caller (TrilinearSampler) validated the cell against the box once;
  /// per-corner `SCIDOCK_ASSERT`s stay out of the inner loop.
  double value_unchecked(std::size_t linear) const { return values_[linear]; }

  /// Storage is cache-line aligned (util::aligned_vector) so lane-width
  /// SIMD loads in the batched samplers never straddle cache lines.
  util::aligned_vector<double>& values() { return values_; }
  const util::aligned_vector<double>& values() const { return values_; }

  /// Serialise in (abbreviated) AutoGrid .map format: header + one value
  /// per line. parse() round-trips.
  std::string to_map_file() const;
  static GridMap from_map_file(std::string_view text);

 private:
  std::size_t index(int ix, int iy, int iz) const;

  GridBox box_;
  std::string label_;
  util::aligned_vector<double> values_;
};

/// Trilinear cell + weights for one position in one box, computed once and
/// applied to any number of maps sharing that box — the fused sampling
/// path: AD4 reads the affinity, electrostatic and desolvation maps per
/// atom, so fusing saves two thirds of the origin/index math.
///
/// apply() reproduces GridMap::sample() bit for bit (same corner loads,
/// same lerp association); GridMap::sample() itself delegates here.
class TrilinearSampler {
 public:
  TrilinearSampler(const GridBox& box, const mol::Vec3& p);

  bool in_box() const { return in_box_; }

  /// Interpolate `map` at the constructor position. Contract: `map`
  /// shares the constructor box (same npts/spacing/origin) and the
  /// position was in the box; unchecked in the inner loop.
  double apply(const GridMap& map) const {
    auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
    const std::size_t b = base_;
    const double c00 =
        lerp(map.value_unchecked(b), map.value_unchecked(b + 1), tx_);
    const double c10 = lerp(map.value_unchecked(b + sy_),
                            map.value_unchecked(b + sy_ + 1), tx_);
    const double c01 = lerp(map.value_unchecked(b + sz_),
                            map.value_unchecked(b + sz_ + 1), tx_);
    const double c11 = lerp(map.value_unchecked(b + sy_ + sz_),
                            map.value_unchecked(b + sy_ + sz_ + 1), tx_);
    return lerp(lerp(c00, c10, ty_), lerp(c01, c11, ty_), tz_);
  }

 private:
  std::size_t base_ = 0;
  std::size_t sy_ = 0;  ///< +1 in y: npts[0]
  std::size_t sz_ = 0;  ///< +1 in z: npts[0] * npts[1]
  double tx_ = 0.0;
  double ty_ = 0.0;
  double tz_ = 0.0;
  bool in_box_ = false;
};

/// Lane-parallel fused sampling: one trilinear cell/weight computation for
/// simd::f64x::kWidth positions at once (SoA x/y/z planes, one lane per
/// pose in a PoseBatch), applied to any number of maps sharing the box.
/// The cell math — including the spacing division, so in/out-of-box
/// decisions match exactly — and the nested-lerp blend reproduce
/// TrilinearSampler lane for lane; only the eight corner loads stay
/// per-lane (the cells differ across poses). Out-of-box lanes read cell 0
/// with zero weights and apply() blends in kOutOfBoxPenalty, mirroring the
/// scalar model's penalty accumulation.
class TrilinearSamplerLanes {
 public:
  /// `xs`/`ys`/`zs` each hold kWidth coordinates (padding lanes allowed:
  /// they compute like any other lane and callers ignore the results).
  TrilinearSamplerLanes(const GridBox& box, const double* xs,
                        const double* ys, const double* zs);

  /// All-false when every lane fell outside the box (callers can skip the
  /// corner loads entirely and add the penalty channel-wise).
  bool any_in_box() const { return any_in_box_; }
  bool all_in_box() const { return all_in_box_; }
  simd::f64x in_box_mask() const { return in_mask_; }

  /// Interpolate `map` across the lanes; out-of-box lanes yield
  /// GridMap::kOutOfBoxPenalty. Same contract as TrilinearSampler::apply:
  /// the map must share the constructor box.
  simd::f64x apply(const GridMap& map) const {
    const double* g = map.values().data();
    alignas(64) double c[8][simd::f64x::kWidth];
    for (int l = 0; l < simd::f64x::kWidth; ++l) {
      const std::size_t b = base_[l];
      const std::size_t sy = sy_, sz = sz_;
      c[0][l] = g[b];
      c[1][l] = g[b + 1];
      c[2][l] = g[b + sy];
      c[3][l] = g[b + sy + 1];
      c[4][l] = g[b + sz];
      c[5][l] = g[b + sz + 1];
      c[6][l] = g[b + sy + sz];
      c[7][l] = g[b + sy + sz + 1];
    }
    const auto lerp = [](simd::f64x a, simd::f64x b, simd::f64x t) {
      return a + (b - a) * t;  // scalar association, no FMA: bit-stable
    };
    const simd::f64x c00 =
        lerp(simd::f64x::load(c[0]), simd::f64x::load(c[1]), tx_);
    const simd::f64x c10 =
        lerp(simd::f64x::load(c[2]), simd::f64x::load(c[3]), tx_);
    const simd::f64x c01 =
        lerp(simd::f64x::load(c[4]), simd::f64x::load(c[5]), tx_);
    const simd::f64x c11 =
        lerp(simd::f64x::load(c[6]), simd::f64x::load(c[7]), tx_);
    const simd::f64x interpolated =
        lerp(lerp(c00, c10, ty_), lerp(c01, c11, ty_), tz_);
    return simd::blend(in_mask_, interpolated,
                       simd::f64x(GridMap::kOutOfBoxPenalty));
  }

 private:
  std::size_t base_[simd::f64x::kWidth] = {};
  std::size_t sy_ = 0;
  std::size_t sz_ = 0;
  simd::f64x tx_, ty_, tz_;
  simd::f64x in_mask_;
  bool any_in_box_ = false;
  bool all_in_box_ = false;
};

/// The full AutoGrid output for one receptor/box: one affinity map per
/// ligand atom type plus electrostatic and desolvation maps.
struct GridMapSet {
  GridBox box;
  std::vector<std::pair<mol::AdType, GridMap>> affinity;  ///< per ligand type
  GridMap electrostatic;
  GridMap desolvation;

  const GridMap* affinity_for(mol::AdType t) const;
  /// Number of files the real AutoGrid would emit (atom maps + e + d +
  /// field + xyz), used by the provenance file accounting.
  int file_count() const { return static_cast<int>(affinity.size()) + 4; }
};

}  // namespace scidock::dock
