#pragma once

/// \file sim_executor.hpp
/// The cloud-simulation executor: replays a workflow over the discrete-
/// event simulator with a calibrated cost model, VM heterogeneity, data
/// staging, activation failures/hangs with re-execution, elasticity and
/// scheduler planning overhead. This is the engine behind the paper's
/// Figures 5-9 (TET / speedup / efficiency sweeps), which cannot be
/// measured natively on this machine.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cluster.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/failure.hpp"
#include "cloud/sim.hpp"
#include "obs/obs.hpp"
#include "prov/prov.hpp"
#include "util/stats.hpp"
#include "wf/pipeline.hpp"
#include "wf/scheduler.hpp"

namespace scidock::wf {

struct SimExecutorOptions {
  /// Initial fleet: instance types to boot at t = 0. The paper mixes
  /// m3.xlarge and m3.2xlarge to reach each virtual-core count.
  std::vector<cloud::VmType> fleet;
  std::string scheduler_policy = "greedy-cost";
  cloud::FailureModelOptions failure{};
  bool reexecute_failures = true;   ///< ablation: off = failed tuples are lost
  /// The routine the paper's authors added to SciCumulus after diagnosing
  /// the Hg hangs via provenance: hazardous inputs are recognised and
  /// aborted *before* execution instead of burning the hang timeout on
  /// every attempt. Ablation: set false to replay the pre-fix behaviour.
  bool preabort_hazards = true;
  bool charge_scheduler_overhead = true;
  bool charge_data_staging = true;

  /// Elasticity (off by default: the scaling figures use fixed fleets so
  /// core counts stay comparable).
  bool elasticity = false;
  int min_vms = 1;
  int max_vms = 32;
  double elasticity_period_s = 300.0;
  cloud::VmType elastic_vm_type;   ///< type acquired when scaling up

  /// Per-activity stage-in/out volume (bytes) priced through the shared
  /// filesystem latency model; keyed by activity tag, fallback `default`.
  std::map<std::string, std::size_t> io_bytes;
  std::size_t default_io_bytes = 256 * 1024;
  vfs::LatencyModel fs_latency{};

  std::uint64_t seed = 42;

  /// Optional tracing/metrics sinks (see obs/obs.hpp). Spans are stamped
  /// with *simulated* seconds (x 1e6 for Chrome microseconds) and carry
  /// the VM id as their trace row; the executor counter series match the
  /// native executor's names so reconciliation SQL is executor-agnostic.
  obs::Observability obs;
};

struct SimActivationRecord {
  std::string tag;
  std::size_t tuple_index = 0;
  double start = 0.0;
  double end = 0.0;
  long long vm_id = 0;
  int attempt = 1;
  std::string status;  ///< FINISHED / FAILED / ABORTED
};

struct SimReport {
  double total_execution_time_s = 0.0;   ///< the paper's TET
  long long activations_finished = 0;
  long long activations_failed = 0;      ///< failed attempts (re-executed)
  long long activations_hung = 0;        ///< looping-state aborts
  long long tuples_completed = 0;
  long long tuples_lost = 0;             ///< only when re-execution is off
  double scheduling_overhead_s = 0.0;    ///< summed planning time
  double data_staging_s = 0.0;           ///< summed shared-FS time
  double cloud_cost_usd = 0.0;
  int peak_alive_vms = 0;
  int total_cores = 0;
  std::map<std::string, RunningStats> per_activity_seconds;
  std::vector<SimActivationRecord> records;

  /// Mean duration across all finished activations.
  double mean_activation_seconds() const;
};

class SimulatedExecutor {
 public:
  SimulatedExecutor(const Pipeline& pipeline, cloud::CostModel cost_model,
                    SimExecutorOptions options);

  /// Replay the workflow over `input`. When `prov` is non-null every
  /// attempt is recorded with simulated timestamps under a new workflow
  /// id (`workflow_tag`).
  SimReport run(const Relation& input, prov::ProvenanceStore* prov = nullptr,
                const std::string& workflow_tag = "scidock-sim");

 private:
  const Pipeline& pipeline_;
  cloud::CostModel cost_model_;
  SimExecutorOptions options_;
};

/// Helper: a fleet of mixed m3 instances totalling `virtual_cores` cores,
/// following the paper's combination of m3.xlarge/m3.2xlarge (8-core VMs
/// preferred, a 4-core VM to round odd totals).
std::vector<cloud::VmType> m3_fleet_for_cores(int virtual_cores);

}  // namespace scidock::wf
