file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tet.dir/bench_fig7_tet.cpp.o"
  "CMakeFiles/bench_fig7_tet.dir/bench_fig7_tet.cpp.o.d"
  "bench_fig7_tet"
  "bench_fig7_tet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
