#pragma once

/// \file rng.hpp
/// Deterministic random number generation.
///
/// Everything in scidock that needs randomness (synthetic structure
/// generation, docking search, cloud jitter, failure injection) takes an
/// explicit Rng so runs are reproducible from a single seed. The generator
/// is xoshiro256** seeded through splitmix64, the standard recipe for
/// decorrelating small seeds.

#include <array>
#include <cstdint>
#include <string_view>

namespace scidock {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a 64-bit hash of a string; used to derive per-entity seeds from
/// stable identifiers (e.g. the PDB code "2HHN") so synthetic structures
/// are a pure function of their name.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5c1d0cULL) { reseed(seed); }

  /// Derive a generator for a named sub-stream; different names give
  /// statistically independent streams from the same parent seed.
  Rng fork(std::string_view stream_name) const {
    return Rng(seed_ ^ fnv1a64(stream_name));
  }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (no cached spare; keeps state simple).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stdev) { return mean + stdev * normal(); }

  /// Log-normal: exp of a normal with the given *underlying* mu/sigma.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda).
  double exponential(double rate);

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform() < p; }

  std::uint64_t seed() const { return seed_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace scidock
