#include "obs/obs.hpp"

#include <string_view>
#include <vector>

#include "util/lockdep.hpp"
#include "util/racer.hpp"

namespace scidock::obs {

void publish_lockdep_metrics(MetricsRegistry& registry) {
  if (!lockdep::compiled_in()) return;
  const lockdep::CounterSnapshot snap = lockdep::counters();
  registry
      .gauge(kLockdepLockClasses, "distinct named lock classes registered")
      .set(static_cast<double>(snap.lock_classes));
  const auto publish = [&registry](const char* name, const char* help,
                                   long long value) {
    Counter& c = registry.counter(name, help);
    c.inc(value - c.value());  // delta: repeated publishes stay monotone
  };
  publish(kLockdepAcquisitions, "instrumented lock acquisitions",
          snap.acquisitions);
  publish(kLockdepOrderEdges, "distinct lock-order graph edges",
          snap.order_edges);
  publish(kLockdepCondWaits, "CondVar::wait hazard checks", snap.cond_waits);
  publish(kLockdepPoolWaitChecks, "parallel_for self-wait checks",
          snap.pool_wait_checks);
  publish(kLockdepBlockingWaits, "annotated blocking-wait checks",
          snap.blocking_waits);
  publish(kLockdepFindingsError, "error-severity hazard findings",
          snap.findings_error);
  publish(kLockdepFindingsWarning, "warning-severity hazard findings",
          snap.findings_warning);
}

void publish_racer_metrics(MetricsRegistry& registry) {
  if (!racer::compiled_in()) return;
  const racer::CounterSnapshot snap = racer::counters();
  registry.gauge(kRacerThreads, "threads with a racer vector-clock slot")
      .set(static_cast<double>(snap.threads));
  registry.gauge(kRacerSyncObjects, "registered named sync objects")
      .set(static_cast<double>(snap.sync_objects));
  registry.gauge(kRacerTrackedCells, "shadow-tracked cells (ever seen)")
      .set(static_cast<double>(snap.cells));
  const auto publish = [&registry](const char* name, const char* help,
                                   long long value) {
    Counter& c = registry.counter(name, help);
    c.inc(value - c.value());  // delta: repeated publishes stay monotone
  };
  publish(kRacerReads, "instrumented shadow-cell reads", snap.reads);
  publish(kRacerWrites, "instrumented shadow-cell writes", snap.writes);
  publish(kRacerMutexEdges, "mutex release->acquire joins", snap.mutex_edges);
  publish(kRacerTaskEdges, "task fork/finish/join edges", snap.task_edges);
  publish(kRacerHbEdges, "explicit publish handshake edges", snap.hb_edges);
  publish(kRacerReductionRecords, "reduction digest records",
          snap.reduction_records);
  publish(kRacerFindingsError, "error-severity race findings",
          snap.findings_error);
  publish(kRacerFindingsWarning, "warning-severity race findings",
          snap.findings_warning);
}

const std::vector<std::string_view>& known_metric_names() {
  static const std::vector<std::string_view> names = {
      // cache (src/scidock)
      kCacheGridmapsHits,
      kCacheGridmapsInflightWaits,
      kCacheGridmapsMisses,
      // cloud simulator (src/cloud)
      "scidock_cloud_cost_usd",
      "scidock_cloud_total_cores",
      "scidock_cloud_vm_utilisation",
      "scidock_cloud_vms_acquired_total",
      "scidock_cloud_vms_released_total",
      // executors
      kActivationSeconds,
      kActivationsAborted,
      kActivationsFailed,
      kActivationsFinished,
      kActivationsRetried,
      kActivationsStarted,
      kTuplesCompleted,
      kTuplesLost,
      // AutoGrid kernel
      kKernelAutogridMapsets,
      kKernelAutogridSlabSeconds,
      kKernelAutogridSlabs,
      // lockdep analyzer
      kLockdepAcquisitions,
      kLockdepBlockingWaits,
      kLockdepCondWaits,
      kLockdepFindingsError,
      kLockdepFindingsWarning,
      kLockdepLockClasses,
      kLockdepOrderEdges,
      kLockdepPoolWaitChecks,
      // thread pool (instrument_thread_pool)
      "scidock_pool_queue_depth",
      "scidock_pool_queue_wait_seconds",
      "scidock_pool_task_seconds",
      "scidock_pool_tasks_total",
      // provenance store (ProvenanceStore::set_metrics)
      "scidock_prov_activation_rows_total",
      "scidock_prov_activity_rows_total",
      "scidock_prov_file_rows_total",
      "scidock_prov_machine_rows_total",
      "scidock_prov_queries_total",
      "scidock_prov_recovery_orphan_rows",
      "scidock_prov_recovery_records",
      "scidock_prov_recovery_segments",
      "scidock_prov_recovery_truncated_bytes",
      "scidock_prov_shards",
      "scidock_prov_value_rows_total",
      "scidock_prov_wal_bytes_total",
      "scidock_prov_wal_group_commits_total",
      "scidock_prov_wal_pending_bytes",
      "scidock_prov_wal_records_total",
      "scidock_prov_wal_rotations_total",
      "scidock_prov_workflow_rows_total",
      // racer analyzer
      kRacerFindingsError,
      kRacerFindingsWarning,
      kRacerHbEdges,
      kRacerMutexEdges,
      kRacerReads,
      kRacerReductionRecords,
      kRacerSyncObjects,
      kRacerTaskEdges,
      kRacerThreads,
      kRacerTrackedCells,
      kRacerWrites,
      // simulated scheduler
      "scidock_sched_mean_queue_length",
      "scidock_sched_overhead_seconds",
      "scidock_sched_picks_total",
      "scidock_sched_reexecution_picks_total",
  };
  return names;
}

ExecutorCounters executor_counters(MetricsRegistry* registry) {
  ExecutorCounters c;
  if (registry == nullptr) return c;
  c.started = &registry->counter(
      kActivationsStarted, "activation attempts dispatched (all outcomes)");
  c.finished =
      &registry->counter(kActivationsFinished, "attempts ending FINISHED");
  c.failed = &registry->counter(kActivationsFailed,
                                "attempts ending FAILED (re-executed)");
  c.aborted = &registry->counter(
      kActivationsAborted, "attempts ending ABORTED (hang watchdog)");
  c.retried = &registry->counter(kActivationsRetried,
                                 "attempts with attempt number > 1");
  c.tuples_completed = &registry->counter(
      kTuplesCompleted, "input tuples that traversed their whole chain");
  c.tuples_lost =
      &registry->counter(kTuplesLost, "input tuples that exhausted retries");
  c.activation_seconds = &registry->histogram(
      kActivationSeconds, {}, "duration of FINISHED activation attempts");
  return c;
}

void instrument_thread_pool(ThreadPool& pool, MetricsRegistry& registry) {
  Gauge* depth = &registry.gauge("scidock_pool_queue_depth",
                                 "work-queue depth after latest enqueue");
  Counter* tasks =
      &registry.counter("scidock_pool_tasks_total", "tasks executed");
  HistogramMetric* wait = &registry.histogram(
      "scidock_pool_queue_wait_seconds", {}, "submit-to-start latency");
  HistogramMetric* exec = &registry.histogram("scidock_pool_task_seconds", {},
                                              "task execution time");
  ThreadPool::StatsHook hook;
  hook.enqueued = [depth](std::size_t queue_depth) {
    depth->set(static_cast<double>(queue_depth));
  };
  hook.finished = [tasks, wait, exec](double wait_s, double exec_s) {
    tasks->inc();
    wait->observe(wait_s);
    exec->observe(exec_s);
  };
  pool.set_stats_hook(std::move(hook));
}

}  // namespace scidock::obs
