#include "xml/xml.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::xml {

std::optional<std::string> Element::attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

const std::string& Element::require_attribute(std::string_view key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  throw NotFoundError("XML attribute", std::string(name_) + "/@" + std::string(key));
}

void Element::set_attribute(std::string key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(key), std::move(value));
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

void Element::adopt_child(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Element::to_string(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attributes_) {
    out += " " + k + "=\"" + escape(v) + "\"";
  }
  if (children_.empty() && text_.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text_.empty()) out += escape(text_);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c->to_string(indent + 1);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

std::string Document::to_string() const {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  if (root) out += root->to_string();
  return out;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  std::size_t i = 0;
  while (i < escaped.size()) {
    if (escaped[i] != '&') {
      out += escaped[i++];
      continue;
    }
    const std::size_t semi = escaped.find(';', i);
    if (semi == std::string_view::npos) {
      throw ParseError("XML", "unterminated entity reference");
    }
    const std::string_view entity = escaped.substr(i + 1, semi - i - 1);
    if (entity == "amp") out += '&';
    else if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "quot") out += '"';
    else if (entity == "apos") out += '\'';
    else if (!entity.empty() && entity[0] == '#') {
      long long code = 0;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::stoll(std::string(entity.substr(2)), nullptr, 16);
      } else {
        code = parse_int(entity.substr(1), "XML char ref");
      }
      if (code < 0 || code > 0x10FFFF) throw ParseError("XML", "bad char ref");
      // ASCII only: the workflow specs never need more.
      if (code < 128) out += static_cast<char>(code);
      else throw ParseError("XML", "non-ASCII char ref unsupported");
    } else {
      throw ParseError("XML", "unknown entity &" + std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Document parse_document() {
    skip_prolog();
    Document doc;
    doc.root = parse_element();
    skip_ws_and_comments();
    if (pos_ != text_.size()) {
      fail("trailing content after root element");
    }
    return doc;
  }

 private:
  /// 1-based line number of the current position (specs are small, so a
  /// rescan per call is cheaper than threading a counter through).
  int line_at() const {
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return line;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("XML", why + " (line " + std::to_string(line_at()) + ")");
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }
  bool consume(std::string_view s) {
    if (text_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  void skip_comment() {
    if (!consume("<!--")) return;
    const std::size_t end = text_.find("-->", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  void skip_ws_and_comments() {
    for (;;) {
      skip_ws();
      if (text_.substr(pos_, 4) == "<!--") skip_comment();
      else return;
    }
  }

  void skip_prolog() {
    skip_ws();
    if (consume("<?xml")) {
      const std::size_t end = text_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    skip_ws_and_comments();
    // DOCTYPE (ignored, no internal subset support)
    if (consume("<!DOCTYPE")) {
      const std::size_t end = text_.find('>', pos_);
      if (end == std::string_view::npos) fail("unterminated DOCTYPE");
      pos_ = end + 1;
      skip_ws_and_comments();
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == '.' || c == ':') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::unique_ptr<Element> parse_element() {
    const int open_line = line_at();
    if (!consume("<")) fail("expected '<'");
    auto element = std::make_unique<Element>(parse_name());
    element->set_source_line(open_line);

    // attributes
    for (;;) {
      skip_ws();
      if (consume("/>")) return element;
      if (consume(">")) break;
      const std::string key = parse_name();
      skip_ws();
      if (!consume("=")) fail("expected '=' after attribute name");
      skip_ws();
      const char quote = peek();
      if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
      ++pos_;
      const std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) fail("unterminated attribute value");
      element->set_attribute(key, unescape(text_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }

    // content
    std::string text;
    for (;;) {
      if (eof()) fail("unterminated element <" + element->name() + ">");
      if (text_.substr(pos_, 4) == "<!--") {
        skip_comment();
        continue;
      }
      if (consume("<![CDATA[")) {
        const std::size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) fail("unterminated CDATA");
        text += std::string(text_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (text_.substr(pos_, 2) == "</") {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != element->name()) {
          fail("mismatched </" + closing + ">, expected </" + element->name() + ">");
        }
        skip_ws();
        if (!consume(">")) fail("expected '>' in closing tag");
        element->set_text(std::string(trim(text)));
        return element;
      }
      if (peek() == '<') {
        element->adopt_child(parse_element());
        continue;
      }
      const std::size_t next = text_.find('<', pos_);
      if (next == std::string_view::npos) fail("unterminated element content");
      text += unescape(text_.substr(pos_, next - pos_));
      pos_ = next;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Document parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace scidock::xml
