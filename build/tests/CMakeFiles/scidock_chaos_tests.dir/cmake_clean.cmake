file(REMOVE_RECURSE
  "CMakeFiles/scidock_chaos_tests.dir/chaos_test.cpp.o"
  "CMakeFiles/scidock_chaos_tests.dir/chaos_test.cpp.o.d"
  "scidock_chaos_tests"
  "scidock_chaos_tests.pdb"
  "scidock_chaos_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_chaos_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
