#pragma once

/// \file ast.hpp
/// SQL abstract syntax: expressions and the four supported statements
/// (SELECT, CREATE TABLE, INSERT, DELETE).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/value.hpp"

namespace scidock::sql {

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  Eq, Ne, Lt, Le, Gt, Ge,
  And, Or,
  Like, Concat,
};

enum class UnaryOp { Neg, Not, IsNull, IsNotNull };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { Literal, Column, Binary, Unary, Call, Star, In, Between } kind;

  // Literal
  Value literal;

  // Column reference: optional qualifier ("t" in t.endtime).
  std::string qualifier;
  std::string column;

  // Binary / Unary
  BinaryOp binary_op = BinaryOp::Add;
  UnaryOp unary_op = UnaryOp::Neg;
  ExprPtr lhs;
  ExprPtr rhs;

  // Function call: name lower-cased; count(*) has `star_arg`.
  // For Kind::In, `args` holds the list and `lhs` the probe; for
  // Kind::Between, lhs/args[0]/args[1] are value/low/high.
  std::string call_name;
  std::vector<ExprPtr> args;
  bool star_arg = false;
  bool negated = false;  ///< NOT IN / NOT BETWEEN

  static ExprPtr make_literal(Value v);
  static ExprPtr make_column(std::string qualifier, std::string column);
  static ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr make_unary(UnaryOp op, ExprPtr operand);
  static ExprPtr make_call(std::string name, std::vector<ExprPtr> args);
  static ExprPtr make_star();
  static ExprPtr make_in(ExprPtr probe, std::vector<ExprPtr> list, bool negated);
  static ExprPtr make_between(ExprPtr value, ExprPtr lo, ExprPtr hi, bool negated);

  /// Deep copy (the engine re-uses select-list expressions in GROUP BY
  /// resolution).
  ExprPtr clone() const;

  /// Render back to SQL-ish text (diagnostics, result column headers).
  std::string to_string() const;
};

/// True if the expression contains an aggregate call (min/max/sum/avg/count).
bool contains_aggregate(const Expr& e);

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty = derive from expression
};

struct TableRef {
  std::string table;
  std::string alias;  ///< empty = table name itself
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;   ///< empty + star_all for SELECT *
  bool star_all = false;
  std::vector<TableRef> from;
  ExprPtr where;                   ///< null = no predicate
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<std::size_t> limit;
};

struct CreateTableStmt {
  std::string table;
  std::vector<std::string> columns;  ///< declared types are parsed & ignored
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  ///< empty = positional
  std::vector<std::vector<ExprPtr>> rows;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  ///< null = delete all
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  ///< null = update every row
};

struct Statement {
  enum class Kind { Select, CreateTable, Insert, Delete, Update } kind;
  SelectStmt select;
  CreateTableStmt create;
  InsertStmt insert;
  DeleteStmt del;
  UpdateStmt update;
};

}  // namespace scidock::sql
