#pragma once

/// \file stats.hpp
/// Streaming statistics and histograms used by the provenance analytics,
/// the cloud cost model and the benchmark report writers.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace scidock {

/// Welford streaming mean/variance plus min/max/sum. O(1) per sample.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); samples outside the range land in the
/// first/last bin so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// ASCII rendering (one line per bin with a proportional bar), as used by
  /// the Figure 5 bench.
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact percentile over a copied sample set (linear interpolation between
/// closest ranks). p in [0, 100].
double percentile(std::vector<double> values, double p);

}  // namespace scidock
