#include "lint/racer_lint.hpp"

#include <string>

#include "util/racer.hpp"

namespace scidock::lint {

Report racer_report() {
  Report report;
  for (const racer::Finding& f : racer::findings()) {
    std::string message = f.message;
    if (!f.details.empty()) {
      message += "\n";
      message += f.details;
    }
    report.add(std::string(racer::rule_id(f.kind)),
               f.is_error ? Severity::Error : Severity::Warning, f.file,
               f.line, std::move(message));
  }
  return report;
}

}  // namespace scidock::lint
