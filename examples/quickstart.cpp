// quickstart — dock one receptor-ligand pair end to end with both
// engines, printing the preparation steps, the docking results and the
// AutoDock-style .dlg log.
//
//   $ ./quickstart [RECEPTOR_CODE] [LIGAND_CODE]
//
// Codes default to the paper's best interaction, 2HHN-0E6 (cathepsin S
// with its arylaminoethyl amide ligand). Structures are produced by the
// deterministic synthetic generator, so any Table 2 code works offline.

#include <cstdio>
#include <string>

#include "data/generator.hpp"
#include "dock/autodock4.hpp"
#include "dock/dlg.hpp"
#include "dock/vina.hpp"
#include "mol/prepare.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace scidock;
  const std::string receptor_code = argc > 1 ? argv[1] : "2HHN";
  const std::string ligand_code = argc > 2 ? argv[2] : "0E6";

  // 1. Obtain structures (the stand-in for fetching them from RCSB-PDB).
  std::printf("== generating structures for %s (receptor) and %s (ligand)\n",
              receptor_code.c_str(), ligand_code.c_str());
  mol::Molecule receptor_raw = data::make_receptor(receptor_code);
  mol::Molecule ligand_raw = data::make_ligand(ligand_code);
  std::printf("   receptor: %d atoms, %d residues worth of chain\n",
              receptor_raw.atom_count(),
              data::receptor_residue_count(receptor_code));
  std::printf("   ligand:   %d heavy atoms\n", ligand_raw.heavy_atom_count());

  // 2. Prepare for docking (activities 2-3 of the SciDock workflow).
  std::printf("== preparing (Gasteiger charges, AutoDock types, torsion tree)\n");
  const mol::PreparedReceptor receptor = mol::prepare_receptor(receptor_raw);
  const mol::PreparedLigand ligand = mol::prepare_ligand(ligand_raw);
  std::printf("   ligand has %d rotatable bonds (TORSDOF)\n",
              ligand.torsions.torsion_count());

  // 3. Define the search box over the binding site.
  const dock::GridBox box =
      dock::GridBox::around(receptor.molecule.center(), 10.0, 0.55);

  // 4. Dock with AutoDock 4 (grid maps + Lamarckian GA).
  std::printf("== docking with AutoDock 4\n");
  dock::DockingParameterFile params;
  params.ga_runs = 4;
  params.ga_num_evals = 4000;
  dock::Autodock4Engine ad4(params);
  Rng rng_ad4(2014);
  const dock::DockingResult r_ad4 = ad4.dock(receptor, ligand, box, rng_ad4);
  std::printf("   best FEB %.2f kcal/mol after %lld energy evaluations\n",
              r_ad4.best().feb, r_ad4.energy_evaluations);

  // 5. Dock with Vina (direct scoring + Monte Carlo chains).
  std::printf("== docking with AutoDock Vina\n");
  dock::VinaConfig cfg;
  cfg.exhaustiveness = 6;
  dock::VinaEngine vina(cfg);
  vina.steps_per_chain = 50;
  Rng rng_vina(2014);
  const dock::DockingResult r_vina = vina.dock(receptor, ligand, box, rng_vina);
  std::printf("   best affinity %.2f kcal/mol over %zu reported modes\n",
              r_vina.best().feb, r_vina.conformations.size());

  // 6. The .dlg docking log, as the real AutoDock writes it.
  std::printf("\n== AutoDock .dlg log =====================================\n%s",
              dock::write_dlg(r_ad4).c_str());
  std::printf("\n== Vina log ==============================================\n%s",
              dock::write_vina_log(r_vina).c_str());
  return 0;
}
