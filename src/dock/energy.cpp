#include "dock/energy.hpp"

#include <cmath>

#include "util/error.hpp"

namespace scidock::dock {

namespace {

mol::Vec3 root_center(const mol::PreparedLigand& ligand) {
  std::vector<mol::Vec3> pts;
  for (int i : ligand.torsions.root_atoms()) {
    pts.push_back(ligand.molecule.atom(i).pos);
  }
  if (pts.empty()) return ligand.molecule.center();
  return mol::centroid(pts);
}

}  // namespace

Ad4EnergyModel::Ad4EnergyModel(const GridMapSet& maps,
                               const mol::PreparedLigand& ligand,
                               Ad4Weights weights)
    : maps_(maps), ligand_(ligand), weights_(weights),
      tables_(Ad4PairTables::shared(weights)),
      reference_coords_(ligand.molecule.coordinates()),
      reference_center_(root_center(ligand)) {
  // Fused sampling assumes every map shares the set's box; AutoGrid
  // guarantees this, and the map-file round trip preserves it.
  SCIDOCK_ASSERT(maps_.electrostatic.box().npts == maps_.box.npts &&
                 maps_.desolvation.box().npts == maps_.box.npts);
  constexpr double kQasp = 0.01097;
  channels_.reserve(static_cast<std::size_t>(ligand.molecule.atom_count()));
  for (int i = 0; i < ligand.molecule.atom_count(); ++i) {
    const mol::Atom& a = ligand.molecule.atom(i);
    const GridMap* aff = maps_.affinity_for(a.ad_type);
    // Every ligand type must have a map, otherwise the GPF was wrong.
    SCIDOCK_REQUIRE(aff != nullptr,
                    "missing AutoGrid map for ligand atom type " +
                        std::string(mol::ad_type_name(a.ad_type)));
    const auto& pa = mol::ad_type_params(a.ad_type);
    channels_.push_back({aff, a.partial_charge,
                         pa.solpar + kQasp * std::abs(a.partial_charge)});
  }
  for (const auto& [i, j] : intramolecular_pairs(ligand.molecule)) {
    const mol::Atom& ai = ligand.molecule.atom(i);
    const mol::Atom& aj = ligand.molecule.atom(j);
    const auto& pi = mol::ad_type_params(ai.ad_type);
    const auto& pj = mol::ad_type_params(aj.ad_type);
    const double qi = ai.partial_charge;
    const double qj = aj.partial_charge;
    intra_pairs_.push_back(
        {i, j, ai.ad_type, aj.ad_type, qi, qj, qi * qj,
         (pi.solpar + kQasp * std::abs(qi)) * pj.volume +
             (pj.solpar + kQasp * std::abs(qj)) * pi.volume,
         tables_->vdw_row(ai.ad_type, aj.ad_type)});
  }
}

double Ad4EnergyModel::intermolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  const std::size_t n = channels_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const AtomChannels& ch = channels_[i];
    // One cell/weight computation feeds all three maps (they share the
    // AutoGrid box), where the unfused path paid the origin/index math
    // three times per atom.
    const TrilinearSampler s(maps_.box, coords[i]);
    if (s.in_box()) {
      e += s.apply(*ch.affinity);
      e += ch.charge * s.apply(maps_.electrostatic);
      e += ch.solv * s.apply(maps_.desolvation);
    } else {
      e += GridMap::kOutOfBoxPenalty;
      e += ch.charge * GridMap::kOutOfBoxPenalty;
      e += ch.solv * GridMap::kOutOfBoxPenalty;
    }
  }
  return e;
}

double Ad4EnergyModel::intramolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  const Ad4PairTables& t = *tables_;
  for (const IntraPair& p : intra_pairs_) {
    const double d2 = mol::distance_sq(coords[static_cast<std::size_t>(p.i)],
                                       coords[static_cast<std::size_t>(p.j)]);
    if (d2 < Ad4PairTables::cutoff_sq()) {
      e += t.vdw_hbond(p.ti, p.tj, d2) + p.qq * t.coulomb_factor(d2) +
           p.solv * t.desolv_gauss(d2);
    } else {
      // Intramolecular pairs in extended ligands exceed the table domain;
      // the analytic tail is cheap and already near zero out there.
      e += ad4_pair_energy(p.ti, p.qi, p.tj, p.qj, std::sqrt(d2), weights_);
    }
  }
  return e;
}

double Ad4EnergyModel::operator()(const DockPose& pose) const {
  ++evaluations_;
  const std::vector<mol::Vec3> coords = coords_for(pose);
  return intermolecular(coords) + intramolecular(coords);
}

void Ad4EnergyModel::pack_batch(const std::vector<DockPose>& poses) const {
  batch_.resize(static_cast<int>(poses.size()),
                ligand_.molecule.atom_count());
  for (int p = 0; p < static_cast<int>(poses.size()); ++p) {
    batch_.set_pose(p, coords_for(poses[static_cast<std::size_t>(p)]));
  }
  batch_.pad_tail();
}

void Ad4EnergyModel::intermolecular_batch(std::vector<double>& out) const {
  constexpr int W = PoseBatch::kLaneWidth;
  out.resize(static_cast<std::size_t>(batch_.pose_count()));
  for (int b = 0; b < batch_.lane_blocks(); ++b) {
    // Each lane is one pose: accumulating per atom in the scalar model's
    // order keeps every lane bit-equal to intermolecular() (the lanes
    // sampler reproduces TrilinearSampler, including the out-of-box
    // penalty blended per channel before the charge/solv factors).
    simd::f64x acc;
    for (int a = 0; a < batch_.atom_count(); ++a) {
      const AtomChannels& ch = channels_[static_cast<std::size_t>(a)];
      const TrilinearSamplerLanes s(maps_.box, batch_.x_plane(b, a),
                                    batch_.y_plane(b, a),
                                    batch_.z_plane(b, a));
      acc += s.apply(*ch.affinity);
      acc += simd::f64x(ch.charge) * s.apply(maps_.electrostatic);
      acc += simd::f64x(ch.solv) * s.apply(maps_.desolvation);
    }
    for (int l = 0; l < batch_.lanes_in_block(b); ++l) {
      out[static_cast<std::size_t>(b * W + l)] = acc.lane(l);
    }
  }
}

void Ad4EnergyModel::intramolecular_batch(std::vector<double>& out) const {
  constexpr int W = PoseBatch::kLaneWidth;
  out.resize(static_cast<std::size_t>(batch_.pose_count()));
  const Ad4PairTables& t = *tables_;
  const simd::f64x cutoff(Ad4PairTables::cutoff_sq());
  alignas(64) const double* rows[W];
  for (int b = 0; b < batch_.lane_blocks(); ++b) {
    simd::f64x acc;
    for (const IntraPair& p : intra_pairs_) {
      const simd::f64x dx = simd::f64x::load(batch_.x_plane(b, p.i)) -
                            simd::f64x::load(batch_.x_plane(b, p.j));
      const simd::f64x dy = simd::f64x::load(batch_.y_plane(b, p.i)) -
                            simd::f64x::load(batch_.y_plane(b, p.j));
      const simd::f64x dz = simd::f64x::load(batch_.z_plane(b, p.i)) -
                            simd::f64x::load(batch_.z_plane(b, p.j));
      // Same association as Vec3::dot, so the table-vs-tail branch below
      // sees the scalar path's d² bit for bit.
      const simd::f64x d2 = dx * dx + dy * dy + dz * dz;
      for (int l = 0; l < W; ++l) rows[l] = p.row;
      const simd::f64x inside = simd::less_than(d2, cutoff);
      if (simd::all(inside)) {
        acc += t.pair_energy_lanes(rows, simd::f64x(p.qq),
                                   simd::f64x(p.solv), d2);
        continue;
      }
      // Mixed block: evaluate the table on clamped lanes, then patch the
      // beyond-cutoff lanes with the scalar analytic tail (rare — only
      // extended ligand pairs leave the 8 Å domain).
      const simd::f64x lanes = t.pair_energy_lanes(
          rows, simd::f64x(p.qq), simd::f64x(p.solv), simd::min(d2, cutoff));
      alignas(64) double ev[W], d2v[W];
      lanes.store(ev);
      d2.store(d2v);
      for (int l = 0; l < W; ++l) {
        if (!(d2v[l] < Ad4PairTables::cutoff_sq())) {
          ev[l] = ad4_pair_energy(p.ti, p.qi, p.tj, p.qj, std::sqrt(d2v[l]),
                                  weights_);
        }
      }
      acc += simd::f64x::load(ev);
    }
    for (int l = 0; l < batch_.lanes_in_block(b); ++l) {
      out[static_cast<std::size_t>(b * W + l)] = acc.lane(l);
    }
  }
}

std::vector<double> Ad4EnergyModel::evaluate_batch(
    const std::vector<DockPose>& poses) const {
  if (poses.empty()) return {};
  evaluations_ += static_cast<long long>(poses.size());
  pack_batch(poses);
  std::vector<double> inter, intra;
  intermolecular_batch(inter);
  intramolecular_batch(intra);
  for (std::size_t i = 0; i < inter.size(); ++i) inter[i] += intra[i];
  return inter;
}

void Ad4EnergyModel::score_batch(const std::vector<DockPose>& poses,
                                 std::vector<double>* inter,
                                 std::vector<double>* intra) const {
  if (poses.empty()) {
    if (inter) inter->clear();
    if (intra) intra->clear();
    return;
  }
  pack_batch(poses);
  if (inter) intermolecular_batch(*inter);
  if (intra) intramolecular_batch(*intra);
}

double Ad4EnergyModel::feb(double inter) const {
  return inter + weights_.tors * static_cast<double>(ligand_.torsions.torsion_count());
}

std::vector<mol::Vec3> Ad4EnergyModel::coords_for(const DockPose& pose) const {
  return ligand_.torsions.apply(reference_coords_, pose.rigid, pose.torsions);
}

VinaEnergyModel::VinaEnergyModel(const mol::PreparedReceptor& receptor,
                                 const mol::PreparedLigand& ligand,
                                 const GridBox& box, VinaWeights weights)
    : receptor_(receptor), ligand_(ligand), box_(box), weights_(weights),
      tables_(VinaPairTables::shared(weights)),
      neighbors_(receptor.molecule, 8.0),
      reference_coords_(ligand.molecule.coordinates()),
      reference_center_(root_center(ligand)) {
  for (const auto& [i, j] : intramolecular_pairs(ligand.molecule)) {
    if (mol::vina_kind(ligand.molecule.atom(i).ad_type).skip) continue;
    if (mol::vina_kind(ligand.molecule.atom(j).ad_type).skip) continue;
    intra_pairs_.push_back({i, j, tables_->row(ligand.molecule.atom(i).ad_type,
                                               ligand.molecule.atom(j).ad_type)});
  }
  lig_rows_.resize(static_cast<std::size_t>(ligand.molecule.atom_count()) *
                   static_cast<std::size_t>(mol::kAdTypeCount));
  for (int i = 0; i < ligand.molecule.atom_count(); ++i) {
    for (int t = 0; t < mol::kAdTypeCount; ++t) {
      lig_rows_[static_cast<std::size_t>(i) * mol::kAdTypeCount +
                static_cast<std::size_t>(t)] =
          tables_->row(ligand.molecule.atom(i).ad_type,
                       static_cast<mol::AdType>(t));
    }
  }
  rec_types_.reserve(static_cast<std::size_t>(receptor.molecule.atom_count()));
  for (int ri = 0; ri < receptor.molecule.atom_count(); ++ri) {
    rec_types_.push_back(static_cast<int>(receptor.molecule.atom(ri).ad_type));
  }
}

double VinaEnergyModel::intermolecular(const std::vector<mol::Vec3>& coords) const {
  constexpr int W = simd::f64x::kWidth;
  double e = 0.0;
  for (int i = 0; i < ligand_.molecule.atom_count(); ++i) {
    const mol::Vec3& p = coords[static_cast<std::size_t>(i)];
    // Vina confines the search to the box: out-of-box atoms incur a steep
    // harmonic pull-back, mirroring its boundary handling.
    if (!box_.contains(p)) {
      const mol::Vec3 c = box_.center;
      e += 10.0 * mol::distance_sq(p, c);
      continue;
    }
    // Collect the atom's neighbour block (squared distances straight from
    // the cell list — the table is indexed by r², so no sqrt — plus the
    // per-hit LUT channel), pad to a lane multiple with r² = cutoff²
    // (pair_energy_lanes masks those lanes to the analytic zero), then
    // accumulate lane-parallel and reduce once per atom.
    d2_scratch_.clear();
    row_scratch_.clear();
    const double* const* rows_for_atom =
        lig_rows_.data() + static_cast<std::size_t>(i) * mol::kAdTypeCount;
    neighbors_.for_each_within(p, [&](int ri, double d2) {
      d2_scratch_.push_back(d2);
      row_scratch_.push_back(
          rows_for_atom[rec_types_[static_cast<std::size_t>(ri)]]);
    });
    while (d2_scratch_.size() % W != 0) {
      d2_scratch_.push_back(lut::kCutoffSq);
      row_scratch_.push_back(rows_for_atom[0]);
    }
    simd::f64x acc;
    for (std::size_t k = 0; k < d2_scratch_.size(); k += W) {
      acc += tables_->pair_energy_lanes(row_scratch_.data() + k,
                                        simd::f64x::load(d2_scratch_.data() + k));
    }
    e += acc.hsum();
  }
  return e;
}

double VinaEnergyModel::intramolecular(const std::vector<mol::Vec3>& coords) const {
  double e = 0.0;
  for (const VinaIntraPair& p : intra_pairs_) {
    const double d2 = mol::distance_sq(coords[static_cast<std::size_t>(p.i)],
                                       coords[static_cast<std::size_t>(p.j)]);
    if (d2 < lut::kCutoffSq) e += lut::interpolate(p.row, d2);
  }
  return e;
}

double VinaEnergyModel::operator()(const DockPose& pose) const {
  ++evaluations_;
  const std::vector<mol::Vec3> coords = coords_for(pose);
  return intermolecular(coords) + intramolecular(coords);
}

void VinaEnergyModel::intramolecular_batch(std::vector<double>& out) const {
  constexpr int W = PoseBatch::kLaneWidth;
  out.resize(static_cast<std::size_t>(batch_.pose_count()));
  alignas(64) const double* rows[W];
  for (int b = 0; b < batch_.lane_blocks(); ++b) {
    simd::f64x acc;
    for (const VinaIntraPair& p : intra_pairs_) {
      const simd::f64x dx = simd::f64x::load(batch_.x_plane(b, p.i)) -
                            simd::f64x::load(batch_.x_plane(b, p.j));
      const simd::f64x dy = simd::f64x::load(batch_.y_plane(b, p.i)) -
                            simd::f64x::load(batch_.y_plane(b, p.j));
      const simd::f64x dz = simd::f64x::load(batch_.z_plane(b, p.i)) -
                            simd::f64x::load(batch_.z_plane(b, p.j));
      const simd::f64x d2 = dx * dx + dy * dy + dz * dz;
      for (int l = 0; l < W; ++l) rows[l] = p.row;
      acc += tables_->pair_energy_lanes(rows, d2);
    }
    for (int l = 0; l < batch_.lanes_in_block(b); ++l) {
      out[static_cast<std::size_t>(b * W + l)] = acc.lane(l);
    }
  }
}

std::vector<double> VinaEnergyModel::evaluate_batch(
    const std::vector<DockPose>& poses) const {
  if (poses.empty()) return {};
  evaluations_ += static_cast<long long>(poses.size());
  batch_.resize(static_cast<int>(poses.size()),
                ligand_.molecule.atom_count());
  std::vector<double> out(poses.size());
  // The intermolecular term vectorizes within a pose (over neighbour
  // blocks, whose population differs per pose), so it runs per pose on the
  // same coordinates that fill the SoA batch; only the fixed-topology
  // intramolecular pair loop lane-parallelizes across poses.
  for (int p = 0; p < static_cast<int>(poses.size()); ++p) {
    const std::vector<mol::Vec3> coords =
        coords_for(poses[static_cast<std::size_t>(p)]);
    batch_.set_pose(p, coords);
    out[static_cast<std::size_t>(p)] = intermolecular(coords);
  }
  batch_.pad_tail();
  std::vector<double> intra;
  intramolecular_batch(intra);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += intra[i];
  return out;
}

void VinaEnergyModel::score_batch(const std::vector<DockPose>& poses,
                                  std::vector<double>* inter,
                                  std::vector<double>* intra) const {
  if (poses.empty()) {
    if (inter) inter->clear();
    if (intra) intra->clear();
    return;
  }
  batch_.resize(static_cast<int>(poses.size()),
                ligand_.molecule.atom_count());
  if (inter) inter->resize(poses.size());
  for (int p = 0; p < static_cast<int>(poses.size()); ++p) {
    const std::vector<mol::Vec3> coords =
        coords_for(poses[static_cast<std::size_t>(p)]);
    batch_.set_pose(p, coords);
    if (inter) {
      (*inter)[static_cast<std::size_t>(p)] = intermolecular(coords);
    }
  }
  batch_.pad_tail();
  if (intra) intramolecular_batch(*intra);
}

double VinaEnergyModel::feb(double inter) const {
  return vina_affinity(inter, ligand_.torsions.torsion_count(), weights_);
}

std::vector<mol::Vec3> VinaEnergyModel::coords_for(const DockPose& pose) const {
  return ligand_.torsions.apply(reference_coords_, pose.rigid, pose.torsions);
}

}  // namespace scidock::dock
