#pragma once

/// \file prov.hpp
/// The provenance repository: a PROV-Wf relational schema (Missier et al.;
/// Oliveira et al.) hosted on the scidock SQL engine — the PostgreSQL
/// stand-in the paper's Queries 1 and 2 run against.
///
/// Schema (column names match the paper's queries exactly):
///   hmachine    (vmid, type, cores, speed_factor)
///   hworkflow   (wkfid, tag, description, expdir, starttime, endtime)
///   hactivity   (actid, wkfid, tag, activation, op)
///   hactivation (taskid, actid, wkfid, starttime, endtime, status,
///                vmid, exitcode, attempts, workload)
///   hfile       (fileid, wkfid, actid, taskid, fname, fsize, fdir)
///   hvalue      (valueid, taskid, key, value_num, value_text)
///
/// Timestamps are doubles: seconds since the experiment epoch, so the
/// paper's `extract('epoch' from (t.endtime - t.starttime))` evaluates to
/// the activation duration in seconds.
///
/// Storage model (DESIGN.md §12): the store is split into N shards, each
/// with its own lock and database. Fact tables (hactivation, hfile,
/// hvalue) are partitioned by hash(taskid); dimension tables (hworkflow,
/// hactivity, hmachine) are replicated into every shard so per-shard
/// joins are complete. With a VFS attached, every mutation is framed
/// into a per-shard write-ahead log (prov/wal.hpp) — batched by a group
/// -commit flusher thread or written synchronously — and reopening the
/// same directory rebuilds the store by replay, truncating any torn
/// tail the chaos harness (or a real crash) left behind.

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "prov/wal.hpp"
#include "sql/engine.hpp"
#include "sql/table.hpp"
#include "util/thread_annotations.hpp"
#include "vfs/vfs.hpp"

namespace scidock::prov {

/// Activation lifecycle status values stored in hactivation.status.
inline constexpr std::string_view kStatusRunning = "RUNNING";
inline constexpr std::string_view kStatusFinished = "FINISHED";
inline constexpr std::string_view kStatusFailed = "FAILED";
inline constexpr std::string_view kStatusAborted = "ABORTED";  ///< hang killed

/// SQL builders for metrics <-> provenance reconciliation (DESIGN.md §9).
/// The counts these return must equal the scidock_executor_* counters of
/// the run — chaos::InvariantChecker::check_metrics automates the
/// comparison.
/// Latest wkfid recorded under `tag` (tags must not contain quotes).
std::string workflow_id_sql(std::string_view tag);
/// count(*) over the run's hactivation rows (== activations started).
std::string activation_count_sql(long long wkfid);
/// (status, count(*)) per status for the run.
std::string activations_by_status_sql(long long wkfid);
/// count(*) of the run's rows with attempts > 1 (== activations retried).
std::string retried_activation_count_sql(long long wkfid);
/// count(*) of the run's FINISHED activations of one activity tag — a
/// two-table equi-join (hactivation x hactivity), which the SQL engine
/// executes through its hash-join fast path. Reconciles the grid-map
/// cache counters: hits + misses + inflight_waits over the AutoGrid
/// stage must equal this count.
std::string finished_activation_count_sql(long long wkfid,
                                          std::string_view activity_tag);

struct ProvenanceStoreOptions {
  /// Number of lock-independent shards (>= 1). One shard reproduces the
  /// original single-lock store exactly.
  std::size_t shard_count = 1;
  /// Write-ahead log target; nullptr = volatile in-memory store (the
  /// default-constructed behaviour).
  vfs::SharedFileSystem* vfs = nullptr;
  /// WAL root; shard k logs under `<wal_dir>/shard-<k>/`.
  std::string wal_dir = "/prov";
  /// true: a dedicated flusher thread batches frames and commits them
  /// in groups (sustained-ingest mode). false: every record is appended
  /// and synced inline before the recording call returns.
  bool group_commit = true;
  /// Flusher heartbeat: a commit happens at least this often while
  /// records are pending.
  int group_commit_interval_ms = 2;
  /// Pending-byte threshold that wakes the flusher early.
  std::size_t group_commit_max_bytes = 256 * 1024;
  /// Segment rotation threshold (seal + rename, then a fresh segment).
  std::size_t segment_max_bytes = 8u << 20;
};

/// What reopening a WAL directory found (ProvenanceStore::last_recovery).
struct RecoveryReport {
  std::size_t shards = 0;
  std::size_t segments = 0;
  std::size_t records = 0;          ///< replayed into the store
  std::size_t truncated_bytes = 0;  ///< torn tails discarded
  std::size_t orphan_rows = 0;      ///< referential-integrity prunes
};

/// Monotone WAL-side counters (ProvenanceStore::durability_stats).
struct DurabilityStats {
  long long records_logged = 0;   ///< framed (pending or durable)
  long long records_durable = 0;  ///< committed + synced
  long long bytes_durable = 0;
  long long group_commits = 0;
  long long segment_rotations = 0;
  long long pending_bytes = 0;    ///< currently buffered, not yet durable
};

class ProvenanceStore {
 public:
  /// Volatile single-shard store (back-compatible default).
  ProvenanceStore();
  /// Sharded and/or durable store. With a VFS attached, replays any
  /// existing WAL under `wal_dir` (crash recovery) before accepting new
  /// records, then continues appending to fresh segments.
  explicit ProvenanceStore(ProvenanceStoreOptions options);
  ~ProvenanceStore();

  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;

  /// Attach (or detach, with nullptr) a metrics registry; the store then
  /// counts every recorded row and query under scidock_prov_*. Call
  /// before the run starts — installation is not retroactive.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Run any SQL against the repository (the user-facing query interface;
  /// safe to call *during* workflow execution — the paper's runtime
  /// steering feature). Sharded stores execute SELECTs through the
  /// distributed planner (sql/sharded.hpp) and reject other statements.
  sql::ResultSet query(std::string_view sql_text);

  // ---- recording API (thread-safe) ----
  long long begin_workflow(std::string_view tag, std::string_view description,
                           std::string_view expdir, double now);
  void end_workflow(long long wkfid, double now);

  long long register_activity(long long wkfid, std::string_view tag,
                              std::string_view activation_command,
                              std::string_view op);

  long long begin_activation(long long actid, long long wkfid, double now,
                             long long vmid, std::string_view workload);
  void end_activation(long long taskid, double now, std::string_view status,
                      int exitcode, int attempts);

  void record_machine(long long vmid, std::string_view type, int cores,
                      double speed_factor);
  void record_file(long long wkfid, long long actid, long long taskid,
                   std::string_view fname, std::size_t fsize,
                   std::string_view fdir);
  void record_value(long long taskid, std::string_view key, double value_num,
                    std::string_view value_text);

  /// Serialise the repository in W3C PROV-N notation (the standard the
  /// paper's PROV-Wf schema instantiates): workflows and activations as
  /// prov:Activity, files as prov:Entity with wasGeneratedBy, VMs as
  /// prov:Agent with wasAssociatedWith.
  std::string export_prov_n();

  // ---- durability / recovery surface ----
  std::size_t shard_count() const { return shards_.size(); }
  bool durable() const { return options_.vfs != nullptr; }
  /// True once a WAL write failed (e.g. a chaos-injected torn write).
  /// A crashed store rejects further records and flushes; reopen the
  /// directory with a fresh store to recover.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  /// Force a group commit of everything recorded so far; returns once it
  /// is durable. Throws InvalidStateError if the store crashed.
  void flush();
  /// What the constructor's replay found (all-zero for a fresh dir).
  const RecoveryReport& last_recovery() const { return recovery_; }
  DurabilityStats durability_stats() const;
  /// Close out RUNNING activations left behind by a crash: each becomes
  /// FAILED (exitcode -1, attempts unchanged), WAL-logged like any other
  /// end. Returns the number closed. The caller then re-executes them —
  /// the paper's provenance-driven re-execution applied to recovery.
  std::size_t abort_open_activations(double now);
  /// Order-independent digest over every table's rows — equal digests
  /// mean identical repository contents (used by the replay-idempotence
  /// invariant checks).
  std::string content_digest();

  /// Direct repository access for tests and custom analytics. With one
  /// shard (the default), `fn` runs against the live database under the
  /// shard lock — safe even while activations are being recorded, and
  /// mutations (test tampering) take effect. With multiple shards, `fn`
  /// receives a merged *copy* (facts from every shard, dimensions from
  /// shard 0): safe concurrent reads, but mutations only affect the
  /// snapshot.
  template <typename Fn>
  auto with_database(Fn&& fn) {
    if (shards_.size() == 1) {
      Shard& shard = *shards_[0];
      MutexLock lock(shard.mutex);
      return std::forward<Fn>(fn)(shard.db);
    }
    sql::Database merged = snapshot_database();
    return std::forward<Fn>(fn)(merged);
  }

 private:
  /// One shard: a database partition plus its WAL buffer. `writer` is
  /// touched only by the flusher thread (group commit) or under `mutex`
  /// (synchronous mode), never both.
  struct Shard {
    Mutex mutex{"prov.shard"};
    sql::Database db SCIDOCK_GUARDED_BY(mutex);
    /// taskid -> hactivation row index (end_activation in O(1); replay
    /// of a 1M-activation log would be quadratic without it).
    std::unordered_map<long long, std::size_t> activation_rows
        SCIDOCK_GUARDED_BY(mutex);
    std::string pending SCIDOCK_GUARDED_BY(mutex);  ///< encoded frames
    long long pending_records SCIDOCK_GUARDED_BY(mutex) = 0;
    std::unique_ptr<wal::SegmentWriter> writer;
  };

  /// Row/query-rate counter handles resolved by set_metrics; atomics so
  /// recording threads read them without a store-wide lock.
  struct RateCounters {
    std::atomic<obs::Counter*> workflow_rows{nullptr};
    std::atomic<obs::Counter*> activity_rows{nullptr};
    std::atomic<obs::Counter*> activation_rows{nullptr};
    std::atomic<obs::Counter*> machine_rows{nullptr};
    std::atomic<obs::Counter*> file_rows{nullptr};
    std::atomic<obs::Counter*> value_rows{nullptr};
    std::atomic<obs::Counter*> queries{nullptr};
    std::atomic<obs::Counter*> wal_records{nullptr};
    std::atomic<obs::Counter*> wal_bytes{nullptr};
    std::atomic<obs::Counter*> wal_group_commits{nullptr};
    std::atomic<obs::Counter*> wal_rotations{nullptr};
    std::atomic<obs::Gauge*> wal_pending_bytes{nullptr};
  };

  static void init_schema(sql::Database& db);
  Shard& fact_shard(long long taskid);
  std::string shard_dir(std::size_t k) const;

  /// Apply one WAL record to a shard's database (recording and replay
  /// share these, so replay rebuilds exactly what was recorded). Caller
  /// holds the shard lock (recording) or owns the store (recovery).
  void apply_record(Shard& shard, const wal::WalRecord& record);

  /// hactivation row for `taskid`, or nullptr. Uses the shard's index,
  /// falling back to a scan (and repairing the index) if a test mutated
  /// the table underneath it. Caller holds the shard lock.
  sql::Row* find_activation(Shard& shard, long long taskid);

  /// Frame `record` into the shard's WAL: buffered for the flusher
  /// (group commit) or appended + synced inline. Caller holds the shard
  /// lock. No-op when no VFS is attached.
  void log_record(Shard& shard, const wal::WalRecord& record);
  /// Post-record hook (outside the shard lock): wakes the flusher when
  /// the pending buffer crossed the group-commit threshold.
  void after_record();
  /// Throws InvalidStateError once the store crashed.
  void ensure_writable() const;

  void recover();
  void prune_orphans();
  void start_flusher();
  void flusher_main();
  /// One group commit: snapshot fact-shard buffers first and shard 0
  /// (which carries the dimension records) last, then write shard 0
  /// first — so a fact row can never become durable before the
  /// dimension rows it references (DESIGN.md §12). Returns false after
  /// marking the store crashed.
  bool commit_once();

  sql::Database snapshot_database();

  static void bump(const std::atomic<obs::Counter*>& counter,
                   long long delta = 1) {
    if (obs::Counter* c = counter.load(std::memory_order_relaxed)) {
      c->inc(delta);
    }
  }

  ProvenanceStoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  RateCounters rates_;
  RecoveryReport recovery_;

  std::atomic<long long> next_wkfid_{1};
  std::atomic<long long> next_actid_{1};
  std::atomic<long long> next_taskid_{1};
  std::atomic<long long> next_fileid_{1};
  std::atomic<long long> next_valueid_{1};

  std::atomic<bool> crashed_{false};
  std::atomic<long long> pending_bytes_total_{0};
  std::atomic<long long> records_logged_{0};
  std::atomic<long long> records_durable_{0};
  std::atomic<long long> bytes_durable_{0};
  std::atomic<long long> group_commits_{0};
  std::atomic<long long> rotations_total_{0};

  // Group-commit flusher coordination. The flusher never holds
  // flusher_mutex_ and a shard mutex at the same time.
  Mutex flusher_mutex_{"prov.flusher"};
  CondVar flusher_cv_;     ///< wakes the flusher (work or stop)
  CondVar flush_done_cv_;  ///< wakes flush() waiters
  bool stop_ SCIDOCK_GUARDED_BY(flusher_mutex_) = false;
  long long flush_tickets_ SCIDOCK_GUARDED_BY(flusher_mutex_) = 0;
  long long flush_completed_ SCIDOCK_GUARDED_BY(flusher_mutex_) = 0;
  std::thread flusher_;
  /// Racer fork/join edge for flusher_: records logged before the spawn
  /// happen-before the flusher's commits; join lands in the destructor.
  racer::TaskEdge flusher_edge_;
};

}  // namespace scidock::prov
