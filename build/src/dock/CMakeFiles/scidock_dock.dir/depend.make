# Empty dependencies file for scidock_dock.
# This may be replaced when dependencies are built.
