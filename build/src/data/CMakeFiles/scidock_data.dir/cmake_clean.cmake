file(REMOVE_RECURSE
  "CMakeFiles/scidock_data.dir/generator.cpp.o"
  "CMakeFiles/scidock_data.dir/generator.cpp.o.d"
  "CMakeFiles/scidock_data.dir/table2.cpp.o"
  "CMakeFiles/scidock_data.dir/table2.cpp.o.d"
  "libscidock_data.a"
  "libscidock_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
