file(REMOVE_RECURSE
  "libscidock_data.a"
)
