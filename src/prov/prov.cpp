#include "prov/prov.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "sql/sharded.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scidock::prov {

using sql::Value;
using wal::WalOp;
using wal::WalRecord;

namespace {

// hactivation column positions (fixed by init_schema; constants keep the
// 1M-record replay path off column_index lookups).
constexpr std::size_t kActTaskid = 0;
constexpr std::size_t kActActid = 1;
constexpr std::size_t kActWkfid = 2;
constexpr std::size_t kActEndtime = 4;
constexpr std::size_t kActStatus = 5;
constexpr std::size_t kActExitcode = 7;
constexpr std::size_t kActAttempts = 8;

constexpr const char* kDimTables[] = {"hworkflow", "hactivity", "hmachine"};
constexpr const char* kFactTables[] = {"hactivation", "hfile", "hvalue"};

std::string export_prov_n_impl(sql::Database& db) {
  sql::Engine engine(db);
  std::string out = "document\n  prefix scidock <urn:scidock:>\n\n";

  for (const sql::Row& row :
       engine.execute("SELECT wkfid, tag, starttime, endtime FROM hworkflow").rows) {
    out += strformat("  activity(scidock:workflow/%lld, [prov:label=\"%s\"])\n",
                     static_cast<long long>(row[0].as_int()),
                     row[1].as_string().c_str());
  }
  for (const sql::Row& row :
       engine.execute("SELECT vmid, type FROM hmachine").rows) {
    out += strformat("  agent(scidock:vm/%lld, [prov:type=\"%s\"])\n",
                     static_cast<long long>(row[0].as_int()),
                     row[1].as_string().c_str());
  }
  for (const sql::Row& row :
       engine
           .execute("SELECT t.taskid, a.tag, t.starttime, t.endtime, t.vmid, "
                    "t.status FROM hactivity a, hactivation t "
                    "WHERE a.actid = t.actid")
           .rows) {
    const long long taskid = row[0].as_int();
    out += strformat(
        "  activity(scidock:activation/%lld, [prov:label=\"%s\", "
        "scidock:status=\"%s\"])\n",
        taskid, row[1].as_string().c_str(), row[5].as_string().c_str());
    if (row[4].as_int() > 0) {
      out += strformat(
          "  wasAssociatedWith(scidock:activation/%lld, scidock:vm/%lld, -)\n",
          taskid, static_cast<long long>(row[4].as_int()));
    }
  }
  for (const sql::Row& row :
       engine.execute("SELECT fileid, fname, fdir, taskid FROM hfile").rows) {
    const long long fileid = row[0].as_int();
    out += strformat(
        "  entity(scidock:file/%lld, [prov:label=\"%s%s\"])\n", fileid,
        row[2].as_string().c_str(), row[1].as_string().c_str());
    out += strformat(
        "  wasGeneratedBy(scidock:file/%lld, scidock:activation/%lld, -)\n",
        fileid, static_cast<long long>(row[3].as_int()));
  }
  out += "endDocument\n";
  return out;
}

}  // namespace

std::string workflow_id_sql(std::string_view tag) {
  return strformat(
      "SELECT wkfid FROM hworkflow WHERE tag = '%s' "
      "ORDER BY wkfid DESC LIMIT 1",
      std::string(tag).c_str());
}

// The `-- reconciles:` comment annotations below declare which metrics
// series each query is the provenance ground truth for; the SQL lexer
// strips line comments, so execution is unaffected, while scidock-lint's
// SQL008 validates every named series against obs::known_metric_names().

std::string activation_count_sql(long long wkfid) {
  return strformat(
      "-- reconciles: scidock_executor_activations_started_total\n"
      "SELECT count(*) FROM hactivation WHERE wkfid = %lld",
      wkfid);
}

std::string activations_by_status_sql(long long wkfid) {
  return strformat(
      "-- reconciles: scidock_executor_activations_finished_total,\n"
      "-- reconciles: scidock_executor_activations_failed_total,\n"
      "-- reconciles: scidock_executor_activations_aborted_total\n"
      "SELECT status, count(*) FROM hactivation WHERE wkfid = %lld "
      "GROUP BY status ORDER BY status",
      wkfid);
}

std::string retried_activation_count_sql(long long wkfid) {
  return strformat(
      "-- reconciles: scidock_executor_activations_retried_total\n"
      "SELECT count(*) FROM hactivation "
      "WHERE wkfid = %lld AND attempts > 1",
      wkfid);
}

std::string finished_activation_count_sql(long long wkfid,
                                          std::string_view activity_tag) {
  return strformat(
      "-- reconciles: scidock_cache_gridmaps_hits_total,\n"
      "-- reconciles: scidock_cache_gridmaps_misses_total,\n"
      "-- reconciles: scidock_cache_gridmaps_inflight_waits_total\n"
      "SELECT count(*) FROM hactivity a, hactivation t "
      "WHERE t.actid = a.actid AND a.wkfid = %lld "
      "AND a.tag = '%s' AND t.status = '%s'",
      wkfid, std::string(activity_tag).c_str(),
      std::string(kStatusFinished).c_str());
}

void ProvenanceStore::init_schema(sql::Database& db) {
  db.create_table("hmachine", {"vmid", "type", "cores", "speed_factor"});
  db.create_table("hworkflow",
                  {"wkfid", "tag", "description", "expdir", "starttime", "endtime"});
  db.create_table("hactivity", {"actid", "wkfid", "tag", "activation", "op"});
  db.create_table("hactivation",
                  {"taskid", "actid", "wkfid", "starttime", "endtime",
                   "status", "vmid", "exitcode", "attempts", "workload"});
  db.create_table("hfile",
                  {"fileid", "wkfid", "actid", "taskid", "fname", "fsize", "fdir"});
  db.create_table("hvalue",
                  {"valueid", "taskid", "key", "value_num", "value_text"});
}

ProvenanceStore::ProvenanceStore() : ProvenanceStore(ProvenanceStoreOptions{}) {}

ProvenanceStore::ProvenanceStore(ProvenanceStoreOptions options)
    : options_(std::move(options)) {
  SCIDOCK_REQUIRE(options_.shard_count >= 1,
                  "ProvenanceStore needs at least one shard");
  shards_.reserve(options_.shard_count);
  for (std::size_t k = 0; k < options_.shard_count; ++k) {
    auto shard = std::make_unique<Shard>();
    init_schema(shard->db);
    shards_.push_back(std::move(shard));
  }
  recovery_.shards = shards_.size();
  if (durable()) {
    recover();
    if (options_.group_commit) start_flusher();
  }
}

ProvenanceStore::~ProvenanceStore() {
  if (flusher_.joinable()) {
    {
      MutexLock lock(flusher_mutex_);
      stop_ = true;
    }
    flusher_cv_.notify_one();
    flusher_.join();
    racer::on_task_join(flusher_edge_);
  }
  for (const auto& shard : shards_) SCIDOCK_RACER_UNTRACK(shard->writer);
}

ProvenanceStore::Shard& ProvenanceStore::fact_shard(long long taskid) {
  if (shards_.size() == 1) return *shards_[0];
  char key[sizeof(taskid)];
  std::memcpy(key, &taskid, sizeof(taskid));
  const std::uint64_t h = fnv1a64(std::string_view(key, sizeof(key)));
  return *shards_[h % shards_.size()];
}

std::string ProvenanceStore::shard_dir(std::size_t k) const {
  return strformat("%s/shard-%zu", options_.wal_dir.c_str(), k);
}

sql::Row* ProvenanceStore::find_activation(Shard& shard, long long taskid) {
  std::vector<sql::Row>& rows = shard.db.table("hactivation").mutable_rows();
  const auto it = shard.activation_rows.find(taskid);
  if (it != shard.activation_rows.end() && it->second < rows.size() &&
      rows[it->second][kActTaskid].as_int() == taskid) {
    return &rows[it->second];
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i][kActTaskid].as_int() == taskid) {
      shard.activation_rows[taskid] = i;
      return &rows[i];
    }
  }
  shard.activation_rows.erase(taskid);
  return nullptr;
}

void ProvenanceStore::apply_record(Shard& shard, const WalRecord& r) {
  switch (r.op) {
    case WalOp::BeginWorkflow:
      shard.db.table("hworkflow")
          .insert({Value(r.i0), Value(r.s0), Value(r.s1), Value(r.s2),
                   Value(r.d0), Value()});
      break;
    case WalOp::EndWorkflow: {
      sql::Table& t = shard.db.table("hworkflow");
      const auto id_col = static_cast<std::size_t>(t.column_index("wkfid"));
      const auto end_col = static_cast<std::size_t>(t.column_index("endtime"));
      for (sql::Row& row : t.mutable_rows()) {
        if (row[id_col].as_int() == r.i0) {
          row[end_col] = Value(r.d0);
          break;
        }
      }
      break;
    }
    case WalOp::RegisterActivity:
      shard.db.table("hactivity")
          .insert({Value(r.i0), Value(r.i1), Value(r.s0), Value(r.s1),
                   Value(r.s2)});
      break;
    case WalOp::BeginActivation: {
      sql::Table& t = shard.db.table("hactivation");
      shard.activation_rows[r.i0] = t.row_count();
      t.insert({Value(r.i0), Value(r.i1), Value(r.i2), Value(r.d0), Value(),
                Value(std::string(kStatusRunning)), Value(r.i3), Value(0),
                Value(1), Value(r.s0)});
      break;
    }
    case WalOp::EndActivation:
      // Missing row = replay of an end whose begin was pruned; tolerated
      // (the recording path validates presence before logging).
      if (sql::Row* row = find_activation(shard, r.i0)) {
        (*row)[kActEndtime] = Value(r.d0);
        (*row)[kActStatus] = Value(r.s0);
        (*row)[kActExitcode] = Value(r.i1);
        (*row)[kActAttempts] = Value(r.i2);
      }
      break;
    case WalOp::RecordMachine:
      shard.db.table("hmachine")
          .insert({Value(r.i0), Value(r.s0), Value(r.i1), Value(r.d0)});
      break;
    case WalOp::RecordFile:
      shard.db.table("hfile")
          .insert({Value(r.i0), Value(r.i1), Value(r.i2), Value(r.i3),
                   Value(r.s0), Value(r.i4), Value(r.s1)});
      break;
    case WalOp::RecordValue:
      shard.db.table("hvalue")
          .insert({Value(r.i0), Value(r.i1), Value(r.s0), Value(r.d0),
                   Value(r.s1)});
      break;
  }
}

void ProvenanceStore::log_record(Shard& shard, const WalRecord& r) {
  if (!durable()) return;
  const std::string frame = wal::encode_record(r);
  records_logged_.fetch_add(1, std::memory_order_relaxed);
  if (options_.group_commit) {
    shard.pending += frame;
    ++shard.pending_records;
    pending_bytes_total_.fetch_add(static_cast<long long>(frame.size()),
                                   std::memory_order_relaxed);
    return;
  }
  // Synchronous mode: the record is durable before the call returns.
  SCIDOCK_RACER_WRITE(shard.writer);
  const std::size_t rotations_before = shard.writer->rotations();
  try {
    shard.writer->append(frame, 0.0);
    shard.writer->sync();
  } catch (...) {
    crashed_.store(true, std::memory_order_release);
    throw;
  }
  const auto rotated = static_cast<long long>(shard.writer->rotations() -
                                              rotations_before);
  records_durable_.fetch_add(1, std::memory_order_relaxed);
  bytes_durable_.fetch_add(static_cast<long long>(frame.size()),
                           std::memory_order_relaxed);
  if (rotated > 0) {
    rotations_total_.fetch_add(rotated, std::memory_order_relaxed);
    bump(rates_.wal_rotations, rotated);
  }
  bump(rates_.wal_records);
  bump(rates_.wal_bytes, static_cast<long long>(frame.size()));
}

void ProvenanceStore::after_record() {
  if (!durable() || !options_.group_commit) return;
  const long long pending = pending_bytes_total_.load(std::memory_order_relaxed);
  if (obs::Gauge* g = rates_.wal_pending_bytes.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(pending));
  }
  if (pending >= static_cast<long long>(options_.group_commit_max_bytes)) {
    flusher_cv_.notify_one();
  }
}

void ProvenanceStore::ensure_writable() const {
  if (crashed_.load(std::memory_order_acquire)) {
    throw InvalidStateError(
        "provenance store crashed mid-commit (WAL write failed); reopen the "
        "log directory with a fresh store to recover");
  }
}

void ProvenanceStore::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    for (std::atomic<obs::Counter*>* c :
         {&rates_.workflow_rows, &rates_.activity_rows, &rates_.activation_rows,
          &rates_.machine_rows, &rates_.file_rows, &rates_.value_rows,
          &rates_.queries, &rates_.wal_records, &rates_.wal_bytes,
          &rates_.wal_group_commits, &rates_.wal_rotations}) {
      c->store(nullptr, std::memory_order_relaxed);
    }
    rates_.wal_pending_bytes.store(nullptr, std::memory_order_relaxed);
    return;
  }
  rates_.workflow_rows.store(
      &registry->counter("scidock_prov_workflow_rows_total",
                         "hworkflow rows recorded"),
      std::memory_order_relaxed);
  rates_.activity_rows.store(
      &registry->counter("scidock_prov_activity_rows_total",
                         "hactivity rows recorded"),
      std::memory_order_relaxed);
  rates_.activation_rows.store(
      &registry->counter("scidock_prov_activation_rows_total",
                         "hactivation rows recorded"),
      std::memory_order_relaxed);
  rates_.machine_rows.store(
      &registry->counter("scidock_prov_machine_rows_total",
                         "hmachine rows recorded"),
      std::memory_order_relaxed);
  rates_.file_rows.store(
      &registry->counter("scidock_prov_file_rows_total", "hfile rows recorded"),
      std::memory_order_relaxed);
  rates_.value_rows.store(
      &registry->counter("scidock_prov_value_rows_total",
                         "hvalue rows recorded"),
      std::memory_order_relaxed);
  rates_.queries.store(&registry->counter("scidock_prov_queries_total",
                                          "SQL queries served by query()"),
                       std::memory_order_relaxed);
  rates_.wal_records.store(
      &registry->counter("scidock_prov_wal_records_total",
                         "WAL records made durable"),
      std::memory_order_relaxed);
  rates_.wal_bytes.store(&registry->counter("scidock_prov_wal_bytes_total",
                                            "WAL bytes made durable"),
                         std::memory_order_relaxed);
  rates_.wal_group_commits.store(
      &registry->counter("scidock_prov_wal_group_commits_total",
                         "group commits executed by the flusher"),
      std::memory_order_relaxed);
  rates_.wal_rotations.store(
      &registry->counter("scidock_prov_wal_rotations_total",
                         "WAL segments sealed (rotations)"),
      std::memory_order_relaxed);
  rates_.wal_pending_bytes.store(
      &registry->gauge("scidock_prov_wal_pending_bytes",
                       "WAL bytes buffered, not yet durable"),
      std::memory_order_relaxed);
  registry->gauge("scidock_prov_shards", "provenance store shard count")
      .set(static_cast<double>(shards_.size()));
  // Recovery findings describe this open, not a monotone run: gauges, so
  // re-attaching a registry is idempotent.
  registry
      ->gauge("scidock_prov_recovery_records",
              "WAL records replayed at the last open")
      .set(static_cast<double>(recovery_.records));
  registry
      ->gauge("scidock_prov_recovery_segments",
              "WAL segments found at the last open")
      .set(static_cast<double>(recovery_.segments));
  registry
      ->gauge("scidock_prov_recovery_truncated_bytes",
              "torn WAL bytes discarded at the last open")
      .set(static_cast<double>(recovery_.truncated_bytes));
  registry
      ->gauge("scidock_prov_recovery_orphan_rows",
              "referential-integrity prunes at the last open")
      .set(static_cast<double>(recovery_.orphan_rows));
}

sql::ResultSet ProvenanceStore::query(std::string_view sql_text) {
  bump(rates_.queries);
  std::vector<std::unique_ptr<MutexLock>> locks;
  std::vector<sql::Database*> dbs;
  locks.reserve(shards_.size());
  dbs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.push_back(std::make_unique<MutexLock>(shard->mutex));
    dbs.push_back(&shard->db);
  }
  sql::ShardedEngine engine(std::move(dbs),
                            {"hworkflow", "hactivity", "hmachine"});
  return engine.execute(sql_text);
}

long long ProvenanceStore::begin_workflow(std::string_view tag,
                                          std::string_view description,
                                          std::string_view expdir, double now) {
  ensure_writable();
  const long long id = next_wkfid_.fetch_add(1, std::memory_order_relaxed);
  WalRecord rec;
  rec.op = WalOp::BeginWorkflow;
  rec.i0 = id;
  rec.d0 = now;
  rec.s0 = std::string(tag);
  rec.s1 = std::string(description);
  rec.s2 = std::string(expdir);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    MutexLock lock(shard.mutex);
    apply_record(shard, rec);
    if (k == 0) log_record(shard, rec);
  }
  after_record();
  bump(rates_.workflow_rows);
  return id;
}

void ProvenanceStore::end_workflow(long long wkfid, double now) {
  ensure_writable();
  WalRecord rec;
  rec.op = WalOp::EndWorkflow;
  rec.i0 = wkfid;
  rec.d0 = now;
  {
    Shard& shard = *shards_[0];
    MutexLock lock(shard.mutex);
    const sql::Table& t = shard.db.table("hworkflow");
    const auto id_col = static_cast<std::size_t>(t.column_index("wkfid"));
    bool found = false;
    for (const sql::Row& row : t.rows()) {
      if (row[id_col].as_int() == wkfid) {
        found = true;
        break;
      }
    }
    if (!found) throw NotFoundError("workflow", std::to_string(wkfid));
    apply_record(shard, rec);
    log_record(shard, rec);
  }
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    MutexLock lock(shards_[k]->mutex);
    apply_record(*shards_[k], rec);
  }
  after_record();
}

long long ProvenanceStore::register_activity(long long wkfid,
                                             std::string_view tag,
                                             std::string_view activation_command,
                                             std::string_view op) {
  ensure_writable();
  const long long id = next_actid_.fetch_add(1, std::memory_order_relaxed);
  WalRecord rec;
  rec.op = WalOp::RegisterActivity;
  rec.i0 = id;
  rec.i1 = wkfid;
  rec.s0 = std::string(tag);
  rec.s1 = std::string(activation_command);
  rec.s2 = std::string(op);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    MutexLock lock(shard.mutex);
    apply_record(shard, rec);
    if (k == 0) log_record(shard, rec);
  }
  after_record();
  bump(rates_.activity_rows);
  return id;
}

long long ProvenanceStore::begin_activation(long long actid, long long wkfid,
                                            double now, long long vmid,
                                            std::string_view workload) {
  ensure_writable();
  const long long id = next_taskid_.fetch_add(1, std::memory_order_relaxed);
  WalRecord rec;
  rec.op = WalOp::BeginActivation;
  rec.i0 = id;
  rec.i1 = actid;
  rec.i2 = wkfid;
  rec.i3 = vmid;
  rec.d0 = now;
  rec.s0 = std::string(workload);
  Shard& shard = fact_shard(id);
  {
    MutexLock lock(shard.mutex);
    apply_record(shard, rec);
    log_record(shard, rec);
  }
  after_record();
  bump(rates_.activation_rows);
  return id;
}

void ProvenanceStore::end_activation(long long taskid, double now,
                                     std::string_view status, int exitcode,
                                     int attempts) {
  ensure_writable();
  WalRecord rec;
  rec.op = WalOp::EndActivation;
  rec.i0 = taskid;
  rec.i1 = exitcode;
  rec.i2 = attempts;
  rec.d0 = now;
  rec.s0 = std::string(status);
  Shard& shard = fact_shard(taskid);
  {
    MutexLock lock(shard.mutex);
    if (find_activation(shard, taskid) == nullptr) {
      throw NotFoundError("activation", std::to_string(taskid));
    }
    apply_record(shard, rec);
    log_record(shard, rec);
  }
  after_record();
}

void ProvenanceStore::record_machine(long long vmid, std::string_view type,
                                     int cores, double speed_factor) {
  ensure_writable();
  WalRecord rec;
  rec.op = WalOp::RecordMachine;
  rec.i0 = vmid;
  rec.i1 = cores;
  rec.d0 = speed_factor;
  rec.s0 = std::string(type);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    MutexLock lock(shard.mutex);
    apply_record(shard, rec);
    if (k == 0) log_record(shard, rec);
  }
  after_record();
  bump(rates_.machine_rows);
}

void ProvenanceStore::record_file(long long wkfid, long long actid,
                                  long long taskid, std::string_view fname,
                                  std::size_t fsize, std::string_view fdir) {
  ensure_writable();
  WalRecord rec;
  rec.op = WalOp::RecordFile;
  rec.i0 = next_fileid_.fetch_add(1, std::memory_order_relaxed);
  rec.i1 = wkfid;
  rec.i2 = actid;
  rec.i3 = taskid;
  rec.i4 = static_cast<long long>(fsize);
  rec.s0 = std::string(fname);
  rec.s1 = std::string(fdir);
  Shard& shard = fact_shard(taskid);
  {
    MutexLock lock(shard.mutex);
    apply_record(shard, rec);
    log_record(shard, rec);
  }
  after_record();
  bump(rates_.file_rows);
}

void ProvenanceStore::record_value(long long taskid, std::string_view key,
                                   double value_num, std::string_view value_text) {
  ensure_writable();
  WalRecord rec;
  rec.op = WalOp::RecordValue;
  rec.i0 = next_valueid_.fetch_add(1, std::memory_order_relaxed);
  rec.i1 = taskid;
  rec.d0 = value_num;
  rec.s0 = std::string(key);
  rec.s1 = std::string(value_text);
  Shard& shard = fact_shard(taskid);
  {
    MutexLock lock(shard.mutex);
    apply_record(shard, rec);
    log_record(shard, rec);
  }
  after_record();
  bump(rates_.value_rows);
}

std::string ProvenanceStore::export_prov_n() {
  return with_database(
      [](sql::Database& db) { return export_prov_n_impl(db); });
}

std::string ProvenanceStore::content_digest() {
  return with_database([](sql::Database& db) {
    std::string out;
    for (const char* name :
         {"hmachine", "hworkflow", "hactivity", "hactivation", "hfile",
          "hvalue"}) {
      // Row order differs between a live store and its replayed twin
      // (shard interleaving), so combine per-row hashes commutatively.
      std::uint64_t acc_xor = 0;
      std::uint64_t acc_sum = 0;
      for (const sql::Row& row : db.table(name).rows()) {
        std::string repr;
        for (const sql::Value& v : row) {
          if (v.is_null()) {
            repr += "~|";
          } else if (v.is_int()) {
            repr += strformat("i%lld|", static_cast<long long>(v.as_int()));
          } else if (v.is_double()) {
            repr += strformat("d%.17g|", v.as_double());
          } else {
            repr += "s" + v.as_string() + "|";
          }
        }
        const std::uint64_t h = fnv1a64(repr);
        acc_xor ^= h;
        acc_sum += h;
      }
      out += strformat("%s:%016llx%016llx;", name,
                       static_cast<unsigned long long>(acc_xor),
                       static_cast<unsigned long long>(acc_sum));
    }
    return out;
  });
}

std::size_t ProvenanceStore::abort_open_activations(double now) {
  ensure_writable();
  std::vector<std::pair<long long, int>> open;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    for (const sql::Row& row : shard->db.table("hactivation").rows()) {
      if (row[kActStatus].as_string() == kStatusRunning) {
        open.emplace_back(row[kActTaskid].as_int(),
                          static_cast<int>(row[kActAttempts].as_int()));
      }
    }
  }
  for (const auto& [taskid, attempts] : open) {
    end_activation(taskid, now, kStatusFailed, -1, attempts);
  }
  return open.size();
}

sql::Database ProvenanceStore::snapshot_database() {
  sql::Database out;
  init_schema(out);
  std::vector<std::unique_ptr<MutexLock>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.push_back(std::make_unique<MutexLock>(shard->mutex));
  }
  for (const char* name : kDimTables) {
    sql::Table& dst = out.table(name);
    for (const sql::Row& row : shards_[0]->db.table(name).rows()) {
      dst.insert(row);
    }
  }
  for (const char* name : kFactTables) {
    sql::Table& dst = out.table(name);
    for (const auto& shard : shards_) {
      for (const sql::Row& row : shard->db.table(name).rows()) {
        dst.insert(row);
      }
    }
  }
  return out;
}

DurabilityStats ProvenanceStore::durability_stats() const {
  DurabilityStats s;
  s.records_logged = records_logged_.load(std::memory_order_relaxed);
  s.records_durable = records_durable_.load(std::memory_order_relaxed);
  s.bytes_durable = bytes_durable_.load(std::memory_order_relaxed);
  s.group_commits = group_commits_.load(std::memory_order_relaxed);
  s.segment_rotations = rotations_total_.load(std::memory_order_relaxed);
  s.pending_bytes = pending_bytes_total_.load(std::memory_order_relaxed);
  return s;
}

void ProvenanceStore::flush() {
  ensure_writable();
  if (!durable() || !options_.group_commit) return;
  MutexLock lock(flusher_mutex_);
  const long long ticket = ++flush_tickets_;
  flusher_cv_.notify_one();
  while (!crashed_.load(std::memory_order_acquire) &&
         flush_completed_ < ticket) {
    flush_done_cv_.wait(flusher_mutex_);
  }
  ensure_writable();
}

void ProvenanceStore::recover() {
  vfs::SharedFileSystem& fs = *options_.vfs;
  const auto raise = [](std::atomic<long long>& counter, long long id) {
    if (counter.load(std::memory_order_relaxed) <= id) {
      counter.store(id + 1, std::memory_order_relaxed);
    }
  };
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& shard = *shards_[k];
    wal::ShardReplay replay = wal::replay_shard(fs, shard_dir(k), /*repair=*/true);
    recovery_.segments += replay.segments.size();
    recovery_.records += replay.records.size();
    recovery_.truncated_bytes += replay.truncated_bytes;
    for (const WalRecord& rec : replay.records) {
      apply_record(shard, rec);
      switch (rec.op) {
        case WalOp::BeginWorkflow: raise(next_wkfid_, rec.i0); break;
        case WalOp::RegisterActivity: raise(next_actid_, rec.i0); break;
        case WalOp::BeginActivation: raise(next_taskid_, rec.i0); break;
        case WalOp::RecordFile: raise(next_fileid_, rec.i0); break;
        case WalOp::RecordValue: raise(next_valueid_, rec.i0); break;
        default: break;
      }
    }
    shard.writer = std::make_unique<wal::SegmentWriter>(
        fs, shard_dir(k), options_.segment_max_bytes, replay.next_index);
    // Shadow-track the writer so racer can prove the documented
    // discipline: flusher thread (group commit) or under shard.mutex
    // (synchronous mode), never both.
    SCIDOCK_RACER_TRACK(shard.writer, "prov.shard.writer");
  }
  // Dimension records are logged by shard 0 only; replicate its replayed
  // copies into the other shards so per-shard joins stay complete.
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    for (const char* name : kDimTables) {
      sql::Table& dst = shards_[k]->db.table(name);
      for (const sql::Row& row : shards_[0]->db.table(name).rows()) {
        dst.insert(row);
      }
    }
  }
  prune_orphans();
}

void ProvenanceStore::prune_orphans() {
  // The commit protocol makes a fact durable only after the dimensions it
  // references, so orphans indicate tampering (or a protocol bug — the
  // recovery tests assert this stays zero). Prune them anyway: a store
  // that serves dangling joins is worse than one that drops them.
  std::unordered_set<long long> wkfids;
  std::unordered_set<long long> actids;
  for (const sql::Row& row : shards_[0]->db.table("hworkflow").rows()) {
    wkfids.insert(row[0].as_int());
  }
  for (const sql::Row& row : shards_[0]->db.table("hactivity").rows()) {
    actids.insert(row[0].as_int());
  }
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    sql::Table& act = shard.db.table("hactivation");
    recovery_.orphan_rows += act.erase_if([&](const sql::Row& row) {
      return !actids.contains(row[kActActid].as_int()) ||
             !wkfids.contains(row[kActWkfid].as_int());
    });
    std::unordered_set<long long> taskids;
    for (const sql::Row& row : act.rows()) {
      taskids.insert(row[kActTaskid].as_int());
    }
    recovery_.orphan_rows += shard.db.table("hfile").erase_if(
        [&](const sql::Row& row) { return !taskids.contains(row[3].as_int()); });
    recovery_.orphan_rows += shard.db.table("hvalue").erase_if(
        [&](const sql::Row& row) { return !taskids.contains(row[1].as_int()); });
    shard.activation_rows.clear();
    const std::vector<sql::Row>& rows = act.rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      shard.activation_rows.emplace(rows[i][kActTaskid].as_int(), i);
    }
  }
}

void ProvenanceStore::start_flusher() {
  flusher_edge_ = racer::on_task_spawn();
  flusher_ = std::thread([this] { flusher_main(); });
}

void ProvenanceStore::flusher_main() {
  racer::TaskRun racer_run(flusher_edge_);
  const auto interval =
      std::chrono::milliseconds(std::max(options_.group_commit_interval_ms, 1));
  for (;;) {
    long long target = 0;
    {
      MutexLock lock(flusher_mutex_);
      if (!stop_ && flush_tickets_ == flush_completed_ &&
          pending_bytes_total_.load(std::memory_order_relaxed) <
              static_cast<long long>(options_.group_commit_max_bytes)) {
        flusher_cv_.wait_for(flusher_mutex_, interval);
      }
      if (crashed_.load(std::memory_order_acquire)) break;
      target = flush_tickets_;
      if (pending_bytes_total_.load(std::memory_order_relaxed) == 0 &&
          target == flush_completed_) {
        if (stop_) break;
        continue;
      }
    }
    const bool ok = commit_once();
    {
      MutexLock lock(flusher_mutex_);
      flush_completed_ = target;
      flush_done_cv_.notify_all();
      if (!ok) break;
      if (stop_ &&
          pending_bytes_total_.load(std::memory_order_relaxed) == 0 &&
          flush_tickets_ == flush_completed_) {
        break;
      }
    }
  }
  // Wake any flush() waiters so they observe the crashed/stopped state.
  MutexLock lock(flusher_mutex_);
  flush_done_cv_.notify_all();
}

bool ProvenanceStore::commit_once() {
  const std::size_t n = shards_.size();
  std::vector<std::string> batches(n);
  std::vector<long long> counts(n, 0);
  // Snapshot fact shards first and shard 0 — the only shard whose log
  // carries dimension records — last; write shard 0 first below. A fact
  // enqueued after its dimension can then never be snapshotted without
  // it, so durable facts always reference durable dimensions.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = (i + 1) % n;  // 1, 2, ..., n-1, 0
    Shard& shard = *shards_[k];
    MutexLock lock(shard.mutex);
    batches[k] = std::move(shard.pending);
    shard.pending.clear();
    counts[k] = shard.pending_records;
    shard.pending_records = 0;
    pending_bytes_total_.fetch_sub(static_cast<long long>(batches[k].size()),
                                   std::memory_order_relaxed);
  }

  long long bytes = 0;
  long long records = 0;
  for (std::size_t k = 0; k < n; ++k) {
    bytes += static_cast<long long>(batches[k].size());
    records += counts[k];
  }
  if (records == 0) return true;

  long long rotated = 0;
  try {
    for (std::size_t k = 0; k < n; ++k) {
      if (batches[k].empty()) continue;
      SCIDOCK_RACER_WRITE(shards_[k]->writer);
      const std::size_t before = shards_[k]->writer->rotations();
      shards_[k]->writer->append(batches[k], 0.0);
      rotated += static_cast<long long>(shards_[k]->writer->rotations() - before);
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (!batches[k].empty()) shards_[k]->writer->sync();
    }
  } catch (...) {
    crashed_.store(true, std::memory_order_release);
    return false;
  }
  records_durable_.fetch_add(records, std::memory_order_relaxed);
  bytes_durable_.fetch_add(bytes, std::memory_order_relaxed);
  group_commits_.fetch_add(1, std::memory_order_relaxed);
  if (rotated > 0) rotations_total_.fetch_add(rotated, std::memory_order_relaxed);
  bump(rates_.wal_records, records);
  bump(rates_.wal_bytes, bytes);
  bump(rates_.wal_group_commits);
  if (rotated > 0) bump(rates_.wal_rotations, rotated);
  if (obs::Gauge* g = rates_.wal_pending_bytes.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(
        pending_bytes_total_.load(std::memory_order_relaxed)));
  }
  return true;
}

}  // namespace scidock::prov
