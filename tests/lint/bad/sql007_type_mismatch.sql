SELECT tag + 1 FROM hworkflow WHERE description < 42
