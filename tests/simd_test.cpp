// Exhaustive lane-op unit tests for the portable SIMD wrappers
// (util/simd.hpp). Runs under whichever backend the build selected —
// ci/check.sh runs the suite under both the native backend and the
// forced-scalar reference build (-DSCIDOCK_SIMD_SCALAR=ON), so every
// backend's load/store/arithmetic/mask/gather semantics are pinned to the
// same expectations (ctest -L kernels).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "util/aligned.hpp"
#include "util/simd.hpp"

namespace scidock::simd {
namespace {

constexpr int W = f64x::kWidth;

std::vector<double> lanes_of(f64x v) {
  std::vector<double> out(W);
  v.store(out.data());
  return out;
}

TEST(SimdBackend, NameAndWidthAreConsistent) {
  const std::string name = backend_name();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "neon" ||
              name == "scalar")
      << name;
  if (name == "avx2" || name == "scalar") {
    EXPECT_EQ(f64x::kWidth, 4);
  } else {
    EXPECT_EQ(f64x::kWidth, 2);
  }
  if (forced_scalar()) {
    EXPECT_EQ(name, "scalar");
  }
  if (wide_backend()) {
    EXPECT_EQ(name, "avx2");
  }
  EXPECT_GE(f32x::kWidth, f64x::kWidth);
}

TEST(SimdF64, DefaultConstructorIsZero) {
  for (double l : lanes_of(f64x())) EXPECT_EQ(l, 0.0);
}

TEST(SimdF64, BroadcastFillsEveryLane) {
  for (double l : lanes_of(f64x(-3.25))) EXPECT_EQ(l, -3.25);
}

TEST(SimdF64, LoadStoreRoundTripsAlignedAndUnaligned) {
  // An aligned buffer with a deliberate odd offset exercises the
  // unaligned-tail contract: load/store must accept any pointer.
  util::aligned_vector<double> buf(2 * W + 1);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = 0.5 * static_cast<double>(i) - 3.0;
  }
  for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{W + 1}}) {
    const f64x v = f64x::load(buf.data() + off);
    for (int l = 0; l < W; ++l) {
      EXPECT_EQ(v.lane(l), buf[off + static_cast<std::size_t>(l)]) << off;
    }
    std::vector<double> out(static_cast<std::size_t>(W) + 1, -1.0);
    v.store(out.data() + 1);  // unaligned store target
    for (int l = 0; l < W; ++l) {
      EXPECT_EQ(out[static_cast<std::size_t>(l) + 1],
                buf[off + static_cast<std::size_t>(l)]);
    }
    EXPECT_EQ(out[0], -1.0);  // no write below the pointer
  }
}

TEST(SimdF64, LanewiseArithmeticMatchesScalar) {
  double a_in[4] = {1.5, -2.0, 0.25, 1e8};
  double b_in[4] = {-0.5, 4.0, 0.125, 3.0};
  const f64x a = f64x::load(a_in);
  const f64x b = f64x::load(b_in);
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ((a + b).lane(l), a_in[l] + b_in[l]);
    EXPECT_EQ((a - b).lane(l), a_in[l] - b_in[l]);
    EXPECT_EQ((a * b).lane(l), a_in[l] * b_in[l]);
    EXPECT_EQ((a / b).lane(l), a_in[l] / b_in[l]);
  }
  f64x acc = a;
  acc += b;
  for (int l = 0; l < W; ++l) EXPECT_EQ(acc.lane(l), a_in[l] + b_in[l]);
}

TEST(SimdF64, MinMaxSqrtPerLane) {
  double a_in[4] = {1.0, -2.0, 9.0, 0.0};
  double b_in[4] = {2.0, -3.0, 4.0, 0.0};
  const f64x a = f64x::load(a_in);
  const f64x b = f64x::load(b_in);
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(min(a, b).lane(l), std::min(a_in[l], b_in[l]));
    EXPECT_EQ(max(a, b).lane(l), std::max(a_in[l], b_in[l]));
    EXPECT_EQ(sqrt(max(a, f64x())).lane(l),
              std::sqrt(std::max(a_in[l], 0.0)));
  }
}

TEST(SimdF64, FmaddIsMulAddWithinOneUlp) {
  double a_in[4] = {1.25, -3.5, 1e3, 0.0};
  double b_in[4] = {2.5, 0.5, 1e-3, 7.0};
  double c_in[4] = {-1.0, 2.0, 4.0, 1.0};
  const f64x r = fmadd(f64x::load(a_in), f64x::load(b_in), f64x::load(c_in));
  for (int l = 0; l < W; ++l) {
    // Contracted (single-rounding) and separate mul+add may differ by at
    // most one rounding of the product term.
    const double expect = a_in[l] * b_in[l] + c_in[l];
    EXPECT_NEAR(r.lane(l), expect, 1e-12 * (1.0 + std::abs(expect)));
  }
}

TEST(SimdF64, HsumIsThePairwiseReduction) {
  double in[4] = {1.0, 10.0, 100.0, 1000.0};
  const f64x v = f64x::load(in);
  if (W == 2) {
    EXPECT_EQ(v.hsum(), in[0] + in[1]);
  } else {
    EXPECT_EQ(v.hsum(), (in[0] + in[2]) + (in[1] + in[3]));
  }
}

TEST(SimdF64, ComparisonMasksAreFullWidth) {
  double a_in[4] = {1.0, 5.0, 3.0, 3.0};
  double b_in[4] = {2.0, 4.0, 3.0, -1.0};
  const f64x lt = less_than(f64x::load(a_in), f64x::load(b_in));
  const f64x ge = greater_equal(f64x::load(a_in), f64x::load(b_in));
  for (int l = 0; l < W; ++l) {
    std::uint64_t lt_bits = 0, ge_bits = 0;
    const double lt_lane = lt.lane(l), ge_lane = ge.lane(l);
    std::memcpy(&lt_bits, &lt_lane, sizeof lt_bits);
    std::memcpy(&ge_bits, &ge_lane, sizeof ge_bits);
    EXPECT_EQ(lt_bits, a_in[l] < b_in[l] ? ~std::uint64_t{0} : 0) << l;
    EXPECT_EQ(ge_bits, a_in[l] >= b_in[l] ? ~std::uint64_t{0} : 0) << l;
  }
}

TEST(SimdF64, BlendSelectsPerLane) {
  double a_in[4] = {1.0, 2.0, 3.0, 4.0};
  double b_in[4] = {-1.0, -2.0, -3.0, -4.0};
  double m_in[4];
  for (int l = 0; l < W; ++l) m_in[l] = mask_value(l % 2 == 0);
  const f64x r =
      blend(f64x::load(m_in), f64x::load(a_in), f64x::load(b_in));
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(r.lane(l), l % 2 == 0 ? a_in[l] : b_in[l]);
  }
}

TEST(SimdF64, AnyAllOverHandBuiltMasks) {
  double none[4], some[4], every[4];
  for (int l = 0; l < W; ++l) {
    none[l] = mask_value(false);
    some[l] = mask_value(l == W - 1);
    every[l] = mask_value(true);
  }
  EXPECT_FALSE(any(f64x::load(none)));
  EXPECT_FALSE(all(f64x::load(none)));
  EXPECT_TRUE(any(f64x::load(some)));
  EXPECT_FALSE(all(f64x::load(some)));
  EXPECT_TRUE(any(f64x::load(every)));
  EXPECT_TRUE(all(f64x::load(every)));
}

TEST(SimdF64, NanPropagatesThroughArithmeticAndFailsComparisons) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  double a_in[4] = {nan, 1.0, nan, 2.0};
  double b_in[4] = {1.0, nan, nan, 2.0};
  const f64x a = f64x::load(a_in);
  const f64x b = f64x::load(b_in);
  for (int l = 0; l < W; ++l) {
    const bool has_nan = std::isnan(a_in[l]) || std::isnan(b_in[l]);
    EXPECT_EQ(std::isnan((a + b).lane(l)), has_nan) << l;
    EXPECT_EQ(std::isnan((a * b).lane(l)), has_nan) << l;
  }
  // IEEE: every ordered comparison with a NaN operand is false, exactly
  // like the scalar operators — blend() must then take the fallback.
  const f64x lt = less_than(a, b);
  const f64x ge = greater_equal(a, b);
  for (int l = 0; l < W; ++l) {
    if (std::isnan(a_in[l]) || std::isnan(b_in[l])) {
      std::uint64_t bits = 1;
      const double lane = lt.lane(l);
      std::memcpy(&bits, &lane, sizeof bits);
      EXPECT_EQ(bits, 0u) << l;
      const double glane = ge.lane(l);
      std::memcpy(&bits, &glane, sizeof bits);
      EXPECT_EQ(bits, 0u) << l;
    }
  }
  const f64x fallback = blend(lt, f64x(1.0), f64x(-1.0));
  for (int l = 0; l < W; ++l) {
    if (std::isnan(a_in[l]) || std::isnan(b_in[l])) {
      EXPECT_EQ(fallback.lane(l), -1.0) << l;
    }
  }
}

TEST(SimdF64, GatherReadsPerLaneIndices) {
  std::vector<double> table(64);
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<double>(i) * 1.5;
  }
  std::int32_t idx[4] = {0, 63, 17, 4};
  const f64x g = gather(table.data(), idx);
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(g.lane(l), table[static_cast<std::size_t>(idx[l])]);
  }
}

TEST(SimdF64, TruncateToIntRoundsTowardZero) {
  double in[4] = {0.0, 2.9, 4095.999, 17.0};
  std::int32_t out[4] = {-1, -1, -1, -1};
  truncate_to_int(f64x::load(in), out);
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(out[l], static_cast<std::int32_t>(in[l])) << l;
  }
}

TEST(SimdF32, CoreOpsMatchScalar) {
  constexpr int WF = f32x::kWidth;
  std::vector<float> a_in(static_cast<std::size_t>(WF)),
      b_in(static_cast<std::size_t>(WF));
  for (int l = 0; l < WF; ++l) {
    a_in[static_cast<std::size_t>(l)] = 0.5f * static_cast<float>(l) - 1.0f;
    b_in[static_cast<std::size_t>(l)] = 2.0f - static_cast<float>(l);
  }
  const f32x a = f32x::load(a_in.data());
  const f32x b = f32x::load(b_in.data());
  float expect_sum = 0.0f;
  for (int l = 0; l < WF; ++l) {
    const auto i = static_cast<std::size_t>(l);
    EXPECT_EQ((a + b).lane(l), a_in[i] + b_in[i]);
    EXPECT_EQ((a - b).lane(l), a_in[i] - b_in[i]);
    EXPECT_EQ((a * b).lane(l), a_in[i] * b_in[i]);
    EXPECT_NEAR(fmadd(a, b, a).lane(l), a_in[i] * b_in[i] + a_in[i], 1e-5f);
    expect_sum += a_in[i];
  }
  EXPECT_NEAR(a.hsum(), expect_sum, 1e-5f);
  std::vector<float> out(static_cast<std::size_t>(WF), -9.0f);
  a.store(out.data());
  EXPECT_EQ(out, a_in);
}

}  // namespace
}  // namespace scidock::simd
