// Ablations over the design choices DESIGN.md calls out:
//   A1  greedy weighted-cost scheduling vs FIFO
//   A2  activation-level re-execution vs losing failed tuples
//   A3  the Hg pre-abort routine vs burning the hang watchdog
//   A4  elasticity vs a static fleet
//   A5  AD4 search effort vs FEB depth (the Table 3 deviation explained)

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "data/table2.hpp"
#include "scidock/analysis.hpp"
#include "util/strings.hpp"

using namespace scidock;

namespace {

wf::SimReport run(const core::Experiment& exp, int cores,
                  const std::function<void(wf::SimExecutorOptions&)>& tweak) {
  wf::SimExecutorOptions opts = core::default_sim_options(cores);
  tweak(opts);
  return core::run_simulated(exp, cores, nullptr, opts);
}

}  // namespace

int main() {
  const int pairs = bench::env_int("SCIDOCK_ABLATION_PAIRS", 2000);
  bench::print_header("SciDock bench: design-choice ablations",
                      "Section V.C discussion / DESIGN.md section 5");
  core::ScidockOptions options;
  options.engine_mode = core::EngineMode::Adaptive;
  core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(),
      static_cast<std::size_t>(pairs), options);
  std::printf("workload: %d pairs (adaptive AD4/Vina routing)\n\n", pairs);

  // ---- A1: scheduling policy ----
  std::printf("A1. scheduling policy (TET):\n");
  for (int cores : {32, 128}) {
    const auto greedy = run(exp, cores, [](auto& o) { o.scheduler_policy = "greedy-cost"; });
    const auto fifo = run(exp, cores, [](auto& o) { o.scheduler_policy = "fifo"; });
    std::printf("  %3d cores: greedy %-10s fifo %-10s (greedy %+.1f%%)\n",
                cores, human_duration(greedy.total_execution_time_s).c_str(),
                human_duration(fifo.total_execution_time_s).c_str(),
                100.0 * (fifo.total_execution_time_s -
                         greedy.total_execution_time_s) /
                    fifo.total_execution_time_s);
  }

  // ---- A2: fault tolerance ----
  std::printf("\nA2. activation re-execution under the ~10%% failure rate:\n");
  const auto with_retry = run(exp, 32, [](auto&) {});
  const auto no_retry = run(exp, 32, [](auto& o) { o.reexecute_failures = false; });
  std::printf("  re-execution ON : %lld failed attempts retried, %lld pairs lost\n",
              with_retry.activations_failed, with_retry.tuples_lost);
  std::printf("  re-execution OFF: %lld pairs lost (%.1f%% of the screen wasted)\n",
              no_retry.tuples_lost, 100.0 * no_retry.tuples_lost / pairs);

  // ---- A3: Hg pre-abort ----
  std::printf("\nA3. the Hg detection routine (added after provenance diagnosis):\n");
  const auto with_fix = run(exp, 32, [](auto&) {});
  const auto without_fix = run(exp, 32, [](auto& o) { o.preabort_hazards = false; });
  std::printf("  routine ON : TET %-10s hangs %lld\n",
              human_duration(with_fix.total_execution_time_s).c_str(),
              with_fix.activations_hung);
  std::printf("  routine OFF: TET %-10s hangs %lld (watchdog burned per attempt)\n",
              human_duration(without_fix.total_execution_time_s).c_str(),
              without_fix.activations_hung);

  // ---- A4: elasticity ----
  std::printf("\nA4. elasticity vs a static fleet (start at 2 VMs, cap 16):\n");
  const auto elastic = run(exp, 8, [](auto& o) {
    o.elasticity = true;
    o.min_vms = 1;
    o.max_vms = 16;
    o.elastic_vm_type = cloud::vm_type_m3_2xlarge();
  });
  const auto static_small = run(exp, 8, [](auto&) {});
  std::printf("  static 8 cores : TET %-10s cost $%.0f\n",
              human_duration(static_small.total_execution_time_s).c_str(),
              static_small.cloud_cost_usd);
  std::printf("  elastic (<=16 VMs): TET %-10s cost $%.0f peak VMs %d\n",
              human_duration(elastic.total_execution_time_s).c_str(),
              elastic.cloud_cost_usd, elastic.peak_alive_vms);

  // ---- A5: AD4 effort vs FEB (native, small subset) ----
  std::printf("\nA5. AD4 FEB depth vs GA evaluations (native docking, 40 pairs):\n");
  const std::vector<std::string> recs(data::table2_receptors().begin(),
                                      data::table2_receptors().begin() + 20);
  for (long long evals : {1000LL, 3000LL, 10000LL}) {
    core::ScidockOptions nat;
    nat.engine_mode = core::EngineMode::ForceAd4;
    nat.ad4_params.ga_num_evals = evals;
    core::Experiment nexp = core::make_experiment(recs, {"042", "0E6"}, 0, nat);
    const wf::NativeReport report = core::run_native(nexp, 1);
    const auto rows = core::table3_from_relation(report.output);
    int fav = 0, total = 0;
    double feb = 0.0;
    for (const auto& r : rows) {
      fav += r.favorable;
      total += r.total_pairs;
      feb += r.avg_feb_neg * r.favorable;
    }
    std::printf("  ga_num_evals %6lld: FEB(-) %2d/%2d  avg FEB(-) %6.2f kcal/mol\n",
                evals, fav, total, fav ? feb / fav : 0.0);
  }
  std::printf("  -> more search deepens AD4's FEB toward the paper's range.\n");
  return 0;
}
