#include "scidock/experiment.hpp"

#include "cloud/cost_model.hpp"
#include "data/table2.hpp"
#include "util/error.hpp"

namespace scidock::core {

Experiment make_experiment(const std::vector<std::string>& receptors,
                           const std::vector<std::string>& ligands,
                           std::size_t max_pairs, ScidockOptions options) {
  Experiment exp;
  exp.options = options;
  exp.fs = std::make_shared<vfs::SharedFileSystem>();
  exp.prov = std::make_shared<prov::ProvenanceStore>();
  exp.cache = make_artifact_cache();
  exp.pipeline = build_scidock_pipeline(options, exp.cache);
  data::stage_dataset(*exp.fs, options.expdir, receptors, ligands,
                      options.dataset);
  exp.pairs = data::build_pairs_relation(receptors, ligands, options.expdir,
                                         max_pairs, options.dataset);
  // Fixed-engine scenarios override the adaptive routing precomputed by
  // the data layer, so the simulated chains match the native routing.
  if (options.engine_mode != EngineMode::Adaptive) {
    const std::string engine =
        options.engine_mode == EngineMode::ForceAd4 ? "ad4" : "vina";
    wf::Relation forced{exp.pairs.field_names()};
    for (const wf::Tuple& t : exp.pairs.tuples()) {
      wf::Tuple copy = t;
      copy.set("engine", engine);
      forced.add(std::move(copy));
    }
    exp.pairs = std::move(forced);
  }
  return exp;
}

wf::NativeReport run_native(Experiment& exp, int threads,
                            const std::string& workflow_tag,
                            obs::Observability obs) {
  wf::NativeExecutorOptions opts;
  opts.threads = threads;
  opts.expdir = exp.options.expdir;
  opts.obs = obs;
  exp.prov->set_metrics(obs.metrics);
  wf::NativeExecutor executor(exp.pipeline, *exp.fs, *exp.prov, opts);
  wf::NativeReport report = executor.run(exp.pairs, workflow_tag);
  exp.prov->set_metrics(nullptr);
  return report;
}

wf::SimExecutorOptions default_sim_options(int virtual_cores,
                                           std::uint64_t seed) {
  wf::SimExecutorOptions opts;
  opts.fleet = wf::m3_fleet_for_cores(virtual_cores);
  opts.scheduler_policy = "greedy-cost";
  opts.seed = seed;
  // Docking writes the bulky outputs (maps, dlg); preparation stages move
  // small text files.
  opts.io_bytes = {
      {kBabel, 8 * 1024},        {kPrepLigand, 16 * 1024},
      {kPrepReceptor, 256 * 1024}, {kGpfPrep, 2 * 1024},
      {kAutogrid, 12 * 1024 * 1024}, {kDockFilter, 1024},
      {kDpfPrep, 2 * 1024},      {kConfPrep, 1024},
      {kAutodock4, 20 * 1024 * 1024}, {kAutodockVina, 4 * 1024 * 1024},
  };
  return opts;
}

wf::SimReport run_simulated(const Experiment& exp, int virtual_cores,
                            prov::ProvenanceStore* prov_store,
                            wf::SimExecutorOptions sim_options,
                            const std::string& workflow_tag) {
  if (sim_options.fleet.empty()) {
    const obs::Observability obs = sim_options.obs;
    sim_options = default_sim_options(virtual_cores, sim_options.seed);
    sim_options.obs = obs;
  }
  wf::SimulatedExecutor executor(exp.pipeline,
                                 cloud::CostModel::scidock_default(),
                                 std::move(sim_options));
  return executor.run(exp.pairs, prov_store, workflow_tag);
}

}  // namespace scidock::core
