#pragma once

/// \file cost_model.hpp
/// Activity-duration model for the simulated executor, calibrated to the
/// paper's evaluation: per-activity lognormal service times whose means
/// reproduce the Figure 6 per-activity profile and whose chain totals
/// match the headline TETs (AD4 ~216 s/pair, Vina ~155 s/pair, from
/// "12.5 days on 2 cores" / "9 days on 2 cores" over 10,000 pairs).
/// The model also prices the scheduler's planning overhead, which the
/// paper blames for the >32-core efficiency drop (greedy plan cost grows
/// with queued activations × available VMs).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace scidock::cloud {

/// One activity's service-time distribution on the reference core.
struct ActivityCost {
  std::string tag;
  double mean_s = 1.0;    ///< lognormal mean (of the distribution itself)
  double sigma = 0.5;     ///< lognormal shape (underlying normal's sigma)
  double min_s = 0.05;    ///< floor after sampling
};

class CostModel {
 public:
  /// The SciDock calibration (activities tagged as in the workflow spec).
  static CostModel scidock_default();

  void set_cost(ActivityCost cost);
  const ActivityCost& cost(std::string_view tag) const;  ///< throws NotFoundError
  bool has(std::string_view tag) const;
  const std::vector<ActivityCost>& costs() const { return costs_; }

  /// Sample a duration: lognormal(tag) × workload_scale × vm_slowdown.
  /// `workload_scale` lets the caller pass receptor/ligand size effects
  /// (1.0 = the average compound).
  double sample(std::string_view tag, double workload_scale,
                double vm_slowdown, Rng& rng) const;

  /// Expected duration (no sampling), used by the greedy scheduler's
  /// weighted cost ranking.
  double expected(std::string_view tag, double workload_scale,
                  double vm_slowdown) const;

  /// Planning time of one greedy scheduling decision. The engine's
  /// scheduler is a *serial* resource (the simulated executor queues
  /// decisions through it): a roughly constant per-decision cost barely
  /// shows at 2 cores but dominates once per-core work shrinks, which is
  /// what bends the paper's Figure 8/9 curves past 32 cores. It also
  /// grows mildly with the plan's search space (queued x VMs).
  double scheduling_overhead(std::size_t queued_activations,
                             std::size_t available_vms) const;

  /// Sum of mean chain durations for a pair (diagnostics / calibration).
  double chain_mean(const std::vector<std::string>& tags) const;

  double scheduling_overhead_coefficient = 1.6e-7;  ///< s per (task x VM)
  double scheduling_overhead_base = 0.25;           ///< s per decision

 private:
  std::vector<ActivityCost> costs_;
};

}  // namespace scidock::cloud
