#pragma once

/// \file spec.hpp
/// XML (de)serialisation of workflow definitions in the SciCumulus format
/// shown in the paper's Figure 2:
///
///   <SciCumulus>
///     <database name="scicumulus" server="..." port="5432"/>
///     <SciCumulusWorkflow tag="SciDock" description="Docking"
///                         exectag="scidock" expdir="/root/scidock/">
///       <SciCumulusActivity tag="babel" type="MAP"
///                           templatedir="/root/scidock/template_babel/"
///                           activation="./experiment.cmd">
///         <Relation reltype="Input" name="rel_in_1" filename="input_1.txt"/>
///         <Relation reltype="Output" name="rel_out1" filename="output_1.txt"/>
///         <File filename="experiment.cmd" instrumented="true"/>
///       </SciCumulusActivity>
///     </SciCumulusWorkflow>
///   </SciCumulus>

#include <string>
#include <string_view>

#include "wf/workflow.hpp"

namespace scidock::wf {

/// Parse a SciCumulus XML specification; throws ParseError on malformed
/// documents and InvalidStateError on semantically invalid ones.
WorkflowDef load_spec(std::string_view xml_text);

/// Serialise back to the Figure 2 XML format (round-trips with load_spec).
std::string save_spec(const WorkflowDef& wf);

}  // namespace scidock::wf
