#pragma once

/// \file vina.hpp
/// AutoDock Vina analog (Trott & Olson 2010): iterated-local-search
/// Monte Carlo with Metropolis acceptance and Solis-Wets refinement,
/// scored by the Vina empirical function via direct pairwise evaluation.
/// Independent chains ("exhaustiveness") optionally run on a thread pool —
/// Vina's headline multithreading.

#include "dock/dpf.hpp"
#include "dock/engine.hpp"

namespace scidock::dock {

class VinaEngine : public DockingEngine {
 public:
  explicit VinaEngine(VinaConfig config = {});

  std::string name() const override { return "Vina"; }

  DockingResult dock(const mol::PreparedReceptor& receptor,
                     const mol::PreparedLigand& ligand, const GridBox& box,
                     Rng& rng) override;

  const VinaConfig& config() const { return config_; }

  /// Monte-Carlo steps per chain; exposed for tests/benches that need
  /// fast runs.
  int steps_per_chain = 200;
  /// Number of worker threads for the exhaustiveness chains (1 = serial).
  int threads = 1;

 private:
  VinaConfig config_;
};

/// Redocking refinement (paper SS V.D: top interactions "should be refined
/// and reinforced using alternative approaches, such as ... redocking"):
/// restart the search from a previously docked pose inside a tighter box
/// around it, at higher local-search effort. Only the pose's coordinates
/// are needed (e.g. read back from an `_out.pdbqt`): the search restarts
/// from the pose's centroid and re-derives orientation and torsions, so
/// the refined FEB can land on either side of the screening value — a
/// hit that survives refinement is "reinforced" in the paper's sense.
DockingResult redock(const mol::PreparedReceptor& receptor,
                     const mol::PreparedLigand& ligand,
                     const Conformation& pose, Rng& rng,
                     double box_half_extent = 6.0, int refinement_steps = 400);

}  // namespace scidock::dock
