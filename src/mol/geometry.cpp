#include "mol/geometry.hpp"

#include <numbers>

#include "util/error.hpp"

namespace scidock::mol {

Quaternion Quaternion::from_axis_angle(const Vec3& axis, double angle_rad) {
  const Vec3 u = axis.normalized();
  const double half = angle_rad * 0.5;
  const double s = std::sin(half);
  return {std::cos(half), u.x * s, u.y * s, u.z * s};
}

Quaternion Quaternion::random_uniform(double u1, double u2, double u3) {
  // K. Shoemake, "Uniform random rotations", Graphics Gems III.
  const double two_pi = 2.0 * std::numbers::pi;
  const double s1 = std::sqrt(1.0 - u1);
  const double s2 = std::sqrt(u1);
  return Quaternion{s1 * std::sin(two_pi * u2), s1 * std::cos(two_pi * u2),
                    s2 * std::sin(two_pi * u3), s2 * std::cos(two_pi * u3)}
      .normalized();
}

Quaternion Quaternion::operator*(const Quaternion& o) const {
  return {w * o.w - x * o.x - y * o.y - z * o.z,
          w * o.x + x * o.w + y * o.z - z * o.y,
          w * o.y - x * o.z + y * o.w + z * o.x,
          w * o.z + x * o.y - y * o.x + z * o.w};
}

Quaternion Quaternion::normalized() const {
  const double n = norm();
  if (n < 1e-12) return identity();
  return {w / n, x / n, y / n, z / n};
}

Vec3 Quaternion::rotate(const Vec3& v) const {
  // v' = v + 2 q_v x (q_v x v + w v), the standard quaternion sandwich
  // expanded to avoid constructing the conjugate product.
  const Vec3 qv{x, y, z};
  const Vec3 t = qv.cross(v) * 2.0;
  return v + t * w + qv.cross(t);
}

Vec3 centroid(std::span<const Vec3> points) {
  SCIDOCK_ASSERT(!points.empty());
  Vec3 sum{};
  for (const Vec3& p : points) sum += p;
  return sum / static_cast<double>(points.size());
}

Aabb bounding_box(std::span<const Vec3> points) {
  SCIDOCK_ASSERT(!points.empty());
  Aabb box{points[0], points[0]};
  for (const Vec3& p : points) {
    box.lo.x = std::min(box.lo.x, p.x);
    box.lo.y = std::min(box.lo.y, p.y);
    box.lo.z = std::min(box.lo.z, p.z);
    box.hi.x = std::max(box.hi.x, p.x);
    box.hi.y = std::max(box.hi.y, p.y);
    box.hi.z = std::max(box.hi.z, p.z);
  }
  return box;
}

double dihedral_angle(const Vec3& a, const Vec3& b, const Vec3& c,
                      const Vec3& d) {
  const Vec3 b1 = b - a;
  const Vec3 b2 = c - b;
  const Vec3 b3 = d - c;
  const Vec3 n1 = b1.cross(b2);
  const Vec3 n2 = b2.cross(b3);
  const Vec3 m1 = n1.cross(b2.normalized());
  const double x = n1.dot(n2);
  const double y = m1.dot(n2);
  return std::atan2(y, x);
}

Vec3 rotate_about_axis(const Vec3& p, const Vec3& origin, const Vec3& axis,
                       double angle_rad) {
  const Quaternion q = Quaternion::from_axis_angle(axis, angle_rad);
  return q.rotate(p - origin) + origin;
}

}  // namespace scidock::mol
