file(REMOVE_RECURSE
  "libscidock_bench_common.a"
)
