#pragma once

/// \file engine.hpp
/// Engine-neutral docking task and result types (SciDock activity 8).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dock/conformation.hpp"
#include "dock/grid.hpp"
#include "mol/geometry.hpp"
#include "mol/prepare.hpp"
#include "util/rng.hpp"

namespace scidock::dock {

/// One scored conformation in a docking result.
struct Conformation {
  std::vector<mol::Vec3> coords;
  double feb = 0.0;             ///< reported free energy of binding, kcal/mol
  double intermolecular = 0.0;  ///< receptor-ligand component
  double intramolecular = 0.0;  ///< ligand internal component
  double rmsd_from_input = 0.0; ///< Å vs the input (reference) conformation
  int run = 0;                  ///< which independent run produced it
  int cluster = 0;              ///< RMSD-cluster index (0 = best cluster)
};

struct DockingResult {
  std::string receptor_name;
  std::string ligand_name;
  std::string engine_name;
  std::vector<Conformation> conformations;  ///< sorted best-FEB first
  long long energy_evaluations = 0;
  double wall_seconds = 0.0;

  bool empty() const { return conformations.empty(); }
  const Conformation& best() const;
  /// Favourable-interaction predicate used in Table 3: FEB < 0.
  bool favorable() const { return !empty() && best().feb < 0.0; }
  /// Mean FEB / RMSD over the reported conformations.
  double mean_feb() const;
  double mean_rmsd() const;
};

/// Assemble scored Conformations from pre-computed batch outputs: one per
/// pose, `run` set to the pose's index (engines batch the complete run/
/// chain set in order). Non-template half of append_batch_conformations.
std::vector<Conformation> build_conformations(
    std::vector<std::vector<mol::Vec3>>&& coords,
    const std::vector<double>& inter, const std::vector<double>& intra,
    const std::vector<double>& febs,
    const std::vector<mol::Vec3>& input_coords);

/// Score the winning poses of all runs/chains through the model's batched
/// SoA/SIMD path (one score_batch call instead of 2N scalar evaluations)
/// and append one Conformation per pose to `out`. `Model` is an energy
/// model exposing score_batch / coords_for / feb (Ad4EnergyModel,
/// VinaEnergyModel).
template <typename Model>
void append_batch_conformations(const Model& model,
                                const std::vector<DockPose>& poses,
                                const std::vector<mol::Vec3>& input_coords,
                                std::vector<Conformation>& out) {
  if (poses.empty()) return;
  std::vector<double> inter, intra;
  model.score_batch(poses, &inter, &intra);
  std::vector<std::vector<mol::Vec3>> coords;
  coords.reserve(poses.size());
  std::vector<double> febs(poses.size());
  for (std::size_t p = 0; p < poses.size(); ++p) {
    coords.push_back(model.coords_for(poses[p]));
    febs[p] = model.feb(inter[p]);
  }
  std::vector<Conformation> confs = build_conformations(
      std::move(coords), inter, intra, febs, input_coords);
  for (Conformation& c : confs) out.push_back(std::move(c));
}

/// Interface shared by the AD4 and Vina engines.
class DockingEngine {
 public:
  virtual ~DockingEngine() = default;
  virtual std::string name() const = 0;
  /// Dock a prepared ligand against a prepared receptor inside `box`.
  /// The RNG makes every run reproducible.
  virtual DockingResult dock(const mol::PreparedReceptor& receptor,
                             const mol::PreparedLigand& ligand,
                             const GridBox& box, Rng& rng) = 0;
};

}  // namespace scidock::dock
