// Table 2: the 238-receptor x 42-ligand Peptidase_CA dataset, staged
// through the synthetic generator and summarised.

#include <cstdio>

#include "bench_common.hpp"
#include "data/generator.hpp"
#include "data/table2.hpp"
#include "mol/torsion.hpp"
#include "util/stats.hpp"
#include "vfs/vfs.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: Table 2 dataset",
                      "Table 2 (receptors & ligands of clan CL0125)");

  const auto& receptors = data::table2_receptors();
  const auto& ligands = data::table2_ligands();
  bench::print_compare("receptors", "238", std::to_string(receptors.size()));
  bench::print_compare("ligands", "42", std::to_string(ligands.size()));
  bench::print_compare("receptor-ligand pairs", "10,000 (238 x 42 = 9,996)",
                       std::to_string(receptors.size() * ligands.size()));

  // Generate every structure and summarise (also a determinism smoke run).
  data::GeneratorOptions opts;
  RunningStats rec_atoms, rec_residues, lig_atoms, lig_torsions;
  int hg = 0, to_vina = 0;
  for (const std::string& code : receptors) {
    const mol::Molecule m = data::make_receptor(code, opts);
    rec_atoms.add(m.atom_count());
    rec_residues.add(data::receptor_residue_count(code, opts));
    if (data::receptor_has_hg(code, opts)) ++hg;
    if (data::receptor_residue_count(code, opts) > data::vina_size_threshold(opts)) {
      ++to_vina;
    }
  }
  for (const std::string& code : ligands) {
    mol::Molecule m = data::make_ligand(code);
    lig_atoms.add(m.heavy_atom_count());
    m.perceive();
    lig_torsions.add(mol::TorsionTree::build(m).torsion_count());
  }
  std::printf("\nreceptors: atoms %.0f..%.0f (mean %.0f), residues %.0f..%.0f\n",
              rec_atoms.min(), rec_atoms.max(), rec_atoms.mean(),
              rec_residues.min(), rec_residues.max());
  std::printf("ligands:   heavy atoms %.0f..%.0f (mean %.1f), torsions mean %.1f\n",
              lig_atoms.min(), lig_atoms.max(), lig_atoms.mean(),
              lig_torsions.mean());
  std::printf("routing:   %d receptors (%.0f%%) above the size threshold -> Vina\n",
              to_vina, 100.0 * to_vina / receptors.size());
  std::printf("hazards:   %d receptors carry Hg (hang the real preparation tools)\n",
              hg);

  // Stage onto the shared filesystem, as activity 0 of every experiment.
  vfs::SharedFileSystem fs;
  const int staged = data::stage_dataset(fs, "/root/exp_SciDock", receptors, ligands);
  std::printf("staged:    %d files, %.1f MB on the shared filesystem\n", staged,
              fs.total_bytes() / 1.0e6);
  return 0;
}
