// Calibration regression tests: the cloud cost model is tuned so the
// simulated experiments land on the paper's headline numbers; these
// tests pin that calibration so refactors cannot silently drift it.

#include <gtest/gtest.h>

#include "cloud/cost_model.hpp"
#include "data/table2.hpp"
#include "scidock/experiment.hpp"

namespace scidock {
namespace {

TEST(Calibration, Ad4TwoCoreTetMatchesPaperBallpark) {
  // Paper: 10,000 pairs in 12.5 days on 2 cores => ~216 s of chain per
  // pair. Allow +-20% (failures and staging ride on top of chain means).
  core::ScidockOptions options;
  options.engine_mode = core::EngineMode::ForceAd4;
  auto exp = core::make_experiment(data::table2_receptors(),
                                   data::table2_ligands(), 2000, options);
  const wf::SimReport r = core::run_simulated(exp, 2);
  const double serial_per_pair = r.total_execution_time_s * 2.0 / 2000.0;
  EXPECT_GT(serial_per_pair, 216.0 * 0.8);
  EXPECT_LT(serial_per_pair, 216.0 * 1.25);
}

TEST(Calibration, VinaWorkflowIsFasterThanAd4) {
  // Paper: 9 days vs 12.5 days on 2 cores => Vina chain ~0.72x of AD4's.
  core::ScidockOptions ad4_opts;
  ad4_opts.engine_mode = core::EngineMode::ForceAd4;
  auto ad4_exp = core::make_experiment(data::table2_receptors(),
                                       data::table2_ligands(), 1000, ad4_opts);
  core::ScidockOptions vina_opts;
  vina_opts.engine_mode = core::EngineMode::ForceVina;
  auto vina_exp = core::make_experiment(data::table2_receptors(),
                                        data::table2_ligands(), 1000, vina_opts);
  const double ad4 =
      core::run_simulated(ad4_exp, 4).total_execution_time_s;
  const double vina =
      core::run_simulated(vina_exp, 4).total_execution_time_s;
  EXPECT_LT(vina, ad4);
  EXPECT_NEAR(vina / ad4, 9.0 / 12.5, 0.12);
}

TEST(Calibration, ImprovementAt32CoresNearPaperHeadline) {
  // Paper Section VI: 95.4% (AD4) improvement at 32 cores vs one core.
  core::ScidockOptions options;
  options.engine_mode = core::EngineMode::ForceAd4;
  auto exp = core::make_experiment(data::table2_receptors(),
                                   data::table2_ligands(), 2000, options);
  const double tet2 = core::run_simulated(exp, 2).total_execution_time_s;
  const double tet32 = core::run_simulated(exp, 32).total_execution_time_s;
  const double improvement = 100.0 * (1.0 - tet32 / (2.0 * tet2));
  EXPECT_GT(improvement, 92.0);
  EXPECT_LT(improvement, 98.5);
}

TEST(Calibration, EfficiencyDegradesPast32Cores) {
  // Paper Figure 9: efficiency visibly decreases from 32 to 128 cores.
  core::ScidockOptions options;
  auto exp = core::make_experiment(data::table2_receptors(),
                                   data::table2_ligands(), 3000, options);
  const double tet32 = core::run_simulated(exp, 32).total_execution_time_s;
  const double tet128 = core::run_simulated(exp, 128).total_execution_time_s;
  const double eff_ratio = (tet32 * 32.0) / (tet128 * 128.0);
  EXPECT_LT(tet128, tet32);        // still a gain from more cores
  EXPECT_LT(eff_ratio, 0.9);       // but efficiency clearly degraded
}

TEST(Calibration, FailureRateNearTenPercent) {
  // "Each execution of SciDock contains about 10% of activity execution
  // failures" (Section IV.B).
  core::ScidockOptions options;
  auto exp = core::make_experiment(data::table2_receptors(),
                                   data::table2_ligands(), 1000, options);
  const wf::SimReport r = core::run_simulated(exp, 16);
  const double rate =
      static_cast<double>(r.activations_failed) /
      static_cast<double>(r.activations_finished + r.activations_failed);
  EXPECT_NEAR(rate, 0.10, 0.03);
}

TEST(Calibration, ReceptorPrepAveragesTenSeconds) {
  // "The third activity (Receptor preparation) consumes approximately 10
  // seconds" (Section V.C).
  const cloud::CostModel model = cloud::CostModel::scidock_default();
  EXPECT_NEAR(model.cost("prepreceptor").mean_s, 10.0, 1.0);
}

}  // namespace
}  // namespace scidock
