#pragma once

/// \file parser.hpp
/// Recursive-descent SQL parser for the subset the provenance layer needs:
/// SELECT (joins, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, aggregates,
/// EXTRACT), CREATE TABLE, INSERT, DELETE.

#include <string_view>

#include "sql/ast.hpp"

namespace scidock::sql {

/// Parse one statement; throws ParseError with line info on syntax errors.
Statement parse_statement(std::string_view sql);

/// Convenience: parse text that must be a SELECT.
SelectStmt parse_select(std::string_view sql);

}  // namespace scidock::sql
