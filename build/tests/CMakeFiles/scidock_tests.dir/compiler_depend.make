# Empty compiler generated dependencies file for scidock_tests.
# This may be replaced when dependencies are built.
