#include "wf/relation.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::wf {

void Tuple::set(std::string field, std::string value) {
  for (auto& [k, v] : fields_) {
    if (k == field) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::move(field), std::move(value));
}

std::optional<std::string> Tuple::get(std::string_view field) const {
  for (const auto& [k, v] : fields_) {
    if (k == field) return v;
  }
  return std::nullopt;
}

const std::string& Tuple::require(std::string_view field) const {
  for (const auto& [k, v] : fields_) {
    if (k == field) return v;
  }
  throw NotFoundError("tuple field", field);
}

bool Tuple::has(std::string_view field) const {
  for (const auto& [k, v] : fields_) {
    if (k == field) return true;
  }
  return false;
}

double Tuple::get_double(std::string_view field, double fallback) const {
  const auto v = get(field);
  if (!v) return fallback;
  return parse_double(*v, "tuple field");
}

void Relation::add(Tuple tuple) {
  for (const std::string& f : field_names_) {
    SCIDOCK_REQUIRE(tuple.has(f), "tuple missing schema field '" + f + "'");
  }
  tuples_.push_back(std::move(tuple));
}

std::string Relation::to_file_text() const {
  std::string out = join(field_names_, "\t") + "\n";
  for (const Tuple& t : tuples_) {
    std::vector<std::string> cells;
    cells.reserve(field_names_.size());
    for (const std::string& f : field_names_) cells.push_back(t.require(f));
    out += join(cells, "\t") + "\n";
  }
  return out;
}

Relation Relation::from_file_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line)) throw ParseError("relation", "empty file");
  Relation rel{split(trim(line), '\t')};
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto cells = split(line, '\t');
    if (cells.size() != rel.field_names().size()) {
      throw ParseError("relation", "row width mismatch: " + line);
    }
    Tuple t;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      t.set(rel.field_names()[i], cells[i]);
    }
    rel.add(std::move(t));
  }
  return rel;
}

}  // namespace scidock::wf
