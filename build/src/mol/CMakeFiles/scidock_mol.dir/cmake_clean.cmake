file(REMOVE_RECURSE
  "CMakeFiles/scidock_mol.dir/atom_typing.cpp.o"
  "CMakeFiles/scidock_mol.dir/atom_typing.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/charges.cpp.o"
  "CMakeFiles/scidock_mol.dir/charges.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/elements.cpp.o"
  "CMakeFiles/scidock_mol.dir/elements.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/geometry.cpp.o"
  "CMakeFiles/scidock_mol.dir/geometry.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/io_mol2.cpp.o"
  "CMakeFiles/scidock_mol.dir/io_mol2.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/io_pdb.cpp.o"
  "CMakeFiles/scidock_mol.dir/io_pdb.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/io_pdbqt.cpp.o"
  "CMakeFiles/scidock_mol.dir/io_pdbqt.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/io_sdf.cpp.o"
  "CMakeFiles/scidock_mol.dir/io_sdf.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/molecule.cpp.o"
  "CMakeFiles/scidock_mol.dir/molecule.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/prepare.cpp.o"
  "CMakeFiles/scidock_mol.dir/prepare.cpp.o.d"
  "CMakeFiles/scidock_mol.dir/torsion.cpp.o"
  "CMakeFiles/scidock_mol.dir/torsion.cpp.o.d"
  "libscidock_mol.a"
  "libscidock_mol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_mol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
