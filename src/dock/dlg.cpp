#include "dock/dlg.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::dock {

std::string write_dlg(const DockingResult& result) {
  std::string out;
  out += "________________________________________________________________\n";
  out += "AutoDock-compatible docking log produced by scidock\n";
  out += "RECEPTOR: " + result.receptor_name + "\n";
  out += "LIGAND: " + result.ligand_name + "\n";
  out += "ENGINE: " + result.engine_name + "\n";
  out += strformat("NUMBER OF ENERGY EVALUATIONS: %lld\n",
                   result.energy_evaluations);
  out += strformat("NUMBER OF RUNS: %d\n",
                   static_cast<int>(result.conformations.size()));
  out += "\n    RMSD TABLE\n    __________\n";
  out += "Rank | Run | FEB (kcal/mol) | RMSD (A) | Cluster\n";
  for (std::size_t i = 0; i < result.conformations.size(); ++i) {
    const Conformation& c = result.conformations[i];
    out += strformat("%4zu | %3d | %14.2f | %8.2f | %7d\n", i + 1, c.run,
                     c.feb, c.rmsd_from_input, c.cluster);
  }

  // CLUSTERING HISTOGRAM: occupancy per cluster, AD4-style bar chart.
  std::map<int, int> cluster_sizes;
  std::map<int, double> cluster_best;
  for (const Conformation& c : result.conformations) {
    ++cluster_sizes[c.cluster];
    const auto it = cluster_best.find(c.cluster);
    if (it == cluster_best.end() || c.feb < it->second) {
      cluster_best[c.cluster] = c.feb;
    }
  }
  out += "\n    CLUSTERING HISTOGRAM\n    ____________________\n";
  out += "Cluster | Lowest FEB | Occupancy\n";
  for (const auto& [cluster, size] : cluster_sizes) {
    out += strformat("%7d | %10.2f | ", cluster, cluster_best[cluster]);
    out.append(static_cast<std::size_t>(size), '#');
    out += '\n';
  }

  if (!result.conformations.empty()) {
    const Conformation& best = result.conformations.front();
    out += strformat("\nEstimated Free Energy of Binding    = %8.2f kcal/mol\n",
                     best.feb);
    out += strformat("Final Intermolecular Energy         = %8.2f kcal/mol\n",
                     best.intermolecular);
    out += strformat("Final Total Internal Energy         = %8.2f kcal/mol\n",
                     best.intramolecular);
    out += strformat("RMSD from reference structure       = %8.2f A\n",
                     best.rmsd_from_input);
  }
  out += strformat("\nMEAN_FEB %.4f\nMEAN_RMSD %.4f\nCLUSTERS %d\n",
                   result.mean_feb(), result.mean_rmsd(),
                   static_cast<int>(cluster_sizes.size()));
  return out;
}

std::string write_vina_log(const DockingResult& result) {
  std::string out;
  out += "scidock Vina-compatible log\n";
  out += "RECEPTOR: " + result.receptor_name + "\n";
  out += "LIGAND: " + result.ligand_name + "\n";
  out += "ENGINE: " + result.engine_name + "\n";
  out += strformat("NUMBER OF ENERGY EVALUATIONS: %lld\n",
                   result.energy_evaluations);
  out += "mode |   affinity | dist from best mode\n";
  out += "     | (kcal/mol) | rmsd l.b.| rmsd u.b.\n";
  out += "-----+------------+----------+----------\n";
  for (std::size_t i = 0; i < result.conformations.size(); ++i) {
    const Conformation& c = result.conformations[i];
    const double dist = result.conformations.empty()
                            ? 0.0
                            : mol::rmsd(c.coords, result.conformations[0].coords);
    out += strformat("%4zu %12.1f %10.3f %10.3f\n", i + 1, c.feb, dist, dist);
  }
  if (!result.conformations.empty()) {
    out += strformat("\nBEST_FEB %.4f\nBEST_RMSD %.4f\n",
                     result.conformations.front().feb,
                     result.conformations.front().rmsd_from_input);
  }
  std::map<int, int> clusters;
  for (const Conformation& c : result.conformations) ++clusters[c.cluster];
  out += strformat("MEAN_FEB %.4f\nMEAN_RMSD %.4f\nCLUSTERS %d\n",
                   result.mean_feb(), result.mean_rmsd(),
                   static_cast<int>(clusters.size()));
  return out;
}

std::string write_poses_pdbqt(const mol::PreparedLigand& ligand,
                              const DockingResult& result) {
  std::string out;
  for (std::size_t m = 0; m < result.conformations.size(); ++m) {
    const Conformation& c = result.conformations[m];
    out += strformat("MODEL %zu\n", m + 1);
    out += strformat("REMARK VINA RESULT: %10.3f %10.3f %10.3f\n", c.feb,
                     c.rmsd_from_input, c.rmsd_from_input);
    // Re-emit the ligand's flexible PDBQT with the docked coordinates.
    mol::Molecule posed = ligand.molecule;
    posed.set_coordinates(c.coords);
    out += mol::write_pdbqt_ligand(posed, ligand.torsions);
    out += "ENDMDL\n";
  }
  return out;
}

DlgSummary parse_docking_log(std::string_view text) {
  DlgSummary summary;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view lv = trim(line);
    auto value_after = [&lv](std::string_view prefix) -> std::string {
      return std::string(trim(lv.substr(prefix.size())));
    };
    if (starts_with(lv, "RECEPTOR:")) summary.receptor = value_after("RECEPTOR:");
    else if (starts_with(lv, "LIGAND:")) summary.ligand = value_after("LIGAND:");
    else if (starts_with(lv, "ENGINE:")) summary.engine = value_after("ENGINE:");
    else if (starts_with(lv, "Estimated Free Energy of Binding")) {
      const auto f = split_ws(lv);
      // "... = <value> kcal/mol"
      for (std::size_t i = 0; i + 1 < f.size(); ++i) {
        if (f[i] == "=") summary.best_feb = parse_double(f[i + 1], "dlg FEB");
      }
    } else if (starts_with(lv, "RMSD from reference structure")) {
      const auto f = split_ws(lv);
      for (std::size_t i = 0; i + 1 < f.size(); ++i) {
        if (f[i] == "=") summary.best_rmsd = parse_double(f[i + 1], "dlg RMSD");
      }
    } else if (starts_with(lv, "BEST_FEB")) {
      summary.best_feb = parse_double(value_after("BEST_FEB"), "log FEB");
    } else if (starts_with(lv, "BEST_RMSD")) {
      summary.best_rmsd = parse_double(value_after("BEST_RMSD"), "log RMSD");
    } else if (starts_with(lv, "MEAN_FEB")) {
      summary.mean_feb = parse_double(value_after("MEAN_FEB"), "log mean FEB");
    } else if (starts_with(lv, "MEAN_RMSD")) {
      summary.mean_rmsd = parse_double(value_after("MEAN_RMSD"), "log mean RMSD");
    } else if (starts_with(lv, "CLUSTERS")) {
      summary.clusters = static_cast<int>(parse_int(value_after("CLUSTERS"), "log clusters"));
    } else if (starts_with(lv, "NUMBER OF RUNS:")) {
      summary.conformations =
          static_cast<int>(parse_int(value_after("NUMBER OF RUNS:"), "log runs"));
    }
  }
  if (summary.engine.empty()) {
    throw ParseError("docking log", "missing ENGINE record");
  }
  return summary;
}

}  // namespace scidock::dock
