file(REMOVE_RECURSE
  "CMakeFiles/scidock_core.dir/analysis.cpp.o"
  "CMakeFiles/scidock_core.dir/analysis.cpp.o.d"
  "CMakeFiles/scidock_core.dir/experiment.cpp.o"
  "CMakeFiles/scidock_core.dir/experiment.cpp.o.d"
  "CMakeFiles/scidock_core.dir/scidock.cpp.o"
  "CMakeFiles/scidock_core.dir/scidock.cpp.o.d"
  "libscidock_core.a"
  "libscidock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
