#pragma once

/// \file engine.hpp
/// Engine-neutral docking task and result types (SciDock activity 8).

#include <memory>
#include <string>
#include <vector>

#include "dock/grid.hpp"
#include "mol/geometry.hpp"
#include "mol/prepare.hpp"
#include "util/rng.hpp"

namespace scidock::dock {

/// One scored conformation in a docking result.
struct Conformation {
  std::vector<mol::Vec3> coords;
  double feb = 0.0;             ///< reported free energy of binding, kcal/mol
  double intermolecular = 0.0;  ///< receptor-ligand component
  double intramolecular = 0.0;  ///< ligand internal component
  double rmsd_from_input = 0.0; ///< Å vs the input (reference) conformation
  int run = 0;                  ///< which independent run produced it
  int cluster = 0;              ///< RMSD-cluster index (0 = best cluster)
};

struct DockingResult {
  std::string receptor_name;
  std::string ligand_name;
  std::string engine_name;
  std::vector<Conformation> conformations;  ///< sorted best-FEB first
  long long energy_evaluations = 0;
  double wall_seconds = 0.0;

  bool empty() const { return conformations.empty(); }
  const Conformation& best() const;
  /// Favourable-interaction predicate used in Table 3: FEB < 0.
  bool favorable() const { return !empty() && best().feb < 0.0; }
  /// Mean FEB / RMSD over the reported conformations.
  double mean_feb() const;
  double mean_rmsd() const;
};

/// Interface shared by the AD4 and Vina engines.
class DockingEngine {
 public:
  virtual ~DockingEngine() = default;
  virtual std::string name() const = 0;
  /// Dock a prepared ligand against a prepared receptor inside `box`.
  /// The RNG makes every run reproducible.
  virtual DockingResult dock(const mol::PreparedReceptor& receptor,
                             const mol::PreparedLigand& ligand,
                             const GridBox& box, Rng& rng) = 0;
};

}  // namespace scidock::dock
