#pragma once

/// \file dpf.hpp
/// Activity-7 parameter files: the AD4 Docking Parameter File (7a) and the
/// Vina configuration file (7b). Both round-trip through text so the
/// workflow's template/extractor instrumentation has real files to handle.

#include <string>
#include <string_view>

#include "dock/grid.hpp"

namespace scidock::dock {

/// AD4 DPF — genetic-algorithm parameters plus file references.
struct DockingParameterFile {
  std::string ligand_file;
  std::string receptor_maps_prefix;
  int ga_runs = 10;           ///< independent LGA runs
  int ga_pop_size = 50;
  long long ga_num_evals = 25000;
  int ga_num_generations = 270;
  double ga_mutation_rate = 0.02;
  double ga_crossover_rate = 0.8;
  int sw_max_its = 300;       ///< Solis-Wets iterations per local search
  double rmstol = 2.0;        ///< clustering tolerance
  unsigned long long seed = 1;

  std::string to_text() const;
  static DockingParameterFile parse(std::string_view text);
};

/// Vina config — search box plus exhaustiveness.
struct VinaConfig {
  std::string receptor_file;
  std::string ligand_file;
  GridBox box;
  int exhaustiveness = 8;
  int num_modes = 9;
  double energy_range = 3.0;  ///< kcal/mol window around the best mode
  unsigned long long seed = 1;

  std::string to_text() const;
  static VinaConfig parse(std::string_view text);
};

}  // namespace scidock::dock
