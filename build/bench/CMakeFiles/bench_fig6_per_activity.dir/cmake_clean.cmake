file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_per_activity.dir/bench_fig6_per_activity.cpp.o"
  "CMakeFiles/bench_fig6_per_activity.dir/bench_fig6_per_activity.cpp.o.d"
  "bench_fig6_per_activity"
  "bench_fig6_per_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_per_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
