#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace scidock {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
Mutex g_sink_mutex{"log.sink"};  ///< serialises whole lines onto stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& message) {
  MutexLock lock(g_sink_mutex);
  std::fprintf(stderr, "[scidock %-5s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace scidock
