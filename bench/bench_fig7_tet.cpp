// Figure 7: total execution time of SciDock (AD4 and Vina) from 2 to 128
// virtual cores over the 10,000-pair dataset, plus the Section V.C / VI
// headline numbers (TET at 2 and 128 cores, % improvement at 32 cores).

#include <cstdio>

#include "bench_common.hpp"
#include "util/strings.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: total execution time vs virtual cores",
                      "Figure 7 (+ headline TETs from Sections I/V/VI)");

  const int pairs = bench::env_int("SCIDOCK_SCALING_PAIRS", 9996);
  std::printf("workload: %d receptor-ligand pairs on the cloud simulator\n\n",
              pairs);

  bench::Sweep ad4, vina;
  for (const auto mode : {core::EngineMode::ForceAd4, core::EngineMode::ForceVina}) {
    const bench::Sweep sweep = bench::run_scaling_sweep(
        mode, static_cast<std::size_t>(pairs), bench::paper_core_counts());
    std::printf("--- SciDock with %s ---\n", sweep.engine.c_str());
    std::printf("%6s %14s %14s\n", "cores", "TET", "TET (s)");
    for (const bench::SweepPoint& pt : sweep.points) {
      std::printf("%6d %14s %14.0f\n", pt.cores,
                  human_duration(pt.tet_s).c_str(), pt.tet_s);
    }
    std::printf("\n");
    (mode == core::EngineMode::ForceAd4 ? ad4 : vina) = sweep;
  }

  auto point = [](const bench::Sweep& s, int cores) {
    for (const bench::SweepPoint& pt : s.points) {
      if (pt.cores == cores) return pt;
    }
    return bench::SweepPoint{};
  };

  std::printf("paper-vs-measured (shape targets):\n");
  bench::print_compare("AD4  TET @ 2 cores", "12.5 d",
                       human_duration(point(ad4, 2).tet_s));
  bench::print_compare("AD4  TET @ 128 cores", "11.9 h",
                       human_duration(point(ad4, 128).tet_s));
  bench::print_compare("Vina TET @ 2 cores", "~9 d",
                       human_duration(point(vina, 2).tet_s));
  bench::print_compare("Vina TET @ 128 cores", "7.7 h",
                       human_duration(point(vina, 128).tet_s));
  bench::print_compare("AD4  improvement @ 32 cores vs serial", "95.4 %",
                       strformat("%.1f %%", point(ad4, 32).improvement_pct));
  bench::print_compare("Vina improvement @ 32 cores vs serial", "96.1 %",
                       strformat("%.1f %%", point(vina, 32).improvement_pct));
  bench::print_compare("Vina workflow faster than AD4 workflow", "yes",
                       point(vina, 2).tet_s < point(ad4, 2).tet_s ? "yes" : "NO");
  return 0;
}
