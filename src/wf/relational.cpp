#include "wf/relational.hpp"

#include <charconv>
#include <string>

#include "util/error.hpp"

namespace scidock::wf {

namespace {

/// Best-effort typing of a relation cell for SQL use. A cell becomes
/// numeric only when the conversion *round-trips*: ligand het codes like
/// "042" (leading zero) or "0E6" (reads as 0x10^6 in scientific notation)
/// must stay text or GROUP BY ligand would merge distinct codes.
sql::Value to_value(const std::string& text) {
  if (text.empty()) return sql::Value(text);
  // Integer?
  {
    std::int64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc{} && ptr == text.data() + text.size() &&
        std::to_string(v) == text) {
      return sql::Value(v);
    }
  }
  // Double? (plain decimal notation only, and it must round-trip)
  {
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc{} && ptr == text.data() + text.size() &&
        text.find_first_of("eE") == std::string::npos &&
        text.find('.') != std::string::npos) {
      return sql::Value(v);
    }
  }
  return sql::Value(text);
}

}  // namespace

sql::Table& to_sql_table(const Relation& relation, sql::Database& db,
                         std::string_view name) {
  sql::Table& table = db.create_table(std::string(name), relation.field_names());
  for (const Tuple& t : relation.tuples()) {
    sql::Row row;
    row.reserve(relation.field_names().size());
    for (const std::string& field : relation.field_names()) {
      row.push_back(to_value(t.require(field)));
    }
    table.insert(std::move(row));
  }
  return table;
}

Relation from_result_set(const sql::ResultSet& rs) {
  Relation out{rs.columns};
  for (const sql::Row& row : rs.rows) {
    Tuple t;
    for (std::size_t c = 0; c < rs.columns.size(); ++c) {
      t.set(rs.columns[c], row[c].to_string());
    }
    out.add(std::move(t));
  }
  return out;
}

Relation query_relation(const Relation& relation, std::string_view select_sql) {
  sql::Database db;
  to_sql_table(relation, db, "rel");
  sql::Engine engine(db);
  return from_result_set(engine.execute(select_sql));
}

}  // namespace scidock::wf
