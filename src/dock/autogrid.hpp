#pragma once

/// \file autogrid.hpp
/// Grid-map generation — SciDock activity 5 (AutoGrid 4 analog).
///
/// For every ligand atom type present, the calculator samples the summed
/// receptor interaction on each grid point: a type-specific vdW/H-bond
/// affinity map, a unit-charge electrostatic map and a desolvation map.
/// AutoDock 4 then scores poses by trilinear interpolation into these maps.

#include "dock/grid.hpp"
#include "dock/scoring.hpp"
#include "mol/molecule.hpp"

namespace scidock::dock {

struct AutogridOptions {
  double cutoff = 8.0;     ///< Å interaction cutoff (AutoGrid's NBC)
  Ad4Weights weights{};
};

class GridMapCalculator {
 public:
  /// `receptor` must be prepared (typed + charged).
  GridMapCalculator(const mol::Molecule& receptor, AutogridOptions opts = {});

  /// Compute maps over `box` for the given ligand atom types.
  GridMapSet calculate(const GridBox& box,
                       const std::vector<mol::AdType>& ligand_types) const;

 private:
  const mol::Molecule& receptor_;
  AutogridOptions opts_;
  NeighborList neighbors_;
};

/// The Grid Parameter File (activity 4 output): the text AutoGrid consumes.
/// Mirrors the real GPF keywords the paper's workflow templates carry.
struct GridParameterFile {
  GridBox box;
  std::vector<mol::AdType> ligand_types;
  std::string receptor_file;
  std::string ligand_file;

  std::string to_text() const;
  static GridParameterFile parse(std::string_view text);
};

/// Activity 4: derive the GPF from a prepared receptor + ligand pair.
/// The box is centred on the receptor's binding pocket (approximated by
/// the receptor centroid) and sized to the ligand's gyration radius.
GridParameterFile make_gpf(const mol::Molecule& receptor,
                           const mol::Molecule& ligand,
                           double box_padding = 6.0, double spacing = 0.375);

}  // namespace scidock::dock
