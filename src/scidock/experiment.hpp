#pragma once

/// \file experiment.hpp
/// End-to-end experiment drivers: stage the dataset, build the pipeline,
/// run it (natively or on the cloud simulator) and hand back reports.
/// These are the entry points the examples and benches call.

#include <memory>
#include <string>
#include <vector>

#include "prov/prov.hpp"
#include "scidock/scidock.hpp"
#include "vfs/vfs.hpp"
#include "wf/native_executor.hpp"
#include "wf/sim_executor.hpp"

namespace scidock::core {

/// A fully wired experiment environment (shared FS + provenance store +
/// pipeline + staged dataset + input relation).
struct Experiment {
  ScidockOptions options;
  std::shared_ptr<vfs::SharedFileSystem> fs;
  std::shared_ptr<prov::ProvenanceStore> prov;
  std::shared_ptr<ArtifactCache> cache;
  wf::Pipeline pipeline;
  wf::Relation pairs;
};

/// Stage receptors/ligands into a fresh VFS and build the input relation
/// over their cross product (max_pairs = 0 means all combinations).
Experiment make_experiment(const std::vector<std::string>& receptors,
                           const std::vector<std::string>& ligands,
                           std::size_t max_pairs, ScidockOptions options = {});

/// Run the experiment natively (real docking) on `threads` workers.
/// `obs` (optional) attaches tracing/metrics sinks to the executor and
/// the provenance store for the duration of the run.
wf::NativeReport run_native(Experiment& exp, int threads,
                            const std::string& workflow_tag = "SciDock",
                            obs::Observability obs = {});

/// Replay the experiment on the cloud simulator with `virtual_cores`
/// total cores (the paper's 2..128 sweep). The pipeline's routing fields
/// must already be in the relation (they are, via build_pairs_relation).
wf::SimReport run_simulated(const Experiment& exp, int virtual_cores,
                            prov::ProvenanceStore* prov_store = nullptr,
                            wf::SimExecutorOptions sim_options = {},
                            const std::string& workflow_tag = "SciDock-sim");

/// Default simulation options for a given core count: m3 fleet, greedy
/// scheduler, the paper's ~10% failure rate.
wf::SimExecutorOptions default_sim_options(int virtual_cores,
                                           std::uint64_t seed = 42);

}  // namespace scidock::core
