#pragma once

/// \file metrics.hpp
/// MetricsRegistry: named counters, gauges and histograms for runtime
/// observability (the SciCumulus monitor's "how is the run going" view,
/// without issuing provenance SQL on the hot path).
///
/// Design: the registry only pays a lock on *registration* — name lookup
/// goes through one of kShards mutex-guarded maps, and the returned
/// handle is a stable pointer the caller keeps. Updates on the handles
/// themselves are lock-free atomics, so executors can increment from any
/// worker thread at nanosecond cost. Export is Prometheus text format.
///
/// Naming convention (enforced: [a-z_][a-z0-9_]*):
///   scidock_<area>_<noun>_total            counters (monotone)
///   scidock_<area>_<noun>[_<unit>]         gauges
///   scidock_<area>_<noun>_seconds          histograms (duration-valued)

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace scidock::obs {

/// Monotone integer counter. Lock-free; safe from any thread.
class Counter {
 public:
  void inc(long long delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  long long value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

/// Double-valued gauge (set / add). Lock-free via CAS.
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-boundary histogram (Prometheus semantics: cumulative buckets on
/// export, an implicit +Inf bucket, plus _sum and _count). Lock-free.
class HistogramMetric {
 public:
  /// `upper_bounds` must be strictly increasing; an +Inf bucket is
  /// appended automatically.
  explicit HistogramMetric(std::vector<double> upper_bounds);

  void observe(double x);

  std::size_t bucket_count() const { return counts_.size(); }  ///< incl. +Inf
  /// Non-cumulative count of bucket `i` (the last bucket is +Inf).
  long long bucket_value(std::size_t i) const;
  double upper_bound(std::size_t i) const;  ///< +Inf for the last bucket
  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Default duration boundaries (seconds), log-spaced 1ms .. ~17min.
  static std::vector<double> default_seconds_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<long long>> counts_;  ///< bounds_.size() + 1
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe registry of named metrics. Handles returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime
/// (metrics are never removed).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Throws InvalidStateError if `name` breaks the
  /// [a-z_][a-z0-9_]* convention or is already registered as another kind.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  /// Empty `upper_bounds` selects HistogramMetric::default_seconds_bounds().
  HistogramMetric& histogram(std::string_view name,
                             std::vector<double> upper_bounds = {},
                             std::string_view help = "");

  /// Read-side lookups for tests and reconciliation: value of a counter /
  /// gauge, or 0 when the name was never registered.
  long long counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  /// Observation count of a histogram, or 0 when never registered.
  long long histogram_count(std::string_view name) const;
  /// Number of registered series (counters + gauges + histograms).
  std::size_t series_count() const;

  /// Prometheus text exposition format, series sorted by name so the
  /// output is diff-stable.
  std::string to_prometheus_text() const;

 private:
  struct Shard {
    mutable Mutex mutex{"obs.metrics.shard"};
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
        SCIDOCK_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
        SCIDOCK_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
        histograms SCIDOCK_GUARDED_BY(mutex);
    std::map<std::string, std::string, std::less<>> help
        SCIDOCK_GUARDED_BY(mutex);
  };
  static constexpr std::size_t kShards = 8;

  const Shard& shard_for(std::string_view name) const;
  Shard& shard_for(std::string_view name);
  /// Throws unless `name` matches the naming convention and is not yet
  /// registered in `shard` under a different kind than `kind`.
  static void validate_name(const Shard& shard, std::string_view name,
                            std::string_view kind)
      SCIDOCK_REQUIRES(shard.mutex);

  std::array<Shard, kShards> shards_;
};

}  // namespace scidock::obs
