# Empty dependencies file for scidock_mol.
# This may be replaced when dependencies are built.
