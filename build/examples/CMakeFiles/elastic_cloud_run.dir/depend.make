# Empty dependencies file for elastic_cloud_run.
# This may be replaced when dependencies are built.
