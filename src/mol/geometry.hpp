#pragma once

/// \file geometry.hpp
/// 3D vector / quaternion math for molecular coordinates. Values are in
/// Ångström throughout the library.

#include <array>
#include <cmath>
#include <cstddef>
#include <span>

namespace scidock::mol {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr bool operator==(const Vec3&) const = default;

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm_sq() const { return dot(*this); }
  double norm() const { return std::sqrt(norm_sq()); }

  /// Unit vector; returns +x axis for the zero vector (callers that rotate
  /// about a degenerate axis get an identity-like behaviour, not NaN).
  Vec3 normalized() const {
    const double n = norm();
    if (n < 1e-12) return {1.0, 0.0, 0.0};
    return *this / n;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
inline double distance_sq(const Vec3& a, const Vec3& b) { return (a - b).norm_sq(); }

/// Unit quaternion for rigid rotation.
struct Quaternion {
  double w = 1.0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  static Quaternion identity() { return {}; }

  /// Rotation of `angle_rad` about `axis` (need not be normalized).
  static Quaternion from_axis_angle(const Vec3& axis, double angle_rad);

  /// Uniformly random rotation (Shoemake's method) given three U(0,1) draws.
  static Quaternion random_uniform(double u1, double u2, double u3);

  Quaternion operator*(const Quaternion& o) const;
  Quaternion conjugate() const { return {w, -x, -y, -z}; }
  double norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }
  Quaternion normalized() const;

  Vec3 rotate(const Vec3& v) const;
};

/// Rigid-body pose: rotation about the body origin followed by translation.
struct Pose {
  Quaternion rotation = Quaternion::identity();
  Vec3 translation{};

  Vec3 apply(const Vec3& v) const { return rotation.rotate(v) + translation; }
};

/// Geometric centroid of a coordinate set.
Vec3 centroid(std::span<const Vec3> points);

/// Axis-aligned bounding box.
struct Aabb {
  Vec3 lo{};
  Vec3 hi{};
  Vec3 size() const { return hi - lo; }
  Vec3 center() const { return (lo + hi) * 0.5; }
  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
};

Aabb bounding_box(std::span<const Vec3> points);

/// Dihedral angle (radians) defined by four points, in (-pi, pi].
double dihedral_angle(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

/// Rotate point `p` about the axis through `origin` with direction `axis`
/// by `angle_rad`.
Vec3 rotate_about_axis(const Vec3& p, const Vec3& origin, const Vec3& axis,
                       double angle_rad);

}  // namespace scidock::mol
