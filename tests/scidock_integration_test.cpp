// End-to-end integration tests: the full SciDock workflow (all eight
// activities with real docking) over a small slice of the Table 2
// dataset, native and simulated, plus the paper's provenance queries.

#include <gtest/gtest.h>

#include "data/table2.hpp"
#include "dock/grid.hpp"
#include "mol/io_pdbqt.hpp"
#include "scidock/analysis.hpp"
#include "scidock/experiment.hpp"
#include "util/strings.hpp"

namespace scidock {
namespace {

core::ScidockOptions fast_options() {
  core::ScidockOptions opts;
  // Small structures + low search effort: a pair docks in well under a
  // second so the integration suite stays quick.
  opts.dataset.min_residues = 12;
  opts.dataset.max_residues = 30;
  opts.dataset.min_ligand_atoms = 8;
  opts.dataset.max_ligand_atoms = 14;
  opts.grid_spacing = 0.8;
  opts.ad4_params.ga_runs = 1;
  opts.ad4_params.ga_pop_size = 10;
  opts.ad4_params.ga_num_evals = 300;
  opts.ad4_params.ga_num_generations = 10;
  opts.ad4_params.sw_max_its = 15;
  opts.vina_exhaustiveness = 1;
  opts.vina_steps_per_chain = 8;
  return opts;
}

std::vector<std::string> some_receptors(int n) {
  const auto& all = data::table2_receptors();
  return {all.begin(), all.begin() + n};
}

TEST(ScidockIntegration, NativeRunProducesDockedPairs) {
  auto exp = core::make_experiment(some_receptors(3), {"042", "074"}, 0,
                                   fast_options());
  ASSERT_EQ(exp.pairs.size(), 6u);
  const wf::NativeReport report = core::run_native(exp, /*threads=*/2);
  // Every surviving pair carries FEB/RMSD fields.
  EXPECT_GT(report.output.size(), 0u);
  for (const wf::Tuple& t : report.output.tuples()) {
    EXPECT_TRUE(t.has("feb"));
    EXPECT_TRUE(t.has("rmsd"));
    EXPECT_TRUE(t.has("dlg_file"));
    EXPECT_TRUE(exp.fs->exists(t.require("dlg_file")));
  }
  EXPECT_GT(report.activations_finished, 0);
}

TEST(ScidockIntegration, VinaActivityWritesOutputPoses) {
  core::ScidockOptions opts = fast_options();
  opts.engine_mode = core::EngineMode::ForceVina;
  auto exp = core::make_experiment(some_receptors(2), {"042"}, 0, opts);
  const wf::NativeReport report = core::run_native(exp, 1);
  ASSERT_GT(report.output.size(), 0u);
  // Every docked pair has an _out.pdbqt with parseable MODEL blocks
  // ("Vina generates a new version of the PDBQT file", Section IV.A).
  int out_files = 0;
  for (const auto& info : exp.fs->list("/")) {
    if (!info.path.ends_with("_out.pdbqt")) continue;
    ++out_files;
    const auto models = mol::read_pdbqt_models(exp.fs->read(info.path));
    EXPECT_GE(models.size(), 1u);
    EXPECT_TRUE(models[0].is_ligand);
  }
  EXPECT_EQ(out_files, static_cast<int>(report.output.size()));
}

TEST(ScidockIntegration, AutogridCanPersistMapFiles) {
  core::ScidockOptions opts = fast_options();
  opts.write_map_files = true;  // the real AutoGrid always writes them
  opts.engine_mode = core::EngineMode::ForceAd4;
  auto exp = core::make_experiment(some_receptors(1), {"042"}, 0, opts);
  const wf::NativeReport report = core::run_native(exp, 1);
  ASSERT_GT(report.output.size(), 0u);
  int map_files = 0;
  for (const auto& info : exp.fs->list("/")) {
    if (!info.path.ends_with(".map")) continue;
    ++map_files;
    // Each persisted map parses back into a grid of the declared size.
    const dock::GridMap map =
        dock::GridMap::from_map_file(exp.fs->read(info.path));
    EXPECT_GT(map.values().size(), 0u);
  }
  // At least one per ligand atom type plus electrostatic + desolvation.
  EXPECT_GE(map_files, 3);
  // The field file is recorded in provenance alongside the maps.
  const auto rs = exp.prov->query(
      "SELECT count(*) FROM hfile WHERE fname LIKE '%.maps.fld'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
}

TEST(ScidockIntegration, HgReceptorIsRejectedAndTupleLost) {
  // Find an Hg-flagged receptor code in the real list.
  core::ScidockOptions opts = fast_options();
  opts.dataset.hg_fraction = 1.0;  // force the hazard
  auto exp = core::make_experiment(some_receptors(1), {"042"}, 0, opts);
  const wf::NativeReport report = core::run_native(exp, 1);
  EXPECT_EQ(report.output.size(), 0u);
  EXPECT_EQ(report.tuples_lost, 1);
  EXPECT_GT(report.activations_failed, 0);
  ASSERT_FALSE(report.failure_messages.empty());
  EXPECT_NE(report.failure_messages[0].find("unparameterised"),
            std::string::npos);
}

TEST(ScidockIntegration, Query1RunsVerbatimAgainstProvenance) {
  auto exp = core::make_experiment(some_receptors(2), {"042"}, 0,
                                   fast_options());
  core::run_native(exp, 1);
  const sql::ResultSet rs = exp.prov->query(core::query1(1));
  ASSERT_FALSE(rs.rows.empty());
  ASSERT_EQ(rs.columns.size(), 5u);  // tag, min, max, sum, avg
  for (const sql::Row& row : rs.rows) {
    EXPECT_TRUE(row[0].is_string());
    const double min = row[1].as_double();
    const double max = row[2].as_double();
    const double sum = row[3].as_double();
    const double avg = row[4].as_double();
    EXPECT_LE(min, max);
    EXPECT_GE(sum, avg);
    EXPECT_GE(avg, min);
    EXPECT_LE(avg, max);
  }
}

TEST(ScidockIntegration, Query2FindsDlgFiles) {
  core::ScidockOptions opts = fast_options();
  opts.engine_mode = core::EngineMode::ForceAd4;  // guarantees .dlg output
  auto exp = core::make_experiment(some_receptors(2), {"042"}, 0, opts);
  core::run_native(exp, 1);
  const sql::ResultSet rs = exp.prov->query(core::query2());
  ASSERT_FALSE(rs.rows.empty());
  for (const sql::Row& row : rs.rows) {
    EXPECT_TRUE(ends_with(row[2].as_string(), ".dlg"));
    EXPECT_GT(row[3].as_int(), 0);  // fsize
    EXPECT_FALSE(row[4].as_string().empty());  // fdir
  }
}

TEST(ScidockIntegration, SimulatedRunCompletesAllTuples) {
  auto exp = core::make_experiment(some_receptors(4), {"042", "074"}, 0,
                                   fast_options());
  prov::ProvenanceStore prov_store;
  const wf::SimReport report =
      core::run_simulated(exp, /*virtual_cores=*/8, &prov_store);
  EXPECT_EQ(report.tuples_completed,
            static_cast<long long>(exp.pairs.size()));
  EXPECT_GT(report.total_execution_time_s, 0.0);
  EXPECT_GT(report.activations_finished, 0);
  // Provenance captured simulated activations too.
  const sql::ResultSet rs = prov_store.query(
      "SELECT count(*) FROM hactivation WHERE status = 'FINISHED'");
  EXPECT_EQ(rs.rows[0][0].as_int(), report.activations_finished);
}

TEST(ScidockIntegration, SimulatedSpeedupIsNearLinearTo32Cores) {
  auto exp = core::make_experiment(some_receptors(30), {"042", "074"}, 0,
                                   fast_options());
  wf::SimExecutorOptions base = core::default_sim_options(2);
  base.failure.failure_probability = 0.0;  // isolate the scaling behaviour
  base.failure.hang_probability = 0.0;
  const double tet2 =
      core::run_simulated(exp, 2, nullptr, base).total_execution_time_s;
  wf::SimExecutorOptions wide = core::default_sim_options(16);
  wide.failure = base.failure;
  const double tet16 =
      core::run_simulated(exp, 16, nullptr, wide).total_execution_time_s;
  const double speedup = tet2 / tet16 * (16.0 / 2.0) / (16.0 / 2.0);
  EXPECT_GT(tet2 / tet16, 4.0);  // clearly parallel
  (void)speedup;
}

}  // namespace
}  // namespace scidock
