#pragma once

/// \file sql_lint.hpp
/// SQL semantic checker: resolves a provenance or relation query against a
/// typed catalog — tables, columns, column types — without executing it.
/// Finds the failure classes that would otherwise only surface at runtime
/// (the engine throws on unknown columns, bad arities and text-as-number
/// coercions) plus the silent ones it tolerates (ungrouped columns
/// evaluate on an arbitrary row), and validates `-- reconciles:` metric
/// annotations against the registered scidock_* series. Rules
/// SQL001..SQL008, see lint::rule_catalog().

#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.hpp"

namespace scidock::lint {

/// Column types the checker distinguishes. The engine stores Value =
/// {Null, int64, double, string}; Null is a property of data, not schema.
enum class ColType { Int, Real, Text };

std::string_view to_string(ColType type);

struct CatalogColumn {
  std::string name;
  ColType type = ColType::Text;
};

struct CatalogTable {
  std::string name;
  std::vector<CatalogColumn> columns;

  const CatalogColumn* find(std::string_view column) const;
};

/// A set of queryable tables with typed columns.
class Catalog {
 public:
  CatalogTable& add_table(std::string name,
                          std::vector<CatalogColumn> columns);
  const CatalogTable* find(std::string_view table) const;
  const std::vector<CatalogTable>& tables() const { return tables_; }

 private:
  std::vector<CatalogTable> tables_;
};

/// The PROV-Wf schema (hmachine, hworkflow, hactivity, hactivation,
/// hfile, hvalue) with the exact column names and types the provenance
/// store creates. A drift-guard test compares this against a live
/// prov::ProvenanceStore.
const Catalog& prov_wf_catalog();

/// A catalog holding one table `rel` — the table SRQuery/query_relation
/// exposes a workflow relation as.
Catalog relation_catalog(std::vector<CatalogColumn> rel_columns);

/// Check one SQL statement against `catalog`. `file` labels diagnostics.
Report lint_query(std::string_view sql, const Catalog& catalog,
                  std::string file = "");

}  // namespace scidock::lint
