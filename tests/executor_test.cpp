// Tests for the two executors over small synthetic pipelines: fault
// tolerance, parallelism, elasticity, provenance capture.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <utility>

#include "prov/prov.hpp"
#include "util/error.hpp"
#include "wf/native_executor.hpp"
#include "wf/pipeline.hpp"
#include "wf/sim_executor.hpp"

namespace scidock::wf {
namespace {

Relation numbers(int n) {
  Relation rel{{"id", "engine", "workload", "hg", "pair"}};
  for (int i = 0; i < n; ++i) {
    Tuple t;
    t.set("id", std::to_string(i));
    t.set("engine", i % 2 ? "vina" : "ad4");
    t.set("workload", "1.0");
    t.set("hg", "0");
    t.set("pair", "p" + std::to_string(i));
    rel.add(std::move(t));
  }
  return rel;
}

/// Two-stage pipeline: "double" then "stringify".
Pipeline toy_pipeline(std::atomic<int>* failures_to_inject = nullptr) {
  Pipeline p;
  p.add_stage(Stage{
      "double", AlgebraicOp::Map,
      [failures_to_inject](const Tuple& in, ActivationContext& ctx) {
        if (failures_to_inject && failures_to_inject->fetch_sub(1) > 0) {
          throw ActivityError("injected failure");
        }
        Tuple out = in;
        out.set("doubled", std::to_string(2 * std::stoi(in.require("id"))));
        ctx.emit_value("DOUBLED", 2.0 * std::stoi(in.require("id")));
        return std::vector<Tuple>{out};
      },
      nullptr, nullptr, nullptr});
  p.add_stage(Stage{
      "stringify", AlgebraicOp::Map,
      [](const Tuple& in, ActivationContext& ctx) {
        Tuple out = in;
        out.set("text", "v" + in.require("doubled"));
        ctx.emit_file("/out/" + in.require("id") + ".txt", in.require("doubled"));
        return std::vector<Tuple>{out};
      },
      nullptr, nullptr, nullptr});
  return p;
}

// ------------------------------------------------------- native executor

TEST(NativeExecutor, RunsChainAndCollectsOutput) {
  const Pipeline p = toy_pipeline();
  vfs::SharedFileSystem fs;
  prov::ProvenanceStore store;
  NativeExecutorOptions opts;
  opts.threads = 2;
  NativeExecutor exec(p, fs, store, opts);
  const NativeReport report = exec.run(numbers(10), "toy");
  EXPECT_EQ(report.output.size(), 10u);
  EXPECT_EQ(report.activations_finished, 20);
  EXPECT_EQ(report.tuples_lost, 0);
  // Output fields present and correct.
  for (const Tuple& t : report.output.tuples()) {
    EXPECT_EQ(t.require("doubled"),
              std::to_string(2 * std::stoi(t.require("id"))));
    EXPECT_EQ(t.require("text"), "v" + t.require("doubled"));
  }
  // Files and values landed.
  EXPECT_EQ(fs.list("/out/").size(), 10u);
  const auto rs = store.query("SELECT count(*) FROM hvalue WHERE key = 'DOUBLED'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 10);
}

TEST(NativeExecutor, RetriesTransientFailures) {
  std::atomic<int> failures{3};  // first three attempts fail
  const Pipeline p = toy_pipeline(&failures);
  vfs::SharedFileSystem fs;
  prov::ProvenanceStore store;
  NativeExecutorOptions opts;
  opts.threads = 1;
  opts.max_attempts = 5;
  NativeExecutor exec(p, fs, store, opts);
  const NativeReport report = exec.run(numbers(4), "retry");
  EXPECT_EQ(report.output.size(), 4u);  // all recovered
  EXPECT_EQ(report.activations_failed, 3);
  // Failed attempts are visible in provenance.
  const auto rs =
      store.query("SELECT count(*) FROM hactivation WHERE status = 'FAILED'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 3);
}

TEST(NativeExecutor, ExhaustedRetriesLoseTheTuple) {
  std::atomic<int> failures{1000};  // never recovers
  const Pipeline p = toy_pipeline(&failures);
  vfs::SharedFileSystem fs;
  prov::ProvenanceStore store;
  NativeExecutorOptions opts;
  opts.max_attempts = 2;
  NativeExecutor exec(p, fs, store, opts);
  const NativeReport report = exec.run(numbers(3), "lost");
  EXPECT_EQ(report.output.size(), 0u);
  EXPECT_EQ(report.tuples_lost, 3);
  EXPECT_EQ(report.activations_failed, 6);  // 3 tuples x 2 attempts
  ASSERT_EQ(report.failure_messages.size(), 3u);
  EXPECT_NE(report.failure_messages[0].find("injected"), std::string::npos);
}

TEST(NativeExecutor, FilterDropsTuples) {
  Pipeline p;
  p.add_stage(Stage{
      "keep-even", AlgebraicOp::Filter,
      [](const Tuple& in, ActivationContext&) {
        std::vector<Tuple> out;
        if (std::stoi(in.require("id")) % 2 == 0) out.push_back(in);
        return out;
      },
      nullptr, nullptr, nullptr});
  vfs::SharedFileSystem fs;
  prov::ProvenanceStore store;
  NativeExecutor exec(p, fs, store, {});
  const NativeReport report = exec.run(numbers(10), "filter");
  EXPECT_EQ(report.output.size(), 5u);
  EXPECT_EQ(report.tuples_lost, 0);
}

TEST(NativeExecutor, SplitMapFansOut) {
  Pipeline p;
  p.add_stage(Stage{
      "split", AlgebraicOp::SplitMap,
      [](const Tuple& in, ActivationContext&) {
        std::vector<Tuple> out;
        for (int k = 0; k < 3; ++k) {
          Tuple t = in;
          t.set("copy", std::to_string(k));
          out.push_back(std::move(t));
        }
        return out;
      },
      nullptr, nullptr, nullptr});
  vfs::SharedFileSystem fs;
  prov::ProvenanceStore store;
  NativeExecutor exec(p, fs, store, {});
  const NativeReport report = exec.run(numbers(4), "split");
  EXPECT_EQ(report.output.size(), 12u);
}

TEST(NativeExecutor, DeterministicAcrossThreadCounts) {
  // The per-tuple forked RNG makes results independent of scheduling.
  const Pipeline p = toy_pipeline();
  vfs::SharedFileSystem fs1, fs2;
  prov::ProvenanceStore s1, s2;
  NativeExecutorOptions o1, o2;
  o1.threads = 1;
  o2.threads = 4;
  const NativeReport r1 = NativeExecutor(p, fs1, s1, o1).run(numbers(8), "a");
  const NativeReport r2 = NativeExecutor(p, fs2, s2, o2).run(numbers(8), "b");
  ASSERT_EQ(r1.output.size(), r2.output.size());
  // Compare sets of (id, doubled) pairs.
  auto key_set = [](const Relation& rel) {
    std::set<std::string> keys;
    for (const Tuple& t : rel.tuples()) {
      keys.insert(t.require("id") + ":" + t.require("doubled"));
    }
    return keys;
  };
  EXPECT_EQ(key_set(r1.output), key_set(r2.output));
}

TEST(NativeExecutor, StagesRelationFilesOnSharedFs) {
  const Pipeline p = toy_pipeline();
  vfs::SharedFileSystem fs;
  prov::ProvenanceStore store;
  NativeExecutor exec(p, fs, store, {});
  const NativeReport report = exec.run(numbers(5), "rels");
  // input_1.txt round-trips into the original relation ...
  const Relation in_back = Relation::from_file_text(
      fs.read("/root/exp_scidock/relations/input_1.txt"));
  EXPECT_EQ(in_back.size(), 5u);
  EXPECT_EQ(in_back.field_names().front(), "id");
  // ... and output_1.txt matches the report's output relation.
  const Relation out_back = Relation::from_file_text(
      fs.read("/root/exp_scidock/relations/output_1.txt"));
  EXPECT_EQ(out_back.size(), report.output.size());
  // Both are discoverable through provenance.
  const auto rs = store.query(
      "SELECT count(*) FROM hfile WHERE fname LIKE '%_1.txt'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
}

// ---------------------------------------------------- simulated executor

cloud::CostModel toy_cost_model() {
  cloud::CostModel model;
  model.set_cost({"double", 10.0, 0.3, 0.5});
  model.set_cost({"stringify", 5.0, 0.3, 0.5});
  return model;
}

SimExecutorOptions quiet_sim(int cores) {
  SimExecutorOptions opts;
  opts.fleet = m3_fleet_for_cores(cores);
  opts.failure.failure_probability = 0.0;
  opts.failure.hang_probability = 0.0;
  return opts;
}

TEST(SimulatedExecutor, CompletesAllTuples) {
  const Pipeline p = toy_pipeline();
  SimulatedExecutor exec(p, toy_cost_model(), quiet_sim(4));
  const SimReport report = exec.run(numbers(20));
  EXPECT_EQ(report.tuples_completed, 20);
  EXPECT_EQ(report.activations_finished, 40);
  EXPECT_EQ(report.tuples_lost, 0);
  EXPECT_GT(report.total_execution_time_s, 0.0);
  EXPECT_GT(report.cloud_cost_usd, 0.0);
  EXPECT_EQ(report.per_activity_seconds.size(), 2u);
}

TEST(SimulatedExecutor, DeterministicGivenSeed) {
  const Pipeline p = toy_pipeline();
  SimExecutorOptions opts = quiet_sim(4);
  opts.seed = 99;
  const SimReport a = SimulatedExecutor(p, toy_cost_model(), opts).run(numbers(20));
  const SimReport b = SimulatedExecutor(p, toy_cost_model(), opts).run(numbers(20));
  EXPECT_DOUBLE_EQ(a.total_execution_time_s, b.total_execution_time_s);
  EXPECT_EQ(a.activations_finished, b.activations_finished);
}

TEST(SimulatedExecutor, MoreCoresFasterTet) {
  const Pipeline p = toy_pipeline();
  const SimReport slow = SimulatedExecutor(p, toy_cost_model(), quiet_sim(2))
                             .run(numbers(200));
  const SimReport fast = SimulatedExecutor(p, toy_cost_model(), quiet_sim(16))
                             .run(numbers(200));
  EXPECT_GT(slow.total_execution_time_s, 2.0 * fast.total_execution_time_s);
}

TEST(SimulatedExecutor, FailuresAreReexecuted) {
  const Pipeline p = toy_pipeline();
  SimExecutorOptions opts = quiet_sim(4);
  opts.failure.failure_probability = 0.3;
  const SimReport report =
      SimulatedExecutor(p, toy_cost_model(), opts).run(numbers(100));
  EXPECT_GT(report.activations_failed, 10);
  EXPECT_EQ(report.tuples_completed, 100);  // all recovered via retry
  EXPECT_EQ(report.tuples_lost, 0);
}

TEST(SimulatedExecutor, ReexecutionOffLosesFailedTuples) {
  const Pipeline p = toy_pipeline();
  SimExecutorOptions opts = quiet_sim(4);
  opts.failure.failure_probability = 0.3;
  opts.reexecute_failures = false;
  const SimReport report =
      SimulatedExecutor(p, toy_cost_model(), opts).run(numbers(100));
  EXPECT_GT(report.tuples_lost, 10);
  EXPECT_EQ(report.tuples_completed + report.tuples_lost, 100);
}

TEST(SimulatedExecutor, HazardPreabortSkipsHangTimeout) {
  Pipeline p;
  p.add_stage(Stage{"double", AlgebraicOp::Map, nullptr, nullptr, nullptr,
                    [](const Tuple& t) { return t.require("hg") == "1"; }});
  Relation rel{{"id", "hg"}};
  for (int i = 0; i < 10; ++i) {
    Tuple t;
    t.set("id", std::to_string(i));
    t.set("hg", i == 0 ? "1" : "0");
    rel.add(std::move(t));
  }
  cloud::CostModel model;
  model.set_cost({"double", 10.0, 0.3, 0.5});

  SimExecutorOptions with_fix = quiet_sim(2);
  with_fix.preabort_hazards = true;
  const SimReport fixed = SimulatedExecutor(p, model, with_fix).run(rel);
  EXPECT_EQ(fixed.tuples_lost, 1);  // the Hg tuple, aborted instantly

  SimExecutorOptions without_fix = quiet_sim(2);
  without_fix.preabort_hazards = false;
  without_fix.failure.hang_timeout_s = 500.0;
  const SimReport broken = SimulatedExecutor(p, model, without_fix).run(rel);
  // Without the routine, the hang timeout is burned max_attempts times.
  EXPECT_GT(broken.total_execution_time_s,
            fixed.total_execution_time_s + 400.0);
  EXPECT_GT(broken.activations_hung, fixed.activations_hung);
}

TEST(SimulatedExecutor, ElasticityAcquiresVms) {
  const Pipeline p = toy_pipeline();
  SimExecutorOptions opts = quiet_sim(2);
  opts.elasticity = true;
  opts.min_vms = 1;
  opts.max_vms = 8;
  opts.elastic_vm_type = cloud::vm_type_m3_xlarge();
  opts.elasticity_period_s = 30.0;
  const SimReport report =
      SimulatedExecutor(p, toy_cost_model(), opts).run(numbers(400));
  EXPECT_GT(report.peak_alive_vms, 1);
  EXPECT_EQ(report.tuples_completed, 400);
}

TEST(SimulatedExecutor, ProvenanceMatchesReport) {
  const Pipeline p = toy_pipeline();
  prov::ProvenanceStore store;
  SimExecutorOptions opts = quiet_sim(4);
  opts.failure.failure_probability = 0.2;
  const SimReport report =
      SimulatedExecutor(p, toy_cost_model(), opts).run(numbers(50), &store, "toy");
  const auto finished = store.query(
      "SELECT count(*) FROM hactivation WHERE status = 'FINISHED'");
  EXPECT_EQ(finished.rows[0][0].as_int(), report.activations_finished);
  const auto failed = store.query(
      "SELECT count(*) FROM hactivation WHERE status = 'FAILED'");
  EXPECT_EQ(failed.rows[0][0].as_int(), report.activations_failed);
  // Workflow row closed with the TET.
  const auto wf = store.query("SELECT endtime FROM hworkflow WHERE tag = 'toy'");
  EXPECT_DOUBLE_EQ(wf.rows[0][0].as_double(), report.total_execution_time_s);
}

TEST(SimulatedExecutor, AttemptNumbersAreOneBasedAndConsecutive) {
  // Regression: the executor used to stamp provenance and records with
  // the tuple's attempt counter *after* mutating it — FINISHED rows
  // always claimed attempt 1 and the first FAILED attempt claimed 2.
  const Pipeline p = toy_pipeline();
  prov::ProvenanceStore store;
  SimExecutorOptions opts = quiet_sim(4);
  opts.failure.failure_probability = 0.4;
  opts.failure.max_attempts = 8;
  const SimReport report =
      SimulatedExecutor(p, toy_cost_model(), opts).run(numbers(60), &store, "att");
  ASSERT_GT(report.activations_failed, 0);

  // The first attempt of a failing activation is attempt 1, not 2.
  const auto min_failed = store.query(
      "SELECT min(attempts) FROM hactivation WHERE status = 'FAILED'");
  EXPECT_EQ(min_failed.rows[0][0].as_int(), 1);
  // A FINISHED row after n failures carries attempt n + 1: per workload
  // and activity, FAILED rows number 1..n and FINISHED closes at n + 1.
  std::map<std::pair<long long, std::string>, std::pair<int, int>> sites;
  store.with_database([&](sql::Database& db) {
    const sql::Table& t = db.table("hactivation");
    const auto c_act = static_cast<std::size_t>(t.column_index("actid"));
    const auto c_status = static_cast<std::size_t>(t.column_index("status"));
    const auto c_attempts =
        static_cast<std::size_t>(t.column_index("attempts"));
    const auto c_workload =
        static_cast<std::size_t>(t.column_index("workload"));
    for (const sql::Row& row : t.rows()) {
      auto& [fails, finish_attempt] =
          sites[{row[c_act].as_int(), row[c_workload].as_string()}];
      if (row[c_status].as_string() == "FAILED") ++fails;
      else finish_attempt = static_cast<int>(row[c_attempts].as_int());
    }
  });
  for (const auto& [site, counts] : sites) {
    if (counts.second == 0) {
      // Lost tuple: every attempt failed, exhausting the budget.
      EXPECT_EQ(counts.first, opts.failure.max_attempts);
      continue;
    }
    EXPECT_EQ(counts.second, counts.first + 1)
        << "workload " << site.second << ": FINISHED attempt should follow "
        << counts.first << " failures";
  }
  // The in-memory records agree with provenance.
  int min_failed_record = 1000;
  for (const SimActivationRecord& r : report.records) {
    if (r.status == "FAILED") min_failed_record = std::min(min_failed_record, r.attempt);
  }
  EXPECT_EQ(min_failed_record, 1);
}

TEST(NativeExecutor, InjectedHangsAreAbortedAndRetried) {
  const Pipeline p = toy_pipeline();
  vfs::SharedFileSystem fs;
  prov::ProvenanceStore store;
  NativeExecutorOptions opts;
  opts.max_attempts = 3;
  // First attempt of stage "double" hangs for every tuple; retries run.
  opts.fault_injector = [](const std::string& tag, const Tuple&, int attempt) {
    return tag == "double" && attempt == 1 ? InjectedFault::Hang
                                           : InjectedFault::None;
  };
  NativeExecutor exec(p, fs, store, opts);
  const NativeReport report = exec.run(numbers(5), "hangs");
  EXPECT_EQ(report.output.size(), 5u);  // all recovered on attempt 2
  EXPECT_EQ(report.activations_hung, 5);
  EXPECT_EQ(report.activations_failed, 0);
  EXPECT_EQ(report.tuples_lost, 0);
  // The aborts are visible in provenance — the paper's diagnosis path.
  const auto aborted = store.query(
      "SELECT count(*) FROM hactivation WHERE status = 'ABORTED'");
  EXPECT_EQ(aborted.rows[0][0].as_int(), 5);
}

TEST(SimulatedExecutor, UnknownStageCostRejected) {
  Pipeline p;
  p.add_stage(Stage{"mystery", AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr});
  EXPECT_THROW(SimulatedExecutor(p, toy_cost_model(), quiet_sim(2)),
               InvalidStateError);
}

}  // namespace
}  // namespace scidock::wf
