#include "dock/engine.hpp"

#include "mol/molecule.hpp"
#include "util/error.hpp"

namespace scidock::dock {

std::vector<Conformation> build_conformations(
    std::vector<std::vector<mol::Vec3>>&& coords,
    const std::vector<double>& inter, const std::vector<double>& intra,
    const std::vector<double>& febs,
    const std::vector<mol::Vec3>& input_coords) {
  std::vector<Conformation> out;
  out.reserve(coords.size());
  for (std::size_t p = 0; p < coords.size(); ++p) {
    Conformation conf;
    conf.coords = std::move(coords[p]);
    conf.intermolecular = inter[p];
    conf.intramolecular = intra[p];
    conf.feb = febs[p];
    conf.rmsd_from_input = mol::rmsd(conf.coords, input_coords);
    conf.run = static_cast<int>(p);
    out.push_back(std::move(conf));
  }
  return out;
}

const Conformation& DockingResult::best() const {
  SCIDOCK_REQUIRE(!conformations.empty(), "docking result has no conformations");
  return conformations.front();
}

double DockingResult::mean_feb() const {
  if (conformations.empty()) return 0.0;
  double acc = 0.0;
  for (const Conformation& c : conformations) acc += c.feb;
  return acc / static_cast<double>(conformations.size());
}

double DockingResult::mean_rmsd() const {
  if (conformations.empty()) return 0.0;
  double acc = 0.0;
  for (const Conformation& c : conformations) acc += c.rmsd_from_input;
  return acc / static_cast<double>(conformations.size());
}

}  // namespace scidock::dock
