// Tests for the scidock-lint static analyzer: the workflow algebra
// checker (WF001..WF010), the SQL semantic checker (SQL001..SQL008), the
// fixture corpus under tests/lint/, and the drift guard that keeps the
// lint catalog aligned with the live provenance schema. The runtime LD
// rules share the catalog but are exercised by the lockdep suite
// (tests/lockdep_test.cpp) — they have no file fixtures by design.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/sql_lint.hpp"
#include "lint/wf_lint.hpp"
#include "prov/prov.hpp"
#include "scidock/analysis.hpp"
#include "scidock/scidock.hpp"
#include "sql/table.hpp"

namespace scidock::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(SCIDOCK_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Catalog rel_catalog() {
  std::vector<CatalogColumn> columns;
  for (const core::RelationField& f : core::output_relation_schema()) {
    ColType type = ColType::Text;
    if (f.kind == core::FieldKind::Int) type = ColType::Int;
    if (f.kind == core::FieldKind::Real) type = ColType::Real;
    columns.push_back(CatalogColumn{f.name, type});
  }
  return relation_catalog(std::move(columns));
}

/// Assert that every diagnostic in the report carries exactly `rule` —
/// the fixture contract: one defect class per negative fixture.
void expect_only_rule(const Report& report, const std::string& rule,
                      const std::string& what) {
  EXPECT_FALSE(report.clean()) << what << ": expected " << rule
                               << " but the report is clean";
  for (const Diagnostic& d : report.diagnostics()) {
    EXPECT_EQ(d.rule, rule) << what << ": stray diagnostic\n" << d.format();
  }
}

// ------------------------------------------------- fixture corpus: good

TEST(LintFixtures, GoodWorkflowsAreClean) {
  for (const char* name :
       {"good/workflow_sciDock.xml", "good/workflow_splitmap.xml"}) {
    const Report report = lint_workflow_xml(read_fixture(name), name);
    EXPECT_TRUE(report.clean()) << name << ":\n" << report.format();
  }
}

TEST(LintFixtures, GoodQueriesAreClean) {
  const Report q1 =
      lint_query(read_fixture("good/query1.sql"), prov_wf_catalog());
  EXPECT_TRUE(q1.clean()) << q1.format();
  const Report screen =
      lint_query(read_fixture("good/screen_summary.sql"), rel_catalog());
  EXPECT_TRUE(screen.clean()) << screen.format();
}

// -------------------------------------------- fixture corpus: negative

TEST(LintFixtures, EveryWorkflowRuleHasATriggeringFixture) {
  for (const char* rule : {"WF001", "WF002", "WF003", "WF004", "WF005",
                           "WF006", "WF007", "WF008", "WF009", "WF010"}) {
    std::string lower(rule);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    std::string name;
    for (const char* candidate :
         {"bad/wf001_missing_workflow.xml", "bad/wf002_unknown_operator.xml",
          "bad/wf003_operator_arity.xml", "bad/wf004_duplicate_tag.xml",
          "bad/wf005_schema_mismatch.xml", "bad/wf006_cycle.xml",
          "bad/wf007_dangling_input.xml", "bad/wf008_bad_template.xml",
          "bad/wf009_dangling_tag.xml", "bad/wf010_undeclared_tag.xml"}) {
      if (std::string(candidate).find(lower) != std::string::npos) {
        name = candidate;
      }
    }
    ASSERT_FALSE(name.empty()) << "no fixture for " << rule;
    expect_only_rule(lint_workflow_xml(read_fixture(name), name), rule, name);
  }
}

TEST(LintFixtures, EverySqlRuleHasATriggeringFixture) {
  const struct {
    const char* rule;
    const char* name;
  } cases[] = {
      {"SQL001", "bad/sql001_syntax.sql"},
      {"SQL002", "bad/sql002_unknown_table.sql"},
      {"SQL003", "bad/sql003_unknown_column.sql"},
      {"SQL004", "bad/sql004_unknown_function.sql"},
      {"SQL005", "bad/sql005_aggregate_misuse.sql"},
      {"SQL006", "bad/sql006_ungrouped_column.sql"},
      {"SQL007", "bad/sql007_type_mismatch.sql"},
      {"SQL008", "bad/sql008_unknown_metric.sql"},
  };
  for (const auto& c : cases) {
    expect_only_rule(lint_query(read_fixture(c.name), prov_wf_catalog(),
                                c.name),
                     c.rule, c.name);
  }
}

TEST(LintFixtures, CatalogCoversEveryFixtureRule) {
  // Every rule in the catalog is exercised above; conversely every rule ID
  // used by the fixtures exists in the catalog.
  const std::vector<RuleInfo>& catalog = rule_catalog();
  EXPECT_EQ(catalog.size(), 27u);
  for (const RuleInfo& rule : catalog) {
    EXPECT_TRUE(rule.id.rfind("WF", 0) == 0 || rule.id.rfind("SQL", 0) == 0 ||
                rule.id.rfind("LD", 0) == 0 || rule.id.rfind("RC", 0) == 0)
        << rule.id;
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
}

// ------------------------------------------------- shipped content gate

TEST(LintShipped, BuiltinWorkflowIsClean) {
  const wf::WorkflowDef def =
      core::scidock_workflow_def(core::ScidockOptions{});
  const Report report = lint_workflow(def, "builtin");
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(LintShipped, AllShippedQueriesAreClean) {
  const Catalog rel = rel_catalog();
  for (const core::ShippedQuery& q : core::shipped_queries()) {
    const Catalog& catalog = q.catalog == "rel" ? rel : prov_wf_catalog();
    const Report report = lint_query(q.sql, catalog, q.name);
    EXPECT_TRUE(report.clean()) << q.name << ":\n" << report.format();
  }
}

// --------------------------------------------------------- drift guard

TEST(LintCatalog, MatchesLiveProvenanceSchema) {
  prov::ProvenanceStore store;
  const Catalog& catalog = prov_wf_catalog();
  store.with_database([&](sql::Database& db) {
    const std::vector<std::string> live = db.table_names();
    EXPECT_EQ(live.size(), catalog.tables().size());
    for (const std::string& table_name : live) {
      const CatalogTable* table = catalog.find(table_name);
      ASSERT_NE(table, nullptr) << "catalog lacks table " << table_name;
      const sql::Table& live_table = db.table(table_name);
      ASSERT_EQ(live_table.columns().size(), table->columns.size())
          << table_name;
      for (std::size_t i = 0; i < table->columns.size(); ++i) {
        EXPECT_EQ(live_table.columns()[i], table->columns[i].name)
            << table_name << " column " << i;
      }
    }
  });
}

// ----------------------------------------------- targeted unit coverage

TEST(WorkflowLint, ReportsLineNumbers) {
  const Report report = lint_workflow_xml(
      read_fixture("bad/wf007_dangling_input.xml"), "wf007.xml");
  ASSERT_FALSE(report.clean());
  EXPECT_GT(report.diagnostics()[0].line, 0);
  EXPECT_NE(report.diagnostics()[0].format().find("wf007.xml:"),
            std::string::npos);
}

TEST(WorkflowLint, XmlSyntaxErrorIsWF001) {
  const Report report = lint_workflow_xml("<SciCumulus><unclosed>", "x.xml");
  expect_only_rule(report, "WF001", "syntax error");
}

TEST(WorkflowLint, BadDatabasePortIsWF001) {
  const Report report = lint_workflow_xml(
      "<SciCumulus><database port=\"70000\"/>"
      "<SciCumulusWorkflow tag=\"w\">"
      "<SciCumulusActivity tag=\"a\" type=\"MAP\">"
      "<Relation reltype=\"Input\" name=\"r\" filename=\"f.txt\"/>"
      "<Relation reltype=\"Output\" name=\"s\"/>"
      "</SciCumulusActivity></SciCumulusWorkflow></SciCumulus>");
  expect_only_rule(report, "WF001", "port range");
}

TEST(WorkflowLint, TwoProducersIsWF004) {
  const Report report = lint_workflow_xml(
      "<SciCumulus><SciCumulusWorkflow tag=\"w\">"
      "<SciCumulusActivity tag=\"a\" type=\"MAP\">"
      "<Relation reltype=\"Input\" name=\"in\" filename=\"f.txt\"/>"
      "<Relation reltype=\"Output\" name=\"dup\"/>"
      "</SciCumulusActivity>"
      "<SciCumulusActivity tag=\"b\" type=\"MAP\">"
      "<Relation reltype=\"Input\" name=\"in\" filename=\"f.txt\"/>"
      "<Relation reltype=\"Output\" name=\"dup\"/>"
      "</SciCumulusActivity>"
      "</SciCumulusWorkflow></SciCumulus>");
  expect_only_rule(report, "WF004", "two producers");
}

TEST(WorkflowLint, SplitMapMayFanOut) {
  const Report report = lint_workflow_xml(read_fixture(
      "good/workflow_splitmap.xml"));
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(WorkflowLint, SchemalessWorkflowSkipsWF010) {
  // No relation anywhere declares fields: nothing can be validated, so an
  // unresolvable-looking tag must not fire (the Figure 2 style of spec).
  const Report report = lint_workflow_xml(
      "<SciCumulus><SciCumulusWorkflow tag=\"w\">"
      "<SciCumulusActivity tag=\"a\" type=\"MAP\" "
      "activation=\"./a.cmd %pair%\">"
      "<Relation reltype=\"Input\" name=\"in\" filename=\"f.txt\"/>"
      "<Relation reltype=\"Output\" name=\"out\"/>"
      "</SciCumulusActivity></SciCumulusWorkflow></SciCumulus>");
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(WorkflowLint, TagDeclaredElsewhereSkipsWF010) {
  // stage_b's input is schema-less but 'pair' is declared by stage_a's
  // relations, so the tag is plausibly bound downstream: no finding.
  const Report report = lint_workflow_xml(
      "<SciCumulus><SciCumulusWorkflow tag=\"w\">"
      "<SciCumulusActivity tag=\"a\" type=\"MAP\" "
      "activation=\"./a.cmd %pair%\">"
      "<Relation reltype=\"Input\" name=\"in\" filename=\"f.txt\" "
      "fields=\"pair\"/>"
      "<Relation reltype=\"Output\" name=\"mid\" fields=\"pair\"/>"
      "</SciCumulusActivity>"
      "<SciCumulusActivity tag=\"b\" type=\"MAP\" "
      "activation=\"./b.cmd %pair%\">"
      "<Relation reltype=\"Input\" name=\"mid\"/>"
      "<Relation reltype=\"Output\" name=\"out\"/>"
      "</SciCumulusActivity></SciCumulusWorkflow></SciCumulus>");
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(SqlLint, ReconcileAnnotationWithKnownMetricIsClean) {
  const Report report = lint_query(
      "-- reconciles: scidock_executor_activations_started_total\n"
      "SELECT count(*) FROM hactivation",
      prov_wf_catalog());
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(SqlLint, ReconcileAnnotationListValidatesEveryName) {
  const Report report = lint_query(
      "-- reconciles: scidock_cache_gridmaps_hits_total, nosuch_metric,\n"
      "-- reconciles: another_bad_one\n"
      "SELECT count(*) FROM hactivation",
      prov_wf_catalog());
  EXPECT_EQ(report.count("SQL008"), 2u) << report.format();
  EXPECT_NE(report.diagnostics()[0].message.find("nosuch_metric"),
            std::string::npos);
}

TEST(SqlLint, UnknownTableSuppressesColumnCascade) {
  const Report report =
      lint_query("SELECT nosuch.col FROM nosuch", prov_wf_catalog());
  expect_only_rule(report, "SQL002", "cascade suppression");
}

TEST(SqlLint, AmbiguousColumnIsSQL003) {
  // `tag` exists in both hworkflow and hactivity.
  const Report report = lint_query(
      "SELECT tag FROM hworkflow w, hactivity a WHERE w.wkfid = a.wkfid",
      prov_wf_catalog());
  expect_only_rule(report, "SQL003", "ambiguous");
  EXPECT_NE(report.diagnostics()[0].message.find("ambiguous"),
            std::string::npos);
}

TEST(SqlLint, BadExtractFieldIsSQL004) {
  const Report report = lint_query(
      "SELECT extract('century' from starttime) FROM hworkflow",
      prov_wf_catalog());
  expect_only_rule(report, "SQL004", "extract field");
}

TEST(SqlLint, NestedAggregateIsSQL005) {
  const Report report = lint_query("SELECT sum(min(attempts)) FROM hactivation",
                                   prov_wf_catalog());
  expect_only_rule(report, "SQL005", "nested aggregate");
}

TEST(SqlLint, StarOnNonCountAggregateIsSQL005) {
  const Report report =
      lint_query("SELECT min(*) FROM hactivation", prov_wf_catalog());
  expect_only_rule(report, "SQL005", "min(*)");
}

TEST(SqlLint, OrderByAliasResolvesLikeTheEngine) {
  // `dur` is a select-list alias; the engine substitutes the aliased
  // expression (PostgreSQL semantics), so this must lint clean.
  const Report report = lint_query(
      "SELECT extract('epoch' from (endtime - starttime)) dur "
      "FROM hactivation ORDER BY dur DESC",
      prov_wf_catalog());
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(SqlLint, UngroupedOrderByColumnIsSQL006) {
  const Report report = lint_query(
      "SELECT status, count(*) FROM hactivation GROUP BY status "
      "ORDER BY workload",
      prov_wf_catalog());
  expect_only_rule(report, "SQL006", "ungrouped ORDER BY");
}

TEST(SqlLint, UnqualifiedGroupByMatchesQualifiedSelect) {
  // `t.status` and `status` resolve to the same catalog column; grouping
  // must compare by identity, not spelling.
  const Report report = lint_query(
      "SELECT t.status, count(*) FROM hactivation t GROUP BY status",
      prov_wf_catalog());
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(SqlLint, SumOverTextIsSQL007) {
  const Report report =
      lint_query("SELECT sum(status) FROM hactivation", prov_wf_catalog());
  expect_only_rule(report, "SQL007", "sum(text)");
}

TEST(SqlLint, LikeAgainstNumberIsSQL007) {
  const Report report = lint_query(
      "SELECT fname FROM hfile WHERE fname LIKE 42", prov_wf_catalog());
  expect_only_rule(report, "SQL007", "LIKE number");
}

TEST(SqlLint, UpdateAndDeleteResolveAgainstCatalog) {
  EXPECT_TRUE(lint_query("DELETE FROM hvalue WHERE taskid = 3",
                         prov_wf_catalog())
                  .clean());
  const Report bad_column = lint_query(
      "UPDATE hactivation SET statuss = 'FAILED' WHERE taskid = 1",
      prov_wf_catalog());
  expect_only_rule(bad_column, "SQL003", "UPDATE unknown column");
}

TEST(SqlLint, InsertChecksTableAndColumns) {
  const Report unknown_table = lint_query(
      "INSERT INTO nosuch (a) VALUES (1)", prov_wf_catalog());
  expect_only_rule(unknown_table, "SQL002", "INSERT unknown table");
  const Report unknown_column = lint_query(
      "INSERT INTO hmachine (vmid, nosuch) VALUES (1, 2)",
      prov_wf_catalog());
  expect_only_rule(unknown_column, "SQL003", "INSERT unknown column");
}

TEST(Diagnostics, FormatIsCompilerStyle) {
  Diagnostic d{"WF003", Severity::Error, "spec.xml", 7, "bad arity"};
  EXPECT_EQ(d.format(), "spec.xml:7: error: [WF003] bad arity");
  Diagnostic no_file{"SQL001", Severity::Error, "", 0, "syntax"};
  EXPECT_EQ(no_file.format(), "error: [SQL001] syntax");
}

}  // namespace
}  // namespace scidock::lint
