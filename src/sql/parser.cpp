#include "sql/parser.hpp"

#include "sql/lexer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view sql) : tokens_(tokenize(sql)) {}

  Statement parse() {
    Statement stmt;
    if (peek().is_keyword("SELECT")) {
      stmt.kind = Statement::Kind::Select;
      stmt.select = parse_select();
    } else if (peek().is_keyword("CREATE")) {
      stmt.kind = Statement::Kind::CreateTable;
      stmt.create = parse_create();
    } else if (peek().is_keyword("INSERT")) {
      stmt.kind = Statement::Kind::Insert;
      stmt.insert = parse_insert();
    } else if (peek().is_keyword("DELETE")) {
      stmt.kind = Statement::Kind::Delete;
      stmt.del = parse_delete();
    } else if (peek().is_keyword("UPDATE")) {
      stmt.kind = Statement::Kind::Update;
      stmt.update = parse_update();
    } else {
      fail("expected SELECT, CREATE, INSERT, UPDATE or DELETE");
    }
    // optional trailing semicolon
    if (peek().is_symbol(";")) advance();
    expect_end();
    return stmt;
  }

  SelectStmt parse_select() {
    expect_keyword("SELECT");
    SelectStmt sel;
    if (peek().is_keyword("DISTINCT")) {
      advance();
      sel.distinct = true;
    }
    if (peek().is_symbol("*")) {
      advance();
      sel.star_all = true;
    } else {
      for (;;) {
        SelectItem item;
        item.expr = parse_expr();
        if (peek().is_keyword("AS")) {
          advance();
          item.alias = expect_identifier("alias");
        } else if (peek().kind == TokenKind::Identifier && !is_clause_keyword(peek())) {
          item.alias = expect_identifier("alias");
        }
        sel.items.push_back(std::move(item));
        if (!peek().is_symbol(",")) break;
        advance();
      }
    }
    expect_keyword("FROM");
    for (;;) {
      TableRef ref;
      ref.table = expect_identifier("table name");
      if (peek().is_keyword("AS")) {
        advance();
        ref.alias = expect_identifier("table alias");
      } else if (peek().kind == TokenKind::Identifier && !is_clause_keyword(peek())) {
        ref.alias = expect_identifier("table alias");
      }
      if (ref.alias.empty()) ref.alias = ref.table;
      sel.from.push_back(std::move(ref));
      if (!peek().is_symbol(",")) break;
      advance();
    }
    if (peek().is_keyword("WHERE")) {
      advance();
      sel.where = parse_expr();
    }
    if (peek().is_keyword("GROUP")) {
      advance();
      expect_keyword("BY");
      for (;;) {
        sel.group_by.push_back(parse_expr());
        if (!peek().is_symbol(",")) break;
        advance();
      }
    }
    if (peek().is_keyword("HAVING")) {
      advance();
      sel.having = parse_expr();
    }
    if (peek().is_keyword("ORDER")) {
      advance();
      expect_keyword("BY");
      for (;;) {
        OrderItem item;
        item.expr = parse_expr();
        if (peek().is_keyword("ASC")) advance();
        else if (peek().is_keyword("DESC")) {
          advance();
          item.descending = true;
        }
        sel.order_by.push_back(std::move(item));
        if (!peek().is_symbol(",")) break;
        advance();
      }
    }
    if (peek().is_keyword("LIMIT")) {
      advance();
      const Token t = expect(TokenKind::Integer, "LIMIT count");
      sel.limit = static_cast<std::size_t>(parse_int(t.text, "LIMIT"));
    }
    return sel;
  }

 private:
  CreateTableStmt parse_create() {
    expect_keyword("CREATE");
    expect_keyword("TABLE");
    CreateTableStmt stmt;
    stmt.table = expect_identifier("table name");
    expect_symbol("(");
    for (;;) {
      stmt.columns.push_back(expect_identifier("column name"));
      // Optional type name(s) up to ',' or ')': e.g. "character varying(50)".
      while (!peek().is_symbol(",") && !peek().is_symbol(")")) {
        if (peek().kind == TokenKind::End) fail("unterminated column list");
        if (peek().is_symbol("(")) {
          // type parameters like varchar(50)
          int depth = 0;
          do {
            if (peek().is_symbol("(")) ++depth;
            if (peek().is_symbol(")")) --depth;
            advance();
          } while (depth > 0);
        } else {
          advance();
        }
      }
      if (peek().is_symbol(")")) break;
      expect_symbol(",");
    }
    expect_symbol(")");
    return stmt;
  }

  InsertStmt parse_insert() {
    expect_keyword("INSERT");
    expect_keyword("INTO");
    InsertStmt stmt;
    stmt.table = expect_identifier("table name");
    if (peek().is_symbol("(")) {
      advance();
      for (;;) {
        stmt.columns.push_back(expect_identifier("column name"));
        if (peek().is_symbol(")")) break;
        expect_symbol(",");
      }
      expect_symbol(")");
    }
    expect_keyword("VALUES");
    for (;;) {
      expect_symbol("(");
      std::vector<ExprPtr> row;
      for (;;) {
        row.push_back(parse_expr());
        if (peek().is_symbol(")")) break;
        expect_symbol(",");
      }
      expect_symbol(")");
      stmt.rows.push_back(std::move(row));
      if (!peek().is_symbol(",")) break;
      advance();
    }
    return stmt;
  }

  UpdateStmt parse_update() {
    expect_keyword("UPDATE");
    UpdateStmt stmt;
    stmt.table = expect_identifier("table name");
    expect_keyword("SET");
    for (;;) {
      std::string column = expect_identifier("column name");
      expect_symbol("=");
      stmt.assignments.emplace_back(std::move(column), parse_expr());
      if (!peek().is_symbol(",")) break;
      advance();
    }
    if (peek().is_keyword("WHERE")) {
      advance();
      stmt.where = parse_expr();
    }
    return stmt;
  }

  DeleteStmt parse_delete() {
    expect_keyword("DELETE");
    expect_keyword("FROM");
    DeleteStmt stmt;
    stmt.table = expect_identifier("table name");
    if (peek().is_keyword("WHERE")) {
      advance();
      stmt.where = parse_expr();
    }
    return stmt;
  }

  // ---- expressions (precedence climbing) ----

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (peek().is_keyword("OR")) {
      advance();
      lhs = Expr::make_binary(BinaryOp::Or, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (peek().is_keyword("AND")) {
      advance();
      lhs = Expr::make_binary(BinaryOp::And, std::move(lhs), parse_not());
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (peek().is_keyword("NOT")) {
      advance();
      return Expr::make_unary(UnaryOp::Not, parse_not());
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    if (peek().is_keyword("IS")) {
      advance();
      bool negated = false;
      if (peek().is_keyword("NOT")) {
        advance();
        negated = true;
      }
      expect_keyword("NULL");
      return Expr::make_unary(negated ? UnaryOp::IsNotNull : UnaryOp::IsNull,
                              std::move(lhs));
    }
    if (peek().is_keyword("LIKE")) {
      advance();
      return Expr::make_binary(BinaryOp::Like, std::move(lhs), parse_additive());
    }
    bool negated = false;
    if (peek().is_keyword("NOT")) {
      // Only consume when it introduces IN / BETWEEN; a bare NOT here is
      // a syntax error PostgreSQL also rejects.
      advance();
      negated = true;
      if (!peek().is_keyword("IN") && !peek().is_keyword("BETWEEN")) {
        fail("expected IN or BETWEEN after NOT");
      }
    }
    if (peek().is_keyword("IN")) {
      advance();
      expect_symbol("(");
      std::vector<ExprPtr> list;
      for (;;) {
        list.push_back(parse_expr());
        if (!peek().is_symbol(",")) break;
        advance();
      }
      expect_symbol(")");
      return Expr::make_in(std::move(lhs), std::move(list), negated);
    }
    if (peek().is_keyword("BETWEEN")) {
      advance();
      ExprPtr lo = parse_additive();
      expect_keyword("AND");
      ExprPtr hi = parse_additive();
      return Expr::make_between(std::move(lhs), std::move(lo), std::move(hi),
                                negated);
    }
    struct CmpMap {
      const char* sym;
      BinaryOp op;
    };
    static constexpr CmpMap kCmps[] = {
        {"=", BinaryOp::Eq},  {"<>", BinaryOp::Ne}, {"!=", BinaryOp::Ne},
        {"<=", BinaryOp::Le}, {">=", BinaryOp::Ge}, {"<", BinaryOp::Lt},
        {">", BinaryOp::Gt}};
    for (const CmpMap& m : kCmps) {
      if (peek().is_symbol(m.sym)) {
        advance();
        return Expr::make_binary(m.op, std::move(lhs), parse_additive());
      }
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    for (;;) {
      if (peek().is_symbol("+")) {
        advance();
        lhs = Expr::make_binary(BinaryOp::Add, std::move(lhs), parse_multiplicative());
      } else if (peek().is_symbol("-")) {
        advance();
        lhs = Expr::make_binary(BinaryOp::Sub, std::move(lhs), parse_multiplicative());
      } else if (peek().is_symbol("||")) {
        advance();
        lhs = Expr::make_binary(BinaryOp::Concat, std::move(lhs), parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      if (peek().is_symbol("*")) {
        advance();
        lhs = Expr::make_binary(BinaryOp::Mul, std::move(lhs), parse_unary());
      } else if (peek().is_symbol("/")) {
        advance();
        lhs = Expr::make_binary(BinaryOp::Div, std::move(lhs), parse_unary());
      } else if (peek().is_symbol("%")) {
        advance();
        lhs = Expr::make_binary(BinaryOp::Mod, std::move(lhs), parse_unary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_unary() {
    if (peek().is_symbol("-")) {
      advance();
      return Expr::make_unary(UnaryOp::Neg, parse_unary());
    }
    if (peek().is_symbol("+")) {
      advance();
      return parse_unary();
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    if (t.kind == TokenKind::Integer) {
      advance();
      return Expr::make_literal(Value(parse_int(t.text, "SQL integer")));
    }
    if (t.kind == TokenKind::Float) {
      advance();
      return Expr::make_literal(Value(parse_double(t.text, "SQL float")));
    }
    if (t.kind == TokenKind::String) {
      advance();
      return Expr::make_literal(Value(t.text));
    }
    if (t.is_symbol("(")) {
      advance();
      ExprPtr inner = parse_expr();
      expect_symbol(")");
      return inner;
    }
    if (t.kind == TokenKind::Identifier) {
      if (t.is_keyword("NULL")) {
        advance();
        return Expr::make_literal(Value());
      }
      if (t.is_keyword("EXTRACT")) {
        return parse_extract();
      }
      const std::string name = t.text;
      advance();
      if (peek().is_symbol("(")) {
        // function call
        advance();
        std::vector<ExprPtr> args;
        auto call = Expr::make_call(name, {});
        if (peek().is_symbol("*")) {
          advance();
          call->star_arg = true;
        } else if (!peek().is_symbol(")")) {
          for (;;) {
            args.push_back(parse_expr());
            if (!peek().is_symbol(",")) break;
            advance();
          }
        }
        expect_symbol(")");
        call->args = std::move(args);
        return call;
      }
      if (peek().is_symbol(".")) {
        advance();
        if (peek().is_symbol("*")) {
          advance();
          auto star = Expr::make_star();
          star->qualifier = name;
          return star;
        }
        const std::string column = expect_identifier("column name");
        return Expr::make_column(name, column);
      }
      return Expr::make_column("", name);
    }
    fail("unexpected token '" + t.text + "'");
  }

  /// EXTRACT('epoch' FROM expr) — PostgreSQL's quoted-field spelling used
  /// verbatim in the paper's queries (also accepts the bare EPOCH keyword).
  ExprPtr parse_extract() {
    expect_keyword("EXTRACT");
    expect_symbol("(");
    std::string field;
    if (peek().kind == TokenKind::String) {
      field = to_lower(peek().text);
      advance();
    } else {
      field = to_lower(expect_identifier("extract field"));
    }
    expect_keyword("FROM");
    ExprPtr operand = parse_expr();
    expect_symbol(")");
    std::vector<ExprPtr> args;
    args.push_back(Expr::make_literal(Value(field)));
    args.push_back(std::move(operand));
    return Expr::make_call("extract", std::move(args));
  }

  // ---- token helpers ----

  static bool is_clause_keyword(const Token& t) {
    for (const char* kw : {"FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT",
                           "AS", "AND", "OR", "NOT", "ASC", "DESC", "ON",
                           "LIKE", "IS", "BY", "VALUES", "IN", "BETWEEN",
                           "SET", "UPDATE"}) {
      if (t.is_keyword(kw)) return true;
    }
    return false;
  }

  const Token& peek() const { return tokens_[pos_]; }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Token expect(TokenKind kind, std::string_view what) {
    if (peek().kind != kind) fail("expected " + std::string(what));
    Token t = peek();
    advance();
    return t;
  }

  std::string expect_identifier(std::string_view what) {
    return expect(TokenKind::Identifier, what).text;
  }

  void expect_symbol(std::string_view sym) {
    if (!peek().is_symbol(sym)) fail("expected '" + std::string(sym) + "'");
    advance();
  }

  void expect_keyword(std::string_view kw) {
    if (!peek().is_keyword(kw)) fail("expected " + std::string(kw));
    advance();
  }

  void expect_end() {
    if (peek().kind != TokenKind::End) {
      fail("unexpected trailing token '" + peek().text + "'");
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("SQL", why + strformat(" (line %d)", peek().line));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Statement parse_statement(std::string_view sql) { return Parser(sql).parse(); }

SelectStmt parse_select(std::string_view sql) {
  Statement stmt = parse_statement(sql);
  SCIDOCK_REQUIRE(stmt.kind == Statement::Kind::Select, "expected a SELECT statement");
  return std::move(stmt.select);
}

}  // namespace scidock::sql
