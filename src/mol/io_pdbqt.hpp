#pragma once

/// \file io_pdbqt.hpp
/// AutoDock PDBQT format: PDB coordinates extended with partial charges
/// and AutoDock atom types, plus ROOT/BRANCH/TORSDOF records encoding the
/// ligand's torsion tree. Both docking engines consume this format.

#include <string>
#include <string_view>
#include <vector>

#include "mol/molecule.hpp"
#include "mol/torsion.hpp"

namespace scidock::mol {

/// A parsed PDBQT document: molecule plus (for ligands) the torsion tree.
struct PdbqtModel {
  Molecule molecule;
  TorsionTree torsions;   ///< empty tree for rigid receptors
  int torsdof = 0;        ///< declared TORSDOF (may differ from tree size)
  bool is_ligand = false; ///< true when ROOT/BRANCH records were present
};

PdbqtModel read_pdbqt(std::string_view text, std::string_view name = "");

/// Parse a multi-MODEL document (Vina's `_out.pdbqt`): one PdbqtModel per
/// MODEL/ENDMDL block. A document without MODEL records yields one entry.
std::vector<PdbqtModel> read_pdbqt_models(std::string_view text,
                                          std::string_view name = "");

/// Rigid receptor serialisation: atoms only, no torsion records.
std::string write_pdbqt_rigid(const Molecule& m);

/// Flexible ligand serialisation with ROOT/BRANCH nesting and TORSDOF.
std::string write_pdbqt_ligand(const Molecule& m, const TorsionTree& tree);

}  // namespace scidock::mol
