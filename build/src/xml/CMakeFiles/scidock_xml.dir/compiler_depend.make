# Empty compiler generated dependencies file for scidock_xml.
# This may be replaced when dependencies are built.
