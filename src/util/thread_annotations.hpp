#pragma once

/// \file thread_annotations.hpp
/// Clang Thread Safety Analysis support: attribute macros plus annotated
/// synchronisation primitives (Mutex, MutexLock, CondVar) that make lock
/// discipline checkable at compile time.
///
/// Under Clang the build adds -Wthread-safety -Werror=thread-safety (see
/// the top-level CMakeLists.txt), so an unguarded access to a
/// SCIDOCK_GUARDED_BY member, a missing SCIDOCK_REQUIRES caller lock or a
/// double release fails the build. Under GCC (and any compiler without
/// the capability attributes) every macro expands to nothing and Mutex /
/// MutexLock behave exactly like std::mutex / std::lock_guard.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SCIDOCK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCIDOCK_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define SCIDOCK_CAPABILITY(x) SCIDOCK_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCIDOCK_SCOPED_CAPABILITY SCIDOCK_THREAD_ANNOTATION(scoped_lockable)

/// Data member that may only be touched while holding the given capability.
#define SCIDOCK_GUARDED_BY(x) SCIDOCK_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define SCIDOCK_PT_GUARDED_BY(x) SCIDOCK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held / not held.
#define SCIDOCK_REQUIRES(...) \
  SCIDOCK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SCIDOCK_EXCLUDES(...) \
  SCIDOCK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases the capability itself.
#define SCIDOCK_ACQUIRE(...) \
  SCIDOCK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SCIDOCK_RELEASE(...) \
  SCIDOCK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SCIDOCK_TRY_ACQUIRE(...) \
  SCIDOCK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Escape hatch for intentionally unchecked code (document why at use).
#define SCIDOCK_NO_THREAD_SAFETY_ANALYSIS \
  SCIDOCK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace scidock {

/// std::mutex wrapper the analysis understands. Lock it through MutexLock
/// (or CondVar::wait) so acquire/release pairing is compiler-checked.
class SCIDOCK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCIDOCK_ACQUIRE() { m_.lock(); }
  void unlock() SCIDOCK_RELEASE() { m_.unlock(); }
  bool try_lock() SCIDOCK_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock for Mutex — the annotated counterpart of std::lock_guard.
class SCIDOCK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SCIDOCK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SCIDOCK_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable for Mutex. wait() requires the capability: callers
/// hold the lock (via MutexLock), and the analysis verifies it. The
/// predicate loop lives at the call site so guarded reads stay checkable:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);   // ready_ GUARDED_BY(mutex_)
class CondVar {
 public:
  /// Atomically release `mutex`, sleep, and re-acquire before returning.
  void wait(Mutex& mutex) SCIDOCK_REQUIRES(mutex) { cv_.wait(mutex); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace scidock
