file(REMOVE_RECURSE
  "libscidock_util.a"
)
