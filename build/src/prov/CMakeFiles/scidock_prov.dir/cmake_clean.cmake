file(REMOVE_RECURSE
  "CMakeFiles/scidock_prov.dir/prov.cpp.o"
  "CMakeFiles/scidock_prov.dir/prov.cpp.o.d"
  "libscidock_prov.a"
  "libscidock_prov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_prov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
