#include "util/racer.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace scidock::racer {

std::string_view to_string(ReportKind kind) {
  switch (kind) {
    case ReportKind::kWriteWrite: return "write-write race";
    case ReportKind::kReadWrite: return "read-write race";
    case ReportKind::kUnsyncPublish: return "unsynchronized publish";
    case ReportKind::kOrderNondeterminism: return "order nondeterminism";
  }
  return "?";
}

std::string_view rule_id(ReportKind kind) {
  switch (kind) {
    case ReportKind::kWriteWrite: return "RC001";
    case ReportKind::kReadWrite: return "RC002";
    case ReportKind::kUnsyncPublish: return "RC003";
    case ReportKind::kOrderNondeterminism: return "RC004";
  }
  return "RC000";
}

#if SCIDOCK_RACER_ENABLED

namespace {

using VC = std::vector<std::uint64_t>;

std::string site_string(const char* file, int line) {
  if (file == nullptr || file[0] == '\0') return "?";
  return std::string(file) + ":" + std::to_string(line);
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// dst[i] = max(dst[i], src[i]) over the common prefix, extending dst.
void vc_join(VC& dst, const VC& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

std::uint64_t vc_get(const VC& c, int slot) {
  return static_cast<std::size_t>(slot) < c.size()
             ? c[static_cast<std::size_t>(slot)]
             : 0;
}

/// Per-thread analyzer state. Owned by the global registry so reductions
/// and reports can outlive the thread; the clock is only ever mutated by
/// its own thread, always under the global mutex.
struct ThreadState {
  int slot = 0;
  VC clock;                        ///< clock[slot] = own epoch
  std::vector<const char*> held;   ///< names of held sync objects
};

/// Release clock of one sync object (mutex or ad-hoc HB id).
struct SyncState {
  const char* name = nullptr;  ///< string literal from registration
  VC release_clock;
};

/// One recorded access to a tracked cell: enough to test happens-before
/// against any later thread (slot/epoch) and to report (site, held).
struct AccessRecord {
  int slot = -1;
  std::uint64_t epoch = 0;
  const char* file = "";
  int line = 0;
  bool is_write = false;
  std::vector<const char*> held;
};

struct CellState {
  std::string name;
  std::string track_site;
  AccessRecord last_write;
  std::vector<AccessRecord> reads;  ///< latest read per slot since last write
  std::vector<int> accessors;       ///< slots that ever touched the cell
};

/// Fork/finish snapshot carried by a TaskEdge through type-erased
/// shared_ptr<void> (the header must not name this type when OFF).
struct TaskEdgeState {
  VC fork_clock;
  VC finish_clock;
  bool finished = false;
};

/// All analyzer state behind one raw std::mutex (never a scidock::Mutex:
/// the hooks must not re-enter themselves). Tracked accesses are rare
/// relative to docking compute, so a single lock is far below the
/// bench_racer 10% overhead gate. Meyer singleton for static-init order.
struct Global {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadState>> threads;
  std::unordered_map<const void*, SyncState> syncs;
  std::unordered_map<const void*, CellState> cells;
  std::map<std::string, ReductionDigest> reductions;
  std::vector<Finding> findings_list;
  std::unordered_set<std::string> reported;

  std::atomic<bool> enabled{true};
  std::atomic<long long> syncs_seen{0};
  std::atomic<long long> cells_seen{0};
  std::atomic<long long> reads{0};
  std::atomic<long long> writes{0};
  std::atomic<long long> mutex_edges{0};
  std::atomic<long long> task_edges{0};
  std::atomic<long long> hb_edges{0};
  std::atomic<long long> reduction_records{0};
  std::atomic<long long> findings_error{0};
  std::atomic<long long> findings_warning{0};
};

Global& global() {
  // Deliberately leaked: ~Mutex calls unregister_sync from static
  // destructors (logging's sink lock), which may run after a function-
  // local static Global would have been destroyed.
  static Global* g = new Global();
  return *g;
}

thread_local ThreadState* t_state = nullptr;

/// This thread's state, registering a slot on first use. Slots are never
/// reused (a bounded leak proportional to thread count, as in lockdep).
ThreadState& self_locked(Global& g) {
  if (t_state == nullptr) {
    auto st = std::make_unique<ThreadState>();
    st->slot = static_cast<int>(g.threads.size());
    st->clock.assign(static_cast<std::size_t>(st->slot) + 1, 0);
    st->clock[static_cast<std::size_t>(st->slot)] = 1;
    t_state = st.get();
    g.threads.push_back(std::move(st));
  }
  return *t_state;
}

void record_finding(Global& g, Finding finding) {
  (finding.is_error ? g.findings_error : g.findings_warning)
      .fetch_add(1, std::memory_order_relaxed);
  g.findings_list.push_back(std::move(finding));
}

SyncState& sync_at(Global& g, const void* id) {
  SyncState& s = g.syncs[id];
  if (s.name == nullptr) {
    s.name = "<unnamed>";
    g.syncs_seen.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

std::string held_names(const std::vector<const char*>& held) {
  if (held.empty()) return "no locks";
  std::string out;
  for (const char* name : held) {
    if (!out.empty()) out += ", ";
    out += "'";
    out += name;
    out += "'";
  }
  return out;
}

/// Why is there no happens-before edge between the two accesses? Both
/// lists are the locks held at each access; a *common* named lock would
/// have manufactured a release→acquire edge, so by construction there is
/// none — the diagnosis spells out which side is missing what.
std::string missing_edge_diagnosis(const AccessRecord& prior,
                                   const AccessRecord& current) {
  std::string d;
  if (prior.held.empty() && current.held.empty()) {
    d = "neither access holds a lock and no fork/join or "
        "release->acquire edge connects the threads";
  } else {
    d = "the accesses hold no lock in common (first: " +
        held_names(prior.held) + "; second: " + held_names(current.held) +
        ") and no fork/join or release->acquire edge connects them";
  }
  d += " -- add a common Mutex, pass the object through a ThreadPool "
       "task edge, or publish it via an on_hb_release/on_hb_acquire "
       "handshake";
  return d;
}

/// File an RC001/RC002/RC003 finding for the unordered pair
/// (prior, current) on `cell`. Deduped on (rule, object, both sites).
void report_race(Global& g, const CellState& cell, const AccessRecord& prior,
                 const AccessRecord& current, ReportKind kind) {
  const std::string prior_site = site_string(prior.file, prior.line);
  const std::string current_site = site_string(current.file, current.line);
  const std::string key = std::string(rule_id(kind)) + ":" + cell.name + ":" +
                          prior_site + ":" + current_site;
  if (!g.reported.insert(key).second) return;

  Finding f;
  f.kind = kind;
  f.object = cell.name;
  f.file = current.file;
  f.line = current.line;
  f.prior_file = prior.file;
  f.prior_line = prior.line;
  const char* prior_verb = prior.is_write ? "write" : "read";
  const char* current_verb = current.is_write ? "write" : "read";
  if (kind == ReportKind::kUnsyncPublish) {
    f.message = "unsynchronized publish of '" + cell.name + "': " +
                current_verb + " at " + current_site +
                " is the first access from another thread, with no "
                "happens-before edge since the " +
                prior_verb + " at " + prior_site;
  } else {
    f.message = std::string(to_string(kind)) + " on '" + cell.name + "': " +
                current_verb + " at " + current_site + " is unordered with " +
                prior_verb + " at " + prior_site;
  }
  f.details = "  first:  " + std::string(prior_verb) + " at " + prior_site +
              " (thread slot " + std::to_string(prior.slot) + ", holding " +
              held_names(prior.held) + ")\n  second: " + current_verb +
              " at " + current_site + " (thread slot " +
              std::to_string(current.slot) + ", holding " +
              held_names(current.held) + ")\n  tracked at: " +
              cell.track_site + "\n  missing edge: " +
              missing_edge_diagnosis(prior, current) + "\n";
  record_finding(g, std::move(f));
}

/// Has `access` happened-before the current state of thread `t`?
bool ordered_before(const AccessRecord& access, const ThreadState& t) {
  return access.epoch <= vc_get(t.clock, access.slot);
}

AccessRecord make_access(const ThreadState& t, std::source_location site,
                         bool is_write) {
  AccessRecord a;
  a.slot = t.slot;
  a.epoch = vc_get(t.clock, t.slot);
  a.file = site.file_name();
  a.line = static_cast<int>(site.line());
  a.is_write = is_write;
  a.held = t.held;
  return a;
}

CellState& cell_at(Global& g, const void* addr, const ThreadState& t,
                   std::source_location site, bool is_write) {
  auto it = g.cells.find(addr);
  if (it != g.cells.end()) return it->second;
  // First sight of an untracked address: this access is the baseline.
  CellState cell;
  cell.track_site = site_string(site.file_name(),
                                static_cast<int>(site.line()));
  cell.name = "object@" + cell.track_site;
  cell.last_write = make_access(t, site, is_write);
  cell.accessors.push_back(t.slot);
  g.cells_seen.fetch_add(1, std::memory_order_relaxed);
  return g.cells.emplace(addr, std::move(cell)).first->second;
}

bool is_accessor(const CellState& cell, int slot) {
  return std::find(cell.accessors.begin(), cell.accessors.end(), slot) !=
         cell.accessors.end();
}

/// RC003 when this is the object's first-ever cross-thread access and it
/// is unordered with the last write: the object escaped its creating
/// thread with no edge. Later unordered pairs are plain races.
ReportKind classify(const CellState& cell, int current_slot,
                    ReportKind plain) {
  if (!is_accessor(cell, current_slot) && cell.accessors.size() == 1) {
    return ReportKind::kUnsyncPublish;
  }
  return plain;
}

}  // namespace

void set_enabled(bool enabled_now) {
  global().enabled.store(enabled_now, std::memory_order_relaxed);
}

bool enabled() { return global().enabled.load(std::memory_order_relaxed); }

void register_sync(const void* id, const char* name) {
  Global& g = global();
  std::lock_guard lock(g.mu);
  SyncState& s = g.syncs[id];
  if (s.name == nullptr) g.syncs_seen.fetch_add(1, std::memory_order_relaxed);
  if (name != nullptr) s.name = name;
  if (s.name == nullptr) s.name = "<unnamed>";
}

void unregister_sync(const void* id) {
  Global& g = global();
  std::lock_guard lock(g.mu);
  g.syncs.erase(id);
}

void on_mutex_acquire(const void* id) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  SyncState& s = sync_at(g, id);
  if (!s.release_clock.empty()) {
    vc_join(t.clock, s.release_clock);
    g.mutex_edges.fetch_add(1, std::memory_order_relaxed);
  }
  t.held.push_back(s.name);
}

void on_mutex_release(const void* id) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  SyncState& s = sync_at(g, id);
  vc_join(s.release_clock, t.clock);
  t.clock[static_cast<std::size_t>(t.slot)]++;
  const char* name = s.name;
  for (auto it = t.held.rbegin(); it != t.held.rend(); ++it) {
    if (*it == name) {
      t.held.erase(std::next(it).base());
      break;
    }
  }
}

void on_hb_release(const void* id, const char* what) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  SyncState& s = g.syncs[id];
  if (s.name == nullptr) {
    s.name = what != nullptr ? what : "<handshake>";
    g.syncs_seen.fetch_add(1, std::memory_order_relaxed);
  }
  vc_join(s.release_clock, t.clock);
  t.clock[static_cast<std::size_t>(t.slot)]++;
  g.hb_edges.fetch_add(1, std::memory_order_relaxed);
}

void on_hb_acquire(const void* id, const char* what) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  SyncState& s = g.syncs[id];
  if (s.name == nullptr) {
    s.name = what != nullptr ? what : "<handshake>";
    g.syncs_seen.fetch_add(1, std::memory_order_relaxed);
  }
  if (!s.release_clock.empty()) {
    vc_join(t.clock, s.release_clock);
    g.hb_edges.fetch_add(1, std::memory_order_relaxed);
  }
}

TaskEdge on_task_spawn() {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return {};
  auto state = std::make_shared<TaskEdgeState>();
  {
    std::lock_guard lock(g.mu);
    ThreadState& t = self_locked(g);
    state->fork_clock = t.clock;
    t.clock[static_cast<std::size_t>(t.slot)]++;
  }
  g.task_edges.fetch_add(1, std::memory_order_relaxed);
  return TaskEdge{std::move(state)};
}

void on_task_start(const TaskEdge& edge) {
  if (edge.state == nullptr) return;
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  auto* state = static_cast<TaskEdgeState*>(edge.state.get());
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  vc_join(t.clock, state->fork_clock);
}

void on_task_finish(const TaskEdge& edge) {
  if (edge.state == nullptr) return;
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  auto* state = static_cast<TaskEdgeState*>(edge.state.get());
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  state->finish_clock = t.clock;
  state->finished = true;
  t.clock[static_cast<std::size_t>(t.slot)]++;
}

void on_task_join(const TaskEdge& edge) {
  if (edge.state == nullptr) return;
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  auto* state = static_cast<TaskEdgeState*>(edge.state.get());
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  if (state->finished) {
    vc_join(t.clock, state->finish_clock);
    g.task_edges.fetch_add(1, std::memory_order_relaxed);
  }
}

void track(const void* addr, const char* name, std::source_location site) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  CellState cell;
  cell.track_site =
      site_string(site.file_name(), static_cast<int>(site.line()));
  cell.name = name != nullptr ? name : "object@" + cell.track_site;
  cell.last_write = make_access(t, site, /*is_write=*/true);
  cell.accessors.push_back(t.slot);
  g.cells_seen.fetch_add(1, std::memory_order_relaxed);
  g.cells[addr] = std::move(cell);  // re-track of a reused address resets
}

void untrack(const void* addr) {
  Global& g = global();
  std::lock_guard lock(g.mu);
  g.cells.erase(addr);
}

void on_read(const void* addr, std::source_location site) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  g.reads.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  CellState& cell = cell_at(g, addr, t, site, /*is_write=*/false);
  const AccessRecord current = make_access(t, site, /*is_write=*/false);
  if (cell.last_write.slot >= 0 && cell.last_write.slot != t.slot &&
      !ordered_before(cell.last_write, t)) {
    report_race(g, cell, cell.last_write, current,
                classify(cell, t.slot, ReportKind::kReadWrite));
  }
  bool replaced = false;
  for (AccessRecord& r : cell.reads) {
    if (r.slot == t.slot) {
      r = current;
      replaced = true;
      break;
    }
  }
  if (!replaced) cell.reads.push_back(current);
  if (!is_accessor(cell, t.slot)) cell.accessors.push_back(t.slot);
}

void on_write(const void* addr, std::source_location site) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  g.writes.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(g.mu);
  ThreadState& t = self_locked(g);
  CellState& cell = cell_at(g, addr, t, site, /*is_write=*/true);
  const AccessRecord current = make_access(t, site, /*is_write=*/true);
  if (cell.last_write.slot >= 0 && cell.last_write.slot != t.slot &&
      !ordered_before(cell.last_write, t)) {
    report_race(g, cell, cell.last_write, current,
                classify(cell, t.slot, ReportKind::kWriteWrite));
  }
  for (const AccessRecord& r : cell.reads) {
    if (r.slot != t.slot && !ordered_before(r, t)) {
      report_race(g, cell, r, current,
                  classify(cell, t.slot, ReportKind::kReadWrite));
    }
  }
  cell.last_write = current;
  cell.reads.clear();
  if (!is_accessor(cell, t.slot)) cell.accessors.push_back(t.slot);
}

void on_reduction(const char* name, std::uint64_t key,
                  std::uint64_t value_hash) {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return;
  g.reduction_records.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(g.mu);
  ReductionDigest& r = g.reductions[name != nullptr ? name : "<reduction>"];
  r.records++;
  // Arrival-order digest: a non-commutative mix, so two runs that merge
  // the same contributions in a different order produce different values.
  std::uint64_t h = r.order_digest;
  h ^= key + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= value_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  r.order_digest = h;
  const auto [it, inserted] = r.keyed.emplace(key, value_hash);
  if (!inserted && it->second != value_hash) {
    const std::string rname = name != nullptr ? name : "<reduction>";
    if (g.reported
            .insert("RC004:" + rname + ":" + std::to_string(key))
            .second) {
      Finding f;
      f.kind = ReportKind::kOrderNondeterminism;
      f.object = rname;
      f.message = "order nondeterminism in reduction '" + rname + "': key " +
                  std::to_string(key) +
                  " received conflicting contributions (" + hex64(it->second) +
                  " then " + hex64(value_hash) + ") within one run";
      f.details = "  two tasks fed different values into the same slot of "
                  "the reduction; the merged result depends on which lands "
                  "last\n";
      record_finding(g, std::move(f));
    }
  }
}

ReductionSnapshot reduction_snapshot() {
  Global& g = global();
  std::lock_guard lock(g.mu);
  return g.reductions;
}

int compare_reduction_snapshots(const ReductionSnapshot& base,
                                const ReductionSnapshot& other,
                                const char* base_label,
                                const char* other_label) {
  Global& g = global();
  const std::string bl = base_label != nullptr ? base_label : "base";
  const std::string ol = other_label != nullptr ? other_label : "other";
  int errors = 0;
  std::lock_guard lock(g.mu);

  auto file = [&](Finding f) { record_finding(g, std::move(f)); };

  for (const auto& [name, bd] : base) {
    const auto ot = other.find(name);
    if (ot == other.end()) {
      Finding f;
      f.kind = ReportKind::kOrderNondeterminism;
      f.object = name;
      f.message = "order nondeterminism: reduction '" + name +
                  "' was recorded in " + bl + " but not in " + ol;
      ++errors;
      file(std::move(f));
      continue;
    }
    const ReductionDigest& od = ot->second;
    if (bd.keyed != od.keyed) {
      // Name the first divergent key: missing on either side or a
      // conflicting hash — the culprit slot of the culprit reduction.
      std::string culprit;
      for (const auto& [key, hash] : bd.keyed) {
        const auto ok = od.keyed.find(key);
        if (ok == od.keyed.end()) {
          culprit = "key " + std::to_string(key) + " only in " + bl;
          break;
        }
        if (ok->second != hash) {
          culprit = "key " + std::to_string(key) + ": " + hex64(hash) +
                    " in " + bl + " vs " + hex64(ok->second) + " in " + ol;
          break;
        }
      }
      if (culprit.empty()) {
        for (const auto& [key, hash] : od.keyed) {
          if (bd.keyed.find(key) == bd.keyed.end()) {
            culprit = "key " + std::to_string(key) + " only in " + ol;
            break;
          }
        }
      }
      Finding f;
      f.kind = ReportKind::kOrderNondeterminism;
      f.object = name;
      f.message = "order nondeterminism in reduction '" + name +
                  "': contributions differ between " + bl + " (" +
                  std::to_string(bd.keyed.size()) + " keys) and " + ol +
                  " (" + std::to_string(od.keyed.size()) + " keys)";
      f.details = "  first divergence: " + culprit +
                  "\n  the reduction's result depends on the schedule or "
                  "thread count -- make the merge order canonical (sort by "
                  "key before folding) or the per-slot computation "
                  "schedule-independent\n";
      ++errors;
      file(std::move(f));
    } else if (bd.order_digest != od.order_digest) {
      Finding f;
      f.kind = ReportKind::kOrderNondeterminism;
      f.is_error = false;
      f.object = name;
      f.message = "reduction '" + name +
                  "': identical contributions arrived in a different order "
                  "in " + bl + " and " + ol;
      f.details = "  benign for commutative merges; a hazard the moment the "
                  "fold accumulates floating point in arrival order\n";
      file(std::move(f));
    }
  }
  for (const auto& [name, od] : other) {
    if (base.find(name) == base.end()) {
      Finding f;
      f.kind = ReportKind::kOrderNondeterminism;
      f.object = name;
      f.message = "order nondeterminism: reduction '" + name +
                  "' was recorded in " + ol + " but not in " + bl;
      ++errors;
      file(std::move(f));
    }
  }
  return errors;
}

std::vector<Finding> findings() {
  Global& g = global();
  std::lock_guard lock(g.mu);
  return g.findings_list;
}

std::size_t finding_count(ReportKind kind) {
  Global& g = global();
  std::lock_guard lock(g.mu);
  std::size_t n = 0;
  for (const Finding& f : g.findings_list) {
    if (f.kind == kind) ++n;
  }
  return n;
}

CounterSnapshot counters() {
  Global& g = global();
  CounterSnapshot s;
  {
    std::lock_guard lock(g.mu);
    s.threads = static_cast<long long>(g.threads.size());
  }
  s.sync_objects = g.syncs_seen.load(std::memory_order_relaxed);
  s.cells = g.cells_seen.load(std::memory_order_relaxed);
  s.reads = g.reads.load(std::memory_order_relaxed);
  s.writes = g.writes.load(std::memory_order_relaxed);
  s.mutex_edges = g.mutex_edges.load(std::memory_order_relaxed);
  s.task_edges = g.task_edges.load(std::memory_order_relaxed);
  s.hb_edges = g.hb_edges.load(std::memory_order_relaxed);
  s.reduction_records = g.reduction_records.load(std::memory_order_relaxed);
  s.findings_error = g.findings_error.load(std::memory_order_relaxed);
  s.findings_warning = g.findings_warning.load(std::memory_order_relaxed);
  return s;
}

bool clean() {
  return global().findings_error.load(std::memory_order_relaxed) == 0;
}

std::string format_report() {
  const CounterSnapshot s = counters();
  const std::vector<Finding> all = findings();
  char head[320];
  std::snprintf(head, sizeof head,
                "racer: %lld threads, %lld sync objects, %lld cells, "
                "%lld reads, %lld writes, %lld mutex edges, %lld task "
                "edges, %lld hb edges, %lld reduction records\n",
                s.threads, s.sync_objects, s.cells, s.reads, s.writes,
                s.mutex_edges, s.task_edges, s.hb_edges, s.reduction_records);
  std::string out = head;
  if (all.empty()) {
    out += "racer: clean (no findings)\n";
    return out;
  }
  out += "racer: " + std::to_string(s.findings_error) + " error(s), " +
         std::to_string(s.findings_warning) + " warning(s)\n";
  for (const Finding& f : all) {
    out += std::string(f.is_error ? "error" : "warning") + ": [" +
           std::string(rule_id(f.kind)) + "] " + f.message + "\n";
    out += f.details;
  }
  return out;
}

void reset() {
  Global& g = global();
  std::lock_guard lock(g.mu);
  // Sync objects keep their names (they are baked into live Mutexes) but
  // drop their release clocks; cells drop entirely, so every baseline is
  // re-established after the reset. Thread epochs are monotone, which
  // keeps pre-reset joins sound against post-reset accesses.
  for (auto& [id, s] : g.syncs) s.release_clock.clear();
  g.cells.clear();
  g.reductions.clear();
  g.findings_list.clear();
  g.reported.clear();
  g.cells_seen.store(0, std::memory_order_relaxed);
  g.reads.store(0, std::memory_order_relaxed);
  g.writes.store(0, std::memory_order_relaxed);
  g.mutex_edges.store(0, std::memory_order_relaxed);
  g.task_edges.store(0, std::memory_order_relaxed);
  g.hb_edges.store(0, std::memory_order_relaxed);
  g.reduction_records.store(0, std::memory_order_relaxed);
  g.findings_error.store(0, std::memory_order_relaxed);
  g.findings_warning.store(0, std::memory_order_relaxed);
}

#endif  // SCIDOCK_RACER_ENABLED

}  // namespace scidock::racer
