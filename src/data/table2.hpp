#pragma once

/// \file table2.hpp
/// The paper's Table 2 dataset identity: the 238 receptor PDB codes of
/// cysteine-protease clan Peptidase_CA (CL0125) and the 42 CP-specific
/// ligand codes. The codes seed the synthetic structure generator, so the
/// whole dataset is a pure function of this list.
///
/// Note: the available scan of Table 2 loses a handful of ligand codes to
/// OCR; the list is completed to 42 with chemically sensible PDB het
/// codes that appear in the paper's own Figure 11 (GOL, SO4, PO4, PG4)
/// plus E64, the canonical cysteine-protease inhibitor. Documented in
/// DESIGN.md.

#include <string>
#include <vector>

namespace scidock::data {

/// All 238 receptor codes, in Table 2 order.
const std::vector<std::string>& table2_receptors();

/// All 42 ligand codes.
const std::vector<std::string>& table2_ligands();

/// The four ligands of the Table 3 analysis (first 1,000 pairs).
const std::vector<std::string>& table3_ligands();

}  // namespace scidock::data
