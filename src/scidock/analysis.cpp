#include "scidock/analysis.hpp"

#include <map>

#include "prov/prov.hpp"
#include "scidock/scidock.hpp"
#include "util/strings.hpp"

namespace scidock::core {

std::vector<Table3Row> table3_from_relation(const wf::Relation& output) {
  struct Acc {
    int total = 0;
    int favorable = 0;
    double feb_neg_sum = 0.0;
    double rmsd_sum = 0.0;
  };
  std::map<std::string, Acc> by_ligand;
  for (const wf::Tuple& t : output.tuples()) {
    const auto feb = t.get("feb");
    const auto rmsd = t.get("rmsd");
    if (!feb || !rmsd) continue;
    Acc& acc = by_ligand[t.require("ligand")];
    ++acc.total;
    const double f = parse_double(*feb, "feb");
    if (f < 0.0) {
      ++acc.favorable;
      acc.feb_neg_sum += f;
    }
    acc.rmsd_sum += parse_double(*rmsd, "rmsd");
  }
  std::vector<Table3Row> rows;
  for (const auto& [ligand, acc] : by_ligand) {
    Table3Row row;
    row.ligand = ligand;
    row.total_pairs = acc.total;
    row.favorable = acc.favorable;
    row.avg_feb_neg = acc.favorable ? acc.feb_neg_sum / acc.favorable : 0.0;
    row.avg_rmsd = acc.total ? acc.rmsd_sum / acc.total : 0.0;
    rows.push_back(row);
  }
  return rows;
}

std::string render_table3(const std::vector<Table3Row>& ad4,
                          const std::vector<Table3Row>& vina) {
  std::string out;
  out += "Ligand | FEB(-) AD4 | FEB(-) Vina | avgFEB AD4 | avgFEB Vina | "
         "avgRMSD AD4 | avgRMSD Vina\n";
  out += "-------+------------+-------------+------------+-------------+"
         "-------------+-------------\n";
  auto find = [](const std::vector<Table3Row>& rows, const std::string& lig)
      -> const Table3Row* {
    for (const Table3Row& r : rows) {
      if (r.ligand == lig) return &r;
    }
    return nullptr;
  };
  for (const Table3Row& a : ad4) {
    const Table3Row* v = find(vina, a.ligand);
    out += strformat("%-6s | %10d | %11d | %10.1f | %11.1f | %11.1f | %12.1f\n",
                     a.ligand.c_str(), a.favorable, v ? v->favorable : 0,
                     a.avg_feb_neg, v ? v->avg_feb_neg : 0.0, a.avg_rmsd,
                     v ? v->avg_rmsd : 0.0);
  }
  int total_ad4 = 0;
  int total_vina = 0;
  for (const Table3Row& r : ad4) total_ad4 += r.favorable;
  for (const Table3Row& r : vina) total_vina += r.favorable;
  out += strformat("TOTAL favourable interactions: AD4 %d, Vina %d\n",
                   total_ad4, total_vina);
  return out;
}

std::string figure5_query(long long wkfid) {
  return strformat(
      "SELECT extract ('epoch' from (t.endtime-t.starttime)) "
      "FROM hworkflow w, hactivity a, hactivation t "
      "WHERE w.wkfid = a.wkfid "
      "AND a.actid = t.actid "
      "AND w.wkfid = %lld "
      "ORDER BY t.endtime",
      wkfid);
}

std::string query1(long long wkfid) {
  return strformat(
      "SELECT a.tag, "
      "min(extract ('epoch' from (t.endtime-t.starttime))), "
      "max(extract ('epoch' from (t.endtime-t.starttime))), "
      "sum(extract ('epoch' from (t.endtime-t.starttime))), "
      "avg(extract ('epoch' from (t.endtime-t.starttime))) "
      "FROM hworkflow w, hactivity a, hactivation t "
      "WHERE w.wkfid = a.wkfid "
      "AND a.actid = t.actid "
      "AND w.wkfid = %lld "
      "GROUP BY a.tag",
      wkfid);
}

std::string query2() {
  return "SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir "
         "FROM hworkflow w, hactivity a, hfile f "
         "WHERE w.wkfid = a.wkfid "
         "AND a.actid = f.actid "
         "AND f.fname LIKE '%.dlg' "
         "ORDER BY f.fileid";
}

std::string forensics_failed_by_activity() {
  return "SELECT a.tag, count(*) "
         "FROM hactivity a, hactivation t "
         "WHERE a.actid = t.actid AND t.status = 'FAILED' "
         "GROUP BY a.tag ORDER BY count(*) DESC";
}

std::string forensics_hg_aborts(int limit) {
  return strformat(
      "SELECT t.workload, count(*) "
      "FROM hactivation t WHERE t.status = 'ABORTED' "
      "GROUP BY t.workload ORDER BY count(*) DESC LIMIT %d",
      limit);
}

std::string steering_longest_activations(int limit) {
  return strformat(
      "SELECT a.tag, t.workload, "
      "extract('epoch' from (t.endtime - t.starttime)) dur "
      "FROM hactivity a, hactivation t "
      "WHERE a.actid = t.actid AND t.status = 'FINISHED' "
      "ORDER BY dur DESC LIMIT %d",
      limit);
}

std::string screen_summary_query() {
  return "SELECT ligand, count(*) pairs, sum(feb < 0) favorable, "
         "min(feb) best_feb FROM rel GROUP BY ligand ORDER BY ligand";
}

std::vector<RelationField> output_relation_schema() {
  return {
      // generator pair fields (data/generator.cpp build_pairs_relation)
      {"pair", FieldKind::Text},
      {"receptor", FieldKind::Text},
      {"ligand", FieldKind::Text},
      {"receptor_file", FieldKind::Text},
      {"ligand_file", FieldKind::Text},
      {"residues", FieldKind::Int},
      {"engine", FieldKind::Text},
      {"workload", FieldKind::Real},
      {"hg", FieldKind::Int},
      // fields emitted along the pipeline (scidock.cpp make_pipeline)
      {"ligand_mol2", FieldKind::Text},
      {"ligand_pdbqt", FieldKind::Text},
      {"receptor_pdbqt", FieldKind::Text},
      {"gpf_file", FieldKind::Text},
      {"maps_prefix", FieldKind::Text},
      {"dpf_file", FieldKind::Text},
      {"conf_file", FieldKind::Text},
      {"dlg_file", FieldKind::Text},
      {"feb", FieldKind::Real},
      {"rmsd", FieldKind::Real},
  };
}

std::vector<ShippedQuery> shipped_queries() {
  return {
      {"figure5-histogram", figure5_query(1), "prov"},
      {"query1-statistics", query1(1), "prov"},
      {"query2-dlg-files", query2(), "prov"},
      {"forensics-failed-by-activity", forensics_failed_by_activity(),
       "prov"},
      {"forensics-hg-aborts", forensics_hg_aborts(), "prov"},
      {"steering-longest-activations", steering_longest_activations(),
       "prov"},
      {"screen-summary", screen_summary_query(), "rel"},
      // Metrics <-> provenance reconciliation queries (DESIGN.md §9);
      // shipping them keeps the lint gate on their syntax.
      {"reconcile-workflow-id", prov::workflow_id_sql("SciDock"), "prov"},
      {"reconcile-activation-count", prov::activation_count_sql(1), "prov"},
      {"reconcile-activations-by-status", prov::activations_by_status_sql(1),
       "prov"},
      {"reconcile-retried-activations",
       prov::retried_activation_count_sql(1), "prov"},
      {"reconcile-finished-autogrid",
       prov::finished_activation_count_sql(1, kAutogrid), "prov"},
  };
}

}  // namespace scidock::core
