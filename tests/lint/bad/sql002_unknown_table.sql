SELECT wkfid FROM hworkflows
