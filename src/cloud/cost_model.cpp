#include "cloud/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::cloud {

CostModel CostModel::scidock_default() {
  // Means chosen so the AD4 chain (babel..autodock4) totals ~216 s/pair and
  // the Vina chain (babel..autodockvina) ~155 s/pair, matching the paper's
  // 2-core TETs over 10,000 pairs; the docking step dominates (Figure 6),
  // and receptor preparation averages ~10 s (Section V.C).
  CostModel model;
  model.costs_ = {
      {"babel", 2.4, 0.55, 0.2},
      {"prepligand", 5.0, 0.60, 0.3},
      {"prepreceptor", 10.0, 0.55, 0.5},
      {"gpfprep", 20.0, 0.45, 1.0},
      {"autogrid", 25.0, 0.60, 1.0},
      {"dockfilter", 1.0, 0.35, 0.05},
      {"dpfprep", 8.0, 0.45, 0.3},
      {"confprep", 3.0, 0.45, 0.2},
      {"autodock4", 107.0, 0.80, 5.0},
      {"autodockvina", 52.0, 0.80, 3.0},
  };
  return model;
}

void CostModel::set_cost(ActivityCost cost) {
  for (ActivityCost& c : costs_) {
    if (iequals(c.tag, cost.tag)) {
      c = std::move(cost);
      return;
    }
  }
  costs_.push_back(std::move(cost));
}

const ActivityCost& CostModel::cost(std::string_view tag) const {
  for (const ActivityCost& c : costs_) {
    if (iequals(c.tag, tag)) return c;
  }
  throw NotFoundError("activity cost", tag);
}

bool CostModel::has(std::string_view tag) const {
  return std::any_of(costs_.begin(), costs_.end(),
                     [tag](const ActivityCost& c) { return iequals(c.tag, tag); });
}

double CostModel::sample(std::string_view tag, double workload_scale,
                         double vm_slowdown, Rng& rng) const {
  const ActivityCost& c = cost(tag);
  // Parameterise the lognormal so its *mean* equals c.mean_s:
  // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  const double mu = std::log(c.mean_s) - c.sigma * c.sigma / 2.0;
  const double base = rng.lognormal(mu, c.sigma);
  return std::max(c.min_s, base * workload_scale * vm_slowdown);
}

double CostModel::expected(std::string_view tag, double workload_scale,
                           double vm_slowdown) const {
  return cost(tag).mean_s * workload_scale * vm_slowdown;
}

double CostModel::scheduling_overhead(std::size_t queued_activations,
                                      std::size_t available_vms) const {
  return scheduling_overhead_base +
         scheduling_overhead_coefficient *
             static_cast<double>(queued_activations) *
             static_cast<double>(available_vms);
}

double CostModel::chain_mean(const std::vector<std::string>& tags) const {
  double total = 0.0;
  for (const std::string& tag : tags) total += cost(tag).mean_s;
  return total;
}

}  // namespace scidock::cloud
