file(REMOVE_RECURSE
  "CMakeFiles/provenance_analysis.dir/provenance_analysis.cpp.o"
  "CMakeFiles/provenance_analysis.dir/provenance_analysis.cpp.o.d"
  "provenance_analysis"
  "provenance_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
