#include "cloud/failure.hpp"

namespace scidock::cloud {

ActivationOutcome FailureModel::sample(Rng& rng, bool deterministic_hang) const {
  if (deterministic_hang) return ActivationOutcome::Hang;
  const double u = rng.uniform();
  if (u < opts_.hang_probability) return ActivationOutcome::Hang;
  if (u < opts_.hang_probability + opts_.failure_probability) {
    return ActivationOutcome::Failure;
  }
  return ActivationOutcome::Success;
}

}  // namespace scidock::cloud
