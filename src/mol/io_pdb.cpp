#include "mol/io_pdb.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::mol {

namespace {

const char* kStandardResidues[] = {
    "ALA", "ARG", "ASN", "ASP", "CYS", "GLN", "GLU", "GLY", "HIS", "ILE",
    "LEU", "LYS", "MET", "PHE", "PRO", "SER", "THR", "TRP", "TYR", "VAL"};

bool is_standard_residue(std::string_view res) {
  for (const char* r : kStandardResidues) {
    if (res == r) return true;
  }
  return false;
}

}  // namespace

Molecule read_pdb(std::string_view text, std::string_view name,
                  bool infer_bonds) {
  Molecule m{std::string(name)};
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view lv = line;
    const std::string_view record = fixed_columns(lv, 0, 6);
    if (record == "HEADER" && name.empty()) {
      const std::string_view id = fixed_columns(lv, 62, 4);
      if (!id.empty()) m.set_name(std::string(id));
      continue;
    }
    if (record != "ATOM" && record != "HETATM") continue;
    if (lv.size() < 54) {
      throw ParseError("PDB", "truncated coordinate record: " + line);
    }
    Atom atom;
    atom.serial = static_cast<int>(parse_int(fixed_columns(lv, 6, 5), "PDB serial"));
    atom.name = std::string(fixed_columns(lv, 12, 4));
    atom.residue_name = std::string(fixed_columns(lv, 17, 3));
    const std::string_view chain = fixed_columns(lv, 21, 1);
    atom.chain_id = chain.empty() ? 'A' : chain[0];
    const std::string_view seq = fixed_columns(lv, 22, 4);
    atom.residue_seq = seq.empty() ? 0 : static_cast<int>(parse_int(seq, "PDB resSeq"));
    atom.pos.x = parse_double(fixed_columns(lv, 30, 8), "PDB x");
    atom.pos.y = parse_double(fixed_columns(lv, 38, 8), "PDB y");
    atom.pos.z = parse_double(fixed_columns(lv, 46, 8), "PDB z");
    atom.hetero = (record == "HETATM");

    const std::string_view elem_col = fixed_columns(lv, 76, 2);
    if (!elem_col.empty()) {
      if (auto e = element_from_symbol(elem_col)) atom.element = *e;
    }
    if (atom.element == Element::Unknown) {
      atom.element = element_from_pdb_atom_name(
          atom.name, is_standard_residue(atom.residue_name));
    }
    m.add_atom(std::move(atom));
  }
  if (m.atom_count() == 0) {
    throw ParseError("PDB", "no ATOM/HETATM records found");
  }
  if (infer_bonds) m.infer_bonds_from_geometry();
  return m;
}

std::string write_pdb(const Molecule& m) {
  std::string out;
  out += strformat("HEADER    SCIDOCK STRUCTURE%41s%-4s\n", "",
                   m.name().substr(0, 4).c_str());
  for (int i = 0; i < m.atom_count(); ++i) {
    const Atom& a = m.atom(i);
    const std::string_view symbol = element_info(a.element).symbol;
    out += strformat(
        "%-6s%5d %-4s %-3s %c%4d    %8.3f%8.3f%8.3f%6.2f%6.2f          %2s\n",
        a.hetero ? "HETATM" : "ATOM", a.serial != 0 ? a.serial : i + 1,
        a.name.substr(0, 4).c_str(), a.residue_name.substr(0, 3).c_str(),
        a.chain_id, a.residue_seq, a.pos.x, a.pos.y, a.pos.z, 1.0, 0.0,
        std::string(symbol).c_str());
  }
  out += "TER\nEND\n";
  return out;
}

}  // namespace scidock::mol
