file(REMOVE_RECURSE
  "CMakeFiles/scidock_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/scidock_bench_common.dir/bench_common.cpp.o.d"
  "libscidock_bench_common.a"
  "libscidock_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scidock_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
