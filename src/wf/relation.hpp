#pragma once

/// \file relation.hpp
/// The algebraic data model of SciCumulus (Ogasawara et al., VLDB 2011):
/// activities consume and produce *relations*; each tuple is processed
/// independently, which is what the engine parallelises.

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scidock::wf {

/// One tuple: ordered field values keyed by field name. Values are
/// strings, as in SciCumulus' file-backed relations (input_1.txt).
class Tuple {
 public:
  Tuple() = default;

  void set(std::string field, std::string value);
  std::optional<std::string> get(std::string_view field) const;
  /// Value or throws NotFoundError.
  const std::string& require(std::string_view field) const;
  bool has(std::string_view field) const;
  double get_double(std::string_view field, double fallback) const;

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// A relation: a field schema plus tuples.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> field_names)
      : field_names_(std::move(field_names)) {}

  const std::vector<std::string>& field_names() const { return field_names_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Appends; the tuple must cover every schema field.
  void add(Tuple tuple);

  /// Serialise in SciCumulus' tab-separated relation-file format
  /// (header row of field names, one row per tuple).
  std::string to_file_text() const;
  static Relation from_file_text(std::string_view text);

 private:
  std::vector<std::string> field_names_;
  std::vector<Tuple> tuples_;
};

}  // namespace scidock::wf
