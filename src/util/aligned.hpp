#pragma once

/// \file aligned.hpp
/// Cache-line-aligned allocation for SIMD batch buffers (DESIGN.md §13).
///
/// `util::aligned_vector<double>` is a drop-in std::vector whose storage
/// starts on a 64-byte boundary, so full-width simd::f64x loads at lane
/// offsets 0, W, 2W, ... never straddle a cache line (and never fault on
/// ISAs with alignment-checked vector loads). GridMap values and PoseBatch
/// coordinate planes use it; everything else keeps the default allocator.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace scidock::util {

inline constexpr std::size_t kSimdAlignment = 64;  ///< one x86 cache line

template <typename T, std::size_t Alignment = kSimdAlignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment below the type's natural requirement");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    // operator new rounds the size itself; std::aligned_alloc would demand
    // a size that is a multiple of the alignment.
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Alignment});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  bool operator==(const AlignedAllocator&) const noexcept { return true; }
  bool operator!=(const AlignedAllocator&) const noexcept { return false; }
};

/// std::vector with cache-line-aligned storage. Interoperates with plain
/// std::vector through iterator-range construction/assignment only — the
/// allocator is part of the type, which is exactly the point: a buffer of
/// this type is alignment-guaranteed wherever it flows.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace scidock::util
