// Figure 11 / Query 2: names, sizes and locations of the '.dlg' files
// produced by the workflow, recovered through the provenance repository
// instead of browsing directories — run on a real (native) execution so
// the files contain genuine docking output.

#include <cstdio>

#include "bench_common.hpp"
#include "data/table2.hpp"
#include "dock/dlg.hpp"
#include "scidock/analysis.hpp"
#include "scidock/experiment.hpp"

int main() {
  using namespace scidock;
  bench::print_header("SciDock bench: Query 2 — locating docking outputs",
                      "Figure 11 (Query 2) + Figure 12's best-pair lookup");

  const int receptors = bench::env_int("SCIDOCK_Q2_RECEPTORS", 12);
  core::ScidockOptions options;
  options.engine_mode = core::EngineMode::ForceAd4;  // .dlg outputs
  const std::vector<std::string> recs(
      data::table2_receptors().begin(),
      data::table2_receptors().begin() + receptors);
  core::Experiment exp =
      core::make_experiment(recs, {"042", "0E6"}, 0, options);
  const wf::NativeReport report = core::run_native(exp, 1);
  std::printf("native run: %zu pairs docked, %lld activations, %.1f s wall\n\n",
              report.output.size(), report.activations_finished,
              report.wall_seconds);

  const std::string query = core::query2();
  std::printf("SQL> %s\n\n", query.c_str());
  const sql::ResultSet rs = exp.prov->query(query + " LIMIT 10");
  std::printf("%s\n", rs.to_text().c_str());

  // Figure 12 flavour: fetch the best pair's .dlg and show its summary.
  double best_feb = 1e9;
  std::string best_file;
  for (const wf::Tuple& t : report.output.tuples()) {
    const double feb = t.get_double("feb", 1e9);
    if (feb < best_feb) {
      best_feb = feb;
      best_file = t.require("dlg_file");
    }
  }
  if (!best_file.empty()) {
    const dock::DlgSummary summary =
        dock::parse_docking_log(exp.fs->read(best_file));
    std::printf("best interaction: %s-%s  FEB %.2f kcal/mol  (from %s)\n",
                summary.receptor.c_str(), summary.ligand.c_str(),
                summary.best_feb, best_file.c_str());
  }
  std::printf("\nshape check (Figure 11): every returned fname ends in .dlg,\n"
              "with its size and producing activity/workflow, no directory\n"
              "browsing required.\n");
  return 0;
}
