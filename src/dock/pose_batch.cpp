#include "dock/pose_batch.hpp"

#include <cstring>

#include "util/error.hpp"

namespace scidock::dock {

void PoseBatch::resize(int poses, int atoms) {
  SCIDOCK_ASSERT(poses > 0 && atoms > 0);
  pose_count_ = poses;
  atom_count_ = atoms;
  lane_blocks_ = (poses + kLaneWidth - 1) / kLaneWidth;
  const std::size_t n = static_cast<std::size_t>(lane_blocks_) *
                        static_cast<std::size_t>(atoms) *
                        static_cast<std::size_t>(kLaneWidth);
  x_.resize(n);
  y_.resize(n);
  z_.resize(n);
}

void PoseBatch::set_pose(int pose, const std::vector<mol::Vec3>& coords) {
  SCIDOCK_ASSERT(pose >= 0 && pose < pose_count_);
  SCIDOCK_ASSERT(coords.size() == static_cast<std::size_t>(atom_count_));
  const int block = pose / kLaneWidth;
  const int lane = pose % kLaneWidth;
  for (int a = 0; a < atom_count_; ++a) {
    const std::size_t off = plane_offset(block, a) +
                            static_cast<std::size_t>(lane);
    x_[off] = coords[static_cast<std::size_t>(a)].x;
    y_[off] = coords[static_cast<std::size_t>(a)].y;
    z_[off] = coords[static_cast<std::size_t>(a)].z;
  }
}

void PoseBatch::pad_tail() {
  const int last = pose_count_ - 1;
  const int block = last / kLaneWidth;
  const int lane = last % kLaneWidth;
  for (int pad = lane + 1; pad < kLaneWidth; ++pad) {
    for (int a = 0; a < atom_count_; ++a) {
      const std::size_t base = plane_offset(block, a);
      x_[base + static_cast<std::size_t>(pad)] =
          x_[base + static_cast<std::size_t>(lane)];
      y_[base + static_cast<std::size_t>(pad)] =
          y_[base + static_cast<std::size_t>(lane)];
      z_[base + static_cast<std::size_t>(pad)] =
          z_[base + static_cast<std::size_t>(lane)];
    }
  }
}

}  // namespace scidock::dock
