// elastic_cloud_run — SciCumulus' adaptive-execution features on the
// cloud simulator: a 10,000-pair campaign replayed with a static fleet
// and with the elasticity controller acquiring/releasing VMs against the
// queue, comparing makespan and cloud cost; plus the XML workflow
// specification round trip (paper Figure 2).

#include <cstdio>

#include "data/table2.hpp"
#include "scidock/experiment.hpp"
#include "util/strings.hpp"
#include "wf/spec.hpp"

int main() {
  using namespace scidock;

  // The workflow definition as SciCumulus would load it from XML.
  const wf::WorkflowDef def = core::scidock_workflow_def();
  const std::string xml = wf::save_spec(def);
  std::printf("SciDock XML specification (%zu activities, excerpt):\n",
              def.activities.size());
  std::printf("%s...\n\n", xml.substr(0, 460).c_str());
  const wf::WorkflowDef parsed = wf::load_spec(xml);
  std::printf("round-trip parse: workflow '%s', %zu activities OK\n\n",
              parsed.tag.c_str(), parsed.activities.size());

  core::ScidockOptions options;
  core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(), 10000, options);

  // Static fleet: 4 x m3.2xlarge = 32 cores for the whole run.
  wf::SimExecutorOptions fixed = core::default_sim_options(32);
  const wf::SimReport r_static = core::run_simulated(exp, 32, nullptr, fixed);

  // Elastic: start with one VM, let the controller scale to at most 16
  // m3.2xlarge (128 cores) while the queue is deep, release when idle.
  wf::SimExecutorOptions elastic = core::default_sim_options(8);
  elastic.elasticity = true;
  elastic.min_vms = 1;
  elastic.max_vms = 16;
  elastic.elastic_vm_type = cloud::vm_type_m3_2xlarge();
  elastic.elasticity_period_s = 300.0;
  const wf::SimReport r_elastic = core::run_simulated(exp, 8, nullptr, elastic);

  std::printf("10,000-pair campaign (adaptive AD4/Vina routing):\n\n");
  std::printf("%-24s %12s %12s %10s %10s\n", "configuration", "TET",
              "cloud cost", "peak VMs", "failures");
  std::printf("%-24s %12s %11.0f$ %10d %10lld\n", "static 32 cores",
              human_duration(r_static.total_execution_time_s).c_str(),
              r_static.cloud_cost_usd, r_static.peak_alive_vms,
              r_static.activations_failed);
  std::printf("%-24s %12s %11.0f$ %10d %10lld\n", "elastic (1..16 VMs)",
              human_duration(r_elastic.total_execution_time_s).c_str(),
              r_elastic.cloud_cost_usd, r_elastic.peak_alive_vms,
              r_elastic.activations_failed);

  std::printf("\nthe elastic run trades peak capacity for queue-driven\n"
              "acquisition — SciCumulus' \"adapts the number of execution\n"
              "resources according to the current load\" (Section I).\n");
  return 0;
}
