#include "dock/energy_lut.hpp"

#include <cmath>
#include <utility>

#include "util/thread_annotations.hpp"

namespace scidock::dock {

namespace {

constexpr std::size_t kSamples = lut::kEntries + 1;
constexpr double kStep = lut::kCutoffSq / lut::kEntries;

/// Distance of sample i, honouring the analytic path's 0.5 Å floor.
double sample_r(int i) {
  const double r = std::sqrt(static_cast<double>(i) * kStep);
  return r < 0.5 ? 0.5 : r;
}

bool same_weights(const Ad4Weights& a, const Ad4Weights& b) {
  return a.vdw == b.vdw && a.hbond == b.hbond && a.estat == b.estat &&
         a.desolv == b.desolv && a.tors == b.tors;
}

bool same_weights(const VinaWeights& a, const VinaWeights& b) {
  return a.gauss1 == b.gauss1 && a.gauss2 == b.gauss2 &&
         a.repulsion == b.repulsion && a.hydrophobic == b.hydrophobic &&
         a.hbond == b.hbond && a.rot == b.rot;
}

}  // namespace

Ad4PairTables::Ad4PairTables(const Ad4Weights& weights)
    : weights_(weights),
      vdw_(static_cast<std::size_t>(lut::kPairCount) * kSamples),
      coulomb_(kSamples),
      gauss_(kSamples) {
  for (int lo = 0; lo < mol::kAdTypeCount; ++lo) {
    for (int hi = lo; hi < mol::kAdTypeCount; ++hi) {
      const auto ti = static_cast<mol::AdType>(lo);
      const auto tj = static_cast<mol::AdType>(hi);
      double* row = vdw_.data() +
                    static_cast<std::size_t>(lut::pair_index(ti, tj)) * kSamples;
      for (std::size_t i = 0; i < kSamples; ++i) {
        row[i] = ad4_vdw_hbond(ti, tj, sample_r(static_cast<int>(i)), weights_);
      }
    }
  }
  constexpr double kCoulomb = 332.06;
  constexpr double kSigma = 3.6;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double r = sample_r(static_cast<int>(i));
    coulomb_[i] =
        weights_.estat * kCoulomb / (mehler_solmajer_dielectric(r) * r);
    gauss_[i] =
        weights_.desolv * std::exp(-(r * r) / (2.0 * kSigma * kSigma));
  }
}

double Ad4PairTables::pair_energy(mol::AdType ti, double qi, mol::AdType tj,
                                  double qj, double r2) const {
  if (r2 >= lut::kCutoffSq) {
    return ad4_pair_energy(ti, qi, tj, qj, std::sqrt(r2), weights_);
  }
  constexpr double kQasp = 0.01097;
  const auto& pi = mol::ad_type_params(ti);
  const auto& pj = mol::ad_type_params(tj);
  const double solv = (pi.solpar + kQasp * std::abs(qi)) * pj.volume +
                      (pj.solpar + kQasp * std::abs(qj)) * pi.volume;
  return vdw_hbond(ti, tj, r2) + qi * qj * coulomb_factor(r2) +
         solv * desolv_gauss(r2);
}

std::shared_ptr<const Ad4PairTables> Ad4PairTables::shared(
    const Ad4Weights& weights) {
  static Mutex mutex{"dock.lut.ad4"};
  static std::vector<std::pair<Ad4Weights, std::shared_ptr<const Ad4PairTables>>>
      cache SCIDOCK_GUARDED_BY(mutex);
  MutexLock lock(mutex);
  for (const auto& [w, tables] : cache) {
    if (same_weights(w, weights)) return tables;
  }
  auto tables = std::make_shared<const Ad4PairTables>(weights);
  cache.emplace_back(weights, tables);
  return tables;
}

VinaPairTables::VinaPairTables(const VinaWeights& weights)
    : weights_(weights),
      pair_(static_cast<std::size_t>(lut::kPairCount) * kSamples) {
  for (int lo = 0; lo < mol::kAdTypeCount; ++lo) {
    for (int hi = lo; hi < mol::kAdTypeCount; ++hi) {
      const auto ti = static_cast<mol::AdType>(lo);
      const auto tj = static_cast<mol::AdType>(hi);
      double* row = pair_.data() +
                    static_cast<std::size_t>(lut::pair_index(ti, tj)) * kSamples;
      for (std::size_t i = 0; i < kSamples; ++i) {
        // No distance floor here: the analytic Vina term is finite at
        // r = 0 (harmonic repulsion on the surface distance).
        const double r = std::sqrt(static_cast<double>(i) * kStep);
        row[i] = vina_pair_energy(ti, tj, r, weights_);
      }
    }
  }
}

std::shared_ptr<const VinaPairTables> VinaPairTables::shared(
    const VinaWeights& weights) {
  static Mutex mutex{"dock.lut.vina"};
  static std::vector<std::pair<VinaWeights, std::shared_ptr<const VinaPairTables>>>
      cache SCIDOCK_GUARDED_BY(mutex);
  MutexLock lock(mutex);
  for (const auto& [w, tables] : cache) {
    if (same_weights(w, weights)) return tables;
  }
  auto tables = std::make_shared<const VinaPairTables>(weights);
  cache.emplace_back(weights, tables);
  return tables;
}

}  // namespace scidock::dock
