#pragma once

/// \file lexer.hpp
/// SQL tokenizer. Keywords are recognised case-insensitively; identifiers
/// keep their original spelling.

#include <string>
#include <string_view>
#include <vector>

namespace scidock::sql {

enum class TokenKind {
  Identifier,   ///< bare name (possibly a keyword, resolved by the parser)
  Integer,
  Float,
  String,       ///< contents of a '...' literal, unescaped
  Symbol,       ///< punctuation / operator: ( ) , . * + - / = <> != <= >= < > %
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;   ///< identifier/keyword spelling, literal text, symbol
  int line = 1;

  bool is_symbol(std::string_view s) const {
    return kind == TokenKind::Symbol && text == s;
  }
  /// Case-insensitive keyword test (only meaningful for identifiers).
  bool is_keyword(std::string_view kw) const;
};

/// Tokenize; throws ParseError on malformed literals.
std::vector<Token> tokenize(std::string_view sql);

}  // namespace scidock::sql
