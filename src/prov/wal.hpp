#pragma once

/// \file wal.hpp
/// Write-ahead log for the sharded provenance store: append-only segment
/// files written through the shared VFS (so the chaos harness can tear
/// them mid-record), framed records with checksums, and recovery-by-
/// replay that truncates a torn tail at the last valid record.
///
/// Frame layout (all fixed-width fields little-endian host order; the
/// VFS is in-memory, so frames never cross machines):
///
///   [u32 payload_len][u32 checksum][payload]
///
///   payload = op:u8
///           + i0..i4 : 5 x i64     (ids, counts)
///           + d0,d1  : 2 x f64     (timestamps; bit-exact round trip)
///           + s0..s2 : 3 x (u32 len + bytes)
///
/// The checksum is FNV-1a over the payload folded to 32 bits. A frame
/// whose length field runs past the file, or whose checksum mismatches,
/// marks the torn tail: replay stops there and reports the byte count it
/// discarded (DESIGN.md §12).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vfs/vfs.hpp"

namespace scidock::prov::wal {

/// One provenance mutation. Values map onto the recording API of
/// ProvenanceStore one to one; replay re-applies them in log order.
enum class WalOp : std::uint8_t {
  BeginWorkflow = 1,
  EndWorkflow = 2,
  RegisterActivity = 3,
  BeginActivation = 4,
  EndActivation = 5,
  RecordMachine = 6,
  RecordFile = 7,
  RecordValue = 8,
};

/// Generic record: a tagged union flattened into enough scalar slots for
/// every op (see the per-op field mapping in prov.cpp).
struct WalRecord {
  WalOp op = WalOp::BeginWorkflow;
  long long i0 = 0, i1 = 0, i2 = 0, i3 = 0, i4 = 0;
  double d0 = 0.0, d1 = 0.0;
  std::string s0, s1, s2;

  bool operator==(const WalRecord&) const = default;
};

/// Serialise one record into a framed byte string (appendable as-is).
std::string encode_record(const WalRecord& record);

/// Decode the frame starting at `offset`. On success advances `offset`
/// past the frame and returns true. Returns false — leaving `offset`
/// untouched — on a truncated or corrupt frame (the torn tail).
bool decode_frame(std::string_view data, std::size_t& offset, WalRecord& out);

/// Per-segment replay accounting.
struct SegmentStatus {
  std::string path;
  std::size_t index = 0;
  bool sealed = false;         ///< seg-N.wal (true) vs seg-N.wal.open
  std::size_t bytes = 0;       ///< file size
  std::size_t valid_bytes = 0; ///< prefix holding intact frames
};

struct ShardReplay {
  std::vector<WalRecord> records;
  std::vector<SegmentStatus> segments;
  std::size_t truncated_bytes = 0;  ///< bytes discarded after the torn tail
  std::size_t next_index = 0;       ///< segment index for new appends
};

/// Replay every segment under `dir` in index order, stopping at the
/// first invalid frame (later bytes — and later segments, which cannot
/// legally exist past a torn one — count as truncated). With `repair`,
/// the torn segment is rewritten to its valid prefix, fully-invalid
/// files are removed and a leftover `.open` segment is sealed, so a
/// subsequent replay of the same directory is idempotent.
ShardReplay replay_shard(vfs::SharedFileSystem& fs, const std::string& dir,
                         bool repair);

/// Appends frames to the active `seg-NNNNNN.wal.open` segment under
/// `dir`, sealing it (sync + rename to `.wal`) and starting the next one
/// whenever the size limit is reached. Not thread-safe: the provenance
/// store serialises access per shard (group-commit flusher or the
/// recording thread in synchronous mode).
class SegmentWriter {
 public:
  SegmentWriter(vfs::SharedFileSystem& fs, std::string dir,
                std::size_t segment_max_bytes, std::size_t next_index);

  /// Append pre-encoded frames; rotates first when the active segment
  /// would exceed the limit. Propagates TornWriteError (after accounting
  /// the bytes that did land) and any fault-hook exception.
  void append(std::string_view frames, double now);

  /// Durability barrier on the active segment.
  void sync();

  std::size_t rotations() const { return rotations_; }
  std::size_t active_bytes() const { return active_bytes_; }
  const std::string& active_path() const { return active_path_; }

 private:
  void seal_active(double now);

  vfs::SharedFileSystem& fs_;
  std::string dir_;
  std::size_t segment_max_bytes_;
  std::size_t index_;
  std::string active_path_;
  std::size_t active_bytes_ = 0;
  std::size_t rotations_ = 0;
};

/// "<dir>/seg-NNNNNN.wal" (+ ".open" for the active segment).
std::string segment_path(const std::string& dir, std::size_t index,
                         bool sealed);

}  // namespace scidock::prov::wal
