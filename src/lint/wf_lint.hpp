#pragma once

/// \file wf_lint.hpp
/// Workflow algebra checker: statically validates a SciCumulus XML
/// workflow specification (paper Figure 2) without executing it. Unlike
/// wf::load_spec — which throws on the first problem — the linter walks
/// the DOM and reports every finding, each tagged with a stable rule ID
/// (WF001..WF009, see lint::rule_catalog()).

#include <string>
#include <string_view>

#include "lint/diagnostics.hpp"
#include "wf/workflow.hpp"

namespace scidock::lint {

/// Lint an XML specification text. `file` labels diagnostics (use the
/// path the text came from, or "" / a pseudo-name for in-memory specs).
Report lint_workflow_xml(std::string_view xml_text, std::string file = "");

/// Lint an in-memory definition (used for the builtin SciDock workflow;
/// round-trips through save_spec so both paths share one checker).
Report lint_workflow(const wf::WorkflowDef& def, std::string file = "");

}  // namespace scidock::lint
