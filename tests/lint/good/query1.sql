SELECT a.tag,
  min(extract ('epoch' from (t.endtime - t.starttime))),
  max(extract ('epoch' from (t.endtime - t.starttime))),
  sum(extract ('epoch' from (t.endtime - t.starttime))),
  avg(extract ('epoch' from (t.endtime - t.starttime)))
FROM hworkflow w, hactivity a, hactivation t
WHERE w.wkfid = a.wkfid
  AND a.actid = t.actid
  AND w.wkfid = 1
GROUP BY a.tag
