#pragma once

/// \file trace.hpp
/// TraceRecorder: structured, nested execution spans with thread ids and
/// monotonic timestamps, exported as Chrome `chrome://tracing` JSON (load
/// the file via the "Load" button or `chrome://tracing`, or ui.perfetto.dev)
/// and foldable into a compact in-memory span tree for tests.
///
/// Two timebases are supported by design:
///   - begin_span()/end_span() stamp events with the recorder's own
///     monotonic clock (microseconds since construction) and the calling
///     thread's dense id — the native executor's real-time spans;
///   - complete_span()/instant() take explicit timestamps and "thread"
///     ids — the simulated executor maps VM ids to trace rows and stamps
///     events with simulated seconds.
/// One recorder holds one timebase; do not mix real and simulated time in
/// the same recorder.
///
/// Cost model: recording appends one event to a lock-sharded buffer
/// (shard chosen by thread id, so contention is rare); nothing is
/// formatted until export. A null recorder pointer disables everything —
/// instrumentation sites guard with `if (trace)` or use ScopedSpan which
/// accepts nullptr.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace scidock::obs {

/// Dense sequential id of the calling OS thread (first call assigns).
int current_thread_id();

using TraceArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  /// Chrome phases: B/E (nested begin/end), X (complete, with duration),
  /// i (instant).
  enum class Phase { Begin, End, Complete, Instant };

  std::string name;
  std::string category;
  Phase phase = Phase::Instant;
  double ts_us = 0.0;        ///< microseconds (monotonic or simulated)
  double dur_us = 0.0;       ///< Complete only
  long long tid = 0;         ///< thread id (native) or VM id (sim)
  std::uint64_t span_id = 0; ///< pairs Begin/End; unique per span; 0 = none
  std::uint64_t seq = 0;     ///< global record order (ties in ts)
  TraceArgs args;
};

/// One reconstructed span (Begin..End pair or a Complete event) with its
/// nested children — the compact in-memory tree the golden-trace tests
/// assert against.
struct SpanNode {
  std::string name;
  std::string category;
  double start_us = 0.0;
  double end_us = 0.0;
  long long tid = 0;
  std::uint64_t span_id = 0;
  TraceArgs args;            ///< Begin args followed by End args
  std::vector<SpanNode> children;
};

struct SpanTree {
  /// Top-level spans per thread/VM row, in start order.
  std::vector<std::pair<long long, std::vector<SpanNode>>> roots_by_tid;
  /// Structural violations: orphan End, End out of Begin order, Begin
  /// never closed. Empty = well-nested.
  std::vector<std::string> errors;

  std::size_t span_count() const;  ///< total spans across all rows
  const std::vector<SpanNode>* roots_for(long long tid) const;
};

/// Fold a (ts, seq)-ordered event list into nested spans. Instant events
/// do not create spans; Complete events become childless spans.
SpanTree build_span_tree(const std::vector<TraceEvent>& events);

/// Minimal parser for the Chrome JSON this module emits (object with a
/// "traceEvents" array of flat event objects). Throws ParseError on
/// malformed input. Exists so tests — and the CLI's self-check — can
/// prove the export round-trips.
std::vector<TraceEvent> parse_chrome_trace(std::string_view json);

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds of monotonic time since construction.
  double now_us() const;

  /// Open a nested span on the calling thread; returns its span id.
  std::uint64_t begin_span(std::string_view name, std::string_view category,
                           TraceArgs args = {});
  /// Close the span (must be called on the opening thread for the tree to
  /// stay well-nested). `args` lands on the End event (e.g. outcome).
  void end_span(std::uint64_t span_id, TraceArgs args = {});

  /// Record a span with explicit timing (simulated executors).
  void complete_span(std::string_view name, std::string_view category,
                     double ts_us, double dur_us, long long tid,
                     TraceArgs args = {});
  /// Point event with explicit timing; `tid` < 0 uses the calling thread
  /// and the recorder clock.
  void instant(std::string_view name, std::string_view category,
               double ts_us = -1.0, long long tid = -1, TraceArgs args = {});

  std::size_t event_count() const;
  /// All events merged across shards, sorted by (ts, record order).
  std::vector<TraceEvent> events() const;
  /// Chrome JSON: {"traceEvents":[...]}.
  std::string to_chrome_json() const;

 private:
  void record(TraceEvent event);

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable Mutex mutex{"obs.trace.shard"};
    std::vector<TraceEvent> events SCIDOCK_GUARDED_BY(mutex);
  };

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> next_span_id_{1};
  std::atomic<std::uint64_t> next_seq_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: opens on construction, closes on destruction. Null recorder
/// = zero work. `set_arg` accumulates args attached to the End event.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string_view name,
             std::string_view category, TraceArgs args = {})
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      id_ = recorder_->begin_span(name, category, std::move(args));
    }
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->end_span(id_, std::move(end_args_));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_arg(std::string key, std::string value) {
    if (recorder_ != nullptr) {
      end_args_.emplace_back(std::move(key), std::move(value));
    }
  }

 private:
  TraceRecorder* recorder_;
  std::uint64_t id_ = 0;
  TraceArgs end_args_;
};

}  // namespace scidock::obs

/// Scoped instrumentation macro: traces the enclosing block. `recorder`
/// is a TraceRecorder* and may be null (no-op).
#define SCIDOCK_OBS_CONCAT_INNER(a, b) a##b
#define SCIDOCK_OBS_CONCAT(a, b) SCIDOCK_OBS_CONCAT_INNER(a, b)
#define SCIDOCK_TRACE_SPAN(recorder, name, category)        \
  ::scidock::obs::ScopedSpan SCIDOCK_OBS_CONCAT(            \
      scidock_scoped_span_, __LINE__)((recorder), (name), (category))
