file(REMOVE_RECURSE
  "libscidock_chaos.a"
)
