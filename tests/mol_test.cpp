// Unit tests for the molecule model: elements, perception, typing,
// charges, torsion trees, RMSD.

#include <gtest/gtest.h>

#include <numbers>

#include "mol/atom_typing.hpp"
#include "util/error.hpp"
#include "mol/charges.hpp"
#include "mol/elements.hpp"
#include "mol/molecule.hpp"
#include "mol/prepare.hpp"
#include "mol/torsion.hpp"

namespace scidock::mol {
namespace {

Atom make_atom(Element e, Vec3 pos, std::string name = "X") {
  Atom a;
  a.element = e;
  a.pos = pos;
  a.name = std::move(name);
  return a;
}

/// Ethanol-like chain: C-C-O-H plus hydrogens on carbons.
Molecule ethanol() {
  Molecule m{"ETH"};
  const int c1 = m.add_atom(make_atom(Element::C, {0, 0, 0}, "C1"));
  const int c2 = m.add_atom(make_atom(Element::C, {1.5, 0, 0}, "C2"));
  const int o = m.add_atom(make_atom(Element::O, {2.2, 1.2, 0}, "O1"));
  const int h = m.add_atom(make_atom(Element::H, {3.1, 1.2, 0}, "HO"));
  const int h1 = m.add_atom(make_atom(Element::H, {-0.6, 0.9, 0}, "H1"));
  const int h2 = m.add_atom(make_atom(Element::H, {-0.6, -0.9, 0}, "H2"));
  m.add_bond(c1, c2);
  m.add_bond(c2, o);
  m.add_bond(o, h);
  m.add_bond(c1, h1);
  m.add_bond(c1, h2);
  return m;
}

/// Benzene ring (aromatic bonds).
Molecule benzene() {
  Molecule m{"BNZ"};
  for (int i = 0; i < 6; ++i) {
    const double ang = 2.0 * std::numbers::pi * i / 6.0;
    m.add_atom(make_atom(Element::C, {1.39 * std::cos(ang), 1.39 * std::sin(ang), 0}));
  }
  for (int i = 0; i < 6; ++i) m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic);
  return m;
}

// -------------------------------------------------------------- elements

TEST(Elements, SymbolLookupIsCaseInsensitive) {
  EXPECT_EQ(element_from_symbol("CL"), Element::Cl);
  EXPECT_EQ(element_from_symbol("cl"), Element::Cl);
  EXPECT_EQ(element_from_symbol(" Fe "), Element::Fe);
  EXPECT_EQ(element_from_symbol("Xx"), std::nullopt);
}

TEST(Elements, TableIsConsistent) {
  for (int i = 0; i < element_count(); ++i) {
    const ElementInfo& info = element_info_at(i);
    if (info.element == Element::Unknown) continue;
    EXPECT_GT(info.atomic_number, 0) << info.symbol;
    EXPECT_GT(info.atomic_mass, 0.0) << info.symbol;
    EXPECT_GT(info.covalent_radius, 0.0) << info.symbol;
    EXPECT_GT(info.vdw_radius, info.covalent_radius) << info.symbol;
    EXPECT_EQ(&element_info(info.element), &info);
  }
}

TEST(Elements, PdbAtomNameDeduction) {
  EXPECT_EQ(element_from_pdb_atom_name("CA", true), Element::C);   // alpha C
  EXPECT_EQ(element_from_pdb_atom_name("CA", false), Element::Ca); // ion
  EXPECT_EQ(element_from_pdb_atom_name("CL", false), Element::Cl);
  EXPECT_EQ(element_from_pdb_atom_name("HG", false), Element::Hg);
  EXPECT_EQ(element_from_pdb_atom_name("1HB", true), Element::H);
  EXPECT_EQ(element_from_pdb_atom_name("OD1", true), Element::O);
  EXPECT_EQ(element_from_pdb_atom_name("", true), Element::Unknown);
}

TEST(Elements, MetalsFlagged) {
  EXPECT_TRUE(element_info(Element::Zn).is_metal);
  EXPECT_TRUE(element_info(Element::Hg).is_metal);
  EXPECT_FALSE(element_info(Element::C).is_metal);
}

// ---------------------------------------------------------- atom typing

TEST(AtomTyping, ParamsRoundTripByName) {
  for (int t = 0; t < kAdTypeCount; ++t) {
    const auto type = static_cast<AdType>(t);
    EXPECT_EQ(ad_type_from_name(ad_type_name(type)), type);
  }
  EXPECT_EQ(ad_type_from_name("ZZ"), std::nullopt);
}

TEST(AtomTyping, HgIsUnsupported) {
  EXPECT_FALSE(ad_type_params(AdType::Hg).supported);
  for (int t = 0; t < kAdTypeCount; ++t) {
    if (static_cast<AdType>(t) != AdType::Hg) {
      EXPECT_TRUE(ad_type_params(static_cast<AdType>(t)).supported);
    }
  }
}

TEST(AtomTyping, ContextRules) {
  AtomContext ctx;
  ctx.element = Element::H;
  EXPECT_EQ(assign_ad_type(ctx), AdType::H);
  ctx.bonded_to_hetero = true;
  EXPECT_EQ(assign_ad_type(ctx), AdType::HD);  // polar hydrogen

  ctx = {};
  ctx.element = Element::C;
  EXPECT_EQ(assign_ad_type(ctx), AdType::C);
  ctx.aromatic = true;
  EXPECT_EQ(assign_ad_type(ctx), AdType::A);

  ctx = {};
  ctx.element = Element::N;
  ctx.heavy_degree = 2;
  EXPECT_EQ(assign_ad_type(ctx), AdType::NA);  // free lone pair
  ctx.has_hydrogen = true;
  EXPECT_EQ(assign_ad_type(ctx), AdType::N);

  ctx = {};
  ctx.element = Element::O;
  EXPECT_EQ(assign_ad_type(ctx), AdType::OA);
}

TEST(AtomTyping, VinaKinds) {
  EXPECT_TRUE(vina_kind(AdType::H).skip);
  EXPECT_TRUE(vina_kind(AdType::HD).skip);
  EXPECT_FALSE(vina_kind(AdType::C).skip);
  EXPECT_TRUE(vina_kind(AdType::C).hydrophobic);
  EXPECT_TRUE(vina_kind(AdType::OA).acceptor);
  EXPECT_TRUE(vina_kind(AdType::HD).donor);
  EXPECT_GT(vina_kind(AdType::C).radius, 1.0);
}

// ------------------------------------------------------------- molecule

TEST(Molecule, PerceptionBuildsAdjacency) {
  Molecule m = ethanol();
  m.perceive();
  EXPECT_EQ(m.neighbors(0).size(), 3u);  // C1: C2, H1, H2
  EXPECT_EQ(m.neighbors(2).size(), 2u);  // O: C2, HO
  EXPECT_FALSE(m.in_ring(0));
}

TEST(Molecule, EthanolTyping) {
  Molecule m = ethanol();
  m.perceive();
  EXPECT_EQ(m.atom(0).ad_type, AdType::C);
  EXPECT_EQ(m.atom(2).ad_type, AdType::OA);
  EXPECT_EQ(m.atom(3).ad_type, AdType::HD);  // hydroxyl H
  EXPECT_EQ(m.atom(4).ad_type, AdType::H);   // carbon H
}

TEST(Molecule, BenzeneIsAromaticRing) {
  Molecule m = benzene();
  m.perceive();
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(m.in_ring(i)) << i;
    EXPECT_EQ(m.atom(i).ad_type, AdType::A) << i;
  }
}

TEST(Molecule, RingDetectionViaBridges) {
  // Ring with a tail: atoms 0-1-2 form a triangle, 3 hangs off 0.
  Molecule m{"tri"};
  for (int i = 0; i < 4; ++i) m.add_atom(make_atom(Element::C, {double(i), 0, 0}));
  m.add_bond(0, 1);
  m.add_bond(1, 2);
  m.add_bond(2, 0);
  m.add_bond(0, 3);
  m.perceive();
  EXPECT_TRUE(m.in_ring(0));
  EXPECT_TRUE(m.in_ring(1));
  EXPECT_TRUE(m.in_ring(2));
  EXPECT_FALSE(m.in_ring(3));
}

TEST(Molecule, GeometryHelpers) {
  Molecule m = ethanol();
  EXPECT_EQ(m.heavy_atom_count(), 3);
  EXPECT_GT(m.molecular_weight(), 40.0);
  EXPECT_LT(m.molecular_weight(), 50.0);  // C2H6O = 46
  EXPECT_TRUE(m.contains_element(Element::O));
  EXPECT_FALSE(m.contains_element(Element::Hg));
  const Vec3 before = m.center();
  m.translate({1, 2, 3});
  const Vec3 after = m.center();
  EXPECT_NEAR(after.x - before.x, 1.0, 1e-12);
  EXPECT_NEAR(after.z - before.z, 3.0, 1e-12);
}

TEST(Molecule, RotationPreservesInternalDistances) {
  Molecule m = ethanol();
  const double d_before = distance(m.atom(0).pos, m.atom(2).pos);
  m.rotate(Quaternion::from_axis_angle({1, 1, 0}, 1.0), m.center());
  EXPECT_NEAR(distance(m.atom(0).pos, m.atom(2).pos), d_before, 1e-12);
}

TEST(Molecule, InferBondsFromGeometryRecoversEthanol) {
  Molecule m = ethanol();
  const int expected_bonds = m.bond_count();
  Molecule no_bonds{"copy"};
  for (const Atom& a : m.atoms()) no_bonds.add_atom(a);
  no_bonds.infer_bonds_from_geometry();
  EXPECT_EQ(no_bonds.bond_count(), expected_bonds);
}

TEST(Molecule, PerceiveRetypeFalseKeepsTypes) {
  Molecule m = ethanol();
  m.perceive();
  m.mutable_atom(0).ad_type = AdType::Fe;  // deliberately wrong
  m.perceive(/*retype=*/false);
  EXPECT_EQ(m.atom(0).ad_type, AdType::Fe);
  Molecule m2 = ethanol();
  m2.perceive(/*retype=*/true);
  EXPECT_EQ(m2.atom(0).ad_type, AdType::C);
}

TEST(Molecule, FullyParameterised) {
  Molecule m = ethanol();
  m.perceive();
  EXPECT_TRUE(m.fully_parameterised());
  Molecule hg{"HG"};
  hg.add_atom(make_atom(Element::Hg, {0, 0, 0}));
  hg.perceive();
  EXPECT_FALSE(hg.fully_parameterised());
}

TEST(Molecule, AdTypesPresentSortedUnique) {
  Molecule m = ethanol();
  m.perceive();
  const auto types = m.ad_types_present();
  EXPECT_EQ(types.size(), 4u);  // H, HD, C, OA
  for (std::size_t i = 1; i < types.size(); ++i) {
    EXPECT_LT(static_cast<int>(types[i - 1]), static_cast<int>(types[i]));
  }
}

// -------------------------------------------------------------- charges

TEST(Charges, NetChargeIsZero) {
  Molecule m = ethanol();
  assign_gasteiger_charges(m);
  EXPECT_NEAR(total_charge(m), 0.0, 1e-9);
}

TEST(Charges, ElectronegativityOrdering) {
  Molecule m = ethanol();
  assign_gasteiger_charges(m);
  // Oxygen pulls density: most negative atom; its hydroxyl H most positive.
  EXPECT_LT(m.atom(2).partial_charge, 0.0);
  EXPECT_GT(m.atom(3).partial_charge, 0.0);
  EXPECT_LT(m.atom(2).partial_charge, m.atom(0).partial_charge);
}

TEST(Charges, DeterministicAcrossRuns) {
  Molecule a = ethanol();
  Molecule b = ethanol();
  assign_gasteiger_charges(a);
  assign_gasteiger_charges(b);
  for (int i = 0; i < a.atom_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.atom(i).partial_charge, b.atom(i).partial_charge);
  }
}

// -------------------------------------------------------------- torsion

TEST(Torsion, EthanolHasOneRotatableBond) {
  Molecule m = ethanol();
  m.perceive();
  const TorsionTree tree = TorsionTree::build(m);
  // C1-C2 splits {C1,H1,H2} | {C2,O,H}: both sides >= 2 heavy? C1 side has
  // only one heavy atom, so only C2-O qualifies... with min_fragment=2 the
  // C2-O bond leaves {O,H} = 1 heavy: no rotatable bonds at all.
  EXPECT_EQ(tree.torsion_count(), 0);
  // With min_fragment=1 both backbone bonds rotate.
  const TorsionTree loose = TorsionTree::build(m, 1);
  EXPECT_EQ(loose.torsion_count(), 2);
  EXPECT_EQ(loose.degrees_of_freedom(), 8);
}

TEST(Torsion, RingBondsAreRigid) {
  Molecule m = benzene();
  m.perceive();
  EXPECT_EQ(TorsionTree::build(m, 1).torsion_count(), 0);
}

TEST(Torsion, BiphenylLinkRotates) {
  // Two rings joined by a single bond: exactly one torsion.
  Molecule m{"biphenyl"};
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < 6; ++i) {
      const double ang = 2.0 * std::numbers::pi * i / 6.0;
      m.add_atom(make_atom(Element::C,
                           {1.39 * std::cos(ang) + r * 5.0, 1.39 * std::sin(ang), 0}));
    }
  }
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < 6; ++i) {
      m.add_bond(r * 6 + i, r * 6 + (i + 1) % 6, BondOrder::Aromatic);
    }
  }
  m.add_bond(0, 6, BondOrder::Single);
  m.perceive();
  const TorsionTree tree = TorsionTree::build(m);
  EXPECT_EQ(tree.torsion_count(), 1);
  EXPECT_EQ(tree.root_atoms().size(), 6u);  // one ring is the root
  EXPECT_EQ(tree.branches()[0].moving_atoms.size(), 5u);  // other ring minus pivot
}

TEST(Torsion, ApplyIdentityReproducesReference) {
  Molecule m = ethanol();
  m.perceive();
  const TorsionTree tree = TorsionTree::build(m, 1);
  const auto ref = m.coordinates();
  const auto out = tree.apply(ref, Pose{}, std::vector<double>(2, 0.0));
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(distance(ref[i], out[i]), 0.0, 1e-12);
  }
}

TEST(Torsion, ApplyPreservesBondLengths) {
  Molecule m = ethanol();
  m.perceive();
  const TorsionTree tree = TorsionTree::build(m, 1);
  Pose pose;
  pose.rotation = Quaternion::from_axis_angle({1, 2, 3}, 0.8);
  pose.translation = {4, -2, 1};
  const auto out = tree.apply(m.coordinates(), pose, {0.9, -1.3});
  for (const Bond& b : m.bonds()) {
    const double before = distance(m.atom(b.a).pos, m.atom(b.b).pos);
    const double after = distance(out[static_cast<std::size_t>(b.a)],
                                  out[static_cast<std::size_t>(b.b)]);
    EXPECT_NEAR(before, after, 1e-9);
  }
}

TEST(Torsion, TorsionMovesOnlyTheBranch) {
  Molecule m = ethanol();
  m.perceive();
  const TorsionTree tree = TorsionTree::build(m, 1);
  const auto ref = m.coordinates();
  std::vector<double> angles(2, 0.0);
  angles[0] = 1.0;
  const auto out = tree.apply(ref, Pose{}, angles);
  // Root atoms stay put.
  for (int i : tree.root_atoms()) {
    EXPECT_NEAR(distance(ref[static_cast<std::size_t>(i)],
                         out[static_cast<std::size_t>(i)]),
                0.0, 1e-9);
  }
  // At least one moving atom moved.
  double moved = 0.0;
  for (int i : tree.branches()[0].moving_atoms) {
    moved += distance(ref[static_cast<std::size_t>(i)],
                      out[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(moved, 0.1);
}

// ---------------------------------------------------------------- RMSD

TEST(Rmsd, ZeroForIdentical) {
  const std::vector<Vec3> a{{0, 0, 0}, {1, 1, 1}};
  EXPECT_DOUBLE_EQ(rmsd(a, a), 0.0);
}

TEST(Rmsd, UniformShift) {
  const std::vector<Vec3> a{{0, 0, 0}, {1, 0, 0}};
  const std::vector<Vec3> b{{3, 0, 0}, {4, 0, 0}};
  EXPECT_DOUBLE_EQ(rmsd(a, b), 3.0);
}

TEST(Rmsd, HeavyAtomOnlyIgnoresHydrogens) {
  Molecule a = ethanol();
  Molecule b = ethanol();
  // Move only a hydrogen: heavy-atom RMSD unaffected.
  b.mutable_atom(4).pos += Vec3{5, 0, 0};
  EXPECT_DOUBLE_EQ(heavy_atom_rmsd(a, b), 0.0);
  b.mutable_atom(0).pos += Vec3{3, 0, 0};
  EXPECT_GT(heavy_atom_rmsd(a, b), 1.0);
}

// -------------------------------------------------------------- prepare

TEST(Prepare, LigandGetsChargesTypesTorsionsPdbqt) {
  const mol::PreparedLigand prep = prepare_ligand(ethanol());
  EXPECT_NEAR(total_charge(prep.molecule), 0.0, 1e-9);
  EXPECT_FALSE(prep.pdbqt.empty());
  EXPECT_NE(prep.pdbqt.find("ROOT"), std::string::npos);
  EXPECT_NE(prep.pdbqt.find("TORSDOF"), std::string::npos);
}

TEST(Prepare, ReceptorStripsWaters) {
  Molecule m = ethanol();
  Atom water = make_atom(Element::O, {30, 0, 0}, "O");
  water.residue_name = "HOH";
  water.hetero = true;
  m.add_atom(water);
  const PreparedReceptor prep = prepare_receptor(m);
  EXPECT_EQ(prep.molecule.atom_count(), 6);  // water removed
}

TEST(Prepare, ReceptorRejectsHg) {
  Molecule m = ethanol();
  m.add_atom(make_atom(Element::Hg, {10, 0, 0}, "HG"));
  EXPECT_THROW(prepare_receptor(m), ActivityError);
  ReceptorPrepareOptions opts;
  opts.reject_unparameterised_atoms = false;
  EXPECT_NO_THROW(prepare_receptor(m, opts));
}

TEST(Prepare, EmptyInputsRejected) {
  EXPECT_THROW(prepare_ligand(Molecule{"empty"}), Error);
  EXPECT_THROW(prepare_receptor(Molecule{"empty"}), Error);
}

}  // namespace
}  // namespace scidock::mol
