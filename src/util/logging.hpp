#pragma once

/// \file logging.hpp
/// Minimal leveled logger. Thread-safe; writes to stderr. The default level
/// is Warn so tests and benches stay quiet unless something is wrong.

#include <string>

#include "util/strings.hpp"  // strformat, used by the SCIDOCK_LOG_* macros

namespace scidock {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Core sink; prefer the SCIDOCK_LOG_* macros which skip argument
/// formatting when the level is disabled.
void log_message(LogLevel level, const std::string& message);

}  // namespace scidock

#define SCIDOCK_LOG_AT(level, ...)                                   \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::scidock::log_level())) {                  \
      ::scidock::log_message(level, ::scidock::strformat(__VA_ARGS__)); \
    }                                                                \
  } while (false)

#define SCIDOCK_LOG_DEBUG(...) SCIDOCK_LOG_AT(::scidock::LogLevel::Debug, __VA_ARGS__)
#define SCIDOCK_LOG_INFO(...) SCIDOCK_LOG_AT(::scidock::LogLevel::Info, __VA_ARGS__)
#define SCIDOCK_LOG_WARN(...) SCIDOCK_LOG_AT(::scidock::LogLevel::Warn, __VA_ARGS__)
#define SCIDOCK_LOG_ERROR(...) SCIDOCK_LOG_AT(::scidock::LogLevel::Error, __VA_ARGS__)
