# Empty dependencies file for scidock_cli.
# This may be replaced when dependencies are built.
