#pragma once

/// \file pose_batch.hpp
/// SoA pose batching for the docking inner loops (DESIGN.md §13).
///
/// The scalar hot path evaluates one pose and one atom at a time through
/// std::vector<mol::Vec3> (AoS). A PoseBatch repacks the explicit atom
/// coordinates of a group of poses into lane-blocked SoA planes:
///
///   plane(block, atom) -> [x of pose lane 0, x of pose lane 1, ...]
///
/// i.e. within one lane block (simd::f64x::kWidth poses), the same
/// coordinate of the same atom across all poses is contiguous and
/// cache-line aligned — exactly the layout the batched energy kernels
/// (energy.hpp) load with one SIMD instruction. Pose counts that are not a
/// multiple of the lane width pad the final block by replicating the last
/// pose: padding lanes compute like any other lane (no branches, no NaNs
/// leaking into masks) and callers simply ignore their results.

#include <vector>

#include "dock/conformation.hpp"
#include "mol/geometry.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

namespace scidock::dock {

class PoseBatch {
 public:
  static constexpr int kLaneWidth = simd::f64x::kWidth;

  PoseBatch() = default;

  /// Shape the buffer for `poses` poses of `atoms` atoms each. Reuses
  /// capacity across calls — engines keep one PoseBatch per generation.
  void resize(int poses, int atoms);

  /// Scatter one pose's explicit coordinates into the planes.
  /// `coords.size()` must equal atom_count().
  void set_pose(int pose, const std::vector<mol::Vec3>& coords);

  /// Replicate the last real pose into the padding lanes of the final
  /// block. Call once after the last set_pose and before evaluation.
  void pad_tail();

  int pose_count() const { return pose_count_; }
  int atom_count() const { return atom_count_; }
  int lane_blocks() const { return lane_blocks_; }

  /// Lane plane of one coordinate of one atom in one block: kLaneWidth
  /// contiguous, aligned doubles (one per pose lane).
  const double* x_plane(int block, int atom) const {
    return x_.data() + plane_offset(block, atom);
  }
  const double* y_plane(int block, int atom) const {
    return y_.data() + plane_offset(block, atom);
  }
  const double* z_plane(int block, int atom) const {
    return z_.data() + plane_offset(block, atom);
  }

  /// Number of real (non-padding) poses in `block`.
  int lanes_in_block(int block) const {
    const int remaining = pose_count_ - block * kLaneWidth;
    return remaining < kLaneWidth ? remaining : kLaneWidth;
  }

 private:
  std::size_t plane_offset(int block, int atom) const {
    return (static_cast<std::size_t>(block) *
                static_cast<std::size_t>(atom_count_) +
            static_cast<std::size_t>(atom)) *
           static_cast<std::size_t>(kLaneWidth);
  }

  int pose_count_ = 0;
  int atom_count_ = 0;
  int lane_blocks_ = 0;
  util::aligned_vector<double> x_, y_, z_;
};

}  // namespace scidock::dock
