// Race-freedom suite (DESIGN.md §14). The negative controls plant the
// real hazard *shapes* on purpose — an unguarded counter (RC001), reads
// racing writes (RC002), an object published across threads with no
// happens-before edge (RC003) and an order-sensitive reduction (RC004) —
// and assert on the exact rule IDs, both access sites and the
// missing-edge diagnosis the analyzer reports. The racing accesses are
// sequenced with *real but uninstrumented* synchronisation (std::thread
// join, seq_cst flags), so each report is deterministic and the test
// binary itself is ThreadSanitizer-clean; the genuinely racy fixtures
// for the TSan cross-check live in racer_planted_main.cpp instead.
// Positive controls prove the owned edges (named Mutex, ThreadPool
// fork/join, on_hb_* handshake) silence the same shapes, and the bridge
// tests cover obs::publish_racer_metrics, InvariantChecker::check_racer
// and lint::racer_report. Provocation tests skip unless built with
// -DSCIDOCK_RACER=ON; the disabled-behavior test runs (only) when it is
// compiled out, so both configurations exercise this binary.

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "chaos/invariants.hpp"
#include "data/table2.hpp"
#include "lint/diagnostics.hpp"
#include "lint/racer_lint.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "scidock/experiment.hpp"
#include "util/racer.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace scidock {
namespace {

// ---------------------------------------------------------------------------
// Both configurations: stable rule IDs and report names.

TEST(RacerRules, StableRuleIds) {
  EXPECT_EQ(racer::rule_id(racer::ReportKind::kWriteWrite), "RC001");
  EXPECT_EQ(racer::rule_id(racer::ReportKind::kReadWrite), "RC002");
  EXPECT_EQ(racer::rule_id(racer::ReportKind::kUnsyncPublish), "RC003");
  EXPECT_EQ(racer::rule_id(racer::ReportKind::kOrderNondeterminism), "RC004");
  EXPECT_EQ(racer::to_string(racer::ReportKind::kWriteWrite),
            "write-write race");
  EXPECT_EQ(racer::to_string(racer::ReportKind::kReadWrite),
            "read-write race");
  EXPECT_EQ(racer::to_string(racer::ReportKind::kUnsyncPublish),
            "unsynchronized publish");
  EXPECT_EQ(racer::to_string(racer::ReportKind::kOrderNondeterminism),
            "order nondeterminism");
}

// ---------------------------------------------------------------------------
// Compiled-out configuration: every entry point must be inert and every
// bridge trivially clean, so OFF builds pay nothing and fail nothing.

TEST(RacerDisabled, AllBridgesAreInertWhenCompiledOut) {
  if (racer::compiled_in()) {
    GTEST_SKIP() << "built with SCIDOCK_RACER=ON";
  }
  EXPECT_NE(racer::format_report().find("disabled"), std::string::npos);
  EXPECT_TRUE(racer::clean());
  EXPECT_TRUE(racer::findings().empty());
  EXPECT_EQ(racer::counters().reads, 0);
  EXPECT_FALSE(racer::enabled());

  // Cell is a bare T; the macros and edges are no-ops that still compile.
  racer::Cell<int> cell{5, "test.off.cell"};
  EXPECT_EQ(cell.read(), 5);
  cell.write(6);
  cell.mutate() += 1;
  EXPECT_EQ(cell.read(), 7);
  int raw = 0;
  SCIDOCK_RACER_TRACK(raw, "test.off.raw");
  SCIDOCK_RACER_WRITE(raw);
  raw = 1;
  SCIDOCK_RACER_READ(raw);
  SCIDOCK_RACER_UNTRACK(raw);
  EXPECT_EQ(raw, 1);
  racer::TaskEdge edge = racer::on_task_spawn();
  {
    racer::TaskRun run(edge);
  }
  racer::on_task_join(edge);
  racer::on_reduction("test.off.red", 1, 2);
  EXPECT_TRUE(racer::reduction_snapshot().empty());
  EXPECT_EQ(racer::compare_reduction_snapshots({}, {}, "a", "b"), 0);

  chaos::InvariantChecker checker;
  EXPECT_TRUE(checker.check_racer());
  EXPECT_TRUE(checker.ok());

  EXPECT_TRUE(lint::racer_report().clean());

  obs::MetricsRegistry registry;
  obs::publish_racer_metrics(registry);
  EXPECT_EQ(registry.series_count(), 0u);
}

// ---------------------------------------------------------------------------
// Compiled-in configuration. Each test resets the analyzer; tracked
// objects and reductions are named after their test so shadow state
// can never entangle across tests.

class RacerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!racer::compiled_in()) {
      GTEST_SKIP() << "requires -DSCIDOCK_RACER=ON";
    }
#if SCIDOCK_RACER_ENABLED
    racer::reset();
    racer::set_enabled(true);
#endif
  }

  void TearDown() override {
#if SCIDOCK_RACER_ENABLED
    if (!racer::compiled_in()) return;
    racer::set_enabled(true);
    racer::reset();
#endif
  }
};

#if SCIDOCK_RACER_ENABLED

std::optional<racer::Finding> first_finding(racer::ReportKind kind) {
  for (const racer::Finding& f : racer::findings()) {
    if (f.kind == kind) return f;
  }
  return std::nullopt;
}

bool has_site(const std::string& text, int line) {
  return text.find("racer_test.cpp:" + std::to_string(line)) !=
         std::string::npos;
}

#endif  // SCIDOCK_RACER_ENABLED

// Negative control 1 (ISSUE acceptance): the unguarded counter. A pool-
// style fork edge makes the worker a known accessor of the cell, then
// main writes again without a join edge — RC001 with both file:line
// sites and the missing-edge diagnosis. The std::thread::join keeps the
// accesses truly ordered (no UB here); the analyzer just cannot see it,
// which is exactly the unguarded counter's bug.
TEST_F(RacerTest, UnguardedCounterReportsWriteWriteRaceWithBothSites) {
#if SCIDOCK_RACER_ENABLED
  racer::Cell<int> counter{0, "test.rc001.counter"};
  racer::TaskEdge edge = racer::on_task_spawn();
  int thread_line = 0;
  std::thread t([&] {
    racer::TaskRun run(edge);
    thread_line = __LINE__ + 1;
    counter.write(1);
  });
  t.join();  // real order, but no racer::on_task_join: edge unknown
  const int main_line = __LINE__ + 1;
  counter.write(2);

  EXPECT_FALSE(racer::clean());
  EXPECT_EQ(racer::finding_count(racer::ReportKind::kWriteWrite), 1u);
  const auto f = first_finding(racer::ReportKind::kWriteWrite);
  ASSERT_TRUE(f.has_value()) << racer::format_report();
  EXPECT_TRUE(f->is_error);
  EXPECT_EQ(f->object, "test.rc001.counter");
  EXPECT_NE(f->message.find("write-write race"), std::string::npos)
      << f->message;
  // Both access sites, exactly.
  EXPECT_NE(f->file.find("racer_test.cpp"), std::string::npos) << f->file;
  EXPECT_EQ(f->line, main_line);
  EXPECT_NE(f->prior_file.find("racer_test.cpp"), std::string::npos);
  EXPECT_EQ(f->prior_line, thread_line);
  EXPECT_TRUE(has_site(f->details, main_line)) << f->details;
  EXPECT_TRUE(has_site(f->details, thread_line)) << f->details;
  // The diagnosis says why there is no edge and how to add one.
  EXPECT_NE(f->details.find("neither access holds a lock"),
            std::string::npos)
      << f->details;
  EXPECT_NE(f->details.find("missing edge"), std::string::npos) << f->details;
  EXPECT_NE(racer::format_report().find("[RC001]"), std::string::npos);
#endif
}

// The guarded twin: the same counter shape under a named Mutex is clean —
// the release→acquire edges order every mutation.
TEST_F(RacerTest, GuardedCounterIsClean) {
#if SCIDOCK_RACER_ENABLED
  Mutex guard{"test.racer.guard"};
  racer::Cell<long> counter{0, "test.racer.guarded_counter"};
  racer::TaskEdge e1 = racer::on_task_spawn();
  racer::TaskEdge e2 = racer::on_task_spawn();
  auto work = [&](const racer::TaskEdge& edge) {
    racer::TaskRun run(edge);
    for (int i = 0; i < 100; ++i) {
      MutexLock lock(guard);
      counter.mutate() += 1;
    }
  };
  std::thread t1(work, std::cref(e1));
  std::thread t2(work, std::cref(e2));
  t1.join();
  t2.join();
  racer::on_task_join(e1);
  racer::on_task_join(e2);
  EXPECT_EQ(counter.read(), 200);
  EXPECT_TRUE(racer::clean()) << racer::format_report();
  EXPECT_TRUE(racer::findings().empty());
  EXPECT_GE(racer::counters().mutex_edges, 1);
  EXPECT_NE(racer::format_report().find("clean"), std::string::npos);
#endif
}

// Negative control 2: a read unordered with the last write is RC002,
// again with both sites.
TEST_F(RacerTest, ReadUnorderedWithWriteIsRC002) {
#if SCIDOCK_RACER_ENABLED
  racer::Cell<int> cell{0, "test.rc002.cell"};
  racer::TaskEdge edge = racer::on_task_spawn();
  int write_line = 0;
  std::thread t([&] {
    racer::TaskRun run(edge);
    write_line = __LINE__ + 1;
    cell.write(3);
  });
  t.join();  // no racer join edge
  const int read_line = __LINE__ + 1;
  const int seen = cell.read();
  EXPECT_EQ(seen, 3);

  EXPECT_EQ(racer::finding_count(racer::ReportKind::kReadWrite), 1u);
  const auto f = first_finding(racer::ReportKind::kReadWrite);
  ASSERT_TRUE(f.has_value()) << racer::format_report();
  EXPECT_TRUE(f->is_error);
  EXPECT_NE(f->message.find("read-write race"), std::string::npos);
  EXPECT_EQ(f->line, read_line);
  EXPECT_EQ(f->prior_line, write_line);
  EXPECT_NE(racer::format_report().find("[RC002]"), std::string::npos);
#endif
}

// The reads list works in the other direction too: a write unordered
// with a prior *read* from another thread is the same RC002.
TEST_F(RacerTest, WriteUnorderedWithReadIsRC002) {
#if SCIDOCK_RACER_ENABLED
  racer::Cell<int> cell{0, "test.rc002w.cell"};
  racer::TaskEdge edge = racer::on_task_spawn();
  int read_line = 0;
  int seen = 0;
  std::thread t([&] {
    racer::TaskRun run(edge);
    read_line = __LINE__ + 1;
    seen = cell.read();
  });
  t.join();
  EXPECT_EQ(seen, 0);
  const int write_line = __LINE__ + 1;
  cell.write(9);

  EXPECT_EQ(racer::finding_count(racer::ReportKind::kReadWrite), 1u);
  const auto f = first_finding(racer::ReportKind::kReadWrite);
  ASSERT_TRUE(f.has_value()) << racer::format_report();
  EXPECT_EQ(f->line, write_line);
  EXPECT_EQ(f->prior_line, read_line);
  EXPECT_NE(f->message.find("write at"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("read at"), std::string::npos) << f->message;
#endif
}

// Negative control 3: the first time another thread touches an object
// with no happens-before edge since its last write, the report is the
// publish-specific RC003, not a generic race.
TEST_F(RacerTest, UnsynchronizedPublishIsRC003) {
#if SCIDOCK_RACER_ENABLED
  const int track_line = __LINE__ + 1;
  racer::Cell<int> obj{7, "test.rc003.obj"};
  int read_line = 0;
  int seen = 0;
  std::thread t([&] {  // no fork edge at all: the object just escapes
    read_line = __LINE__ + 1;
    seen = obj.read();
  });
  t.join();
  EXPECT_EQ(seen, 7);

  EXPECT_EQ(racer::finding_count(racer::ReportKind::kUnsyncPublish), 1u);
  EXPECT_EQ(racer::finding_count(racer::ReportKind::kReadWrite), 0u);
  const auto f = first_finding(racer::ReportKind::kUnsyncPublish);
  ASSERT_TRUE(f.has_value()) << racer::format_report();
  EXPECT_TRUE(f->is_error);
  EXPECT_NE(f->message.find("unsynchronized publish of 'test.rc003.obj'"),
            std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("first access from another thread"),
            std::string::npos)
      << f->message;
  EXPECT_EQ(f->line, read_line);
  EXPECT_EQ(f->prior_line, track_line);  // tracking is the initial write
  EXPECT_NE(racer::format_report().find("[RC003]"), std::string::npos);
#endif
}

// The publish-handshake positive control: on_hb_release before the
// handoff and on_hb_acquire after observing it silence RC003 — this is
// the single-flight grid-map pattern.
TEST_F(RacerTest, HbHandshakeOrdersPublishAcrossThreads) {
#if SCIDOCK_RACER_ENABLED
  int payload = 0;
  int token = 0;  // any stable address keys the handshake
  SCIDOCK_RACER_TRACK(payload, "test.racer.payload");
  SCIDOCK_RACER_WRITE(payload);
  payload = 42;
  racer::on_hb_release(&token, "test.racer.flight");
  int seen = 0;
  std::thread t([&] {
    racer::on_hb_acquire(&token, "test.racer.flight");
    SCIDOCK_RACER_READ(payload);
    seen = payload;
  });
  t.join();
  EXPECT_EQ(seen, 42);
  EXPECT_TRUE(racer::findings().empty()) << racer::format_report();
  EXPECT_GE(racer::counters().hb_edges, 2);
  SCIDOCK_RACER_UNTRACK(payload);
#endif
}

// parallel_for's fork and join edges make the per-index-bucket idiom
// (native executor's final_tuples) clean: each bucket is written by one
// task and read by main only after the join.
TEST_F(RacerTest, ParallelForJoinEdgesMakePerIndexBucketsClean) {
#if SCIDOCK_RACER_ENABLED
  ThreadPool pool(2);
  std::array<int, 8> buckets{};
  for (auto& b : buckets) {
    SCIDOCK_RACER_TRACK(b, "test.racer.bucket");
  }
  pool.parallel_for(buckets.size(), [&](std::size_t i) {
    SCIDOCK_RACER_WRITE(buckets[i]);
    buckets[i] = static_cast<int>(i);
  });
  int sum = 0;
  for (auto& b : buckets) {
    SCIDOCK_RACER_READ(b);
    sum += b;
  }
  EXPECT_EQ(sum, 28);
  EXPECT_TRUE(racer::clean()) << racer::format_report();
  EXPECT_TRUE(racer::findings().empty());
  EXPECT_GE(racer::counters().task_edges, 1);
  for (auto& b : buckets) {
    SCIDOCK_RACER_UNTRACK(b);
  }
#endif
}

// ---- RC004: order nondeterminism in reductions ----

// Two tasks feeding different values into one slot of a reduction is an
// immediate in-run RC004 naming the reduction and the key.
TEST_F(RacerTest, ConflictingContributionInOneRunIsImmediateRC004) {
#if SCIDOCK_RACER_ENABLED
  racer::on_reduction("test.red.inrun", 7, 0x111);
  racer::on_reduction("test.red.inrun", 7, 0x111);  // re-record: fine
  EXPECT_TRUE(racer::findings().empty());
  racer::on_reduction("test.red.inrun", 7, 0x222);
  EXPECT_EQ(racer::finding_count(racer::ReportKind::kOrderNondeterminism),
            1u);
  const auto f = first_finding(racer::ReportKind::kOrderNondeterminism);
  ASSERT_TRUE(f.has_value()) << racer::format_report();
  EXPECT_TRUE(f->is_error);
  EXPECT_EQ(f->object, "test.red.inrun");
  EXPECT_NE(f->message.find("key 7"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("conflicting contributions"), std::string::npos);
  EXPECT_FALSE(racer::clean());
  // Deduped: a third conflicting value on the same key files nothing new.
  racer::on_reduction("test.red.inrun", 7, 0x333);
  EXPECT_EQ(racer::finding_count(racer::ReportKind::kOrderNondeterminism),
            1u);
  EXPECT_NE(racer::format_report().find("[RC004]"), std::string::npos);
#endif
}

// Cross-run diff (1-thread vs N-thread sweep): a per-key hash difference
// is an RC004 *error* naming the culprit reduction and the first
// divergent key.
TEST_F(RacerTest, SnapshotDiffNamesCulpritReductionAndKey) {
#if SCIDOCK_RACER_ENABLED
  racer::on_reduction("test.red.snap", 1, 0xA);
  racer::on_reduction("test.red.snap", 2, 0xB1);
  const racer::ReductionSnapshot one_thread = racer::reduction_snapshot();
  racer::reset();
  racer::on_reduction("test.red.snap", 1, 0xA);
  racer::on_reduction("test.red.snap", 2, 0xB2);
  const racer::ReductionSnapshot four_threads = racer::reduction_snapshot();
  racer::reset();

  EXPECT_EQ(racer::compare_reduction_snapshots(one_thread, four_threads,
                                               "threads=1", "threads=4"),
            1);
  const auto f = first_finding(racer::ReportKind::kOrderNondeterminism);
  ASSERT_TRUE(f.has_value()) << racer::format_report();
  EXPECT_TRUE(f->is_error);
  EXPECT_EQ(f->object, "test.red.snap");
  EXPECT_NE(f->message.find("threads=1"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("threads=4"), std::string::npos) << f->message;
  EXPECT_NE(f->details.find("first divergence: key 2"), std::string::npos)
      << f->details;
  EXPECT_FALSE(racer::clean());
#endif
}

// Identical contributions arriving in a different order: a warning only
// (benign for commutative merges), and clean() stays true.
TEST_F(RacerTest, OrderOnlyDigestDifferenceIsAWarningNotAnError) {
#if SCIDOCK_RACER_ENABLED
  racer::on_reduction("test.red.order", 1, 0xA);
  racer::on_reduction("test.red.order", 2, 0xB);
  const racer::ReductionSnapshot forward = racer::reduction_snapshot();
  racer::reset();
  racer::on_reduction("test.red.order", 2, 0xB);
  racer::on_reduction("test.red.order", 1, 0xA);
  const racer::ReductionSnapshot reversed = racer::reduction_snapshot();
  racer::reset();

  EXPECT_EQ(racer::compare_reduction_snapshots(forward, reversed, "fwd",
                                               "rev"),
            0);
  const auto f = first_finding(racer::ReportKind::kOrderNondeterminism);
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->is_error);
  EXPECT_NE(f->message.find("different order"), std::string::npos)
      << f->message;
  EXPECT_TRUE(racer::clean());
  EXPECT_EQ(racer::counters().findings_warning, 1);
#endif
}

#if SCIDOCK_RACER_ENABLED

/// One planted race run under the chaos schedule-perturbation profile:
/// two pool tasks, rendezvoused through an uninstrumented seq_cst
/// barrier + ticket so the racing accesses are really ordered (TSan has
/// nothing to say) and always land in the same order regardless of the
/// chaos jitter — the *report* must therefore be identical run to run.
std::vector<std::string> run_planted_under_chaos(std::uint64_t seed,
                                                 long long* delays) {
  racer::reset();
  {
    chaos::ChaosEngine engine(chaos::chaos_profile_racer(), seed);
    ThreadPool pool(2);
    pool.set_task_hook(engine.pool_hook());
    racer::Cell<int> cell{0, "test.chaos.cell"};
    std::atomic<int> started{0};
    std::atomic<int> ticket{0};
    auto first = pool.submit([&] {
      started.fetch_add(1);
      while (started.load() < 2) std::this_thread::yield();
      cell.write(1);
      ticket.store(1);
    });
    auto second = pool.submit([&] {
      started.fetch_add(1);
      while (started.load() < 2) std::this_thread::yield();
      while (ticket.load() != 1) std::this_thread::yield();
      cell.write(2);
    });
    first.get();
    second.get();
    *delays = engine.pool_delays_injected();
  }
  std::vector<std::string> lines;
  for (const racer::Finding& f : racer::findings()) {
    // Slot numbers depend on which worker thread registered first, so
    // compare the schedule-independent face of the report: rule,
    // message (object + both sites) and the two site fields.
    lines.push_back(std::string(racer::rule_id(f.kind)) + " " + f.message +
                    " [" + std::to_string(f.prior_line) + "->" +
                    std::to_string(f.line) + "]");
  }
  racer::reset();
  return lines;
}

#endif  // SCIDOCK_RACER_ENABLED

// ISSUE acceptance: under a fixed chaos seed the report is deterministic
// — same findings, same sites, run after run — so a CI failure replays
// exactly.
TEST_F(RacerTest, ReportIsDeterministicUnderFixedChaosSeed) {
#if SCIDOCK_RACER_ENABLED
  long long delays1 = 0;
  long long delays2 = 0;
  const std::vector<std::string> run1 = run_planted_under_chaos(42, &delays1);
  const std::vector<std::string> run2 = run_planted_under_chaos(42, &delays2);
  // Chaos actually perturbed the schedule (every task start is jittered).
  EXPECT_GE(delays1, 2);
  EXPECT_EQ(delays1, delays2);
  // The barrier keeps both tasks unordered; the ticket fixes which write
  // is prior. Exactly one RC001, identical both runs.
  ASSERT_EQ(run1.size(), 1u) << racer::format_report();
  EXPECT_EQ(run1[0].substr(0, 5), "RC001");
  EXPECT_NE(run1[0].find("test.chaos.cell"), std::string::npos) << run1[0];
  EXPECT_EQ(run1, run2);
#endif
}

// The product-level RC004 wiring (ISSUE acceptance): a real screen's
// reductions — the campaign FEB/score accumulation and the AutoGrid
// slab merge — must be keyed identically at 1 thread and N threads.
// A divergence would name the culprit reduction and key; arrival-order
// differences alone are tolerated (warning only).
TEST_F(RacerTest, DockingReductionsAreThreadCountInvariant) {
#if SCIDOCK_RACER_ENABLED
  const std::vector<std::string> all_receptors = data::table2_receptors();
  const std::vector<std::string> all_ligands = data::table2_ligands();
  ASSERT_GE(all_receptors.size(), 2u);
  ASSERT_GE(all_ligands.size(), 3u);
  const std::vector<std::string> receptors(all_receptors.begin(),
                                           all_receptors.begin() + 2);
  const std::vector<std::string> ligands(all_ligands.begin(),
                                         all_ligands.begin() + 3);

  auto run_at = [&](int threads) {
    racer::reset();
    std::size_t rows = 0;
    {
      core::Experiment exp = core::make_experiment(receptors, ligands, 0);
      rows = core::run_native(exp, threads).output.size();
      // scope close: the prov store joins its flusher before the snapshot
    }
    EXPECT_TRUE(racer::clean()) << racer::format_report();
    return std::pair{rows, racer::reduction_snapshot()};
  };
  const auto [rows1, one_thread] = run_at(1);
  const auto [rows3, threaded] = run_at(3);
  racer::reset();

  EXPECT_EQ(rows1, rows3);
  EXPECT_GT(rows1, 0u);
  ASSERT_TRUE(one_thread.count("dock.score.feb"));
  ASSERT_TRUE(one_thread.count("dock.autogrid.slab_merge"));
  EXPECT_EQ(racer::compare_reduction_snapshots(one_thread, threaded,
                                               "threads=1", "threads=3"),
            0)
      << racer::format_report();
  EXPECT_TRUE(racer::clean()) << racer::format_report();
#endif
}

// Runtime kill-switch: with checks disabled (the bench_racer baseline)
// the same shapes record nothing at all.
TEST_F(RacerTest, KillSwitchSuppressesAllBookkeeping) {
#if SCIDOCK_RACER_ENABLED
  racer::set_enabled(false);
  int victim = 0;
  SCIDOCK_RACER_TRACK(victim, "test.kill.victim");
  std::thread t([&] {
    SCIDOCK_RACER_WRITE(victim);
    victim = 1;
  });
  t.join();
  SCIDOCK_RACER_WRITE(victim);
  victim = 2;
  EXPECT_TRUE(racer::findings().empty());
  EXPECT_EQ(racer::counters().writes, 0);
  EXPECT_EQ(racer::counters().cells, 0);
  racer::set_enabled(true);
#endif
}

TEST_F(RacerTest, ResetClearsFindingsAndShadowState) {
#if SCIDOCK_RACER_ENABLED
  racer::Cell<int> obj{1, "test.reset.obj"};
  std::thread t([&] { (void)obj.read(); });
  t.join();
  ASSERT_FALSE(racer::clean());  // RC003 planted
  racer::reset();
  EXPECT_TRUE(racer::clean());
  EXPECT_TRUE(racer::findings().empty());
  EXPECT_EQ(racer::counters().reads, 0);
  EXPECT_EQ(racer::counters().cells, 0);
  // The once-raced object starts from a fresh baseline after reset.
  obj.write(2);
  EXPECT_TRUE(racer::clean()) << racer::format_report();
#endif
}

// ---- bridges ----

TEST_F(RacerTest, PublishMetricsExportsAllSeries) {
#if SCIDOCK_RACER_ENABLED
  racer::Cell<int> cell{0, "test.metrics.cell"};
  cell.write(1);
  (void)cell.read();
  racer::on_reduction("test.metrics.red", 1, 0x1);
  obs::MetricsRegistry registry;
  obs::publish_racer_metrics(registry);
  EXPECT_GT(registry.gauge_value(obs::kRacerThreads), 0.0);
  EXPECT_GT(registry.gauge_value(obs::kRacerTrackedCells), 0.0);
  EXPECT_GE(registry.counter_value(obs::kRacerWrites), 1);
  EXPECT_GE(registry.counter_value(obs::kRacerReductionRecords), 1);
  EXPECT_EQ(registry.counter_value(obs::kRacerFindingsError), 0);

  // Counters are delta-published: re-publishing tracks the global value,
  // never doubles it, and never runs ahead of it.
  const long long after_first = registry.counter_value(obs::kRacerWrites);
  cell.write(2);
  obs::publish_racer_metrics(registry);
  const long long after_second = registry.counter_value(obs::kRacerWrites);
  EXPECT_GE(after_second, after_first + 1);
  EXPECT_LE(after_second, racer::counters().writes);

  const std::string text = registry.to_prometheus_text();
  for (const std::string_view name :
       {obs::kRacerThreads, obs::kRacerSyncObjects, obs::kRacerTrackedCells,
        obs::kRacerReads, obs::kRacerWrites, obs::kRacerMutexEdges,
        obs::kRacerTaskEdges, obs::kRacerHbEdges,
        obs::kRacerReductionRecords, obs::kRacerFindingsError,
        obs::kRacerFindingsWarning}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
#endif
}

TEST_F(RacerTest, InvariantCheckerFlagsErrorsAndToleratesWarnings) {
#if SCIDOCK_RACER_ENABLED
  {
    chaos::InvariantChecker checker;
    EXPECT_TRUE(checker.check_racer());
  }

  // An order-digest warning alone keeps the invariant green.
  racer::on_reduction("test.inv.red", 1, 0xA);
  racer::on_reduction("test.inv.red", 2, 0xB);
  const racer::ReductionSnapshot forward = racer::reduction_snapshot();
  racer::reset();
  racer::on_reduction("test.inv.red", 2, 0xB);
  racer::on_reduction("test.inv.red", 1, 0xA);
  const racer::ReductionSnapshot reversed = racer::reduction_snapshot();
  racer::compare_reduction_snapshots(forward, reversed, "a", "b");
  {
    chaos::InvariantChecker checker;
    EXPECT_TRUE(checker.check_racer()) << checker.to_string();
  }

  // A planted publish breaks it, and the violation names the rule.
  racer::Cell<int> obj{1, "test.inv.obj"};
  std::thread t([&] { (void)obj.read(); });
  t.join();
  chaos::InvariantChecker checker;
  EXPECT_FALSE(checker.check_racer());
  EXPECT_FALSE(checker.ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.to_string().find("RC003"), std::string::npos)
      << checker.to_string();
#endif
}

TEST_F(RacerTest, LintBridgeMapsFindingsToDiagnostics) {
#if SCIDOCK_RACER_ENABLED
  EXPECT_TRUE(lint::racer_report().clean());

  racer::Cell<int> counter{0, "test.lint.counter"};
  racer::TaskEdge edge = racer::on_task_spawn();
  std::thread t([&] {
    racer::TaskRun run(edge);
    counter.write(1);
  });
  t.join();
  counter.write(2);  // RC001, no join edge
  racer::on_reduction("test.lint.red", 1, 0xA);
  racer::on_reduction("test.lint.red", 1, 0xB);  // RC004

  const lint::Report report = lint::racer_report();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.has("RC001"));
  EXPECT_TRUE(report.has("RC004"));
  EXPECT_EQ(report.error_count(), 2u);
  // Formatted diagnostics point at this file for the race.
  EXPECT_NE(report.format().find("racer_test.cpp"), std::string::npos)
      << report.format();
#endif
}

}  // namespace
}  // namespace scidock
