#include "dock/autodock4.hpp"

#include <algorithm>
#include <chrono>

#include "dock/autogrid.hpp"
#include "dock/cluster.hpp"
#include "dock/energy.hpp"
#include "mol/molecule.hpp"
#include "util/error.hpp"

namespace scidock::dock {

Autodock4Engine::Autodock4Engine(DockingParameterFile params)
    : params_(std::move(params)) {}

DockingResult Autodock4Engine::dock(const mol::PreparedReceptor& receptor,
                                    const mol::PreparedLigand& ligand,
                                    const GridBox& box, Rng& rng) {
  SCIDOCK_REQUIRE(ligand.molecule.fully_parameterised(),
                  "AD4: ligand has unparameterised atoms");
  SCIDOCK_REQUIRE(receptor.molecule.fully_parameterised(),
                  "AD4: receptor has unparameterised atoms");
  GridMapCalculator calc(receptor.molecule);
  mol::Molecule lig = ligand.molecule;  // ad_types_present needs perceive()
  lig.perceive();
  const GridMapSet maps = calc.calculate(box, lig.ad_types_present());
  DockingResult result = dock_with_maps(maps, ligand, rng);
  result.receptor_name = receptor.molecule.name();
  return result;
}

DockingResult Autodock4Engine::dock_with_maps(const GridMapSet& maps,
                                              const mol::PreparedLigand& ligand,
                                              Rng& rng) {
  const auto t0 = std::chrono::steady_clock::now();
  Ad4EnergyModel model(maps, ligand);
  const std::vector<mol::Vec3> input_coords = ligand.molecule.coordinates();
  const int n_tors = ligand.torsions.torsion_count();

  DockingResult result;
  result.ligand_name = ligand.molecule.name();
  result.engine_name = name();

  struct Individual {
    DockPose pose;
    double energy = 0.0;
  };

  std::vector<DockPose> winners;
  winners.reserve(static_cast<std::size_t>(params_.ga_runs));
  for (int run = 0; run < params_.ga_runs; ++run) {
    // --- initial population ---
    // Draw every pose first (the RNG stream is identical either way:
    // evaluation consumes no draws), then score the whole population
    // through the SoA/SIMD batch path in one call.
    std::vector<Individual> population;
    population.reserve(static_cast<std::size_t>(params_.ga_pop_size));
    std::vector<DockPose> seed_poses;
    seed_poses.reserve(population.capacity());
    for (int i = 0; i < params_.ga_pop_size; ++i) {
      seed_poses.push_back(
          DockPose::random(maps.box, model.reference_center(), n_tors, rng));
    }
    const std::vector<double> seed_energies = model.evaluate_batch(seed_poses);
    for (int i = 0; i < params_.ga_pop_size; ++i) {
      population.push_back({std::move(seed_poses[static_cast<std::size_t>(i)]),
                            seed_energies[static_cast<std::size_t>(i)]});
    }

    const long long eval_budget = params_.ga_num_evals;
    const long long evals_at_start = model.evaluations();
    int generation = 0;
    while (generation < params_.ga_num_generations &&
           model.evaluations() - evals_at_start < eval_budget) {
      ++generation;
      std::sort(population.begin(), population.end(),
                [](const Individual& a, const Individual& b) {
                  return a.energy < b.energy;
                });

      // Elitism: the best individual survives unchanged.
      std::vector<Individual> next;
      next.reserve(population.size());
      next.push_back(population.front());

      // Binary-tournament selection + crossover + mutation.
      auto tournament = [&]() -> const Individual& {
        const auto a = rng.below(population.size());
        const auto b = rng.below(population.size());
        return population[a].energy < population[b].energy ? population[a]
                                                           : population[b];
      };
      // Breed the whole generation first, then batch-evaluate the
      // offspring in one SoA pass (breeding and evaluation draw from
      // disjoint sources, so the RNG stream matches the interleaved
      // scalar loop exactly).
      std::vector<DockPose> offspring;
      offspring.reserve(population.size() - 1);
      while (next.size() + offspring.size() < population.size()) {
        const Individual& pa = tournament();
        const Individual& pb = tournament();
        DockPose child = rng.chance(params_.ga_crossover_rate)
                             ? pa.pose.crossover(pb.pose, rng)
                             : pa.pose;
        if (rng.chance(params_.ga_mutation_rate * 10.0)) {
          child.mutate_one(1.0, 0.3, 0.5, rng);
        }
        offspring.push_back(std::move(child));
      }
      const std::vector<double> energies = model.evaluate_batch(offspring);
      for (std::size_t i = 0; i < offspring.size(); ++i) {
        next.push_back({std::move(offspring[i]), energies[i]});
      }
      population = std::move(next);

      // Lamarckian step: local search on ~6% of the population (AD4's
      // ls_search_freq default), writing the result back to the genome.
      for (Individual& ind : population) {
        if (!rng.chance(0.06)) continue;
        double improved = 0.0;
        ind.pose = solis_wets(ind.pose, model, rng, params_.sw_max_its, improved);
        ind.energy = improved;
      }
    }

    auto best_it = std::min_element(
        population.begin(), population.end(),
        [](const Individual& a, const Individual& b) { return a.energy < b.energy; });
    // Final Lamarckian polish of the run winner (AD4 ends each run with an
    // intensified local search before reporting).
    double polished_energy = 0.0;
    best_it->pose = solis_wets(best_it->pose, model, rng,
                               params_.sw_max_its * 4, polished_energy, 0.5);
    best_it->energy = polished_energy;
    winners.push_back(best_it->pose);
  }

  // One batched inter/intra scoring pass over all run winners (run index =
  // pose index, matching the loop order above).
  append_batch_conformations(model, winners, input_coords,
                             result.conformations);

  cluster_conformations(result.conformations, params_.rmstol);
  result.energy_evaluations = model.evaluations();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace scidock::dock
