// Tests for the shared virtual filesystem (s3fs stand-in).

#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"
#include "vfs/vfs.hpp"

namespace scidock::vfs {
namespace {

TEST(Vfs, WriteReadRoundTrip) {
  SharedFileSystem fs;
  fs.write("/exp/input/2HHN.pdb", "ATOM ...", 12.5, "stager");
  EXPECT_TRUE(fs.exists("/exp/input/2HHN.pdb"));
  EXPECT_EQ(fs.read("/exp/input/2HHN.pdb"), "ATOM ...");
  const auto info = fs.stat("/exp/input/2HHN.pdb");
  ASSERT_TRUE(info);
  EXPECT_EQ(info->size, 8u);
  EXPECT_DOUBLE_EQ(info->mtime, 12.5);
  EXPECT_EQ(info->producer, "stager");
}

TEST(Vfs, PathNormalisation) {
  SharedFileSystem fs;
  fs.write("a//b///c.txt", "x");
  EXPECT_TRUE(fs.exists("/a/b/c.txt"));
  EXPECT_EQ(fs.read("a/b/c.txt"), "x");
}

TEST(Vfs, OverwriteReplacesContent) {
  SharedFileSystem fs;
  fs.write("/f", "one");
  fs.write("/f", "twotwo");
  EXPECT_EQ(fs.read("/f"), "twotwo");
  EXPECT_EQ(fs.file_count(), 1u);
  EXPECT_EQ(fs.stat("/f")->size, 6u);
}

TEST(Vfs, MissingFileThrows) {
  SharedFileSystem fs;
  EXPECT_THROW(fs.read("/nope"), NotFoundError);
  EXPECT_THROW(fs.remove("/nope"), NotFoundError);
  EXPECT_FALSE(fs.stat("/nope"));
  EXPECT_FALSE(fs.exists("/nope"));
}

TEST(Vfs, RemoveDeletes) {
  SharedFileSystem fs;
  fs.write("/f", "x");
  fs.remove("/f");
  EXPECT_FALSE(fs.exists("/f"));
  EXPECT_EQ(fs.file_count(), 0u);
}

TEST(Vfs, ListByPrefixSorted) {
  SharedFileSystem fs;
  fs.write("/exp/dlg/b.dlg", "2");
  fs.write("/exp/dlg/a.dlg", "1");
  fs.write("/exp/maps/x.map", "3");
  const auto dlg = fs.list("/exp/dlg/");
  ASSERT_EQ(dlg.size(), 2u);
  EXPECT_EQ(dlg[0].path, "/exp/dlg/a.dlg");
  EXPECT_EQ(dlg[1].path, "/exp/dlg/b.dlg");
  EXPECT_EQ(fs.list("/").size(), 3u);
  EXPECT_EQ(fs.list().size(), 3u);
  EXPECT_TRUE(fs.list("/none/").empty());
}

TEST(Vfs, AccountingTracksBytes) {
  SharedFileSystem fs;
  fs.write("/a", std::string(100, 'x'));
  fs.write("/b", std::string(50, 'y'));
  EXPECT_EQ(fs.bytes_written(), 150u);
  EXPECT_EQ(fs.total_bytes(), 150u);
  (void)fs.read("/a");
  EXPECT_EQ(fs.bytes_read(), 100u);
}

TEST(Vfs, LatencyModelPricesOps) {
  LatencyModel lat;
  lat.op_latency_s = 0.1;
  lat.throughput_bytes_per_s = 1000.0;
  EXPECT_DOUBLE_EQ(lat.read_cost(500), 0.1 + 0.5);
  EXPECT_DOUBLE_EQ(lat.write_cost(0), 0.1);
  SharedFileSystem fs(lat);
  EXPECT_DOUBLE_EQ(fs.read_cost(500), 0.6);
}

TEST(Vfs, SplitPath) {
  const auto [dir, name] = split_path("/root/exp_SciDock/autodock4/223/GOL_4C5P.dlg");
  EXPECT_EQ(dir, "/root/exp_SciDock/autodock4/223/");
  EXPECT_EQ(name, "GOL_4C5P.dlg");
  const auto [d2, n2] = split_path("bare.txt");
  EXPECT_EQ(d2, "/");
  EXPECT_EQ(n2, "bare.txt");
}

TEST(Vfs, ConcurrentWritersAreSafe) {
  SharedFileSystem fs;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fs, t] {
      for (int i = 0; i < 100; ++i) {
        fs.write("/t" + std::to_string(t) + "/f" + std::to_string(i),
                 std::string(10, 'a'));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fs.file_count(), 400u);
  EXPECT_EQ(fs.total_bytes(), 4000u);
}

TEST(Vfs, EmptyPathRejected) {
  SharedFileSystem fs;
  EXPECT_THROW(fs.write("", "x"), InvalidStateError);
  EXPECT_THROW(fs.write("/", "x"), InvalidStateError);
}

}  // namespace
}  // namespace scidock::vfs
