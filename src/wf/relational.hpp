#pragma once

/// \file relational.hpp
/// The SRQuery side of the SciCumulus algebra (Ogasawara et al. 2011):
/// workflow relations are genuinely relational, so they can be loaded
/// into the SQL engine and queried/reduced with SQL instead of custom
/// C++ — the same trick the provenance layer uses. Numeric-looking
/// fields are typed as numbers so aggregates work directly.

#include <string_view>

#include "sql/engine.hpp"
#include "sql/table.hpp"
#include "wf/relation.hpp"

namespace scidock::wf {

/// Load a workflow relation into `db` as table `name`. Field values that
/// parse as integers/doubles become numeric; everything else stays text.
/// Throws InvalidStateError if the table already exists.
sql::Table& to_sql_table(const Relation& relation, sql::Database& db,
                         std::string_view name);

/// Convert a SQL result set back into a workflow relation (all values
/// rendered as strings, the relation-file representation).
Relation from_result_set(const sql::ResultSet& rs);

/// The SRQuery operator: run one SELECT over a relation exposed as table
/// `rel` and return the result as a new relation.
///
///   auto hits = query_relation(output,
///       "SELECT ligand, count(*) hits FROM rel WHERE feb < 0 "
///       "GROUP BY ligand ORDER BY hits DESC");
Relation query_relation(const Relation& relation, std::string_view select_sql);

}  // namespace scidock::wf
