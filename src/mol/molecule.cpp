#include "mol/molecule.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace scidock::mol {

Atom& Molecule::mutable_atom(int i) {
  invalidate();
  return atoms_[static_cast<std::size_t>(i)];
}

int Molecule::add_atom(Atom atom) {
  invalidate();
  atoms_.push_back(std::move(atom));
  return static_cast<int>(atoms_.size()) - 1;
}

void Molecule::add_bond(int a, int b, BondOrder order) {
  SCIDOCK_ASSERT(a >= 0 && a < atom_count());
  SCIDOCK_ASSERT(b >= 0 && b < atom_count());
  SCIDOCK_ASSERT(a != b);
  invalidate();
  bonds_.push_back(Bond{a, b, order});
}

const std::vector<int>& Molecule::neighbors(int i) const {
  SCIDOCK_ASSERT_MSG(perceived_, "call perceive() before neighbors()");
  return adjacency_[static_cast<std::size_t>(i)];
}

bool Molecule::in_ring(int i) const {
  SCIDOCK_ASSERT_MSG(perceived_, "call perceive() before in_ring()");
  return in_ring_[static_cast<std::size_t>(i)];
}

void Molecule::compute_rings() {
  // A bond is in a ring iff it is not a bridge. Tarjan bridge-finding via
  // iterative DFS; atoms in a ring are the endpoints of non-bridge edges.
  const int n = atom_count();
  in_ring_.assign(static_cast<std::size_t>(n), false);
  if (n == 0) return;

  std::vector<int> disc(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> bond_is_bridge(bonds_.size(), false);

  // adjacency with bond ids for parent-edge tracking
  std::vector<std::vector<std::pair<int, int>>> adj(static_cast<std::size_t>(n));
  for (std::size_t bi = 0; bi < bonds_.size(); ++bi) {
    adj[static_cast<std::size_t>(bonds_[bi].a)].emplace_back(bonds_[bi].b, static_cast<int>(bi));
    adj[static_cast<std::size_t>(bonds_[bi].b)].emplace_back(bonds_[bi].a, static_cast<int>(bi));
  }

  int timer = 0;
  struct Frame {
    int node;
    int parent_bond;
    std::size_t edge_idx;
  };
  std::vector<Frame> stack;
  for (int root = 0; root < n; ++root) {
    if (disc[static_cast<std::size_t>(root)] != -1) continue;
    stack.push_back({root, -1, 0});
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = timer++;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const auto u = static_cast<std::size_t>(fr.node);
      if (fr.edge_idx < adj[u].size()) {
        const auto [v, bond_id] = adj[u][fr.edge_idx++];
        if (bond_id == fr.parent_bond) continue;
        const auto vs = static_cast<std::size_t>(v);
        if (disc[vs] == -1) {
          disc[vs] = low[vs] = timer++;
          stack.push_back({v, bond_id, 0});
        } else {
          low[u] = std::min(low[u], disc[vs]);
        }
      } else {
        const Frame done = fr;
        stack.pop_back();
        if (!stack.empty()) {
          const auto p = static_cast<std::size_t>(stack.back().node);
          low[p] = std::min(low[p], low[static_cast<std::size_t>(done.node)]);
          if (low[static_cast<std::size_t>(done.node)] > disc[p]) {
            bond_is_bridge[static_cast<std::size_t>(done.parent_bond)] = true;
          }
        }
      }
    }
  }

  for (std::size_t bi = 0; bi < bonds_.size(); ++bi) {
    if (!bond_is_bridge[bi]) {
      in_ring_[static_cast<std::size_t>(bonds_[bi].a)] = true;
      in_ring_[static_cast<std::size_t>(bonds_[bi].b)] = true;
    }
  }
}

void Molecule::perceive(bool retype) {
  if (perceived_) return;
  const int n = atom_count();
  adjacency_.assign(static_cast<std::size_t>(n), {});
  for (const Bond& b : bonds_) {
    adjacency_[static_cast<std::size_t>(b.a)].push_back(b.b);
    adjacency_[static_cast<std::size_t>(b.b)].push_back(b.a);
  }
  compute_rings();

  // Aromaticity heuristic: ring carbons/nitrogens that carry an explicit
  // aromatic bond, or ring atoms whose every ring neighbour is sp2-ish
  // (degree <= 3). Full Hückel perception is out of scope; this matches
  // what AD4's type assignment needs (C vs A).
  aromatic_.assign(static_cast<std::size_t>(n), false);
  for (const Bond& b : bonds_) {
    if (b.order == BondOrder::Aromatic) {
      aromatic_[static_cast<std::size_t>(b.a)] = true;
      aromatic_[static_cast<std::size_t>(b.b)] = true;
    }
  }
  for (int i = 0; i < n; ++i) {
    const auto is = static_cast<std::size_t>(i);
    if (aromatic_[is] || !in_ring_[is]) continue;
    const Element e = atoms_[is].element;
    if (e != Element::C && e != Element::N) continue;
    if (adjacency_[is].size() <= 3) aromatic_[is] = true;
  }

  // Assign AutoDock types from context.
  for (int i = 0; retype && i < n; ++i) {
    const auto is = static_cast<std::size_t>(i);
    AtomContext ctx;
    ctx.element = atoms_[is].element;
    ctx.aromatic = aromatic_[is];
    for (int nb : adjacency_[is]) {
      const Atom& other = atoms_[static_cast<std::size_t>(nb)];
      if (other.element != Element::H) ++ctx.heavy_degree;
      if (other.element == Element::H) ctx.has_hydrogen = true;
      if (other.element == Element::N || other.element == Element::O ||
          other.element == Element::S) {
        ctx.bonded_to_hetero = true;
      }
    }
    atoms_[is].ad_type = assign_ad_type(ctx);
  }
  perceived_ = true;
}

void Molecule::infer_bonds_from_geometry(double tolerance) {
  invalidate();
  bonds_.clear();
  const int n = atom_count();
  // Spatial hashing on a 4 Å grid bounds the pair search; covalent bonds
  // never exceed ~2.6 Å + tolerance.
  const double cell = 4.0;
  struct CellKey {
    long long x, y, z;
    bool operator==(const CellKey&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& k) const {
      std::uint64_t h = 1469598103934665603ULL;
      for (long long v : {k.x, k.y, k.z}) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<CellKey, std::vector<int>, CellHash> grid;
  auto key_of = [cell](const Vec3& p) {
    return CellKey{static_cast<long long>(std::floor(p.x / cell)),
                   static_cast<long long>(std::floor(p.y / cell)),
                   static_cast<long long>(std::floor(p.z / cell))};
  };
  for (int i = 0; i < n; ++i) {
    grid[key_of(atoms_[static_cast<std::size_t>(i)].pos)].push_back(i);
  }
  for (int i = 0; i < n; ++i) {
    const Atom& ai = atoms_[static_cast<std::size_t>(i)];
    const CellKey kc = key_of(ai.pos);
    const double ri = element_info(ai.element).covalent_radius;
    for (long long dx = -1; dx <= 1; ++dx)
      for (long long dy = -1; dy <= 1; ++dy)
        for (long long dz = -1; dz <= 1; ++dz) {
          const auto it = grid.find(CellKey{kc.x + dx, kc.y + dy, kc.z + dz});
          if (it == grid.end()) continue;
          for (int j : it->second) {
            if (j <= i) continue;
            const Atom& aj = atoms_[static_cast<std::size_t>(j)];
            if (ai.element == Element::H && aj.element == Element::H) continue;
            const double rj = element_info(aj.element).covalent_radius;
            const double cutoff = ri + rj + tolerance;
            if (distance_sq(ai.pos, aj.pos) <= cutoff * cutoff) {
              bonds_.push_back(Bond{i, j, BondOrder::Single});
            }
          }
        }
  }
}

Vec3 Molecule::center() const {
  SCIDOCK_ASSERT(!atoms_.empty());
  Vec3 sum{};
  for (const Atom& a : atoms_) sum += a.pos;
  return sum / static_cast<double>(atoms_.size());
}

Aabb Molecule::bounds() const {
  SCIDOCK_ASSERT(!atoms_.empty());
  Aabb box{atoms_[0].pos, atoms_[0].pos};
  for (const Atom& a : atoms_) {
    box.lo.x = std::min(box.lo.x, a.pos.x);
    box.lo.y = std::min(box.lo.y, a.pos.y);
    box.lo.z = std::min(box.lo.z, a.pos.z);
    box.hi.x = std::max(box.hi.x, a.pos.x);
    box.hi.y = std::max(box.hi.y, a.pos.y);
    box.hi.z = std::max(box.hi.z, a.pos.z);
  }
  return box;
}

double Molecule::radius_of_gyration() const {
  const Vec3 c = center();
  double acc = 0.0;
  for (const Atom& a : atoms_) acc += distance_sq(a.pos, c);
  return std::sqrt(acc / static_cast<double>(atoms_.size()));
}

double Molecule::molecular_weight() const {
  double w = 0.0;
  for (const Atom& a : atoms_) w += element_info(a.element).atomic_mass;
  return w;
}

int Molecule::heavy_atom_count() const {
  int n = 0;
  for (const Atom& a : atoms_) {
    if (a.element != Element::H) ++n;
  }
  return n;
}

bool Molecule::contains_element(Element e) const {
  return std::any_of(atoms_.begin(), atoms_.end(),
                     [e](const Atom& a) { return a.element == e; });
}

bool Molecule::fully_parameterised() const {
  SCIDOCK_ASSERT_MSG(perceived_, "call perceive() before fully_parameterised()");
  return std::all_of(atoms_.begin(), atoms_.end(), [](const Atom& a) {
    return ad_type_params(a.ad_type).supported;
  });
}

void Molecule::translate(const Vec3& delta) {
  for (Atom& a : atoms_) a.pos += delta;
}

void Molecule::rotate(const Quaternion& q, const Vec3& origin) {
  for (Atom& a : atoms_) a.pos = q.rotate(a.pos - origin) + origin;
}

std::vector<Vec3> Molecule::coordinates() const {
  std::vector<Vec3> out;
  out.reserve(atoms_.size());
  for (const Atom& a : atoms_) out.push_back(a.pos);
  return out;
}

void Molecule::set_coordinates(const std::vector<Vec3>& coords) {
  SCIDOCK_ASSERT(coords.size() == atoms_.size());
  for (std::size_t i = 0; i < coords.size(); ++i) atoms_[i].pos = coords[i];
}

std::vector<AdType> Molecule::ad_types_present() const {
  SCIDOCK_ASSERT_MSG(perceived_, "call perceive() before ad_types_present()");
  std::array<bool, kAdTypeCount> seen{};
  for (const Atom& a : atoms_) seen[static_cast<std::size_t>(a.ad_type)] = true;
  std::vector<AdType> out;
  for (int t = 0; t < kAdTypeCount; ++t) {
    if (seen[static_cast<std::size_t>(t)]) out.push_back(static_cast<AdType>(t));
  }
  return out;
}

double rmsd(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  SCIDOCK_ASSERT(a.size() == b.size());
  SCIDOCK_ASSERT(!a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += distance_sq(a[i], b[i]);
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double heavy_atom_rmsd(const Molecule& a, const Molecule& b) {
  SCIDOCK_ASSERT(a.atom_count() == b.atom_count());
  double acc = 0.0;
  int n = 0;
  for (int i = 0; i < a.atom_count(); ++i) {
    if (a.atom(i).element == Element::H) continue;
    acc += distance_sq(a.atom(i).pos, b.atom(i).pos);
    ++n;
  }
  SCIDOCK_ASSERT(n > 0);
  return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace scidock::mol
