#include "chaos/chaos.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace scidock::chaos {

namespace {

/// One splitmix64 round over the running hash; chains arbitrarily many
/// ingredients into a decorrelated 64-bit decision value.
std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  std::uint64_t s = h ^ (x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

/// Uniform [0, 1) from a hash (same bit recipe as Rng::uniform).
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Stable identity of a tuple: its ordered field list, which is identical
/// across replays (relations preserve field order).
std::uint64_t tuple_hash(const wf::Tuple& tuple) {
  std::uint64_t h = 0x791e5ULL;
  for (const auto& [k, v] : tuple.fields()) {
    h = mix(h, fnv1a64(k));
    h = mix(h, fnv1a64(v));
  }
  return h;
}

}  // namespace

ChaosProfile chaos_profile_off() { return ChaosProfile{}; }

ChaosProfile chaos_profile_light() {
  ChaosProfile p;
  p.name = "light";
  p.vfs.read_fault_probability = 0.05;
  p.vfs.write_fault_probability = 0.05;
  p.vfs.max_transient_failures = 2;
  p.vfs.latency_spike_probability = 0.02;
  p.vfs.latency_spike_ms = 0.2;
  p.pool.delay_probability = 0.10;
  p.pool.delay_ms = 0.2;
  p.activity.failure_probability = 0.10;  // the paper's ~10 % rate
  p.activity.hang_probability = 0.005;
  return p;
}

ChaosProfile chaos_profile_heavy() {
  ChaosProfile p;
  p.name = "heavy";
  p.vfs.read_fault_probability = 0.20;
  p.vfs.write_fault_probability = 0.20;
  p.vfs.max_transient_failures = 2;
  p.vfs.latency_spike_probability = 0.05;
  p.vfs.latency_spike_ms = 0.2;
  p.pool.delay_probability = 0.25;
  p.pool.delay_ms = 0.3;
  p.activity.failure_probability = 0.25;
  p.activity.hang_probability = 0.02;
  return p;
}

ChaosProfile chaos_profile_racer() {
  ChaosProfile p;
  p.name = "racer";
  p.pool.delay_probability = 1.0;  // every task gets a perturbed start
  p.pool.delay_ms = 0.0;
  p.pool.delay_jitter_ms = 2.0;
  return p;
}

struct ChaosEngine::State {
  Mutex mutex{"chaos.state"};
  /// Accesses so far per (op, path); a faulty path fails while this is
  /// below its drawn transient budget, then recovers.
  std::map<std::string, int> transient_used SCIDOCK_GUARDED_BY(mutex);
  std::atomic<long long> vfs_faults{0};
  std::atomic<long long> torn_writes{0};
  std::atomic<long long> pool_delays{0};
  std::atomic<long long> pool_exceptions{0};
  std::atomic<long long> activity_faults{0};
  std::atomic<std::uint64_t> pool_ticket{0};
  std::atomic<std::uint64_t> latency_ticket{0};
  std::atomic<std::uint64_t> torn_ticket{0};
};

ChaosEngine::ChaosEngine(ChaosProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), seed_(seed),
      state_(std::make_shared<State>()) {}

vfs::SharedFileSystem::FaultHook ChaosEngine::vfs_hook() const {
  const VfsFaultProfile vfs = profile_.vfs;
  const std::uint64_t seed = seed_;
  std::shared_ptr<State> state = state_;
  if (vfs.read_fault_probability <= 0.0 && vfs.write_fault_probability <= 0.0 &&
      vfs.latency_spike_probability <= 0.0) {
    return nullptr;
  }
  return [vfs, seed, state](vfs::FileOp op, const std::string& path) {
    if (!vfs.path_substring.empty() &&
        path.find(vfs.path_substring) == std::string::npos) {
      return;
    }
    // Latency spike: wall-clock only, never observable in results.
    if (vfs.latency_spike_probability > 0.0) {
      const std::uint64_t n = state->latency_ticket.fetch_add(1);
      if (unit(mix(mix(seed, fnv1a64("vfs-latency")), n)) <
          vfs.latency_spike_probability) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            vfs.latency_spike_ms));
      }
    }
    const bool is_read = op == vfs::FileOp::Read;
    const double p =
        is_read ? vfs.read_fault_probability : vfs.write_fault_probability;
    if (p <= 0.0) return;
    // The transient budget is a pure function of (seed, op, path): either
    // 0 (healthy path) or 1..max_transient_failures.
    const std::uint64_t h =
        mix(mix(seed, fnv1a64(is_read ? "vfs-read" : "vfs-write")),
            fnv1a64(path));
    int budget = 0;
    if (unit(h) < p) {
      budget = 1 + static_cast<int>(
                       (h >> 20) %
                       static_cast<std::uint64_t>(
                           std::max(1, vfs.max_transient_failures)));
    }
    if (budget == 0) return;
    {
      MutexLock lock(state->mutex);
      int& used = state->transient_used[(is_read ? "R:" : "W:") + path];
      if (used >= budget) return;  // path has recovered
      ++used;
    }
    state->vfs_faults.fetch_add(1);
    throw ActivityError("chaos: injected transient " +
                        std::string(is_read ? "read" : "write") +
                        " fault on " + path);
  };
}

vfs::SharedFileSystem::TornWriteHook ChaosEngine::torn_write_hook() const {
  const VfsFaultProfile vfs = profile_.vfs;
  const std::uint64_t seed = seed_;
  std::shared_ptr<State> state = state_;
  if (vfs.torn_write_probability <= 0.0) return nullptr;
  return [vfs, seed, state](
             vfs::FileOp, const std::string& path,
             std::size_t bytes) -> std::optional<std::size_t> {
    if (bytes == 0) return std::nullopt;
    if (!vfs.path_substring.empty() &&
        path.find(vfs.path_substring) == std::string::npos) {
      return std::nullopt;
    }
    const std::uint64_t n = state->torn_ticket.fetch_add(1);
    const std::uint64_t h = mix(mix(seed, fnv1a64("vfs-torn")), n);
    if (unit(h) >= vfs.torn_write_probability) return std::nullopt;
    state->torn_writes.fetch_add(1);
    // Cut anywhere in [0, bytes): always strictly short of the end.
    return static_cast<std::size_t>((h >> 17) % bytes);
  };
}

ThreadPool::TaskHook ChaosEngine::pool_hook() const {
  const PoolFaultProfile pool = profile_.pool;
  const std::uint64_t seed = seed_;
  std::shared_ptr<State> state = state_;
  if (pool.delay_probability <= 0.0 && pool.exception_probability <= 0.0) {
    return nullptr;
  }
  return [pool, seed, state] {
    const std::uint64_t n = state->pool_ticket.fetch_add(1);
    if (pool.exception_probability > 0.0 &&
        unit(mix(mix(seed, fnv1a64("pool-exception")), n)) <
            pool.exception_probability) {
      state->pool_exceptions.fetch_add(1);
      throw ChaosInjectedError("chaos: injected task exception (ticket " +
                               std::to_string(n) + ")");
    }
    if (pool.delay_probability > 0.0 &&
        unit(mix(mix(seed, fnv1a64("pool-delay")), n)) <
            pool.delay_probability) {
      state->pool_delays.fetch_add(1);
      double ms = pool.delay_ms;
      if (pool.delay_jitter_ms > 0.0) {
        ms += pool.delay_jitter_ms *
              unit(mix(mix(seed, fnv1a64("pool-jitter")), n));
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
  };
}

wf::FaultInjectorFn ChaosEngine::activity_fault_injector() const {
  const ActivityFaultProfile activity = profile_.activity;
  const std::uint64_t seed = seed_;
  std::shared_ptr<State> state = state_;
  if (activity.failure_probability <= 0.0 &&
      activity.hang_probability <= 0.0) {
    return nullptr;
  }
  return [activity, seed, state](const std::string& tag,
                                 const wf::Tuple& tuple,
                                 int attempt) -> wf::InjectedFault {
    // Pure in (tag, tuple, attempt): each retry redraws, so transient
    // failures clear under the attempt budget like the paper's ~10 %.
    const std::uint64_t h = mix(
        mix(mix(mix(seed, fnv1a64("activity")), fnv1a64(tag)),
            tuple_hash(tuple)),
        static_cast<std::uint64_t>(attempt));
    const double u = unit(h);
    if (u < activity.hang_probability) {
      state->activity_faults.fetch_add(1);
      return wf::InjectedFault::Hang;
    }
    if (u < activity.hang_probability + activity.failure_probability) {
      state->activity_faults.fetch_add(1);
      return wf::InjectedFault::Failure;
    }
    return wf::InjectedFault::None;
  };
}

cloud::FailureModelOptions ChaosEngine::failure_options(
    int max_attempts, double hang_timeout_s) const {
  cloud::FailureModelOptions opts;
  opts.failure_probability = profile_.activity.failure_probability;
  opts.hang_probability = profile_.activity.hang_probability;
  opts.max_attempts = max_attempts;
  opts.hang_timeout_s = hang_timeout_s;
  return opts;
}

long long ChaosEngine::vfs_faults_injected() const {
  return state_->vfs_faults.load();
}
long long ChaosEngine::torn_writes_injected() const {
  return state_->torn_writes.load();
}
long long ChaosEngine::pool_delays_injected() const {
  return state_->pool_delays.load();
}
long long ChaosEngine::pool_exceptions_injected() const {
  return state_->pool_exceptions.load();
}
long long ChaosEngine::activity_faults_injected() const {
  return state_->activity_faults.load();
}

struct KillSwitch::State {
  std::atomic<int> seen{0};
  std::atomic<bool> fired{false};
};

KillSwitch::KillSwitch(KillPoint point)
    : point_(point), state_(std::make_shared<State>()) {}

bool KillSwitch::fired() const { return state_->fired.load(); }

vfs::SharedFileSystem::TornWriteHook KillSwitch::torn_write_hook() const {
  if (point_.phase != KillPhase::Append) return nullptr;
  const KillPoint point = point_;
  std::shared_ptr<State> state = state_;
  return [point, state](vfs::FileOp op, const std::string& path,
                        std::size_t bytes) -> std::optional<std::size_t> {
    if (op != vfs::FileOp::Append || bytes == 0 ||
        path.find(".wal") == std::string::npos) {
      return std::nullopt;
    }
    if (state->fired.load(std::memory_order_relaxed)) return std::nullopt;
    if (state->seen.fetch_add(1) != point.ordinal) return std::nullopt;
    state->fired.store(true);
    // Clamp below the batch size so the tear is real (never a full write).
    return std::min(point.keep_bytes, bytes - 1);
  };
}

vfs::SharedFileSystem::FaultHook KillSwitch::fault_hook() const {
  if (point_.phase != KillPhase::GroupCommit &&
      point_.phase != KillPhase::Rotate) {
    return nullptr;
  }
  const KillPoint point = point_;
  std::shared_ptr<State> state = state_;
  const vfs::FileOp target = point_.phase == KillPhase::GroupCommit
                                 ? vfs::FileOp::Append
                                 : vfs::FileOp::Rename;
  return [point, state, target](vfs::FileOp op, const std::string& path) {
    if (op != target || path.find(".wal") == std::string::npos) return;
    if (state->fired.load(std::memory_order_relaxed)) return;
    if (state->seen.fetch_add(1) != point.ordinal) return;
    state->fired.store(true);
    throw ChaosInjectedError(
        "chaos: kill point fired on " + path + " (" +
        (target == vfs::FileOp::Append ? "group-commit append"
                                       : "segment-seal rename") +
        " #" + std::to_string(point.ordinal) + ")");
  };
}

}  // namespace scidock::chaos
