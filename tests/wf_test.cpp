// Tests for the workflow model: relations, templates, XML specs,
// pipelines, schedulers.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cloud/vm.hpp"
#include "scidock/scidock.hpp"
#include "util/error.hpp"
#include "wf/pipeline.hpp"
#include "wf/relation.hpp"
#include "wf/relational.hpp"
#include "wf/scheduler.hpp"
#include "wf/sim_executor.hpp"
#include "wf/spec.hpp"
#include "wf/template.hpp"
#include "wf/workflow.hpp"

namespace scidock::wf {
namespace {

// ------------------------------------------------------------- relation

TEST(Tuple, SetGetRequire) {
  Tuple t;
  t.set("receptor", "2HHN");
  t.set("ligand", "0E6");
  EXPECT_EQ(t.get("receptor"), "2HHN");
  EXPECT_EQ(t.require("ligand"), "0E6");
  EXPECT_FALSE(t.get("nope"));
  EXPECT_THROW(t.require("nope"), NotFoundError);
  t.set("receptor", "1HUC");  // overwrite
  EXPECT_EQ(t.get("receptor"), "1HUC");
  EXPECT_EQ(t.fields().size(), 2u);
  EXPECT_DOUBLE_EQ(t.get_double("missing", 1.5), 1.5);
}

TEST(Relation, SchemaEnforced) {
  Relation rel{{"a", "b"}};
  Tuple good;
  good.set("a", "1");
  good.set("b", "2");
  rel.add(good);
  Tuple bad;
  bad.set("a", "1");
  EXPECT_THROW(rel.add(bad), InvalidStateError);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(Relation, FileRoundTrip) {
  Relation rel{{"pair", "receptor", "ligand"}};
  for (int i = 0; i < 3; ++i) {
    Tuple t;
    t.set("pair", "p" + std::to_string(i));
    t.set("receptor", "2HHN");
    t.set("ligand", "0E6");
    rel.add(std::move(t));
  }
  const Relation back = Relation::from_file_text(rel.to_file_text());
  EXPECT_EQ(back.field_names(), rel.field_names());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.tuples()[2].require("pair"), "p2");
}

TEST(Relation, FromFileRejectsBadRows) {
  EXPECT_THROW(Relation::from_file_text(""), ParseError);
  EXPECT_THROW(Relation::from_file_text("a\tb\n1\n"), ParseError);
}

// ------------------------------------------------------------- template

TEST(Template, TagExtraction) {
  const auto tags = template_tags("./vina --receptor %receptor% --ligand "
                                  "%ligand% --out %receptor%.out");
  EXPECT_EQ(tags, (std::vector<std::string>{"receptor", "ligand"}));
}

TEST(Template, Instantiation) {
  Tuple t;
  t.set("receptor", "2HHN.pdbqt");
  t.set("ligand", "0E6.pdbqt");
  EXPECT_EQ(instantiate_template("dock %receptor% %ligand% 100%%", t),
            "dock 2HHN.pdbqt 0E6.pdbqt 100%");
}

TEST(Template, Errors) {
  Tuple t;
  EXPECT_THROW(instantiate_template("x %missing% y", t), NotFoundError);
  EXPECT_THROW(instantiate_template("x %unterminated", t), ParseError);
  EXPECT_THROW(instantiate_template("x %% %%% y", t), ParseError);
}

// ------------------------------------------------------------- workflow

TEST(Workflow, AlgebraicOpRoundTrip) {
  for (AlgebraicOp op : {AlgebraicOp::Map, AlgebraicOp::SplitMap,
                         AlgebraicOp::Filter, AlgebraicOp::Reduce,
                         AlgebraicOp::SRQuery}) {
    EXPECT_EQ(algebraic_op_from(to_string(op)), op);
  }
  EXPECT_THROW(algebraic_op_from("NOPE"), NotFoundError);
}

WorkflowDef two_activity_def() {
  WorkflowDef def;
  def.tag = "mini";
  ActivityDef a;
  a.tag = "first";
  a.relations = {RelationDef{"rel_in", "input.txt", true},
                 RelationDef{"rel_mid", "mid.txt", false}};
  ActivityDef b;
  b.tag = "second";
  b.relations = {RelationDef{"rel_mid", "mid.txt", true},
                 RelationDef{"rel_out", "out.txt", false}};
  def.activities = {b, a};  // deliberately out of order
  return def;
}

TEST(Workflow, TopologicalOrderFollowsRelations) {
  const WorkflowDef def = two_activity_def();
  const auto order = def.topological_order();
  ASSERT_EQ(order.size(), 2u);
  // "first" (index 1) must precede "second" (index 0).
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(def.producer_of("rel_mid"), 1);
  EXPECT_EQ(def.producer_of("rel_in"), -1);
}

TEST(Workflow, CycleDetected) {
  WorkflowDef def;
  ActivityDef a;
  a.tag = "a";
  a.relations = {RelationDef{"r1", "", true}, RelationDef{"r2", "", false}};
  ActivityDef b;
  b.tag = "b";
  b.relations = {RelationDef{"r2", "", true}, RelationDef{"r1", "", false}};
  def.activities = {a, b};
  EXPECT_THROW(def.topological_order(), InvalidStateError);
}

// ------------------------------------------------------------- XML spec

TEST(Spec, PaperFigure2Parses) {
  // The exact shape of the paper's Figure 2 excerpt.
  const char* xml = R"(<SciCumulus>
    <database name="scicumulus" port="5432"
              server="ec2-50-17-107-164.compute-1.amazonaws.com"/>
    <SciCumulusWorkflow tag="SciDock" description="Docking"
        exectag="scidock" expdir="/root/scidock/">
      <SciCumulusActivity tag="babel"
          templatedir="/root/scidock/template_babel/"
          activation="./experiment.cmd">
        <Relation reltype="Input" name="rel_in_1" filename="input_1.txt"/>
        <Relation reltype="Output" name="rel_out1" filename="output_1.txt"/>
      </SciCumulusActivity>
    </SciCumulusWorkflow>
  </SciCumulus>)";
  const WorkflowDef def = load_spec(xml);
  EXPECT_EQ(def.tag, "SciDock");
  EXPECT_EQ(def.exec_tag, "scidock");
  EXPECT_EQ(def.expdir, "/root/scidock/");
  EXPECT_EQ(def.database.port, 5432);
  EXPECT_EQ(def.database.server, "ec2-50-17-107-164.compute-1.amazonaws.com");
  ASSERT_EQ(def.activities.size(), 1u);
  const ActivityDef& babel = def.activities[0];
  EXPECT_EQ(babel.tag, "babel");
  EXPECT_EQ(babel.activation_command, "./experiment.cmd");
  ASSERT_NE(babel.input_relation(), nullptr);
  EXPECT_EQ(babel.input_relation()->filename, "input_1.txt");
  ASSERT_NE(babel.output_relation(), nullptr);
  EXPECT_EQ(babel.output_relation()->name, "rel_out1");
}

TEST(Spec, RoundTripThroughSaveLoad) {
  const WorkflowDef def = core::scidock_workflow_def();
  const WorkflowDef back = load_spec(save_spec(def));
  EXPECT_EQ(back.tag, def.tag);
  EXPECT_EQ(back.activities.size(), def.activities.size());
  for (std::size_t i = 0; i < def.activities.size(); ++i) {
    EXPECT_EQ(back.activities[i].tag, def.activities[i].tag);
    EXPECT_EQ(back.activities[i].op, def.activities[i].op);
    EXPECT_EQ(back.activities[i].relations.size(),
              def.activities[i].relations.size());
  }
}

TEST(Spec, RejectsInvalidDocuments) {
  EXPECT_THROW(load_spec("<NotSciCumulus/>"), Error);
  EXPECT_THROW(load_spec("<SciCumulus/>"), Error);  // no workflow
  EXPECT_THROW(load_spec("<SciCumulus><SciCumulusWorkflow tag=\"x\"/>"
                         "</SciCumulus>"),
               Error);  // no activities
  EXPECT_THROW(
      load_spec("<SciCumulus><SciCumulusWorkflow tag=\"x\">"
                "<SciCumulusActivity tag=\"a\"/>"
                "<SciCumulusActivity tag=\"a\"/>"
                "</SciCumulusWorkflow></SciCumulus>"),
      Error);  // duplicate tags
}

// ------------------------------------------------------------- pipeline

Pipeline routed_pipeline() {
  Pipeline p;
  auto passthrough = [](const Tuple& t, ActivationContext&) {
    return std::vector<Tuple>{t};
  };
  p.add_stage(Stage{"start", AlgebraicOp::Map, passthrough, nullptr, nullptr, nullptr});
  p.add_stage(Stage{"fork", AlgebraicOp::Filter, passthrough,
                    [](const Tuple& t) { return t.require("engine") == "vina"
                                                    ? std::string("right")
                                                    : std::string("left"); },
                    nullptr, nullptr});
  p.add_stage(Stage{"left", AlgebraicOp::Map, passthrough,
                    [](const Tuple&) { return std::string(kEndOfPipeline); },
                    nullptr, nullptr});
  p.add_stage(Stage{"right", AlgebraicOp::Map, passthrough,
                    [](const Tuple&) { return std::string(kEndOfPipeline); },
                    nullptr, nullptr});
  return p;
}

TEST(Pipeline, RoutingPerTuple) {
  const Pipeline p = routed_pipeline();
  Tuple ad4;
  ad4.set("engine", "ad4");
  Tuple vina;
  vina.set("engine", "vina");
  EXPECT_EQ(p.chain_for(ad4),
            (std::vector<std::string>{"start", "fork", "left"}));
  EXPECT_EQ(p.chain_for(vina),
            (std::vector<std::string>{"start", "fork", "right"}));
}

TEST(Pipeline, DefaultRouteIsNextStage) {
  Pipeline p;
  p.add_stage(Stage{"a", AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr});
  p.add_stage(Stage{"b", AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr});
  Tuple t;
  EXPECT_EQ(p.next_stage("a", t), "b");
  EXPECT_EQ(p.next_stage("b", t), kEndOfPipeline);
  EXPECT_EQ(p.stage_index("b"), 1);
  EXPECT_EQ(p.stage_index("z"), -1);
  EXPECT_THROW(p.stage("z"), NotFoundError);
}

TEST(Pipeline, DuplicateStageRejected) {
  Pipeline p;
  p.add_stage(Stage{"a", AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr});
  EXPECT_THROW(
      p.add_stage(Stage{"a", AlgebraicOp::Map, nullptr, nullptr, nullptr, nullptr}),
      InvalidStateError);
}

TEST(Pipeline, RoutingLoopDetected) {
  Pipeline p;
  p.add_stage(Stage{"a", AlgebraicOp::Map, nullptr,
                    [](const Tuple&) { return std::string("b"); }, nullptr, nullptr});
  p.add_stage(Stage{"b", AlgebraicOp::Map, nullptr,
                    [](const Tuple&) { return std::string("a"); }, nullptr, nullptr});
  Tuple t;
  EXPECT_THROW(p.chain_for(t), InvalidStateError);
}

// ------------------------------------------------------------ relational

Relation docking_output() {
  Relation rel{{"pair", "ligand", "feb", "rmsd"}};
  const char* rows[][4] = {
      {"042_2HHN", "042", "-7.5", "55.0"}, {"042_1HUC", "042", "0.3", "51.0"},
      {"0E6_2HHN", "0E6", "-6.0", "9.5"},  {"0E6_1HUC", "0E6", "-1.0", "10.1"},
  };
  for (const auto& r : rows) {
    Tuple t;
    t.set("pair", r[0]);
    t.set("ligand", r[1]);
    t.set("feb", r[2]);
    t.set("rmsd", r[3]);
    rel.add(std::move(t));
  }
  return rel;
}

TEST(Relational, NumericColumnsAreTypedForAggregates) {
  const Relation rel = docking_output();
  const Relation out = query_relation(
      rel, "SELECT ligand, count(*) n, min(feb) best FROM rel "
           "GROUP BY ligand ORDER BY ligand");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.tuples()[0].require("ligand"), "042");
  EXPECT_EQ(out.tuples()[0].require("n"), "2");
  EXPECT_EQ(out.tuples()[0].require("best"), "-7.5");
  EXPECT_EQ(out.tuples()[1].require("ligand"), "0E6");
}

TEST(Relational, HetCodesStayTextual) {
  // "042" (leading zero) and "0E6" (scientific-notation lookalike) must
  // survive the round trip as strings, not collapse to 42 / 0.
  sql::Database db;
  const Relation rel = docking_output();
  const sql::Table& table = to_sql_table(rel, db, "rel");
  EXPECT_TRUE(table.rows()[0][1].is_string());
  EXPECT_EQ(table.rows()[0][1].as_string(), "042");
  EXPECT_EQ(table.rows()[2][1].as_string(), "0E6");
  // feb is numeric.
  EXPECT_TRUE(table.rows()[0][2].is_double());
}

TEST(Relational, FilterWithWhere) {
  const Relation favorable = query_relation(
      docking_output(), "SELECT pair, feb FROM rel WHERE feb < 0 ORDER BY feb");
  ASSERT_EQ(favorable.size(), 3u);
  EXPECT_EQ(favorable.tuples()[0].require("pair"), "042_2HHN");
}

TEST(Relational, RoundTripThroughResultSet) {
  const Relation rel = docking_output();
  sql::Database db;
  to_sql_table(rel, db, "rel");
  sql::Engine engine(db);
  const Relation back = from_result_set(engine.execute("SELECT * FROM rel"));
  EXPECT_EQ(back.field_names(), rel.field_names());
  EXPECT_EQ(back.size(), rel.size());
  EXPECT_EQ(back.tuples()[0].require("pair"), "042_2HHN");
}

TEST(Relational, DuplicateTableNameRejected) {
  sql::Database db;
  to_sql_table(docking_output(), db, "rel");
  EXPECT_THROW(to_sql_table(docking_output(), db, "rel"), InvalidStateError);
}

// ------------------------------------------------------------ scheduler

cloud::VmInstance vm_with_slowdown(double jitter) {
  cloud::VmInstance vm;
  vm.id = 1;
  vm.type = cloud::vm_type_m3_xlarge();
  vm.performance_jitter = jitter;
  return vm;
}

TEST(Scheduler, GreedyGivesFastVmTheBigTask) {
  GreedyCostScheduler sched;
  std::vector<PendingActivation> queue{
      {1, "babel", 2.0, 0}, {2, "autodock4", 150.0, 0}, {3, "gpfprep", 20.0, 0}};
  EXPECT_EQ(sched.pick(queue, vm_with_slowdown(0.9)), 1u);  // fast VM
  EXPECT_EQ(sched.pick(queue, vm_with_slowdown(1.5)), 0u);  // slow VM
}

TEST(Scheduler, GreedyPrioritisesRetries) {
  GreedyCostScheduler sched;
  std::vector<PendingActivation> queue{
      {1, "autodock4", 150.0, 0}, {2, "babel", 2.0, 2}};  // babel is a retry
  EXPECT_EQ(sched.pick(queue, vm_with_slowdown(0.9)), 1u);
}

TEST(Scheduler, FifoTakesHead) {
  FifoScheduler sched;
  std::vector<PendingActivation> queue{{5, "x", 9.0, 0}, {6, "y", 1.0, 0}};
  EXPECT_EQ(sched.pick(queue, vm_with_slowdown(1.0)), 0u);
}

TEST(Scheduler, Factory) {
  EXPECT_EQ(make_scheduler("greedy-cost")->name(), "greedy-cost");
  EXPECT_EQ(make_scheduler("fifo")->name(), "fifo");
  EXPECT_THROW(make_scheduler("quantum"), NotFoundError);
}

// Property tests: randomized queues (deterministic Rng) against both
// policies. pick() must stay in bounds, and queued re-executions
// (attempts > 0) must never starve behind fresh activations.

std::vector<PendingActivation> random_queue(Rng& rng, long long& next_id,
                                            std::size_t size) {
  std::vector<PendingActivation> queue;
  queue.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    PendingActivation pa;
    pa.id = next_id++;
    pa.activity_tag = "act-" + std::to_string(rng.below(4));
    pa.expected_cost_s = rng.uniform(0.1, 200.0);
    pa.attempts = rng.chance(0.25) ? static_cast<int>(1 + rng.below(4)) : 0;
    queue.push_back(std::move(pa));
  }
  return queue;
}

TEST(SchedulerProperty, PickAlwaysInBoundsAndPrefersRetries) {
  Rng rng(20240); // any seed; the property must hold for all of them
  long long next_id = 1;
  const auto policies = {std::string("greedy-cost"), std::string("fifo")};
  for (int iter = 0; iter < 300; ++iter) {
    const auto queue = random_queue(rng, next_id, 1 + rng.below(20));
    const cloud::VmInstance vm = vm_with_slowdown(rng.uniform(0.6, 1.8));
    for (const std::string& policy : policies) {
      const auto sched = make_scheduler(policy);
      const std::size_t pick = sched->pick(queue, vm);
      ASSERT_LT(pick, queue.size()) << policy << " iter " << iter;
      if (policy == "greedy-cost") {
        // If any re-execution is queued, greedy must take one of them.
        const bool any_retry = std::any_of(
            queue.begin(), queue.end(),
            [](const PendingActivation& pa) { return pa.attempts > 0; });
        if (any_retry) {
          EXPECT_GT(queue[pick].attempts, 0) << "iter " << iter;
        }
      }
    }
  }
}

TEST(SchedulerProperty, RetriesNeverStarveUnderArrivals) {
  // Drain a queue one pick at a time while fresh activations keep
  // arriving at the tail. Every re-execution initially present must be
  // dispatched within the initial queue length picks (FIFO bound; greedy
  // is stricter and drains retries first).
  for (const std::string policy : {"greedy-cost", "fifo"}) {
    Rng rng(7 + (policy == "fifo" ? 1 : 0));
    long long next_id = 1;
    for (int round = 0; round < 20; ++round) {
      auto queue = random_queue(rng, next_id, 12);
      const std::size_t bound = queue.size();
      std::vector<long long> retry_ids;
      for (const auto& pa : queue) {
        if (pa.attempts > 0) retry_ids.push_back(pa.id);
      }
      const auto sched = make_scheduler(policy);
      const cloud::VmInstance vm = vm_with_slowdown(1.0);
      std::size_t drained = 0;
      while (!retry_ids.empty()) {
        ASSERT_LE(++drained, bound)
            << policy << ": retries starved after " << bound << " picks";
        const std::size_t pick = sched->pick(queue, vm);
        ASSERT_LT(pick, queue.size());
        std::erase(retry_ids, queue[pick].id);
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
        // Fresh (attempts == 0) work keeps arriving behind the retries.
        PendingActivation fresh;
        fresh.id = next_id++;
        fresh.activity_tag = "fresh";
        fresh.expected_cost_s = rng.uniform(0.1, 200.0);
        fresh.attempts = 0;
        queue.push_back(std::move(fresh));
      }
    }
  }
}

// ---------------------------------------------------------------- fleet

TEST(Fleet, M3CombinationMatchesCoreCount) {
  for (int cores : {2, 4, 8, 16, 32, 64, 128}) {
    int total = 0;
    for (const cloud::VmType& t : m3_fleet_for_cores(cores)) total += t.cores;
    EXPECT_EQ(total, cores) << cores;
  }
  EXPECT_THROW(m3_fleet_for_cores(0), InvalidStateError);
}

TEST(Fleet, Prefers2xlarge) {
  const auto fleet = m3_fleet_for_cores(32);
  EXPECT_EQ(fleet.size(), 4u);
  for (const auto& t : fleet) EXPECT_EQ(t.name, "m3.2xlarge");
}

}  // namespace
}  // namespace scidock::wf
