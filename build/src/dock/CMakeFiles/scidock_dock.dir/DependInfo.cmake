
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dock/autodock4.cpp" "src/dock/CMakeFiles/scidock_dock.dir/autodock4.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/autodock4.cpp.o.d"
  "/root/repo/src/dock/autogrid.cpp" "src/dock/CMakeFiles/scidock_dock.dir/autogrid.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/autogrid.cpp.o.d"
  "/root/repo/src/dock/cluster.cpp" "src/dock/CMakeFiles/scidock_dock.dir/cluster.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/cluster.cpp.o.d"
  "/root/repo/src/dock/conformation.cpp" "src/dock/CMakeFiles/scidock_dock.dir/conformation.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/conformation.cpp.o.d"
  "/root/repo/src/dock/dlg.cpp" "src/dock/CMakeFiles/scidock_dock.dir/dlg.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/dlg.cpp.o.d"
  "/root/repo/src/dock/dpf.cpp" "src/dock/CMakeFiles/scidock_dock.dir/dpf.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/dpf.cpp.o.d"
  "/root/repo/src/dock/energy.cpp" "src/dock/CMakeFiles/scidock_dock.dir/energy.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/energy.cpp.o.d"
  "/root/repo/src/dock/engine.cpp" "src/dock/CMakeFiles/scidock_dock.dir/engine.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/engine.cpp.o.d"
  "/root/repo/src/dock/grid.cpp" "src/dock/CMakeFiles/scidock_dock.dir/grid.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/grid.cpp.o.d"
  "/root/repo/src/dock/scoring.cpp" "src/dock/CMakeFiles/scidock_dock.dir/scoring.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/scoring.cpp.o.d"
  "/root/repo/src/dock/vina.cpp" "src/dock/CMakeFiles/scidock_dock.dir/vina.cpp.o" "gcc" "src/dock/CMakeFiles/scidock_dock.dir/vina.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mol/CMakeFiles/scidock_mol.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/scidock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
