// Tests for the SQL engine: lexer, parser, evaluation, joins, grouping.

#include <gtest/gtest.h>

#include <utility>

#include "sql/engine.hpp"
#include "sql/lexer.hpp"
#include "sql/parser.hpp"
#include "sql/table.hpp"
#include "util/error.hpp"

namespace scidock::sql {
namespace {

// ---------------------------------------------------------------- lexer

TEST(Lexer, TokenizesMixedStatement) {
  const auto tokens = tokenize("SELECT a.x, 'it''s', 3.5 FROM t WHERE x <> 2");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_TRUE(tokens[0].is_keyword("select"));
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_TRUE(tokens[2].is_symbol("."));
  // the escaped string literal
  bool found = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::String && t.text == "it's") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, NumbersAndComments) {
  const auto tokens = tokenize("-- comment\n1 2.5 1e3 /* block\n */ 7");
  std::vector<std::string> nums;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::Integer || t.kind == TokenKind::Float) {
      nums.push_back(t.text);
    }
  }
  EXPECT_EQ(nums, (std::vector<std::string>{"1", "2.5", "1e3", "7"}));
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_THROW(tokenize("'unterminated"), ParseError);
  EXPECT_THROW(tokenize("SELECT #"), ParseError);
  EXPECT_THROW(tokenize("/* forever"), ParseError);
}

// --------------------------------------------------------------- parser

TEST(Parser, FullSelectShape) {
  const SelectStmt s = parse_select(
      "SELECT a.tag, avg(x) AS mean FROM ta a, tb WHERE a.id = tb.id AND x > 3 "
      "GROUP BY a.tag HAVING count(*) > 1 ORDER BY mean DESC LIMIT 10");
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "mean");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].alias, "a");
  EXPECT_EQ(s.from[1].alias, "tb");
  EXPECT_NE(s.where, nullptr);
  EXPECT_EQ(s.group_by.size(), 1u);
  EXPECT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 10u);
}

TEST(Parser, ExtractEpochSyntax) {
  const SelectStmt s = parse_select(
      "SELECT extract ('epoch' from (t.endtime-t.starttime)) FROM t");
  ASSERT_EQ(s.items.size(), 1u);
  const Expr& e = *s.items[0].expr;
  EXPECT_EQ(e.kind, Expr::Kind::Call);
  EXPECT_EQ(e.call_name, "extract");
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0]->literal.as_string(), "epoch");
}

TEST(Parser, OperatorPrecedence) {
  const SelectStmt s = parse_select("SELECT 2 + 3 * 4 FROM t");
  // (2 + (3 * 4)): root is Add.
  EXPECT_EQ(s.items[0].expr->binary_op, BinaryOp::Add);
  EXPECT_EQ(s.items[0].expr->rhs->binary_op, BinaryOp::Mul);
}

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_THROW(parse_statement("SELECT"), ParseError);
  EXPECT_THROW(parse_statement("SELECT x"), ParseError);       // no FROM
  EXPECT_THROW(parse_statement("FOO BAR"), ParseError);
  EXPECT_THROW(parse_statement("SELECT x FROM t WHERE"), ParseError);
  EXPECT_THROW(parse_statement("SELECT x FROM t extra junk ("), ParseError);
}

TEST(Parser, StatementKinds) {
  EXPECT_EQ(parse_statement("SELECT 1 FROM t").kind, Statement::Kind::Select);
  EXPECT_EQ(parse_statement("CREATE TABLE t (a int, b character varying(50))").kind,
            Statement::Kind::CreateTable);
  EXPECT_EQ(parse_statement("INSERT INTO t VALUES (1, 'x')").kind,
            Statement::Kind::Insert);
  EXPECT_EQ(parse_statement("DELETE FROM t WHERE a = 1").kind,
            Statement::Kind::Delete);
}

// ---------------------------------------------------------------- value

TEST(Value, OrderingAcrossTypes) {
  EXPECT_EQ(Value(1).compare(Value(1.0)), std::strong_ordering::equal);
  EXPECT_EQ(Value(1).compare(Value(2)), std::strong_ordering::less);
  EXPECT_EQ(Value().compare(Value(0)), std::strong_ordering::less);  // NULL first
  EXPECT_EQ(Value("a").compare(Value("b")), std::strong_ordering::less);
  EXPECT_EQ(Value(5).compare(Value("a")), std::strong_ordering::less);  // nums < strings
}

TEST(Value, Rendering) {
  EXPECT_EQ(Value().to_string(), "NULL");
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value("x").to_string(), "x");
}

// --------------------------------------------------------------- engine

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine = std::make_unique<Engine>(db);
    engine->execute("CREATE TABLE runs (id int, tag varchar(20), secs float, vm int)");
    engine->execute("INSERT INTO runs VALUES (1, 'babel', 2.5, 1)");
    engine->execute("INSERT INTO runs VALUES (2, 'babel', 3.5, 2)");
    engine->execute("INSERT INTO runs VALUES (3, 'vina', 100.0, 1)");
    engine->execute("INSERT INTO runs VALUES (4, 'vina', 200.0, 2)");
    engine->execute("INSERT INTO runs VALUES (5, 'ad4', 150.0, 1)");
    engine->execute("CREATE TABLE vms (vm int, name varchar(20))");
    engine->execute("INSERT INTO vms VALUES (1, 'm3.xlarge'), (2, 'm3.2xlarge')");
  }

  Database db;
  std::unique_ptr<Engine> engine;
};

TEST_F(EngineTest, SelectStar) {
  const ResultSet rs = engine->execute("SELECT * FROM runs");
  EXPECT_EQ(rs.columns.size(), 4u);
  EXPECT_EQ(rs.rows.size(), 5u);
}

TEST_F(EngineTest, WhereFilters) {
  const ResultSet rs =
      engine->execute("SELECT id FROM runs WHERE secs > 50 AND tag <> 'ad4'");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 3);
  EXPECT_EQ(rs.rows[1][0].as_int(), 4);
}

TEST_F(EngineTest, JoinWithPushdown) {
  const ResultSet rs = engine->execute(
      "SELECT r.id, v.name FROM runs r, vms v WHERE r.vm = v.vm AND "
      "v.name = 'm3.2xlarge'");
  ASSERT_EQ(rs.rows.size(), 2u);
  for (const Row& row : rs.rows) {
    EXPECT_EQ(row[1].as_string(), "m3.2xlarge");
  }
}

// The equi-join conjunct below triggers the engine's hash-join fast path
// (buckets over the inner table). The contract under test: the output is
// row-for-row identical to the pure nested loop, including order.
TEST_F(EngineTest, HashJoinMatchesNestedLoopRowOrder) {
  const ResultSet rs = engine->execute(
      "SELECT r.id, v.name FROM runs r, vms v WHERE r.vm = v.vm");
  ASSERT_EQ(rs.rows.size(), 5u);
  const std::pair<int, const char*> expect[] = {{1, "m3.xlarge"},
                                                {2, "m3.2xlarge"},
                                                {3, "m3.xlarge"},
                                                {4, "m3.2xlarge"},
                                                {5, "m3.xlarge"}};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rs.rows[i][0].as_int(), expect[i].first);
    EXPECT_EQ(rs.rows[i][1].as_string(), expect[i].second);
  }
}

TEST_F(EngineTest, HashJoinDuplicateKeysPreserveInnerOrder) {
  engine->execute("CREATE TABLE notes (vm int, note varchar(20))");
  engine->execute("INSERT INTO notes VALUES (1, 'a'), (2, 'b'), (1, 'c')");
  const ResultSet rs = engine->execute(
      "SELECT v.vm, n.note FROM vms v, notes n WHERE n.vm = v.vm");
  ASSERT_EQ(rs.rows.size(), 3u);
  // Outer order (vm 1, 2); within vm 1 the notes keep insertion order.
  EXPECT_EQ(rs.rows[0][1].as_string(), "a");
  EXPECT_EQ(rs.rows[1][1].as_string(), "c");
  EXPECT_EQ(rs.rows[2][1].as_string(), "b");
}

TEST_F(EngineTest, HashJoinExtraConjunctsStillFilter) {
  // The hash bucket only narrows candidates; the non-equi conjunct must
  // still be evaluated per candidate row.
  const ResultSet rs = engine->execute(
      "SELECT r.id FROM runs r, vms v "
      "WHERE r.vm = v.vm AND v.name = 'm3.xlarge' AND r.secs > 100");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 5);
}

TEST_F(EngineTest, HashJoinNullKeysNeverMatch) {
  engine->execute("CREATE TABLE notes (vm int, note varchar(20))");
  engine->execute("INSERT INTO notes VALUES (NULL, 'orphan'), (1, 'ok')");
  const ResultSet rs = engine->execute(
      "SELECT n.note FROM vms v, notes n WHERE n.vm = v.vm");
  ASSERT_EQ(rs.rows.size(), 1u);  // SQL semantics: NULL = x is never true
  EXPECT_EQ(rs.rows[0][0].as_string(), "ok");
}

TEST_F(EngineTest, HashJoinIntAndDoubleKeysCompareNumerically) {
  engine->execute("CREATE TABLE readings (vm float, val int)");
  engine->execute("INSERT INTO readings VALUES (1.0, 10), (2.0, 20), (2.5, 99)");
  // int 1 joins double 1.0 — the key encoding matches Value::compare,
  // which compares all numerics through double.
  const ResultSet rs = engine->execute(
      "SELECT v.vm, r.val FROM vms v, readings r WHERE r.vm = v.vm");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].as_int(), 10);
  EXPECT_EQ(rs.rows[1][1].as_int(), 20);
}

TEST_F(EngineTest, HashJoinStringKeysNeverEqualNumbers) {
  engine->execute("CREATE TABLE labels (vm varchar(4), text varchar(8))");
  engine->execute("INSERT INTO labels VALUES ('1', 'one')");
  // '1' = 1 is false under Value::compare (type ranks differ), and the
  // hash encoding keeps the same verdict via distinct s:/n: prefixes.
  const ResultSet rs = engine->execute(
      "SELECT l.text FROM vms v, labels l WHERE l.vm = v.vm");
  EXPECT_EQ(rs.rows.size(), 0u);
}

TEST_F(EngineTest, ThreeTableJoinHashesNonAdjacentReference) {
  engine->execute("CREATE TABLE notes (vm int, note varchar(20))");
  engine->execute("INSERT INTO notes VALUES (1, 'a'), (2, 'b')");
  // Depth 2's equi-key references table 0 (runs), not its neighbour:
  // the probe key must be read from the right outer binding.
  const ResultSet rs = engine->execute(
      "SELECT r.id, v.name, n.note FROM runs r, vms v, notes n "
      "WHERE r.vm = v.vm AND n.vm = r.vm AND r.tag = 'babel'");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  EXPECT_EQ(rs.rows[0][2].as_string(), "a");
  EXPECT_EQ(rs.rows[1][0].as_int(), 2);
  EXPECT_EQ(rs.rows[1][2].as_string(), "b");
}

TEST_F(EngineTest, GroupByWithAggregates) {
  const ResultSet rs = engine->execute(
      "SELECT tag, min(secs), max(secs), sum(secs), avg(secs), count(*) "
      "FROM runs GROUP BY tag ORDER BY tag");
  ASSERT_EQ(rs.rows.size(), 3u);
  // rows sorted: ad4, babel, vina
  EXPECT_EQ(rs.rows[0][0].as_string(), "ad4");
  EXPECT_EQ(rs.rows[1][0].as_string(), "babel");
  EXPECT_DOUBLE_EQ(rs.rows[1][1].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(rs.rows[1][2].as_double(), 3.5);
  EXPECT_DOUBLE_EQ(rs.rows[1][3].as_double(), 6.0);
  EXPECT_DOUBLE_EQ(rs.rows[1][4].as_double(), 3.0);
  EXPECT_EQ(rs.rows[1][5].as_int(), 2);
  EXPECT_EQ(rs.rows[2][0].as_string(), "vina");
  EXPECT_DOUBLE_EQ(rs.rows[2][4].as_double(), 150.0);
}

TEST_F(EngineTest, AggregateWithoutGroupBy) {
  const ResultSet rs = engine->execute("SELECT count(*), avg(secs) FROM runs");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 5);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 91.2);
}

TEST_F(EngineTest, AggregateOverEmptyInput) {
  const ResultSet rs =
      engine->execute("SELECT count(*) FROM runs WHERE id > 999");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 0);
}

TEST_F(EngineTest, Having) {
  const ResultSet rs = engine->execute(
      "SELECT tag FROM runs GROUP BY tag HAVING count(*) > 1 ORDER BY tag");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "babel");
  EXPECT_EQ(rs.rows[1][0].as_string(), "vina");
}

TEST_F(EngineTest, OrderByMultipleKeysAndLimit) {
  const ResultSet rs = engine->execute(
      "SELECT id FROM runs ORDER BY vm ASC, secs DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 5);  // vm 1, 150s
  EXPECT_EQ(rs.rows[1][0].as_int(), 3);  // vm 1, 100s
}

TEST_F(EngineTest, Distinct) {
  const ResultSet rs = engine->execute("SELECT DISTINCT vm FROM runs");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(EngineTest, LikePatterns) {
  const ResultSet rs =
      engine->execute("SELECT name FROM vms WHERE name LIKE 'm3.%large'");
  EXPECT_EQ(rs.rows.size(), 2u);
  const ResultSet rs2 =
      engine->execute("SELECT name FROM vms WHERE name LIKE '%2xlarge'");
  EXPECT_EQ(rs2.rows.size(), 1u);
  const ResultSet rs3 =
      engine->execute("SELECT name FROM vms WHERE name LIKE 'm_.xlarge'");
  EXPECT_EQ(rs3.rows.size(), 1u);
}

TEST_F(EngineTest, ExtractEpochOnNumericTimestamps) {
  const ResultSet rs = engine->execute(
      "SELECT extract('epoch' from (secs - 0.5)) FROM runs WHERE id = 1");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 2.0);
}

TEST_F(EngineTest, ScalarFunctions) {
  const ResultSet rs = engine->execute(
      "SELECT abs(-3), round(2.7), upper('ab'), lower('CD'), length('hello'), "
      "coalesce(NULL, 7), substr('abcdef', 2, 3) FROM vms LIMIT 1");
  const Row& r = rs.rows[0];
  EXPECT_EQ(r[0].as_int(), 3);
  EXPECT_DOUBLE_EQ(r[1].as_double(), 3.0);
  EXPECT_EQ(r[2].as_string(), "AB");
  EXPECT_EQ(r[3].as_string(), "cd");
  EXPECT_EQ(r[4].as_int(), 5);
  EXPECT_EQ(r[5].as_int(), 7);
  EXPECT_EQ(r[6].as_string(), "bcd");
}

TEST_F(EngineTest, ArithmeticAndConcat) {
  const ResultSet rs = engine->execute(
      "SELECT 7 / 2.0, 7 % 3, 'a' || 'b' || 'c' FROM vms LIMIT 1");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 3.5);
  EXPECT_EQ(rs.rows[0][1].as_int(), 1);
  EXPECT_EQ(rs.rows[0][2].as_string(), "abc");
}

TEST_F(EngineTest, NullHandling) {
  engine->execute("CREATE TABLE n (a int)");
  engine->execute("INSERT INTO n VALUES (NULL), (1)");
  EXPECT_EQ(engine->execute("SELECT count(a) FROM n").rows[0][0].as_int(), 1);
  EXPECT_EQ(engine->execute("SELECT count(*) FROM n").rows[0][0].as_int(), 2);
  EXPECT_EQ(engine->execute("SELECT a FROM n WHERE a IS NULL").rows.size(), 1u);
  EXPECT_EQ(engine->execute("SELECT a FROM n WHERE a IS NOT NULL").rows.size(), 1u);
  // NULL comparisons are never true.
  EXPECT_EQ(engine->execute("SELECT a FROM n WHERE a = a").rows.size(), 1u);
}

TEST_F(EngineTest, DeleteReportsCount) {
  const ResultSet rs = engine->execute("DELETE FROM runs WHERE tag = 'babel'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
  EXPECT_EQ(engine->execute("SELECT * FROM runs").rows.size(), 3u);
}

TEST_F(EngineTest, InsertWithColumnList) {
  engine->execute("INSERT INTO runs (id, tag) VALUES (9, 'x')");
  const ResultSet rs = engine->execute("SELECT secs FROM runs WHERE id = 9");
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST_F(EngineTest, ErrorsOnUnknownEntities) {
  EXPECT_THROW(engine->execute("SELECT * FROM nope"), NotFoundError);
  EXPECT_THROW(engine->execute("SELECT nope FROM runs"), NotFoundError);
  EXPECT_THROW(engine->execute("SELECT nope(1) FROM runs"), NotFoundError);
  EXPECT_THROW(engine->execute("SELECT vm FROM runs r, vms v"), Error);  // ambiguous
}

TEST_F(EngineTest, ScalarFunctionArityChecked) {
  // Regression: floor() with no arguments used to index args[0] out of
  // bounds instead of raising; every scalar now validates its arity.
  EXPECT_THROW(engine->execute("SELECT floor() FROM vms"), Error);
  EXPECT_THROW(engine->execute("SELECT ceil() FROM vms"), Error);
  EXPECT_THROW(engine->execute("SELECT abs(1, 2) FROM vms"), Error);
  EXPECT_THROW(engine->execute("SELECT round(1, 2, 3) FROM vms"), Error);
  EXPECT_THROW(engine->execute("SELECT upper() FROM vms"), Error);
  EXPECT_THROW(engine->execute("SELECT substr(name) FROM vms"), Error);
  EXPECT_THROW(engine->execute("SELECT coalesce() FROM vms"), Error);
  // Null propagates through the merged floor/ceil branch.
  const ResultSet rs =
      engine->execute("SELECT floor(null), ceiling(null) FROM vms");
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(EngineTest, DivisionByZeroRejected) {
  EXPECT_THROW(engine->execute("SELECT 1 / 0.0 FROM vms"), Error);
  EXPECT_THROW(engine->execute("SELECT 1 % 0 FROM vms"), Error);
}

TEST_F(EngineTest, ResultSetRendering) {
  const ResultSet rs = engine->execute("SELECT vm, name FROM vms ORDER BY vm");
  const std::string text = rs.to_text();
  EXPECT_NE(text.find("m3.xlarge"), std::string::npos);
  EXPECT_NE(text.find("(2 rows)"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST_F(EngineTest, OrderByResolvesSelectAliases) {
  const ResultSet rs = engine->execute(
      "SELECT id, secs * 2 AS doubled FROM runs ORDER BY doubled DESC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 4);  // 200s
  EXPECT_EQ(rs.rows[1][0].as_int(), 5);  // 150s
  // Aggregate aliases too.
  const ResultSet grouped = engine->execute(
      "SELECT tag, avg(secs) AS mean FROM runs GROUP BY tag ORDER BY mean");
  EXPECT_EQ(grouped.rows[0][0].as_string(), "babel");
  EXPECT_EQ(grouped.rows[2][0].as_string(), "vina");
}

TEST_F(EngineTest, InAndNotIn) {
  const ResultSet in_rs =
      engine->execute("SELECT id FROM runs WHERE tag IN ('babel', 'ad4') "
                      "ORDER BY id");
  ASSERT_EQ(in_rs.rows.size(), 3u);
  EXPECT_EQ(in_rs.rows[2][0].as_int(), 5);
  const ResultSet not_in =
      engine->execute("SELECT count(*) FROM runs WHERE tag NOT IN ('vina')");
  EXPECT_EQ(not_in.rows[0][0].as_int(), 3);
  // NULL probe is never IN anything.
  engine->execute("CREATE TABLE ni (a int)");
  engine->execute("INSERT INTO ni VALUES (NULL)");
  EXPECT_EQ(engine->execute("SELECT count(*) FROM ni WHERE a IN (1, 2)")
                .rows[0][0]
                .as_int(),
            0);
}

TEST_F(EngineTest, BetweenAndNotBetween) {
  const ResultSet rs = engine->execute(
      "SELECT id FROM runs WHERE secs BETWEEN 3.0 AND 150.0 ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 3u);  // 3.5, 100, 150 (inclusive bounds)
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
  EXPECT_EQ(rs.rows[2][0].as_int(), 5);
  const ResultSet neg = engine->execute(
      "SELECT count(*) FROM runs WHERE secs NOT BETWEEN 3.0 AND 150.0");
  EXPECT_EQ(neg.rows[0][0].as_int(), 2);
}

TEST_F(EngineTest, UpdateWithWhere) {
  const ResultSet rs =
      engine->execute("UPDATE runs SET secs = secs * 2 WHERE tag = 'babel'");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);  // rows updated
  const ResultSet check =
      engine->execute("SELECT sum(secs) FROM runs WHERE tag = 'babel'");
  EXPECT_DOUBLE_EQ(check.rows[0][0].as_double(), 12.0);
  // Other rows untouched.
  const ResultSet rest =
      engine->execute("SELECT sum(secs) FROM runs WHERE tag <> 'babel'");
  EXPECT_DOUBLE_EQ(rest.rows[0][0].as_double(), 450.0);
}

TEST_F(EngineTest, UpdateMultiAssignmentUsesPreUpdateValues) {
  engine->execute("CREATE TABLE swap (a int, b int)");
  engine->execute("INSERT INTO swap VALUES (1, 2)");
  engine->execute("UPDATE swap SET a = b, b = a");
  const ResultSet rs = engine->execute("SELECT a, b FROM swap");
  EXPECT_EQ(rs.rows[0][0].as_int(), 2);
  EXPECT_EQ(rs.rows[0][1].as_int(), 1);
}

TEST_F(EngineTest, UpdateAllRowsAndUnknownColumn) {
  const ResultSet rs = engine->execute("UPDATE runs SET vm = 9");
  EXPECT_EQ(rs.rows[0][0].as_int(), 5);
  EXPECT_THROW(engine->execute("UPDATE runs SET nope = 1"), Error);
}

TEST(Database, TableLifecycle) {
  Database db;
  db.create_table("t", {"a"});
  EXPECT_TRUE(db.has_table("T"));  // case-insensitive
  EXPECT_THROW(db.create_table("t", {"b"}), InvalidStateError);
  EXPECT_EQ(db.table_names().size(), 1u);
  db.drop_table("t");
  EXPECT_FALSE(db.has_table("t"));
  EXPECT_THROW(db.table("t"), NotFoundError);
  EXPECT_THROW(db.drop_table("t"), NotFoundError);
}

TEST(Table, RowWidthEnforced) {
  Table t("x", {"a", "b"});
  EXPECT_THROW(t.insert({Value(1)}), InvalidStateError);
  t.insert({Value(1), Value(2)});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_index("B"), 1);
  EXPECT_EQ(t.column_index("z"), -1);
}

}  // namespace
}  // namespace scidock::sql
