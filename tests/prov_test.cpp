// Tests for the PROV-Wf provenance repository.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "prov/prov.hpp"
#include "util/error.hpp"

namespace scidock::prov {
namespace {

TEST(Provenance, SchemaTablesExist) {
  ProvenanceStore store;
  for (const char* table : {"hmachine", "hworkflow", "hactivity",
                            "hactivation", "hfile", "hvalue"}) {
    const bool present = store.with_database(
        [&](sql::Database& db) { return db.has_table(table); });
    EXPECT_TRUE(present) << table;
  }
}

TEST(Provenance, WorkflowLifecycle) {
  ProvenanceStore store;
  const long long wkfid = store.begin_workflow("SciDock", "Docking",
                                               "/root/scidock/", 0.0);
  EXPECT_EQ(wkfid, 1);
  store.end_workflow(wkfid, 3600.0);
  const auto rs = store.query(
      "SELECT tag, endtime - starttime FROM hworkflow WHERE wkfid = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_string(), "SciDock");
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 3600.0);
}

TEST(Provenance, ActivationDurationsQueryable) {
  ProvenanceStore store;
  const long long wkfid = store.begin_workflow("wf", "", "/x/", 0.0);
  const long long actid = store.register_activity(wkfid, "babel", "./cmd", "MAP");
  const long long t1 = store.begin_activation(actid, wkfid, 10.0, 1, "042_2HHN");
  store.end_activation(t1, 12.5, kStatusFinished, 0, 1);
  const long long t2 = store.begin_activation(actid, wkfid, 12.5, 1, "074_2HHN");
  store.end_activation(t2, 20.0, kStatusFailed, 1, 1);

  const auto rs = store.query(
      "SELECT extract('epoch' from (t.endtime - t.starttime)) "
      "FROM hactivation t ORDER BY t.endtime");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(rs.rows[1][0].as_double(), 7.5);

  const auto failed = store.query(
      "SELECT count(*) FROM hactivation WHERE status = 'FAILED'");
  EXPECT_EQ(failed.rows[0][0].as_int(), 1);
}

TEST(Provenance, EndUnknownActivationThrows) {
  ProvenanceStore store;
  EXPECT_THROW(store.end_activation(99, 1.0, kStatusFinished, 0, 1),
               NotFoundError);
  EXPECT_THROW(store.end_workflow(99, 1.0), NotFoundError);
}

TEST(Provenance, FilesAndValuesRecorded) {
  ProvenanceStore store;
  const long long wkfid = store.begin_workflow("SciDock", "", "/x/", 0.0);
  const long long actid = store.register_activity(wkfid, "autodock4", "./cmd", "MAP");
  const long long taskid = store.begin_activation(actid, wkfid, 0.0, 1, "p");
  store.record_file(wkfid, actid, taskid, "GOL_4C5P.dlg", 65740,
                    "/root/exp_SciDock/autodock4/223/");
  store.record_value(taskid, "FEB", -7.2, "kcal/mol");
  store.record_value(taskid, "RMSD", 55.4, "A");

  const auto files = store.query(
      "SELECT f.fname, f.fsize FROM hfile f WHERE f.fname LIKE '%.dlg'");
  ASSERT_EQ(files.rows.size(), 1u);
  EXPECT_EQ(files.rows[0][1].as_int(), 65740);

  const auto values = store.query(
      "SELECT key, value_num FROM hvalue ORDER BY key");
  ASSERT_EQ(values.rows.size(), 2u);
  EXPECT_EQ(values.rows[0][0].as_string(), "FEB");
  EXPECT_DOUBLE_EQ(values.rows[0][1].as_double(), -7.2);
}

TEST(Provenance, MachinesRecorded) {
  ProvenanceStore store;
  store.record_machine(1, "m3.xlarge", 4, 1.0);
  store.record_machine(2, "m3.2xlarge", 8, 0.95);
  const auto rs = store.query(
      "SELECT sum(cores) FROM hmachine");
  EXPECT_EQ(rs.rows[0][0].as_int(), 12);
}

TEST(Provenance, ThreeWayJoinLikeQuery2) {
  ProvenanceStore store;
  const long long wkfid = store.begin_workflow("SciDock", "", "/x/", 0.0);
  const long long a1 = store.register_activity(wkfid, "autodock4", "./c", "MAP");
  const long long a2 = store.register_activity(wkfid, "babel", "./c", "MAP");
  const long long t1 = store.begin_activation(a1, wkfid, 0.0, 1, "p");
  const long long t2 = store.begin_activation(a2, wkfid, 0.0, 1, "p");
  store.record_file(wkfid, a1, t1, "x.dlg", 100, "/d/");
  store.record_file(wkfid, a2, t2, "y.mol2", 50, "/d/");

  const auto rs = store.query(
      "SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir "
      "FROM hworkflow w, hactivity a, hfile f "
      "WHERE w.wkfid = a.wkfid AND a.actid = f.actid "
      "AND f.fname LIKE '%.dlg'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].as_string(), "autodock4");
  EXPECT_EQ(rs.rows[0][2].as_string(), "x.dlg");
}

TEST(Provenance, RuntimeQueryDuringExecution) {
  // The paper's steering feature: querying while activations are open
  // (endtime NULL) must work and expose running activations.
  ProvenanceStore store;
  const long long wkfid = store.begin_workflow("wf", "", "/x/", 0.0);
  const long long actid = store.register_activity(wkfid, "vina", "./c", "MAP");
  store.begin_activation(actid, wkfid, 5.0, 1, "p1");
  const auto rs = store.query(
      "SELECT count(*) FROM hactivation WHERE endtime IS NULL");
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
  const auto running = store.query(
      "SELECT count(*) FROM hactivation WHERE status = 'RUNNING'");
  EXPECT_EQ(running.rows[0][0].as_int(), 1);
}

TEST(Provenance, ProvNExportCoversTheGraph) {
  ProvenanceStore store;
  store.record_machine(1, "m3.xlarge", 4, 1.0);
  const long long wkfid = store.begin_workflow("SciDock", "", "/x/", 0.0);
  const long long actid = store.register_activity(wkfid, "autodock4", "./c", "MAP");
  const long long taskid = store.begin_activation(actid, wkfid, 0.0, 1, "p");
  store.end_activation(taskid, 5.0, kStatusFinished, 0, 1);
  store.record_file(wkfid, actid, taskid, "x.dlg", 100, "/d/");

  const std::string prov_n = store.export_prov_n();
  EXPECT_NE(prov_n.find("document"), std::string::npos);
  EXPECT_NE(prov_n.find("endDocument"), std::string::npos);
  EXPECT_NE(prov_n.find("activity(scidock:workflow/1"), std::string::npos);
  EXPECT_NE(prov_n.find("agent(scidock:vm/1"), std::string::npos);
  EXPECT_NE(prov_n.find("activity(scidock:activation/1"), std::string::npos);
  EXPECT_NE(prov_n.find("wasAssociatedWith(scidock:activation/1, scidock:vm/1"),
            std::string::npos);
  EXPECT_NE(prov_n.find("entity(scidock:file/1, [prov:label=\"/d/x.dlg\"])"),
            std::string::npos);
  EXPECT_NE(prov_n.find("wasGeneratedBy(scidock:file/1, scidock:activation/1"),
            std::string::npos);
  EXPECT_NE(prov_n.find("scidock:status=\"FINISHED\""), std::string::npos);
}

TEST(Provenance, ProvNExportOfEmptyStore) {
  ProvenanceStore store;
  const std::string prov_n = store.export_prov_n();
  EXPECT_NE(prov_n.find("document"), std::string::npos);
  EXPECT_EQ(prov_n.find("activity("), std::string::npos);
}

// Regression: the store used to expose `database()`, handing out an
// unsynchronised reference that callers could scan while recorder threads
// mutated the tables underneath (flagged by -Wthread-safety once the store
// was annotated). with_database() runs the callback under the store lock,
// so a steering-style scan during concurrent recording observes only
// complete rows and never tears.
TEST(Provenance, WithDatabaseIsSafeDuringRecording) {
  ProvenanceStore store;
  const long long wkfid = store.begin_workflow("steer", "", "/x/", 0.0);
  const long long actid = store.register_activity(wkfid, "dock", "./d", "MAP");
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 64;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, actid, wkfid, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const long long taskid = store.begin_activation(
            actid, wkfid, 1.0, 1, "lig-" + std::to_string(w * kPerWriter + i));
        store.end_activation(taskid, 2.0, kStatusFinished, 0, 1);
      }
    });
  }
  // Steering reader: every snapshot must hold only fully-formed rows.
  std::size_t last = 0;
  for (int probe = 0; probe < 200; ++probe) {
    store.with_database([&](sql::Database& db) {
      const sql::Table& t = db.table("hactivation");
      const auto c_task = static_cast<std::size_t>(t.column_index("taskid"));
      EXPECT_GE(t.rows().size(), last);
      last = t.rows().size();
      for (const sql::Row& row : t.rows()) {
        EXPECT_FALSE(row[c_task].is_null());
        EXPECT_EQ(row.size(), t.columns().size());
      }
    });
  }
  for (auto& t : writers) t.join();
  const auto rs = store.query("SELECT count(*) FROM hactivation");
  EXPECT_EQ(rs.rows[0][0].as_int(), kWriters * kPerWriter);
}

TEST(Provenance, IdsAreMonotonic) {
  ProvenanceStore store;
  const long long w1 = store.begin_workflow("a", "", "/x/", 0.0);
  const long long w2 = store.begin_workflow("b", "", "/x/", 0.0);
  EXPECT_LT(w1, w2);
  const long long a1 = store.register_activity(w1, "t", "./c", "MAP");
  const long long a2 = store.register_activity(w2, "t", "./c", "MAP");
  EXPECT_LT(a1, a2);
}

}  // namespace
}  // namespace scidock::prov
