#include "data/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "mol/io_pdb.hpp"
#include "mol/io_sdf.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scidock::data {

using mol::Atom;
using mol::BondOrder;
using mol::Element;
using mol::Molecule;
using mol::Vec3;

namespace {

Vec3 random_unit(Rng& rng) {
  // Marsaglia: uniform on the sphere.
  for (;;) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    const double s = x * x + y * y;
    if (s >= 1.0) continue;
    const double root = 2.0 * std::sqrt(1.0 - s);
    return {x * root, y * root, 1.0 - 2.0 * s};
  }
}

/// True if `p` is closer than `min_dist` to any position in `placed`.
bool clashes(const std::vector<Vec3>& placed, const Vec3& p, double min_dist) {
  const double d2 = min_dist * min_dist;
  for (const Vec3& q : placed) {
    if (mol::distance_sq(p, q) < d2) return true;
  }
  return false;
}

/// The twenty-ish residue names the generator cycles through; CYS is
/// over-represented because the dataset is a cysteine-protease clan.
const char* kResidueNames[] = {"CYS", "GLY", "ALA", "SER", "LEU", "VAL",
                               "CYS", "ASP", "GLU", "LYS", "HIS", "TRP",
                               "ASN", "GLN", "THR", "CYS", "PHE", "ILE"};

}  // namespace

int receptor_residue_count(std::string_view code, const GeneratorOptions& opts) {
  // A smooth deterministic spread across [min, max]; quadratic skew so
  // "large" receptors are the minority, like real PDB size distributions.
  std::uint64_t h = fnv1a64(code) ^ 0x7ec7u;
  const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  const double skewed = u * u * 0.6 + u * 0.4;
  return opts.min_residues +
         static_cast<int>(skewed * (opts.max_residues - opts.min_residues));
}

int vina_size_threshold(const GeneratorOptions& opts) {
  // Route the largest ~45% of receptors to Vina, giving the paper's two
  // sizeable scenarios.
  return opts.min_residues +
         static_cast<int>(0.55 * (opts.max_residues - opts.min_residues));
}

bool receptor_has_hg(std::string_view code, const GeneratorOptions& opts) {
  std::uint64_t h = fnv1a64(code) ^ 0x49a1u;
  const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  return u < opts.hg_fraction;
}

Molecule make_receptor(std::string_view code, const GeneratorOptions& opts) {
  Rng rng(fnv1a64(code));
  const int residues = receptor_residue_count(code, opts);
  Molecule m{std::string(code)};

  // Compact globule radius ~ c * n^(1/3); protein density heuristic.
  const double radius = 4.0 * std::cbrt(static_cast<double>(residues)) + 4.0;
  std::vector<Vec3> ca_trace;
  Vec3 pos = random_unit(rng) * (radius * 0.7);

  int serial = 1;
  for (int r = 0; r < residues; ++r) {
    // Advance the CA trace: 3.8 Å steps, bounced off the globule surface
    // and repelled from the central binding cavity.
    for (int attempt = 0; attempt < 24; ++attempt) {
      const Vec3 step = random_unit(rng) * 3.8;
      Vec3 candidate = pos + step;
      if (candidate.norm() > radius) candidate = candidate * (radius / candidate.norm());
      if (candidate.norm() < opts.cavity_radius) continue;  // keep the pocket open
      if (clashes(ca_trace, candidate, 3.4)) continue;
      pos = candidate;
      break;
    }
    ca_trace.push_back(pos);

    const std::string res_name =
        kResidueNames[rng.below(std::size(kResidueNames))];
    auto add = [&](const char* atom_name, Element e, const Vec3& offset,
                   bool hetero = false) {
      Atom a;
      a.serial = serial++;
      a.name = atom_name;
      a.element = e;
      a.pos = pos + offset;
      a.residue_name = res_name;
      a.residue_seq = r + 1;
      a.chain_id = 'A';
      a.hetero = hetero;
      m.add_atom(std::move(a));
    };
    // Backbone N-CA-C=O plus a CB side-chain stub; CYS gets its thiol.
    add("N", Element::N, random_unit(rng) * 1.46);
    add("CA", Element::C, {0, 0, 0});
    const Vec3 c_dir = random_unit(rng);
    add("C", Element::C, c_dir * 1.52);
    add("O", Element::O, c_dir * 1.52 + random_unit(rng) * 1.23);
    if (res_name != "GLY") {
      const Vec3 cb_dir = random_unit(rng);
      add("CB", Element::C, cb_dir * 1.53);
      if (res_name == "CYS") add("SG", Element::S, cb_dir * 1.53 + random_unit(rng) * 1.81);
    }
  }

  // Line the carved cavity with a dense shell of pocket residues — real
  // binding sites pack side chains against the ligand; without this the
  // synthetic pocket is too sparse for deep binding wells.
  const int lining = 60 + residues;
  for (int k = 0; k < lining; ++k) {
    const Vec3 dir = random_unit(rng);
    const Vec3 site = dir * (opts.cavity_radius + 1.3 + rng.uniform(0.0, 0.8));
    const std::string res_name =
        kResidueNames[rng.below(std::size(kResidueNames))];
    Atom a;
    a.serial = serial++;
    a.name = (k % 3 == 0) ? "OD1" : ((k % 3 == 1) ? "CG" : "ND2");
    a.element = (k % 3 == 0) ? Element::O : ((k % 3 == 1) ? Element::C : Element::N);
    a.pos = site;
    a.residue_name = res_name;
    a.residue_seq = residues + k + 1;
    a.chain_id = 'A';
    m.add_atom(std::move(a));
  }

  // A few crystallographic waters (stripped by receptor preparation).
  const int waters = static_cast<int>(rng.below(4));
  for (int w = 0; w < waters; ++w) {
    Atom a;
    a.serial = serial++;
    a.name = "O";
    a.element = Element::O;
    a.pos = random_unit(rng) * (radius + 2.0);
    a.residue_name = "HOH";
    a.residue_seq = residues + w + 1;
    a.hetero = true;
    m.add_atom(std::move(a));
  }

  if (receptor_has_hg(code, opts)) {
    Atom a;
    a.serial = serial++;
    a.name = "HG";
    a.element = Element::Hg;
    a.pos = random_unit(rng) * (radius * 0.8);
    a.residue_name = "HG";
    a.residue_seq = residues + waters + 1;
    a.hetero = true;
    m.add_atom(std::move(a));
  }
  return m;
}

Molecule make_ligand(std::string_view code, const GeneratorOptions& opts) {
  Rng rng(fnv1a64(code) ^ 0x11ULL);
  const int heavy =
      opts.min_ligand_atoms +
      static_cast<int>(rng.below(static_cast<std::uint64_t>(
          opts.max_ligand_atoms - opts.min_ligand_atoms + 1)));
  Molecule m{std::string(code)};

  // --- topology: an aromatic 6-ring core plus a random grown tree ---
  std::vector<int> degree;

  auto add_atom_node = [&](Element e) {
    Atom a;
    a.serial = m.atom_count() + 1;
    a.element = e;
    a.name = std::string(mol::element_info(e).symbol) +
             std::to_string(m.atom_count() + 1);
    a.residue_name = std::string(code).substr(0, 3);
    a.residue_seq = 1;
    degree.push_back(0);
    return m.add_atom(std::move(a));
  };

  // Benzene-like core.
  for (int i = 0; i < 6; ++i) add_atom_node(Element::C);
  for (int i = 0; i < 6; ++i) {
    m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic);
    degree[static_cast<std::size_t>(i)] += 1;
    degree[static_cast<std::size_t>((i + 1) % 6)] += 1;
  }

  auto pick_element = [&]() {
    const double u = rng.uniform();
    if (u < 0.62) return Element::C;
    if (u < 0.76) return Element::N;
    if (u < 0.90) return Element::O;
    if (u < 0.95) return Element::S;
    if (u < 0.98) return Element::Cl;
    return Element::F;
  };
  auto cap_for = [](Element e) {
    switch (e) {
      case Element::C: return 4;
      case Element::N: return 3;
      case Element::O: return 2;
      case Element::S: return 2;
      default: return 1;
    }
  };

  while (m.atom_count() < heavy) {
    // Attach to a random atom with spare valence.
    std::vector<int> candidates;
    for (int i = 0; i < m.atom_count(); ++i) {
      const Element e = m.atom(i).element;
      if (degree[static_cast<std::size_t>(i)] < cap_for(e) - (i < 6 ? 1 : 0)) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) break;
    const int parent = candidates[rng.below(candidates.size())];
    const Element e = pick_element();
    const int child = add_atom_node(e);
    BondOrder order = BondOrder::Single;
    // Occasional carbonyl: C=O terminal.
    if (e == Element::O && m.atom(parent).element == Element::C &&
        degree[static_cast<std::size_t>(parent)] <= 2 && rng.chance(0.3)) {
      order = BondOrder::Double;
    }
    m.add_bond(parent, child, order);
    degree[static_cast<std::size_t>(parent)] += 1;
    degree[static_cast<std::size_t>(child)] += 1;
  }

  // Polar hydrogens on N/O with spare valence (H-bond donors).
  const int heavy_n = m.atom_count();
  for (int i = 6; i < heavy_n; ++i) {
    const Element e = m.atom(i).element;
    if ((e == Element::N || e == Element::O) &&
        degree[static_cast<std::size_t>(i)] < cap_for(e) && rng.chance(0.8)) {
      const int h = add_atom_node(Element::H);
      m.add_bond(i, h, BondOrder::Single);
      degree[static_cast<std::size_t>(i)] += 1;
      degree[static_cast<std::size_t>(h)] += 1;
    }
  }

  // --- 3D embedding: ring as a planar hexagon, the rest grown outward ---
  std::vector<Vec3> coords(static_cast<std::size_t>(m.atom_count()));
  std::vector<bool> placed(static_cast<std::size_t>(m.atom_count()), false);
  constexpr double kRingBond = 1.39;
  for (int i = 0; i < 6; ++i) {
    const double angle = 2.0 * std::numbers::pi * i / 6.0;
    coords[static_cast<std::size_t>(i)] = {kRingBond * std::cos(angle) / (2 * std::sin(std::numbers::pi / 6)),
                                           kRingBond * std::sin(angle) / (2 * std::sin(std::numbers::pi / 6)),
                                           0.0};
    placed[static_cast<std::size_t>(i)] = true;
  }
  // BFS placement along bonds.
  bool progress = true;
  std::vector<Vec3> occupied(coords.begin(), coords.begin() + 6);
  while (progress) {
    progress = false;
    for (const mol::Bond& b : m.bonds()) {
      int from = -1, to = -1;
      if (placed[static_cast<std::size_t>(b.a)] && !placed[static_cast<std::size_t>(b.b)]) {
        from = b.a;
        to = b.b;
      } else if (placed[static_cast<std::size_t>(b.b)] && !placed[static_cast<std::size_t>(b.a)]) {
        from = b.b;
        to = b.a;
      } else {
        continue;
      }
      const double length =
          mol::element_info(m.atom(from).element).covalent_radius +
          mol::element_info(m.atom(to).element).covalent_radius;
      Vec3 p;
      bool ok = false;
      for (int attempt = 0; attempt < 30; ++attempt) {
        p = coords[static_cast<std::size_t>(from)] + random_unit(rng) * length;
        if (!clashes(occupied, p, 1.1)) {
          ok = true;
          break;
        }
      }
      if (!ok) p = coords[static_cast<std::size_t>(from)] + random_unit(rng) * length;
      coords[static_cast<std::size_t>(to)] = p;
      placed[static_cast<std::size_t>(to)] = true;
      occupied.push_back(p);
      progress = true;
    }
  }
  for (int i = 0; i < m.atom_count(); ++i) {
    m.mutable_atom(i).pos = coords[static_cast<std::size_t>(i)];
  }
  // Real SDF depositions sit in their own crystal/builder frame, tens of
  // Ångström away from any receptor's frame; reproduce that so RMSD-from-
  // input behaves like the paper's (large for reference-relative RMSD).
  m.translate(random_unit(rng) * rng.uniform(40.0, 70.0));
  return m;
}

int stage_dataset(vfs::SharedFileSystem& fs, std::string_view expdir,
                  const std::vector<std::string>& receptors,
                  const std::vector<std::string>& ligands,
                  const GeneratorOptions& opts) {
  int staged = 0;
  const std::string base = std::string(expdir) + "/input/";
  for (const std::string& code : receptors) {
    fs.write(base + code + ".pdb", mol::write_pdb(make_receptor(code, opts)));
    ++staged;
  }
  for (const std::string& code : ligands) {
    fs.write(base + code + ".sdf", mol::write_sdf(make_ligand(code, opts)));
    ++staged;
  }
  return staged;
}

wf::Relation build_pairs_relation(const std::vector<std::string>& receptors,
                                  const std::vector<std::string>& ligands,
                                  std::string_view expdir,
                                  std::size_t max_pairs,
                                  const GeneratorOptions& opts) {
  wf::Relation rel{{"pair", "receptor", "ligand", "receptor_file",
                    "ligand_file", "residues", "engine", "workload", "hg"}};
  const std::string base = std::string(expdir) + "/input/";
  const double mean_residues = (opts.min_residues + opts.max_residues) / 2.0;
  const int threshold = vina_size_threshold(opts);
  std::size_t count = 0;
  // Ligand-major order matches the paper's analysis of "the first 1,000
  // pairs" being the 238 receptors against the first 4 ligands.
  for (const std::string& lig : ligands) {
    for (const std::string& rec : receptors) {
      if (max_pairs != 0 && count >= max_pairs) return rel;
      const int residues = receptor_residue_count(rec, opts);
      wf::Tuple t;
      t.set("pair", lig + "_" + rec);
      t.set("receptor", rec);
      t.set("ligand", lig);
      t.set("receptor_file", base + rec + ".pdb");
      t.set("ligand_file", base + lig + ".sdf");
      t.set("residues", std::to_string(residues));
      t.set("engine", residues > threshold ? "vina" : "ad4");
      t.set("workload", strformat("%.3f", residues / mean_residues));
      t.set("hg", receptor_has_hg(rec, opts) ? "1" : "0");
      rel.add(std::move(t));
      ++count;
    }
  }
  return rel;
}

}  // namespace scidock::data
