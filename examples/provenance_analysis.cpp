// provenance_analysis — the paper's second contribution in action: run a
// screening, then answer questions with SQL against the PROV-Wf
// repository instead of browsing result directories: execution
// statistics (Query 1), output files (Query 2), failure forensics (the
// Hg diagnosis of Section V.C), and runtime steering.

#include <cstdio>

#include "data/table2.hpp"
#include "scidock/analysis.hpp"
#include "scidock/experiment.hpp"

int main() {
  using namespace scidock;

  // A 500-pair screening on the 16-core simulated cluster with full
  // provenance capture (every attempt, file and extracted value).
  core::ScidockOptions options;
  core::Experiment exp = core::make_experiment(
      data::table2_receptors(), data::table2_ligands(), 500, options);
  prov::ProvenanceStore store;
  const wf::SimReport report = core::run_simulated(exp, 16, &store);
  std::printf("executed 500 pairs: %lld activations, %lld failures, "
              "%lld hangs aborted\n",
              report.activations_finished, report.activations_failed,
              report.activations_hung);

  // --- Query 1: execution statistics per activity -------------------
  std::printf("\n### Query 1 — \"Obtain the TET and statistical averages "
              "related to the SciDock executions\"\n\n");
  std::printf("%s\n", store.query(core::query1(1)).to_text().c_str());

  // --- failure forensics: which inputs keep failing? ----------------
  std::printf("### forensics — activations that needed re-execution, "
              "grouped by activity\n\n");
  std::printf("%s\n",
              store.query(core::forensics_failed_by_activity())
                  .to_text()
                  .c_str());

  // The Hg diagnosis: aborted (looping-state) activations concentrate on
  // specific receptor pairs — exactly how the authors found the Hg bug.
  std::printf("### forensics — the 'looping state' pairs (Hg receptors)\n\n");
  std::printf("%s\n",
              store.query(core::forensics_hg_aborts()).to_text().c_str());

  // --- steering-style live view -------------------------------------
  std::printf("### steering — longest activations of the run\n\n");
  std::printf("%s\n",
              store.query(core::steering_longest_activations())
                  .to_text()
                  .c_str());

  // --- cost accounting ------------------------------------------------
  std::printf("TET %.1f h on 16 cores; simulated cloud bill $%.2f\n",
              report.total_execution_time_s / 3600.0, report.cloud_cost_usd);
  return 0;
}
