#include "dock/autodock4.hpp"

#include <algorithm>
#include <chrono>

#include "dock/autogrid.hpp"
#include "dock/cluster.hpp"
#include "dock/energy.hpp"
#include "mol/molecule.hpp"
#include "util/error.hpp"

namespace scidock::dock {

Autodock4Engine::Autodock4Engine(DockingParameterFile params)
    : params_(std::move(params)) {}

DockingResult Autodock4Engine::dock(const mol::PreparedReceptor& receptor,
                                    const mol::PreparedLigand& ligand,
                                    const GridBox& box, Rng& rng) {
  SCIDOCK_REQUIRE(ligand.molecule.fully_parameterised(),
                  "AD4: ligand has unparameterised atoms");
  SCIDOCK_REQUIRE(receptor.molecule.fully_parameterised(),
                  "AD4: receptor has unparameterised atoms");
  GridMapCalculator calc(receptor.molecule);
  mol::Molecule lig = ligand.molecule;  // ad_types_present needs perceive()
  lig.perceive();
  const GridMapSet maps = calc.calculate(box, lig.ad_types_present());
  DockingResult result = dock_with_maps(maps, ligand, rng);
  result.receptor_name = receptor.molecule.name();
  return result;
}

DockingResult Autodock4Engine::dock_with_maps(const GridMapSet& maps,
                                              const mol::PreparedLigand& ligand,
                                              Rng& rng) {
  const auto t0 = std::chrono::steady_clock::now();
  Ad4EnergyModel model(maps, ligand);
  const std::vector<mol::Vec3> input_coords = ligand.molecule.coordinates();
  const int n_tors = ligand.torsions.torsion_count();

  DockingResult result;
  result.ligand_name = ligand.molecule.name();
  result.engine_name = name();

  struct Individual {
    DockPose pose;
    double energy = 0.0;
  };

  for (int run = 0; run < params_.ga_runs; ++run) {
    // --- initial population ---
    std::vector<Individual> population;
    population.reserve(static_cast<std::size_t>(params_.ga_pop_size));
    for (int i = 0; i < params_.ga_pop_size; ++i) {
      Individual ind;
      ind.pose = DockPose::random(maps.box, model.reference_center(), n_tors, rng);
      ind.energy = model(ind.pose);
      population.push_back(std::move(ind));
    }

    const long long eval_budget = params_.ga_num_evals;
    const long long evals_at_start = model.evaluations();
    int generation = 0;
    while (generation < params_.ga_num_generations &&
           model.evaluations() - evals_at_start < eval_budget) {
      ++generation;
      std::sort(population.begin(), population.end(),
                [](const Individual& a, const Individual& b) {
                  return a.energy < b.energy;
                });

      // Elitism: the best individual survives unchanged.
      std::vector<Individual> next;
      next.reserve(population.size());
      next.push_back(population.front());

      // Binary-tournament selection + crossover + mutation.
      auto tournament = [&]() -> const Individual& {
        const auto a = rng.below(population.size());
        const auto b = rng.below(population.size());
        return population[a].energy < population[b].energy ? population[a]
                                                           : population[b];
      };
      while (next.size() < population.size()) {
        const Individual& pa = tournament();
        const Individual& pb = tournament();
        Individual child;
        child.pose = rng.chance(params_.ga_crossover_rate)
                         ? pa.pose.crossover(pb.pose, rng)
                         : pa.pose;
        if (rng.chance(params_.ga_mutation_rate * 10.0)) {
          child.pose.mutate_one(1.0, 0.3, 0.5, rng);
        }
        child.energy = model(child.pose);
        next.push_back(std::move(child));
      }
      population = std::move(next);

      // Lamarckian step: local search on ~6% of the population (AD4's
      // ls_search_freq default), writing the result back to the genome.
      for (Individual& ind : population) {
        if (!rng.chance(0.06)) continue;
        double improved = 0.0;
        ind.pose = solis_wets(ind.pose, model, rng, params_.sw_max_its, improved);
        ind.energy = improved;
      }
    }

    auto best_it = std::min_element(
        population.begin(), population.end(),
        [](const Individual& a, const Individual& b) { return a.energy < b.energy; });
    // Final Lamarckian polish of the run winner (AD4 ends each run with an
    // intensified local search before reporting).
    double polished_energy = 0.0;
    best_it->pose = solis_wets(best_it->pose, model, rng,
                               params_.sw_max_its * 4, polished_energy, 0.5);
    best_it->energy = polished_energy;
    Conformation conf;
    conf.coords = model.coords_for(best_it->pose);
    conf.intermolecular = model.intermolecular(conf.coords);
    conf.intramolecular = model.intramolecular(conf.coords);
    conf.feb = model.feb(conf.intermolecular);
    conf.rmsd_from_input = mol::rmsd(conf.coords, input_coords);
    conf.run = run;
    result.conformations.push_back(std::move(conf));
  }

  cluster_conformations(result.conformations, params_.rmstol);
  result.energy_evaluations = model.evaluations();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace scidock::dock
