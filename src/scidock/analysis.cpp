#include "scidock/analysis.hpp"

#include <map>

#include "util/strings.hpp"

namespace scidock::core {

std::vector<Table3Row> table3_from_relation(const wf::Relation& output) {
  struct Acc {
    int total = 0;
    int favorable = 0;
    double feb_neg_sum = 0.0;
    double rmsd_sum = 0.0;
  };
  std::map<std::string, Acc> by_ligand;
  for (const wf::Tuple& t : output.tuples()) {
    const auto feb = t.get("feb");
    const auto rmsd = t.get("rmsd");
    if (!feb || !rmsd) continue;
    Acc& acc = by_ligand[t.require("ligand")];
    ++acc.total;
    const double f = parse_double(*feb, "feb");
    if (f < 0.0) {
      ++acc.favorable;
      acc.feb_neg_sum += f;
    }
    acc.rmsd_sum += parse_double(*rmsd, "rmsd");
  }
  std::vector<Table3Row> rows;
  for (const auto& [ligand, acc] : by_ligand) {
    Table3Row row;
    row.ligand = ligand;
    row.total_pairs = acc.total;
    row.favorable = acc.favorable;
    row.avg_feb_neg = acc.favorable ? acc.feb_neg_sum / acc.favorable : 0.0;
    row.avg_rmsd = acc.total ? acc.rmsd_sum / acc.total : 0.0;
    rows.push_back(row);
  }
  return rows;
}

std::string render_table3(const std::vector<Table3Row>& ad4,
                          const std::vector<Table3Row>& vina) {
  std::string out;
  out += "Ligand | FEB(-) AD4 | FEB(-) Vina | avgFEB AD4 | avgFEB Vina | "
         "avgRMSD AD4 | avgRMSD Vina\n";
  out += "-------+------------+-------------+------------+-------------+"
         "-------------+-------------\n";
  auto find = [](const std::vector<Table3Row>& rows, const std::string& lig)
      -> const Table3Row* {
    for (const Table3Row& r : rows) {
      if (r.ligand == lig) return &r;
    }
    return nullptr;
  };
  for (const Table3Row& a : ad4) {
    const Table3Row* v = find(vina, a.ligand);
    out += strformat("%-6s | %10d | %11d | %10.1f | %11.1f | %11.1f | %12.1f\n",
                     a.ligand.c_str(), a.favorable, v ? v->favorable : 0,
                     a.avg_feb_neg, v ? v->avg_feb_neg : 0.0, a.avg_rmsd,
                     v ? v->avg_rmsd : 0.0);
  }
  int total_ad4 = 0;
  int total_vina = 0;
  for (const Table3Row& r : ad4) total_ad4 += r.favorable;
  for (const Table3Row& r : vina) total_vina += r.favorable;
  out += strformat("TOTAL favourable interactions: AD4 %d, Vina %d\n",
                   total_ad4, total_vina);
  return out;
}

std::string figure5_query(long long wkfid) {
  return strformat(
      "SELECT extract ('epoch' from (t.endtime-t.starttime)) "
      "FROM hworkflow w, hactivity a, hactivation t "
      "WHERE w.wkfid = a.wkfid "
      "AND a.actid = t.actid "
      "AND w.wkfid = %lld "
      "ORDER BY t.endtime",
      wkfid);
}

std::string query1(long long wkfid) {
  return strformat(
      "SELECT a.tag, "
      "min(extract ('epoch' from (t.endtime-t.starttime))), "
      "max(extract ('epoch' from (t.endtime-t.starttime))), "
      "sum(extract ('epoch' from (t.endtime-t.starttime))), "
      "avg(extract ('epoch' from (t.endtime-t.starttime))) "
      "FROM hworkflow w, hactivity a, hactivation t "
      "WHERE w.wkfid = a.wkfid "
      "AND a.actid = t.actid "
      "AND w.wkfid = %lld "
      "GROUP BY a.tag",
      wkfid);
}

std::string query2() {
  return "SELECT w.tag, a.tag, f.fname, f.fsize, f.fdir "
         "FROM hworkflow w, hactivity a, hfile f "
         "WHERE w.wkfid = a.wkfid "
         "AND a.actid = f.actid "
         "AND f.fname LIKE '%.dlg' "
         "ORDER BY f.fileid";
}

}  // namespace scidock::core
