#include "scidock/scidock.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <tuple>
#include <unordered_map>

#include "dock/autodock4.hpp"
#include "dock/autogrid.hpp"
#include "dock/dlg.hpp"
#include "dock/vina.hpp"
#include "mol/io_mol2.hpp"
#include "mol/io_pdb.hpp"
#include "mol/io_pdbqt.hpp"
#include "mol/io_sdf.hpp"
#include "mol/prepare.hpp"
#include "util/error.hpp"
#include "util/thread_annotations.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scidock::core {

using wf::ActivationContext;
using wf::Stage;
using wf::Tuple;

std::shared_ptr<const mol::PreparedLigand> ArtifactCache::ligand(
    const std::string& key) {
  MutexLock lock(mutex_);
  const auto it = ligands_.find(key);
  return it == ligands_.end() ? nullptr : it->second;
}

void ArtifactCache::put_ligand(const std::string& key, mol::PreparedLigand value) {
  MutexLock lock(mutex_);
  ligands_[key] = std::make_shared<mol::PreparedLigand>(std::move(value));
}

std::shared_ptr<const mol::PreparedReceptor> ArtifactCache::receptor(
    const std::string& key) {
  MutexLock lock(mutex_);
  const auto it = receptors_.find(key);
  return it == receptors_.end() ? nullptr : it->second;
}

void ArtifactCache::put_receptor(const std::string& key,
                                 mol::PreparedReceptor value) {
  MutexLock lock(mutex_);
  receptors_[key] = std::make_shared<mol::PreparedReceptor>(std::move(value));
}

ArtifactCache::MapsPtr ArtifactCache::maps(const std::string& key) {
  MutexLock lock(mutex_);
  const auto it = maps_.find(key);
  return it == maps_.end() ? nullptr : it->second;
}

void ArtifactCache::put_maps(const std::string& key, dock::GridMapSet value) {
  MutexLock lock(mutex_);
  maps_[key] = std::make_shared<dock::GridMapSet>(std::move(value));
}

void ArtifactCache::alias_maps(const std::string& key, MapsPtr value) {
  MutexLock lock(mutex_);
  maps_[key] = std::move(value);
}

std::pair<ArtifactCache::MapsPtr, CacheOutcome>
ArtifactCache::get_or_compute_maps(
    const std::string& key,
    const std::function<dock::GridMapSet()>& compute) {
  std::shared_future<MapsPtr> future;
  std::shared_ptr<std::promise<MapsPtr>> owner;
  CacheOutcome outcome = CacheOutcome::kMiss;
  /// Racer HB id for the flight handoff: the promise the owner fulfils.
  const void* flight_sync = nullptr;
#if SCIDOCK_LOCKDEP_ENABLED
  const void* flight_owner_pool = nullptr;
#endif
  {
    MutexLock lock(mutex_);
    const auto it = map_flights_.find(key);
    if (it != map_flights_.end()) {
      future = it->second.future;
      flight_sync = it->second.promise.get();
      outcome = future.wait_for(std::chrono::seconds(0)) ==
                        std::future_status::ready
                    ? CacheOutcome::kHit
                    : CacheOutcome::kInflightWait;
#if SCIDOCK_LOCKDEP_ENABLED
      flight_owner_pool = it->second.owner_pool;
#endif
    } else {
      owner = std::make_shared<std::promise<MapsPtr>>();
      MapFlight flight{owner, owner->get_future().share()};
      future = flight.future;
      flight_sync = owner.get();
#if SCIDOCK_LOCKDEP_ENABLED
      // Remember which pool (if any) the owner is a worker of, so a
      // concurrent waiter from the same pool can be flagged (LD002).
      flight.owner_pool = lockdep::current_pool();
#endif
      map_flights_.emplace(key, std::move(flight));
    }
  }
  if (owner) {
    try {
      auto maps = std::make_shared<const dock::GridMapSet>(compute());
      // Everything compute() wrote happens-before any waiter that gets
      // the future: release on the promise, acquire after future.get().
      racer::on_hb_release(flight_sync, "scidock.gridmaps.single_flight");
      owner->set_value(std::move(maps));
    } catch (...) {
      // Waiters already holding the future see the exception; erasing the
      // flight lets the executor's retry (or a later tuple) recompute.
      owner->set_exception(std::current_exception());
      MutexLock lock(mutex_);
      map_flights_.erase(key);
      throw;
    }
  }
#if SCIDOCK_LOCKDEP_ENABLED
  if (!owner && outcome == CacheOutcome::kInflightWait) {
    lockdep::on_blocking_wait("scidock.gridmaps.single_flight",
                              flight_owner_pool,
                              std::source_location::current());
  }
#endif
  MapsPtr result = future.get();  // blocks inflight waiters; rethrows
  if (!owner) {
    racer::on_hb_acquire(flight_sync, "scidock.gridmaps.single_flight");
  }
  return {std::move(result), outcome};
}

std::shared_ptr<ArtifactCache> make_artifact_cache() {
  return std::make_shared<ArtifactCache>();
}

namespace {

/// Load a prepared ligand, via cache when possible.
std::shared_ptr<const mol::PreparedLigand> load_ligand(
    std::shared_ptr<ArtifactCache> cache, ActivationContext& ctx,
    const std::string& path) {
  if (auto hit = cache->ligand(path)) return hit;
  const std::string text = ctx.fs->read(path);
  mol::PdbqtModel model = mol::read_pdbqt(text);
  model.molecule.infer_bonds_from_geometry();
  model.molecule.perceive(/*retype=*/false);
  mol::PreparedLigand prepared{std::move(model.molecule), std::move(model.torsions),
                               text};
  cache->put_ligand(path, std::move(prepared));
  return cache->ligand(path);
}

std::shared_ptr<const mol::PreparedReceptor> load_receptor(
    std::shared_ptr<ArtifactCache> cache, ActivationContext& ctx,
    const std::string& path) {
  if (auto hit = cache->receptor(path)) return hit;
  const std::string text = ctx.fs->read(path);
  mol::PdbqtModel model = mol::read_pdbqt(text);
  model.molecule.infer_bonds_from_geometry();
  model.molecule.perceive(/*retype=*/false);
  cache->put_receptor(path, mol::PreparedReceptor{std::move(model.molecule), text});
  return cache->receptor(path);
}

double tuple_workload(const Tuple& t) { return t.get_double("workload", 1.0); }

bool tuple_hg(const Tuple& t) { return t.get("hg").value_or("0") == "1"; }

std::string pair_dir(const ScidockOptions& opts, const char* stage,
                     const Tuple& t) {
  return opts.expdir + "/" + stage + "/" + t.require("pair") + "/";
}

/// Canonical single-flight key: receptor identity + exact box geometry +
/// sorted type set. Tuples agreeing on all three share one map set.
std::string gridmaps_cache_key(const std::string& receptor_pdbqt,
                               const dock::GridParameterFile& gpf) {
  std::string key = receptor_pdbqt;
  key += strformat("|%d,%d,%d|%.6f|%.6f,%.6f,%.6f", gpf.box.npts[0],
                   gpf.box.npts[1], gpf.box.npts[2], gpf.box.spacing,
                   gpf.box.center.x, gpf.box.center.y, gpf.box.center.z);
  std::vector<std::string> names;
  names.reserve(gpf.ligand_types.size());
  for (mol::AdType t : gpf.ligand_types) {
    names.emplace_back(mol::ad_type_name(t));
  }
  std::sort(names.begin(), names.end());
  for (const std::string& n : names) key += "|" + n;
  return key;
}

}  // namespace

wf::Pipeline build_scidock_pipeline(const ScidockOptions& opts,
                                    std::shared_ptr<ArtifactCache> cache) {
  if (!cache) cache = make_artifact_cache();
  wf::Pipeline pipeline;
  const ScidockOptions o = opts;  // captured by value in every lambda

  // ---- 1. babel: SDF -> MOL2 ----
  pipeline.add_stage(Stage{
      kBabel, wf::AlgebraicOp::Map,
      [o](const Tuple& in, ActivationContext& ctx) {
        const std::string sdf = ctx.fs->read(in.require("ligand_file"));
        mol::Molecule lig = mol::read_sdf(sdf, in.require("ligand"));
        const std::string out_path =
            pair_dir(o, kBabel, in) + in.require("ligand") + ".mol2";
        ctx.emit_file(out_path, mol::write_mol2(lig));
        Tuple out = in;
        out.set("ligand_mol2", out_path);
        return std::vector<Tuple>{out};
      },
      nullptr, tuple_workload, nullptr});

  // ---- 2. prepare_ligand4 analog: MOL2 -> ligand PDBQT ----
  pipeline.add_stage(Stage{
      kPrepLigand, wf::AlgebraicOp::Map,
      [o, cache](const Tuple& in, ActivationContext& ctx) {
        mol::Molecule lig =
            mol::read_mol2(ctx.fs->read(in.require("ligand_mol2")),
                           in.require("ligand"));
        mol::PreparedLigand prepared = mol::prepare_ligand(std::move(lig));
        const std::string out_path =
            pair_dir(o, kPrepLigand, in) + in.require("ligand") + ".pdbqt";
        ctx.emit_file(out_path, prepared.pdbqt);
        ctx.emit_value("TORSDOF", prepared.torsions.torsion_count());
        cache->put_ligand(out_path, std::move(prepared));
        Tuple out = in;
        out.set("ligand_pdbqt", out_path);
        return std::vector<Tuple>{out};
      },
      nullptr, tuple_workload, nullptr});

  // ---- 3. prepare_receptor4 analog: PDB -> rigid PDBQT ----
  pipeline.add_stage(Stage{
      kPrepReceptor, wf::AlgebraicOp::Map,
      [o, cache](const Tuple& in, ActivationContext& ctx) {
        // One receptor file serves many pairs; keep a single canonical
        // PDBQT per receptor rather than one per pair.
        const std::string out_path =
            o.expdir + "/" + kPrepReceptor + "/" + in.require("receptor") + ".pdbqt";
        if (!cache->receptor(out_path)) {
          mol::Molecule rec =
              mol::read_pdb(ctx.fs->read(in.require("receptor_file")),
                            in.require("receptor"));
          mol::PreparedReceptor prepared = mol::prepare_receptor(std::move(rec));
          ctx.emit_file(out_path, prepared.pdbqt);
          cache->put_receptor(out_path, std::move(prepared));
        }
        Tuple out = in;
        out.set("receptor_pdbqt", out_path);
        return std::vector<Tuple>{out};
      },
      nullptr, tuple_workload, tuple_hg});

  // ---- 4. GPF preparation ----
  pipeline.add_stage(Stage{
      kGpfPrep, wf::AlgebraicOp::Map,
      [o, cache](const Tuple& in, ActivationContext& ctx) {
        const auto rec = load_receptor(cache, ctx, in.require("receptor_pdbqt"));
        const auto lig =
            load_ligand(cache, ctx, in.require("ligand_pdbqt"));
        // The screening GPF canonicalises the box (floored + quantised
        // half-extent) and widens the type set to every supported type,
        // so all ligands of one receptor share one GPF — the property
        // grid-map reuse keys on. Applied regardless of reuse_grid_maps
        // so cache on/off produce identical files.
        dock::GridParameterFile gpf =
            dock::make_screening_gpf(rec->molecule, lig->molecule,
                                     /*box_padding=*/4.0, o.grid_spacing);
        const std::string out_path = pair_dir(o, kGpfPrep, in) + "grid.gpf";
        ctx.emit_file(out_path, gpf.to_text());
        Tuple out = in;
        out.set("gpf_file", out_path);
        return std::vector<Tuple>{out};
      },
      nullptr, tuple_workload, nullptr});

  // ---- 5. AutoGrid ----
  pipeline.add_stage(Stage{
      kAutogrid, wf::AlgebraicOp::Map,
      [o, cache](const Tuple& in, ActivationContext& ctx) {
        const std::string gpf_path = in.require("gpf_file");
        const dock::GridParameterFile gpf =
            dock::GridParameterFile::parse(ctx.fs->read(gpf_path));
        const auto rec = load_receptor(cache, ctx, in.require("receptor_pdbqt"));

        // Kernel observability: per-slab counter/histogram plus a trace
        // span per slab so the trace shows the AutoGrid fan-out shape.
        dock::AutogridOptions agopts;
        obs::Counter* slabs = nullptr;
        obs::HistogramMetric* slab_seconds = nullptr;
        obs::Counter* mapsets = nullptr;
        if (ctx.obs.metrics != nullptr) {
          slabs = &ctx.obs.metrics->counter(obs::kKernelAutogridSlabs);
          slab_seconds =
              &ctx.obs.metrics->histogram(obs::kKernelAutogridSlabSeconds);
          mapsets = &ctx.obs.metrics->counter(obs::kKernelAutogridMapsets);
        }
        if (slabs != nullptr || ctx.obs.trace != nullptr) {
          obs::TraceRecorder* trace = ctx.obs.trace;
          agopts.slab_observer = [slabs, slab_seconds, trace](int iz,
                                                             double seconds) {
            if (slabs != nullptr) slabs->inc();
            if (slab_seconds != nullptr) slab_seconds->observe(seconds);
            if (trace != nullptr) {
              const double dur_us = seconds * 1e6;
              trace->complete_span("autogrid-slab", "kernel",
                                   trace->now_us() - dur_us, dur_us,
                                   obs::current_thread_id(),
                                   {{"iz", std::to_string(iz)}});
            }
          };
        }

        const auto compute = [&]() {
          const dock::GridMapCalculator calc(rec->molecule, agopts);
          dock::GridMapSet maps = calc.calculate(gpf.box, gpf.ligand_types);
          // Counted at compute time (not activation end): a computation
          // whose activation later fails still happened, so the checker's
          // bound is mapsets >= misses, not equality.
          if (mapsets != nullptr) mapsets->inc();
          return maps;
        };

        ArtifactCache::MapsPtr maps;
        CacheOutcome outcome = CacheOutcome::kMiss;
        if (o.reuse_grid_maps) {
          std::tie(maps, outcome) = cache->get_or_compute_maps(
              gridmaps_cache_key(in.require("receptor_pdbqt"), gpf), compute);
        } else {
          maps = std::make_shared<const dock::GridMapSet>(compute());
        }

        const std::string prefix = pair_dir(o, kAutogrid, in) + "receptor";
        // The field file always lands on the shared FS (it is what the DPF
        // references); the bulky per-type maps only when asked.
        std::string fld = strformat(
            "# scidock maps field file\nspacing %.4f\nnmaps %d\n",
            gpf.box.spacing, maps->file_count());
        for (const auto& [type, map] : maps->affinity) {
          fld += "map receptor." + std::string(mol::ad_type_name(type)) + ".map\n";
          if (o.write_map_files) {
            ctx.emit_file(prefix + "." + std::string(mol::ad_type_name(type)) + ".map",
                          map.to_map_file());
          }
        }
        if (o.write_map_files) {
          ctx.emit_file(prefix + ".e.map", maps->electrostatic.to_map_file());
          ctx.emit_file(prefix + ".d.map", maps->desolvation.to_map_file());
        }
        ctx.emit_file(prefix + ".maps.fld", fld);
        // The AD4 stage looks maps up by the per-pair prefix it reads from
        // the DPF; alias that name to the shared set (no copy).
        cache->alias_maps(prefix, maps);
        // Cache outcome counters last, after every output landed: a faulted
        // activation (chaos VFS writes) reruns and counts only once, when
        // it FINISHES — the invariant the PROV-Wf reconciliation checks.
        if (ctx.obs.metrics != nullptr) {
          const char* name = outcome == CacheOutcome::kHit
                                 ? obs::kCacheGridmapsHits
                                 : outcome == CacheOutcome::kMiss
                                       ? obs::kCacheGridmapsMisses
                                       : obs::kCacheGridmapsInflightWaits;
          ctx.obs.metrics->counter(name).inc();
        }
        Tuple out = in;
        out.set("maps_prefix", prefix);
        return std::vector<Tuple>{out};
      },
      nullptr, tuple_workload, nullptr});

  // ---- 6. docking filter: size-based engine routing ----
  const EngineMode mode = o.engine_mode;
  pipeline.add_stage(Stage{
      kDockFilter, wf::AlgebraicOp::Filter,
      [o, mode](const Tuple& in, ActivationContext&) {
        Tuple out = in;
        std::string engine;
        switch (mode) {
          case EngineMode::ForceAd4: engine = "ad4"; break;
          case EngineMode::ForceVina: engine = "vina"; break;
          case EngineMode::Adaptive: {
            const int residues = static_cast<int>(
                parse_int(in.require("residues"), "residues"));
            engine = residues > data::vina_size_threshold(o.dataset) ? "vina"
                                                                     : "ad4";
            break;
          }
        }
        out.set("engine", engine);
        return std::vector<Tuple>{out};
      },
      [](const Tuple& t) {
        return t.require("engine") == "vina" ? std::string(kConfPrep)
                                             : std::string(kDpfPrep);
      },
      tuple_workload, nullptr});

  // ---- 7a. DPF preparation (AD4 path) ----
  pipeline.add_stage(Stage{
      kDpfPrep, wf::AlgebraicOp::Map,
      [o](const Tuple& in, ActivationContext& ctx) {
        dock::DockingParameterFile dpf = o.ad4_params;
        dpf.ligand_file = in.require("ligand_pdbqt");
        dpf.receptor_maps_prefix = in.require("maps_prefix");
        dpf.seed = fnv1a64(in.require("pair")) & 0x7fffffffffffffffULL;
        const std::string out_path = pair_dir(o, kDpfPrep, in) + "dock.dpf";
        ctx.emit_file(out_path, dpf.to_text());
        Tuple out = in;
        out.set("dpf_file", out_path);
        return std::vector<Tuple>{out};
      },
      [](const Tuple&) { return std::string(kAutodock4); },
      tuple_workload, nullptr});

  // ---- 7b. Vina configuration (Vina path) ----
  pipeline.add_stage(Stage{
      kConfPrep, wf::AlgebraicOp::Map,
      [o](const Tuple& in, ActivationContext& ctx) {
        const dock::GridParameterFile gpf =
            dock::GridParameterFile::parse(ctx.fs->read(in.require("gpf_file")));
        dock::VinaConfig cfg;
        cfg.receptor_file = in.require("receptor_pdbqt");
        cfg.ligand_file = in.require("ligand_pdbqt");
        cfg.box = gpf.box;
        cfg.exhaustiveness = o.vina_exhaustiveness;
        cfg.seed = fnv1a64(in.require("pair")) & 0x7fffffffffffffffULL;
        const std::string out_path = pair_dir(o, kConfPrep, in) + "conf.txt";
        ctx.emit_file(out_path, cfg.to_text());
        Tuple out = in;
        out.set("conf_file", out_path);
        return std::vector<Tuple>{out};
      },
      [](const Tuple&) { return std::string(kAutodockVina); },
      tuple_workload, nullptr});

  // ---- 8a. AutoDock 4 ----
  pipeline.add_stage(Stage{
      kAutodock4, wf::AlgebraicOp::Map,
      [o, cache](const Tuple& in, ActivationContext& ctx) {
        const dock::DockingParameterFile dpf =
            dock::DockingParameterFile::parse(ctx.fs->read(in.require("dpf_file")));
        const auto lig = load_ligand(cache, ctx, dpf.ligand_file);
        const auto maps = cache->maps(dpf.receptor_maps_prefix);
        SCIDOCK_REQUIRE(maps != nullptr,
                        "AutoGrid maps not found for " + dpf.receptor_maps_prefix);
        dock::Autodock4Engine engine(dpf);
        Rng rng(dpf.seed);
        dock::DockingResult result = engine.dock_with_maps(*maps, *lig, rng);
        result.receptor_name = in.require("receptor");

        const std::string out_path =
            pair_dir(o, kAutodock4, in) +
            in.require("ligand") + "_" + in.require("receptor") + ".dlg";
        ctx.emit_file(out_path, dock::write_dlg(result));
        const double feb = result.empty() ? 0.0 : result.best().feb;
        // AD4's RMSD table is measured against the input reference frame.
        const double rmsd = result.mean_rmsd();
        // Racer determinism digest: the per-pair score is a slot in the
        // campaign-wide FEB reduction — any schedule- or thread-count-
        // dependence in the bit pattern is an RC004 with this pair named.
        racer::on_reduction("dock.score.feb",
                            fnv1a64(in.require("pair")) ^ fnv1a64(kAutodock4),
                            std::bit_cast<std::uint64_t>(feb) +
                                0x9e3779b97f4a7c15ULL *
                                    std::bit_cast<std::uint64_t>(rmsd));
        ctx.emit_value("FEB", feb, "kcal/mol");
        ctx.emit_value("RMSD", rmsd, "A");
        Tuple out = in;
        out.set("dlg_file", out_path);
        out.set("feb", strformat("%.4f", feb));
        out.set("rmsd", strformat("%.4f", rmsd));
        return std::vector<Tuple>{out};
      },
      [](const Tuple&) { return std::string(wf::kEndOfPipeline); },
      tuple_workload, nullptr});

  // ---- 8b. AutoDock Vina ----
  pipeline.add_stage(Stage{
      kAutodockVina, wf::AlgebraicOp::Map,
      [o, cache](const Tuple& in, ActivationContext& ctx) {
        const dock::VinaConfig cfg =
            dock::VinaConfig::parse(ctx.fs->read(in.require("conf_file")));
        const auto rec = load_receptor(cache, ctx, cfg.receptor_file);
        const auto lig = load_ligand(cache, ctx, cfg.ligand_file);
        dock::VinaEngine engine(cfg);
        engine.steps_per_chain = o.vina_steps_per_chain;
        Rng rng(cfg.seed);
        dock::DockingResult result = engine.dock(*rec, *lig, cfg.box, rng);

        const std::string out_path =
            pair_dir(o, kAutodockVina, in) +
            in.require("ligand") + "_" + in.require("receptor") + ".log";
        ctx.emit_file(out_path, dock::write_vina_log(result));
        // Vina also writes the docked conformations back as PDBQT models
        // ("a new version of the PDBQT file with the binding information").
        if (!result.empty()) {
          ctx.emit_file(pair_dir(o, kAutodockVina, in) +
                            in.require("ligand") + "_" +
                            in.require("receptor") + "_out.pdbqt",
                        dock::write_poses_pdbqt(*lig, result));
        }
        const double feb = result.empty() ? 0.0 : result.best().feb;
        // Vina's mode table reports distances *between modes*, not against
        // the reference frame; the extractor therefore records the mean
        // displacement from the best mode (this is why Table 3's Vina RMSD
        // column is an order of magnitude below AD4's).
        double rmsd = 0.0;
        if (result.conformations.size() > 1) {
          for (std::size_t i = 1; i < result.conformations.size(); ++i) {
            rmsd += mol::rmsd(result.conformations[i].coords,
                              result.conformations[0].coords);
          }
          rmsd /= static_cast<double>(result.conformations.size() - 1);
        }
        racer::on_reduction("dock.score.feb",
                            fnv1a64(in.require("pair")) ^ fnv1a64(kAutodockVina),
                            std::bit_cast<std::uint64_t>(feb) +
                                0x9e3779b97f4a7c15ULL *
                                    std::bit_cast<std::uint64_t>(rmsd));
        ctx.emit_value("FEB", feb, "kcal/mol");
        ctx.emit_value("RMSD", rmsd, "A");
        Tuple out = in;
        out.set("dlg_file", out_path);
        out.set("feb", strformat("%.4f", feb));
        out.set("rmsd", strformat("%.4f", rmsd));
        return std::vector<Tuple>{out};
      },
      [](const Tuple&) { return std::string(wf::kEndOfPipeline); },
      tuple_workload, nullptr});

  return pipeline;
}

wf::WorkflowDef scidock_workflow_def(const ScidockOptions& opts) {
  wf::WorkflowDef def;
  def.tag = "SciDock";
  def.description = "Docking";
  def.exec_tag = "scidock";
  def.expdir = opts.expdir + "/";
  def.database.server = "ec2-50-17-107-164.compute-1.amazonaws.com";

  const char* tags[] = {kBabel, kPrepLigand, kPrepReceptor, kGpfPrep,
                        kAutogrid, kDockFilter, kDpfPrep, kConfPrep,
                        kAutodock4, kAutodockVina};
  int rel = 0;
  for (const char* tag : tags) {
    wf::ActivityDef act;
    act.tag = tag;
    act.op = std::string(tag) == kDockFilter ? wf::AlgebraicOp::Filter
                                             : wf::AlgebraicOp::Map;
    act.template_dir = def.expdir + "template_" + tag + "/";
    act.activation_command = "./experiment.cmd";
    act.relations.push_back(wf::RelationDef{
        "rel_in_" + std::to_string(rel), "input_" + std::to_string(rel) + ".txt",
        true});
    act.relations.push_back(wf::RelationDef{
        "rel_in_" + std::to_string(rel + 1),
        "output_" + std::to_string(rel) + ".txt", false});
    def.activities.push_back(std::move(act));
    ++rel;
  }
  return def;
}

}  // namespace scidock::core
