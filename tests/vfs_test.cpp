// Tests for the shared virtual filesystem (s3fs stand-in).

#include <gtest/gtest.h>

#include <thread>

#include "util/error.hpp"
#include "vfs/vfs.hpp"

namespace scidock::vfs {
namespace {

TEST(Vfs, WriteReadRoundTrip) {
  SharedFileSystem fs;
  fs.write("/exp/input/2HHN.pdb", "ATOM ...", 12.5, "stager");
  EXPECT_TRUE(fs.exists("/exp/input/2HHN.pdb"));
  EXPECT_EQ(fs.read("/exp/input/2HHN.pdb"), "ATOM ...");
  const auto info = fs.stat("/exp/input/2HHN.pdb");
  ASSERT_TRUE(info);
  EXPECT_EQ(info->size, 8u);
  EXPECT_DOUBLE_EQ(info->mtime, 12.5);
  EXPECT_EQ(info->producer, "stager");
}

TEST(Vfs, PathNormalisation) {
  SharedFileSystem fs;
  fs.write("a//b///c.txt", "x");
  EXPECT_TRUE(fs.exists("/a/b/c.txt"));
  EXPECT_EQ(fs.read("a/b/c.txt"), "x");
}

TEST(Vfs, OverwriteReplacesContent) {
  SharedFileSystem fs;
  fs.write("/f", "one");
  fs.write("/f", "twotwo");
  EXPECT_EQ(fs.read("/f"), "twotwo");
  EXPECT_EQ(fs.file_count(), 1u);
  EXPECT_EQ(fs.stat("/f")->size, 6u);
}

TEST(Vfs, MissingFileThrows) {
  SharedFileSystem fs;
  EXPECT_THROW(fs.read("/nope"), NotFoundError);
  EXPECT_THROW(fs.remove("/nope"), NotFoundError);
  EXPECT_FALSE(fs.stat("/nope"));
  EXPECT_FALSE(fs.exists("/nope"));
}

TEST(Vfs, RemoveDeletes) {
  SharedFileSystem fs;
  fs.write("/f", "x");
  fs.remove("/f");
  EXPECT_FALSE(fs.exists("/f"));
  EXPECT_EQ(fs.file_count(), 0u);
}

TEST(Vfs, ListByPrefixSorted) {
  SharedFileSystem fs;
  fs.write("/exp/dlg/b.dlg", "2");
  fs.write("/exp/dlg/a.dlg", "1");
  fs.write("/exp/maps/x.map", "3");
  const auto dlg = fs.list("/exp/dlg/");
  ASSERT_EQ(dlg.size(), 2u);
  EXPECT_EQ(dlg[0].path, "/exp/dlg/a.dlg");
  EXPECT_EQ(dlg[1].path, "/exp/dlg/b.dlg");
  EXPECT_EQ(fs.list("/").size(), 3u);
  EXPECT_EQ(fs.list().size(), 3u);
  EXPECT_TRUE(fs.list("/none/").empty());
}

TEST(Vfs, AccountingTracksBytes) {
  SharedFileSystem fs;
  fs.write("/a", std::string(100, 'x'));
  fs.write("/b", std::string(50, 'y'));
  EXPECT_EQ(fs.bytes_written(), 150u);
  EXPECT_EQ(fs.total_bytes(), 150u);
  (void)fs.read("/a");
  EXPECT_EQ(fs.bytes_read(), 100u);
}

TEST(Vfs, LatencyModelPricesOps) {
  LatencyModel lat;
  lat.op_latency_s = 0.1;
  lat.throughput_bytes_per_s = 1000.0;
  EXPECT_DOUBLE_EQ(lat.read_cost(500), 0.1 + 0.5);
  EXPECT_DOUBLE_EQ(lat.write_cost(0), 0.1);
  SharedFileSystem fs(lat);
  EXPECT_DOUBLE_EQ(fs.read_cost(500), 0.6);
}

TEST(Vfs, SplitPath) {
  const auto [dir, name] = split_path("/root/exp_SciDock/autodock4/223/GOL_4C5P.dlg");
  EXPECT_EQ(dir, "/root/exp_SciDock/autodock4/223/");
  EXPECT_EQ(name, "GOL_4C5P.dlg");
  const auto [d2, n2] = split_path("bare.txt");
  EXPECT_EQ(d2, "/");
  EXPECT_EQ(n2, "bare.txt");
}

TEST(Vfs, ConcurrentWritersAreSafe) {
  SharedFileSystem fs;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fs, t] {
      for (int i = 0; i < 100; ++i) {
        fs.write("/t" + std::to_string(t) + "/f" + std::to_string(i),
                 std::string(10, 'a'));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fs.file_count(), 400u);
  EXPECT_EQ(fs.total_bytes(), 4000u);
}

TEST(Vfs, AppendCreatesAndExtends) {
  SharedFileSystem fs;
  fs.append("/log", "one", 1.0, "wal");
  fs.append("/log", "+two", 2.0, "wal");
  EXPECT_EQ(fs.read("/log"), "one+two");
  EXPECT_EQ(fs.stat("/log")->mtime, 2.0);
}

TEST(Vfs, RenameMovesAndReplaces) {
  SharedFileSystem fs;
  fs.write("/seg.open", "data");
  fs.write("/seg", "stale");
  fs.rename("/seg.open", "/seg");
  EXPECT_FALSE(fs.exists("/seg.open"));
  EXPECT_EQ(fs.read("/seg"), "data");
  EXPECT_EQ(fs.file_count(), 1u);
  EXPECT_THROW(fs.rename("/absent", "/x"), NotFoundError);
}

TEST(Vfs, SyncCountsAndFeedsFaultHook) {
  SharedFileSystem fs;
  fs.write("/f", "x");
  fs.sync("/f");
  fs.sync("/f");
  EXPECT_EQ(fs.sync_count(), 2u);
  fs.set_fault_hook([](FileOp op, const std::string& path) {
    if (op == FileOp::Sync) throw ActivityError("fsync failed: " + path);
  });
  EXPECT_THROW(fs.sync("/f"), ActivityError);
}

// Regression: the throwing FaultHook fires *before* an operation applies,
// so it can only model all-or-nothing failures. A torn write — the
// fundamental WAL crash mode — needs byte granularity: the hook returns
// how many bytes reach "disk" before the failure, the VFS applies exactly
// that prefix, then raises TornWriteError carrying applied/total.
TEST(Vfs, TornWriteHookCutsAppendsMidRecord) {
  SharedFileSystem fs;
  fs.append("/wal/seg", "AAAA");
  fs.set_torn_write_hook([](FileOp op, const std::string&,
                            std::size_t) -> std::optional<std::size_t> {
    return op == FileOp::Append ? std::optional<std::size_t>{3}
                                : std::nullopt;
  });
  try {
    fs.append("/wal/seg", "BBBBBBBB");
    FAIL() << "append must tear";
  } catch (const TornWriteError& e) {
    EXPECT_EQ(e.applied(), 3u);
    EXPECT_EQ(e.total(), 8u);
  }
  // The partial prefix really landed: exactly 3 of the 8 bytes.
  EXPECT_EQ(fs.read("/wal/seg"), "AAAABBB");

  // A full-length return (or longer) means "not torn": no throw.
  fs.set_torn_write_hook([](FileOp, const std::string&,
                            std::size_t bytes) -> std::optional<std::size_t> {
    return bytes;
  });
  fs.append("/wal/seg", "CC");
  EXPECT_EQ(fs.read("/wal/seg"), "AAAABBBCC");
}

TEST(Vfs, TornWriteHookTruncatesWrites) {
  SharedFileSystem fs;
  fs.set_torn_write_hook([](FileOp op, const std::string&,
                            std::size_t) -> std::optional<std::size_t> {
    return op == FileOp::Write ? std::optional<std::size_t>{2}
                               : std::nullopt;
  });
  EXPECT_THROW(fs.write("/f", "wxyz"), TornWriteError);
  EXPECT_EQ(fs.read("/f"), "wx");
  fs.set_torn_write_hook(nullptr);
  fs.write("/f", "whole");
  EXPECT_EQ(fs.read("/f"), "whole");
}

TEST(Vfs, EmptyPathRejected) {
  SharedFileSystem fs;
  EXPECT_THROW(fs.write("", "x"), InvalidStateError);
  EXPECT_THROW(fs.write("/", "x"), InvalidStateError);
}

}  // namespace
}  // namespace scidock::vfs
