// Lock-discipline suite (DESIGN.md §11). The negative controls provoke
// the real hazards on purpose — an A->B / B->A lock-order inversion and
// a ThreadPool worker blocking on its own pool — and assert on the exact
// cycle, rule IDs and call sites the analyzer reports. The remaining
// tests cover the CondVar / blocking-wait hazards, the long-hold
// warning, the runtime kill-switch, and the three bridges out of the
// analyzer: obs::publish_lockdep_metrics, InvariantChecker::check_lockdep
// and lint::lockdep_report. Provocation tests skip unless built with
// -DSCIDOCK_LOCKDEP=ON; the disabled-behavior tests run (only) when it
// is compiled out, so both configurations exercise this binary.

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/invariants.hpp"
#include "lint/diagnostics.hpp"
#include "lint/lockdep_lint.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/lockdep.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace scidock {
namespace {

// ---------------------------------------------------------------------------
// Both configurations: stable rule IDs and hazard names.

TEST(LockdepRules, StableRuleIds) {
  EXPECT_EQ(lockdep::rule_id(lockdep::HazardKind::kLockInversion), "LD001");
  EXPECT_EQ(lockdep::rule_id(lockdep::HazardKind::kPoolSelfWait), "LD002");
  EXPECT_EQ(lockdep::rule_id(lockdep::HazardKind::kWaitWhileHolding), "LD003");
  EXPECT_EQ(lockdep::rule_id(lockdep::HazardKind::kLongHold), "LD004");
  EXPECT_EQ(lockdep::rule_id(lockdep::HazardKind::kDuplicateClass), "LD005");
  EXPECT_EQ(lockdep::to_string(lockdep::HazardKind::kLockInversion),
            "lock-order inversion");
  EXPECT_EQ(lockdep::to_string(lockdep::HazardKind::kDuplicateClass),
            "duplicate lock-class name");
}

// ---------------------------------------------------------------------------
// Compiled-out configuration: every entry point must be inert and every
// bridge trivially clean, so OFF builds pay nothing and fail nothing.

TEST(LockdepDisabled, AllBridgesAreInertWhenCompiledOut) {
  if (lockdep::compiled_in()) {
    GTEST_SKIP() << "built with SCIDOCK_LOCKDEP=ON";
  }
  EXPECT_NE(lockdep::format_report().find("disabled"), std::string::npos);
  EXPECT_TRUE(lockdep::clean());
  EXPECT_TRUE(lockdep::findings().empty());
  EXPECT_EQ(lockdep::counters().acquisitions, 0);
  EXPECT_FALSE(lockdep::enabled());

  chaos::InvariantChecker checker;
  EXPECT_TRUE(checker.check_lockdep());
  EXPECT_TRUE(checker.ok());

  EXPECT_TRUE(lint::lockdep_report().clean());

  obs::MetricsRegistry registry;
  obs::publish_lockdep_metrics(registry);
  EXPECT_EQ(registry.counter_value(obs::kLockdepAcquisitions), 0);
  EXPECT_EQ(registry.series_count(), 0u);
}

// ---------------------------------------------------------------------------
// Compiled-in configuration. Each test resets the analyzer and uses lock
// classes named after itself: classes are global and live for the
// process, so sharing names across tests would entangle their graphs.

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lockdep::compiled_in()) {
      GTEST_SKIP() << "requires -DSCIDOCK_LOCKDEP=ON";
    }
#if SCIDOCK_LOCKDEP_ENABLED
    lockdep::reset();
    lockdep::set_enabled(true);
    lockdep::set_long_hold_threshold(1.0);
#endif
  }

  void TearDown() override {
#if SCIDOCK_LOCKDEP_ENABLED
    if (!lockdep::compiled_in()) return;
    lockdep::set_long_hold_threshold(1.0);
    lockdep::set_enabled(true);
    lockdep::reset();
#endif
  }
};

#if SCIDOCK_LOCKDEP_ENABLED

std::optional<lockdep::Finding> first_finding(lockdep::HazardKind kind) {
  for (const lockdep::Finding& f : lockdep::findings()) {
    if (f.kind == kind) return f;
  }
  return std::nullopt;
}

bool site_matches(const std::string& site, int line) {
  return site.find("lockdep_test.cpp:" + std::to_string(line)) !=
         std::string::npos;
}

#endif  // SCIDOCK_LOCKDEP_ENABLED

TEST_F(LockdepTest, ConsistentOrderIsClean) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex a{"test.clean.a"};
  Mutex b{"test.clean.b"};
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_TRUE(lockdep::clean());
  EXPECT_TRUE(lockdep::findings().empty());
  const lockdep::CounterSnapshot s = lockdep::counters();
  EXPECT_GE(s.acquisitions, 6);
  EXPECT_GE(s.order_edges, 1);  // a -> b, recorded once
  EXPECT_NE(lockdep::format_report().find("clean"), std::string::npos);
#endif
}

// Negative control 1 (ISSUE acceptance): a genuine A->B / B->A inversion
// must be reported as LD001 with the complete two-edge cycle and the
// file:line of all four acquisitions.
TEST_F(LockdepTest, InversionReportsFullCycleWithCallSites) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex a{"test.inv.a"};
  Mutex b{"test.inv.b"};

  int line_hold_a = 0, line_b_under_a = 0;
  {
    line_hold_a = __LINE__ + 1;
    MutexLock la(a);
    line_b_under_a = __LINE__ + 1;
    MutexLock lb(b);  // records edge a -> b
  }
  ASSERT_TRUE(lockdep::clean()) << lockdep::format_report();

  int line_hold_b = 0, line_a_under_b = 0;
  {
    line_hold_b = __LINE__ + 1;
    MutexLock lb(b);
    line_a_under_b = __LINE__ + 1;
    MutexLock la(a);  // closes the cycle: LD001 fires here
  }

  EXPECT_FALSE(lockdep::clean());
  EXPECT_EQ(lockdep::finding_count(lockdep::HazardKind::kLockInversion), 1u);
  const auto f = first_finding(lockdep::HazardKind::kLockInversion);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is_error);
  EXPECT_NE(f->message.find("test.inv.a"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("test.inv.b"), std::string::npos) << f->message;
  EXPECT_EQ(f->line, line_a_under_b);

  // Closing edge first: this thread acquired a while holding b ...
  ASSERT_EQ(f->cycle.size(), 2u);
  EXPECT_EQ(f->cycle[0].held, "test.inv.b");
  EXPECT_EQ(f->cycle[0].acquired, "test.inv.a");
  EXPECT_TRUE(site_matches(f->cycle[0].held_site, line_hold_b))
      << f->cycle[0].held_site;
  EXPECT_TRUE(site_matches(f->cycle[0].acquire_site, line_a_under_b))
      << f->cycle[0].acquire_site;
  // ... then the recorded back edge: a was held when b was acquired.
  EXPECT_EQ(f->cycle[1].held, "test.inv.a");
  EXPECT_EQ(f->cycle[1].acquired, "test.inv.b");
  EXPECT_TRUE(site_matches(f->cycle[1].held_site, line_hold_a))
      << f->cycle[1].held_site;
  EXPECT_TRUE(site_matches(f->cycle[1].acquire_site, line_b_under_a))
      << f->cycle[1].acquire_site;

  // The rendered evidence carries every site, ready for a bug report.
  EXPECT_NE(f->details.find("potential deadlock cycle (2 edges)"),
            std::string::npos)
      << f->details;
  for (const int line : {line_hold_a, line_b_under_a, line_hold_b,
                         line_a_under_b}) {
    EXPECT_TRUE(f->details.find("lockdep_test.cpp:" + std::to_string(line)) !=
                std::string::npos)
        << "missing site :" << line << " in\n"
        << f->details;
  }
  EXPECT_NE(lockdep::format_report().find("[LD001]"), std::string::npos);
#endif
}

// The inversion is a property of lock *classes*, so two distinct threads
// (never holding both locks at once, never colliding) still trip it.
TEST_F(LockdepTest, InversionAcrossThreadsIsDetected) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex a{"test.xthread.a"};
  Mutex b{"test.xthread.b"};
  // Both threads stay alive until the end (sequenced by `first_done`, not
  // by join) so the OS cannot recycle one thread id for the other.
  std::atomic<bool> first_done{false};
  std::atomic<bool> all_done{false};
  std::thread first([&] {
    {
      MutexLock la(a);
      MutexLock lb(b);
    }
    first_done.store(true);
    while (!all_done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread second([&] {
    while (!first_done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    MutexLock lb(b);
    MutexLock la(a);
  });
  second.join();
  all_done.store(true);
  first.join();
  EXPECT_EQ(lockdep::finding_count(lockdep::HazardKind::kLockInversion), 1u);
  const auto f = first_finding(lockdep::HazardKind::kLockInversion);
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->cycle.size(), 2u);
  // Each direction was witnessed by its own thread.
  EXPECT_NE(f->cycle[0].thread_id, f->cycle[1].thread_id);
#endif
}

// Anonymous (unnamed) mutexes are excluded from the order graph: one
// shared class over unrelated instances would invent impossible cycles.
TEST_F(LockdepTest, AnonymousMutexesRecordNoOrderEdges) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex a;
  Mutex b;
  const long long edges_before = lockdep::counters().order_edges;
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(lockdep::counters().order_edges, edges_before);
  EXPECT_TRUE(lockdep::clean());
#endif
}

// Negative control 2 (ISSUE acceptance): a worker calling parallel_for
// on its own pool — the nested-parallelism bug TSA cannot see — is LD002
// with the caller's site. Two workers keep the provocation itself from
// deadlocking: the second worker drains the nested chunks.
TEST_F(LockdepTest, PoolSelfWaitIsDetectedWithCallerSite) {
#if SCIDOCK_LOCKDEP_ENABLED
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  int line_nested = 0;
  pool.submit([&] {
        line_nested = __LINE__ + 1;
        pool.parallel_for(4, [&](std::size_t) { ran.fetch_add(1); });
      })
      .get();
  EXPECT_EQ(ran.load(), 4);

  EXPECT_FALSE(lockdep::clean());
  EXPECT_EQ(lockdep::finding_count(lockdep::HazardKind::kPoolSelfWait), 1u);
  const auto f = first_finding(lockdep::HazardKind::kPoolSelfWait);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is_error);
  EXPECT_EQ(f->line, line_nested);
  EXPECT_NE(f->message.find("its own pool"), std::string::npos) << f->message;
  EXPECT_TRUE(site_matches(f->message, line_nested)) << f->message;
  EXPECT_NE(lockdep::format_report().find("[LD002]"), std::string::npos);
#endif
}

// parallel_for from a worker of a *different* pool is the supported
// nesting pattern (outer pool over receptors, inner over grid slabs).
TEST_F(LockdepTest, CrossPoolParallelForIsClean) {
#if SCIDOCK_LOCKDEP_ENABLED
  ThreadPool outer(1);
  ThreadPool inner(2);
  std::atomic<int> ran{0};
  outer.submit([&] {
         inner.parallel_for(4, [&](std::size_t) { ran.fetch_add(1); });
       })
      .get();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(lockdep::finding_count(lockdep::HazardKind::kPoolSelfWait), 0u);
  EXPECT_TRUE(lockdep::clean()) << lockdep::format_report();
  EXPECT_GE(lockdep::counters().pool_wait_checks, 1);
#endif
}

// parallel_for from a plain (non-worker) thread never triggers LD002.
TEST_F(LockdepTest, ParallelForFromOutsideIsClean) {
#if SCIDOCK_LOCKDEP_ENABLED
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(lockdep::finding_count(lockdep::HazardKind::kPoolSelfWait), 0u);
#endif
}

TEST_F(LockdepTest, CondVarWaitWhileHoldingUnrelatedLockIsLD003) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex outer{"test.ld003.outer"};
  Mutex inner{"test.ld003.inner"};
  CondVar cv;
  std::atomic<bool> woke{false};
  std::thread notifier([&] {
    while (!woke.load()) {
      cv.notify_all();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
    cv.wait(inner);  // parks with test.ld003.outer still held
    woke.store(true);
  }
  notifier.join();

  EXPECT_FALSE(lockdep::clean());
  const auto f = first_finding(lockdep::HazardKind::kWaitWhileHolding);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is_error);
  EXPECT_NE(f->message.find("test.ld003.outer"), std::string::npos)
      << f->message;
  EXPECT_EQ(f->message.find("test.ld003.inner"), std::string::npos)
      << "the wait's own mutex is not 'unrelated': " << f->message;
  EXPECT_NE(lockdep::format_report().find("[LD003]"), std::string::npos);
#endif
}

TEST_F(LockdepTest, CondVarWaitHoldingOnlyItsOwnMutexIsClean) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex inner{"test.ld003ok.inner"};
  CondVar cv;
  std::atomic<bool> woke{false};
  std::thread notifier([&] {
    while (!woke.load()) {
      cv.notify_all();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  {
    MutexLock hold_inner(inner);
    cv.wait(inner);
    woke.store(true);
  }
  notifier.join();
  EXPECT_EQ(lockdep::finding_count(lockdep::HazardKind::kWaitWhileHolding),
            0u);
  EXPECT_TRUE(lockdep::clean()) << lockdep::format_report();
  EXPECT_GE(lockdep::counters().cond_waits, 1);
#endif
}

// Annotated out-of-band wait (the single-flight grid-map future) while a
// lock is held: LD003, error.
TEST_F(LockdepTest, BlockingWaitWhileHoldingLockIsLD003) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex m{"test.block.cache"};
  {
    MutexLock lock(m);
    lockdep::on_blocking_wait("test.single_flight", nullptr,
                              std::source_location::current());
  }
  EXPECT_FALSE(lockdep::clean());
  const auto f = first_finding(lockdep::HazardKind::kWaitWhileHolding);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is_error);
  EXPECT_NE(f->message.find("test.single_flight"), std::string::npos);
  EXPECT_NE(f->message.find("test.block.cache"), std::string::npos);
#endif
}

// Same-pool single-flight wait: flagged as an LD002 *warning* — safe
// today because the owning task computes inline, but worth keeping
// visible. clean() stays true (warnings are tolerated).
TEST_F(LockdepTest, BlockingWaitOnOwnPoolIsAWarningNotAnError) {
#if SCIDOCK_LOCKDEP_ENABLED
  int pool_tag = 0;
  lockdep::PoolWorkerScope scope(&pool_tag);
  lockdep::on_blocking_wait("test.flight", &pool_tag,
                            std::source_location::current());
  const auto f = first_finding(lockdep::HazardKind::kPoolSelfWait);
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->is_error);
  EXPECT_NE(f->message.find("test.flight"), std::string::npos);
  EXPECT_TRUE(lockdep::clean());
  EXPECT_EQ(lockdep::counters().findings_warning, 1);
  EXPECT_GE(lockdep::counters().blocking_waits, 1);
#endif
}

// A blocking wait with nothing held and a foreign/no owner pool is the
// healthy case and must stay silent.
TEST_F(LockdepTest, BlockingWaitWithNothingHeldIsClean) {
#if SCIDOCK_LOCKDEP_ENABLED
  lockdep::on_blocking_wait("test.quiet", nullptr,
                            std::source_location::current());
  EXPECT_TRUE(lockdep::findings().empty());
#endif
}

TEST_F(LockdepTest, LongHoldEmitsWarning) {
#if SCIDOCK_LOCKDEP_ENABLED
  lockdep::set_long_hold_threshold(0.001);
  Mutex m{"test.ld004.slow"};
  {
    MutexLock lock(m);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto f = first_finding(lockdep::HazardKind::kLongHold);
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->is_error);
  EXPECT_NE(f->message.find("test.ld004.slow"), std::string::npos);
  EXPECT_TRUE(lockdep::clean());  // warning only
  EXPECT_NE(lockdep::format_report().find("[LD004]"), std::string::npos);
#endif
}

// Runtime kill-switch: with checks disabled (the bench baseline) the
// same inversion records nothing.
TEST_F(LockdepTest, KillSwitchSuppressesAllBookkeeping) {
#if SCIDOCK_LOCKDEP_ENABLED
  lockdep::set_enabled(false);
  Mutex a{"test.kill.a"};
  Mutex b{"test.kill.b"};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_TRUE(lockdep::findings().empty());
  EXPECT_EQ(lockdep::counters().acquisitions, 0);
  lockdep::set_enabled(true);
#endif
}

// ---- bridges ----

TEST_F(LockdepTest, PublishMetricsExportsAllSeries) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex a{"test.metrics.a"};
  {
    MutexLock la(a);
  }
  obs::MetricsRegistry registry;
  obs::publish_lockdep_metrics(registry);
  EXPECT_GT(registry.gauge_value(obs::kLockdepLockClasses), 0.0);
  EXPECT_GT(registry.counter_value(obs::kLockdepAcquisitions), 0);
  EXPECT_EQ(registry.counter_value(obs::kLockdepFindingsError), 0);

  // Counters are delta-published: re-publishing into the same registry
  // must track the global value, never double it. (Exact counts are not
  // assertable — the registry's own shard locks are instrumented too —
  // but the registry can never run ahead of the global monotone value.)
  const long long after_first =
      registry.counter_value(obs::kLockdepAcquisitions);
  {
    MutexLock la(a);
  }
  obs::publish_lockdep_metrics(registry);
  const long long after_second =
      registry.counter_value(obs::kLockdepAcquisitions);
  EXPECT_GE(after_second, after_first + 1);
  EXPECT_LE(after_second, lockdep::counters().acquisitions);

  const std::string text = registry.to_prometheus_text();
  for (const std::string_view name :
       {obs::kLockdepLockClasses, obs::kLockdepAcquisitions,
        obs::kLockdepOrderEdges, obs::kLockdepCondWaits,
        obs::kLockdepPoolWaitChecks, obs::kLockdepBlockingWaits,
        obs::kLockdepFindingsError, obs::kLockdepFindingsWarning}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
#endif
}

TEST_F(LockdepTest, InvariantCheckerFlagsErrorsAndToleratesWarnings) {
#if SCIDOCK_LOCKDEP_ENABLED
  {
    chaos::InvariantChecker checker;
    EXPECT_TRUE(checker.check_lockdep());
  }

  // A warning alone keeps the invariant green.
  int pool_tag = 0;
  {
    lockdep::PoolWorkerScope scope(&pool_tag);
    lockdep::on_blocking_wait("test.inv.flight", &pool_tag,
                              std::source_location::current());
  }
  {
    chaos::InvariantChecker checker;
    EXPECT_TRUE(checker.check_lockdep()) << checker.to_string();
  }

  // An inversion breaks it, and the violation names the rule.
  Mutex a{"test.invariant.a"};
  Mutex b{"test.invariant.b"};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  chaos::InvariantChecker checker;
  EXPECT_FALSE(checker.check_lockdep());
  EXPECT_FALSE(checker.ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_NE(checker.to_string().find("LD001"), std::string::npos)
      << checker.to_string();
#endif
}

TEST_F(LockdepTest, LintBridgeMapsFindingsToDiagnostics) {
#if SCIDOCK_LOCKDEP_ENABLED
  EXPECT_TRUE(lint::lockdep_report().clean());

  Mutex a{"test.lint.a"};
  Mutex b{"test.lint.b"};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  lockdep::set_long_hold_threshold(0.001);
  Mutex slow{"test.lint.slow"};
  {
    MutexLock lock(slow);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  const lint::Report report = lint::lockdep_report();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.has("LD001"));
  EXPECT_TRUE(report.has("LD004"));
  EXPECT_EQ(report.error_count(), 1u);  // LD004 maps to warning severity
  // Formatted diagnostics point at this file.
  EXPECT_NE(report.format().find("lockdep_test.cpp"), std::string::npos)
      << report.format();
#endif
}

TEST_F(LockdepTest, ResetClearsFindingsAndGraph) {
#if SCIDOCK_LOCKDEP_ENABLED
  Mutex a{"test.reset.a"};
  Mutex b{"test.reset.b"};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  ASSERT_FALSE(lockdep::clean());
  lockdep::reset();
  EXPECT_TRUE(lockdep::clean());
  EXPECT_TRUE(lockdep::findings().empty());
  EXPECT_EQ(lockdep::counters().acquisitions, 0);
  // The graph is gone too: the once-inverted order is a fresh start.
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_TRUE(lockdep::clean()) << lockdep::format_report();
#endif
}

// Regression: two Mutex declarations reusing one name used to merge
// silently into a single lock class, corrupting LD001 cycle attribution
// (an inversion between the two impostors looked like self-order noise).
// Now the second declaration gets its own class plus an LD005 error
// naming both sites.
TEST_F(LockdepTest, DuplicateClassNameIsRejectedAcrossDeclarations) {
#if SCIDOCK_LOCKDEP_ENABLED
  const int first_line = __LINE__ + 1;
  Mutex a{"test.ld005.dup"};
  EXPECT_TRUE(lockdep::clean());
  const int second_line = __LINE__ + 1;
  Mutex b{"test.ld005.dup"};

  const auto finding = first_finding(lockdep::HazardKind::kDuplicateClass);
  ASSERT_TRUE(finding.has_value()) << lockdep::format_report();
  EXPECT_TRUE(finding->is_error);
  EXPECT_NE(finding->message.find("test.ld005.dup"), std::string::npos)
      << finding->message;
  // Both declaration sites appear, file:line each.
  EXPECT_NE(finding->message.find("lockdep_test.cpp:" +
                                  std::to_string(first_line)),
            std::string::npos)
      << finding->message;
  EXPECT_NE(finding->message.find("lockdep_test.cpp:" +
                                  std::to_string(second_line)),
            std::string::npos)
      << finding->message;
  EXPECT_EQ(finding->line, second_line);

  // The impostors are distinct classes now, so an inversion between
  // them is *detected* (the merged class used to swallow it as an
  // ignored self-edge) and the cycle names the disambiguated class.
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  const auto inversion = first_finding(lockdep::HazardKind::kLockInversion);
  ASSERT_TRUE(inversion.has_value()) << lockdep::format_report();
  EXPECT_NE(inversion->details.find("test.ld005.dup@"), std::string::npos)
      << inversion->details;

  // And the bridge speaks LD005.
  const lint::Report report = lint::lockdep_report();
  EXPECT_TRUE(report.has("LD005")) << report.format();
#endif
}

TEST_F(LockdepTest, SameDeclarationInstancesShareOneClass) {
#if SCIDOCK_LOCKDEP_ENABLED
  // Arrays / loops construct many Mutexes from one declaration; they
  // must share a class with no LD005.
  for (int i = 0; i < 3; ++i) {
    Mutex m{"test.ld005.loop"};
    MutexLock lock(m);
  }
  EXPECT_EQ(lockdep::finding_count(lockdep::HazardKind::kDuplicateClass), 0u)
      << lockdep::format_report();
#endif
}

}  // namespace
}  // namespace scidock
