#include "dock/grid.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace scidock::dock {

GridBox GridBox::around(const mol::Vec3& center, double half_extent,
                        double spacing) {
  SCIDOCK_ASSERT(half_extent > 0 && spacing > 0);
  GridBox box;
  box.center = center;
  box.spacing = spacing;
  const int n = std::max(2, static_cast<int>(std::ceil(2.0 * half_extent / spacing)) + 1);
  box.npts = {n, n, n};
  return box;
}

GridMap::GridMap(GridBox box, std::string label)
    : box_(box), label_(std::move(label)), values_(box.total_points(), 0.0) {
  SCIDOCK_ASSERT(box.npts[0] >= 2 && box.npts[1] >= 2 && box.npts[2] >= 2);
}

std::size_t GridMap::index(int ix, int iy, int iz) const {
  SCIDOCK_ASSERT(ix >= 0 && ix < box_.npts[0]);
  SCIDOCK_ASSERT(iy >= 0 && iy < box_.npts[1]);
  SCIDOCK_ASSERT(iz >= 0 && iz < box_.npts[2]);
  return static_cast<std::size_t>(ix) +
         static_cast<std::size_t>(box_.npts[0]) *
             (static_cast<std::size_t>(iy) +
              static_cast<std::size_t>(box_.npts[1]) * static_cast<std::size_t>(iz));
}

double& GridMap::at(int ix, int iy, int iz) { return values_[index(ix, iy, iz)]; }

double GridMap::at(int ix, int iy, int iz) const { return values_[index(ix, iy, iz)]; }

double GridMap::sample(const mol::Vec3& p) const {
  const TrilinearSampler s(box_, p);
  return s.in_box() ? s.apply(*this) : kOutOfBoxPenalty;
}

TrilinearSampler::TrilinearSampler(const GridBox& box, const mol::Vec3& p) {
  SCIDOCK_ASSERT(box.npts[0] >= 2 && box.npts[1] >= 2 && box.npts[2] >= 2);
  const mol::Vec3 o = box.origin();
  const double fx = (p.x - o.x) / box.spacing;
  const double fy = (p.y - o.y) / box.spacing;
  const double fz = (p.z - o.z) / box.spacing;
  if (fx < 0 || fy < 0 || fz < 0 || fx > box.npts[0] - 1 ||
      fy > box.npts[1] - 1 || fz > box.npts[2] - 1) {
    return;  // in_box_ stays false
  }
  const int ix = std::min(static_cast<int>(fx), box.npts[0] - 2);
  const int iy = std::min(static_cast<int>(fy), box.npts[1] - 2);
  const int iz = std::min(static_cast<int>(fz), box.npts[2] - 2);
  tx_ = fx - ix;
  ty_ = fy - iy;
  tz_ = fz - iz;
  sy_ = static_cast<std::size_t>(box.npts[0]);
  sz_ = sy_ * static_cast<std::size_t>(box.npts[1]);
  base_ = static_cast<std::size_t>(ix) +
          sy_ * static_cast<std::size_t>(iy) +
          sz_ * static_cast<std::size_t>(iz);
  in_box_ = true;
}

TrilinearSamplerLanes::TrilinearSamplerLanes(const GridBox& box,
                                             const double* xs,
                                             const double* ys,
                                             const double* zs) {
  SCIDOCK_ASSERT(box.npts[0] >= 2 && box.npts[1] >= 2 && box.npts[2] >= 2);
  constexpr int W = simd::f64x::kWidth;
  const mol::Vec3 o = box.origin();
  const simd::f64x spacing(box.spacing);
  // Same division as the scalar sampler: per-lane IEEE division keeps the
  // in/out-of-box boundary decisions bit-identical to TrilinearSampler.
  const simd::f64x fx = (simd::f64x::load(xs) - simd::f64x(o.x)) / spacing;
  const simd::f64x fy = (simd::f64x::load(ys) - simd::f64x(o.y)) / spacing;
  const simd::f64x fz = (simd::f64x::load(zs) - simd::f64x(o.z)) / spacing;

  sy_ = static_cast<std::size_t>(box.npts[0]);
  sz_ = sy_ * static_cast<std::size_t>(box.npts[1]);

  alignas(64) double fxa[W], fya[W], fza[W];
  fx.store(fxa);
  fy.store(fya);
  fz.store(fza);
  alignas(64) double txa[W], tya[W], tza[W], mask[W];
  bool all_in = true;
  for (int l = 0; l < W; ++l) {
    const bool in = !(fxa[l] < 0 || fya[l] < 0 || fza[l] < 0 ||
                      fxa[l] > box.npts[0] - 1 || fya[l] > box.npts[1] - 1 ||
                      fza[l] > box.npts[2] - 1);
    mask[l] = simd::mask_value(in);
    if (!in) {
      // Out-of-box lane: read cell 0 with zero weights (valid memory, no
      // branches in apply); the mask blends the penalty in afterwards.
      base_[l] = 0;
      txa[l] = tya[l] = tza[l] = 0.0;
      all_in = false;
      continue;
    }
    const int ix = std::min(static_cast<int>(fxa[l]), box.npts[0] - 2);
    const int iy = std::min(static_cast<int>(fya[l]), box.npts[1] - 2);
    const int iz = std::min(static_cast<int>(fza[l]), box.npts[2] - 2);
    txa[l] = fxa[l] - ix;
    tya[l] = fya[l] - iy;
    tza[l] = fza[l] - iz;
    base_[l] = static_cast<std::size_t>(ix) +
               sy_ * static_cast<std::size_t>(iy) +
               sz_ * static_cast<std::size_t>(iz);
    any_in_box_ = true;
  }
  tx_ = simd::f64x::load(txa);
  ty_ = simd::f64x::load(tya);
  tz_ = simd::f64x::load(tza);
  in_mask_ = simd::f64x::load(mask);
  all_in_box_ = all_in;
}

std::string GridMap::to_map_file() const {
  std::string out;
  out += "GRID_PARAMETER_FILE scidock.gpf\n";
  out += "GRID_DATA_FILE scidock.maps.fld\n";
  out += "MACROMOLECULE receptor.pdbqt\n";
  out += strformat("LABEL %s\n", label_.c_str());
  out += strformat("SPACING %.4f\n", box_.spacing);
  out += strformat("NELEMENTS %d %d %d\n", box_.npts[0] - 1, box_.npts[1] - 1,
                   box_.npts[2] - 1);
  out += strformat("CENTER %.3f %.3f %.3f\n", box_.center.x, box_.center.y,
                   box_.center.z);
  for (double v : values_) out += strformat("%.4f\n", v);
  return out;
}

GridMap GridMap::from_map_file(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  GridBox box;
  std::string label;
  std::vector<double> values;
  while (std::getline(in, line)) {
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    if (fields[0] == "LABEL" && fields.size() >= 2) {
      label = fields[1];
    } else if (fields[0] == "SPACING" && fields.size() >= 2) {
      box.spacing = parse_double(fields[1], "map SPACING");
    } else if (fields[0] == "NELEMENTS" && fields.size() >= 4) {
      box.npts = {static_cast<int>(parse_int(fields[1], "map nx")) + 1,
                  static_cast<int>(parse_int(fields[2], "map ny")) + 1,
                  static_cast<int>(parse_int(fields[3], "map nz")) + 1};
    } else if (fields[0] == "CENTER" && fields.size() >= 4) {
      box.center = {parse_double(fields[1], "map cx"),
                    parse_double(fields[2], "map cy"),
                    parse_double(fields[3], "map cz")};
    } else if (fields.size() == 1 &&
               (std::isdigit(static_cast<unsigned char>(fields[0][0])) ||
                fields[0][0] == '-' || fields[0][0] == '+')) {
      values.push_back(parse_double(fields[0], "map value"));
    }
  }
  GridMap map(box, label);
  if (values.size() != map.values().size()) {
    throw ParseError("map", strformat("expected %zu grid values, found %zu",
                                      map.values().size(), values.size()));
  }
  map.values().assign(values.begin(), values.end());
  return map;
}

const GridMap* GridMapSet::affinity_for(mol::AdType t) const {
  for (const auto& [type, map] : affinity) {
    if (type == t) return &map;
  }
  return nullptr;
}

}  // namespace scidock::dock
