// redock_refinement — the paper's Section V.D follow-up on top hits:
// "these receptor-ligand associations should be refined and reinforced
// using alternative approaches, such as ... redocking". Screen a small
// panel, pick the best interaction, read its docked pose back from the
// `_out.pdbqt` the Vina activity wrote, and redock it in a tight box at
// high local-search effort.

#include <cstdio>

#include "data/table2.hpp"
#include "dock/vina.hpp"
#include "mol/io_pdbqt.hpp"
#include "mol/prepare.hpp"
#include "scidock/experiment.hpp"
#include "util/rng.hpp"

int main() {
  using namespace scidock;

  // 1. A quick Vina screen of 12 receptors x 2 ligands.
  core::ScidockOptions options;
  options.engine_mode = core::EngineMode::ForceVina;
  const std::vector<std::string> receptors(
      data::table2_receptors().begin(), data::table2_receptors().begin() + 12);
  core::Experiment exp =
      core::make_experiment(receptors, {"042", "0E6"}, 0, options);
  const wf::NativeReport report = core::run_native(exp, 2);
  std::printf("screened %zu pairs in %.1f s\n", report.output.size(),
              report.wall_seconds);

  // 2. Pick the best interaction.
  const wf::Tuple* best = nullptr;
  double best_feb = 1e9;
  for (const wf::Tuple& t : report.output.tuples()) {
    const double feb = t.get_double("feb", 1e9);
    if (feb < best_feb) {
      best_feb = feb;
      best = &t;
    }
  }
  if (best == nullptr) {
    std::printf("no docked pairs to refine\n");
    return 1;
  }
  std::printf("top hit: %s at FEB %.2f kcal/mol\n",
              best->require("pair").c_str(), best_feb);

  // 3. Read the docked pose back from the _out.pdbqt file on the shared
  //    filesystem (the artefact the Vina activity produced).
  const std::string out_path =
      exp.options.expdir + "/autodockvina/" + best->require("pair") + "/" +
      best->require("ligand") + "_" + best->require("receptor") + "_out.pdbqt";
  const auto models = mol::read_pdbqt_models(exp.fs->read(out_path));
  std::printf("read %zu pose model(s) from %s\n", models.size(),
              out_path.c_str());

  // 4. Redock: tight box around the pose, intensified local search.
  const mol::PreparedReceptor receptor = mol::prepare_receptor(
      data::make_receptor(best->require("receptor"), options.dataset));
  const mol::PreparedLigand ligand = mol::prepare_ligand(
      data::make_ligand(best->require("ligand"), options.dataset));
  dock::Conformation pose;
  pose.coords = models.front().molecule.coordinates();
  pose.feb = best_feb;
  Rng rng(2014);
  const dock::DockingResult refined =
      dock::redock(receptor, ligand, pose, rng, /*box_half_extent=*/6.0,
                   /*refinement_steps=*/600);

  std::printf("redocked: FEB %.2f kcal/mol (screen: %.2f), moved %.1f A "
              "from the screened pose, %lld energy evaluations\n",
              refined.best().feb, best_feb, refined.best().rmsd_from_input,
              refined.energy_evaluations);
  std::printf(refined.best().feb <= best_feb + 0.5
                  ? "refinement reinforced the interaction\n"
                  : "refinement weakened the interaction — candidate dropped\n");
  return 0;
}
